// Unit and property tests for the coalesced message codec and the ring
// buffer protocol (§4.1).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/payload.h"
#include "src/common/rand.h"
#include "src/flock/ring.h"
#include "src/flock/wire.h"

namespace flock {
namespace {

std::vector<uint8_t> Payload(size_t n, uint8_t seed) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(seed + i);
  }
  return v;
}

TEST(WireTest, MessageBytesIsAligned) {
  for (uint32_t n = 1; n < 20; ++n) {
    for (uint32_t bytes : {0u, 1u, 63u, 64u, 100u, 4096u}) {
      EXPECT_EQ(wire::MessageBytes(n, bytes) % wire::kAlign, 0u);
      EXPECT_GE(wire::MessageBytes(n, bytes),
                wire::kHeaderBytes + n * wire::kMetaBytes + bytes + wire::kCanaryBytes);
    }
  }
}

TEST(WireTest, EncodeDecodeSingleRequest) {
  std::vector<uint8_t> buf(1024, 0);
  auto payload = Payload(100, 7);
  wire::MessageEncoder enc(buf.data(), 1024, 0xabcdef);
  wire::ReqMeta meta{100, 3, 9, 77};
  enc.Add(meta, payload.data());
  const uint32_t len = enc.Seal(1234, 5);

  wire::MsgHeader header;
  ASSERT_EQ(wire::ProbeMessage(buf.data(), static_cast<uint32_t>(buf.size()), &header), wire::ProbeResult::kMessage);
  EXPECT_EQ(header.total_len, len);
  EXPECT_EQ(header.num_reqs, 1);
  EXPECT_EQ(header.piggyback_head, 1234u);
  EXPECT_EQ(header.credit_grant, 5u);

  wire::ReqView view;
  ASSERT_TRUE(wire::DecodeRequests(buf.data(), header, &view));
  EXPECT_EQ(view.meta.data_len, 100u);
  EXPECT_EQ(view.meta.thread_id, 3);
  EXPECT_EQ(view.meta.rpc_id, 9);
  EXPECT_EQ(view.meta.seq, 77u);
  EXPECT_EQ(std::memcmp(view.data, payload.data(), 100), 0);
}

TEST(WireTest, CoalescedMessageRoundTrips) {
  std::vector<uint8_t> buf(8192, 0);
  wire::MessageEncoder enc(buf.data(), 8192, 42);
  std::vector<std::vector<uint8_t>> payloads;
  for (uint32_t i = 0; i < 10; ++i) {
    payloads.push_back(Payload(16 * (i + 1), static_cast<uint8_t>(i)));
    wire::ReqMeta meta{static_cast<uint32_t>(payloads.back().size()),
                       static_cast<uint16_t>(i), static_cast<uint16_t>(i * 2), i + 100};
    enc.Add(meta, payloads.back().data());
  }
  enc.Seal(0, 0);

  wire::MsgHeader header;
  ASSERT_EQ(wire::ProbeMessage(buf.data(), static_cast<uint32_t>(buf.size()), &header), wire::ProbeResult::kMessage);
  ASSERT_EQ(header.num_reqs, 10);
  std::vector<wire::ReqView> views(10);
  ASSERT_TRUE(wire::DecodeRequests(buf.data(), header, views.data()));
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(views[i].meta.seq, i + 100);
    ASSERT_EQ(views[i].meta.data_len, payloads[i].size());
    EXPECT_EQ(std::memcmp(views[i].data, payloads[i].data(), payloads[i].size()), 0);
  }
}

TEST(WireTest, IncompleteWithoutTrailingCanary) {
  std::vector<uint8_t> buf(1024, 0);
  auto payload = Payload(64, 1);
  wire::MessageEncoder enc(buf.data(), 1024, 0x1111);
  enc.Add(wire::ReqMeta{64, 0, 0, 1}, payload.data());
  const uint32_t len = enc.Seal(0, 0);
  // Corrupt the trailing canary: the message must not be accepted.
  buf[len - 1] ^= 0xff;
  wire::MsgHeader header;
  EXPECT_EQ(wire::ProbeMessage(buf.data(), static_cast<uint32_t>(buf.size()), &header), wire::ProbeResult::kIncomplete);
}

TEST(WireTest, ZeroLengthHeaderIsEmpty) {
  std::vector<uint8_t> buf(256, 0);
  wire::MsgHeader header;
  EXPECT_EQ(wire::ProbeMessage(buf.data(), static_cast<uint32_t>(buf.size()), &header), wire::ProbeResult::kEmpty);
}

TEST(WireTest, WrapMarkerDetected) {
  std::vector<uint8_t> buf(256, 0);
  wire::EncodeWrapMarker(buf.data(), 99);
  wire::MsgHeader header;
  EXPECT_EQ(wire::ProbeMessage(buf.data(), static_cast<uint32_t>(buf.size()), &header), wire::ProbeResult::kWrap);
}

TEST(WireTest, ZeroLengthPayloadRequests) {
  std::vector<uint8_t> buf(512, 0);
  wire::MessageEncoder enc(buf.data(), 512, 1);
  enc.Add(wire::ReqMeta{0, 1, 2, 3}, nullptr);
  enc.Add(wire::ReqMeta{0, 4, 5, 6}, nullptr);
  enc.Seal(0, 0);
  wire::MsgHeader header;
  ASSERT_EQ(wire::ProbeMessage(buf.data(), static_cast<uint32_t>(buf.size()), &header), wire::ProbeResult::kMessage);
  std::vector<wire::ReqView> views(2);
  ASSERT_TRUE(wire::DecodeRequests(buf.data(), header, views.data()));
  EXPECT_EQ(views[0].meta.thread_id, 1);
  EXPECT_EQ(views[1].meta.seq, 6u);
}

// Regression: data_len values near UINT32_MAX used to wrap the 32-bit
// "offset + meta + data_len" sums in DecodeRequests and pass the bounds
// checks, yielding request views far outside the message buffer.
TEST(WireTest, DecodeRejectsOverflowingDataLen) {
  std::vector<uint8_t> buf(1024, 0);
  auto payload = Payload(64, 3);
  wire::MessageEncoder enc(buf.data(), 1024, 0x2222);
  enc.Add(wire::ReqMeta{64, 1, 2, 3}, payload.data());
  enc.Seal(0, 0);
  wire::MsgHeader header;
  ASSERT_EQ(wire::ProbeMessage(buf.data(), static_cast<uint32_t>(buf.size()), &header),
            wire::ProbeResult::kMessage);
  // Corrupt the first request's data_len to a huge value (meta layout starts
  // right after the header; data_len is its first field).
  const uint32_t evil = 0xFFFFFFF0u;
  std::memcpy(buf.data() + wire::kHeaderBytes, &evil, sizeof(evil));
  wire::ReqView view;
  EXPECT_FALSE(wire::DecodeRequests(buf.data(), header, &view));
}

// Regression: total_len values larger than the readable region used to make
// ProbeMessage dereference the trailing canary out of bounds; values smaller
// than header+canary wrapped the canary offset computation.
TEST(WireTest, ProbeRejectsOutOfBoundsTotalLen) {
  std::vector<uint8_t> buf(64, 0);
  wire::MsgHeader header;
  uint32_t evil = 1024;  // beyond the 64-byte capacity
  std::memcpy(buf.data(), &evil, sizeof(evil));
  EXPECT_EQ(wire::ProbeMessage(buf.data(), static_cast<uint32_t>(buf.size()), &header),
            wire::ProbeResult::kIncomplete);
  evil = wire::kHeaderBytes;  // too small to hold header + canary
  std::memcpy(buf.data(), &evil, sizeof(evil));
  EXPECT_EQ(wire::ProbeMessage(buf.data(), static_cast<uint32_t>(buf.size()), &header),
            wire::ProbeResult::kIncomplete);
}

TEST(WireTest, FitsRespectsCapacity) {
  std::vector<uint8_t> buf(128, 0);
  wire::MessageEncoder enc(buf.data(), 128, 1);
  EXPECT_TRUE(enc.Fits(32));
  enc.Add(wire::ReqMeta{32, 0, 0, 0}, Payload(32, 0).data());
  EXPECT_FALSE(enc.Fits(64));
}

// Regression: the 32-bit "offset + data_len" sum in Fits used to wrap for
// data_len near UINT32_MAX and report that the request fits.
TEST(WireTest, FitsRejectsHugeDataLen) {
  std::vector<uint8_t> buf(128, 0);
  wire::MessageEncoder enc(buf.data(), 128, 1);
  EXPECT_FALSE(enc.Fits(0xFFFFFFF0u));
  EXPECT_FALSE(enc.Fits(UINT32_MAX));
}

// Regression: the 32-bit AlignUp/MessageBytes used to wrap for sizes near
// UINT32_MAX, turning an oversized message into a tiny "valid" one. The
// 64-bit forms must compute the true size without wrapping.
TEST(WireTest, MessageBytes64DoesNotWrap) {
  EXPECT_EQ(wire::AlignUp64(0xFFFFFFF1ull), 0x100000000ull);
  EXPECT_GT(wire::MessageBytes64(1, 0xFFFFFFF0ull), uint64_t{UINT32_MAX});
  // 5 MB extents land well inside u64 but far outside the old u16*u32 math.
  const uint64_t five_mb = 5ull * 1024 * 1024;
  EXPECT_EQ(wire::MessageBytes64(1, five_mb),
            wire::AlignUp64(wire::kHeaderBytes + wire::kMetaBytes + five_mb +
                            wire::kCanaryBytes));
}

TEST(WireTest, SegmentMarkPackRoundTrip) {
  for (wire::SegMark mark : {wire::SegMark::kNone, wire::SegMark::kFirst,
                             wire::SegMark::kMiddle, wire::SegMark::kLast}) {
    for (uint32_t len : {0u, 1u, 8192u, wire::kSegLenMask}) {
      const uint32_t packed = wire::PackSegLen(mark, len);
      EXPECT_EQ(wire::SegOf(packed), mark);
      EXPECT_EQ(wire::SegLen(packed), len);
    }
  }
  // kNone packing is the identity: unsegmented metas stay byte-identical.
  EXPECT_EQ(wire::PackSegLen(wire::SegMark::kNone, 1234u), 1234u);
}

TEST(WireTest, SegmentedChunksRoundTrip) {
  std::vector<uint8_t> buf(4096, 0);
  wire::MessageEncoder enc(buf.data(), 4096, 0x5e6);
  auto first = Payload(512, 1);
  auto mid = Payload(512, 2);
  auto last = Payload(100, 3);
  enc.Add(wire::ReqMeta{wire::PackSegLen(wire::SegMark::kFirst, 512), 7, 9, 42},
          first.data());
  enc.Add(wire::ReqMeta{wire::PackSegLen(wire::SegMark::kMiddle, 512), 7, 9, 42},
          mid.data());
  enc.Add(wire::ReqMeta{wire::PackSegLen(wire::SegMark::kLast, 100), 7, 9, 42},
          last.data());
  enc.Seal(0, 0, wire::kFlagSegment);

  wire::MsgHeader header;
  ASSERT_EQ(wire::ProbeMessage(buf.data(), static_cast<uint32_t>(buf.size()), &header),
            wire::ProbeResult::kMessage);
  EXPECT_NE(header.flags & wire::kFlagSegment, 0);
  ASSERT_EQ(header.num_reqs, 3);
  std::vector<wire::ReqView> views(3);
  ASSERT_TRUE(wire::DecodeRequests(buf.data(), header, views.data()));
  EXPECT_EQ(wire::SegOf(views[0].meta.data_len), wire::SegMark::kFirst);
  EXPECT_EQ(wire::SegOf(views[1].meta.data_len), wire::SegMark::kMiddle);
  EXPECT_EQ(wire::SegOf(views[2].meta.data_len), wire::SegMark::kLast);
  EXPECT_EQ(wire::SegLen(views[2].meta.data_len), 100u);
  EXPECT_EQ(std::memcmp(views[0].data, first.data(), 512), 0);
  EXPECT_EQ(std::memcmp(views[1].data, mid.data(), 512), 0);
  EXPECT_EQ(std::memcmp(views[2].data, last.data(), 100), 0);
}

// Mark bits without kFlagSegment in the header are corruption: a
// non-segmented consumer must not misread a marked data_len as a length.
TEST(WireTest, DecodeRejectsMarkBitsWithoutSegmentFlag) {
  std::vector<uint8_t> buf(1024, 0);
  auto payload = Payload(64, 5);
  wire::MessageEncoder enc(buf.data(), 1024, 0x3333);
  enc.Add(wire::ReqMeta{wire::PackSegLen(wire::SegMark::kFirst, 64), 1, 2, 3},
          payload.data());
  enc.Seal(0, 0);  // flags deliberately omit kFlagSegment
  wire::MsgHeader header;
  ASSERT_EQ(wire::ProbeMessage(buf.data(), static_cast<uint32_t>(buf.size()), &header),
            wire::ProbeResult::kMessage);
  wire::ReqView view;
  EXPECT_FALSE(wire::DecodeRequests(buf.data(), header, &view));
}

TEST(WireTest, AddGatherMultiSliceRoundTrip) {
  std::vector<uint8_t> buf(1024, 0);
  auto a = Payload(40, 1);
  auto b = Payload(60, 2);
  auto c = Payload(28, 3);
  PayloadRef payload;
  payload.Add(a.data(), 40);
  payload.Add(b.data(), 60);
  payload.Add(c.data(), 28);
  ASSERT_EQ(payload.size(), 128u);

  wire::MessageEncoder enc(buf.data(), 1024, 0x4444);
  enc.AddGather(wire::ReqMeta{128, 2, 4, 6}, payload);
  enc.Seal(0, 0);

  wire::MsgHeader header;
  ASSERT_EQ(wire::ProbeMessage(buf.data(), static_cast<uint32_t>(buf.size()), &header),
            wire::ProbeResult::kMessage);
  wire::ReqView view;
  ASSERT_TRUE(wire::DecodeRequests(buf.data(), header, &view));
  ASSERT_EQ(view.meta.data_len, 128u);
  std::vector<uint8_t> flat;
  flat.insert(flat.end(), a.begin(), a.end());
  flat.insert(flat.end(), b.begin(), b.end());
  flat.insert(flat.end(), c.begin(), c.end());
  EXPECT_EQ(std::memcmp(view.data, flat.data(), 128), 0);
}

TEST(WireTest, PayloadRefSubCutsAcrossSlices) {
  auto a = Payload(100, 1);
  auto b = Payload(100, 2);
  PayloadRef payload;
  payload.Add(a.data(), 100);
  payload.Add(b.data(), 100);
  // A cut straddling the slice boundary references both source buffers.
  PayloadRef mid = payload.Sub(80, 40);
  ASSERT_EQ(mid.size(), 40u);
  ASSERT_EQ(mid.num_slices(), 2u);
  std::vector<uint8_t> out(40);
  mid.CopyTo(out.data());
  EXPECT_EQ(std::memcmp(out.data(), a.data() + 80, 20), 0);
  EXPECT_EQ(std::memcmp(out.data() + 20, b.data(), 20), 0);
  // Chunking the whole payload and reassembling restores the bytes.
  std::vector<uint8_t> joined(200);
  for (uint32_t off = 0; off < 200; off += 48) {
    const uint32_t take = std::min(48u, 200u - off);
    payload.Sub(off, take).CopyTo(joined.data() + off);
  }
  EXPECT_EQ(std::memcmp(joined.data(), a.data(), 100), 0);
  EXPECT_EQ(std::memcmp(joined.data() + 100, b.data(), 100), 0);
}

// ---------------------------------------------------------------------------
// Ring protocol
// ---------------------------------------------------------------------------

class RingTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kRing = 1024;
  RingTest() : ring_(kRing, 0), producer_(kRing), consumer_(ring_.data(), kRing) {}

  // Produce one message with `n` requests of `len` bytes each; returns the
  // message length. Writes into the ring directly (standing in for the RDMA
  // write, which in the full system copies exactly these bytes).
  uint32_t Produce(uint32_t n, uint32_t len, uint32_t base_seq) {
    const uint32_t msg_len = wire::MessageBytes(n, n * len);
    RingProducer::Reservation resv;
    if (!producer_.Reserve(msg_len, &resv)) {
      return 0;
    }
    if (resv.wrapped) {
      wire::EncodeWrapMarker(ring_.data() + resv.marker_offset, canary_++);
    }
    wire::MessageEncoder enc(ring_.data() + resv.offset, msg_len, canary_++);
    for (uint32_t i = 0; i < n; ++i) {
      auto payload = Payload(len, static_cast<uint8_t>(base_seq + i));
      enc.Add(wire::ReqMeta{len, 0, 0, base_seq + i}, payload.data());
    }
    EXPECT_EQ(enc.Seal(0, 0), msg_len);
    return msg_len;
  }

  std::vector<uint8_t> ring_;
  RingProducer producer_;
  RingConsumer consumer_;
  uint64_t canary_ = 1;
};

TEST_F(RingTest, ProduceConsumeRoundTrip) {
  ASSERT_GT(Produce(3, 16, 100), 0u);
  wire::MsgHeader header;
  ASSERT_EQ(consumer_.Probe(&header), wire::ProbeResult::kMessage);
  EXPECT_EQ(header.num_reqs, 3);
  std::vector<wire::ReqView> views(3);
  ASSERT_TRUE(wire::DecodeRequests(consumer_.MessagePtr(), header, views.data()));
  EXPECT_EQ(views[2].meta.seq, 102u);
  consumer_.Consume(header);
  EXPECT_EQ(consumer_.Probe(&header), wire::ProbeResult::kEmpty);
}

TEST_F(RingTest, ConsumeZeroesTheRegion) {
  ASSERT_GT(Produce(1, 32, 1), 0u);
  wire::MsgHeader header;
  ASSERT_EQ(consumer_.Probe(&header), wire::ProbeResult::kMessage);
  const uint32_t len = header.total_len;
  consumer_.Consume(header);
  for (uint32_t i = 0; i < len; ++i) {
    EXPECT_EQ(ring_[i], 0) << "byte " << i << " not zeroed";
  }
}

TEST_F(RingTest, ProducerBlocksWhenFullThenResumesOnHeadUpdate) {
  // Fill the ring without consuming.
  int produced = 0;
  while (Produce(1, 64, static_cast<uint32_t>(produced)) > 0) {
    ++produced;
  }
  EXPECT_GT(produced, 3);
  // Consume everything and report the head; producer capacity returns.
  wire::MsgHeader header;
  int consumed = 0;
  while (consumer_.Probe(&header) == wire::ProbeResult::kMessage) {
    consumer_.Consume(header);
    ++consumed;
  }
  EXPECT_EQ(consumed, produced);
  producer_.OnHeadUpdate(consumer_.consumed_report());
  EXPECT_GT(Produce(1, 64, 999), 0u);
}

TEST_F(RingTest, WrapsCleanlyManyTimes) {
  // Stream far more data than the ring size; consume as we go.
  uint32_t next_seq = 0;
  uint32_t verified = 0;
  Rng rng(3);
  for (int round = 0; round < 2000; ++round) {
    const uint32_t n = 1 + static_cast<uint32_t>(rng.NextBelow(4));
    const uint32_t len = 8 + static_cast<uint32_t>(rng.NextBelow(48));
    if (Produce(n, len, next_seq) > 0) {
      next_seq += n;
    }
    wire::MsgHeader header;
    while (consumer_.Probe(&header) == wire::ProbeResult::kMessage) {
      std::vector<wire::ReqView> views(header.num_reqs);
      ASSERT_TRUE(wire::DecodeRequests(consumer_.MessagePtr(), header, views.data()));
      for (const auto& view : views) {
        ASSERT_EQ(view.meta.seq, verified) << "out-of-order or lost request";
        ++verified;
      }
      consumer_.Consume(header);
      producer_.OnHeadUpdate(consumer_.consumed_report());
    }
  }
  EXPECT_EQ(verified, next_seq);
  EXPECT_GT(verified, 2000u);  // must actually have wrapped many times
}

TEST_F(RingTest, ReserveRejectsOversizedMessage) {
  RingProducer small(256);
  RingProducer::Reservation resv;
  EXPECT_TRUE(small.Reserve(96, &resv));
  EXPECT_TRUE(small.Reserve(96, &resv));
  // 96 + 96 used of 224 budget: a further 96 does not fit.
  EXPECT_FALSE(small.Reserve(96, &resv));
}

TEST_F(RingTest, HeadUpdateIsIdempotentForSameHead) {
  ASSERT_GT(Produce(1, 16, 0), 0u);
  wire::MsgHeader header;
  ASSERT_EQ(consumer_.Probe(&header), wire::ProbeResult::kMessage);
  consumer_.Consume(header);
  const uint32_t used_before = producer_.used();
  producer_.OnHeadUpdate(consumer_.consumed_report());
  const uint32_t used_after_first = producer_.used();
  producer_.OnHeadUpdate(consumer_.consumed_report());  // duplicate piggyback
  EXPECT_EQ(producer_.used(), used_after_first);
  EXPECT_LT(used_after_first, used_before);
}

}  // namespace
}  // namespace flock
