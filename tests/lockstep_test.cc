// Regression tests for the "birds of a feather" lockstep effect: threads
// sharing a QP synchronize through coalesced responses, so with T threads
// per lane and stable schedules, the coalescing degree converges to T.
// These lock in the scheduler-stability fixes (assignment hysteresis, stable
// Algorithm-1 ordering, slot-based control) without which the lockstep decays.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/flock/flock.h"

namespace flock {
namespace {

sim::Proc EchoWorker(verbs::Cluster* cluster, Connection* conn, FlockThread* thread,
                     uint64_t* done) {
  std::vector<uint8_t> payload(64, 1);
  for (;;) {
    std::vector<uint8_t> resp;
    co_await conn->Call(*thread, 1, payload.data(), 64, &resp);
    (*done)++;
  }
}

double RunLockstep(int threads, uint32_t lanes, Nanos duration, uint64_t* done_out,
                   uint64_t* events_out = nullptr, int shards = 1,
                   int workers = 0) {
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 2,
                                                .cores_per_node = 34,
                                                .num_shards = shards,
                                                .num_workers = workers});
  FlockConfig config;
  FlockRuntime server(cluster, 0, config);
  server.RegisterHandler(1, [](const uint8_t*, uint32_t, uint8_t* resp, uint32_t,
                               Nanos* cpu) -> uint32_t {
    *cpu = 50;
    std::memset(resp, 1, 64);
    return 64;
  });
  server.StartServer(4);
  FlockRuntime client(cluster, 1, config);
  client.StartClient();
  Connection* conn = client.Connect(server, lanes);
  uint64_t done = 0;
  for (int t = 0; t < threads; ++t) {
    // Workers home on the client node: they run client-side code, and under
    // sharding every proc must execute on the shard of the node it touches.
    cluster.sim().Spawn(EchoWorker(&cluster, conn, client.CreateThread(t), &done),
                        /*node=*/1);
  }
  cluster.sim().RunFor(duration);
  *done_out = done;
  if (events_out != nullptr) {
    *events_out = cluster.sim().events_processed();
  }
  return conn->MeanCoalescing();
}

TEST(LockstepTest, TwoThreadsOneLaneReachFullPairing) {
  uint64_t done = 0;
  const double coal = RunLockstep(2, 1, 2 * kMillisecond, &done);
  EXPECT_GT(done, 500u);
  EXPECT_GT(coal, 1.9);
}

TEST(LockstepTest, ThirtyTwoThreadsSixteenLanesStayPaired) {
  uint64_t done = 0;
  const double coal = RunLockstep(32, 16, 3 * kMillisecond, &done);
  EXPECT_GT(done, 5000u);
  // Scheduler stability must keep the pairs locked across intervals.
  EXPECT_GT(coal, 1.8);
}

TEST(LockstepTest, FourThreadsTwoLanes) {
  uint64_t done = 0;
  const double coal = RunLockstep(4, 2, 2 * kMillisecond, &done);
  EXPECT_GT(coal, 1.8);
}

// The simulation kernel must be bit-for-bit deterministic: the calendar
// queue, the object pools, and the coroutine frame recycling are all
// perf-motivated, and each one could silently perturb execution order (e.g.
// address-dependent hashing or FIFO-vs-heap tie-breaks). Running the same
// configured workload twice must yield the exact same event count and the
// exact same simulated results — not merely statistically similar ones.
TEST(LockstepTest, IdenticalRunsAreBitForBitDeterministic) {
  uint64_t done_a = 0, events_a = 0;
  const double coal_a = RunLockstep(8, 4, 2 * kMillisecond, &done_a, &events_a);
  uint64_t done_b = 0, events_b = 0;
  const double coal_b = RunLockstep(8, 4, 2 * kMillisecond, &done_b, &events_b);
  EXPECT_EQ(events_a, events_b);
  EXPECT_EQ(done_a, done_b);
  EXPECT_EQ(coal_a, coal_b);
  EXPECT_GT(events_a, 0u);
  EXPECT_GT(done_a, 0u);
}

// The sharded kernel run in lockstep with the sequential one: the same
// workload on one shard (the sequential kernel) and on two shards (client
// and server on different OS-visible queues) must execute the exact same
// trace — event count, completions and coalescing degree all bit-identical.
// The two-worker run additionally exercises the threaded window barrier.
TEST(LockstepTest, ShardedKernelMatchesSequentialKernel) {
  uint64_t done_seq = 0, events_seq = 0;
  const double coal_seq =
      RunLockstep(8, 4, 2 * kMillisecond, &done_seq, &events_seq);
  uint64_t done_par = 0, events_par = 0;
  const double coal_par = RunLockstep(8, 4, 2 * kMillisecond, &done_par,
                                      &events_par, /*shards=*/2);
  EXPECT_EQ(events_seq, events_par);
  EXPECT_EQ(done_seq, done_par);
  EXPECT_EQ(coal_seq, coal_par);
  uint64_t done_thr = 0, events_thr = 0;
  const double coal_thr = RunLockstep(8, 4, 2 * kMillisecond, &done_thr,
                                      &events_thr, /*shards=*/2, /*workers=*/2);
  EXPECT_EQ(events_seq, events_thr);
  EXPECT_EQ(done_seq, done_thr);
  EXPECT_EQ(coal_seq, coal_thr);
  EXPECT_GT(events_seq, 0u);
  EXPECT_GT(done_seq, 0u);
}

}  // namespace
}  // namespace flock
