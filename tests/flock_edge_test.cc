// Edge-case and stress tests for the Flock runtime: the §4.3 worker-pool
// execution mode, ring wrap-around under large payloads, QP
// activation/deactivation churn, and mixed RPC + one-sided traffic on the
// same lanes.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/flock/flock.h"

namespace flock {
namespace {

constexpr uint16_t kEchoRpc = 1;

uint32_t EchoHandler(const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
                     Nanos* cpu) {
  FLOCK_CHECK_LE(len, cap);
  std::memcpy(resp, req, len);
  *cpu = 60;
  return len;
}

sim::Proc EchoLoop(verbs::Cluster* cluster, Connection* conn, FlockThread* thread,
                   uint32_t bytes, int ops, int* completed) {
  std::vector<uint8_t> payload(bytes);
  for (int i = 0; i < ops; ++i) {
    for (uint32_t b = 0; b < bytes; ++b) {
      payload[b] = static_cast<uint8_t>(i + b + thread->id());
    }
    std::vector<uint8_t> resp;
    const bool ok = co_await conn->Call(*thread, kEchoRpc, payload.data(), bytes, &resp);
    EXPECT_TRUE(ok);
    EXPECT_EQ(resp.size(), bytes);
    if (resp.size() == bytes) {
      EXPECT_EQ(std::memcmp(resp.data(), payload.data(), bytes), 0)
          << "payload corrupted in flight";
    }
    ++(*completed);
  }
}

TEST(FlockWorkerPoolTest, HandlersRunOnWorkerCores) {
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 16});
  FlockConfig server_config;
  server_config.server_workers = 4;  // §4.3 application-managed pool
  FlockRuntime server(cluster, 0, server_config);
  server.RegisterHandler(kEchoRpc, EchoHandler);
  server.StartServer(4);

  FlockRuntime client(cluster, 1, FlockConfig{});
  client.StartClient();
  Connection* conn = client.Connect(server, 4);

  int completed = 0;
  for (int t = 0; t < 4; ++t) {
    cluster.sim().Spawn(
        EchoLoop(&cluster, conn, client.CreateThread(t), 64, 200, &completed));
  }
  cluster.sim().RunFor(100 * kMillisecond);
  EXPECT_EQ(completed, 800);
  EXPECT_EQ(server.server_stats().requests, 800u);
  // The worker cores (5..8) actually burned CPU.
  Nanos worker_busy = 0;
  for (int c = 5; c <= 8; ++c) {
    worker_busy += cluster.cpu(0).core(c).busy_time();
  }
  EXPECT_GT(worker_busy, 0);
}

TEST(FlockRingStressTest, LargePayloadsWrapSmallRings) {
  // 16 KB ring with 2 KB payloads: constant wrap markers, zeroing, and
  // head-slot flow control; every byte must round-trip intact.
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 8});
  FlockConfig config;
  config.ring_bytes = 16 * 1024;
  config.max_payload = 2048;
  config.credits = 4;
  config.credit_renew_threshold = 2;
  FlockRuntime server(cluster, 0, config);
  server.RegisterHandler(kEchoRpc, EchoHandler);
  server.StartServer(4);
  FlockRuntime client(cluster, 1, config);
  client.StartClient();
  Connection* conn = client.Connect(server, 2);

  int completed = 0;
  for (int t = 0; t < 3; ++t) {
    cluster.sim().Spawn(
        EchoLoop(&cluster, conn, client.CreateThread(t), 2048, 150, &completed));
  }
  cluster.sim().RunFor(400 * kMillisecond);
  EXPECT_EQ(completed, 450);
}

TEST(FlockChurnTest, TrafficSurvivesActivationChurn) {
  // Two clients with a tiny MAX_AQP and alternating bursts: lanes activate
  // and deactivate repeatedly; every request must still complete.
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 3, .cores_per_node = 8});
  FlockConfig server_config;
  server_config.max_active_qps = 3;
  server_config.qp_sched_interval = 100 * kMicrosecond;
  FlockRuntime server(cluster, 0, server_config);
  server.RegisterHandler(kEchoRpc, EchoHandler);
  server.StartServer(4);

  std::vector<std::unique_ptr<FlockRuntime>> clients;
  int completed = 0;
  auto burst_worker = [](verbs::Cluster* cl, Connection* conn, FlockThread* thread,
                         int bursts, int* completed) -> sim::Proc {
    std::vector<uint8_t> payload(64, 1);
    for (int b = 0; b < bursts; ++b) {
      for (int i = 0; i < 20; ++i) {
        std::vector<uint8_t> resp;
        const bool ok = co_await conn->Call(*thread, kEchoRpc, payload.data(), 64, &resp);
        EXPECT_TRUE(ok);
        ++(*completed);
      }
      // Go quiet long enough to be declared dormant, then burst again.
      co_await sim::Delay(cl->sim(), 500 * kMicrosecond);
    }
  };
  for (int c = 0; c < 2; ++c) {
    clients.push_back(std::make_unique<FlockRuntime>(cluster, 1 + c, FlockConfig{}));
    clients.back()->StartClient();
    Connection* conn = clients.back()->Connect(server, 6);
    for (int t = 0; t < 3; ++t) {
      cluster.sim().Spawn(burst_worker(&cluster, conn, clients.back()->CreateThread(t),
                                       10, &completed));
    }
  }
  cluster.sim().RunFor(400 * kMillisecond);
  EXPECT_EQ(completed, 2 * 3 * 10 * 20);
  EXPECT_GT(server.server_stats().deactivations, 0u);
  EXPECT_GT(server.server_stats().activations, 0u);
}

TEST(FlockMixedTest, RpcAndMemoryOpsShareLanes) {
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 8});
  FlockRuntime server(cluster, 0, FlockConfig{});
  server.RegisterHandler(kEchoRpc, EchoHandler);
  server.StartServer(4);
  FlockRuntime client(cluster, 1, FlockConfig{});
  client.StartClient();
  Connection* conn = client.Connect(server, 2);

  const uint64_t region = cluster.mem(0).Alloc(4096, 8);
  RemoteMr mr = conn->AttachMreg(region, 4096);

  int rpc_done = 0;
  uint64_t atomic_total = 0;
  auto mixed_worker = [](verbs::Cluster* cl, Connection* conn, FlockThread* thread,
                         RemoteMr mr, uint64_t region, int* rpc_done,
                         uint64_t* atomic_total) -> sim::Proc {
    std::vector<uint8_t> payload(48, 9);
    for (int i = 0; i < 200; ++i) {
      if (i % 3 == 0) {
        uint64_t old_value = 0;
        const verbs::WcStatus status =
            co_await conn->FetchAndAdd(*thread, region, 1, &old_value, mr);
        EXPECT_EQ(status, verbs::WcStatus::kSuccess);
        *atomic_total += 1;
      } else {
        std::vector<uint8_t> resp;
        const bool ok = co_await conn->Call(*thread, kEchoRpc, payload.data(), 48, &resp);
        EXPECT_TRUE(ok);
        ++(*rpc_done);
      }
    }
  };
  for (int t = 0; t < 4; ++t) {
    cluster.sim().Spawn(mixed_worker(&cluster, conn, client.CreateThread(t), mr, region,
                                     &rpc_done, &atomic_total));
  }
  cluster.sim().RunFor(200 * kMillisecond);
  EXPECT_EQ(rpc_done + static_cast<int>(atomic_total), 800);
  // The atomics all landed: the remote counter equals the op count.
  uint64_t counter = 0;
  cluster.mem(0).Read(region, &counter, 8);
  EXPECT_EQ(counter, atomic_total);
}

TEST(FlockWorkerPoolTest, PoolAndDispatcherModesAgree) {
  // The two §4.3 execution models must be semantically identical: same
  // requests, same responses, same totals.
  for (int workers : {0, 3}) {
    verbs::Cluster cluster(
        verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 16});
    FlockConfig server_config;
    server_config.server_workers = workers;
    FlockRuntime server(cluster, 0, server_config);
    server.RegisterHandler(kEchoRpc, EchoHandler);
    server.StartServer(4);
    FlockRuntime client(cluster, 1, FlockConfig{});
    client.StartClient();
    Connection* conn = client.Connect(server, 2);
    int completed = 0;
    for (int t = 0; t < 3; ++t) {
      cluster.sim().Spawn(
          EchoLoop(&cluster, conn, client.CreateThread(t), 128, 100, &completed));
    }
    cluster.sim().RunFor(100 * kMillisecond);
    EXPECT_EQ(completed, 300) << "workers=" << workers;
    EXPECT_EQ(server.server_stats().requests, 300u) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace flock
