// End-to-end tests for the distributed transaction systems: FlockTX (over
// Flock, one-sided validation) and the FaSST-like baseline (over UD RPC),
// running the same OCC + 2PC + primary-backup protocol (§8.5).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/txn/coordinator.h"
#include "src/txn/server.h"
#include "src/txn/transport.h"
#include "src/workloads/smallbank.h"
#include "src/workloads/tatp.h"

namespace flock::txn {
namespace {

constexpr int kServers = 3;
constexpr int kReplication = 3;

// Nodes 0..2: servers; nodes 3+: clients.
struct TxWorld {
  explicit TxWorld(int clients)
      : cluster(verbs::Cluster::Config{.num_nodes = kServers + clients,
                                       .cores_per_node = 8}) {
    for (int s = 0; s < kServers; ++s) {
      servers.push_back(std::make_unique<TxServer>(cluster.mem(s), s, kServers,
                                                   kReplication, 100000, 40));
      server_ptrs.push_back(servers.back().get());
    }
  }

  void Populate(const std::function<void(const std::function<void(uint64_t)>&)>& pop) {
    uint8_t value[kTxMaxValue] = {};
    pop([&](uint64_t key) { PopulateKey(server_ptrs, key, value); });
  }

  // Sum of the leading counters across all keys at a store.
  uint64_t CounterSum(kv::KvStore& store, const std::vector<uint64_t>& keys,
                      int partition) {
    uint64_t sum = 0;
    for (uint64_t key : keys) {
      if (PartitionOf(key, kServers) != partition) {
        continue;
      }
      uint8_t value[kTxMaxValue];
      if (store.Get(key, value, nullptr, nullptr)) {
        uint64_t counter = 0;
        std::memcpy(&counter, value, 8);
        sum += counter;
      }
    }
    return sum;
  }

  verbs::Cluster cluster;
  std::vector<std::unique_ptr<TxServer>> servers;
  std::vector<TxServer*> server_ptrs;
};

// ---------------------------------------------------------------------------
// FlockTX
// ---------------------------------------------------------------------------

struct FlockTxWorld : TxWorld {
  explicit FlockTxWorld(int clients) : TxWorld(clients) {
    FlockConfig config;
    for (int s = 0; s < kServers; ++s) {
      runtimes.push_back(std::make_unique<FlockRuntime>(cluster, s, config));
      servers[static_cast<size_t>(s)]->RegisterAll(
          [&](uint16_t id, RpcHandler h) { runtimes.back()->RegisterHandler(id, h); });
      runtimes.back()->StartServer(4);
    }
    for (int c = 0; c < clients; ++c) {
      client_runtimes.push_back(
          std::make_unique<FlockRuntime>(cluster, kServers + c, config));
      client_runtimes.back()->StartClient();
    }
  }

  // Builds a per-worker transport for a client thread.
  std::unique_ptr<FlockTxTransport> MakeTransport(int client, FlockThread& thread) {
    if (client_conns.size() <= static_cast<size_t>(client)) {
      client_conns.resize(static_cast<size_t>(client) + 1);
    }
    auto& conns = client_conns[static_cast<size_t>(client)];
    if (conns.empty()) {
      for (int s = 0; s < kServers; ++s) {
        conns.push_back(
            client_runtimes[static_cast<size_t>(client)]->Connect(*runtimes[s], 8));
      }
    }
    // Remote MRs over every primary store's spans (for one-sided validation).
    std::vector<std::vector<RemoteMr>> mrs(kServers);
    for (int s = 0; s < kServers; ++s) {
      for (const auto& span : servers[static_cast<size_t>(s)]->primary()->spans()) {
        mrs[static_cast<size_t>(s)].push_back(
            conns[static_cast<size_t>(s)]->AttachMreg(span.addr, span.length));
      }
    }
    return std::make_unique<FlockTxTransport>(*client_runtimes[static_cast<size_t>(client)],
                                              thread, conns, std::move(mrs));
  }

  std::vector<std::unique_ptr<FlockRuntime>> runtimes;
  std::vector<std::unique_ptr<FlockRuntime>> client_runtimes;
  std::vector<std::vector<Connection*>> client_conns;
};

TEST(FlockTxTest, SingleWriterCommitsAndReplicates) {
  FlockTxWorld world(1);
  std::vector<uint64_t> keys = {101, 202, 303, 404};
  world.Populate([&](const std::function<void(uint64_t)>& insert) {
    for (uint64_t k : keys) {
      insert(k);
    }
  });

  FlockThread* thread = world.client_runtimes[0]->CreateThread(0);
  auto transport = world.MakeTransport(0, *thread);
  TxCoordinator coordinator(*transport, kServers, kReplication);

  int committed = 0;
  auto app = [&]() -> sim::Co<void> {
    for (int round = 0; round < 25; ++round) {
      for (uint64_t k : keys) {
        TxRequest tx;
        tx.writes = {k};
        if (co_await coordinator.ExecuteOnce(tx)) {
          ++committed;
        }
      }
    }
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(300 * kMillisecond);
  EXPECT_EQ(committed, 100);

  // Every key's counter is 25 at the primary AND at both replicas.
  for (uint64_t key : keys) {
    const int partition = PartitionOf(key, kServers);
    for (int r = 0; r < kReplication; ++r) {
      TxServer& server = *world.servers[static_cast<size_t>((partition + r) % kServers)];
      kv::KvStore* store = server.store(partition);
      ASSERT_NE(store, nullptr);
      uint8_t value[kTxMaxValue];
      ASSERT_TRUE(store->Get(key, value, nullptr, nullptr)) << "key " << key;
      uint64_t counter = 0;
      std::memcpy(&counter, value, 8);
      EXPECT_EQ(counter, 25u) << "key " << key << " copy " << r;
    }
  }
}

TEST(FlockTxTest, ReadOnlyTransactionsSeeConsistentData) {
  FlockTxWorld world(1);
  world.Populate([&](const std::function<void(uint64_t)>& insert) {
    for (uint64_t k = 1; k <= 50; ++k) {
      insert(k);
    }
  });
  FlockThread* thread = world.client_runtimes[0]->CreateThread(0);
  auto transport = world.MakeTransport(0, *thread);
  TxCoordinator coordinator(*transport, kServers, kReplication);

  int committed = 0;
  auto app = [&]() -> sim::Co<void> {
    for (uint64_t k = 1; k <= 50; ++k) {
      TxRequest tx;
      tx.reads = {k, (k % 50) + 1};
      if (co_await coordinator.ExecuteOnce(tx)) {
        ++committed;
      }
    }
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(200 * kMillisecond);
  EXPECT_EQ(committed, 50);
  EXPECT_EQ(coordinator.stats().aborted_validation, 0u);
}

TEST(FlockTxTest, ContendedWritersSerializeViaOcc) {
  // Many coroutine workers hammering a tiny hot set: the final counter sums
  // must equal the committed transaction count (serializability), with locks
  // causing some aborts along the way.
  FlockTxWorld world(2);
  std::vector<uint64_t> keys = {1, 2, 3};
  world.Populate([&](const std::function<void(uint64_t)>& insert) {
    for (uint64_t k : keys) {
      insert(k);
    }
  });

  uint64_t committed_writes = 0;
  uint64_t lock_aborts = 0;
  std::vector<std::unique_ptr<FlockTxTransport>> transports;
  std::vector<std::unique_ptr<TxCoordinator>> coordinators;
  for (int c = 0; c < 2; ++c) {
    FlockThread* thread = world.client_runtimes[static_cast<size_t>(c)]->CreateThread(0);
    for (int w = 0; w < 4; ++w) {
      transports.push_back(world.MakeTransport(c, *thread));
      coordinators.push_back(
          std::make_unique<TxCoordinator>(*transports.back(), kServers, kReplication));
      TxCoordinator* coordinator = coordinators.back().get();
      auto worker = [&world, coordinator, &keys, &committed_writes, w,
                     c]() -> sim::Co<void> {
        Rng rng(static_cast<uint64_t>(c * 37 + w + 1));
        for (int i = 0; i < 60; ++i) {
          TxRequest tx;
          tx.writes = {keys[rng.NextBelow(keys.size())]};
          if (co_await coordinator->ExecuteOnce(tx)) {
            committed_writes += 1;
          }
        }
      };
      world.cluster.sim().Spawn(sim::RunClosure(worker));
    }
  }
  world.cluster.sim().RunFor(500 * kMillisecond);

  uint64_t total_counter = 0;
  for (uint64_t key : keys) {
    const int partition = PartitionOf(key, kServers);
    kv::KvStore* store =
        world.servers[static_cast<size_t>(partition)]->store(partition);
    uint8_t value[kTxMaxValue];
    ASSERT_TRUE(store->Get(key, value, nullptr, nullptr));
    uint64_t counter = 0;
    std::memcpy(&counter, value, 8);
    total_counter += counter;
  }
  EXPECT_EQ(total_counter, committed_writes);
  EXPECT_GT(committed_writes, 0u);
  for (const auto& coordinator : coordinators) {
    lock_aborts += coordinator->stats().aborted_locks;
  }
  // With 8 workers on 3 keys, lock conflicts must occur.
  EXPECT_GT(lock_aborts, 0u);
}

// ---------------------------------------------------------------------------
// One-sided data-plane modes (TxMode::kOccOneSidedRead / kLockOneSided)
// ---------------------------------------------------------------------------

TEST(FlockTxTest, OneSidedReadModeUsesFlReadAfterWarmup) {
  FlockTxWorld world(1);
  constexpr uint64_t kKeys = 20;
  world.Populate([&](const std::function<void(uint64_t)>& insert) {
    for (uint64_t k = 1; k <= kKeys; ++k) {
      insert(k);
    }
  });
  FlockThread* thread = world.client_runtimes[0]->CreateThread(0);
  auto transport = world.MakeTransport(0, *thread);
  TxCoordinator coordinator(*transport, kServers, kReplication,
                            TxMode::kOccOneSidedRead);

  int committed = 0;
  auto app = [&]() -> sim::Co<void> {
    // Pass 1: cold cache — every read goes through RPC and learns its
    // record address. Pass 2: the same reads resolve by fl_read. Pass 3:
    // mixed read+write still serializes (versions bump under the readers).
    for (int pass = 0; pass < 2; ++pass) {
      for (uint64_t k = 1; k <= kKeys; ++k) {
        TxRequest tx;
        tx.reads = {k, (k % kKeys) + 1};
        if (co_await coordinator.ExecuteOnce(tx)) {
          ++committed;
        }
      }
    }
    for (uint64_t k = 1; k <= kKeys; ++k) {
      TxRequest tx;
      tx.reads = {(k % kKeys) + 1};
      tx.writes = {k};
      if (co_await coordinator.ExecuteOnce(tx)) {
        ++committed;
      }
    }
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(300 * kMillisecond);
  EXPECT_EQ(committed, static_cast<int>(3 * kKeys));
  // Pass 2 alone is 2*kKeys one-sided reads; pass 3 adds more.
  EXPECT_GE(transport->os_stats().reads, 2 * kKeys);
  EXPECT_EQ(coordinator.stats().aborted_validation, 0u);
}

TEST(FlockTxTest, LockModeCommitsInstallsAndReplicates) {
  FlockTxWorld world(1);
  std::vector<uint64_t> keys = {101, 202, 303, 404};
  world.Populate([&](const std::function<void(uint64_t)>& insert) {
    for (uint64_t k : keys) {
      insert(k);
    }
  });

  FlockThread* thread = world.client_runtimes[0]->CreateThread(0);
  auto transport = world.MakeTransport(0, *thread);
  TxCoordinator coordinator(*transport, kServers, kReplication,
                            TxMode::kLockOneSided);

  int committed = 0;
  auto app = [&]() -> sim::Co<void> {
    for (int round = 0; round < 25; ++round) {
      for (uint64_t k : keys) {
        TxRequest tx;
        tx.writes = {k};
        if (co_await coordinator.ExecuteOnce(tx)) {
          ++committed;
        }
      }
    }
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(300 * kMillisecond);
  EXPECT_EQ(committed, 100);
  // The data plane really went one-sided: CAS locks and fl_write installs.
  EXPECT_GT(transport->os_stats().locks, 0u);
  EXPECT_GT(transport->os_stats().installs, 0u);
  EXPECT_GT(transport->os_stats().reads, 0u);  // warm-cache fetches

  // Every key's counter is 25 at the primary AND at both replicas: the
  // one-sided install and the RPC replication log agree.
  for (uint64_t key : keys) {
    const int partition = PartitionOf(key, kServers);
    for (int r = 0; r < kReplication; ++r) {
      TxServer& server = *world.servers[static_cast<size_t>((partition + r) % kServers)];
      kv::KvStore* store = server.store(partition);
      ASSERT_NE(store, nullptr);
      uint8_t value[kTxMaxValue];
      ASSERT_TRUE(store->Get(key, value, nullptr, nullptr)) << "key " << key;
      uint64_t counter = 0;
      std::memcpy(&counter, value, 8);
      EXPECT_EQ(counter, 25u) << "key " << key << " copy " << r;
    }
  }
}

TEST(FlockTxTest, LockModeContendedWritersStaySerializable) {
  // The lock-mode analogue of ContendedWritersSerializeViaOcc: CAS try-locks
  // racing on a 3-key hot set must conflict (aborted_locks > 0) yet the
  // counter sums must equal the committed count exactly.
  FlockTxWorld world(2);
  std::vector<uint64_t> keys = {1, 2, 3};
  world.Populate([&](const std::function<void(uint64_t)>& insert) {
    for (uint64_t k : keys) {
      insert(k);
    }
  });

  uint64_t committed_writes = 0;
  uint64_t lock_aborts = 0;
  int workers_done = 0;
  std::vector<std::unique_ptr<FlockTxTransport>> transports;
  std::vector<std::unique_ptr<TxCoordinator>> coordinators;
  for (int c = 0; c < 2; ++c) {
    FlockThread* thread = world.client_runtimes[static_cast<size_t>(c)]->CreateThread(0);
    for (int w = 0; w < 4; ++w) {
      transports.push_back(world.MakeTransport(c, *thread));
      coordinators.push_back(std::make_unique<TxCoordinator>(
          *transports.back(), kServers, kReplication, TxMode::kLockOneSided));
      TxCoordinator* coordinator = coordinators.back().get();
      auto worker = [&world, coordinator, &keys, &committed_writes,
                     &workers_done, w, c]() -> sim::Co<void> {
        Rng rng(static_cast<uint64_t>(c * 41 + w + 1));
        for (int i = 0; i < 60; ++i) {
          TxRequest tx;
          tx.writes = {keys[rng.NextBelow(keys.size())]};
          if (co_await coordinator->ExecuteOnce(tx)) {
            committed_writes += 1;
          }
        }
        workers_done += 1;
      };
      world.cluster.sim().Spawn(sim::RunClosure(worker));
    }
  }
  world.cluster.sim().RunFor(500 * kMillisecond);
  // A worker cut off by the horizon could leave a lock held, which would make
  // the final store reads fail spuriously — so insist everyone finished.
  ASSERT_EQ(workers_done, 8);

  uint64_t total_counter = 0;
  for (uint64_t key : keys) {
    const int partition = PartitionOf(key, kServers);
    kv::KvStore* store =
        world.servers[static_cast<size_t>(partition)]->store(partition);
    uint8_t value[kTxMaxValue];
    ASSERT_TRUE(store->Get(key, value, nullptr, nullptr));
    uint64_t counter = 0;
    std::memcpy(&counter, value, 8);
    total_counter += counter;
  }
  EXPECT_EQ(total_counter, committed_writes);
  EXPECT_GT(committed_writes, 0u);
  for (const auto& coordinator : coordinators) {
    lock_aborts += coordinator->stats().aborted_locks;
  }
  EXPECT_GT(lock_aborts, 0u);
}

// ---------------------------------------------------------------------------
// FaSST-like baseline
// ---------------------------------------------------------------------------

struct FasstTxWorld : TxWorld {
  explicit FasstTxWorld(int clients) : TxWorld(clients) {
    for (int s = 0; s < kServers; ++s) {
      ud_servers.push_back(std::make_unique<baselines::UdRpcServer>(
          cluster, s, baselines::UdRpcServer::Config{.worker_threads = 4}));
      servers[static_cast<size_t>(s)]->RegisterAll([&](uint16_t id, RpcHandler h) {
        ud_servers.back()->RegisterHandler(id, h);
      });
      ud_servers.back()->Start();
    }
    for (int c = 0; c < clients; ++c) {
      ud_clients.push_back(
          std::make_unique<baselines::UdRpcClient>(cluster, kServers + c));
    }
  }

  std::vector<std::unique_ptr<baselines::UdRpcServer>> ud_servers;
  std::vector<std::unique_ptr<baselines::UdRpcClient>> ud_clients;
};

TEST(FasstTxTest, TransactionsCommitOverUd) {
  FasstTxWorld world(1);
  std::vector<uint64_t> keys = {11, 22, 33};
  world.Populate([&](const std::function<void(uint64_t)>& insert) {
    for (uint64_t k : keys) {
      insert(k);
    }
  });

  baselines::UdRpcClient::Thread* thread = world.ud_clients[0]->CreateThread(0);
  thread->StartPoller();  // FaSST's dedicated response coroutine
  std::vector<baselines::UdEndpoint> peers;
  for (int s = 0; s < kServers; ++s) {
    peers.push_back(world.ud_servers[static_cast<size_t>(s)]->endpoint(0));
  }
  FasstTxTransport transport(*thread, peers, 2 * kMillisecond);
  TxCoordinator coordinator(transport, kServers, kReplication);

  int committed = 0;
  auto app = [&]() -> sim::Co<void> {
    for (int round = 0; round < 30; ++round) {
      for (uint64_t k : keys) {
        TxRequest tx;
        tx.writes = {k};
        if (co_await coordinator.ExecuteOnce(tx)) {
          ++committed;
        }
      }
    }
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(500 * kMillisecond);
  EXPECT_EQ(committed, 90);

  for (uint64_t key : keys) {
    const int partition = PartitionOf(key, kServers);
    kv::KvStore* store =
        world.servers[static_cast<size_t>(partition)]->store(partition);
    uint8_t value[kTxMaxValue];
    ASSERT_TRUE(store->Get(key, value, nullptr, nullptr));
    uint64_t counter = 0;
    std::memcpy(&counter, value, 8);
    EXPECT_EQ(counter, 30u);
  }
}

TEST(FasstTxTest, MultipleWorkerCoroutinesShareOneThread) {
  FasstTxWorld world(1);
  std::vector<uint64_t> keys;
  for (uint64_t k = 100; k < 130; ++k) {
    keys.push_back(k);
  }
  world.Populate([&](const std::function<void(uint64_t)>& insert) {
    for (uint64_t k : keys) {
      insert(k);
    }
  });

  baselines::UdRpcClient::Thread* thread = world.ud_clients[0]->CreateThread(0);
  thread->StartPoller();
  std::vector<baselines::UdEndpoint> peers;
  for (int s = 0; s < kServers; ++s) {
    peers.push_back(world.ud_servers[static_cast<size_t>(s)]->endpoint(0));
  }

  uint64_t committed = 0;
  std::vector<std::unique_ptr<FasstTxTransport>> transports;
  std::vector<std::unique_ptr<TxCoordinator>> coordinators;
  for (int w = 0; w < 8; ++w) {
    transports.push_back(
        std::make_unique<FasstTxTransport>(*thread, peers, 2 * kMillisecond));
    coordinators.push_back(
        std::make_unique<TxCoordinator>(*transports.back(), kServers, kReplication));
    TxCoordinator* coordinator = coordinators.back().get();
    auto worker = [&world, coordinator, &keys, &committed, w]() -> sim::Co<void> {
      Rng rng(static_cast<uint64_t>(w + 11));
      for (int i = 0; i < 40; ++i) {
        TxRequest tx;
        tx.writes = {keys[rng.NextBelow(keys.size())]};
        if (co_await coordinator->ExecuteOnce(tx)) {
          committed += 1;
        }
      }
    };
    world.cluster.sim().Spawn(sim::RunClosure(worker));
  }
  world.cluster.sim().RunFor(800 * kMillisecond);

  uint64_t total_counter = 0;
  for (uint64_t key : keys) {
    const int partition = PartitionOf(key, kServers);
    kv::KvStore* store =
        world.servers[static_cast<size_t>(partition)]->store(partition);
    uint8_t value[kTxMaxValue];
    ASSERT_TRUE(store->Get(key, value, nullptr, nullptr));
    uint64_t counter = 0;
    std::memcpy(&counter, value, 8);
    total_counter += counter;
  }
  EXPECT_EQ(total_counter, committed);
  EXPECT_GT(committed, 0u);
}

// ---------------------------------------------------------------------------
// Workload generators
// ---------------------------------------------------------------------------

TEST(WorkloadTest, TatpMixMatchesSpec) {
  workloads::Tatp tatp(10000);
  Rng rng(5);
  int reads_only = 0, with_writes = 0, multi_read = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    txn::TxRequest tx = tatp.Next(rng);
    EXPECT_FALSE(tx.reads.empty() && tx.writes.empty());
    if (tx.writes.empty()) {
      ++reads_only;
      if (tx.reads.size() > 1) {
        ++multi_read;
      }
    } else {
      ++with_writes;
    }
  }
  // 80% read-only, 10% of all transactions are multi-key reads, 20% update.
  EXPECT_NEAR(reads_only, kDraws * 0.80, kDraws * 0.02);
  EXPECT_NEAR(with_writes, kDraws * 0.20, kDraws * 0.02);
  EXPECT_NEAR(multi_read, kDraws * 0.10, kDraws * 0.02);
}

TEST(WorkloadTest, SmallbankIsWriteIntensiveAndSkewed) {
  workloads::Smallbank bank(100000);
  Rng rng(6);
  int writes = 0;
  int hot = 0;
  const int kDraws = 100000;
  const uint64_t hot_limit = 4000;  // 4% of 100k
  for (int i = 0; i < kDraws; ++i) {
    txn::TxRequest tx = bank.Next(rng);
    if (!tx.writes.empty()) {
      ++writes;
    }
    for (uint64_t key : tx.writes) {
      if ((key & 0xffffffffffffffull) < hot_limit) {
        ++hot;
        break;
      }
    }
  }
  EXPECT_NEAR(writes, kDraws * 0.85, kDraws * 0.02);
  EXPECT_GT(hot, writes * 0.7);  // ~90% of accesses hit the 4% hot set
}

TEST(WorkloadTest, TatpKeysAreDistinctAcrossTables) {
  using workloads::Tatp;
  EXPECT_NE(Tatp::Key(Tatp::kSubscriber, 5), Tatp::Key(Tatp::kAccessInfo, 5));
  EXPECT_NE(Tatp::Key(Tatp::kSpecialFacility, 5), Tatp::Key(Tatp::kCallForwarding, 5));
}

}  // namespace
}  // namespace flock::txn
