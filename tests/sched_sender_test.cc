// Unit tests for the sender-side thread scheduler's pure primitives
// (src/flock/sched/sender.h, Algorithm 1): sort order, byte-quota packing,
// and the stability (AssignmentHealthy) predicate. Everything here runs on
// synthetic ThreadSchedStat vectors — no simulator, no cluster.
#include "src/flock/sched/sender.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace flock::internal {
namespace {

ThreadSchedStat Stat(size_t tid, uint32_t median_size, uint64_t reqs,
                     uint64_t bytes) {
  ThreadSchedStat s;
  s.tid = tid;
  s.median_size = median_size;
  s.reqs = reqs;
  s.bytes = bytes;
  return s;
}

std::vector<size_t> Tids(const std::vector<ThreadSchedStat>& stats) {
  std::vector<size_t> tids;
  for (const ThreadSchedStat& s : stats) {
    tids.push_back(s.tid);
  }
  return tids;
}

// ---- SortByAlgorithm1 ----

TEST(SortByAlgorithm1, OrdersByMedianSizeFirst) {
  std::vector<ThreadSchedStat> stats = {
      Stat(0, 4096, 10, 40960),
      Stat(1, 64, 10, 640),
      Stat(2, 512, 10, 5120),
  };
  SortByAlgorithm1(stats);
  EXPECT_EQ(Tids(stats), (std::vector<size_t>{1, 2, 0}));
}

TEST(SortByAlgorithm1, BreaksMedianTiesByRequestCount) {
  std::vector<ThreadSchedStat> stats = {
      Stat(0, 64, 1000, 64000),
      Stat(1, 64, 100, 6400),
  };
  SortByAlgorithm1(stats);
  EXPECT_EQ(Tids(stats), (std::vector<size_t>{1, 0}));
}

TEST(SortByAlgorithm1, QuantizesRequestCountAgainstNoise) {
  // 64-request buckets: counts differing by less than a bucket must not
  // reorder threads (run-to-run noise would otherwise reshuffle assignments
  // every interval and break coalescing lockstep). Within a bucket the tid
  // tie-break keeps the order strict and deterministic.
  std::vector<ThreadSchedStat> stats = {
      Stat(3, 64, 70, 4480),  // 70 >> 6 == 1
      Stat(1, 64, 100, 6400),  // 100 >> 6 == 1
      Stat(2, 64, 65, 4160),  // 65 >> 6 == 1
  };
  SortByAlgorithm1(stats);
  EXPECT_EQ(Tids(stats), (std::vector<size_t>{1, 2, 3}));

  // A full bucket of difference does reorder.
  stats = {Stat(0, 64, 130, 8320), Stat(1, 64, 60, 3840)};
  SortByAlgorithm1(stats);
  EXPECT_EQ(Tids(stats), (std::vector<size_t>{1, 0}));
}

TEST(SortByAlgorithm1, IsDeterministicOnFullTies) {
  std::vector<ThreadSchedStat> stats = {
      Stat(2, 64, 10, 640), Stat(0, 64, 10, 640), Stat(1, 64, 10, 640)};
  SortByAlgorithm1(stats);
  EXPECT_EQ(Tids(stats), (std::vector<size_t>{0, 1, 2}));
}

// ---- PackByByteQuota ----

TEST(PackByByteQuota, SplitsEvenLoadAcrossLanes) {
  // Four equal threads, two lanes, quota = total/2: the first two threads
  // fill lane a, the rest go to lane b.
  std::vector<ThreadSchedStat> sorted = {
      Stat(0, 64, 10, 100), Stat(1, 64, 10, 100), Stat(2, 64, 10, 100),
      Stat(3, 64, 10, 100)};
  std::vector<uint32_t> active = {5, 9};  // lane ids need not be dense
  std::vector<uint32_t> desired(4, UINT32_MAX);
  PackByByteQuota(sorted, active, 400, &desired);
  EXPECT_EQ(desired, (std::vector<uint32_t>{5, 5, 9, 9}));
}

TEST(PackByByteQuota, HeavyThreadFillsItsLaneAlone) {
  // One thread with half the bytes exhausts its lane's quota by itself; the
  // small threads share the next lane instead of queueing behind it.
  std::vector<ThreadSchedStat> sorted = {
      Stat(0, 64, 10, 50), Stat(1, 64, 10, 50), Stat(2, 4096, 10, 100)};
  std::vector<uint32_t> active = {0, 1};
  std::vector<uint32_t> desired(3, UINT32_MAX);
  PackByByteQuota(sorted, active, 200, &desired);
  EXPECT_EQ(desired[0], 0u);
  EXPECT_EQ(desired[1], 0u);
  EXPECT_EQ(desired[2], 1u);
}

TEST(PackByByteQuota, OverflowClampsToLastLane) {
  // More quota-exceeding threads than lanes: the tail all lands on the last
  // active lane rather than indexing past the end.
  std::vector<ThreadSchedStat> sorted = {
      Stat(0, 64, 10, 100), Stat(1, 64, 10, 100), Stat(2, 64, 10, 100),
      Stat(3, 64, 10, 100)};
  std::vector<uint32_t> active = {7};
  std::vector<uint32_t> desired(4, UINT32_MAX);
  PackByByteQuota(sorted, active, 400, &desired);
  EXPECT_EQ(desired, (std::vector<uint32_t>{7, 7, 7, 7}));
}

TEST(PackByByteQuota, ZeroTotalBytesStillAssignsEveryThread) {
  // Idle interval: the quota clamps to 1 (no division by zero) and every
  // thread still gets a lane — idle threads consolidate on the first active
  // lane until they have traffic to balance by.
  std::vector<ThreadSchedStat> sorted = {Stat(0, 0, 0, 0), Stat(1, 0, 0, 0)};
  std::vector<uint32_t> active = {2, 3};
  std::vector<uint32_t> desired(2, UINT32_MAX);
  PackByByteQuota(sorted, active, 0, &desired);
  EXPECT_EQ(desired[0], 2u);
  EXPECT_EQ(desired[1], 2u);
}

// ---- PackByByteQuota, segregate mode (segmentation on) ----

TEST(PackByByteQuota, SegregateOpensFreshLaneForQuotaBlowingThread) {
  // Segregate mode: a thread whose bytes would blow the quota of a non-empty
  // lane opens a fresh lane instead of riding behind the threads already
  // there. Without segregation thread 2 lands on lane 0 with the smalls.
  std::vector<ThreadSchedStat> sorted = {
      Stat(0, 64, 10, 10), Stat(1, 64, 10, 10), Stat(2, 1 << 20, 1, 380)};
  std::vector<uint32_t> active = {0, 1};
  std::vector<uint32_t> desired(3, UINT32_MAX);
  PackByByteQuota(sorted, active, 400, &desired, /*segregate=*/false);
  EXPECT_EQ(desired, (std::vector<uint32_t>{0, 0, 0}));
  desired.assign(3, UINT32_MAX);
  PackByByteQuota(sorted, active, 400, &desired, /*segregate=*/true);
  EXPECT_EQ(desired, (std::vector<uint32_t>{0, 0, 1}));
}

TEST(PackByByteQuota, SegregateHandsStrandedLanesBackToTheSmallClass) {
  // The extent-store shape: four metadata threads with negligible bytes plus
  // two jumbo threads carrying everything, over four lanes. Quota packing
  // collapses all four smalls onto lane 0 (their bytes never fill a quota)
  // and gives each jumbo its own lane — stranding lane 3. The handback pass
  // must split the small flock across the stranded lane so the latency
  // class keeps its parallelism.
  std::vector<ThreadSchedStat> sorted = {
      Stat(0, 128, 1000, 100), Stat(1, 128, 1000, 100),
      Stat(2, 128, 1000, 100), Stat(3, 128, 1000, 100),
      Stat(4, 1 << 20, 10, 500'000), Stat(5, 1 << 20, 10, 500'000)};
  std::vector<uint32_t> active = {0, 1, 2, 3};
  std::vector<uint32_t> desired(6, UINT32_MAX);
  PackByByteQuota(sorted, active, 1'000'400, &desired, /*segregate=*/true);
  // Jumbos keep dedicated lanes, distinct from every small thread's lane.
  EXPECT_NE(desired[4], desired[5]);
  for (size_t small = 0; small < 4; ++small) {
    EXPECT_NE(desired[small], desired[4]);
    EXPECT_NE(desired[small], desired[5]);
  }
  // The smalls occupy two lanes, two threads each — no lane stranded.
  EXPECT_EQ(desired[0], desired[1]);
  EXPECT_EQ(desired[2], desired[3]);
  EXPECT_NE(desired[0], desired[2]);
}

TEST(PackByByteQuota, SegregateHandbackStopsAtSingletonRuns) {
  // More lanes than threads: once every run is a single thread there is
  // nothing left to spread and the pass must terminate with lanes unused.
  std::vector<ThreadSchedStat> sorted = {Stat(0, 64, 10, 50),
                                         Stat(1, 1 << 20, 1, 950)};
  std::vector<uint32_t> active = {0, 1, 2, 3};
  std::vector<uint32_t> desired(2, UINT32_MAX);
  PackByByteQuota(sorted, active, 1000, &desired, /*segregate=*/true);
  EXPECT_NE(desired[0], desired[1]);
  EXPECT_LT(desired[0], 4u);
  EXPECT_LT(desired[1], 4u);
}

// ---- AssignmentHealthy ----

struct HealthyFixture {
  std::vector<ThreadSchedStat> stats;
  std::vector<uint32_t> desired;
  std::vector<uint8_t> lane_active;
  LaneLoadScratch scratch;

  bool Check(size_t num_active, uint64_t total_bytes) {
    return AssignmentHealthy(stats, desired, lane_active, num_active,
                             total_bytes, &scratch);
  }
};

TEST(AssignmentHealthy, BalancedSameSizeAssignmentIsKept) {
  HealthyFixture f;
  f.stats = {Stat(0, 64, 10, 100), Stat(1, 64, 10, 100), Stat(2, 64, 10, 100),
             Stat(3, 64, 10, 100)};
  f.desired = {0, 0, 1, 1};
  f.lane_active = {1, 1};
  EXPECT_TRUE(f.Check(2, 400));
}

TEST(AssignmentHealthy, UnassignedThreadForcesResort) {
  HealthyFixture f;
  f.stats = {Stat(0, 64, 10, 100), Stat(1, 64, 10, 100)};
  f.desired = {0, UINT32_MAX};
  f.lane_active = {1};
  EXPECT_FALSE(f.Check(1, 200));
}

TEST(AssignmentHealthy, ThreadOnInactiveLaneForcesResort) {
  // Lane 1 failed since the last tick; its threads must be re-packed.
  HealthyFixture f;
  f.stats = {Stat(0, 64, 10, 100), Stat(1, 64, 10, 100)};
  f.desired = {0, 1};
  f.lane_active = {1, 0};
  EXPECT_FALSE(f.Check(1, 200));
}

TEST(AssignmentHealthy, LoadImbalanceBeyondTwiceMeanForcesResort) {
  // All bytes on one of three lanes: lane 0 carries total > 2*(total/3) + 1.
  // (With only two lanes the 2x slack can never trip — one lane holding
  // everything is exactly 2x the mean.)
  HealthyFixture f;
  f.stats = {Stat(0, 64, 10, 500), Stat(1, 64, 10, 500),
             Stat(2, 64, 10, 500)};
  f.desired = {0, 0, 0};
  f.lane_active = {1, 1, 1};
  EXPECT_FALSE(f.Check(3, 1500));

  // The same load spread across the lanes is healthy.
  f.desired = {0, 1, 2};
  EXPECT_TRUE(f.Check(3, 1500));
}

TEST(AssignmentHealthy, MixedSmallAndLargePayloadsOnOneLaneForcesResort) {
  // Head-of-line risk: a 64B thread sharing a lane with a 4KB thread. Byte
  // loads are balanced, so only the size-mixing rule can catch it.
  HealthyFixture f;
  f.stats = {Stat(0, 64, 10, 500), Stat(1, 4096, 10, 500),
             Stat(2, 64, 10, 500), Stat(3, 4096, 10, 500)};
  f.desired = {0, 0, 1, 1};
  f.lane_active = {1, 1};
  EXPECT_FALSE(f.Check(2, 2000));

  // Segregating sizes (small lane / large lane) is healthy even though the
  // large lane now carries more bytes — 500+500 vs mean 1000 is within 2x.
  f.desired = {0, 1, 0, 1};
  EXPECT_TRUE(f.Check(2, 2000));
}

TEST(AssignmentHealthy, SmallSizeSpreadIsNotHeadOfLine) {
  // The mixing rule keys off 4 * max(min_size, 64): sub-64B payloads never
  // trip it against 64..256B neighbors, so tiny-message workloads are not
  // perpetually reshuffled. With a single lane the load rule cannot trigger
  // either, so mixing is the only possible verdict here.
  HealthyFixture f;
  f.stats = {Stat(0, 8, 10, 500), Stat(1, 256, 10, 500)};
  f.desired = {0, 0};
  f.lane_active = {1};
  EXPECT_TRUE(f.Check(1, 1000));

  // 257B against 8B does trip it (4 * max(8, 64) = 256).
  f.stats[1].median_size = 257;
  EXPECT_FALSE(f.Check(1, 1000));
}

TEST(AssignmentHealthy, IdleIntervalIsAlwaysHealthy) {
  // total_bytes == 0 skips the load rules entirely: an idle client must not
  // reshuffle threads.
  HealthyFixture f;
  f.stats = {Stat(0, 64, 0, 0), Stat(1, 4096, 0, 0)};
  f.desired = {0, 0};
  f.lane_active = {1, 1};
  EXPECT_TRUE(f.Check(2, 0));
}

// ---- end-to-end over the pure primitives ----

TEST(SenderSchedPrimitives, SortThenPackSegregatesSizes) {
  // Mixed workload with byte loads balanced across sizes: after sort + pack,
  // the small-payload threads fill the first lane and the large-payload
  // threads the second — no lane serves both sizes.
  std::vector<ThreadSchedStat> stats = {
      Stat(0, 4096, 100, 409600), Stat(1, 64, 6400, 409600),
      Stat(2, 4096, 100, 409600), Stat(3, 64, 6400, 409600)};
  uint64_t total = 0;
  for (const ThreadSchedStat& s : stats) {
    total += s.bytes;
  }
  SortByAlgorithm1(stats);
  std::vector<uint32_t> active = {0, 1};
  std::vector<uint32_t> desired(4, UINT32_MAX);
  PackByByteQuota(stats, active, total, &desired);

  // Small threads (1, 3) must not share a lane with the large ones (0, 2).
  EXPECT_EQ(desired[1], desired[3]);
  EXPECT_EQ(desired[0], desired[2]);
  EXPECT_NE(desired[1], desired[0]);

  // No lane may hold both sizes.
  for (uint32_t lane = 0; lane < 2; ++lane) {
    uint32_t min_size = UINT32_MAX;
    uint32_t max_size = 0;
    for (const ThreadSchedStat& s : stats) {
      if (desired[s.tid] == lane) {
        min_size = std::min(min_size, s.median_size);
        max_size = std::max(max_size, s.median_size);
      }
    }
    if (min_size != UINT32_MAX) {
      EXPECT_LE(max_size, 4 * std::max(min_size, 64u));
    }
  }

  // The produced assignment is the scheduler's own fixed point: a later tick
  // with the same stats must keep it.
  std::vector<uint8_t> lane_active = {1, 1};
  LaneLoadScratch scratch;
  EXPECT_TRUE(
      AssignmentHealthy(stats, desired, lane_active, 2, total, &scratch));
}

}  // namespace
}  // namespace flock::internal
