// Large-message segmentation (DESIGN.md §16): ReassemblyPool unit coverage,
// the per-chunk SeqSlotMap::Find lookup, and end-to-end multi-MB extents
// over the simulated RDMA stack — chunk trains both directions, mixed with
// small metadata traffic.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/pool.h"
#include "src/flock/flock.h"
#include "src/flock/segment.h"

namespace flock {
namespace {

using internal::ReassemblyKey;
using internal::ReassemblyPool;
using internal::SegmentChunkBytes;
using wire::SegMark;

std::vector<uint8_t> Pattern(size_t n, uint32_t seed) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(seed * 131 + i * 7);
  }
  return v;
}

// ---------------------------------------------------------------------------
// ReassemblyPool
// ---------------------------------------------------------------------------

TEST(ReassemblyPoolTest, CompleteTrainRoundTrips) {
  ReassemblyPool pool;
  pool.Init(4, 64 * 1024);
  const ReassemblyKey key{&pool, 3, 42};
  auto bytes = Pattern(1000, 1);

  uint32_t complete_len = 0;
  EXPECT_EQ(pool.Feed(key, SegMark::kFirst, bytes.data(), 400, 10, &complete_len),
            nullptr);
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_EQ(pool.Feed(key, SegMark::kMiddle, bytes.data() + 400, 400, 20,
                      &complete_len),
            nullptr);
  const uint8_t* out =
      pool.Feed(key, SegMark::kLast, bytes.data() + 800, 200, 30, &complete_len);
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(complete_len, 1000u);
  EXPECT_EQ(std::memcmp(out, bytes.data(), 1000), 0);
  // Completion releases the entry; the buffer is kept for reuse.
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.completed(), 1u);
}

TEST(ReassemblyPoolTest, FirstChunkResetsStalePartial) {
  ReassemblyPool pool;
  pool.Init(2, 4096);
  const ReassemblyKey key{&pool, 1, 7};
  auto stale = Pattern(300, 2);
  auto fresh = Pattern(500, 3);
  uint32_t complete_len = 0;

  // A partial train (retransmit scenario: the tail chunks were lost).
  pool.Feed(key, SegMark::kFirst, stale.data(), 300, 0, &complete_len);
  // The watchdog resends the whole extent: kFirst must discard the partial.
  pool.Feed(key, SegMark::kFirst, fresh.data(), 250, 50, &complete_len);
  const uint8_t* out =
      pool.Feed(key, SegMark::kLast, fresh.data() + 250, 250, 60, &complete_len);
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(complete_len, 500u);
  EXPECT_EQ(std::memcmp(out, fresh.data(), 500), 0);
  EXPECT_EQ(pool.resets(), 1u);
}

TEST(ReassemblyPoolTest, ContinuationWithoutFirstIsOrphan) {
  ReassemblyPool pool;
  pool.Init(2, 4096);
  auto bytes = Pattern(100, 4);
  uint32_t complete_len = 0;
  EXPECT_EQ(pool.Feed({&pool, 0, 1}, SegMark::kMiddle, bytes.data(), 100, 0,
                      &complete_len),
            nullptr);
  EXPECT_EQ(pool.Feed({&pool, 0, 1}, SegMark::kLast, bytes.data(), 100, 0,
                      &complete_len),
            nullptr);
  EXPECT_EQ(pool.orphans(), 2u);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(ReassemblyPoolTest, OversizeTrainIsDropped) {
  ReassemblyPool pool;
  pool.Init(2, 256);  // max 256 assembled bytes
  auto bytes = Pattern(200, 5);
  uint32_t complete_len = 0;
  pool.Feed({&pool, 0, 9}, SegMark::kFirst, bytes.data(), 200, 0, &complete_len);
  // 200 + 200 > 256: the train is dropped and its entry released.
  EXPECT_EQ(pool.Feed({&pool, 0, 9}, SegMark::kMiddle, bytes.data(), 200, 0,
                      &complete_len),
            nullptr);
  EXPECT_EQ(pool.dropped_oversize(), 1u);
  EXPECT_EQ(pool.in_use(), 0u);
  // The rest of the (now orphaned) train is counted, not fatal.
  EXPECT_EQ(pool.Feed({&pool, 0, 9}, SegMark::kLast, bytes.data(), 56, 0,
                      &complete_len),
            nullptr);
  EXPECT_EQ(pool.orphans(), 1u);
}

TEST(ReassemblyPoolTest, PoolIsBounded) {
  ReassemblyPool pool;
  pool.Init(2, 4096);
  auto bytes = Pattern(64, 6);
  uint32_t complete_len = 0;
  pool.Feed({&pool, 0, 1}, SegMark::kFirst, bytes.data(), 64, 0, &complete_len);
  pool.Feed({&pool, 1, 2}, SegMark::kFirst, bytes.data(), 64, 0, &complete_len);
  // Third concurrent train: no free entry, chunk dropped.
  EXPECT_EQ(pool.Feed({&pool, 2, 3}, SegMark::kFirst, bytes.data(), 64, 0,
                      &complete_len),
            nullptr);
  EXPECT_EQ(pool.dropped_no_entry(), 1u);
  EXPECT_EQ(pool.in_use(), 2u);
}

TEST(ReassemblyPoolTest, ReclaimDropsIdlePartials) {
  ReassemblyPool pool;
  pool.Init(4, 4096);
  auto bytes = Pattern(64, 7);
  uint32_t complete_len = 0;
  pool.Feed({&pool, 0, 1}, SegMark::kFirst, bytes.data(), 64, 100, &complete_len);
  pool.Feed({&pool, 1, 2}, SegMark::kFirst, bytes.data(), 64, 900, &complete_len);
  EXPECT_EQ(pool.in_use(), 2u);
  // Timeout 500 at now=700: only the first partial (idle since 100) goes.
  EXPECT_EQ(pool.Reclaim(700, 500), 1u);
  EXPECT_EQ(pool.in_use(), 1u);
  // Its key is free again for a fresh train.
  pool.Feed({&pool, 0, 1}, SegMark::kFirst, bytes.data(), 64, 1000, &complete_len);
  EXPECT_EQ(pool.in_use(), 2u);
  EXPECT_EQ(pool.reclaimed(), 1u);
}

TEST(SegmentChunkBytesTest, CappedAtThresholdAndFloored) {
  FlockConfig config;
  config.segment_threshold = 4096;
  config.segment_chunk_bytes = 8192;
  // Capped: a segmented payload (> threshold) must span >= 2 chunks.
  EXPECT_EQ(SegmentChunkBytes(config), 4096u);
  config.segment_chunk_bytes = 2048;
  EXPECT_EQ(SegmentChunkBytes(config), 2048u);
  config.segment_chunk_bytes = 1;
  EXPECT_EQ(SegmentChunkBytes(config), 64u);
}

TEST(SeqSlotMapTest, FindDoesNotRemove) {
  SeqSlotMap<int> map;
  int a = 1, b = 2;
  map.Insert(10, &a);
  map.Insert(77, &b);
  // Per-chunk lookups leave the entry in place...
  EXPECT_EQ(map.Find(10), &a);
  EXPECT_EQ(map.Find(10), &a);
  EXPECT_EQ(map.Find(3), nullptr);
  // ...until the final chunk takes it.
  EXPECT_EQ(map.Take(10), &a);
  EXPECT_EQ(map.Find(10), nullptr);
  EXPECT_EQ(map.Find(77), &b);
}

// ---------------------------------------------------------------------------
// End-to-end extents
// ---------------------------------------------------------------------------

constexpr uint16_t kEchoRpc = 1;
constexpr uint16_t kChecksumRpc = 2;

uint32_t EchoHandler(const uint8_t* req, uint32_t len, uint8_t* resp,
                     uint32_t cap, Nanos* cpu) {
  FLOCK_CHECK_LE(len, cap);
  std::memcpy(resp, req, len);
  *cpu = 60;
  return len;
}

// Sums the request bytes: a large-upload handler with a small response.
uint32_t ChecksumHandler(const uint8_t* req, uint32_t len, uint8_t* resp,
                         uint32_t cap, Nanos* cpu) {
  FLOCK_CHECK_GE(cap, 8u);
  uint64_t sum = 0;
  for (uint32_t i = 0; i < len; ++i) {
    sum += req[i];
  }
  std::memcpy(resp, &sum, 8);
  *cpu = 200;
  return 8;
}

struct SegWorld {
  explicit SegWorld(uint32_t max_payload = 2 * 1024 * 1024)
      : cluster(verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 8}) {
    FlockConfig cfg;
    cfg.max_payload = max_payload;
    cfg.segment_threshold = 8 * 1024;
    cfg.segment_chunk_bytes = 8 * 1024;
    cfg.reassembly_entries = 16;
    server = std::make_unique<FlockRuntime>(cluster, 0, cfg);
    server->RegisterHandler(kEchoRpc, EchoHandler);
    server->RegisterHandler(kChecksumRpc, ChecksumHandler);
    server->StartServer(4);
    client = std::make_unique<FlockRuntime>(cluster, 1, cfg);
    client->StartClient();
  }

  verbs::Cluster cluster;
  std::unique_ptr<FlockRuntime> server;
  std::unique_ptr<FlockRuntime> client;
};

TEST(SegmentE2eTest, MegabyteEchoRoundTrips) {
  SegWorld world;
  Connection* conn = world.client->Connect(*world.server, 4);
  FlockThread* thread = world.client->CreateThread(0);

  constexpr uint32_t kExtent = 1024 * 1024;
  auto extent = Pattern(kExtent, 11);
  std::vector<uint8_t> resp(kExtent, 0);
  bool finished = false;
  auto app = [&]() -> sim::Co<void> {
    uint32_t resp_len = 0;
    const bool ok =
        co_await conn->Call(*thread, kEchoRpc, PayloadRef(extent.data(), kExtent),
                            resp.data(), kExtent, &resp_len);
    EXPECT_TRUE(ok);
    EXPECT_EQ(resp_len, kExtent);
    if (resp_len == kExtent) {
      EXPECT_EQ(std::memcmp(resp.data(), extent.data(), kExtent), 0);
    }
    finished = true;
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(100 * kMillisecond);
  ASSERT_TRUE(finished);
  // The extent actually travelled as chunk trains, not one giant message.
  EXPECT_GT(world.server->server_stats().requests, 0u);
}

TEST(SegmentE2eTest, MultiSliceRequestGathersZeroCopy) {
  SegWorld world;
  Connection* conn = world.client->Connect(*world.server, 2);
  FlockThread* thread = world.client->CreateThread(0);

  // Composite request: metadata header + two body fragments, all caller-owned.
  auto head = Pattern(64, 1);
  auto body1 = Pattern(40 * 1024, 2);
  auto body2 = Pattern(24 * 1024, 3);
  PayloadRef req;
  req.Add(head.data(), static_cast<uint32_t>(head.size()));
  req.Add(body1.data(), static_cast<uint32_t>(body1.size()));
  req.Add(body2.data(), static_cast<uint32_t>(body2.size()));
  const uint32_t total = req.size();

  std::vector<uint8_t> flat(total);
  req.CopyTo(flat.data());
  std::vector<uint8_t> resp(total, 0);
  bool finished = false;
  auto app = [&]() -> sim::Co<void> {
    uint32_t resp_len = 0;
    const bool ok = co_await conn->Call(*thread, kEchoRpc, req, resp.data(),
                                        total, &resp_len);
    EXPECT_TRUE(ok);
    EXPECT_EQ(resp_len, total);
    if (resp_len == total) {
      EXPECT_EQ(std::memcmp(resp.data(), flat.data(), total), 0);
    }
    finished = true;
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(100 * kMillisecond);
  ASSERT_TRUE(finished);
}

TEST(SegmentE2eTest, LargeUploadSmallResponse) {
  SegWorld world;
  Connection* conn = world.client->Connect(*world.server, 2);
  FlockThread* thread = world.client->CreateThread(0);

  constexpr uint32_t kExtent = 512 * 1024;
  auto extent = Pattern(kExtent, 21);
  uint64_t expect_sum = 0;
  for (uint32_t i = 0; i < kExtent; ++i) {
    expect_sum += extent[i];
  }
  bool finished = false;
  auto app = [&]() -> sim::Co<void> {
    uint8_t resp[8] = {};
    uint32_t resp_len = 0;
    const bool ok = co_await conn->Call(*thread, kChecksumRpc,
                                        PayloadRef(extent.data(), kExtent), resp,
                                        8, &resp_len);
    EXPECT_TRUE(ok);
    EXPECT_EQ(resp_len, 8u);
    uint64_t sum = 0;
    std::memcpy(&sum, resp, 8);
    EXPECT_EQ(sum, expect_sum);
    finished = true;
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(100 * kMillisecond);
  ASSERT_TRUE(finished);
}

TEST(SegmentE2eTest, MixedSmallAndLargeTrafficAllCompletes) {
  SegWorld world;
  Connection* conn = world.client->Connect(*world.server, 4);

  // Three metadata threads hammering small echoes while one extent thread
  // streams megabyte reads: chunk interleaving must not starve either side.
  int small_done = 0;
  int large_done = 0;
  bool stop = false;
  for (int t = 0; t < 3; ++t) {
    FlockThread* thread = world.client->CreateThread(t);
    auto app = [&world, conn, thread, &small_done, &stop]() -> sim::Co<void> {
      std::vector<uint8_t> payload(128, static_cast<uint8_t>(thread->id()));
      std::vector<uint8_t> resp(128);
      while (!stop) {
        uint32_t resp_len = 0;
        const bool ok = co_await conn->Call(
            *thread, kEchoRpc, PayloadRef(payload.data(), 128), resp.data(),
            128, &resp_len);
        EXPECT_TRUE(ok);
        EXPECT_EQ(resp_len, 128u);
        ++small_done;
      }
    };
    world.cluster.sim().Spawn(sim::RunClosure(app));
  }
  FlockThread* big_thread = world.client->CreateThread(3);
  constexpr uint32_t kExtent = 1024 * 1024;
  auto extent = Pattern(kExtent, 31);
  std::vector<uint8_t> big_resp(kExtent);
  auto big_app = [&]() -> sim::Co<void> {
    for (int i = 0; i < 4; ++i) {
      uint32_t resp_len = 0;
      const bool ok = co_await conn->Call(*big_thread, kEchoRpc,
                                          PayloadRef(extent.data(), kExtent),
                                          big_resp.data(), kExtent, &resp_len);
      EXPECT_TRUE(ok);
      EXPECT_EQ(resp_len, kExtent);
      if (resp_len == kExtent) {
        EXPECT_EQ(std::memcmp(big_resp.data(), extent.data(), kExtent), 0);
      }
      ++large_done;
    }
    stop = true;
  };
  world.cluster.sim().Spawn(sim::RunClosure(big_app));
  world.cluster.sim().RunFor(500 * kMillisecond);
  EXPECT_EQ(large_done, 4);
  EXPECT_GT(small_done, 50);  // metadata traffic kept flowing throughout
  EXPECT_TRUE(stop);
}

TEST(SegmentE2eTest, SmallPayloadsBelowThresholdStayInline) {
  // With segmentation configured but all traffic below the threshold, the
  // path is the ordinary inline one — and the legacy vector-response Call
  // still works against a seg-configured peer.
  SegWorld world;
  Connection* conn = world.client->Connect(*world.server, 2);
  FlockThread* thread = world.client->CreateThread(0);

  int completed = 0;
  auto app = [&]() -> sim::Co<void> {
    std::vector<uint8_t> payload(256, 9);
    for (int i = 0; i < 200; ++i) {
      std::vector<uint8_t> resp;
      const bool ok =
          co_await conn->Call(*thread, kEchoRpc, payload.data(), 256, &resp);
      EXPECT_TRUE(ok);
      EXPECT_EQ(resp.size(), 256u);
      ++completed;
    }
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(100 * kMillisecond);
  EXPECT_EQ(completed, 200);
}

TEST(SegmentE2eTest, DeterministicReplay) {
  auto run = []() -> uint64_t {
    SegWorld world;
    Connection* conn = world.client->Connect(*world.server, 2);
    FlockThread* thread = world.client->CreateThread(0);
    constexpr uint32_t kExtent = 256 * 1024;
    auto extent = Pattern(kExtent, 13);
    std::vector<uint8_t> resp(kExtent);
    int completed = 0;
    auto app = [&]() -> sim::Co<void> {
      for (int i = 0; i < 3; ++i) {
        uint32_t resp_len = 0;
        const bool ok = co_await conn->Call(*thread, kEchoRpc,
                                            PayloadRef(extent.data(), kExtent),
                                            resp.data(), kExtent, &resp_len);
        EXPECT_TRUE(ok);
        EXPECT_EQ(resp_len, kExtent);
        ++completed;
      }
    };
    world.cluster.sim().Spawn(sim::RunClosure(app));
    world.cluster.sim().RunFor(100 * kMillisecond);
    EXPECT_EQ(completed, 3);
    return world.cluster.sim().events_processed();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace flock
