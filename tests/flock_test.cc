// Integration tests for the Flock runtime: RPC round trips, coalescing,
// credit flow, receiver-side QP scheduling, sender-side thread scheduling,
// and one-sided memory/atomic operations — all over the simulated RDMA stack.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/flock/flock.h"

namespace flock {
namespace {

constexpr uint16_t kEchoRpc = 1;
constexpr uint16_t kAddRpc = 2;

// Echo handler: response = request, 60 ns of application CPU.
uint32_t EchoHandler(const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
                     Nanos* cpu) {
  FLOCK_CHECK_LE(len, cap);
  std::memcpy(resp, req, len);
  *cpu = 60;
  return len;
}

// Add handler: little-endian u64 pair in, sum out.
uint32_t AddHandler(const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
                    Nanos* cpu) {
  FLOCK_CHECK_EQ(len, 16u);
  uint64_t a = 0, b = 0;
  std::memcpy(&a, req, 8);
  std::memcpy(&b, req + 8, 8);
  const uint64_t sum = a + b;
  std::memcpy(resp, &sum, 8);
  *cpu = 40;
  return 8;
}

struct TestWorld {
  explicit TestWorld(int nodes = 2, uint32_t max_aqp = 256)
      : cluster(verbs::Cluster::Config{.num_nodes = nodes, .cores_per_node = 8}) {
    FlockConfig server_cfg;
    server_cfg.max_active_qps = max_aqp;
    server = std::make_unique<FlockRuntime>(cluster, 0, server_cfg);
    server->RegisterHandler(kEchoRpc, EchoHandler);
    server->RegisterHandler(kAddRpc, AddHandler);
    server->StartServer(4);
    for (int n = 1; n < nodes; ++n) {
      FlockConfig client_cfg;
      clients.push_back(std::make_unique<FlockRuntime>(cluster, n, client_cfg));
      clients.back()->StartClient();
    }
  }

  verbs::Cluster cluster;
  std::unique_ptr<FlockRuntime> server;
  std::vector<std::unique_ptr<FlockRuntime>> clients;
};

TEST(FlockRpcTest, SingleEchoRoundTrip) {
  TestWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 4);
  FlockThread* thread = world.clients[0]->CreateThread(0);

  bool finished = false;
  auto app = [&]() -> sim::Co<void> {
    const char msg[] = "hello flock";
    std::vector<uint8_t> resp;
    const bool ok = co_await conn->Call(*thread, kEchoRpc,
                                        reinterpret_cast<const uint8_t*>(msg),
                                        sizeof(msg), &resp);
    EXPECT_TRUE(ok);
    EXPECT_EQ(resp.size(), sizeof(msg));
    if (resp.size() == sizeof(msg)) {
      EXPECT_STREQ(reinterpret_cast<const char*>(resp.data()), msg);
    }
    finished = true;
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(10 * kMillisecond);
  EXPECT_TRUE(finished);
  EXPECT_EQ(world.server->server_stats().requests, 1u);
}

TEST(FlockRpcTest, RpcLatencyIsMicroseconds) {
  TestWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 2);
  FlockThread* thread = world.clients[0]->CreateThread(0);

  Nanos latency = -1;
  auto app = [&]() -> sim::Co<void> {
    const uint64_t payload[2] = {40, 2};
    std::vector<uint8_t> resp;
    const Nanos start = world.cluster.sim().Now();
    co_await conn->Call(*thread, kAddRpc, reinterpret_cast<const uint8_t*>(payload),
                        16, &resp);
    latency = world.cluster.sim().Now() - start;
    uint64_t sum = 0;
    std::memcpy(&sum, resp.data(), 8);
    EXPECT_EQ(sum, 42u);
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(10 * kMillisecond);
  ASSERT_GE(latency, 0);
  EXPECT_GT(latency, 1 * kMicrosecond);
  EXPECT_LT(latency, 30 * kMicrosecond);
}

TEST(FlockRpcTest, ManyThreadsManyRequestsAllComplete) {
  TestWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 4);
  const int kThreads = 6;
  const int kOpsPerThread = 300;
  int completed = 0;

  for (int t = 0; t < kThreads; ++t) {
    FlockThread* thread = world.clients[0]->CreateThread(t % 6);
    auto app = [&world, conn, thread, &completed]() -> sim::Co<void> {
      for (int i = 0; i < kOpsPerThread; ++i) {
        uint64_t payload[2] = {static_cast<uint64_t>(thread->id()),
                               static_cast<uint64_t>(i)};
        std::vector<uint8_t> resp;
        const bool ok =
            co_await conn->Call(*thread, kAddRpc,
                                reinterpret_cast<const uint8_t*>(payload), 16, &resp);
        EXPECT_TRUE(ok);
        uint64_t sum = 0;
        std::memcpy(&sum, resp.data(), 8);
        EXPECT_EQ(sum, static_cast<uint64_t>(thread->id()) + static_cast<uint64_t>(i));
        ++completed;
      }
    };
    world.cluster.sim().Spawn(sim::RunClosure(app));
  }
  world.cluster.sim().RunFor(100 * kMillisecond);
  EXPECT_EQ(completed, kThreads * kOpsPerThread);
  EXPECT_EQ(world.server->server_stats().requests,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

TEST(FlockRpcTest, SharedLaneCoalescesConcurrentRequests) {
  TestWorld world;
  // One lane shared by many threads with several outstanding requests forces
  // the combining path.
  Connection* conn = world.clients[0]->Connect(*world.server, 1);
  const int kThreads = 6;
  const int kOutstanding = 4;
  const int kRounds = 200;
  int completed = 0;

  for (int t = 0; t < kThreads; ++t) {
    FlockThread* thread = world.clients[0]->CreateThread(t % 6);
    auto app = [&world, conn, thread, &completed]() -> sim::Co<void> {
      std::vector<uint8_t> payload(64, static_cast<uint8_t>(thread->id()));
      for (int r = 0; r < kRounds; ++r) {
        std::vector<PendingRpc*> pending;
        for (int o = 0; o < kOutstanding; ++o) {
          pending.push_back(
              co_await conn->SendRpc(*thread, kEchoRpc, payload.data(), 64));
        }
        for (PendingRpc* rpc : pending) {
          const bool ok = co_await conn->AwaitResponse(*thread, rpc);
          EXPECT_TRUE(ok);
          EXPECT_EQ(rpc->response.size(), 64u);
          conn->FreeRpc(rpc);
          ++completed;
        }
      }
    };
    world.cluster.sim().Spawn(sim::RunClosure(app));
  }
  world.cluster.sim().RunFor(200 * kMillisecond);
  EXPECT_EQ(completed, kThreads * kOutstanding * kRounds);
  // The whole point of Flock synchronization: messages < requests.
  EXPECT_GT(conn->MeanCoalescing(), 1.2);
  EXPECT_GT(world.server->MeanServerCoalescing(), 1.2);
}

TEST(FlockRpcTest, CreditsAreRenewedUnderSustainedLoad) {
  TestWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 1);
  FlockThread* thread = world.clients[0]->CreateThread(0);
  int completed = 0;

  auto app = [&]() -> sim::Co<void> {
    std::vector<uint8_t> payload(32, 7);
    // Far more messages than the 32 bootstrap credits.
    for (int i = 0; i < 500; ++i) {
      std::vector<uint8_t> resp;
      const bool ok = co_await conn->Call(*thread, kEchoRpc, payload.data(), 32, &resp);
      EXPECT_TRUE(ok);
      ++completed;
    }
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(100 * kMillisecond);
  EXPECT_EQ(completed, 500);
  EXPECT_GT(world.server->server_stats().credit_renewals, 5u);
}

TEST(FlockQpSchedulingTest, ActiveLanesRespectMaxAqp) {
  // Server allows only 4 active QPs; a client asking for 16 lanes must end up
  // with at most 4 active.
  TestWorld world(2, /*max_aqp=*/4);
  Connection* conn = world.clients[0]->Connect(*world.server, 16);
  EXPECT_LE(conn->num_active_lanes(), 4u);
  EXPECT_GE(conn->num_active_lanes(), 1u);
  EXPECT_LE(world.server->ActiveServerLanes(), 4u);

  // Traffic from 8 threads — requests must still all complete through the
  // capped set of active lanes.
  int completed = 0;
  for (int t = 0; t < 8; ++t) {
    FlockThread* thread = world.clients[0]->CreateThread(t % 6);
    auto app = [&world, conn, thread, &completed]() -> sim::Co<void> {
      std::vector<uint8_t> payload(16, 1);
      for (int i = 0; i < 100; ++i) {
        std::vector<uint8_t> resp;
        co_await conn->Call(*thread, kEchoRpc, payload.data(), 16, &resp);
        ++completed;
      }
    };
    world.cluster.sim().Spawn(sim::RunClosure(app));
  }
  world.cluster.sim().RunFor(200 * kMillisecond);
  EXPECT_EQ(completed, 800);
  EXPECT_LE(world.server->ActiveServerLanes(), 4u);
}

TEST(FlockQpSchedulingTest, RedistributionFavorsBusySenders) {
  // Two clients, 8 lanes each, server cap 8: the busy client should end up
  // with more active lanes than the idle one after redistribution.
  TestWorld world(3, /*max_aqp=*/8);
  Connection* busy = world.clients[0]->Connect(*world.server, 8);
  Connection* idle = world.clients[1]->Connect(*world.server, 8);

  bool stop = false;
  int completed = 0;
  for (int t = 0; t < 6; ++t) {
    FlockThread* thread = world.clients[0]->CreateThread(t);
    auto app = [&world, busy, thread, &stop, &completed]() -> sim::Co<void> {
      std::vector<uint8_t> payload(64, 2);
      while (!stop) {
        std::vector<uint8_t> resp;
        co_await busy->Call(*thread, kEchoRpc, payload.data(), 64, &resp);
        ++completed;
      }
    };
    world.cluster.sim().Spawn(sim::RunClosure(app));
  }
  // Let several scheduling intervals elapse, then observe *while traffic is
  // still flowing* (once it stops, the busy sender correctly goes dormant).
  world.cluster.sim().RunFor(5 * kMillisecond);
  const uint32_t busy_active = busy->num_active_lanes();
  const uint32_t idle_active = idle->num_active_lanes();
  const uint32_t server_active = world.server->ActiveServerLanes();
  stop = true;
  world.cluster.sim().RunFor(2 * kMillisecond);

  EXPECT_GT(completed, 100);
  EXPECT_GT(world.server->server_stats().redistributions, 0u);
  EXPECT_GT(busy_active, idle_active);
  EXPECT_GE(idle_active, 1u);  // dormant senders keep one QP
  // MAX_AQP plus the scheduler's ±1 hysteresis slack per sender.
  EXPECT_LE(server_active, 8u + 2u);
  // After the idle tail, the scheduler reclaims the now-dormant busy sender.
  EXPECT_LE(busy->num_active_lanes(), busy_active);
}

TEST(FlockMemoryTest, OneSidedReadWriteThroughConnection) {
  TestWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 2);
  FlockThread* thread = world.clients[0]->CreateThread(0);

  // Server-side region (fl_attach_mreg).
  fabric::MemorySpace& smem = world.cluster.mem(0);
  const uint64_t region = smem.Alloc(4096);
  RemoteMr mr = conn->AttachMreg(region, 4096);

  fabric::MemorySpace& cmem = world.cluster.mem(1);
  const uint64_t lbuf = cmem.Alloc(64);

  bool finished = false;
  auto app = [&]() -> sim::Co<void> {
    // Write a pattern into the remote region.
    const char pattern[] = "one-sided";
    cmem.Write(lbuf, pattern, sizeof(pattern));
    verbs::WcStatus st =
        co_await conn->Write(*thread, lbuf, region + 128, sizeof(pattern), mr);
    EXPECT_EQ(st, verbs::WcStatus::kSuccess);
    // Read it back into a different local buffer.
    const uint64_t lbuf2 = cmem.Alloc(64);
    st = co_await conn->Read(*thread, lbuf2, region + 128, sizeof(pattern), mr);
    EXPECT_EQ(st, verbs::WcStatus::kSuccess);
    char out[sizeof(pattern)] = {};
    cmem.Read(lbuf2, out, sizeof(pattern));
    EXPECT_STREQ(out, pattern);
    finished = true;
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(10 * kMillisecond);
  EXPECT_TRUE(finished);
}

TEST(FlockMemoryTest, AtomicsThroughConnection) {
  TestWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 2);
  FlockThread* thread = world.clients[0]->CreateThread(0);

  fabric::MemorySpace& smem = world.cluster.mem(0);
  const uint64_t counter = smem.Alloc(8, 8);
  const uint64_t initial = 10;
  smem.Write(counter, &initial, 8);
  RemoteMr mr = conn->AttachMreg(counter, 8);

  bool finished = false;
  auto app = [&]() -> sim::Co<void> {
    uint64_t old_value = 0;
    verbs::WcStatus st =
        co_await conn->FetchAndAdd(*thread, counter, 5, &old_value, mr);
    EXPECT_EQ(st, verbs::WcStatus::kSuccess);
    EXPECT_EQ(old_value, 10u);
    st = co_await conn->CompareAndSwap(*thread, counter, 15, 99, &old_value, mr);
    EXPECT_EQ(st, verbs::WcStatus::kSuccess);
    EXPECT_EQ(old_value, 15u);
    uint64_t now = 0;
    smem.Read(counter, &now, 8);
    EXPECT_EQ(now, 99u);
    finished = true;
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(10 * kMillisecond);
  EXPECT_TRUE(finished);
}

TEST(FlockMemoryTest, BadRkeySurfacesError) {
  TestWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 2);
  FlockThread* thread = world.clients[0]->CreateThread(0);
  const uint64_t lbuf = world.cluster.mem(1).Alloc(64);

  bool finished = false;
  auto app = [&]() -> sim::Co<void> {
    RemoteMr bogus{4096, 64, 424242};
    const verbs::WcStatus st = co_await conn->Read(*thread, lbuf, 4096, 64, bogus);
    EXPECT_EQ(st, verbs::WcStatus::kRemoteAccessError);
    finished = true;
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(10 * kMillisecond);
  EXPECT_TRUE(finished);
}

TEST(FlockThreadSchedTest, MixedPayloadsSeparateLanes) {
  // 1 small-payload-heavy thread and 1 large-payload thread on 2 lanes: after
  // a scheduling interval the thread scheduler should separate them.
  TestWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 2);
  FlockThread* small_thread = world.clients[0]->CreateThread(0);
  FlockThread* big_thread = world.clients[0]->CreateThread(1);

  bool stop = false;
  auto small_app = [&]() -> sim::Co<void> {
    std::vector<uint8_t> payload(32, 1);
    while (!stop) {
      std::vector<uint8_t> resp;
      co_await conn->Call(*small_thread, kEchoRpc, payload.data(), 32, &resp);
    }
  };
  auto big_app = [&]() -> sim::Co<void> {
    std::vector<uint8_t> payload(2048, 2);
    while (!stop) {
      std::vector<uint8_t> resp;
      co_await conn->Call(*big_thread, kEchoRpc, payload.data(), 2048, &resp);
    }
  };
  world.cluster.sim().Spawn(sim::RunClosure(small_app));
  world.cluster.sim().Spawn(sim::RunClosure(big_app));
  world.cluster.sim().RunFor(3 * kMillisecond);
  stop = true;
  world.cluster.sim().RunFor(1 * kMillisecond);

  // Both threads made progress and ended on different lanes.
  EXPECT_GT(small_thread->reqs_sent.total(), 10u);
  EXPECT_GT(big_thread->reqs_sent.total(), 10u);
}

TEST(FlockRpcTest, DeterministicReplay) {
  auto run = []() -> uint64_t {
    TestWorld world;
    Connection* conn = world.clients[0]->Connect(*world.server, 2);
    int completed = 0;
    for (int t = 0; t < 3; ++t) {
      FlockThread* thread = world.clients[0]->CreateThread(t);
      auto app = [&world, conn, thread, &completed]() -> sim::Co<void> {
        std::vector<uint8_t> payload(48, 3);
        for (int i = 0; i < 50; ++i) {
          std::vector<uint8_t> resp;
          co_await conn->Call(*thread, kEchoRpc, payload.data(), 48, &resp);
          ++completed;
        }
      };
      world.cluster.sim().Spawn(sim::RunClosure(app));
    }
    world.cluster.sim().RunFor(50 * kMillisecond);
    EXPECT_EQ(completed, 150);
    return world.cluster.sim().events_processed();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace flock
