// Tests for the comparison systems: the eRPC/FaSST-style UD RPC baseline and
// the RC ring-buffer RPC baselines (no-sharing / FaRM-style lock sharing).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/baselines/rcrpc.h"
#include "src/baselines/udrpc.h"

namespace flock::baselines {
namespace {

uint32_t EchoHandler(const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
                     Nanos* cpu) {
  FLOCK_CHECK_LE(len, cap);
  std::memcpy(resp, req, len);
  *cpu = 60;
  return len;
}

TEST(UdRpcTest, EchoRoundTrip) {
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 8});
  UdRpcServer server(cluster, 0, UdRpcServer::Config{.worker_threads = 2});
  server.RegisterHandler(1, EchoHandler);
  server.Start();

  UdRpcClient client(cluster, 1);
  UdRpcClient::Thread* thread = client.CreateThread(0);

  bool finished = false;
  auto app = [&]() -> sim::Co<void> {
    const char msg[] = "ud-hello";
    std::vector<uint8_t> resp;
    const bool ok = co_await thread->Call(server.endpoint(0), 1,
                                          reinterpret_cast<const uint8_t*>(msg),
                                          sizeof(msg), &resp);
    EXPECT_TRUE(ok);
    EXPECT_EQ(resp.size(), sizeof(msg));
    if (resp.size() == sizeof(msg)) {
      EXPECT_STREQ(reinterpret_cast<const char*>(resp.data()), msg);
    }
    finished = true;
  };
  cluster.sim().Spawn(sim::RunClosure(app));
  cluster.sim().RunFor(10 * kMillisecond);
  EXPECT_TRUE(finished);
  EXPECT_EQ(server.requests_handled(), 1u);
  EXPECT_EQ(thread->timeouts(), 0u);
}

TEST(UdRpcTest, ManyOutstandingRequestsComplete) {
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 8});
  UdRpcServer server(cluster, 0, UdRpcServer::Config{.worker_threads = 4});
  server.RegisterHandler(1, EchoHandler);
  server.Start();

  UdRpcClient client(cluster, 1);
  const int kThreads = 4;
  const int kRounds = 100;
  const int kOutstanding = 8;
  int completed = 0;

  for (int t = 0; t < kThreads; ++t) {
    UdRpcClient::Thread* thread = client.CreateThread(t);
    auto app = [&cluster, &server, thread, &completed, t]() -> sim::Co<void> {
      std::vector<uint8_t> payload(64, static_cast<uint8_t>(t));
      for (int r = 0; r < kRounds; ++r) {
        std::vector<UdRpcClient::Pending*> batch;
        for (int o = 0; o < kOutstanding; ++o) {
          batch.push_back(co_await thread->Send(server.endpoint(t % 4), 1,
                                                payload.data(), 64));
        }
        for (auto* pending : batch) {
          const bool ok = co_await thread->Await(pending);
          EXPECT_TRUE(ok);
          EXPECT_EQ(pending->response.size(), 64u);
          delete pending;
          ++completed;
        }
      }
    };
    cluster.sim().Spawn(sim::RunClosure(app));
  }
  cluster.sim().RunFor(200 * kMillisecond);
  EXPECT_EQ(completed, kThreads * kRounds * kOutstanding);
}

TEST(UdRpcTest, OverloadCausesDropsAndTimeouts) {
  // A server with a tiny receive pool and a slow handler: sustained fan-in
  // must exhaust the pool, drop datagrams, and surface as client timeouts —
  // the UD failure mode FaSST hits at high thread counts (§8.5.2).
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 3, .cores_per_node = 8});
  UdRpcServer server(cluster, 0,
                     UdRpcServer::Config{.worker_threads = 1, .recv_pool = 4});
  server.RegisterHandler(2, [](const uint8_t*, uint32_t, uint8_t* resp, uint32_t,
                               Nanos* cpu) -> uint32_t {
    *cpu = 20000;  // 20 us per request: the worker cannot keep up
    resp[0] = 1;
    return 1;
  });
  server.Start();

  uint64_t total_timeouts = 0;
  int issued = 0;
  std::vector<std::unique_ptr<UdRpcClient>> clients;
  for (int n = 1; n <= 2; ++n) {
    UdRpcClient* client =
        clients.emplace_back(std::make_unique<UdRpcClient>(cluster, n)).get();
    for (int t = 0; t < 4; ++t) {
      UdRpcClient::Thread* thread = client->CreateThread(t);
      auto app = [&cluster, &server, thread, &issued, &total_timeouts]() -> sim::Co<void> {
        std::vector<uint8_t> payload(32, 1);
        for (int r = 0; r < 40; ++r) {
          std::vector<UdRpcClient::Pending*> batch;
          for (int o = 0; o < 8; ++o) {
            batch.push_back(co_await thread->Send(server.endpoint(0), 2,
                                                  payload.data(), 32));
            ++issued;
          }
          for (auto* pending : batch) {
            co_await thread->Await(pending, 500 * kMicrosecond);
            delete pending;
          }
        }
        total_timeouts += thread->timeouts();
      };
      cluster.sim().Spawn(sim::RunClosure(app));
    }
  }
  cluster.sim().RunFor(300 * kMillisecond);
  EXPECT_GT(issued, 0);
  EXPECT_GT(cluster.device(0).stats().ud_drops, 0u);
  EXPECT_GT(total_timeouts, 0u);
}

TEST(RcRpcTest, NoSharingEchoRoundTrip) {
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 8});
  RcRpcServer server(cluster, 0, 2);
  server.RegisterHandler(1, EchoHandler);
  server.Start();

  RcRpcClient client(cluster, 1, server);
  client.Start();
  RcRpcClient::Lane* lane = client.CreateLane();
  FlockThread* thread = client.CreateThread(0);

  bool finished = false;
  auto app = [&]() -> sim::Co<void> {
    const char msg[] = "rc-hello";
    std::vector<uint8_t> resp;
    const bool ok = co_await client.Call(*thread, *lane, 1,
                                         reinterpret_cast<const uint8_t*>(msg),
                                         sizeof(msg), &resp);
    EXPECT_TRUE(ok);
    EXPECT_EQ(resp.size(), sizeof(msg));
    finished = true;
  };
  cluster.sim().Spawn(sim::RunClosure(app));
  cluster.sim().RunFor(10 * kMillisecond);
  EXPECT_TRUE(finished);
  EXPECT_EQ(server.requests_handled(), 1u);
}

TEST(RcRpcTest, SpinlockSharingSerializesButStaysCorrect) {
  // 4 threads share one QP through the lock: all requests complete, each with
  // the right response.
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 8});
  RcRpcServer server(cluster, 0, 2);
  server.RegisterHandler(1, EchoHandler);
  server.Start();

  RcRpcClient client(cluster, 1, server);
  client.Start();
  RcRpcClient::Lane* lane = client.CreateLane();

  const int kThreads = 4;
  const int kOps = 200;
  int completed = 0;
  for (int t = 0; t < kThreads; ++t) {
    FlockThread* thread = client.CreateThread(t);
    auto app = [&cluster, &client, lane, thread, &completed]() -> sim::Co<void> {
      for (int i = 0; i < kOps; ++i) {
        uint64_t tag = (static_cast<uint64_t>(thread->id()) << 32) |
                       static_cast<uint64_t>(i);
        std::vector<uint8_t> resp;
        const bool ok = co_await client.Call(
            *thread, *lane, 1, reinterpret_cast<const uint8_t*>(&tag), 8, &resp);
        EXPECT_TRUE(ok);
        uint64_t echoed = 0;
        std::memcpy(&echoed, resp.data(), 8);
        EXPECT_EQ(echoed, tag);
        ++completed;
      }
    };
    cluster.sim().Spawn(sim::RunClosure(app));
  }
  cluster.sim().RunFor(100 * kMillisecond);
  EXPECT_EQ(completed, kThreads * kOps);
}

TEST(RcRpcTest, ManyLanesInParallel) {
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 8});
  RcRpcServer server(cluster, 0, 4);
  server.RegisterHandler(1, EchoHandler);
  server.Start();

  RcRpcClient client(cluster, 1, server);
  client.Start();

  const int kThreads = 6;
  int completed = 0;
  for (int t = 0; t < kThreads; ++t) {
    RcRpcClient::Lane* lane = client.CreateLane();  // dedicated QP per thread
    FlockThread* thread = client.CreateThread(t % 6);
    auto app = [&cluster, &client, lane, thread, &completed]() -> sim::Co<void> {
      std::vector<uint8_t> payload(64, 9);
      for (int i = 0; i < 150; ++i) {
        std::vector<uint8_t> resp;
        co_await client.Call(*thread, *lane, 1, payload.data(), 64, &resp);
        ++completed;
      }
    };
    cluster.sim().Spawn(sim::RunClosure(app));
  }
  cluster.sim().RunFor(100 * kMillisecond);
  EXPECT_EQ(completed, kThreads * 150);
}

}  // namespace
}  // namespace flock::baselines
