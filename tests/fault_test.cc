// Fault-injection tests: QP kills, transient transport errors and node
// pauses against both the raw verbs layer and the full Flock runtime's
// failure handling (quarantine, retry, dead-sender reclamation).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/flock/flock.h"
#include "src/verbs/fault.h"

namespace flock {
namespace {

constexpr uint16_t kEchoRpc = 1;

uint32_t EchoHandler(const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
                     Nanos* cpu) {
  FLOCK_CHECK_LE(len, cap);
  std::memcpy(resp, req, len);
  *cpu = 60;
  return len;
}

// ---------------------------------------------------------------------------
// Verbs layer
// ---------------------------------------------------------------------------

TEST(VerbsFaultTest, KilledQpFlushesAndRejectsPosts) {
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 2});
  verbs::Cq* scq0 = cluster.device(0).CreateCq();
  verbs::Cq* rcq0 = cluster.device(0).CreateCq();
  verbs::Cq* scq1 = cluster.device(1).CreateCq();
  verbs::Cq* rcq1 = cluster.device(1).CreateCq();
  auto [qp0, qp1] = cluster.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);

  const uint64_t src = cluster.mem(0).Alloc(64);
  const uint64_t dst = cluster.mem(1).Alloc(64);
  verbs::Mr mr = cluster.device(1).RegisterMr(dst, 64);

  verbs::SendWr wr;
  wr.wr_id = 1;
  wr.opcode = verbs::Opcode::kWrite;
  wr.local_addr = src;
  wr.length = 64;
  wr.remote_addr = dst;
  wr.rkey = mr.rkey;
  wr.signaled = true;
  ASSERT_EQ(qp0->PostSend(wr), verbs::WcStatus::kSuccess);

  // Kill before the simulator runs: the queued WR must flush, not deliver.
  cluster.fault().KillQp(0, qp0->qpn());
  EXPECT_TRUE(qp0->in_error());
  EXPECT_EQ(cluster.fault().stats().qp_kills, 1u);

  // Posts against the dead QP are rejected synchronously.
  wr.wr_id = 2;
  EXPECT_EQ(qp0->PostSend(wr), verbs::WcStatus::kQpError);

  cluster.sim().Run();

  verbs::Completion wc;
  ASSERT_TRUE(scq0->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 1u);
  EXPECT_EQ(wc.status, verbs::WcStatus::kFlushError);
  EXPECT_FALSE(scq0->Poll(&wc));

  // The peer writing toward the dead QP observes a remote error.
  verbs::Mr mr0 = cluster.device(0).RegisterMr(src, 64);
  verbs::SendWr back;
  back.wr_id = 3;
  back.opcode = verbs::Opcode::kWrite;
  back.local_addr = dst;
  back.length = 64;
  back.remote_addr = src;
  back.rkey = mr0.rkey;
  back.signaled = true;
  ASSERT_EQ(qp1->PostSend(back), verbs::WcStatus::kSuccess);
  cluster.sim().Run();
  ASSERT_TRUE(scq1->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 3u);
  EXPECT_EQ(wc.status, verbs::WcStatus::kRemoteInvalidQp);
}

TEST(VerbsFaultTest, InjectedErrorReportsErrorButDeliversPayload) {
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 2});
  verbs::Cq* scq0 = cluster.device(0).CreateCq();
  verbs::Cq* rcq0 = cluster.device(0).CreateCq();
  verbs::Cq* scq1 = cluster.device(1).CreateCq();
  verbs::Cq* rcq1 = cluster.device(1).CreateCq();
  auto [qp0, qp1] = cluster.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);
  (void)qp1;

  const uint64_t src = cluster.mem(0).Alloc(8);
  const uint64_t dst = cluster.mem(1).Alloc(8);
  verbs::Mr mr = cluster.device(1).RegisterMr(dst, 8);
  const uint64_t value = 0x1122334455667788ULL;
  cluster.mem(0).Write(src, &value, 8);

  cluster.fault().InjectSendErrors(0, qp0->qpn(), verbs::WcStatus::kRnrError, 1);

  verbs::SendWr wr;
  wr.wr_id = 9;
  wr.opcode = verbs::Opcode::kWrite;
  wr.local_addr = src;
  wr.length = 8;
  wr.remote_addr = dst;
  wr.rkey = mr.rkey;
  wr.signaled = true;
  ASSERT_EQ(qp0->PostSend(wr), verbs::WcStatus::kSuccess);
  cluster.sim().Run();

  verbs::Completion wc;
  ASSERT_TRUE(scq0->Poll(&wc));
  EXPECT_EQ(wc.status, verbs::WcStatus::kRnrError);
  // Ack-loss model: the payload landed even though the completion errored.
  uint64_t out = 0;
  cluster.mem(1).Read(dst, &out, 8);
  EXPECT_EQ(out, value);
  EXPECT_EQ(cluster.fault().stats().injected_errors, 1u);

  // The error is consumed: the next post completes cleanly.
  wr.wr_id = 10;
  ASSERT_EQ(qp0->PostSend(wr), verbs::WcStatus::kSuccess);
  cluster.sim().Run();
  ASSERT_TRUE(scq0->Poll(&wc));
  EXPECT_EQ(wc.status, verbs::WcStatus::kSuccess);
  cluster.mem(1).Read(dst, &out, 8);
  EXPECT_EQ(out, value);
}

// One-sided ops under faults: READs and atomics flush on a killed QP and
// surface injected error CQEs, exactly like the send path — this is what the
// flock-level memop quarantine (and the one-sided data plane above it)
// relies on.
TEST(VerbsFaultTest, KilledQpFlushesReadsAndAtomics) {
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 2});
  verbs::Cq* scq0 = cluster.device(0).CreateCq();
  verbs::Cq* rcq0 = cluster.device(0).CreateCq();
  verbs::Cq* scq1 = cluster.device(1).CreateCq();
  verbs::Cq* rcq1 = cluster.device(1).CreateCq();
  auto [qp0, qp1] = cluster.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);
  (void)qp1;

  const uint64_t local = cluster.mem(0).Alloc(16);
  const uint64_t remote = cluster.mem(1).Alloc(16);
  verbs::Mr mr = cluster.device(1).RegisterMr(remote, 16);
  const uint64_t zero = 0;
  cluster.mem(1).Write(remote, &zero, 8);

  verbs::SendWr read;
  read.wr_id = 1;
  read.opcode = verbs::Opcode::kRead;
  read.local_addr = local;
  read.length = 8;
  read.remote_addr = remote;
  read.rkey = mr.rkey;
  ASSERT_EQ(qp0->PostSend(read), verbs::WcStatus::kSuccess);

  verbs::SendWr cas;
  cas.wr_id = 2;
  cas.opcode = verbs::Opcode::kCmpSwap;
  cas.local_addr = local + 8;
  cas.length = 8;
  cas.remote_addr = remote;
  cas.rkey = mr.rkey;
  cas.compare = 0;
  cas.swap_or_add = 1;
  ASSERT_EQ(qp0->PostSend(cas), verbs::WcStatus::kSuccess);

  cluster.fault().KillQp(0, qp0->qpn());
  cluster.sim().Run();

  // Both queued one-sided WRs flush with an error CQE; the remote word is
  // untouched (the CAS never executed).
  verbs::Completion wc;
  ASSERT_TRUE(scq0->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 1u);
  EXPECT_EQ(wc.status, verbs::WcStatus::kFlushError);
  ASSERT_TRUE(scq0->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 2u);
  EXPECT_EQ(wc.status, verbs::WcStatus::kFlushError);
  uint64_t word = ~0ULL;
  cluster.mem(1).Read(remote, &word, 8);
  EXPECT_EQ(word, 0u);

  // Fresh posts against the dead QP are rejected synchronously.
  read.wr_id = 3;
  EXPECT_EQ(qp0->PostSend(read), verbs::WcStatus::kQpError);
  cas.wr_id = 4;
  EXPECT_EQ(qp0->PostSend(cas), verbs::WcStatus::kQpError);
}

TEST(VerbsFaultTest, InjectedErrorsSurfaceOnReadAndCmpSwap) {
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 2});
  verbs::Cq* scq0 = cluster.device(0).CreateCq();
  verbs::Cq* rcq0 = cluster.device(0).CreateCq();
  verbs::Cq* scq1 = cluster.device(1).CreateCq();
  verbs::Cq* rcq1 = cluster.device(1).CreateCq();
  auto [qp0, qp1] = cluster.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);
  (void)qp1;

  const uint64_t local = cluster.mem(0).Alloc(8);
  const uint64_t remote = cluster.mem(1).Alloc(8);
  verbs::Mr mr = cluster.device(1).RegisterMr(remote, 8);

  cluster.fault().InjectSendErrors(0, qp0->qpn(), verbs::WcStatus::kRnrError, 2);

  verbs::SendWr read;
  read.wr_id = 11;
  read.opcode = verbs::Opcode::kRead;
  read.local_addr = local;
  read.length = 8;
  read.remote_addr = remote;
  read.rkey = mr.rkey;
  ASSERT_EQ(qp0->PostSend(read), verbs::WcStatus::kSuccess);
  cluster.sim().Run();

  verbs::Completion wc;
  ASSERT_TRUE(scq0->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 11u);
  EXPECT_EQ(wc.status, verbs::WcStatus::kRnrError);

  verbs::SendWr cas;
  cas.wr_id = 12;
  cas.opcode = verbs::Opcode::kCmpSwap;
  cas.local_addr = local;
  cas.length = 8;
  cas.remote_addr = remote;
  cas.rkey = mr.rkey;
  cas.compare = 0;
  cas.swap_or_add = 7;
  ASSERT_EQ(qp0->PostSend(cas), verbs::WcStatus::kSuccess);
  cluster.sim().Run();
  ASSERT_TRUE(scq0->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 12u);
  EXPECT_EQ(wc.status, verbs::WcStatus::kRnrError);
  EXPECT_EQ(cluster.fault().stats().injected_errors, 2u);

  // The burst is consumed and the QP stays healthy: the next read completes
  // cleanly (one-sided callers treat the errored status as "retry elsewhere",
  // so clean recovery on the same QP matters).
  read.wr_id = 13;
  ASSERT_EQ(qp0->PostSend(read), verbs::WcStatus::kSuccess);
  cluster.sim().Run();
  ASSERT_TRUE(scq0->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 13u);
  EXPECT_EQ(wc.status, verbs::WcStatus::kSuccess);
}

// ---------------------------------------------------------------------------
// Flock runtime
// ---------------------------------------------------------------------------

struct FaultWorld {
  explicit FaultWorld(int nodes = 2)
      : cluster(verbs::Cluster::Config{.num_nodes = nodes, .cores_per_node = 8}) {
    FlockConfig server_cfg;
    server = std::make_unique<FlockRuntime>(cluster, 0, server_cfg);
    server->RegisterHandler(kEchoRpc, EchoHandler);
    server->StartServer(4);
    for (int n = 1; n < nodes; ++n) {
      FlockConfig client_cfg;
      client_cfg.rpc_timeout = 100 * kMicrosecond;
      client_cfg.max_retries = 5;
      clients.push_back(std::make_unique<FlockRuntime>(cluster, n, client_cfg));
      clients.back()->StartClient();
    }
  }

  verbs::Cluster cluster;
  std::unique_ptr<FlockRuntime> server;
  std::vector<std::unique_ptr<FlockRuntime>> clients;
};

sim::Proc EchoLoop(Connection* conn, FlockThread* thread, int count,
                   int* ok_count, int* fail_count) {
  std::vector<uint8_t> resp;
  for (int i = 0; i < count; ++i) {
    uint64_t payload = static_cast<uint64_t>(i);
    const bool ok =
        co_await conn->Call(*thread, kEchoRpc,
                            reinterpret_cast<const uint8_t*>(&payload), 8, &resp);
    (ok ? *ok_count : *fail_count) += 1;
  }
}

TEST(FlockFaultTest, QpKillMidRunMigratesAndRecovers) {
  FaultWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 4);
  int ok = 0, fail = 0;
  for (int t = 0; t < 4; ++t) {
    world.cluster.sim().Spawn(EchoLoop(conn, world.clients[0]->CreateThread(t), 400,
                                       &ok, &fail));
  }
  // Kill one client-side lane QP while traffic is in full flight.
  world.cluster.fault().KillQpAt(200 * kMicrosecond, /*node=*/1,
                                 conn->lane(0).qp->qpn());
  world.cluster.sim().RunFor(200 * kMillisecond);

  EXPECT_EQ(ok + fail, 4 * 400) << "every RPC must complete one way or another";
  EXPECT_EQ(fail, 0) << "surviving lanes + retry must absorb a single QP kill";
  EXPECT_EQ(conn->num_failed_lanes(), 1u);
  EXPECT_GE(world.clients[0]->client_stats().lane_failures, 1u);
  EXPECT_GE(world.server->server_stats().lane_failures, 1u);
}

TEST(FlockFaultTest, TransientErrorBurstIsAbsorbedWithoutQuarantine) {
  FaultWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 2);
  int ok = 0, fail = 0;
  for (int t = 0; t < 2; ++t) {
    world.cluster.sim().Spawn(EchoLoop(conn, world.clients[0]->CreateThread(t), 200,
                                       &ok, &fail));
  }
  // Error a burst of completions on each lane (lost-ack model): the QPs stay
  // healthy and the data lands, so nothing may be quarantined or lost.
  world.cluster.fault().InjectSendErrorsAt(50 * kMicrosecond, /*node=*/1,
                                           conn->lane(0).qp->qpn(),
                                           verbs::WcStatus::kRnrError, 4);
  world.cluster.fault().InjectSendErrorsAt(80 * kMicrosecond, /*node=*/1,
                                           conn->lane(1).qp->qpn(),
                                           verbs::WcStatus::kRemoteAccessError, 4);
  world.cluster.sim().RunFor(100 * kMillisecond);

  EXPECT_EQ(ok, 2 * 200);
  EXPECT_EQ(fail, 0);
  EXPECT_EQ(conn->num_failed_lanes(), 0u) << "transient errors must not quarantine";
  EXPECT_EQ(world.clients[0]->client_stats().failed_rpcs, 0u);
  EXPECT_EQ(world.cluster.fault().stats().injected_errors, 8u);
}

TEST(FlockFaultTest, NodePauseDelaysButCompletes) {
  FaultWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 2);
  int ok = 0, fail = 0;
  world.cluster.sim().Spawn(EchoLoop(conn, world.clients[0]->CreateThread(0), 300,
                                     &ok, &fail));
  // Freeze the server's NIC for 300us mid-run; traffic must resume after.
  world.cluster.fault().PauseNodeAt(400 * kMicrosecond, /*node=*/0,
                                    /*duration=*/300 * kMicrosecond);
  world.cluster.sim().RunFor(100 * kMillisecond);

  EXPECT_EQ(ok, 300);
  EXPECT_EQ(fail, 0);
  // The 300us freeze exceeds the 100us RPC timeout: the watchdog retries
  // in-flight RPCs into the frozen server, and the duplicates it creates are
  // absorbed as spurious responses once the node thaws.
  EXPECT_GE(world.clients[0]->client_stats().retries, 1u);
  EXPECT_EQ(world.clients[0]->client_stats().failed_rpcs, 0u);
  EXPECT_EQ(world.cluster.fault().stats().node_pauses, 1u);
}

TEST(FlockFaultTest, AllLanesDeadFailsRpcsAndReclaimsSender) {
  FaultWorld world(/*nodes=*/3);  // node 1: victim client, node 2: healthy
  Connection* victim = world.clients[0]->Connect(*world.server, 2);
  Connection* healthy = world.clients[1]->Connect(*world.server, 2);
  int v_ok = 0, v_fail = 0, h_ok = 0, h_fail = 0;
  world.cluster.sim().Spawn(EchoLoop(victim, world.clients[0]->CreateThread(0), 60,
                                     &v_ok, &v_fail));
  world.cluster.sim().Spawn(EchoLoop(healthy, world.clients[1]->CreateThread(0), 500,
                                     &h_ok, &h_fail));
  // Kill the victim's entire node: every lane dies, nothing to migrate to.
  world.cluster.fault().KillNodeAt(50 * kMicrosecond, /*node=*/1);
  world.cluster.sim().RunFor(1000 * kMillisecond);

  // The victim's in-flight RPCs surface ok=false after retry exhaustion; the
  // workload coroutine keeps issuing (and failing) without ever crashing.
  EXPECT_EQ(v_ok + v_fail, 60);
  EXPECT_GT(v_fail, 0);
  EXPECT_EQ(victim->num_failed_lanes(), 2u);
  EXPECT_GT(world.clients[0]->client_stats().failed_rpcs, 0u);
  // The healthy client is unaffected.
  EXPECT_EQ(h_ok, 500);
  EXPECT_EQ(h_fail, 0);
  // The server reclaims the dead sender wholesale.
  EXPECT_GE(world.server->server_stats().dead_senders, 1u);
  EXPECT_GE(world.server->server_stats().lane_failures, 2u);
}

// Killed lane mid-extent (DESIGN.md §16): a QP dies while a megabyte chunk
// train is in flight. The chunks already delivered sit as a partial in the
// server's reassembly pool — the reclamation sweep must free that entry —
// and the watchdog must retransmit the whole extent over a surviving lane,
// so the caller completes with correct bytes rather than hanging.
TEST(FlockFaultTest, QpKillMidExtentReclaimsPartialAndRetransmits) {
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 8});
  FlockConfig server_cfg;
  server_cfg.max_payload = 2 * 1024 * 1024;
  server_cfg.segment_threshold = 8 * 1024;
  server_cfg.reassembly_timeout = 200 * kMicrosecond;
  auto server = std::make_unique<FlockRuntime>(cluster, 0, server_cfg);
  server->RegisterHandler(kEchoRpc, EchoHandler);
  server->StartServer(4);
  FlockConfig client_cfg = server_cfg;
  client_cfg.rpc_timeout = 300 * kMicrosecond;
  client_cfg.max_retries = 5;
  auto client = std::make_unique<FlockRuntime>(cluster, 1, client_cfg);
  client->StartClient();

  Connection* conn = client->Connect(*server, 2);
  FlockThread* thread = client->CreateThread(0);
  FlockThread* small_thread = client->CreateThread(1);

  constexpr uint32_t kExtent = 1024 * 1024;
  std::vector<uint8_t> extent(kExtent);
  for (uint32_t i = 0; i < kExtent; ++i) {
    extent[i] = static_cast<uint8_t>(i * 13 + 5);
  }
  std::vector<uint8_t> resp(kExtent);
  int extents_ok = 0;
  auto extent_app = [&]() -> sim::Co<void> {
    for (int i = 0; i < 3; ++i) {
      uint32_t resp_len = 0;
      const bool ok = co_await conn->Call(
          *thread, kEchoRpc, PayloadRef(extent.data(), kExtent), resp.data(),
          kExtent, &resp_len);
      EXPECT_TRUE(ok) << "extent " << i << " must survive the lane kill";
      EXPECT_EQ(resp_len, kExtent);
      if (ok && resp_len == kExtent) {
        EXPECT_EQ(std::memcmp(resp.data(), extent.data(), kExtent), 0);
        ++extents_ok;
      }
    }
  };
  // Concurrent small traffic: proves the reassembly disruption does not jam
  // the metadata path, and keeps lanes busy so dead-sender reclamation does
  // not kick in instead of per-lane recovery.
  int small_ok = 0, small_fail = 0;
  cluster.sim().Spawn(EchoLoop(conn, small_thread, 600, &small_ok, &small_fail));
  cluster.sim().Spawn(sim::RunClosure(extent_app));

  // Kill one client lane while the first extent's train is mid-flight. The
  // train takes ~128 chunks; at 30us some have landed, the rest never will.
  cluster.fault().KillQpAt(30 * kMicrosecond, /*node=*/1,
                           conn->lane(0).qp->qpn());
  cluster.sim().RunFor(400 * kMillisecond);

  EXPECT_EQ(extents_ok, 3) << "no stuck callers, bytes intact";
  EXPECT_EQ(small_ok + small_fail, 600);
  EXPECT_EQ(small_fail, 0);
  EXPECT_EQ(conn->num_failed_lanes(), 1u);
  EXPECT_GE(client->client_stats().retries, 1u);
  // The partial train stranded on the dead lane was reclaimed by timeout (or
  // displaced by the retransmit landing on the same lane); either way the
  // pool drained back to empty.
  const auto& pool = server->reassembly_pool();
  EXPECT_GT(pool.completed(), 0u);
  EXPECT_GE(pool.reclaimed() + pool.resets() + pool.orphans(), 1u);
  EXPECT_EQ(pool.in_use(), 0u);
}

// One-sided memops on a killed lane: the submitting coroutine gets an error
// status (never a hang), the lane is quarantined, and RPC traffic on the
// same connection heals onto the surviving lane — the contract the one-sided
// KV/index/txn paths rely on for their fall-back-to-RPC behavior. The RPCs
// resume immediately after the kill: a sender that goes silent with a failed
// lane is reclaimed wholesale by the dead-sender sweep (see
// AllLanesDeadFailsRpcsAndReclaimsSender), so the supported recovery path is
// live traffic, not idle-then-resume.
TEST(FlockFaultTest, MemOpOnKilledLaneErrorsQuarantinesAndRpcsSurvive) {
  FaultWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 2);
  FlockThread* thread = world.clients[0]->CreateThread(0);

  const uint64_t remote = world.cluster.mem(0).Alloc(8, 8);
  const uint64_t value = 0x5ca1ab1eULL;
  world.cluster.mem(0).Write(remote, &value, 8);
  const uint64_t local = world.cluster.mem(1).Alloc(8, 8);
  const RemoteMr mr = conn->AttachMreg(remote, 8);

  enum class Step { kStart, kWarm, kKilled, kDone };
  Step step = Step::kStart;
  int ok = 0, fail = 0;
  auto memops = [&]() -> sim::Co<void> {
    // Warm read: proves the one-sided path works before the fault.
    EXPECT_EQ(co_await conn->Read(*thread, local, remote, 8, mr),
              verbs::WcStatus::kSuccess);
    uint64_t got = 0;
    world.cluster.mem(1).Read(local, &got, 8);
    EXPECT_EQ(got, value);
    step = Step::kWarm;

    // Wait for the host side to kill this thread's lane, then read again:
    // the op must complete with a fatal (non-success) status, not hang.
    while (step != Step::kKilled) {
      co_await sim::Delay(world.cluster.sim(), 10 * kMicrosecond);
    }
    EXPECT_NE(co_await conn->Read(*thread, local, remote, 8, mr),
              verbs::WcStatus::kSuccess);

    // The quarantine repaired the connection: a retried memop (now routed to
    // the surviving lane) succeeds.
    uint64_t scratch = 0;
    world.cluster.mem(1).Write(local, &scratch, 8);
    EXPECT_EQ(co_await conn->Read(*thread, local, remote, 8, mr),
              verbs::WcStatus::kSuccess);
    world.cluster.mem(1).Read(local, &got, 8);
    EXPECT_EQ(got, value);

    // RPCs on the same thread migrate to the surviving lane.
    for (int i = 0; i < 100; ++i) {
      uint64_t payload = value + static_cast<uint64_t>(i);
      std::vector<uint8_t> resp;
      const bool rpc_ok = co_await conn->Call(
          *thread, kEchoRpc, reinterpret_cast<const uint8_t*>(&payload), 8,
          &resp);
      if (rpc_ok && resp.size() == 8 &&
          std::memcmp(resp.data(), &payload, 8) == 0) {
        ++ok;
      } else {
        ++fail;
      }
    }
    step = Step::kDone;
  };
  world.cluster.sim().Spawn(sim::RunClosure(memops));

  world.cluster.sim().RunFor(1 * kMillisecond);
  ASSERT_EQ(step, Step::kWarm);
  world.cluster.fault().KillQp(/*node=*/1, conn->lane(0).qp->qpn());
  step = Step::kKilled;
  world.cluster.sim().RunFor(100 * kMillisecond);

  EXPECT_EQ(step, Step::kDone);
  EXPECT_EQ(conn->num_failed_lanes(), 1u);
  EXPECT_GE(world.clients[0]->client_stats().lane_failures, 1u);
  EXPECT_EQ(ok, 100);
  EXPECT_EQ(fail, 0);
}

}  // namespace
}  // namespace flock
