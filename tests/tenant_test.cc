// Multi-tenant service layer tests (DESIGN.md §15): registry unit behavior
// (admission accounting, credit clipping, weighted pool split, throttle state
// machine), admission control through the live handshake (accept / reject /
// degrade), weighted-fair contention under 2- and 3-tenant load with
// same-seed determinism at any shard count, throttle decay and recovery under
// sustained over-quota traffic, teardown reclamation, and the PR-7
// interaction: tenants churning through the QP-recycling pools must not
// inherit each other's quota debt.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/ctrl/control_plane.h"
#include "src/flock/flock.h"
#include "src/tenant/tenant.h"

namespace flock {
namespace {

using tenant::Admission;
using tenant::TenantPolicy;
using tenant::TenantRegistry;

// ---------------------------------------------------------------------------
// Registry unit tests (pure bookkeeping, no simulator)
// ---------------------------------------------------------------------------

TEST(TenantRegistryTest, AdmissionChargesAndReleases) {
  TenantRegistry reg;
  TenantPolicy p;
  p.max_connections = 2;
  p.max_lanes = 6;
  reg.Register(7, p);

  const Admission a = reg.AdmitConnect(7, 4);
  EXPECT_EQ(a.verdict, Admission::Verdict::kAdmit);
  EXPECT_EQ(a.lanes, 4u);
  EXPECT_EQ(reg.LiveConnections(7), 1u);
  EXPECT_EQ(reg.LiveLanes(7), 4u);

  // Second connect wants 4 lanes but only 2 remain: degraded accept.
  const Admission b = reg.AdmitConnect(7, 4);
  EXPECT_EQ(b.verdict, Admission::Verdict::kAdmit);
  EXPECT_EQ(b.lanes, 2u);
  EXPECT_EQ(reg.CountersFor(7)->admission_degrades, 1u);
  EXPECT_EQ(reg.LiveLanes(7), 6u);

  // Third connect: over the connection ceiling, nothing charged.
  const Admission c = reg.AdmitConnect(7, 1);
  EXPECT_EQ(c.verdict, Admission::Verdict::kOverConnections);
  EXPECT_EQ(reg.CountersFor(7)->admission_rejects, 1u);
  EXPECT_EQ(reg.LiveConnections(7), 2u);

  reg.ReleaseConnection(7, 4);
  reg.ReleaseConnection(7, 2);
  EXPECT_EQ(reg.LiveConnections(7), 0u);
  EXPECT_EQ(reg.LiveLanes(7), 0u);
}

TEST(TenantRegistryTest, LaneCeilingRejectsWhenExhausted) {
  TenantRegistry reg;
  TenantPolicy p;
  p.max_lanes = 2;
  reg.Register(3, p);
  EXPECT_EQ(reg.AdmitConnect(3, 2).lanes, 2u);
  // All lanes held by the live connection: a new connect degrades to zero,
  // which is a reject (a handle with no lanes is useless).
  EXPECT_EQ(reg.AdmitConnect(3, 1).verdict, Admission::Verdict::kOverLanes);
  EXPECT_FALSE(reg.AdmitLane(3));
  reg.ReleaseLanes(3, 1);
  EXPECT_TRUE(reg.AdmitLane(3));
}

TEST(TenantRegistryTest, DefaultAndUnregisteredTenantsAreUnlimited) {
  TenantRegistry reg;
  const Admission a = reg.AdmitConnect(tenant::kDefaultTenant, 8);
  EXPECT_EQ(a.verdict, Admission::Verdict::kAdmit);
  EXPECT_EQ(a.lanes, 8u);
  EXPECT_EQ(reg.LiveConnections(tenant::kDefaultTenant), 0u);  // never charged
  EXPECT_EQ(reg.ClipGrant(tenant::kDefaultTenant, 32), 32u);
  EXPECT_TRUE(reg.SendAllowed(tenant::kDefaultTenant));
  EXPECT_EQ(reg.SendBudgetRemaining(tenant::kDefaultTenant), UINT64_MAX);
  // Releases for ids the registry never charged are no-ops, not underflows.
  reg.ReleaseConnection(99, 4);
  reg.ReleaseLanes(99, 4);
}

TEST(TenantRegistryTest, ClipGrantChargesWindowBudget) {
  TenantRegistry reg;
  TenantPolicy p;
  p.credit_budget = 48;
  reg.Register(5, p);

  EXPECT_EQ(reg.ClipGrant(5, 32), 32u);
  EXPECT_EQ(reg.ClipGrant(5, 32), 16u);  // clipped: 16 left of 48
  EXPECT_EQ(reg.ClipGrant(5, 32), 0u);   // exhausted
  EXPECT_EQ(reg.CountersFor(5)->credit_stalls, 2u);

  // Window roll refills; the same instant rolls only once.
  reg.EndWindow(1000);
  EXPECT_EQ(reg.ClipGrant(5, 40), 40u);
  reg.EndWindow(1000);
  EXPECT_EQ(reg.ClipGrant(5, 40), 8u) << "same-instant roll must not refill";
}

TEST(TenantRegistryTest, WindowPoolSplitsByWeight) {
  TenantRegistry reg;
  TenantPolicy heavy;
  heavy.weight = 2;
  TenantPolicy light;
  light.weight = 1;
  reg.Register(1, heavy);
  reg.Register(2, light);
  reg.SetWindowCreditPool(300);
  reg.EndWindow(1);

  // 2:1 split of the 300-credit pool.
  EXPECT_EQ(reg.ClipGrant(1, 1000), 200u);
  EXPECT_EQ(reg.ClipGrant(2, 1000), 100u);
}

TEST(TenantRegistryTest, ThrottleDecaysAndRecovers) {
  TenantRegistry reg;
  TenantPolicy p;
  p.credit_budget = 64;
  p.byte_quota = 1000;
  reg.Register(9, p);

  // decay_after=2 consecutive over-quota windows per step.
  uint64_t now = 0;
  for (int w = 0; w < 4; ++w) {
    reg.OnRequests(9, 10, 5000);  // 5x over quota
    reg.EndWindow(++now);
  }
  EXPECT_EQ(reg.ThrottleLevel(9), 2u);
  EXPECT_EQ(reg.CountersFor(9)->throttle_events, 2u);
  EXPECT_EQ(reg.CountersFor(9)->over_quota_windows, 4u);
  // Budget decays with the level: 64 >> 2 = 16.
  EXPECT_EQ(reg.ClipGrant(9, 64), 16u);

  // recover_after=4 clean windows per recovery step.
  for (int w = 0; w < 8; ++w) {
    reg.EndWindow(++now);
  }
  EXPECT_EQ(reg.ThrottleLevel(9), 0u);
  EXPECT_EQ(reg.CountersFor(9)->throttle_recoveries, 2u);
  EXPECT_EQ(reg.ClipGrant(9, 64), 64u);
}

TEST(TenantRegistryTest, ThrottledBudgetNeverReachesZero) {
  TenantRegistry reg;
  TenantPolicy p;
  p.credit_budget = 4;
  p.byte_quota = 10;
  reg.Register(2, p);
  uint64_t now = 0;
  for (int w = 0; w < 40; ++w) {
    reg.OnRequests(2, 1, 1000);
    reg.EndWindow(++now);
  }
  EXPECT_EQ(reg.ThrottleLevel(2), reg.throttle.max_level);
  // 4 >> 6 would be zero; the floor keeps the tenant crawling, not dead.
  EXPECT_EQ(reg.ClipGrant(2, 8), 1u);
}

TEST(TenantRegistryTest, SendBudgetTracksWindowBytes) {
  TenantRegistry reg;
  TenantPolicy p;
  p.byte_quota = 1024;
  reg.Register(4, p);
  EXPECT_TRUE(reg.SendAllowed(4));
  EXPECT_EQ(reg.SendBudgetRemaining(4), 1024u);
  reg.ChargeSent(4, 1000);
  EXPECT_TRUE(reg.SendAllowed(4));
  EXPECT_EQ(reg.SendBudgetRemaining(4), 24u);
  reg.ChargeSent(4, 100);  // soft bound: the crossing batch still counts
  EXPECT_FALSE(reg.SendAllowed(4));
  EXPECT_EQ(reg.SendBudgetRemaining(4), 0u);
  reg.EndWindow(1);
  EXPECT_TRUE(reg.SendAllowed(4));
}

// ---------------------------------------------------------------------------
// Integration: admission through the live handshake
// ---------------------------------------------------------------------------

constexpr uint16_t kEchoRpc = 1;

uint32_t EchoHandler(const uint8_t* req, uint32_t len, uint8_t* resp,
                     uint32_t cap, Nanos* cpu) {
  FLOCK_CHECK_LE(len, cap);
  std::memcpy(resp, req, len);
  *cpu = 60;
  return len;
}

FlockConfig TenancyConfig() {
  FlockConfig cfg;
  cfg.tenancy = true;
  return cfg;
}

// A server plus N-1 clients with tenancy enabled everywhere.
struct TenantWorld {
  static verbs::Cluster::Config MakeClusterConfig(int nodes, int num_shards,
                                                  int num_workers) {
    verbs::Cluster::Config c;
    c.num_nodes = nodes;
    c.cores_per_node = 8;
    c.num_shards = num_shards;
    c.num_workers = num_workers;
    return c;
  }

  explicit TenantWorld(int nodes = 3, FlockConfig cfg = TenancyConfig(),
                       int num_shards = 1, int num_workers = 0)
      : cluster(MakeClusterConfig(nodes, num_shards, num_workers)) {
    server = std::make_unique<FlockRuntime>(cluster, 0, cfg);
    server->RegisterHandler(kEchoRpc, EchoHandler);
    server->StartServer(4);
    for (int n = 1; n < nodes; ++n) {
      clients.push_back(std::make_unique<FlockRuntime>(cluster, n, cfg));
      clients.back()->StartClient();
    }
  }

  TenantRegistry& tenants() {
    return ctrl::ControlPlane::For(cluster).tenants();
  }

  verbs::Cluster cluster;
  std::unique_ptr<FlockRuntime> server;
  std::vector<std::unique_ptr<FlockRuntime>> clients;
};

sim::Proc EchoLoop(Connection* conn, FlockThread* thread, int count,
                   int* ok_count, int* fail_count) {
  std::vector<uint8_t> resp;
  for (int i = 0; i < count; ++i) {
    uint64_t payload = static_cast<uint64_t>(i);
    const bool ok =
        co_await conn->Call(*thread, kEchoRpc,
                            reinterpret_cast<const uint8_t*>(&payload), 8, &resp);
    (ok ? *ok_count : *fail_count) += 1;
  }
}

// Fat-payload hot loop: moves enough bytes per scheduling window to trip a
// kilobyte-scale byte_quota (the 8-byte EchoLoop cannot).
sim::Proc FloodLoop(Connection* conn, FlockThread* thread, int count,
                    uint32_t payload_bytes, int* ok_count, int* fail_count) {
  std::vector<uint8_t> req(payload_bytes, 0xAB);
  std::vector<uint8_t> resp;
  for (int i = 0; i < count; ++i) {
    const bool ok = co_await conn->Call(*thread, kEchoRpc, req.data(),
                                        payload_bytes, &resp);
    (ok ? *ok_count : *fail_count) += 1;
  }
}

TEST(TenantAdmissionTest, AcceptRejectAndDegrade) {
  TenantWorld world;
  TenantPolicy bounded;
  bounded.max_connections = 1;
  bounded.max_lanes = 2;
  world.tenants().Register(1, bounded);

  // Unknown tenant: rejected outright, counted.
  EXPECT_EQ(world.clients[0]->Connect(0, 4, /*tenant=*/42), nullptr);
  EXPECT_EQ(world.tenants().unknown_rejects(), 1u);

  // Registered tenant asking for more lanes than its ceiling: degraded
  // accept — the handle comes back with the granted count, fully serviceable.
  Connection* conn = world.clients[0]->Connect(0, 4, /*tenant=*/1);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->num_lanes(), 2u);
  EXPECT_EQ(conn->tenant_id(), 1u);
  EXPECT_EQ(world.tenants().CountersFor(1)->admission_degrades, 1u);
  EXPECT_EQ(world.tenants().LiveLanes(1), 2u);

  // Second connect: over max_connections.
  EXPECT_EQ(world.clients[1]->Connect(0, 1, /*tenant=*/1), nullptr);
  EXPECT_EQ(world.tenants().CountersFor(1)->admission_rejects, 1u);

  // The degraded handle serves RPCs normally.
  int ok = 0, fail = 0;
  for (int t = 0; t < 4; ++t) {
    world.cluster.sim().Spawn(
        EchoLoop(conn, world.clients[0]->CreateThread(t), 200, &ok, &fail));
  }
  world.cluster.sim().RunFor(100 * kMillisecond);
  EXPECT_EQ(ok, 4 * 200);
  EXPECT_EQ(fail, 0);
  // Attribution reached the census and the stamp always matched.
  EXPECT_EQ(world.tenants().CountersFor(1)->rpcs, 4u * 200u);
  EXPECT_EQ(world.tenants().CountersFor(1)->stamp_mismatches, 0u);
}

TEST(TenantAdmissionTest, DefaultTenantUnaffectedByTenancyFlag) {
  TenantWorld world;
  Connection* conn = world.clients[0]->Connect(0, 4);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->num_lanes(), 4u);
  int ok = 0, fail = 0;
  world.cluster.sim().Spawn(
      EchoLoop(conn, world.clients[0]->CreateThread(0), 100, &ok, &fail));
  world.cluster.sim().RunFor(50 * kMillisecond);
  EXPECT_EQ(ok, 100);
  EXPECT_EQ(fail, 0);
}

// ---------------------------------------------------------------------------
// Weighted-fair contention
// ---------------------------------------------------------------------------

struct ContendResult {
  std::vector<uint64_t> rpcs;  // per tenant id, index 0 unused
  uint64_t hash = 0;
};

// N tenants (ids 1..N) on separate client nodes hammer one server under a
// shared window credit pool. Returns per-tenant served-RPC counts plus an
// order-sensitive fingerprint for the determinism checks. The registry is
// cluster-global state touched from every node, so multi-shard runs serialize
// the shard workers (num_workers=1) — by the kernel's contract that cannot
// change the trace, and it keeps the registry single-threaded.
ContendResult RunWeightedContention(const std::vector<uint32_t>& weights,
                                    int num_shards) {
  const int tenants_n = static_cast<int>(weights.size());
  TenantWorld world(1 + tenants_n, TenancyConfig(), num_shards,
                    /*num_workers=*/num_shards > 1 ? 1 : 0);
  for (int i = 0; i < tenants_n; ++i) {
    TenantPolicy p;
    p.weight = weights[static_cast<size_t>(i)];
    world.tenants().Register(static_cast<tenant::TenantId>(i + 1), p);
  }
  // A pool small enough to be the bottleneck: fairness comes from grant
  // clipping, not from the clients' offered load.
  world.tenants().SetWindowCreditPool(96);

  std::vector<int> ok(static_cast<size_t>(tenants_n), 0);
  std::vector<int> fail(static_cast<size_t>(tenants_n), 0);
  for (int i = 0; i < tenants_n; ++i) {
    Connection* conn = world.clients[static_cast<size_t>(i)]->Connect(
        0, 4, static_cast<tenant::TenantId>(i + 1));
    EXPECT_NE(conn, nullptr);
    for (int t = 0; t < 4; ++t) {
      // Home each loop on its client's node: multi-shard runs require procs
      // to live on the shard whose node they drive.
      world.cluster.sim().Spawn(
          EchoLoop(conn, world.clients[static_cast<size_t>(i)]->CreateThread(t),
                   1 << 20, &ok[static_cast<size_t>(i)],
                   &fail[static_cast<size_t>(i)]),
          /*node=*/i + 1);
    }
  }
  world.cluster.sim().RunFor(40 * kMillisecond);

  ContendResult r;
  r.rpcs.assign(static_cast<size_t>(tenants_n) + 1, 0);
  bench::TraceHash h;
  for (int i = 1; i <= tenants_n; ++i) {
    const tenant::TenantCounters* c =
        world.tenants().CountersFor(static_cast<tenant::TenantId>(i));
    r.rpcs[static_cast<size_t>(i)] = c->rpcs;
    h.Mix(c->rpcs).Mix(c->bytes).Mix(c->credit_stalls).Mix(c->quota_stalls);
    h.Mix(static_cast<uint64_t>(ok[static_cast<size_t>(i - 1)]));
    h.Mix(static_cast<uint64_t>(fail[static_cast<size_t>(i - 1)]));
  }
  h.Mix(world.server->server_stats().requests);
  r.hash = h.value();
  return r;
}

TEST(TenantFairnessTest, TwoTenantWeightedSplit) {
  const ContendResult r = RunWeightedContention({2, 1}, /*num_shards=*/1);
  ASSERT_GT(r.rpcs[1], 0u);
  ASSERT_GT(r.rpcs[2], 0u);
  const double ratio =
      static_cast<double>(r.rpcs[1]) / static_cast<double>(r.rpcs[2]);
  // Weight 2:1 under a binding credit pool: the heavy tenant must get
  // measurably more, and the split must stay in the neighborhood of the
  // configured weights (grant clipping is per-lane, so it is not exact).
  EXPECT_GT(ratio, 1.4) << "weighted-fair layer had no effect";
  EXPECT_LT(ratio, 3.0) << "heavy tenant starved the light one";
}

TEST(TenantFairnessTest, ThreeTenantWeightedSplit) {
  const ContendResult r = RunWeightedContention({2, 1, 1}, /*num_shards=*/1);
  ASSERT_GT(r.rpcs[3], 0u);
  const double r12 =
      static_cast<double>(r.rpcs[1]) / static_cast<double>(r.rpcs[2]);
  const double r23 =
      static_cast<double>(r.rpcs[2]) / static_cast<double>(r.rpcs[3]);
  EXPECT_GT(r12, 1.3);
  EXPECT_LT(r12, 3.0);
  // The two weight-1 tenants see symmetric service.
  EXPECT_GT(r23, 0.75);
  EXPECT_LT(r23, 1.34);
}

TEST(TenantFairnessTest, SameSeedTraceIdenticalAcrossShardCounts) {
  const ContendResult base = RunWeightedContention({2, 1}, /*num_shards=*/1);
  for (const int shards : {2, 4}) {
    const ContendResult r = RunWeightedContention({2, 1}, shards);
    EXPECT_EQ(r.hash, base.hash) << "shards=" << shards;
    EXPECT_EQ(r.rpcs, base.rpcs) << "shards=" << shards;
  }
}

// ---------------------------------------------------------------------------
// Throttle under live over-quota traffic, then recovery
// ---------------------------------------------------------------------------

TEST(TenantThrottleTest, DecayUnderFloodThenRecovery) {
  TenantWorld world(2);
  TenantPolicy p;
  p.credit_budget = 256;
  p.byte_quota = 8 * 1024;  // ~8KB per 200us window, far below the flood
  world.tenants().Register(1, p);

  Connection* conn = world.clients[0]->Connect(0, 4, /*tenant=*/1);
  ASSERT_NE(conn, nullptr);
  int ok = 0, fail = 0;
  for (int t = 0; t < 4; ++t) {
    world.cluster.sim().Spawn(FloodLoop(conn, world.clients[0]->CreateThread(t),
                                        500, /*payload_bytes=*/512, &ok, &fail));
  }
  // Mid-flood: quota tripping, throttle decaying, grants being clipped.
  world.cluster.sim().RunFor(4 * kMillisecond);
  const tenant::TenantCounters& mid = *world.tenants().CountersFor(1);
  EXPECT_GT(mid.over_quota_windows, 0u) << "flood never tripped the quota";
  EXPECT_GT(mid.throttle_events, 0u) << "sustained over-quota did not decay";
  EXPECT_GT(world.tenants().ThrottleLevel(1), 0u);
  EXPECT_GT(mid.credit_stalls + mid.quota_stalls, 0u)
      << "throttle decayed but nothing was ever clipped or stalled";

  // The bounded loops drain under quota, then clean windows walk the level
  // back down. Throttling slows a tenant; it never fails its RPCs.
  world.cluster.sim().RunFor(150 * kMillisecond);
  const tenant::TenantCounters& after = *world.tenants().CountersFor(1);
  EXPECT_GT(after.throttle_recoveries, 0u);
  EXPECT_EQ(world.tenants().ThrottleLevel(1), 0u)
      << "idle tenant must recover fully";
  EXPECT_EQ(ok, 4 * 500);
  EXPECT_EQ(fail, 0);
}

// ---------------------------------------------------------------------------
// Teardown reclamation and PR-7 recycling interaction
// ---------------------------------------------------------------------------

TEST(TenantTeardownTest, CloseReclaimsConnectionsAndLanes) {
  TenantWorld world(3);
  TenantPolicy p;
  p.max_connections = 2;
  p.max_lanes = 8;
  world.tenants().Register(1, p);

  Connection* a = world.clients[0]->Connect(0, 4, /*tenant=*/1);
  Connection* b = world.clients[1]->Connect(0, 4, /*tenant=*/1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(world.tenants().LiveConnections(1), 2u);
  EXPECT_EQ(world.tenants().LiveLanes(1), 8u);

  int ok = 0, fail = 0;
  world.cluster.sim().Spawn(
      EchoLoop(a, world.clients[0]->CreateThread(0), 100, &ok, &fail));
  world.cluster.sim().RunFor(20 * kMillisecond);
  EXPECT_EQ(ok, 100);

  world.clients[0]->CloseConnection(a);
  world.cluster.sim().RunFor(20 * kMillisecond);
  EXPECT_EQ(world.tenants().LiveConnections(1), 1u);
  EXPECT_EQ(world.tenants().LiveLanes(1), 4u);
  // Freed capacity is immediately admittable again.
  Connection* c = world.clients[0]->Connect(0, 4, /*tenant=*/1);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->num_lanes(), 4u);

  world.clients[0]->CloseConnection(c);
  world.clients[1]->CloseConnection(b);
  world.cluster.sim().RunFor(20 * kMillisecond);
  EXPECT_EQ(world.tenants().LiveConnections(1), 0u);
  EXPECT_EQ(world.tenants().LiveLanes(1), 0u);
}

TEST(TenantRecyclingTest, PooledLaneShellsCarryNoQuotaDebt) {
  FlockConfig cfg = TenancyConfig();
  cfg.qp_recycling = true;
  TenantWorld world(2, cfg);

  // Tenant 1: tiny quotas, flooded until throttled. Tenant 2: clean slate.
  TenantPolicy abusive;
  abusive.credit_budget = 256;
  abusive.byte_quota = 8 * 1024;
  abusive.max_lanes = 4;
  world.tenants().Register(1, abusive);
  TenantPolicy clean;
  clean.max_lanes = 4;
  world.tenants().Register(2, clean);

  Connection* hot = world.clients[0]->Connect(0, 4, /*tenant=*/1);
  ASSERT_NE(hot, nullptr);
  int ok1 = 0, fail1 = 0;
  for (int t = 0; t < 4; ++t) {
    world.cluster.sim().Spawn(FloodLoop(hot, world.clients[0]->CreateThread(t),
                                        500, /*payload_bytes=*/512, &ok1,
                                        &fail1));
  }
  world.cluster.sim().RunFor(4 * kMillisecond);
  EXPECT_GT(world.tenants().ThrottleLevel(1), 0u) << "flood never throttled";

  // Drain, then orderly close: the disconnect handshake reclaims the
  // tenant's admission accounting and harvests the server-side shells.
  world.cluster.sim().RunFor(50 * kMillisecond);
  world.clients[0]->CloseConnection(hot);
  world.cluster.sim().RunFor(5 * kMillisecond);
  EXPECT_EQ(world.tenants().LiveLanes(1), 0u) << "teardown leaked lane charge";

  // Tenant 2 connects through the recycled shells the flood left behind.
  Connection* fresh = world.clients[0]->Connect(0, 4, /*tenant=*/2);
  ASSERT_NE(fresh, nullptr);
  EXPECT_GT(world.server->server_stats().qps_recycled, 0u)
      << "test did not exercise the recycling path";

  const uint64_t t1_rpcs_before = world.tenants().CountersFor(1)->rpcs;
  int ok2 = 0, fail2 = 0;
  for (int t = 4; t < 8; ++t) {
    world.cluster.sim().Spawn(EchoLoop(
        fresh, world.clients[0]->CreateThread(t), 2000, &ok2, &fail2));
  }
  world.cluster.sim().RunFor(60 * kMillisecond);

  // No inherited debt: tenant 2 is unbudgeted and unthrottled, its traffic
  // completes, and none of it is misattributed to the previous occupant.
  EXPECT_EQ(ok2, 4 * 2000);
  EXPECT_EQ(fail2, 0);
  EXPECT_EQ(world.tenants().ThrottleLevel(2), 0u);
  EXPECT_EQ(world.tenants().CountersFor(2)->credit_stalls, 0u);
  EXPECT_EQ(world.tenants().CountersFor(2)->quota_stalls, 0u);
  EXPECT_EQ(world.tenants().CountersFor(2)->stamp_mismatches, 0u);
  EXPECT_EQ(world.tenants().CountersFor(1)->rpcs, t1_rpcs_before)
      << "recycled lane still attributed to its previous tenant";
  EXPECT_EQ(world.tenants().CountersFor(2)->rpcs, static_cast<uint64_t>(ok2));
}

}  // namespace
}  // namespace flock
