// Unit tests for the allocation-free hot-path building blocks in
// src/common/pool.h: Pool, SmallBuf, and SeqSlotMap.
#include "src/common/pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <set>
#include <vector>

namespace flock {
namespace {

struct Tracked {
  explicit Tracked(int v) : value(v) { ++live; }
  ~Tracked() { --live; }
  int value;
  static int live;
};
int Tracked::live = 0;

TEST(PoolTest, NewConstructsDeleteDestroys) {
  Tracked::live = 0;
  Pool<Tracked> pool(4);
  Tracked* a = pool.New(7);
  EXPECT_EQ(a->value, 7);
  EXPECT_EQ(Tracked::live, 1);
  EXPECT_EQ(pool.outstanding(), 1u);
  pool.Delete(a);
  EXPECT_EQ(Tracked::live, 0);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(PoolTest, ReleasedSlotIsReused) {
  Pool<Tracked> pool(4);
  Tracked* a = pool.New(1);
  pool.Delete(a);
  Tracked* b = pool.New(2);
  // The freed slot parks on the free list and must be handed out again.
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.reused(), 1u);
  pool.Delete(b);
}

TEST(PoolTest, GrowsBySlabsWithoutMovingLiveObjects) {
  Pool<Tracked> pool(4);
  std::vector<Tracked*> objs;
  for (int i = 0; i < 10; ++i) {
    objs.push_back(pool.New(i));
  }
  EXPECT_EQ(pool.slab_count(), 3u);   // ceil(10 / 4)
  EXPECT_EQ(pool.capacity(), 12u);
  EXPECT_EQ(pool.outstanding(), 10u);
  // Growth must not have disturbed earlier objects.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(objs[i]->value, i);
  }
  // All pointers distinct.
  EXPECT_EQ(std::set<Tracked*>(objs.begin(), objs.end()).size(), 10u);
  for (Tracked* t : objs) {
    pool.Delete(t);
  }
  EXPECT_EQ(Tracked::live, 0);
}

TEST(PoolTest, SteadyStateChurnsWithoutGrowth) {
  Pool<Tracked> pool(8);
  for (int round = 0; round < 100; ++round) {
    Tracked* a = pool.New(round);
    Tracked* b = pool.New(round + 1);
    pool.Delete(a);
    pool.Delete(b);
  }
  EXPECT_EQ(pool.slab_count(), 1u);
  EXPECT_GE(pool.reused(), 198u);  // everything after the first two came from the free list
}

TEST(PoolTest, DeleteNullIsNoop) {
  Pool<Tracked> pool;
  pool.Delete(nullptr);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(PoolTest, OutstandingObjectsDestroyedWithPool) {
  Tracked::live = 0;
  {
    Pool<Tracked> pool(4);
    pool.New(1);
    pool.New(2);
    EXPECT_EQ(Tracked::live, 2);
  }
  // Leaked-into-the-pool objects (in-flight ops at shutdown) are reclaimed.
  EXPECT_EQ(Tracked::live, 0);
}

TEST(PoolDeathTest, DoubleFreeIsCaught) {
  Pool<Tracked> pool(4);
  Tracked* a = pool.New(1);
  pool.Delete(a);
  EXPECT_DEATH(pool.Delete(a), "double free");
}

TEST(SmallBufTest, SmallPayloadStaysInline) {
  SmallBuf<128> buf;
  EXPECT_TRUE(buf.empty());
  uint8_t* p = buf.Resize(128);
  std::memset(p, 0xab, 128);
  EXPECT_TRUE(buf.inlined());
  EXPECT_EQ(buf.size(), 128u);
  EXPECT_EQ(buf.data()[127], 0xab);
}

TEST(SmallBufTest, LargePayloadSpillsToHeap) {
  SmallBuf<128> buf;
  uint8_t* p = buf.Resize(4096);
  std::memset(p, 0xcd, 4096);
  EXPECT_FALSE(buf.inlined());
  EXPECT_EQ(buf.size(), 4096u);
  EXPECT_EQ(buf.data()[4095], 0xcd);
  // Shrinking back re-uses the inline storage.
  buf.Resize(16)[0] = 1;
  EXPECT_TRUE(buf.inlined());
}

TEST(SmallBufTest, AssignAndCopyTo) {
  const uint8_t src[5] = {1, 2, 3, 4, 5};
  SmallBuf<128> buf;
  buf.Assign(src, 5);
  std::vector<uint8_t> out;
  buf.CopyTo(&out);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(std::memcmp(out.data(), src, 5), 0);
}

TEST(SmallBufTest, MoveTransfersInlineContents) {
  SmallBuf<128> a;
  const uint8_t src[3] = {9, 8, 7};
  a.Assign(src, 3);
  SmallBuf<128> b(std::move(a));
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.data()[0], 9);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): moved-from is empty
}

TEST(SmallBufTest, MoveStealsHeapBlock) {
  SmallBuf<16> a;
  uint8_t* p = a.Resize(1000);
  std::memset(p, 0x5a, 1000);
  const uint8_t* heap_before = a.data();
  SmallBuf<16> b;
  b = std::move(a);
  EXPECT_EQ(b.data(), heap_before);  // ownership moved, no copy
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_EQ(b.data()[999], 0x5a);
  // Moved-from buffer is reusable.
  a.Resize(8)[0] = 1;
  EXPECT_TRUE(a.inlined());
}

TEST(SeqSlotMapTest, InsertTakeRoundTrip) {
  SeqSlotMap<int> map;
  int values[3] = {10, 20, 30};
  map.Insert(1, &values[0]);
  map.Insert(2, &values[1]);
  map.Insert(3, &values[2]);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.Take(2), &values[1]);
  EXPECT_EQ(map.Take(2), nullptr);  // already taken
  EXPECT_EQ(map.Take(1), &values[0]);
  EXPECT_EQ(map.Take(3), &values[2]);
  EXPECT_EQ(map.size(), 0u);
}

TEST(SeqSlotMapTest, TakeOnEmptyMap) {
  SeqSlotMap<int> map;
  EXPECT_EQ(map.Take(42), nullptr);
}

TEST(SeqSlotMapTest, GrowsPastInitialCapacityAndKeepsEntries) {
  SeqSlotMap<int> map;
  std::vector<int> values(1000);
  std::iota(values.begin(), values.end(), 0);
  for (uint32_t seq = 1; seq <= 1000; ++seq) {
    map.Insert(seq, &values[seq - 1]);
  }
  EXPECT_EQ(map.size(), 1000u);
  for (uint32_t seq = 1; seq <= 1000; ++seq) {
    EXPECT_EQ(map.Take(seq), &values[seq - 1]);
  }
}

TEST(SeqSlotMapTest, SlidingWindowMatchesRpcUsage) {
  // The real access pattern: a dense window of recent sequence numbers,
  // inserted in order, removed roughly in order.
  SeqSlotMap<int> map;
  int dummy[64];
  uint32_t next = 1;
  for (uint32_t i = 0; i < 64; ++i) {
    map.Insert(next, &dummy[next % 64]);
    ++next;
  }
  for (int round = 0; round < 10000; ++round) {
    const uint32_t oldest = next - 64;
    ASSERT_EQ(map.Take(oldest), &dummy[oldest % 64]);
    map.Insert(next, &dummy[next % 64]);
    ++next;
  }
  EXPECT_EQ(map.size(), 64u);
  // Table stays bounded: backward-shift deletion leaves no tombstones.
  EXPECT_LE(map.capacity(), 256u);
}

TEST(SeqSlotMapTest, CollidingKeysAfterDeletionStillFound) {
  // Force probe chains across the wrap point, then delete from the middle —
  // backward-shift must keep the remaining chain reachable.
  SeqSlotMap<int> map;
  int dummy[8];
  // 64-slot initial table: keys 63, 127, 191 all hash to slot 63 and wrap.
  map.Insert(63, &dummy[0]);
  map.Insert(127, &dummy[1]);
  map.Insert(191, &dummy[2]);
  EXPECT_EQ(map.Take(127), &dummy[1]);
  EXPECT_EQ(map.Take(191), &dummy[2]);
  EXPECT_EQ(map.Take(63), &dummy[0]);
}

}  // namespace
}  // namespace flock
