// Integration tests for the simulated verbs layer: transport capability
// matrix (Table 1), two-sided messaging, one-sided read/write/atomics,
// ordering, selective signaling, error paths, and the QP-state cache.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/verbs/device.h"

namespace flock::verbs {
namespace {

using sim::Proc;

class VerbsTest : public ::testing::Test {
 protected:
  VerbsTest() : cluster_(Cluster::Config{.num_nodes = 3}) {}

  Cluster cluster_;
};

TEST_F(VerbsTest, RcWriteCopiesBytesBetweenNodes) {
  Cq* scq0 = cluster_.device(0).CreateCq();
  Cq* rcq0 = cluster_.device(0).CreateCq();
  Cq* scq1 = cluster_.device(1).CreateCq();
  Cq* rcq1 = cluster_.device(1).CreateCq();
  auto [qp0, qp1] = cluster_.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);

  const uint64_t src = cluster_.mem(0).Alloc(64);
  const uint64_t dst = cluster_.mem(1).Alloc(64);
  Mr mr = cluster_.device(1).RegisterMr(dst, 64);

  const char msg[] = "flock-over-rdma";
  cluster_.mem(0).Write(src, msg, sizeof(msg));

  SendWr wr;
  wr.wr_id = 7;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = src;
  wr.length = sizeof(msg);
  wr.remote_addr = dst;
  wr.rkey = mr.rkey;
  ASSERT_EQ(qp0->PostSend(wr), WcStatus::kSuccess);

  cluster_.sim().Run();

  char out[sizeof(msg)] = {};
  cluster_.mem(1).Read(dst, out, sizeof(msg));
  EXPECT_STREQ(out, msg);

  Completion wc;
  ASSERT_TRUE(scq0->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 7u);
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
  EXPECT_EQ(wc.opcode, WcOpcode::kWrite);
  EXPECT_FALSE(scq0->Poll(&wc));
}

TEST_F(VerbsTest, RcReadFetchesRemoteBytes) {
  Cq* scq0 = cluster_.device(0).CreateCq();
  Cq* rcq0 = cluster_.device(0).CreateCq();
  Cq* scq1 = cluster_.device(1).CreateCq();
  Cq* rcq1 = cluster_.device(1).CreateCq();
  auto [qp0, qp1] = cluster_.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);

  const uint64_t local = cluster_.mem(0).Alloc(32);
  const uint64_t remote = cluster_.mem(1).Alloc(32);
  Mr mr = cluster_.device(1).RegisterMr(remote, 32);
  const uint64_t value = 0xdeadbeefcafef00dULL;
  cluster_.mem(1).Write(remote, &value, 8);

  SendWr wr;
  wr.opcode = Opcode::kRead;
  wr.local_addr = local;
  wr.length = 8;
  wr.remote_addr = remote;
  wr.rkey = mr.rkey;
  ASSERT_EQ(qp0->PostSend(wr), WcStatus::kSuccess);
  cluster_.sim().Run();

  uint64_t got = 0;
  cluster_.mem(0).Read(local, &got, 8);
  EXPECT_EQ(got, value);

  Completion wc;
  ASSERT_TRUE(scq0->Poll(&wc));
  EXPECT_EQ(wc.opcode, WcOpcode::kRead);
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
}

TEST_F(VerbsTest, RcSendRecvDeliversPayloadAndProvenance) {
  Cq* scq0 = cluster_.device(0).CreateCq();
  Cq* rcq0 = cluster_.device(0).CreateCq();
  Cq* scq1 = cluster_.device(1).CreateCq();
  Cq* rcq1 = cluster_.device(1).CreateCq();
  auto [qp0, qp1] = cluster_.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);

  const uint64_t src = cluster_.mem(0).Alloc(16);
  const uint64_t buf = cluster_.mem(1).Alloc(128);
  qp1->PostRecv(RecvWr{.wr_id = 42, .local_addr = buf, .length = 128});

  const uint64_t token = 0x1234567890abcdefULL;
  cluster_.mem(0).Write(src, &token, 8);
  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.local_addr = src;
  wr.length = 8;
  ASSERT_EQ(qp0->PostSend(wr), WcStatus::kSuccess);
  cluster_.sim().Run();

  Completion wc;
  ASSERT_TRUE(rcq1->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 42u);
  EXPECT_EQ(wc.opcode, WcOpcode::kRecv);
  EXPECT_EQ(wc.byte_len, 8u);
  EXPECT_EQ(wc.src_node, 0);
  EXPECT_EQ(wc.src_qpn, qp0->qpn());
  uint64_t got = 0;
  cluster_.mem(1).Read(buf, &got, 8);
  EXPECT_EQ(got, token);
}

TEST_F(VerbsTest, FetchAddIsAtomicAndReturnsOldValue) {
  Cq* scq0 = cluster_.device(0).CreateCq();
  Cq* rcq0 = cluster_.device(0).CreateCq();
  Cq* scq1 = cluster_.device(1).CreateCq();
  Cq* rcq1 = cluster_.device(1).CreateCq();
  auto [qp0, qp1] = cluster_.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);

  const uint64_t result = cluster_.mem(0).Alloc(8, 8);
  const uint64_t counter = cluster_.mem(1).Alloc(8, 8);
  Mr mr = cluster_.device(1).RegisterMr(counter, 8);
  const uint64_t initial = 100;
  cluster_.mem(1).Write(counter, &initial, 8);

  SendWr wr;
  wr.opcode = Opcode::kFetchAdd;
  wr.local_addr = result;
  wr.remote_addr = counter;
  wr.rkey = mr.rkey;
  wr.swap_or_add = 5;
  ASSERT_EQ(qp0->PostSend(wr), WcStatus::kSuccess);
  cluster_.sim().Run();

  uint64_t old_val = 0, new_val = 0;
  cluster_.mem(0).Read(result, &old_val, 8);
  cluster_.mem(1).Read(counter, &new_val, 8);
  EXPECT_EQ(old_val, 100u);
  EXPECT_EQ(new_val, 105u);
}

TEST_F(VerbsTest, CompareSwapOnlySwapsOnMatch) {
  Cq* scq0 = cluster_.device(0).CreateCq();
  Cq* rcq0 = cluster_.device(0).CreateCq();
  Cq* scq1 = cluster_.device(1).CreateCq();
  Cq* rcq1 = cluster_.device(1).CreateCq();
  auto [qp0, qp1] = cluster_.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);

  const uint64_t result = cluster_.mem(0).Alloc(8, 8);
  const uint64_t word = cluster_.mem(1).Alloc(8, 8);
  Mr mr = cluster_.device(1).RegisterMr(word, 8);
  const uint64_t initial = 7;
  cluster_.mem(1).Write(word, &initial, 8);

  // Mismatched compare: no swap.
  SendWr wr;
  wr.opcode = Opcode::kCmpSwap;
  wr.local_addr = result;
  wr.remote_addr = word;
  wr.rkey = mr.rkey;
  wr.compare = 99;
  wr.swap_or_add = 1;
  ASSERT_EQ(qp0->PostSend(wr), WcStatus::kSuccess);
  cluster_.sim().Run();
  uint64_t val = 0;
  cluster_.mem(1).Read(word, &val, 8);
  EXPECT_EQ(val, 7u);

  // Matching compare: swap happens, old value returned.
  wr.compare = 7;
  wr.swap_or_add = 55;
  ASSERT_EQ(qp0->PostSend(wr), WcStatus::kSuccess);
  cluster_.sim().Run();
  cluster_.mem(1).Read(word, &val, 8);
  EXPECT_EQ(val, 55u);
  uint64_t old_val = 0;
  cluster_.mem(0).Read(result, &old_val, 8);
  EXPECT_EQ(old_val, 7u);
}

TEST_F(VerbsTest, UdSendReachesNamedDestination) {
  Cq* scq0 = cluster_.device(0).CreateCq();
  Cq* rcq0 = cluster_.device(0).CreateCq();
  Cq* scq2 = cluster_.device(2).CreateCq();
  Cq* rcq2 = cluster_.device(2).CreateCq();
  Qp* ud0 = cluster_.device(0).CreateQp(QpType::kUd, scq0, rcq0);
  Qp* ud2 = cluster_.device(2).CreateQp(QpType::kUd, scq2, rcq2);

  const uint64_t src = cluster_.mem(0).Alloc(16);
  const uint64_t buf = cluster_.mem(2).Alloc(4096);
  ud2->PostRecv(RecvWr{.wr_id = 1, .local_addr = buf, .length = 4096});

  const uint32_t magic = 0xabcd1234;
  cluster_.mem(0).Write(src, &magic, 4);
  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.local_addr = src;
  wr.length = 4;
  wr.dest_node = 2;
  wr.dest_qpn = ud2->qpn();
  ASSERT_EQ(ud0->PostSend(wr), WcStatus::kSuccess);
  cluster_.sim().Run();

  Completion wc;
  ASSERT_TRUE(rcq2->Poll(&wc));
  EXPECT_EQ(wc.src_node, 0);
  uint32_t got = 0;
  cluster_.mem(2).Read(buf, &got, 4);
  EXPECT_EQ(got, magic);
}

// Real RNICs reject atomics on targets that are not 8-byte aligned; the post
// path must fail synchronously (kQpError) instead of crashing the responder.
TEST_F(VerbsTest, MisalignedAtomicTargetRejectedAtPost) {
  Cq* scq0 = cluster_.device(0).CreateCq();
  Cq* rcq0 = cluster_.device(0).CreateCq();
  Cq* scq1 = cluster_.device(1).CreateCq();
  Cq* rcq1 = cluster_.device(1).CreateCq();
  auto [qp0, qp1] = cluster_.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);
  (void)qp1;

  const uint64_t result = cluster_.mem(0).Alloc(8, 8);
  const uint64_t word = cluster_.mem(1).Alloc(16, 8);
  Mr mr = cluster_.device(1).RegisterMr(word, 16);

  SendWr wr;
  wr.opcode = Opcode::kFetchAdd;
  wr.local_addr = result;
  wr.remote_addr = word + 4;  // misaligned
  wr.rkey = mr.rkey;
  wr.swap_or_add = 1;
  EXPECT_EQ(qp0->PostSend(wr), WcStatus::kQpError);
  wr.opcode = Opcode::kCmpSwap;
  wr.compare = 0;
  EXPECT_EQ(qp0->PostSend(wr), WcStatus::kQpError);

  // A batch containing a misaligned atomic is rejected whole (all-or-nothing)
  // and reports the offending index; the aligned WR ahead of it must not be
  // silently posted.
  SendWr batch[2];
  batch[0] = wr;
  batch[0].remote_addr = word;  // aligned, valid
  batch[1] = wr;
  batch[1].remote_addr = word + 4;
  size_t failed_index = 99;
  EXPECT_EQ(qp0->PostSendBatch(batch, 2, &failed_index), WcStatus::kQpError);
  EXPECT_EQ(failed_index, 1u);
  EXPECT_EQ(qp0->send_queue_depth(), 0u);

  // The aligned equivalents still flow, and the device accounts them.
  batch[1].remote_addr = word + 8;
  ASSERT_EQ(qp0->PostSendBatch(batch, 2, &failed_index), WcStatus::kSuccess);
  cluster_.sim().Run();
  EXPECT_EQ(cluster_.device(0).stats().tx_atomics, 2u);
}

// Table 1: transport capability matrix.
TEST_F(VerbsTest, TransportCapabilityMatrix) {
  Cq* scq = cluster_.device(0).CreateCq();
  Cq* rcq = cluster_.device(0).CreateCq();
  Cq* scq1 = cluster_.device(1).CreateCq();
  Cq* rcq1 = cluster_.device(1).CreateCq();

  auto [rc, rc_peer] = cluster_.ConnectRc(0, scq, rcq, 1, scq1, rcq1);
  Qp* uc = cluster_.device(0).CreateQp(QpType::kUc, scq, rcq);
  Qp* uc_peer = cluster_.device(1).CreateQp(QpType::kUc, scq1, rcq1);
  uc->ConnectTo(1, uc_peer->qpn());
  Qp* ud = cluster_.device(0).CreateQp(QpType::kUd, scq, rcq);

  const uint64_t buf = cluster_.mem(0).Alloc(64);
  auto make = [&](Opcode op) {
    SendWr wr;
    wr.opcode = op;
    wr.local_addr = buf;
    wr.length = 8;
    wr.remote_addr = buf;
    wr.rkey = 1;
    wr.dest_node = 1;
    wr.dest_qpn = 1;
    return wr;
  };

  // RC: everything is accepted at post time.
  for (Opcode op : {Opcode::kSend, Opcode::kWrite, Opcode::kRead, Opcode::kFetchAdd,
                    Opcode::kCmpSwap}) {
    EXPECT_EQ(rc->PostSend(make(op)), WcStatus::kSuccess);
  }
  // UC: writes and sends only.
  EXPECT_EQ(uc->PostSend(make(Opcode::kWrite)), WcStatus::kSuccess);
  EXPECT_EQ(uc->PostSend(make(Opcode::kSend)), WcStatus::kSuccess);
  EXPECT_EQ(uc->PostSend(make(Opcode::kRead)), WcStatus::kUnsupportedOp);
  EXPECT_EQ(uc->PostSend(make(Opcode::kFetchAdd)), WcStatus::kUnsupportedOp);
  // UD: sends only, MTU-bounded.
  EXPECT_EQ(ud->PostSend(make(Opcode::kSend)), WcStatus::kSuccess);
  EXPECT_EQ(ud->PostSend(make(Opcode::kWrite)), WcStatus::kUnsupportedOp);
  EXPECT_EQ(ud->PostSend(make(Opcode::kRead)), WcStatus::kUnsupportedOp);
  SendWr big = make(Opcode::kSend);
  big.length = 4096;  // 4096 + 40 GRH > 4096 MTU
  EXPECT_EQ(ud->PostSend(big), WcStatus::kMtuExceeded);
}

TEST_F(VerbsTest, BadRkeyYieldsRemoteAccessError) {
  Cq* scq0 = cluster_.device(0).CreateCq();
  Cq* rcq0 = cluster_.device(0).CreateCq();
  Cq* scq1 = cluster_.device(1).CreateCq();
  Cq* rcq1 = cluster_.device(1).CreateCq();
  auto [qp0, qp1] = cluster_.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);

  const uint64_t src = cluster_.mem(0).Alloc(8);
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = src;
  wr.length = 8;
  wr.remote_addr = 0;
  wr.rkey = 9999;  // never registered
  wr.signaled = false;  // errors must still complete
  ASSERT_EQ(qp0->PostSend(wr), WcStatus::kSuccess);
  cluster_.sim().Run();

  Completion wc;
  ASSERT_TRUE(scq0->Poll(&wc));
  EXPECT_EQ(wc.status, WcStatus::kRemoteAccessError);
  EXPECT_EQ(cluster_.device(1).stats().remote_errors, 1u);
}

TEST_F(VerbsTest, OutOfBoundsWriteRejected) {
  Cq* scq0 = cluster_.device(0).CreateCq();
  Cq* rcq0 = cluster_.device(0).CreateCq();
  Cq* scq1 = cluster_.device(1).CreateCq();
  Cq* rcq1 = cluster_.device(1).CreateCq();
  auto [qp0, qp1] = cluster_.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);

  const uint64_t src = cluster_.mem(0).Alloc(64);
  const uint64_t dst = cluster_.mem(1).Alloc(16);
  Mr mr = cluster_.device(1).RegisterMr(dst, 16);

  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = src;
  wr.length = 64;  // larger than the 16-byte MR
  wr.remote_addr = dst;
  wr.rkey = mr.rkey;
  ASSERT_EQ(qp0->PostSend(wr), WcStatus::kSuccess);
  cluster_.sim().Run();

  Completion wc;
  ASSERT_TRUE(scq0->Poll(&wc));
  EXPECT_EQ(wc.status, WcStatus::kRemoteAccessError);
}

TEST_F(VerbsTest, SelectiveSignalingSuppressesSuccessCqes) {
  Cq* scq0 = cluster_.device(0).CreateCq();
  Cq* rcq0 = cluster_.device(0).CreateCq();
  Cq* scq1 = cluster_.device(1).CreateCq();
  Cq* rcq1 = cluster_.device(1).CreateCq();
  auto [qp0, qp1] = cluster_.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);

  const uint64_t src = cluster_.mem(0).Alloc(8);
  const uint64_t dst = cluster_.mem(1).Alloc(64);
  Mr mr = cluster_.device(1).RegisterMr(dst, 64);

  for (int i = 0; i < 4; ++i) {
    SendWr wr;
    wr.wr_id = static_cast<uint64_t>(i);
    wr.opcode = Opcode::kWrite;
    wr.local_addr = src;
    wr.length = 8;
    wr.remote_addr = dst;
    wr.rkey = mr.rkey;
    wr.signaled = (i == 3);  // only the last of the chain is signaled
    ASSERT_EQ(qp0->PostSend(wr), WcStatus::kSuccess);
  }
  cluster_.sim().Run();

  Completion wc;
  ASSERT_TRUE(scq0->Poll(&wc));
  EXPECT_EQ(wc.wr_id, 3u);
  EXPECT_FALSE(scq0->Poll(&wc));
  EXPECT_EQ(cluster_.device(0).stats().cqes_dma_ed, 1u);
}

TEST_F(VerbsTest, PerQpWriteOrderingPreserved) {
  Cq* scq0 = cluster_.device(0).CreateCq();
  Cq* rcq0 = cluster_.device(0).CreateCq();
  Cq* scq1 = cluster_.device(1).CreateCq();
  Cq* rcq1 = cluster_.device(1).CreateCq();
  auto [qp0, qp1] = cluster_.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);

  const uint64_t src = cluster_.mem(0).Alloc(8);
  const uint64_t dst = cluster_.mem(1).Alloc(8, 8);
  Mr mr = cluster_.device(1).RegisterMr(dst, 8);

  // 50 writes of increasing values to the same remote word: the final value
  // must be the last posted (RC preserves per-QP order).
  for (uint64_t i = 1; i <= 50; ++i) {
    cluster_.mem(0).Write(src, &i, 8);
    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.local_addr = src;
    wr.length = 8;
    wr.remote_addr = dst;
    wr.rkey = mr.rkey;
    wr.signaled = false;
    ASSERT_EQ(qp0->PostSend(wr), WcStatus::kSuccess);
    cluster_.sim().Run();  // payload snapshot happens at NIC DMA time
  }
  uint64_t final_val = 0;
  cluster_.mem(1).Read(dst, &final_val, 8);
  EXPECT_EQ(final_val, 50u);
}

TEST_F(VerbsTest, UdNoRecvPostedDropsSilently) {
  Cq* scq0 = cluster_.device(0).CreateCq();
  Cq* rcq0 = cluster_.device(0).CreateCq();
  Cq* scq1 = cluster_.device(1).CreateCq();
  Cq* rcq1 = cluster_.device(1).CreateCq();
  Qp* ud0 = cluster_.device(0).CreateQp(QpType::kUd, scq0, rcq0);
  Qp* ud1 = cluster_.device(1).CreateQp(QpType::kUd, scq1, rcq1);

  const uint64_t src = cluster_.mem(0).Alloc(8);
  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.local_addr = src;
  wr.length = 8;
  wr.dest_node = 1;
  wr.dest_qpn = ud1->qpn();
  ASSERT_EQ(ud0->PostSend(wr), WcStatus::kSuccess);
  cluster_.sim().Run();

  // Sender still gets a success completion (fire and forget)...
  Completion wc;
  ASSERT_TRUE(scq0->Poll(&wc));
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
  // ...but the datagram is gone and counted.
  EXPECT_EQ(cluster_.device(1).stats().ud_drops, 1u);
  EXPECT_FALSE(rcq1->Poll(&wc));
}

TEST_F(VerbsTest, WriteWithImmConsumesRecvAndCarriesImm) {
  Cq* scq0 = cluster_.device(0).CreateCq();
  Cq* rcq0 = cluster_.device(0).CreateCq();
  Cq* scq1 = cluster_.device(1).CreateCq();
  Cq* rcq1 = cluster_.device(1).CreateCq();
  auto [qp0, qp1] = cluster_.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);

  const uint64_t src = cluster_.mem(0).Alloc(8);
  const uint64_t dst = cluster_.mem(1).Alloc(8);
  Mr mr = cluster_.device(1).RegisterMr(dst, 8);
  qp1->PostRecv(RecvWr{.wr_id = 5, .local_addr = 0, .length = 0});

  SendWr wr;
  wr.opcode = Opcode::kWriteImm;
  wr.local_addr = src;
  wr.length = 8;
  wr.remote_addr = dst;
  wr.rkey = mr.rkey;
  wr.imm = 0xfeed;
  ASSERT_EQ(qp0->PostSend(wr), WcStatus::kSuccess);
  cluster_.sim().Run();

  Completion wc;
  ASSERT_TRUE(rcq1->Poll(&wc));
  EXPECT_EQ(wc.opcode, WcOpcode::kRecvImm);
  EXPECT_TRUE(wc.has_imm);
  EXPECT_EQ(wc.imm, 0xfeedu);
  EXPECT_EQ(wc.wr_id, 5u);
  EXPECT_EQ(qp1->recv_queue_depth(), 0u);
}

TEST_F(VerbsTest, QpCacheThrashesBeyondCapacity) {
  // Direct cache behaviour (device-level effects are covered by fig2 bench).
  rnic::QpCache cache(4);
  for (uint32_t q = 0; q < 4; ++q) {
    EXPECT_FALSE(cache.Touch(q));  // cold misses
  }
  for (uint32_t q = 0; q < 4; ++q) {
    EXPECT_TRUE(cache.Touch(q));  // all hot
  }
  EXPECT_FALSE(cache.Touch(99));  // evicts LRU (qp 0)
  EXPECT_FALSE(cache.Touch(0));   // qp 0 gone
  EXPECT_TRUE(cache.Touch(99));
  EXPECT_GT(cache.MissRatio(), 0.0);
}

TEST_F(VerbsTest, QpCacheInvalidateRemovesEntry) {
  rnic::QpCache cache(4);
  cache.Touch(1);
  EXPECT_TRUE(cache.Touch(1));
  cache.Invalidate(1);
  EXPECT_FALSE(cache.Touch(1));
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(VerbsTest, LatencyIsInMicrosecondRange) {
  // A small RC write should land in single-digit microseconds — the regime
  // real RDMA hardware operates in — not nanoseconds or milliseconds.
  Cq* scq0 = cluster_.device(0).CreateCq();
  Cq* rcq0 = cluster_.device(0).CreateCq();
  Cq* scq1 = cluster_.device(1).CreateCq();
  Cq* rcq1 = cluster_.device(1).CreateCq();
  auto [qp0, qp1] = cluster_.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);

  const uint64_t src = cluster_.mem(0).Alloc(64);
  const uint64_t dst = cluster_.mem(1).Alloc(64);
  Mr mr = cluster_.device(1).RegisterMr(dst, 64);

  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = src;
  wr.length = 64;
  wr.remote_addr = dst;
  wr.rkey = mr.rkey;
  ASSERT_EQ(qp0->PostSend(wr), WcStatus::kSuccess);
  cluster_.sim().Run();
  EXPECT_GT(cluster_.sim().Now(), 500);        // > 0.5 us
  EXPECT_LT(cluster_.sim().Now(), 20 * 1000);  // < 20 us
}

TEST_F(VerbsTest, BandwidthBoundTransferApproachesLineRate) {
  // 100 x 1 MiB writes ≈ 104 MB; at 100 Gbps that's ≈ 8.4 ms on the wire.
  Cq* scq0 = cluster_.device(0).CreateCq();
  Cq* rcq0 = cluster_.device(0).CreateCq();
  Cq* scq1 = cluster_.device(1).CreateCq();
  Cq* rcq1 = cluster_.device(1).CreateCq();
  auto [qp0, qp1] = cluster_.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);

  const uint64_t chunk = 1 << 20;
  const uint64_t src = cluster_.mem(0).Alloc(chunk);
  const uint64_t dst = cluster_.mem(1).Alloc(chunk);
  Mr mr = cluster_.device(1).RegisterMr(dst, chunk);

  for (int i = 0; i < 100; ++i) {
    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.local_addr = src;
    wr.length = chunk;
    wr.remote_addr = dst;
    wr.rkey = mr.rkey;
    wr.signaled = (i == 99);
    ASSERT_EQ(qp0->PostSend(wr), WcStatus::kSuccess);
  }
  cluster_.sim().Run();
  const double seconds = static_cast<double>(cluster_.sim().Now()) / 1e9;
  const double gbps = 100.0 * chunk * 8.0 / seconds / 1e9;
  EXPECT_GT(gbps, 70.0);   // reasonably close to line rate
  EXPECT_LT(gbps, 100.0);  // but never above it
}

}  // namespace
}  // namespace flock::verbs
