// Verifies the "allocation-free hot path" property end to end: once a Flock
// client/server pair reaches steady state, completing RPCs with payloads at
// or below the inline-buffer threshold (128 B) performs ZERO heap
// allocations — per-RPC state comes from Pool<T>, coroutine frames from the
// thread-local FramePool, payload bytes stay in SmallBuf inline storage, and
// the simulator's calendar queue recycles its bucket vectors.
//
// The check instruments the global allocator: every operator new in the
// process bumps a counter, and the counter must not move across a measured
// window of several thousand RPCs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>

#include <new>
#include <vector>

#include "src/flock/flock.h"

namespace {

uint64_t g_allocs = 0;  // simulation is single-threaded; plain counter is fine

}  // namespace

void* operator new(std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace flock {
namespace {

sim::Proc EchoWorker(Connection* conn, FlockThread* thread, uint64_t* done) {
  std::vector<uint8_t> payload(64, 1);
  std::vector<uint8_t> resp;  // hoisted: capacity is reused across calls
  for (;;) {
    co_await conn->Call(*thread, 1, payload.data(), 64, &resp);
    (*done)++;
  }
}

TEST(AllocTest, SteadyStateRpcsAreAllocationFree) {
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 34, .cost = {}});
  FlockConfig config;
  FlockRuntime server(cluster, 0, config);
  server.RegisterHandler(1, [](const uint8_t*, uint32_t, uint8_t* resp,
                               uint32_t, Nanos* cpu) -> uint32_t {
    *cpu = 50;
    std::memset(resp, 1, 64);
    return 64;
  });
  server.StartServer(4);
  FlockRuntime client(cluster, 1, config);
  client.StartClient();
  Connection* conn = client.Connect(server, 4);
  uint64_t done = 0;
  for (int t = 0; t < 8; ++t) {
    cluster.sim().Spawn(EchoWorker(conn, client.CreateThread(t), &done));
  }

  // Warm-up: pools grow their slabs, rings and calendar buckets reach their
  // steady-state capacities, the scheduler settles its assignment.
  cluster.sim().RunFor(2 * kMillisecond);
  ASSERT_GT(done, 0u);

  const uint64_t allocs_before = g_allocs;
  const uint64_t done_before = done;
  const uint64_t rpc_reused_before = client.rpc_pool().reused();

  cluster.sim().RunFor(2 * kMillisecond);

  const uint64_t rpcs = done - done_before;
  ASSERT_GT(rpcs, 1000u) << "window too small to be meaningful";
  // Every per-RPC object came from a pool free list...
  EXPECT_GE(client.rpc_pool().reused() - rpc_reused_before, rpcs);
  // ...and the process performed no heap allocation at all.
  EXPECT_EQ(g_allocs - allocs_before, 0u)
      << "heap allocations on the steady-state RPC path: "
      << (g_allocs - allocs_before) << " over " << rpcs << " RPCs";
}

sim::Proc ExtentWorker(Connection* conn, FlockThread* thread,
                       const std::vector<uint8_t>* extent,
                       std::vector<uint8_t>* resp, uint64_t* done) {
  const uint32_t len = static_cast<uint32_t>(extent->size());
  for (;;) {
    uint32_t resp_len = 0;
    co_await conn->Call(*thread, 1, PayloadRef(extent->data(), len),
                        resp->data(), len, &resp_len);
    (*done)++;
  }
}

// Steady-state extent transfers are allocation-free too (DESIGN.md §16): the
// request gathers zero-copy from the caller's buffer, chunk PendingSends
// come from the pool, the server's reassembly buffers are grown once and
// reused, and the response lands directly in the caller's buffer.
TEST(AllocTest, SteadyStateExtentsAreAllocationFree) {
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 34, .cost = {}});
  FlockConfig config;
  config.max_payload = 1024 * 1024;
  config.segment_threshold = 8 * 1024;
  FlockRuntime server(cluster, 0, config);
  server.RegisterHandler(1, [](const uint8_t* req, uint32_t len, uint8_t* resp,
                               uint32_t, Nanos* cpu) -> uint32_t {
    *cpu = 500;
    std::memcpy(resp, req, len);
    return len;
  });
  server.StartServer(4);
  FlockRuntime client(cluster, 1, config);
  client.StartClient();
  Connection* conn = client.Connect(server, 4);

  constexpr uint32_t kExtent = 256 * 1024;
  std::vector<uint8_t> extent(kExtent, 7);
  // Response buffers hoisted outside the workers: caller-owned, reused.
  std::vector<std::vector<uint8_t>> resps(2, std::vector<uint8_t>(kExtent));
  uint64_t done = 0;
  for (int t = 0; t < 2; ++t) {
    cluster.sim().Spawn(
        ExtentWorker(conn, client.CreateThread(t), &extent, &resps[t], &done));
  }

  // Warm-up: reassembly buffers grow to the extent size, pools fill.
  cluster.sim().RunFor(4 * kMillisecond);
  ASSERT_GT(done, 0u);

  const uint64_t allocs_before = g_allocs;
  const uint64_t done_before = done;

  cluster.sim().RunFor(4 * kMillisecond);

  const uint64_t extents = done - done_before;
  ASSERT_GT(extents, 4u) << "window too small to be meaningful";
  EXPECT_EQ(g_allocs - allocs_before, 0u)
      << "heap allocations on the steady-state extent path: "
      << (g_allocs - allocs_before) << " over " << extents << " extents";
}

}  // namespace
}  // namespace flock
