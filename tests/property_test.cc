// Parameterized property tests: invariants swept across configuration spaces
// with TEST_P / INSTANTIATE_TEST_SUITE_P.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <tuple>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rand.h"
#include "src/ctrl/control_plane.h"
#include "src/ctrl/wire.h"
#include "src/flock/flock.h"
#include "src/flock/ring.h"
#include "src/flock/segment.h"
#include "src/flock/wire.h"
#include "src/kv/kvstore.h"
#include "src/kv/remote_kv.h"
#include "src/rnic/qp_cache.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/tenant/tenant.h"

namespace flock {
namespace {

// ---------------------------------------------------------------------------
// Ring protocol: for any (ring size, payload size, batch pattern), every
// produced request is consumed exactly once, in order, bit-identical.
// ---------------------------------------------------------------------------

class RingProperty
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, uint32_t>> {};

TEST_P(RingProperty, LosslessInOrderDelivery) {
  const auto [ring_bytes, payload, max_batch] = GetParam();
  std::vector<uint8_t> ring(ring_bytes, 0);
  RingProducer producer(ring_bytes);
  RingConsumer consumer(ring.data(), ring_bytes);
  Rng rng(ring_bytes * 31 + payload * 7 + max_batch);

  uint32_t next_seq = 0;
  uint32_t verified = 0;
  uint64_t canary = 1;
  for (int round = 0; round < 3000; ++round) {
    const uint32_t n = 1 + static_cast<uint32_t>(rng.NextBelow(max_batch));
    const uint32_t msg_len = wire::MessageBytes(n, n * payload);
    RingProducer::Reservation resv;
    if (msg_len <= ring_bytes / 2 && producer.Reserve(msg_len, &resv)) {
      if (resv.wrapped) {
        wire::EncodeWrapMarker(ring.data() + resv.marker_offset, canary++);
      }
      wire::MessageEncoder enc(ring.data() + resv.offset, msg_len, canary++);
      std::vector<uint8_t> data(payload);
      for (uint32_t i = 0; i < n; ++i) {
        for (auto& b : data) {
          b = static_cast<uint8_t>(next_seq + i);
        }
        enc.Add(wire::ReqMeta{payload, 0, 0, next_seq + i}, data.data());
      }
      ASSERT_EQ(enc.Seal(consumer.consumed_report(), 0), msg_len);
      next_seq += n;
    }
    // Consume a random amount (possibly nothing) to vary producer/consumer lag.
    int to_consume = static_cast<int>(rng.NextBelow(3));
    wire::MsgHeader header;
    while (to_consume-- > 0 && consumer.Probe(&header) == wire::ProbeResult::kMessage) {
      std::vector<wire::ReqView> views(header.num_reqs);
      ASSERT_TRUE(wire::DecodeRequests(consumer.MessagePtr(), header, views.data()));
      for (const auto& view : views) {
        ASSERT_EQ(view.meta.seq, verified);
        for (uint32_t b = 0; b < payload; ++b) {
          ASSERT_EQ(view.data[b], static_cast<uint8_t>(verified));
        }
        ++verified;
      }
      consumer.Consume(header);
      producer.OnHeadUpdate(consumer.consumed_report());
    }
  }
  // Drain.
  wire::MsgHeader header;
  while (consumer.Probe(&header) == wire::ProbeResult::kMessage) {
    std::vector<wire::ReqView> views(header.num_reqs);
    ASSERT_TRUE(wire::DecodeRequests(consumer.MessagePtr(), header, views.data()));
    verified += header.num_reqs;
    consumer.Consume(header);
  }
  EXPECT_EQ(verified, next_seq);
  EXPECT_GT(verified, 1000u);
}

INSTANTIATE_TEST_SUITE_P(
    Rings, RingProperty,
    ::testing::Combine(::testing::Values(4096u, 65536u, 262144u),   // ring size
                       ::testing::Values(0u, 16u, 64u, 512u),       // payload
                       ::testing::Values(1u, 4u, 16u)));            // batch

// ---------------------------------------------------------------------------
// Wire codec under corruption: whatever bytes a remote peer scribbles into
// the ring, ProbeMessage/DecodeRequests either reject the message or yield
// request views that stay strictly inside the receive buffer. This is the
// fuzz companion to the overflow regressions in wire_test (a 0xFFFFFFF0
// data_len must not wrap the cursor past the buffer).
// ---------------------------------------------------------------------------

class WireFuzzProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireFuzzProperty, CorruptedMessagesNeverEscapeBounds) {
  constexpr uint32_t kCap = 4096;
  Rng rng(GetParam());
  std::vector<uint8_t> buf(kCap, 0);
  std::vector<uint8_t> payload(256, 0xAB);
  uint64_t canary = 1;
  for (int round = 0; round < 4000; ++round) {
    // Start from a valid coalesced message so corruption hits live fields.
    const uint32_t n = 1 + static_cast<uint32_t>(rng.NextBelow(8));
    const uint32_t per_req = static_cast<uint32_t>(rng.NextBelow(256));
    const uint32_t msg_len = wire::MessageBytes(n, n * per_req);
    ASSERT_LE(msg_len, kCap);
    // Half the rounds start from a segmented message (chunk-train metas and
    // the kFlagSegment header flag), so corruption also hits mark bits and
    // the continuation flag.
    const bool segmented = rng.NextBelow(2) == 0;
    wire::MessageEncoder enc(buf.data(), kCap, canary++);
    for (uint32_t i = 0; i < n; ++i) {
      const auto mark = segmented ? static_cast<wire::SegMark>(rng.NextBelow(4))
                                  : wire::SegMark::kNone;
      enc.Add(wire::ReqMeta{wire::PackSegLen(mark, per_req), 0, 0, i},
              payload.data());
    }
    ASSERT_EQ(enc.Seal(0, 0, segmented ? wire::kFlagSegment : uint16_t{0}),
              msg_len);

    const uint32_t flips = 1 + static_cast<uint32_t>(rng.NextBelow(8));
    for (uint32_t f = 0; f < flips; ++f) {
      buf[rng.NextBelow(msg_len)] ^=
          static_cast<uint8_t>(1 + rng.NextBelow(255));
    }

    wire::MsgHeader header;
    if (wire::ProbeMessage(buf.data(), kCap, &header) ==
        wire::ProbeResult::kMessage) {
      ASSERT_GE(header.total_len, wire::kHeaderBytes + wire::kCanaryBytes);
      ASSERT_LE(header.total_len, kCap);
      std::vector<wire::ReqView> views(header.num_reqs);
      if (wire::DecodeRequests(buf.data(), header, views.data())) {
        for (uint32_t i = 0; i < header.num_reqs; ++i) {
          // On-wire bytes are the masked length: mark bits carry no data.
          ASSERT_GE(views[i].data, buf.data());
          ASSERT_LE(views[i].data + wire::SegLen(views[i].meta.data_len),
                    buf.data() + kCap);
        }
      }
    }
    std::memset(buf.data(), 0, msg_len);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzProperty,
                         ::testing::Values(uint64_t{1}, uint64_t{7},
                                           uint64_t{42}, uint64_t{1337},
                                           uint64_t{0xDEADBEEF}));

// ---------------------------------------------------------------------------
// Reassembly under chunk-train interleaving and garbage (DESIGN.md §16):
// whatever arrives — torn trains, duplicates, reordered continuations,
// orphans — the pool never crashes, never grows past its bound, and a final
// reclaim always drains every partial.
// ---------------------------------------------------------------------------

class SegmentFuzzProperty : public ::testing::TestWithParam<uint64_t> {};

// Well-formed trains on distinct keys, chunks randomly interleaved across
// keys but in-order within each (the per-lane FIFO guarantee): every train
// reassembles to exactly its payload.
TEST_P(SegmentFuzzProperty, InterleavedTrainsReassembleCorrectly) {
  Rng rng(GetParam());
  internal::ReassemblyPool pool;
  constexpr uint32_t kMaxBytes = 64 * 1024;
  pool.Init(8, kMaxBytes);

  struct Train {
    internal::ReassemblyKey key;
    std::vector<uint8_t> bytes;
    uint32_t offset = 0;  // next byte to send
    bool done = false;
  };
  int lanes[2];  // distinct stable addresses standing in for lane identities
  for (int round = 0; round < 50; ++round) {
    std::vector<Train> trains(1 + rng.NextBelow(6));
    for (size_t t = 0; t < trains.size(); ++t) {
      trains[t].key = {&lanes[t % 2], static_cast<uint16_t>(t), 100 + round};
      trains[t].bytes.resize(2 + rng.NextBelow(8000));
      for (size_t i = 0; i < trains[t].bytes.size(); ++i) {
        trains[t].bytes[i] = static_cast<uint8_t>(rng.NextBelow(256));
      }
    }
    size_t live = trains.size();
    Nanos now = 0;
    while (live > 0) {
      Train& train = trains[rng.NextBelow(trains.size())];
      if (train.done) {
        continue;
      }
      const uint32_t total = static_cast<uint32_t>(train.bytes.size());
      const uint32_t remain = total - train.offset;
      uint32_t len =
          std::min(remain, 1 + static_cast<uint32_t>(rng.NextBelow(2048)));
      if (train.offset == 0 && len == total) {
        len = total - 1;  // a segmented train always spans >= 2 chunks
      }
      const auto mark = train.offset == 0   ? wire::SegMark::kFirst
                        : len == remain ? wire::SegMark::kLast
                                        : wire::SegMark::kMiddle;
      uint32_t complete_len = 0;
      const uint8_t* out =
          pool.Feed(train.key, mark, train.bytes.data() + train.offset, len,
                    ++now, &complete_len);
      train.offset += len;
      if (train.offset == total) {
        ASSERT_NE(out, nullptr);
        ASSERT_EQ(complete_len, total);
        ASSERT_EQ(std::memcmp(out, train.bytes.data(), total), 0);
        train.done = true;
        --live;
      }
    }
    ASSERT_EQ(pool.in_use(), 0u);
  }
}

// Chunk soup: random marks, keys, lengths and reclaim points. Invariants:
// the pool never exceeds its entry bound, completed payloads never exceed
// max_bytes, the counters account for every chunk fed, and a final timeout-0
// reclaim leaves nothing live.
TEST_P(SegmentFuzzProperty, TornChunkSoupNeverCrashesOrLeaks) {
  Rng rng(GetParam() * 31 + 5);
  internal::ReassemblyPool pool;
  constexpr uint32_t kEntries = 4;
  constexpr uint32_t kMaxBytes = 4096;
  pool.Init(kEntries, kMaxBytes);
  std::vector<uint8_t> junk(2048, 0x5A);
  int lanes[2];
  Nanos now = 0;

  for (int round = 0; round < 20000; ++round) {
    now += rng.NextBelow(100);
    if (rng.NextBelow(64) == 0) {
      pool.Reclaim(now, rng.NextBelow(2000));
    }
    const internal::ReassemblyKey key{&lanes[rng.NextBelow(2)],
                                      static_cast<uint16_t>(rng.NextBelow(3)),
                                      static_cast<uint32_t>(rng.NextBelow(8))};
    // Marks skewed toward continuations so trains tear often; kNone (a
    // corrupt continuation flag at decode time) is fed too.
    const auto mark = static_cast<wire::SegMark>(rng.NextBelow(5) % 4);
    const uint32_t len = static_cast<uint32_t>(rng.NextBelow(junk.size() + 1));
    uint32_t complete_len = 0;
    const uint8_t* out = pool.Feed(key, mark, junk.data(), len, now, &complete_len);
    if (out != nullptr) {
      ASSERT_LE(complete_len, kMaxBytes);
    }
    ASSERT_LE(pool.in_use(), kEntries);
  }
  ASSERT_EQ(pool.chunks(), 20000u);
  // Every chunk was either absorbed into a train or rejected with a reason.
  ASSERT_GT(pool.completed() + pool.orphans() + pool.dropped_no_entry() +
                pool.dropped_oversize(),
            0u);
  pool.Reclaim(now + 1, 0);
  ASSERT_EQ(pool.in_use(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentFuzzProperty,
                         ::testing::Values(uint64_t{3}, uint64_t{17},
                                           uint64_t{99}, uint64_t{4242}));

// ---------------------------------------------------------------------------
// FIFO server: total busy time equals the sum of service demands, and
// completion order equals arrival order, for any arrival pattern.
// ---------------------------------------------------------------------------

class FifoServerProperty : public ::testing::TestWithParam<int> {};

TEST_P(FifoServerProperty, ConservationAndOrder) {
  const int jobs = GetParam();
  sim::Simulator simulator;
  sim::FifoServer server(simulator);
  Rng rng(static_cast<uint64_t>(jobs));
  Nanos total_demand = 0;
  std::vector<int> completion_order;

  auto client = [](sim::Simulator& sim, sim::FifoServer& srv, Nanos arrive, Nanos dur,
                   int id, std::vector<int>* order) -> sim::Proc {
    co_await sim::Delay(sim, arrive);
    co_await srv.Serve(dur);
    order->push_back(id);
  };
  std::vector<Nanos> arrivals;
  for (int i = 0; i < jobs; ++i) {
    arrivals.push_back(static_cast<Nanos>(rng.NextBelow(1000)));
  }
  std::sort(arrivals.begin(), arrivals.end());
  for (int i = 0; i < jobs; ++i) {
    const Nanos duration = 1 + static_cast<Nanos>(rng.NextBelow(50));
    total_demand += duration;
    simulator.Spawn(client(simulator, server, arrivals[static_cast<size_t>(i)],
                           duration, i, &completion_order));
  }
  simulator.Run();
  EXPECT_EQ(server.busy_time(), total_demand);
  // Jobs arriving at distinct times complete in arrival order.
  ASSERT_EQ(completion_order.size(), static_cast<size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    if (i > 0 && arrivals[static_cast<size_t>(i)] != arrivals[static_cast<size_t>(i - 1)]) {
      EXPECT_GT(completion_order[static_cast<size_t>(i)],
                completion_order[static_cast<size_t>(i - 1)] - jobs);
    }
  }
  EXPECT_GE(simulator.Now(), total_demand / jobs);
}

INSTANTIATE_TEST_SUITE_P(Fifo, FifoServerProperty, ::testing::Values(1, 7, 64, 256));

// ---------------------------------------------------------------------------
// QP cache: for both policies and any capacity, size never exceeds capacity,
// and a working set within capacity always hits after warmup.
// ---------------------------------------------------------------------------

class QpCacheProperty
    : public ::testing::TestWithParam<std::tuple<uint32_t, rnic::QpCache::Policy>> {};

TEST_P(QpCacheProperty, CapacityAndResidency) {
  const auto [capacity, policy] = GetParam();
  rnic::QpCache cache(capacity, policy);
  // Working set exactly at capacity: after one cold pass, everything hits.
  for (uint32_t q = 0; q < capacity; ++q) {
    cache.Touch(q);
  }
  cache.ResetStats();
  for (int round = 0; round < 10; ++round) {
    for (uint32_t q = 0; q < capacity; ++q) {
      EXPECT_TRUE(cache.Touch(q));
    }
  }
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_LE(cache.size(), capacity);

  // Oversubscribed working set: misses must appear; size stays capped.
  cache.ResetStats();
  for (int round = 0; round < 10; ++round) {
    for (uint32_t q = 0; q < capacity * 2; ++q) {
      cache.Touch(q);
    }
  }
  EXPECT_GT(cache.misses(), 0u);
  EXPECT_LE(cache.size(), capacity);
}

INSTANTIATE_TEST_SUITE_P(
    Caches, QpCacheProperty,
    ::testing::Combine(::testing::Values(4u, 64u, 768u),
                       ::testing::Values(rnic::QpCache::Policy::kLru,
                                         rnic::QpCache::Policy::kRandom)));

// ---------------------------------------------------------------------------
// Histogram: quantiles are within bucket resolution for any scale.
// ---------------------------------------------------------------------------

class HistogramProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(HistogramProperty, QuantileAccuracy) {
  const int64_t scale = GetParam();
  Histogram histogram;
  for (int64_t i = 1; i <= 10000; ++i) {
    histogram.Record(i * scale);
  }
  const double rel = 0.04;  // bucket resolution + interpolation slack
  EXPECT_NEAR(static_cast<double>(histogram.Median()),
              static_cast<double>(5000 * scale), static_cast<double>(5000 * scale) * rel);
  EXPECT_NEAR(static_cast<double>(histogram.P99()), static_cast<double>(9900 * scale),
              static_cast<double>(9900 * scale) * rel);
  EXPECT_EQ(histogram.count(), 10000u);
  EXPECT_EQ(histogram.min(), scale);
  EXPECT_EQ(histogram.max(), 10000 * scale);
}

INSTANTIATE_TEST_SUITE_P(Scales, HistogramProperty,
                         ::testing::Values(int64_t{1}, int64_t{13}, int64_t{1000},
                                           int64_t{1000000}));

// ---------------------------------------------------------------------------
// KV store: OCC version words only ever move forward and the lock bit is
// never leaked, across randomized operation mixes and store sizes.
// ---------------------------------------------------------------------------

class KvProperty : public ::testing::TestWithParam<std::tuple<size_t, uint32_t>> {};

TEST_P(KvProperty, VersionMonotonicityAndLockHygiene) {
  const auto [keys, value_size] = GetParam();
  fabric::MemorySpace mem;
  kv::KvStore store(mem, keys, value_size);
  std::vector<uint8_t> value(value_size, 1);
  std::vector<uint64_t> last_version(keys, 0);
  for (uint64_t k = 0; k < keys; ++k) {
    ASSERT_TRUE(store.Insert(k, value.data()));
    ASSERT_TRUE(store.PeekVersion(k, &last_version[k]));
  }
  Rng rng(keys * 131 + value_size);
  for (int op = 0; op < 20000; ++op) {
    const uint64_t k = rng.NextBelow(keys);
    const uint64_t roll = rng.NextBelow(3);
    if (roll == 0) {
      uint64_t version = 0;
      if (store.Get(k, value.data(), &version, nullptr)) {
        EXPECT_GE(version, last_version[k]);
        EXPECT_EQ(version & kv::kLockBit, 0u);
      }
    } else if (roll == 1) {
      if (store.TryLock(k, value.data(), nullptr)) {
        ASSERT_TRUE(store.UpdateAndUnlock(k, value.data()));
      }
    } else {
      if (store.TryLock(k, nullptr, nullptr)) {
        ASSERT_TRUE(store.Unlock(k));  // abort path: version unchanged
      }
    }
    uint64_t version = 0;
    ASSERT_TRUE(store.PeekVersion(k, &version));
    EXPECT_GE(version & ~kv::kLockBit, last_version[k] & ~kv::kLockBit);
    last_version[k] = version & ~kv::kLockBit;
    EXPECT_EQ(version & kv::kLockBit, 0u) << "lock leaked";
  }
}

INSTANTIATE_TEST_SUITE_P(Stores, KvProperty,
                         ::testing::Combine(::testing::Values(size_t{16}, size_t{1024}),
                                            ::testing::Values(8u, 40u, 128u)));

// ---------------------------------------------------------------------------
// One-sided seqlock protocol under randomized interleavings: a server-side
// writer locks, scribbles a detectable mid-install pattern, dwells a random
// time, then commits or aborts; concurrent one-sided readers with random
// retry budgets must never accept a torn value, a locked version, or a
// version that moves backwards — for any seed.
// ---------------------------------------------------------------------------

class RemoteKvFuzzProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RemoteKvFuzzProperty, RandomInterleavingsNeverLeakTornValues) {
  constexpr int kKeys = 8;
  constexpr uint32_t kValueSize = 16;
  Rng rng(GetParam());
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 8});
  kv::KvStore store(cluster.mem(0), 64, kValueSize);
  FlockConfig cfg;
  FlockRuntime server(cluster, 0, cfg);
  server.StartServer(2);
  FlockRuntime client(cluster, 1, cfg);
  client.StartClient();
  Connection* conn = client.Connect(server, 2);
  FlockThread* thread = client.CreateThread(0);

  std::vector<uint64_t> records(kKeys, 0);
  for (uint64_t k = 0; k < kKeys; ++k) {
    char value[kValueSize];
    std::memset(value, static_cast<int>(k + 1), sizeof(value));
    ASSERT_TRUE(store.Insert(k, value));
    ASSERT_TRUE(store.Get(k, nullptr, nullptr, &records[k]));
  }
  kv::OneSidedReader reader(*conn, cluster.mem(1), kValueSize);
  for (const auto& span : store.spans()) {
    RemoteMr mr = conn->AttachMreg(span.addr, span.length);
    for (uint64_t k = 0; k < kKeys; ++k) {
      if (records[k] >= mr.addr &&
          records[k] + 8 + kValueSize <= mr.addr + mr.length) {
        reader.LearnAddr(k, records[k], mr);
      }
    }
  }

  // Writer: random key, random dwell under the lock (with 0xEE garbage in
  // the value bytes), then commit a fresh pattern or abort (restoring the
  // pre-lock bytes, as a real aborting writer that never installed would).
  auto writer = [&]() -> sim::Proc {
    for (int round = 0; round < 150; ++round) {
      co_await sim::Delay(cluster.sim(),
                          static_cast<Nanos>(rng.NextBelow(8000)));
      const uint64_t k = rng.NextBelow(kKeys);
      char before[kValueSize];
      if (!store.TryLock(k, before, nullptr)) {
        continue;
      }
      char garbage[kValueSize];
      std::memset(garbage, 0xEE, sizeof(garbage));
      cluster.mem(0).Write(records[k] + 8, garbage, kValueSize);
      co_await sim::Delay(cluster.sim(),
                          static_cast<Nanos>(rng.NextBelow(4000)));
      if (rng.NextBelow(3) == 0) {
        cluster.mem(0).Write(records[k] + 8, before, kValueSize);
        FLOCK_CHECK(store.Unlock(k));
      } else {
        char next[kValueSize];
        std::memset(next, 1 + static_cast<int>(rng.NextBelow(0x7F)),
                    sizeof(next));
        FLOCK_CHECK(store.UpdateAndUnlock(k, next));
      }
    }
  };

  int accepted = 0;
  std::vector<uint64_t> last_version(kKeys, 0);
  auto reads = [&]() -> sim::Co<void> {
    for (int i = 0; i < 500; ++i) {
      const uint64_t k = rng.NextBelow(kKeys);
      const int budget = static_cast<int>(rng.NextBelow(4));
      char out[kValueSize] = {};
      uint64_t version = 0;
      const auto outcome = co_await reader.Get(*thread, k, out, &version, budget);
      if (outcome != kv::OneSidedReader::Outcome::kOk) {
        continue;
      }
      EXPECT_EQ(version & kv::kLockBit, 0u);
      EXPECT_GE(version, last_version[k]) << "version went backwards";
      last_version[k] = version;
      for (uint32_t b = 1; b < kValueSize; ++b) {
        EXPECT_EQ(out[b], out[0]) << "torn value escaped seqlock validation";
      }
      EXPECT_NE(static_cast<uint8_t>(out[0]), 0xEE)
          << "mid-install garbage escaped seqlock validation";
      ++accepted;
    }
  };
  cluster.sim().Spawn(writer());
  cluster.sim().Spawn(sim::RunClosure(reads));
  cluster.sim().RunFor(100 * kMillisecond);
  EXPECT_GT(accepted, 200);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RemoteKvFuzzProperty,
                         ::testing::Values(uint64_t{1}, uint64_t{7},
                                           uint64_t{42}, uint64_t{1337},
                                           uint64_t{0xDEADBEEF}));

// ---------------------------------------------------------------------------
// Control-plane handshake codec under hostile input: starting from a valid
// message of every type, arbitrary truncation and bit flips must either be
// rejected by the framing (magic/version/length/checksum) or decode to values
// that respect the codec's own bounds (lane counts, ring sizes). Never crash,
// never read past the buffer.
// ---------------------------------------------------------------------------

class CtrlFuzzProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CtrlFuzzProperty, MalformedHandshakesAreRejectedNotCrashed) {
  namespace cw = ctrl::wire;
  Rng rng(GetParam());
  uint8_t buf[cw::kMaxMessageBytes];
  for (int round = 0; round < 4000; ++round) {
    // Build a valid message of a random handshake type.
    uint32_t len = 0;
    const uint64_t nonce = rng.Next();
    switch (rng.NextBelow(7)) {
      case 0: {
        cw::ConnectRequest req;
        req.client_node = static_cast<int32_t>(rng.NextBelow(16));
        req.num_lanes = 1 + static_cast<uint32_t>(rng.NextBelow(cw::kMaxLanesPerMsg));
        req.ring_bytes = 1u << rng.NextInRange(6, 18);
        for (uint32_t i = 0; i < req.num_lanes; ++i) {
          req.lanes[i].qpn = static_cast<uint32_t>(rng.Next());
          req.lanes[i].resp_ring_addr = rng.Next();
        }
        len = cw::EncodeMessage(buf, sizeof(buf), cw::MsgType::kConnectRequest,
                                nonce, &req, cw::ConnectRequestBytes(req.num_lanes));
        break;
      }
      case 1: {
        cw::ConnectAccept acc;
        acc.conn_id = static_cast<uint32_t>(rng.Next());
        acc.num_lanes = 1 + static_cast<uint32_t>(rng.NextBelow(cw::kMaxLanesPerMsg));
        len = cw::EncodeMessage(buf, sizeof(buf), cw::MsgType::kConnectAccept,
                                nonce, &acc, cw::ConnectAcceptBytes(acc.num_lanes));
        break;
      }
      case 2: {
        cw::ReconnectRequest req;
        req.lane_index = static_cast<uint32_t>(rng.NextBelow(cw::kMaxLanesPerMsg));
        len = cw::EncodeMessage(buf, sizeof(buf), cw::MsgType::kReconnectRequest,
                                nonce, &req, sizeof(req));
        break;
      }
      case 3: {
        cw::ReconnectAccept acc;
        acc.grant_cumulative = static_cast<uint32_t>(rng.Next());
        len = cw::EncodeMessage(buf, sizeof(buf), cw::MsgType::kReconnectAccept,
                                nonce, &acc, sizeof(acc));
        break;
      }
      case 4: {
        cw::AddLaneRequest req;
        req.lane_index = static_cast<uint32_t>(rng.NextBelow(cw::kMaxLanesPerMsg));
        req.ring_bytes = 1u << rng.NextInRange(6, 18);
        len = cw::EncodeMessage(buf, sizeof(buf), cw::MsgType::kAddLaneRequest,
                                nonce, &req, sizeof(req));
        break;
      }
      case 5: {
        cw::RetireLaneRequest req;
        req.lane_index = static_cast<uint32_t>(rng.Next());
        len = cw::EncodeMessage(buf, sizeof(buf), cw::MsgType::kRetireLaneRequest,
                                nonce, &req, sizeof(req));
        break;
      }
      default:
        len = cw::EncodeReject(buf, sizeof(buf), nonce, cw::RejectReason::kUnknown);
        break;
    }
    ASSERT_LE(len, sizeof(buf));

    // Corrupt: truncate and/or flip bytes (sometimes neither — the valid
    // message must then decode cleanly).
    uint32_t fuzz_len = len;
    if (rng.NextBelow(3) == 0) {
      fuzz_len = static_cast<uint32_t>(rng.NextBelow(len + 1));
    }
    if (rng.NextBelow(3) != 0 && fuzz_len > 0) {
      const uint32_t flips = 1 + static_cast<uint32_t>(rng.NextBelow(8));
      for (uint32_t f = 0; f < flips; ++f) {
        buf[rng.NextBelow(fuzz_len)] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
      }
    }

    cw::MsgHeader h;
    if (!cw::DecodeHeader(buf, fuzz_len, &h)) {
      continue;  // framing rejected it — the required outcome for corruption
    }
    // Framing passed (no corruption, or flips the checksum failed to catch are
    // impossible — FNV over the body gates this): typed decoders must still
    // bound-check everything they accept.
    ASSERT_LE(h.body_len, fuzz_len - cw::kHeaderBytes);
    switch (static_cast<cw::MsgType>(h.type)) {
      case cw::MsgType::kConnectRequest: {
        cw::ConnectRequest out;
        if (cw::DecodeConnectRequest(h, buf, &out)) {
          ASSERT_GE(out.num_lanes, 1u);
          ASSERT_LE(out.num_lanes, cw::kMaxLanesPerMsg);
          ASSERT_GT(out.ring_bytes, 0u);
          ASSERT_EQ(h.body_len, cw::ConnectRequestBytes(out.num_lanes));
        }
        break;
      }
      case cw::MsgType::kConnectAccept: {
        cw::ConnectAccept out;
        if (cw::DecodeConnectAccept(h, buf, &out)) {
          ASSERT_GE(out.num_lanes, 1u);
          ASSERT_LE(out.num_lanes, cw::kMaxLanesPerMsg);
          ASSERT_EQ(h.body_len, cw::ConnectAcceptBytes(out.num_lanes));
        }
        break;
      }
      case cw::MsgType::kReconnectRequest: {
        cw::ReconnectRequest out;
        if (cw::DecodeReconnectRequest(h, buf, &out)) {
          ASSERT_LT(out.lane_index, cw::kMaxLanesPerMsg);
        }
        break;
      }
      case cw::MsgType::kAddLaneRequest: {
        cw::AddLaneRequest out;
        if (cw::DecodeAddLaneRequest(h, buf, &out)) {
          ASSERT_LT(out.lane_index, cw::kMaxLanesPerMsg);
          ASSERT_GT(out.ring_bytes, 0u);
        }
        break;
      }
      case cw::MsgType::kReconnectAccept:
      case cw::MsgType::kRetireLaneRequest:
      case cw::MsgType::kRetireLaneAccept:
      case cw::MsgType::kAddLaneAccept:
      case cw::MsgType::kReject:
      default: {
        // Fixed-size decoders: a size mismatch must be rejected.
        cw::Reject out;
        if (cw::DecodeReject(h, buf, &out)) {
          ASSERT_EQ(h.body_len, sizeof(cw::Reject));
        }
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CtrlFuzzProperty,
                         ::testing::Values(uint64_t{1}, uint64_t{7},
                                           uint64_t{42}, uint64_t{1337},
                                           uint64_t{0xDEADBEEF}));

// ---------------------------------------------------------------------------
// Tenant identity under hostile input (DESIGN.md §15). Three surfaces:
//   1. the 12-bit data-plane stamp packs into header flags without touching
//      the low flag bits and roundtrips exactly;
//   2. a forged ConnectRequest tenant_id (> kMaxTenantId) must be rejected by
//      the typed decoder — corruption on top of that must never yield a
//      decoded id out of range. DisconnectRequest is a fixed-size decoder and
//      must reject any size mismatch;
//   3. the registry itself, hammered with random admissions/releases/grants
//      from registered, unregistered and forged ids, never crashes, never
//      lets an unknown id accrue state, and its live accounting matches a
//      shadow model exactly (quota charges can neither leak nor underflow).
// ---------------------------------------------------------------------------

class TenantFuzzProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TenantFuzzProperty, ForgedIdsRejectedAndAccountingNeverLeaks) {
  namespace cw = ctrl::wire;
  Rng rng(GetParam());
  uint8_t buf[cw::kMaxMessageBytes];

  // Shadow model for arm 3: per-tenant outstanding connection charges
  // (each element = lanes charged for that connection).
  tenant::TenantRegistry reg;
  std::vector<std::vector<uint32_t>> shadow(5);
  for (tenant::TenantId id = 1; id <= 4; ++id) {
    tenant::TenantPolicy p;
    p.weight = 1 + static_cast<uint32_t>(rng.NextBelow(4));
    p.max_connections = static_cast<uint32_t>(rng.NextBelow(4));  // 0=unlimited
    p.max_lanes = static_cast<uint32_t>(rng.NextBelow(12));
    p.credit_budget = static_cast<uint32_t>(rng.NextBelow(64));
    p.byte_quota = rng.NextBelow(2) ? 0 : 4096;
    reg.Register(id, p);
  }
  uint64_t now = 0;

  for (int round = 0; round < 4000; ++round) {
    switch (rng.NextBelow(4)) {
      case 0: {
        // Stamp roundtrip: low flag bits untouched, 12 bits recovered.
        const uint32_t id = static_cast<uint32_t>(rng.Next());
        const uint16_t flags = wire::PackTenantFlags(id);
        ASSERT_EQ(flags & 0xF, 0) << "stamp clobbered low flag bits";
        ASSERT_EQ(wire::TenantFromFlags(flags), id & wire::kMaxTenantStamp);
        const uint16_t noise = static_cast<uint16_t>(rng.Next());
        ASSERT_LE(wire::TenantFromFlags(noise), wire::kMaxTenantStamp);
        break;
      }
      case 1: {
        // ConnectRequest carrying a (sometimes forged) tenant id.
        cw::ConnectRequest req;
        req.client_node = static_cast<int32_t>(rng.NextBelow(16));
        req.num_lanes = 1 + static_cast<uint32_t>(rng.NextBelow(cw::kMaxLanesPerMsg));
        req.ring_bytes = 1u << rng.NextInRange(6, 18);
        const bool forged = rng.NextBelow(2) == 0;
        req.tenant_id = forged
                            ? tenant::kMaxTenantId + 1 +
                                  static_cast<uint32_t>(rng.NextBelow(1u << 20))
                            : static_cast<uint32_t>(
                                  rng.NextBelow(tenant::kMaxTenantId + 1));
        for (uint32_t i = 0; i < req.num_lanes; ++i) {
          req.lanes[i].qpn = static_cast<uint32_t>(rng.Next());
          req.lanes[i].resp_ring_addr = rng.Next();
        }
        const uint32_t len =
            cw::EncodeMessage(buf, sizeof(buf), cw::MsgType::kConnectRequest,
                              rng.Next(), &req, cw::ConnectRequestBytes(req.num_lanes));
        ASSERT_LE(len, sizeof(buf));
        uint32_t fuzz_len = len;
        const bool corrupted = rng.NextBelow(2) == 0;
        if (corrupted) {
          if (rng.NextBelow(3) == 0) {
            fuzz_len = static_cast<uint32_t>(rng.NextBelow(len + 1));
          }
          if (fuzz_len > 0) {
            const uint32_t flips = 1 + static_cast<uint32_t>(rng.NextBelow(8));
            for (uint32_t f = 0; f < flips; ++f) {
              buf[rng.NextBelow(fuzz_len)] ^=
                  static_cast<uint8_t>(1 + rng.NextBelow(255));
            }
          }
        }
        cw::MsgHeader h;
        if (!cw::DecodeHeader(buf, fuzz_len, &h)) break;
        cw::ConnectRequest out;
        const bool ok = cw::DecodeConnectRequest(h, buf, &out);
        if (ok) {
          // Whatever survives decode is a usable identity.
          ASSERT_LE(out.tenant_id, tenant::kMaxTenantId);
          ASSERT_LE(out.num_lanes, cw::kMaxLanesPerMsg);
        }
        if (!corrupted) {
          // Pristine frame: decode verdict is exactly the forgery check.
          ASSERT_EQ(ok, !forged)
              << "forged tenant_id " << req.tenant_id << " not rejected";
        }
        break;
      }
      case 2: {
        // DisconnectRequest: fixed-size decoder must reject size mismatches.
        cw::DisconnectRequest req;
        req.client_node = static_cast<int32_t>(rng.NextBelow(16));
        req.conn_id = static_cast<uint32_t>(rng.Next());
        const uint32_t len =
            cw::EncodeMessage(buf, sizeof(buf), cw::MsgType::kDisconnectRequest,
                              rng.Next(), &req, sizeof(req));
        uint32_t fuzz_len = len;
        if (rng.NextBelow(3) == 0) {
          fuzz_len = static_cast<uint32_t>(rng.NextBelow(len + 1));
        }
        if (rng.NextBelow(3) != 0 && fuzz_len > 0) {
          const uint32_t flips = 1 + static_cast<uint32_t>(rng.NextBelow(8));
          for (uint32_t f = 0; f < flips; ++f) {
            buf[rng.NextBelow(fuzz_len)] ^=
                static_cast<uint8_t>(1 + rng.NextBelow(255));
          }
        }
        cw::MsgHeader h;
        if (!cw::DecodeHeader(buf, fuzz_len, &h)) break;
        cw::DisconnectRequest out;
        if (cw::DecodeDisconnectRequest(h, buf, &out)) {
          ASSERT_EQ(h.body_len, sizeof(cw::DisconnectRequest));
        }
        break;
      }
      default: {
        // Registry hammer. Ids 1..4 registered; 5..8 unknown; one forged.
        const tenant::TenantId id = 1 + static_cast<tenant::TenantId>(
                                            rng.NextBelow(9));
        const bool known = id <= 4;
        switch (rng.NextBelow(6)) {
          case 0: {
            const uint32_t want = static_cast<uint32_t>(rng.NextBelow(8));
            const tenant::Admission v = reg.AdmitConnect(id, want);
            if (known && v.verdict == tenant::Admission::Verdict::kAdmit) {
              ASSERT_LE(v.lanes, want);
              shadow[id].push_back(v.lanes);
            }
            break;
          }
          case 1: {
            if (known && !shadow[id].empty()) {
              const size_t k = rng.NextBelow(shadow[id].size());
              reg.ReleaseConnection(id, shadow[id][k]);
              shadow[id].erase(shadow[id].begin() + static_cast<long>(k));
            } else {
              reg.ReleaseConnection(id, static_cast<uint32_t>(rng.NextBelow(4)));
            }
            break;
          }
          case 2: {
            // AddLane only ever rides an existing connection in the runtime,
            // so the hammer respects that precondition for known ids.
            if (known) {
              if (!shadow[id].empty() && reg.AdmitLane(id)) {
                shadow[id].back() += 1;
              }
            } else {
              ASSERT_TRUE(reg.AdmitLane(id)) << "unknown ids are unlimited";
            }
            break;
          }
          case 3: {
            const uint32_t want = static_cast<uint32_t>(rng.NextBelow(64));
            ASSERT_LE(reg.ClipGrant(id, want), want);
            break;
          }
          case 4: {
            reg.OnRequests(id, 1, rng.NextBelow(2048));
            reg.ChargeSent(id, rng.NextBelow(2048));
            if (!known) {
              ASSERT_EQ(reg.SendBudgetRemaining(id), UINT64_MAX);
            }
            break;
          }
          default: {
            now += 1 + rng.NextBelow(1000);
            reg.EndWindow(now);
            break;
          }
        }
        // Unknown ids never accrue state; known ids match the shadow exactly.
        ASSERT_EQ(reg.NumRegistered(), 4u);
        if (!known) {
          ASSERT_FALSE(reg.Registered(id));
          ASSERT_EQ(reg.LiveConnections(id), 0u);
          ASSERT_EQ(reg.LiveLanes(id), 0u);
        } else {
          uint32_t lanes = 0;
          for (uint32_t c : shadow[id]) lanes += c;
          ASSERT_EQ(reg.LiveConnections(id), shadow[id].size());
          ASSERT_EQ(reg.LiveLanes(id), lanes);
          ASSERT_LE(reg.ThrottleLevel(id), reg.throttle.max_level);
        }
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TenantFuzzProperty,
                         ::testing::Values(uint64_t{1}, uint64_t{7},
                                           uint64_t{42}, uint64_t{1337},
                                           uint64_t{0xDEADBEEF}));

// ---------------------------------------------------------------------------
// Control-plane delivery guards: nonce replay, malformed frames and
// non-member destinations are all rejected (returning 0) and counted, without
// disturbing the endpoint.
// ---------------------------------------------------------------------------

namespace {
struct CountingEndpoint : ctrl::Endpoint {
  int delivered = 0;
  uint32_t OnCtrlMessage(const uint8_t* msg, uint32_t len, uint8_t* resp,
                         uint32_t resp_cap) override {
    ++delivered;
    ctrl::wire::MsgHeader h;
    if (!ctrl::wire::DecodeHeader(msg, len, &h)) {
      return 0;
    }
    return ctrl::wire::EncodeReject(resp, resp_cap, h.nonce,
                                    ctrl::wire::RejectReason::kUnknown);
  }
};
}  // namespace

TEST(CtrlPlaneGuardTest, ReplayMalformedAndNonMemberAreRejected) {
  namespace cw = ctrl::wire;
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 2});
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(cluster);
  CountingEndpoint ep;
  cp.RegisterEndpoint(0, &ep);

  uint8_t msg[cw::kMaxMessageBytes];
  uint8_t resp[cw::kMaxMessageBytes];
  cw::RetireLaneRequest req;
  const uint64_t nonce = cp.NextNonce();
  const uint32_t len = cw::EncodeMessage(msg, sizeof(msg),
                                         cw::MsgType::kRetireLaneRequest, nonce,
                                         &req, sizeof(req));

  // First delivery passes; the identical frame (same nonce) is a replay.
  EXPECT_GT(cp.Call(0, msg, len, resp, sizeof(resp)), 0u);
  EXPECT_EQ(ep.delivered, 1);
  EXPECT_EQ(cp.Call(0, msg, len, resp, sizeof(resp)), 0u);
  EXPECT_EQ(ep.delivered, 1) << "a replayed nonce must never reach the endpoint";
  EXPECT_EQ(cp.stats().rejected_replay, 1u);

  // Malformed frame (corrupted body → checksum mismatch): rejected up front.
  const uint32_t len2 = cw::EncodeMessage(msg, sizeof(msg),
                                          cw::MsgType::kRetireLaneRequest,
                                          cp.NextNonce(), &req, sizeof(req));
  msg[cw::kHeaderBytes] ^= 0xFF;
  EXPECT_EQ(cp.Call(0, msg, len2, resp, sizeof(resp)), 0u);
  EXPECT_EQ(ep.delivered, 1);
  EXPECT_GE(cp.stats().rejected_malformed, 1u);

  // Truncated frame.
  const uint32_t len3 = cw::EncodeMessage(msg, sizeof(msg),
                                          cw::MsgType::kRetireLaneRequest,
                                          cp.NextNonce(), &req, sizeof(req));
  EXPECT_EQ(cp.Call(0, msg, len3 - 1, resp, sizeof(resp)), 0u);
  EXPECT_EQ(ep.delivered, 1);

  // Non-member destination.
  cp.Leave(0);
  const uint32_t len4 = cw::EncodeMessage(msg, sizeof(msg),
                                          cw::MsgType::kRetireLaneRequest,
                                          cp.NextNonce(), &req, sizeof(req));
  EXPECT_EQ(cp.Call(0, msg, len4, resp, sizeof(resp)), 0u);
  EXPECT_EQ(ep.delivered, 1);
  EXPECT_GE(cp.stats().rejected_not_member, 1u);
  cp.Join(0);

  // No endpoint registered on node 1.
  const uint32_t len5 = cw::EncodeMessage(msg, sizeof(msg),
                                          cw::MsgType::kRetireLaneRequest,
                                          cp.NextNonce(), &req, sizeof(req));
  EXPECT_EQ(cp.Call(1, msg, len5, resp, sizeof(resp)), 0u);
  EXPECT_GE(cp.stats().rejected_no_endpoint, 1u);

  cp.DeregisterEndpoint(0, &ep);
}

}  // namespace
}  // namespace flock
