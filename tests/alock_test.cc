// ALock-style reader/writer lock over one-sided atomics (src/flock/alock.h):
// mutual exclusion, reader sharing, undo-on-collision, and the version-word
// try-lock helpers the lock-based FlockTX variant builds on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/flock/alock.h"
#include "src/flock/flock.h"

namespace flock {
namespace {

struct LockWorld {
  explicit LockWorld(int nodes = 2)
      : cluster(verbs::Cluster::Config{.num_nodes = nodes, .cores_per_node = 8}) {
    FlockConfig server_cfg;
    server = std::make_unique<FlockRuntime>(cluster, 0, server_cfg);
    server->StartServer(2);
    for (int n = 1; n < nodes; ++n) {
      FlockConfig client_cfg;
      clients.push_back(std::make_unique<FlockRuntime>(cluster, n, client_cfg));
      clients.back()->StartClient();
    }
  }

  uint64_t ReadWord(uint64_t addr) {
    uint64_t value = 0;
    cluster.mem(0).Read(addr, &value, 8);
    return value;
  }

  verbs::Cluster cluster;
  std::unique_ptr<FlockRuntime> server;
  std::vector<std::unique_ptr<FlockRuntime>> clients;
};

TEST(ALockTest, WriterExcludesReadersAndWriters) {
  LockWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 2);
  FlockThread* t1 = world.clients[0]->CreateThread(0);
  FlockThread* t2 = world.clients[0]->CreateThread(1);
  const uint64_t word = world.cluster.mem(0).Alloc(8, 8);
  RemoteMr mr = conn->AttachMreg(word, 8);
  RemoteRwLock lock(*conn, word, mr);

  bool finished = false;
  auto app = [&]() -> sim::Co<void> {
    EXPECT_TRUE(co_await lock.WriterAcquire(*t1));
    EXPECT_EQ(world.ReadWord(word), RemoteRwLock::kWriterBit);
    // While the writer holds the word, neither role can get in.
    EXPECT_FALSE(co_await lock.ReaderAcquire(*t2, /*max_attempts=*/3));
    EXPECT_FALSE(co_await lock.WriterAcquire(*t2, /*max_attempts=*/3));
    // The failed reader withdrew its optimistic stakes: count is back to 0.
    EXPECT_EQ(world.ReadWord(word), RemoteRwLock::kWriterBit);
    EXPECT_TRUE(co_await lock.WriterRelease(*t1));
    EXPECT_EQ(world.ReadWord(word), 0u);

    // Readers share; a writer cannot enter while any reader remains.
    EXPECT_TRUE(co_await lock.ReaderAcquire(*t1));
    EXPECT_TRUE(co_await lock.ReaderAcquire(*t2));
    EXPECT_EQ(world.ReadWord(word), 2u);
    EXPECT_FALSE(co_await lock.WriterAcquire(*t1, /*max_attempts=*/3));
    EXPECT_TRUE(co_await lock.ReaderRelease(*t1));
    EXPECT_FALSE(co_await lock.WriterAcquire(*t1, /*max_attempts=*/3));
    EXPECT_TRUE(co_await lock.ReaderRelease(*t2));
    EXPECT_TRUE(co_await lock.WriterAcquire(*t1));
    EXPECT_TRUE(co_await lock.WriterRelease(*t1));
    EXPECT_EQ(world.ReadWord(word), 0u);
    finished = true;
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(50 * kMillisecond);
  EXPECT_TRUE(finished);
}

// Contention stress: many threads mixing shared and exclusive acquisitions
// must never observe a writer alongside any other holder, and the lock word
// must drain back to zero. The critical sections burn simulated CPU so
// holders genuinely overlap in time.
TEST(ALockTest, MixedContentionPreservesInvariants) {
  LockWorld world(3);
  const uint64_t word = world.cluster.mem(0).Alloc(8, 8);
  int readers_in = 0;
  int writers_in = 0;
  int completed = 0;
  const int kThreads = 6;
  const int kOpsPerThread = 12;

  for (int t = 0; t < kThreads; ++t) {
    FlockRuntime& rt = *world.clients[t % world.clients.size()];
    Connection* conn = rt.Connect(*world.server, 2);
    FlockThread* thread = rt.CreateThread(t % 4);
    RemoteMr mr = conn->AttachMreg(word, 8);
    auto app = [&world, conn, thread, word, mr, t, &readers_in, &writers_in,
                &completed]() -> sim::Co<void> {
      RemoteRwLock lock(*conn, word, mr);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const bool write = (i + t) % 3 == 0;
        if (write) {
          if (!co_await lock.WriterAcquire(*thread, /*max_attempts=*/1024)) {
            continue;
          }
          writers_in += 1;
          EXPECT_EQ(writers_in, 1);
          EXPECT_EQ(readers_in, 0);
          co_await thread->core().Work(400);
          writers_in -= 1;
          EXPECT_TRUE(co_await lock.WriterRelease(*thread));
        } else {
          if (!co_await lock.ReaderAcquire(*thread, /*max_attempts=*/1024)) {
            continue;
          }
          readers_in += 1;
          EXPECT_EQ(writers_in, 0);
          co_await thread->core().Work(400);
          readers_in -= 1;
          EXPECT_TRUE(co_await lock.ReaderRelease(*thread));
        }
        completed += 1;
      }
    };
    world.cluster.sim().Spawn(sim::RunClosure(app));
  }
  world.cluster.sim().RunFor(100 * kMillisecond);
  EXPECT_GT(completed, kThreads * kOpsPerThread / 2);
  EXPECT_EQ(readers_in, 0);
  EXPECT_EQ(writers_in, 0);
  uint64_t final_word = ~uint64_t{0};
  world.cluster.mem(0).Read(word, &final_word, 8);
  EXPECT_EQ(final_word, 0u);
}

// Version-word try-lock helpers: the CAS must only succeed against the exact
// unlocked version it read, and unlock publishes the new version via fl_write.
TEST(ALockTest, VersionTryLockMatchesKvEncoding) {
  LockWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 2);
  FlockThread* thread = world.clients[0]->CreateThread(0);
  const uint64_t word = world.cluster.mem(0).Alloc(8, 8);
  const uint64_t scratch = world.cluster.mem(1).Alloc(8, 8);
  const uint64_t v0 = 4;  // even: unlocked
  world.cluster.mem(0).Write(word, &v0, 8);
  RemoteMr mr = conn->AttachMreg(word, 8);
  fabric::MemorySpace& local = world.cluster.mem(1);

  bool finished = false;
  auto app = [&]() -> sim::Co<void> {
    EXPECT_TRUE(co_await VersionTryLock(*conn, *thread, word, v0, mr));
    EXPECT_EQ(world.ReadWord(word), v0 | kVersionLockBit);
    // Locked: a second try-lock (even with the right base version) misses.
    verbs::WcStatus status = verbs::WcStatus::kQpError;
    EXPECT_FALSE(co_await VersionTryLock(*conn, *thread, word, v0, mr, &status));
    EXPECT_EQ(status, verbs::WcStatus::kSuccess);  // clean miss, not transport
    // Commit: publish v0 + 2.
    EXPECT_EQ(co_await VersionUnlock(*conn, *thread, local, scratch, word,
                                     v0 + 2, mr),
              verbs::WcStatus::kSuccess);
    EXPECT_EQ(world.ReadWord(word), v0 + 2);
    // A CAS against the stale pre-commit version must now miss too.
    EXPECT_FALSE(co_await VersionTryLock(*conn, *thread, word, v0, mr));
    EXPECT_EQ(world.ReadWord(word), v0 + 2);
    // Abort path: lock then restore the original version unchanged.
    EXPECT_TRUE(co_await VersionTryLock(*conn, *thread, word, v0 + 2, mr));
    EXPECT_EQ(co_await VersionUnlock(*conn, *thread, local, scratch, word,
                                     v0 + 2, mr),
              verbs::WcStatus::kSuccess);
    EXPECT_EQ(world.ReadWord(word), v0 + 2);
    finished = true;
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(50 * kMillisecond);
  EXPECT_TRUE(finished);
}

}  // namespace
}  // namespace flock
