// Tests for the HydraList-style ordered index: point ops, scans, splits,
// asynchronous search-layer maintenance, and a randomized model check against
// std::map.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/common/rand.h"
#include "src/flock/flock.h"
#include "src/index/hydralist.h"
#include "src/index/remote_mirror.h"

namespace flock::index {
namespace {

TEST(HydraListTest, InsertAndGet) {
  HydraList list;
  Nanos cpu = 0;
  EXPECT_TRUE(list.Insert(10, 100, &cpu));
  EXPECT_TRUE(list.Insert(20, 200, &cpu));
  uint64_t value = 0;
  EXPECT_TRUE(list.Get(10, &value, &cpu));
  EXPECT_EQ(value, 100u);
  EXPECT_TRUE(list.Get(20, &value, &cpu));
  EXPECT_EQ(value, 200u);
  EXPECT_FALSE(list.Get(15, &value, &cpu));
  EXPECT_GT(cpu, 0);
}

TEST(HydraListTest, UpsertOverwrites) {
  HydraList list;
  Nanos cpu = 0;
  EXPECT_TRUE(list.Insert(1, 10, &cpu));
  EXPECT_FALSE(list.Insert(1, 20, &cpu));  // existing key: update
  uint64_t value = 0;
  EXPECT_TRUE(list.Get(1, &value, &cpu));
  EXPECT_EQ(value, 20u);
  EXPECT_EQ(list.size(), 1u);
}

TEST(HydraListTest, RemoveDeletes) {
  HydraList list;
  Nanos cpu = 0;
  list.Insert(5, 50, &cpu);
  EXPECT_TRUE(list.Remove(5, &cpu));
  EXPECT_FALSE(list.Get(5, nullptr, &cpu));
  EXPECT_FALSE(list.Remove(5, &cpu));
  EXPECT_EQ(list.size(), 0u);
}

TEST(HydraListTest, SplitsCreateNodesAndStaySearchable) {
  HydraList list;
  Nanos cpu = 0;
  // Insert far more than one node holds, without draining the search layer:
  // lookups must still succeed through data-list walks.
  for (uint64_t k = 0; k < 1000; ++k) {
    list.Insert(k * 7, k, &cpu);
  }
  EXPECT_GT(list.data_nodes(), 10u);
  EXPECT_GT(list.pending_search_updates(), 0u);
  for (uint64_t k = 0; k < 1000; ++k) {
    uint64_t value = 0;
    ASSERT_TRUE(list.Get(k * 7, &value, &cpu)) << k;
    EXPECT_EQ(value, k);
  }
}

TEST(HydraListTest, DrainingSearchUpdatesReducesWalkCost) {
  HydraList list;
  Nanos cpu = 0;
  for (uint64_t k = 0; k < 20000; ++k) {
    list.Insert(k, k, &cpu);
  }
  // Stale search layer: measure lookup cost at the far end.
  Nanos stale_cost = 0;
  list.Get(19999, nullptr, &stale_cost);
  list.DrainSearchUpdates(SIZE_MAX);
  EXPECT_EQ(list.pending_search_updates(), 0u);
  Nanos fresh_cost = 0;
  list.Get(19999, nullptr, &fresh_cost);
  EXPECT_LT(fresh_cost, stale_cost);
}

TEST(HydraListTest, ScanReturnsSortedRange) {
  HydraList list;
  Nanos cpu = 0;
  for (uint64_t k = 0; k < 500; ++k) {
    list.Insert(k * 2, k, &cpu);  // even keys only
  }
  list.DrainSearchUpdates(SIZE_MAX);
  uint64_t digest = 0;
  // Scan 64 entries starting at key 100 (= value 50).
  const uint32_t found = list.Scan(100, 64, &digest, &cpu);
  EXPECT_EQ(found, 64u);
  uint64_t expected = 0;
  for (uint64_t v = 50; v < 50 + 64; ++v) {
    expected ^= v;
  }
  EXPECT_EQ(digest, expected);
}

TEST(HydraListTest, ScanPastEndIsTruncated) {
  HydraList list;
  Nanos cpu = 0;
  for (uint64_t k = 0; k < 100; ++k) {
    list.Insert(k, k, &cpu);
  }
  uint64_t digest = 0;
  EXPECT_EQ(list.Scan(90, 64, &digest, &cpu), 10u);
  EXPECT_EQ(list.Scan(1000, 64, &digest, &cpu), 0u);
}

TEST(HydraListTest, RandomizedModelCheck) {
  HydraList list;
  std::map<uint64_t, uint64_t> model;
  Rng rng(77);
  Nanos cpu = 0;
  for (int op = 0; op < 30000; ++op) {
    const uint64_t key = rng.NextBelow(5000);
    const uint64_t roll = rng.NextBelow(100);
    if (roll < 60) {
      const uint64_t value = rng.Next();
      list.Insert(key, value, &cpu);
      model[key] = value;
    } else if (roll < 80) {
      const bool removed = list.Remove(key, &cpu);
      EXPECT_EQ(removed, model.erase(key) > 0);
    } else {
      uint64_t value = 0;
      const bool found = list.Get(key, &value, &cpu);
      auto it = model.find(key);
      ASSERT_EQ(found, it != model.end()) << "key " << key;
      if (found) {
        EXPECT_EQ(value, it->second);
      }
    }
    if (op % 1000 == 0) {
      list.DrainSearchUpdates(8);  // trickle the async maintenance
    }
  }
  EXPECT_EQ(list.size(), model.size());
  // Full scan must visit exactly the model's keys in order.
  list.DrainSearchUpdates(SIZE_MAX);
  uint64_t digest = 0;
  const uint32_t found =
      list.Scan(0, static_cast<uint32_t>(model.size()) + 10, &digest, &cpu);
  EXPECT_EQ(found, model.size());
  uint64_t expected = 0;
  for (const auto& [k, v] : model) {
    expected ^= v;
  }
  EXPECT_EQ(digest, expected);
}

TEST(HydraListTest, CostGrowsSublinearlyWithSize) {
  // Skip-list locate should be ~log n: cost at 100k keys is far less than
  // 20x the cost at 5k keys.
  auto lookup_cost = [](uint64_t n) {
    HydraList list;
    Nanos cpu = 0;
    for (uint64_t k = 0; k < n; ++k) {
      list.Insert(k, k, &cpu);
    }
    list.DrainSearchUpdates(SIZE_MAX);
    Nanos total = 0;
    Rng rng(9);
    for (int i = 0; i < 200; ++i) {
      list.Get(rng.NextBelow(n), nullptr, &total);
    }
    return total;
  };
  const Nanos small = lookup_cost(5000);
  const Nanos large = lookup_cost(100000);
  EXPECT_LT(large, small * 5);
}

// ---------------------------------------------------------------------------
// One-sided mirror (remote_mirror.h)
// ---------------------------------------------------------------------------

TEST(HydraListTest, VisitNodesCoversEverythingInAnchorOrder) {
  HydraList list;
  Nanos cpu = 0;
  for (uint64_t k = 1; k <= 500; ++k) {
    list.Insert(k * 3, k, &cpu);
  }
  size_t total = 0;
  uint64_t last_anchor = 0;
  size_t nodes = 0;
  list.VisitNodes([&](uint64_t anchor, const uint64_t* keys,
                      const uint64_t* values, size_t count) {
    if (nodes > 0) {
      EXPECT_GT(anchor, last_anchor);
    }
    last_anchor = anchor;
    for (size_t i = 0; i + 1 < count; ++i) {
      EXPECT_LT(keys[i], keys[i + 1]);
    }
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(values[i] * 3, keys[i]);
    }
    total += count;
    ++nodes;
  });
  EXPECT_EQ(total, list.size());
  EXPECT_EQ(nodes, list.data_nodes());
}

// 2-node world: node 0 hosts the index + mirror, node 1 reads one-sided.
struct MirrorWorld {
  MirrorWorld() : cluster(verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 8}) {
    FlockConfig cfg;
    server = std::make_unique<FlockRuntime>(cluster, 0, cfg);
    server->StartServer(2);
    client = std::make_unique<FlockRuntime>(cluster, 1, cfg);
    client->StartClient();
    conn = client->Connect(*server, 2);
    thread = client->CreateThread(0);
  }

  std::unique_ptr<MirrorReader> MakeReader(const HydraMirror& mirror) {
    const RemoteMr dir_mr = conn->AttachMreg(mirror.dir_addr(), mirror.dir_bytes());
    const RemoteMr blocks_mr =
        conn->AttachMreg(mirror.blocks_addr(), mirror.blocks_bytes());
    return std::make_unique<MirrorReader>(*conn, cluster.mem(1),
                                          mirror.dir_addr(), dir_mr, blocks_mr,
                                          mirror.max_blocks());
  }

  verbs::Cluster cluster;
  std::unique_ptr<FlockRuntime> server;
  std::unique_ptr<FlockRuntime> client;
  Connection* conn = nullptr;
  FlockThread* thread = nullptr;
};

TEST(MirrorTest, OneSidedLookupsResolveAgainstSnapshot) {
  MirrorWorld world;
  HydraList list;
  Nanos cpu = 0;
  for (uint64_t k = 1; k <= 300; ++k) {
    list.Insert(k * 5, k * 100, &cpu);
  }
  HydraMirror mirror(world.cluster.mem(0), 64);
  EXPECT_EQ(mirror.Publish(list), list.data_nodes());
  auto reader = world.MakeReader(mirror);

  int hits = 0;
  int absents = 0;
  auto app = [&]() -> sim::Co<void> {
    EXPECT_TRUE(co_await reader->RefreshDirectory(*world.thread));
    for (uint64_t k = 1; k <= 300; ++k) {
      uint64_t value = 0;
      const MirrorReader::Outcome out =
          co_await reader->Get(*world.thread, k * 5, &value);
      if (out == MirrorReader::Outcome::kOk && value == k * 100) {
        ++hits;
      }
    }
    // Keys between the present ones are absent, not garbage.
    for (uint64_t k = 1; k <= 50; ++k) {
      const MirrorReader::Outcome out =
          co_await reader->Get(*world.thread, k * 5 + 1, nullptr);
      if (out == MirrorReader::Outcome::kAbsent) {
        ++absents;
      }
    }
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(100 * kMillisecond);
  EXPECT_EQ(hits, 300);
  EXPECT_EQ(absents, 50);
  EXPECT_EQ(reader->stats().ok, 300u);
  // Lookups really were one-sided: no server RPC ran, only fl_reads.
  EXPECT_GT(world.cluster.device(1).stats().tx_reads, 0u);
}

TEST(MirrorTest, RepublishNeverTearsReaders) {
  // A writer keeps inserting and republishing while a one-sided reader spins
  // on a fixed key set. Every kOk must deliver a value some publish made
  // visible (value == key * 1000 + round), never a torn mix.
  MirrorWorld world;
  HydraList list;
  Nanos cpu = 0;
  constexpr uint64_t kKeys = 200;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    list.Insert(k, k * 1000, &cpu);
  }
  HydraMirror mirror(world.cluster.mem(0), 64);
  mirror.Publish(list);
  auto reader = world.MakeReader(mirror);

  uint64_t round = 0;
  bool stop = false;
  auto writer = [&]() -> sim::Co<void> {
    while (!stop) {
      co_await sim::Delay(world.cluster.sim(), 5 * kMicrosecond);
      ++round;
      Nanos wcpu = 0;
      for (uint64_t k = 1; k <= kKeys; ++k) {
        list.Insert(k, k * 1000 + round, &wcpu);  // upsert
      }
      mirror.Publish(list);
    }
  };

  int accepted = 0;
  auto app = [&]() -> sim::Co<void> {
    EXPECT_TRUE(co_await reader->RefreshDirectory(*world.thread));
    for (int i = 0; i < 400; ++i) {
      const uint64_t key = 1 + static_cast<uint64_t>(i) % kKeys;
      uint64_t value = 0;
      const MirrorReader::Outcome out =
          co_await reader->Get(*world.thread, key, &value, 2);
      if (out == MirrorReader::Outcome::kOk) {
        EXPECT_EQ(value / 1000, key);
        EXPECT_LE(value % 1000, round);
        ++accepted;
      }
    }
    stop = true;
  };
  world.cluster.sim().Spawn(sim::RunClosure(writer));
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(100 * kMillisecond);
  EXPECT_TRUE(stop);
  EXPECT_GT(accepted, 200);
}

}  // namespace
}  // namespace flock::index
