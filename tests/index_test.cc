// Tests for the HydraList-style ordered index: point ops, scans, splits,
// asynchronous search-layer maintenance, and a randomized model check against
// std::map.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/rand.h"
#include "src/index/hydralist.h"

namespace flock::index {
namespace {

TEST(HydraListTest, InsertAndGet) {
  HydraList list;
  Nanos cpu = 0;
  EXPECT_TRUE(list.Insert(10, 100, &cpu));
  EXPECT_TRUE(list.Insert(20, 200, &cpu));
  uint64_t value = 0;
  EXPECT_TRUE(list.Get(10, &value, &cpu));
  EXPECT_EQ(value, 100u);
  EXPECT_TRUE(list.Get(20, &value, &cpu));
  EXPECT_EQ(value, 200u);
  EXPECT_FALSE(list.Get(15, &value, &cpu));
  EXPECT_GT(cpu, 0);
}

TEST(HydraListTest, UpsertOverwrites) {
  HydraList list;
  Nanos cpu = 0;
  EXPECT_TRUE(list.Insert(1, 10, &cpu));
  EXPECT_FALSE(list.Insert(1, 20, &cpu));  // existing key: update
  uint64_t value = 0;
  EXPECT_TRUE(list.Get(1, &value, &cpu));
  EXPECT_EQ(value, 20u);
  EXPECT_EQ(list.size(), 1u);
}

TEST(HydraListTest, RemoveDeletes) {
  HydraList list;
  Nanos cpu = 0;
  list.Insert(5, 50, &cpu);
  EXPECT_TRUE(list.Remove(5, &cpu));
  EXPECT_FALSE(list.Get(5, nullptr, &cpu));
  EXPECT_FALSE(list.Remove(5, &cpu));
  EXPECT_EQ(list.size(), 0u);
}

TEST(HydraListTest, SplitsCreateNodesAndStaySearchable) {
  HydraList list;
  Nanos cpu = 0;
  // Insert far more than one node holds, without draining the search layer:
  // lookups must still succeed through data-list walks.
  for (uint64_t k = 0; k < 1000; ++k) {
    list.Insert(k * 7, k, &cpu);
  }
  EXPECT_GT(list.data_nodes(), 10u);
  EXPECT_GT(list.pending_search_updates(), 0u);
  for (uint64_t k = 0; k < 1000; ++k) {
    uint64_t value = 0;
    ASSERT_TRUE(list.Get(k * 7, &value, &cpu)) << k;
    EXPECT_EQ(value, k);
  }
}

TEST(HydraListTest, DrainingSearchUpdatesReducesWalkCost) {
  HydraList list;
  Nanos cpu = 0;
  for (uint64_t k = 0; k < 20000; ++k) {
    list.Insert(k, k, &cpu);
  }
  // Stale search layer: measure lookup cost at the far end.
  Nanos stale_cost = 0;
  list.Get(19999, nullptr, &stale_cost);
  list.DrainSearchUpdates(SIZE_MAX);
  EXPECT_EQ(list.pending_search_updates(), 0u);
  Nanos fresh_cost = 0;
  list.Get(19999, nullptr, &fresh_cost);
  EXPECT_LT(fresh_cost, stale_cost);
}

TEST(HydraListTest, ScanReturnsSortedRange) {
  HydraList list;
  Nanos cpu = 0;
  for (uint64_t k = 0; k < 500; ++k) {
    list.Insert(k * 2, k, &cpu);  // even keys only
  }
  list.DrainSearchUpdates(SIZE_MAX);
  uint64_t digest = 0;
  // Scan 64 entries starting at key 100 (= value 50).
  const uint32_t found = list.Scan(100, 64, &digest, &cpu);
  EXPECT_EQ(found, 64u);
  uint64_t expected = 0;
  for (uint64_t v = 50; v < 50 + 64; ++v) {
    expected ^= v;
  }
  EXPECT_EQ(digest, expected);
}

TEST(HydraListTest, ScanPastEndIsTruncated) {
  HydraList list;
  Nanos cpu = 0;
  for (uint64_t k = 0; k < 100; ++k) {
    list.Insert(k, k, &cpu);
  }
  uint64_t digest = 0;
  EXPECT_EQ(list.Scan(90, 64, &digest, &cpu), 10u);
  EXPECT_EQ(list.Scan(1000, 64, &digest, &cpu), 0u);
}

TEST(HydraListTest, RandomizedModelCheck) {
  HydraList list;
  std::map<uint64_t, uint64_t> model;
  Rng rng(77);
  Nanos cpu = 0;
  for (int op = 0; op < 30000; ++op) {
    const uint64_t key = rng.NextBelow(5000);
    const uint64_t roll = rng.NextBelow(100);
    if (roll < 60) {
      const uint64_t value = rng.Next();
      list.Insert(key, value, &cpu);
      model[key] = value;
    } else if (roll < 80) {
      const bool removed = list.Remove(key, &cpu);
      EXPECT_EQ(removed, model.erase(key) > 0);
    } else {
      uint64_t value = 0;
      const bool found = list.Get(key, &value, &cpu);
      auto it = model.find(key);
      ASSERT_EQ(found, it != model.end()) << "key " << key;
      if (found) {
        EXPECT_EQ(value, it->second);
      }
    }
    if (op % 1000 == 0) {
      list.DrainSearchUpdates(8);  // trickle the async maintenance
    }
  }
  EXPECT_EQ(list.size(), model.size());
  // Full scan must visit exactly the model's keys in order.
  list.DrainSearchUpdates(SIZE_MAX);
  uint64_t digest = 0;
  const uint32_t found =
      list.Scan(0, static_cast<uint32_t>(model.size()) + 10, &digest, &cpu);
  EXPECT_EQ(found, model.size());
  uint64_t expected = 0;
  for (const auto& [k, v] : model) {
    expected ^= v;
  }
  EXPECT_EQ(digest, expected);
}

TEST(HydraListTest, CostGrowsSublinearlyWithSize) {
  // Skip-list locate should be ~log n: cost at 100k keys is far less than
  // 20x the cost at 5k keys.
  auto lookup_cost = [](uint64_t n) {
    HydraList list;
    Nanos cpu = 0;
    for (uint64_t k = 0; k < n; ++k) {
      list.Insert(k, k, &cpu);
    }
    list.DrainSearchUpdates(SIZE_MAX);
    Nanos total = 0;
    Rng rng(9);
    for (int i = 0; i < 200; ++i) {
      list.Get(rng.NextBelow(n), nullptr, &total);
    }
    return total;
  };
  const Nanos small = lookup_cost(5000);
  const Nanos large = lookup_cost(100000);
  EXPECT_LT(large, small * 5);
}

}  // namespace
}  // namespace flock::index
