// Unit tests for the watchdog's deterministic schedule arithmetic
// (src/flock/watchdog.h): scan-tick granularity and the exponential backoff
// growth/saturation. Pure functions — no cluster, no simulator.
#include "src/flock/watchdog.h"

#include <gtest/gtest.h>

#include <limits>

#include "src/common/units.h"

namespace flock::internal {
namespace {

constexpr Nanos kMaxNanos = std::numeric_limits<Nanos>::max();

// ---- WatchdogTick ----

TEST(WatchdogTick, IsQuarterOfTheTimeout) {
  EXPECT_EQ(WatchdogTick(200 * kMicrosecond), 50 * kMicrosecond);
  EXPECT_EQ(WatchdogTick(4 * kMillisecond), kMillisecond);
}

TEST(WatchdogTick, NeverScansFasterThanOneMicrosecond) {
  // A pathologically small timeout must not turn the scanner into a
  // every-nanosecond busy loop.
  EXPECT_EQ(WatchdogTick(1), kMicrosecond);
  EXPECT_EQ(WatchdogTick(kMicrosecond), kMicrosecond);
  EXPECT_EQ(WatchdogTick(3 * kMicrosecond), kMicrosecond);
  // The floor stops binding once timeout/4 exceeds it.
  EXPECT_EQ(WatchdogTick(8 * kMicrosecond), 2 * kMicrosecond);
}

// ---- RetryBackoff ----

TEST(RetryBackoff, DoublesEveryAttempt) {
  const Nanos timeout = 200 * kMicrosecond;
  // `retries` is the post-increment attempt count: the first retransmit
  // passes 1 and waits 2x the base timeout.
  EXPECT_EQ(RetryBackoff(timeout, 1), timeout << 1);
  EXPECT_EQ(RetryBackoff(timeout, 2), timeout << 2);
  EXPECT_EQ(RetryBackoff(timeout, 5), timeout << 5);
  for (uint32_t r = 1; r < 10; ++r) {
    EXPECT_EQ(RetryBackoff(timeout, r + 1), 2 * RetryBackoff(timeout, r));
  }
}

TEST(RetryBackoff, ShiftClampsAtTwenty) {
  // Beyond 20 doublings (a ~4-second deadline from a 4us base) the schedule
  // flattens: attempt 21, 100, and 2^32-1 all wait the same.
  const Nanos timeout = 4 * kMicrosecond;
  const Nanos plateau = RetryBackoff(timeout, 20);
  EXPECT_EQ(plateau, timeout << 20);
  EXPECT_EQ(RetryBackoff(timeout, 21), plateau);
  EXPECT_EQ(RetryBackoff(timeout, 100), plateau);
  EXPECT_EQ(RetryBackoff(timeout, std::numeric_limits<uint32_t>::max()),
            plateau);
}

TEST(RetryBackoff, SaturatesInsteadOfOverflowing) {
  // A large base timeout whose clamped shift would still overflow signed
  // Nanos saturates to max/2 (so adding it to now() cannot overflow either).
  const Nanos huge = kMaxNanos / 4;
  EXPECT_EQ(RetryBackoff(huge, 20), kMaxNanos / 2);
  EXPECT_EQ(RetryBackoff(huge, 3), kMaxNanos / 2);
  // One doubling of max/4 still fits.
  EXPECT_EQ(RetryBackoff(huge, 1), huge << 1);
}

TEST(RetryBackoff, ScheduleIsMonotonic) {
  // The deadline sequence never shrinks as attempts accumulate — a
  // non-monotonic schedule would retransmit faster under persistent failure.
  const Nanos timeout = 200 * kMicrosecond;
  Nanos prev = 0;
  for (uint32_t r = 1; r <= 64; ++r) {
    const Nanos d = RetryBackoff(timeout, r);
    EXPECT_GE(d, prev) << "attempt " << r;
    prev = d;
  }
}

TEST(RetryBackoff, TotalScheduleStaysFinite) {
  // Summing the full schedule for a realistic max_retries stays well inside
  // Nanos range: the watchdog can always compute `now + backoff` safely.
  const Nanos timeout = kMillisecond;
  Nanos total = 0;
  for (uint32_t r = 1; r <= 16; ++r) {
    total += RetryBackoff(timeout, r);
    EXPECT_GT(total, 0);
    EXPECT_LT(total, kMaxNanos / 2);
  }
}

}  // namespace
}  // namespace flock::internal
