// Real-multithreaded stress tests for Flock synchronization (the TCQ, §4.2).
//
// These tests run the MCS-style combining queue under genuine OS-thread
// concurrency — the one part of the paper's design whose correctness depends
// on lock-freedom rather than simulated timing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/flock/combine.h"

namespace flock {
namespace {

// Each thread repeatedly enqueues a value; leaders combine batches and apply
// them to a shared accumulator with a single "submission". Checks that every
// request is applied exactly once and batches respect the bound.
void RunCombiningStress(int num_threads, int ops_per_thread, size_t bound,
                        uint64_t* out_sum, uint64_t* out_batches,
                        size_t* out_max_batch) {
  CombiningQueue queue;
  std::atomic<uint64_t> sum{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<size_t> max_batch{0};
  std::atomic<int> started{0};

  auto worker = [&](int tid) {
    CombiningQueue::Node node;
    started.fetch_add(1);
    while (started.load() < num_threads) {
    }
    std::vector<CombiningQueue::Node*> batch(bound);
    for (int i = 0; i < ops_per_thread; ++i) {
      node.payload = static_cast<uint64_t>(tid) * 1000003u + static_cast<uint64_t>(i);
      bool leader = queue.Enqueue(&node);
      if (!leader) {
        leader = queue.WaitTurn(&node) == CombiningQueue::kLeader;
      }
      if (leader) {
        const size_t n = queue.Collect(&node, batch.data(), bound);
        uint64_t combined = 0;
        for (size_t k = 0; k < n; ++k) {
          combined += batch[k]->payload;
        }
        sum.fetch_add(combined, std::memory_order_relaxed);
        batches.fetch_add(1, std::memory_order_relaxed);
        size_t seen = max_batch.load(std::memory_order_relaxed);
        while (n > seen &&
               !max_batch.compare_exchange_weak(seen, n, std::memory_order_relaxed)) {
        }
        queue.Finish(batch.data(), n);
      }
      // If not leader, status was kDone: the request was combined by a leader.
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back(worker, t);
  }
  for (auto& t : threads) {
    t.join();
  }
  *out_sum = sum.load();
  *out_batches = batches.load();
  *out_max_batch = max_batch.load();
}

uint64_t ExpectedSum(int num_threads, int ops_per_thread) {
  uint64_t expected = 0;
  for (int t = 0; t < num_threads; ++t) {
    for (int i = 0; i < ops_per_thread; ++i) {
      expected += static_cast<uint64_t>(t) * 1000003u + static_cast<uint64_t>(i);
    }
  }
  return expected;
}

TEST(CombiningThreadsTest, SingleThreadIsAlwaysLeader) {
  uint64_t sum = 0, batches = 0;
  size_t max_batch = 0;
  RunCombiningStress(1, 1000, 16, &sum, &batches, &max_batch);
  EXPECT_EQ(sum, ExpectedSum(1, 1000));
  EXPECT_EQ(batches, 1000u);  // no concurrency → no combining
  EXPECT_EQ(max_batch, 1u);
}

TEST(CombiningThreadsTest, AllRequestsAppliedExactlyOnce) {
  const int kThreads = 8;
  const int kOps = 5000;
  uint64_t sum = 0, batches = 0;
  size_t max_batch = 0;
  RunCombiningStress(kThreads, kOps, 16, &sum, &batches, &max_batch);
  EXPECT_EQ(sum, ExpectedSum(kThreads, kOps));
  EXPECT_LE(batches, static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_GE(batches, static_cast<uint64_t>(kOps));  // at least one per round
}

TEST(CombiningThreadsTest, BatchBoundIsRespected) {
  const size_t kBound = 4;
  uint64_t sum = 0, batches = 0;
  size_t max_batch = 0;
  RunCombiningStress(8, 3000, kBound, &sum, &batches, &max_batch);
  EXPECT_EQ(sum, ExpectedSum(8, 3000));
  EXPECT_LE(max_batch, kBound);
}

TEST(CombiningThreadsTest, BoundOneDegeneratesToMutualExclusion) {
  uint64_t sum = 0, batches = 0;
  size_t max_batch = 0;
  RunCombiningStress(4, 2000, 1, &sum, &batches, &max_batch);
  EXPECT_EQ(sum, ExpectedSum(4, 2000));
  EXPECT_EQ(batches, 4u * 2000u);  // every request is its own batch
  EXPECT_EQ(max_batch, 1u);
}

TEST(CombiningThreadsTest, RepeatedRunsStayCorrect) {
  for (int round = 0; round < 5; ++round) {
    uint64_t sum = 0, batches = 0;
    size_t max_batch = 0;
    RunCombiningStress(4, 1000, 8, &sum, &batches, &max_batch);
    EXPECT_EQ(sum, ExpectedSum(4, 1000)) << "round " << round;
  }
}

}  // namespace
}  // namespace flock
