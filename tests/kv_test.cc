// Unit tests for the MICA-style KV store: CRUD, OCC lock/version protocol,
// replica apply, stable version addresses, and the client-side one-sided
// lookup path (fl_read + seqlock validation) over the simulated RDMA stack.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/kv/kvstore.h"
#include "src/kv/remote_kv.h"

namespace flock::kv {
namespace {

class KvTest : public ::testing::Test {
 protected:
  KvTest() : store_(mem_, 1024, 16) {}

  fabric::MemorySpace mem_;
  KvStore store_;
};

TEST_F(KvTest, InsertAndGet) {
  const char value[16] = "hello-value";
  ASSERT_TRUE(store_.Insert(42, value));
  char out[16] = {};
  uint64_t version = 0, addr = 0;
  ASSERT_TRUE(store_.Get(42, out, &version, &addr));
  EXPECT_STREQ(out, "hello-value");
  EXPECT_EQ(version, 2u);
  EXPECT_NE(addr, 0u);
}

TEST_F(KvTest, DuplicateInsertRejected) {
  const char value[16] = "v";
  ASSERT_TRUE(store_.Insert(1, value));
  EXPECT_FALSE(store_.Insert(1, value));
  EXPECT_EQ(store_.size(), 1u);
}

TEST_F(KvTest, MissingKeyGetFails) {
  uint64_t version = 0;
  EXPECT_FALSE(store_.Get(999, nullptr, &version, nullptr));
}

TEST_F(KvTest, LockBlocksReadersAndSecondLocker) {
  const char value[16] = "locked";
  ASSERT_TRUE(store_.Insert(7, value));
  uint64_t version = 0;
  ASSERT_TRUE(store_.TryLock(7, nullptr, &version));
  EXPECT_EQ(version, 2u);
  // OCC readers see the lock and fail.
  EXPECT_FALSE(store_.Get(7, nullptr, nullptr, nullptr));
  // Second lock attempt fails.
  EXPECT_FALSE(store_.TryLock(7, nullptr, nullptr));
  // Abort path: unlock without version bump.
  ASSERT_TRUE(store_.Unlock(7));
  ASSERT_TRUE(store_.Get(7, nullptr, &version, nullptr));
  EXPECT_EQ(version, 2u);
}

TEST_F(KvTest, CommitBumpsVersion) {
  const char v1[16] = "aaaa";
  const char v2[16] = "bbbb";
  ASSERT_TRUE(store_.Insert(5, v1));
  ASSERT_TRUE(store_.TryLock(5, nullptr, nullptr));
  ASSERT_TRUE(store_.UpdateAndUnlock(5, v2));
  char out[16] = {};
  uint64_t version = 0;
  ASSERT_TRUE(store_.Get(5, out, &version, nullptr));
  EXPECT_STREQ(out, "bbbb");
  EXPECT_EQ(version, 4u);  // 2 -> 4
}

TEST_F(KvTest, VersionAddrIsStableAcrossUpdates) {
  const char value[16] = "x";
  ASSERT_TRUE(store_.Insert(3, value));
  uint64_t addr1 = 0, addr2 = 0;
  ASSERT_TRUE(store_.Get(3, nullptr, nullptr, &addr1));
  ASSERT_TRUE(store_.TryLock(3, nullptr, nullptr));
  ASSERT_TRUE(store_.UpdateAndUnlock(3, value));
  ASSERT_TRUE(store_.Get(3, nullptr, nullptr, &addr2));
  EXPECT_EQ(addr1, addr2);
  // And the version word is readable directly from node memory (this is what
  // a remote one-sided validation read sees).
  uint64_t raw = 0;
  mem_.Read(addr1, &raw, 8);
  EXPECT_EQ(raw, 4u);
}

TEST_F(KvTest, ReplicaApplyInstallsVersionAndValue) {
  const char v1[16] = "old";
  const char v2[16] = "new";
  ASSERT_TRUE(store_.Insert(8, v1));
  ASSERT_TRUE(store_.ReplicaApply(8, 10, v2));
  char out[16] = {};
  uint64_t version = 0;
  ASSERT_TRUE(store_.Get(8, out, &version, nullptr));
  EXPECT_STREQ(out, "new");
  EXPECT_EQ(version, 10u);
}

TEST_F(KvTest, ManyKeysSurviveProbing) {
  char value[16];
  for (uint64_t k = 0; k < 700; ++k) {
    std::memcpy(value, &k, 8);
    ASSERT_TRUE(store_.Insert(k * 977 + 13, value));
  }
  EXPECT_EQ(store_.size(), 700u);
  for (uint64_t k = 0; k < 700; ++k) {
    char out[16] = {};
    ASSERT_TRUE(store_.Get(k * 977 + 13, out, nullptr, nullptr));
    uint64_t got = 0;
    std::memcpy(&got, out, 8);
    EXPECT_EQ(got, k);
  }
}

TEST_F(KvTest, SpansCoverRecords) {
  const char value[16] = "z";
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(store_.Insert(k, value));
  }
  ASSERT_FALSE(store_.spans().empty());
  uint64_t addr = 0;
  ASSERT_TRUE(store_.Get(50, nullptr, nullptr, &addr));
  bool covered = false;
  for (const auto& span : store_.spans()) {
    covered |= (addr >= span.addr && addr + 8 <= span.addr + span.length);
  }
  EXPECT_TRUE(covered);
}

// ---------------------------------------------------------------------------
// One-sided lookups: OneSidedReader against a KvStore living in the server
// node's registered memory, with RPC-side writers mutating underneath.
// ---------------------------------------------------------------------------

struct RemoteKvWorld {
  RemoteKvWorld()
      : cluster(verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 8}),
        store(cluster.mem(0), 256, 16) {
    FlockConfig cfg;
    server = std::make_unique<FlockRuntime>(cluster, 0, cfg);
    server->StartServer(2);
    client = std::make_unique<FlockRuntime>(cluster, 1, cfg);
    client->StartClient();
    conn = client->Connect(*server, 2);
    thread = client->CreateThread(0);
  }

  // Registers the store's spans and files every present key's record address
  // with the reader (standing in for the RPC address-learning channel).
  void Publish(OneSidedReader& reader, const std::vector<uint64_t>& keys) {
    std::vector<RemoteMr> mrs;
    for (const auto& span : store.spans()) {
      mrs.push_back(conn->AttachMreg(span.addr, span.length));
    }
    for (uint64_t key : keys) {
      uint64_t addr = 0;
      ASSERT_TRUE(store.Get(key, nullptr, nullptr, &addr));
      for (const auto& mr : mrs) {
        if (addr >= mr.addr && addr + 8 + store.value_size() <= mr.addr + mr.length) {
          reader.LearnAddr(key, addr, mr);
          break;
        }
      }
      ASSERT_TRUE(reader.KnowsAddr(key));
    }
  }

  verbs::Cluster cluster;
  KvStore store;
  std::unique_ptr<FlockRuntime> server;
  std::unique_ptr<FlockRuntime> client;
  Connection* conn = nullptr;
  FlockThread* thread = nullptr;
};

TEST(RemoteKvTest, OneSidedGetDeliversValueAndVersion) {
  RemoteKvWorld world;
  const char value[16] = "one-sided";
  ASSERT_TRUE(world.store.Insert(42, value));
  OneSidedReader reader(*world.conn, world.cluster.mem(1), 16);
  world.Publish(reader, {42});

  bool finished = false;
  auto app = [&]() -> sim::Co<void> {
    char out[16] = {};
    uint64_t version = 0;
    EXPECT_EQ(co_await reader.Get(*world.thread, 42, out, &version),
              OneSidedReader::Outcome::kOk);
    EXPECT_STREQ(out, "one-sided");
    EXPECT_EQ(version, 2u);
    // Unknown key: no cached address, caller must take the RPC path.
    EXPECT_EQ(co_await reader.Get(*world.thread, 999, out, &version),
              OneSidedReader::Outcome::kNoAddr);
    finished = true;
  };
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(10 * kMillisecond);
  EXPECT_TRUE(finished);
  EXPECT_EQ(reader.stats().ok, 1u);
  EXPECT_EQ(reader.stats().no_addr, 1u);
  // The lookup went over the wire as READs, not RPCs.
  EXPECT_GE(world.cluster.device(1).stats().tx_reads, 2u);
}

TEST(RemoteKvTest, LockedRecordIsRejectedUntilCommit) {
  RemoteKvWorld world;
  const char v1[16] = "before";
  const char v2[16] = "after";
  ASSERT_TRUE(world.store.Insert(7, v1));
  OneSidedReader reader(*world.conn, world.cluster.mem(1), 16);
  world.Publish(reader, {7});

  // Writer: lock the record, hold it (with torn garbage in the value bytes)
  // for 30 us of simulated time, then commit the real value.
  uint64_t record = 0;
  ASSERT_TRUE(world.store.Get(7, nullptr, nullptr, &record));
  auto writer = [&]() -> sim::Proc {
    uint64_t version = 0;
    FLOCK_CHECK(world.store.TryLock(7, nullptr, &version));
    const char garbage[16] = "TORNTORNTORN";
    world.cluster.mem(0).Write(record + 8, garbage, 16);
    co_await sim::Delay(world.cluster.sim(), 30 * kMicrosecond);
    FLOCK_CHECK(world.store.UpdateAndUnlock(7, v2));
  };

  bool finished = false;
  auto app = [&]() -> sim::Co<void> {
    char out[16] = {};
    uint64_t version = 0;
    // While the writer holds the lock, a bounded read attempt gives up
    // cleanly — and never exposes the torn bytes.
    EXPECT_EQ(co_await reader.Get(*world.thread, 7, out, &version,
                                  /*max_retries=*/1),
              OneSidedReader::Outcome::kContended);
    // Retrying with a generous budget rides out the writer and must observe
    // the committed value, never the garbage.
    OneSidedReader::Outcome outcome = OneSidedReader::Outcome::kContended;
    while (outcome == OneSidedReader::Outcome::kContended) {
      outcome = co_await reader.Get(*world.thread, 7, out, &version, 8);
    }
    EXPECT_EQ(outcome, OneSidedReader::Outcome::kOk);
    EXPECT_STREQ(out, "after");
    EXPECT_EQ(version, 4u);
    finished = true;
  };
  world.cluster.sim().Spawn(writer());
  world.cluster.sim().Spawn(sim::RunClosure(app));
  world.cluster.sim().RunFor(10 * kMillisecond);
  EXPECT_TRUE(finished);
  EXPECT_GT(reader.stats().locked_retries, 0u);
}

// Concurrent one-sided readers vs a server-side writer churning the record:
// every accepted value is internally consistent (never the mid-install
// pattern), and versions only move forward.
TEST(RemoteKvTest, ConcurrentWriterNeverYieldsTornValue) {
  RemoteKvWorld world;
  char value[16] = {};
  std::memset(value, 1, sizeof(value));
  ASSERT_TRUE(world.store.Insert(3, value));
  OneSidedReader reader(*world.conn, world.cluster.mem(1), 16);
  world.Publish(reader, {3});
  uint64_t record = 0;
  ASSERT_TRUE(world.store.Get(3, nullptr, nullptr, &record));

  // Writer: every 5 us, lock + scribble garbage + hold 2 us + commit a
  // fresh all-bytes-equal pattern.
  auto writer = [&]() -> sim::Proc {
    for (int round = 2; round < 60; ++round) {
      co_await sim::Delay(world.cluster.sim(), 3 * kMicrosecond);
      FLOCK_CHECK(world.store.TryLock(3, nullptr, nullptr));
      char garbage[16];
      std::memset(garbage, 0xEE, sizeof(garbage));
      world.cluster.mem(0).Write(record + 8, garbage, 16);
      co_await sim::Delay(world.cluster.sim(), 2 * kMicrosecond);
      char next[16];
      std::memset(next, round & 0x7F, sizeof(next));
      FLOCK_CHECK(world.store.UpdateAndUnlock(3, next));
    }
  };

  int accepted = 0;
  uint64_t last_version = 0;
  auto reads = [&]() -> sim::Co<void> {
    for (int i = 0; i < 200; ++i) {
      char out[16] = {};
      uint64_t version = 0;
      const auto outcome =
          co_await reader.Get(*world.thread, 3, out, &version, 2);
      if (outcome == OneSidedReader::Outcome::kOk) {
        EXPECT_EQ(version & kLockBit, 0u);
        EXPECT_GE(version, last_version) << "version went backwards";
        last_version = version;
        for (int b = 1; b < 16; ++b) {
          EXPECT_EQ(out[b], out[0]) << "torn value escaped validation";
        }
        EXPECT_NE(static_cast<uint8_t>(out[0]), 0xEE)
            << "mid-install garbage escaped validation";
        ++accepted;
      }
    }
  };
  world.cluster.sim().Spawn(writer());
  world.cluster.sim().Spawn(sim::RunClosure(reads));
  world.cluster.sim().RunFor(20 * kMillisecond);
  EXPECT_GT(accepted, 100);
  // The schedule is engineered to collide: validation must actually have
  // rejected some attempts.
  EXPECT_GT(reader.stats().locked_retries + reader.stats().version_retries +
                reader.stats().contended,
            0u);
}

}  // namespace
}  // namespace flock::kv
