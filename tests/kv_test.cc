// Unit tests for the MICA-style KV store: CRUD, OCC lock/version protocol,
// replica apply, and stable version addresses.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/kv/kvstore.h"

namespace flock::kv {
namespace {

class KvTest : public ::testing::Test {
 protected:
  KvTest() : store_(mem_, 1024, 16) {}

  fabric::MemorySpace mem_;
  KvStore store_;
};

TEST_F(KvTest, InsertAndGet) {
  const char value[16] = "hello-value";
  ASSERT_TRUE(store_.Insert(42, value));
  char out[16] = {};
  uint64_t version = 0, addr = 0;
  ASSERT_TRUE(store_.Get(42, out, &version, &addr));
  EXPECT_STREQ(out, "hello-value");
  EXPECT_EQ(version, 2u);
  EXPECT_NE(addr, 0u);
}

TEST_F(KvTest, DuplicateInsertRejected) {
  const char value[16] = "v";
  ASSERT_TRUE(store_.Insert(1, value));
  EXPECT_FALSE(store_.Insert(1, value));
  EXPECT_EQ(store_.size(), 1u);
}

TEST_F(KvTest, MissingKeyGetFails) {
  uint64_t version = 0;
  EXPECT_FALSE(store_.Get(999, nullptr, &version, nullptr));
}

TEST_F(KvTest, LockBlocksReadersAndSecondLocker) {
  const char value[16] = "locked";
  ASSERT_TRUE(store_.Insert(7, value));
  uint64_t version = 0;
  ASSERT_TRUE(store_.TryLock(7, nullptr, &version));
  EXPECT_EQ(version, 2u);
  // OCC readers see the lock and fail.
  EXPECT_FALSE(store_.Get(7, nullptr, nullptr, nullptr));
  // Second lock attempt fails.
  EXPECT_FALSE(store_.TryLock(7, nullptr, nullptr));
  // Abort path: unlock without version bump.
  ASSERT_TRUE(store_.Unlock(7));
  ASSERT_TRUE(store_.Get(7, nullptr, &version, nullptr));
  EXPECT_EQ(version, 2u);
}

TEST_F(KvTest, CommitBumpsVersion) {
  const char v1[16] = "aaaa";
  const char v2[16] = "bbbb";
  ASSERT_TRUE(store_.Insert(5, v1));
  ASSERT_TRUE(store_.TryLock(5, nullptr, nullptr));
  ASSERT_TRUE(store_.UpdateAndUnlock(5, v2));
  char out[16] = {};
  uint64_t version = 0;
  ASSERT_TRUE(store_.Get(5, out, &version, nullptr));
  EXPECT_STREQ(out, "bbbb");
  EXPECT_EQ(version, 4u);  // 2 -> 4
}

TEST_F(KvTest, VersionAddrIsStableAcrossUpdates) {
  const char value[16] = "x";
  ASSERT_TRUE(store_.Insert(3, value));
  uint64_t addr1 = 0, addr2 = 0;
  ASSERT_TRUE(store_.Get(3, nullptr, nullptr, &addr1));
  ASSERT_TRUE(store_.TryLock(3, nullptr, nullptr));
  ASSERT_TRUE(store_.UpdateAndUnlock(3, value));
  ASSERT_TRUE(store_.Get(3, nullptr, nullptr, &addr2));
  EXPECT_EQ(addr1, addr2);
  // And the version word is readable directly from node memory (this is what
  // a remote one-sided validation read sees).
  uint64_t raw = 0;
  mem_.Read(addr1, &raw, 8);
  EXPECT_EQ(raw, 4u);
}

TEST_F(KvTest, ReplicaApplyInstallsVersionAndValue) {
  const char v1[16] = "old";
  const char v2[16] = "new";
  ASSERT_TRUE(store_.Insert(8, v1));
  ASSERT_TRUE(store_.ReplicaApply(8, 10, v2));
  char out[16] = {};
  uint64_t version = 0;
  ASSERT_TRUE(store_.Get(8, out, &version, nullptr));
  EXPECT_STREQ(out, "new");
  EXPECT_EQ(version, 10u);
}

TEST_F(KvTest, ManyKeysSurviveProbing) {
  char value[16];
  for (uint64_t k = 0; k < 700; ++k) {
    std::memcpy(value, &k, 8);
    ASSERT_TRUE(store_.Insert(k * 977 + 13, value));
  }
  EXPECT_EQ(store_.size(), 700u);
  for (uint64_t k = 0; k < 700; ++k) {
    char out[16] = {};
    ASSERT_TRUE(store_.Get(k * 977 + 13, out, nullptr, nullptr));
    uint64_t got = 0;
    std::memcpy(&got, out, 8);
    EXPECT_EQ(got, k);
  }
}

TEST_F(KvTest, SpansCoverRecords) {
  const char value[16] = "z";
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(store_.Insert(k, value));
  }
  ASSERT_FALSE(store_.spans().empty());
  uint64_t addr = 0;
  ASSERT_TRUE(store_.Get(50, nullptr, nullptr, &addr));
  bool covered = false;
  for (const auto& span : store_.spans()) {
    covered |= (addr >= span.addr && addr + 8 <= span.addr + span.length);
  }
  EXPECT_TRUE(covered);
}

}  // namespace
}  // namespace flock::kv
