// Batched verbs tests: PostSendBatch all-or-nothing semantics (a doomed WR
// mid-batch must not leave earlier WRs silently posted) and vectorized CQ
// draining (PollBatch must see exactly the completion sequence — including
// the position of error CQEs from the fault injector — that a one-at-a-time
// Poll loop would).
#include <gtest/gtest.h>

#include <vector>

#include "src/verbs/device.h"

namespace flock::verbs {
namespace {

TEST(CqBatchTest, PollBatchDrainsInPushOrder) {
  Cq cq;
  for (uint64_t i = 0; i < 10; ++i) {
    Completion wc;
    wc.wr_id = 100 + i;
    wc.status = WcStatus::kSuccess;
    cq.Push(wc);
  }

  Completion out[4];
  // Partial batches drain front-to-back without skipping or reordering.
  ASSERT_EQ(cq.PollBatch(out, 4), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i].wr_id, 100 + i);
  }
  ASSERT_EQ(cq.PollBatch(out, 4), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i].wr_id, 104 + i);
  }
  // Final short batch, then empty.
  ASSERT_EQ(cq.PollBatch(out, 4), 2u);
  EXPECT_EQ(out[0].wr_id, 108u);
  EXPECT_EQ(out[1].wr_id, 109u);
  EXPECT_EQ(cq.PollBatch(out, 4), 0u);
  EXPECT_EQ(cq.polled(), 10u);
}

TEST(CqBatchTest, PollBatchAgreesWithSinglePoll) {
  Cq batched;
  Cq single;
  for (uint64_t i = 0; i < 7; ++i) {
    Completion wc;
    wc.wr_id = i;
    wc.status = (i == 3) ? WcStatus::kRnrError : WcStatus::kSuccess;
    batched.Push(wc);
    single.Push(wc);
  }

  std::vector<Completion> via_batch;
  Completion out[3];
  for (size_t n; (n = batched.PollBatch(out, 3)) > 0;) {
    via_batch.insert(via_batch.end(), out, out + n);
  }
  std::vector<Completion> via_poll;
  Completion wc;
  while (single.Poll(&wc)) {
    via_poll.push_back(wc);
  }

  ASSERT_EQ(via_batch.size(), via_poll.size());
  for (size_t i = 0; i < via_poll.size(); ++i) {
    EXPECT_EQ(via_batch[i].wr_id, via_poll[i].wr_id);
    EXPECT_EQ(via_batch[i].status, via_poll[i].status);
  }
}

TEST(CqBatchTest, PostSendBatchRejectsWholeBatchOnDoomedWr) {
  Cluster cluster(Cluster::Config{.num_nodes = 2});
  Cq* scq = cluster.device(0).CreateCq();
  Cq* rcq = cluster.device(0).CreateCq();
  Qp* qp = cluster.device(0).CreateQp(QpType::kUd, scq, rcq);

  const uint64_t buf = cluster.mem(0).Alloc(256);
  SendWr ok;
  ok.opcode = Opcode::kSend;
  ok.local_addr = buf;
  ok.length = 32;
  ok.dest_node = 1;
  ok.dest_qpn = 1;
  SendWr doomed = ok;
  doomed.opcode = Opcode::kWrite;  // illegal on UD (Table 1)

  // Doomed WR mid-batch: [ok, doomed, ok] must enqueue NOTHING — the batch
  // is validated before any WR is accepted, and the failure index points at
  // the offender.
  SendWr wrs[3] = {ok, doomed, ok};
  size_t failed_index = 99;
  EXPECT_EQ(qp->PostSendBatch(wrs, 3, &failed_index), WcStatus::kUnsupportedOp);
  EXPECT_EQ(failed_index, 1u);
  EXPECT_EQ(qp->send_queue_depth(), 0u);

  // Nothing was posted, so nothing completes.
  cluster.sim().Run();
  Completion wc;
  EXPECT_FALSE(scq->Poll(&wc));

  // The same batch without the offender is accepted whole.
  SendWr good[2] = {ok, ok};
  EXPECT_EQ(qp->PostSendBatch(good, 2, &failed_index), WcStatus::kSuccess);
  EXPECT_EQ(qp->send_queue_depth(), 2u);
}

TEST(CqBatchTest, PostSendBatchRejectsWholeBatchOnErroredQp) {
  Cluster cluster(Cluster::Config{.num_nodes = 2});
  Cq* scq0 = cluster.device(0).CreateCq();
  Cq* rcq0 = cluster.device(0).CreateCq();
  Cq* scq1 = cluster.device(1).CreateCq();
  Cq* rcq1 = cluster.device(1).CreateCq();
  auto [qp0, qp1] = cluster.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);
  (void)qp1;

  cluster.fault().KillQp(0, qp0->qpn());
  cluster.sim().Run();
  ASSERT_TRUE(qp0->in_error());

  const uint64_t src = cluster.mem(0).Alloc(64);
  const uint64_t dst = cluster.mem(1).Alloc(64);
  Mr mr = cluster.device(1).RegisterMr(dst, 64);
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.local_addr = src;
  wr.length = 8;
  wr.remote_addr = dst;
  wr.rkey = mr.rkey;

  SendWr wrs[2] = {wr, wr};
  size_t failed_index = 99;
  EXPECT_EQ(qp0->PostSendBatch(wrs, 2, &failed_index), WcStatus::kQpError);
  EXPECT_EQ(failed_index, 0u);
  EXPECT_EQ(qp0->send_queue_depth(), 0u);
}

// Runs a fixed RC workload — five signaled writes posted as two batches with
// one transient error armed between them — and returns the sender's CQ. CQE
// order is the NIC pipeline's completion order (not post order: the first WR
// pays the QP-state-cache miss and can be overtaken), but the simulation is
// deterministic, so two runs produce identical CQ contents.
struct ErrorWorld {
  ErrorWorld() : cluster(Cluster::Config{.num_nodes = 2}) {
    scq0 = cluster.device(0).CreateCq();
    Cq* rcq0 = cluster.device(0).CreateCq();
    Cq* scq1 = cluster.device(1).CreateCq();
    Cq* rcq1 = cluster.device(1).CreateCq();
    auto [qp0, qp1] = cluster.ConnectRc(0, scq0, rcq0, 1, scq1, rcq1);
    (void)qp1;

    const uint64_t src = cluster.mem(0).Alloc(64);
    const uint64_t dst = cluster.mem(1).Alloc(64);
    Mr mr = cluster.device(1).RegisterMr(dst, 64);
    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.local_addr = src;
    wr.length = 8;
    wr.remote_addr = dst;
    wr.rkey = mr.rkey;
    wr.signaled = true;

    SendWr first[2] = {wr, wr};
    first[0].wr_id = 0;
    first[1].wr_id = 1;
    FLOCK_CHECK(qp0->PostSendBatch(first, 2) == WcStatus::kSuccess);
    cluster.fault().InjectSendErrors(0, qp0->qpn(), WcStatus::kRnrError, 1);
    SendWr rest[3] = {wr, wr, wr};
    rest[0].wr_id = 2;
    rest[1].wr_id = 3;
    rest[2].wr_id = 4;
    FLOCK_CHECK(qp0->PostSendBatch(rest, 3) == WcStatus::kSuccess);
    cluster.sim().Run();
  }

  Cluster cluster;
  Cq* scq0 = nullptr;
};

TEST(CqBatchTest, PollBatchSeesSameErrorCqeSequenceAsSinglePoll) {
  // Two identical deterministic worlds: drain one CQ one completion at a
  // time, the other in vectorized chunks. The sequences — including where
  // the injected error CQE sits among the successes — must be identical.
  ErrorWorld reference;
  ErrorWorld batched;

  std::vector<Completion> via_poll;
  Completion wc;
  while (reference.scq0->Poll(&wc)) {
    via_poll.push_back(wc);
  }

  std::vector<Completion> via_batch;
  Completion wcs[3];
  for (size_t n; (n = batched.scq0->PollBatch(wcs, 3)) > 0;) {
    via_batch.insert(via_batch.end(), wcs, wcs + n);
  }

  ASSERT_EQ(via_poll.size(), 5u);
  ASSERT_EQ(via_batch.size(), 5u);
  size_t errors = 0;
  for (size_t i = 0; i < via_poll.size(); ++i) {
    EXPECT_EQ(via_batch[i].wr_id, via_poll[i].wr_id) << "CQE " << i;
    EXPECT_EQ(via_batch[i].status, via_poll[i].status) << "CQE " << i;
    errors += via_batch[i].status == WcStatus::kRnrError ? 1 : 0;
  }
  EXPECT_EQ(errors, 1u);
  EXPECT_EQ(batched.cluster.fault().stats().injected_errors, 1u);
}

}  // namespace
}  // namespace flock::verbs
