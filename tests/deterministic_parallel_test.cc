// The sharded kernel's determinism contract (DESIGN.md §12): the same seed
// and workload must execute the exact same trace — event counts, RPC
// completions, kernel delivery counters, per-node device counters and final
// clock — at every shard count and every worker-pool size. These tests run
// the same worlds at 1/2/4/8 shards (and with a real multi-thread pool) and
// compare fingerprints, first at the raw kernel level (hand-built procs
// hopping between nodes) and then through the full Flock stack.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/flock/flock.h"

namespace flock {
namespace {

// ---------------------------------------------------------------------------
// Kernel-level: hand-built procs exercising hops, delays and spawn ordering
// ---------------------------------------------------------------------------

struct KernelWorld {
  sim::Simulator sim;
  std::vector<uint64_t> node_log_hash;  // per-node order-sensitive digest
  std::vector<uint64_t> node_events;
};

// Each worker lives on `home`, does some same-node work, then ping-pongs to a
// peer node and back. The log hash folds (now, node, step) at every resume,
// so any reordering — across nodes, across shards, across equal timestamps —
// changes the fingerprint.
sim::Proc KernelWorker(KernelWorld* w, int home, int peer, Nanos hop,
                       int rounds) {
  bench::TraceHash h;
  for (int r = 0; r < rounds; ++r) {
    co_await sim::Delay(w->sim, (r % 3) * 7);
    h.Mix(static_cast<uint64_t>(w->sim.Now())).Mix(static_cast<uint64_t>(home));
    w->node_events[static_cast<size_t>(home)] += 1;
    co_await sim::HopToNode(w->sim, peer, hop);
    h.Mix(static_cast<uint64_t>(w->sim.Now())).Mix(static_cast<uint64_t>(peer));
    w->node_events[static_cast<size_t>(peer)] += 1;
    co_await sim::HopToNode(w->sim, home, hop + (r % 2));
  }
  w->node_log_hash[static_cast<size_t>(home)] ^= h.value();
}

struct KernelResult {
  uint64_t events = 0;
  uint64_t resumes = 0;
  Nanos end = 0;
  uint64_t hash = 0;
};

KernelResult RunKernelWorld(int num_nodes, int num_shards, int num_workers) {
  constexpr Nanos kHop = 100;
  KernelWorld w;
  w.node_log_hash.assign(static_cast<size_t>(num_nodes), 0);
  w.node_events.assign(static_cast<size_t>(num_nodes), 0);
  std::vector<int> node_shard(static_cast<size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    node_shard[static_cast<size_t>(n)] = n % num_shards;
  }
  w.sim.ConfigureSharding(num_shards, node_shard, kHop, num_workers);
  // Several workers per node, crossing shard boundaries in both directions,
  // with colliding timestamps (same hop delay from the same start time).
  for (int n = 0; n < num_nodes; ++n) {
    for (int k = 0; k < 3; ++k) {
      w.sim.Spawn(KernelWorker(&w, n, (n + 1 + k) % num_nodes, kHop, 40), n);
    }
  }
  KernelResult r;
  r.events = w.sim.Run();
  r.resumes = w.sim.resumes();
  r.end = w.sim.Now();
  bench::TraceHash h;
  for (int n = 0; n < num_nodes; ++n) {
    h.Mix(w.node_log_hash[static_cast<size_t>(n)])
        .Mix(w.node_events[static_cast<size_t>(n)]);
  }
  r.hash = h.value();
  return r;
}

TEST(DeterministicParallelTest, KernelTraceIdenticalAcrossShardCounts) {
  const KernelResult base = RunKernelWorld(8, 1, 0);
  EXPECT_GT(base.events, 0u);
  for (const int shards : {2, 4, 8}) {
    const KernelResult r = RunKernelWorld(8, shards, 0);
    EXPECT_EQ(base.events, r.events) << "shards=" << shards;
    EXPECT_EQ(base.resumes, r.resumes) << "shards=" << shards;
    EXPECT_EQ(base.end, r.end) << "shards=" << shards;
    EXPECT_EQ(base.hash, r.hash) << "shards=" << shards;
  }
}

TEST(DeterministicParallelTest, KernelTraceIndependentOfWorkerPoolSize) {
  const KernelResult base = RunKernelWorld(8, 4, 1);
  // Real OS threads: 2 and 4 workers must replay the single-threaded trace.
  for (const int workers : {2, 4}) {
    const KernelResult r = RunKernelWorld(8, 4, workers);
    EXPECT_EQ(base.events, r.events) << "workers=" << workers;
    EXPECT_EQ(base.hash, r.hash) << "workers=" << workers;
  }
}

// ---------------------------------------------------------------------------
// Full-stack: the perf_smoke world through the Flock runtime
// ---------------------------------------------------------------------------

sim::Proc EchoWorker(Connection* conn, FlockThread* thread, uint64_t* done) {
  std::vector<uint8_t> payload(64, 0x5a);
  std::vector<uint8_t> resp;
  for (;;) {
    co_await conn->Call(*thread, 1, payload.data(), 64, &resp);
    (*done)++;
  }
}

struct StackResult {
  uint64_t events = 0;
  uint64_t rpcs = 0;
  uint64_t resumes = 0;
  uint64_t direct_resumes = 0;
  uint64_t coalesced_wakes = 0;
  uint64_t hash = 0;
};

StackResult RunStack(int clients, int threads, int shards, int workers) {
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 1 + clients,
                                                .cores_per_node = 34,
                                                .num_shards = shards,
                                                .num_workers = workers});
  FlockConfig config;
  FlockRuntime server(cluster, 0, config);
  server.RegisterHandler(1, [](const uint8_t* req, uint32_t req_len,
                               uint8_t* resp, uint32_t, Nanos* cpu) -> uint32_t {
    *cpu = 50;
    std::memcpy(resp, req, req_len);
    return req_len;
  });
  server.StartServer(4);

  std::vector<std::unique_ptr<FlockRuntime>> client_rts;
  std::vector<uint64_t> done(static_cast<size_t>(clients), 0);
  for (int c = 0; c < clients; ++c) {
    auto rt = std::make_unique<FlockRuntime>(cluster, 1 + c, config);
    rt->StartClient();
    Connection* conn = rt->Connect(server, static_cast<uint32_t>(threads));
    for (int t = 0; t < threads; ++t) {
      cluster.sim().Spawn(
          EchoWorker(conn, rt->CreateThread(t), &done[static_cast<size_t>(c)]),
          /*node=*/1 + c);
    }
    client_rts.push_back(std::move(rt));
  }
  cluster.sim().RunFor(2 * kMillisecond);

  StackResult r;
  r.events = cluster.sim().events_processed();
  r.resumes = cluster.sim().resumes();
  r.direct_resumes = cluster.sim().direct_resumes();
  r.coalesced_wakes = cluster.sim().coalesced_wakes();
  bench::TraceHash h;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    const verbs::Device::Stats& d = cluster.device(n).stats();
    h.Mix(d.tx_msgs).Mix(d.tx_bytes).Mix(d.tx_wire_bytes).Mix(d.tx_packets);
    h.Mix(d.rx_msgs).Mix(d.rx_packets).Mix(d.cqes_dma_ed);
  }
  for (const uint64_t dn : done) {
    r.rpcs += dn;
    h.Mix(dn);
  }
  r.hash = h.value();
  return r;
}

TEST(DeterministicParallelTest, FlockStackTraceIdenticalAcrossShardCounts) {
  // 8 nodes (server + 7 clients) so 8 shards still map one node per shard.
  const StackResult base = RunStack(7, 2, 1, 0);
  EXPECT_GT(base.rpcs, 1000u);
  for (const int shards : {2, 4, 8}) {
    const StackResult r = RunStack(7, 2, shards, 0);
    EXPECT_EQ(base.events, r.events) << "shards=" << shards;
    EXPECT_EQ(base.rpcs, r.rpcs) << "shards=" << shards;
    EXPECT_EQ(base.resumes, r.resumes) << "shards=" << shards;
    EXPECT_EQ(base.direct_resumes, r.direct_resumes) << "shards=" << shards;
    EXPECT_EQ(base.coalesced_wakes, r.coalesced_wakes) << "shards=" << shards;
    EXPECT_EQ(base.hash, r.hash) << "shards=" << shards;
  }
}

TEST(DeterministicParallelTest, FlockStackTraceIdenticalWithWorkerThreads) {
  const StackResult base = RunStack(3, 2, 4, 1);
  const StackResult threaded = RunStack(3, 2, 4, 4);
  EXPECT_EQ(base.events, threaded.events);
  EXPECT_EQ(base.rpcs, threaded.rpcs);
  EXPECT_EQ(base.hash, threaded.hash);
  EXPECT_GT(base.rpcs, 0u);
}

}  // namespace
}  // namespace flock
