// Unit tests for src/common: RNG, Zipf, histogram, streaming stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rand.h"
#include "src/common/stats.h"
#include "src/common/units.h"

namespace flock {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.NextInRange(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformityRough) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.NextBelow(10)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);
  }
}

TEST(ZipfTest, SkewConcentratesOnHotItems) {
  ZipfGenerator zipf(10000, 0.99, 5);
  std::map<uint64_t, int> counts;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    counts[zipf.Next()]++;
  }
  // Item 0 must be by far the most popular under theta=0.99.
  int max_count = 0;
  uint64_t max_item = 0;
  for (const auto& [item, count] : counts) {
    if (count > max_count) {
      max_count = count;
      max_item = item;
    }
  }
  EXPECT_EQ(max_item, 0u);
  EXPECT_GT(max_count, kDraws / 20);
}

TEST(ZipfTest, StaysInDomain) {
  ZipfGenerator zipf(100, 0.9, 11);
  for (int i = 0; i < 50000; ++i) {
    EXPECT_LT(zipf.Next(), 100u);
  }
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Median(), 0);
  EXPECT_EQ(h.P99(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234);
  EXPECT_EQ(h.max(), 1234);
  // Within bucket resolution (~1.6%).
  EXPECT_NEAR(h.Median(), 1234, 25);
}

TEST(HistogramTest, QuantilesOfUniformRamp) {
  Histogram h;
  for (int64_t v = 1; v <= 100000; ++v) {
    h.Record(v);
  }
  EXPECT_NEAR(static_cast<double>(h.Median()), 50000.0, 50000.0 * 0.03);
  EXPECT_NEAR(static_cast<double>(h.P99()), 99000.0, 99000.0 * 0.03);
  EXPECT_NEAR(h.Mean(), 50000.5, 1.0);
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (int64_t v = 0; v < 64; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 63);
  EXPECT_NEAR(h.Median(), 32, 1);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  for (int i = 0; i < 1000; ++i) {
    a.Record(100);
    b.Record(10000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 2000u);
  EXPECT_EQ(a.min(), 100);
  EXPECT_EQ(a.max(), 10000);
  // Median falls between the two spikes.
  EXPECT_GE(a.Median(), 100);
  EXPECT_LE(a.Median(), 10100);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Median(), 0);
}

TEST(HistogramTest, LargeValuesDoNotOverflow) {
  Histogram h;
  h.Record(int64_t{1} << 39);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.ValueAtQuantile(1.0), 0);
}

TEST(WindowedMedianTest, EmptyReturnsFallback) {
  WindowedMedian<uint32_t, 8> m;
  EXPECT_EQ(m.Median(99), 99u);
}

TEST(WindowedMedianTest, ExactMedianSmall) {
  WindowedMedian<uint32_t, 8> m;
  m.Record(5);
  m.Record(1);
  m.Record(9);
  EXPECT_EQ(m.Median(), 5u);
}

TEST(WindowedMedianTest, WindowSlides) {
  WindowedMedian<uint32_t, 4> m;
  for (uint32_t v : {1u, 1u, 1u, 1u}) {
    m.Record(v);
  }
  for (uint32_t v : {100u, 100u, 100u, 100u}) {
    m.Record(v);
  }
  EXPECT_EQ(m.Median(), 100u);
}

TEST(WindowedMedianTest, CachedMedianInvalidatedByRecord) {
  // Median() caches its result between Record() calls (it runs inside the
  // QP scheduler's per-interval loop); a new sample must invalidate it.
  WindowedMedian<uint32_t, 8> m;
  m.Record(10);
  EXPECT_EQ(m.Median(), 10u);
  EXPECT_EQ(m.Median(), 10u);  // served from cache
  m.Record(100);
  m.Record(100);
  EXPECT_EQ(m.Median(), 100u);  // cache dropped, recomputed over {10,100,100}
}

TEST(WindowedMedianTest, CachedMedianInvalidatedByReset) {
  WindowedMedian<uint32_t, 8> m;
  m.Record(42);
  EXPECT_EQ(m.Median(), 42u);
  m.Reset();
  EXPECT_TRUE(m.empty());
  // A stale cached value must not survive the reset.
  EXPECT_EQ(m.Median(7), 7u);
  m.Record(3);
  EXPECT_EQ(m.Median(), 3u);
}

TEST(IntervalCounterTest, DeltaSnapshots) {
  IntervalCounter c;
  c.Add(10);
  EXPECT_EQ(c.Delta(), 10u);
  EXPECT_EQ(c.Delta(), 0u);
  c.Add(7);
  EXPECT_EQ(c.PeekDelta(), 7u);
  EXPECT_EQ(c.Delta(), 7u);
  EXPECT_EQ(c.total(), 17u);
}

TEST(UnitsTest, SerializationDelayRoundsUp) {
  // 100 Gbps = 12.5 B/ns: 25 bytes take exactly 2 ns.
  EXPECT_EQ(SerializationDelay(25, GbpsToBytesPerNano(100.0)), 2);
  // 26 bytes take 2.08 ns → 3 ns.
  EXPECT_EQ(SerializationDelay(26, GbpsToBytesPerNano(100.0)), 3);
  EXPECT_EQ(SerializationDelay(0, GbpsToBytesPerNano(100.0)), 0);
}

}  // namespace
}  // namespace flock
