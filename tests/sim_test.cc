// Unit tests for the discrete-event kernel: clock, ordering, coroutine tasks,
// conditions, FIFO servers, semaphores, cores.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/cpu.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace flock::sim {
namespace {

Proc RecordAt(Simulator& sim, Nanos delay, std::vector<Nanos>& out) {
  co_await Delay(sim, delay);
  out.push_back(sim.Now());
}

TEST(SimulatorTest, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<Nanos> times;
  sim.Spawn(RecordAt(sim, 50, times));
  sim.Spawn(RecordAt(sim, 10, times));
  sim.Spawn(RecordAt(sim, 30, times));
  sim.Run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], 10);
  EXPECT_EQ(times[1], 30);
  EXPECT_EQ(times[2], 50);
  EXPECT_EQ(sim.Now(), 50);
}

TEST(SimulatorTest, EqualTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  auto mk = [&](int id) -> Proc {
    co_await Delay(sim, 100);
    order.push_back(id);
  };
  for (int i = 0; i < 5; ++i) {
    sim.Spawn(mk(i));
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<Nanos> times;
  sim.Spawn(RecordAt(sim, 10, times));
  sim.Spawn(RecordAt(sim, 1000, times));
  sim.RunUntil(500);
  EXPECT_EQ(times.size(), 1u);
  EXPECT_EQ(sim.Now(), 500);
  sim.Run();
  EXPECT_EQ(times.size(), 2u);
  EXPECT_EQ(sim.Now(), 1000);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  std::vector<Nanos> times;
  sim.Spawn(RecordAt(sim, 100, times));
  sim.RunFor(60);
  EXPECT_EQ(sim.Now(), 60);
  sim.RunFor(60);
  EXPECT_EQ(sim.Now(), 120);
  EXPECT_EQ(times.size(), 1u);
}

Proc Chain(Simulator& sim, std::vector<std::string>& log);
Co<int> Inner(Simulator& sim, std::vector<std::string>& log);
Co<int> Middle(Simulator& sim, std::vector<std::string>& log);

Co<int> Inner(Simulator& sim, std::vector<std::string>& log) {
  log.push_back("inner-start");
  co_await Delay(sim, 5);
  log.push_back("inner-end");
  co_return 7;
}

Co<int> Middle(Simulator& sim, std::vector<std::string>& log) {
  log.push_back("middle-start");
  int v = co_await Inner(sim, log);
  co_return v * 2;
}

Proc Chain(Simulator& sim, std::vector<std::string>& log) {
  int v = co_await Middle(sim, log);
  log.push_back("got " + std::to_string(v));
  co_return;
}

TEST(TaskTest, NestedCoReturnsValuesThroughChain) {
  Simulator sim;
  std::vector<std::string> log;
  sim.Spawn(Chain(sim, log));
  sim.Run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[3], "got 14");
  EXPECT_EQ(sim.Now(), 5);
}

Co<void> VoidChild(Simulator& sim, int& counter) {
  co_await Delay(sim, 1);
  ++counter;
}

Proc VoidParent(Simulator& sim, int& counter) {
  co_await VoidChild(sim, counter);
  co_await VoidChild(sim, counter);
  ++counter;
}

TEST(TaskTest, VoidCoRuns) {
  Simulator sim;
  int counter = 0;
  sim.Spawn(VoidParent(sim, counter));
  sim.Run();
  EXPECT_EQ(counter, 3);
  EXPECT_EQ(sim.Now(), 2);
}

TEST(SimulatorTest, ShutdownDestroysSuspendedProcs) {
  Simulator sim;
  int done = 0;
  auto waiter = [&]() -> Proc {
    co_await Delay(sim, 1000000);
    ++done;
  };
  sim.Spawn(waiter());
  sim.Spawn(waiter());
  sim.RunFor(10);
  EXPECT_EQ(sim.live_proc_count(), 2u);
  sim.Shutdown();
  EXPECT_EQ(sim.live_proc_count(), 0u);
  EXPECT_EQ(done, 0);
}

TEST(SimulatorTest, FinishedProcsAreDeregistered) {
  Simulator sim;
  auto quick = [&]() -> Proc {
    co_await Delay(sim, 1);
    co_return;
  };
  sim.Spawn(quick());
  sim.Run();
  EXPECT_EQ(sim.live_proc_count(), 0u);
}

TEST(ConditionTest, NotifyAllWakesEveryWaiter) {
  Simulator sim;
  Condition cond(sim);
  int woke = 0;
  auto waiter = [&]() -> Proc {
    co_await cond.Wait();
    ++woke;
  };
  auto notifier = [&]() -> Proc {
    co_await Delay(sim, 10);
    cond.NotifyAll();
  };
  sim.Spawn(waiter());
  sim.Spawn(waiter());
  sim.Spawn(waiter());
  sim.Spawn(notifier());
  sim.Run();
  EXPECT_EQ(woke, 3);
  EXPECT_EQ(sim.Now(), 10);
}

TEST(ConditionTest, NotifyOneWakesOldestWaiter) {
  Simulator sim;
  Condition cond(sim);
  std::vector<int> order;
  auto waiter = [&](int id) -> Proc {
    co_await cond.Wait();
    order.push_back(id);
  };
  sim.Spawn(waiter(1));
  sim.Spawn(waiter(2));
  auto notifier = [&]() -> Proc {
    co_await Delay(sim, 5);
    cond.NotifyOne();
    co_await Delay(sim, 5);
    cond.NotifyOne();
  };
  sim.Spawn(notifier());
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(FifoServerTest, SerializesOverlappingRequests) {
  Simulator sim;
  FifoServer server(sim);
  std::vector<Nanos> done_at;
  auto client = [&](Nanos duration) -> Proc {
    co_await server.Serve(duration);
    done_at.push_back(sim.Now());
  };
  sim.Spawn(client(100));
  sim.Spawn(client(50));
  sim.Spawn(client(25));
  sim.Run();
  ASSERT_EQ(done_at.size(), 3u);
  EXPECT_EQ(done_at[0], 100);
  EXPECT_EQ(done_at[1], 150);
  EXPECT_EQ(done_at[2], 175);
  EXPECT_EQ(server.busy_time(), 175);
  EXPECT_EQ(server.served(), 3u);
}

TEST(FifoServerTest, IdleServerStartsImmediately) {
  Simulator sim;
  FifoServer server(sim);
  Nanos done = -1;
  auto client = [&]() -> Proc {
    co_await Delay(sim, 500);
    co_await server.Serve(10);
    done = sim.Now();
  };
  sim.Spawn(client());
  sim.Run();
  EXPECT_EQ(done, 510);
}

TEST(FifoServerTest, ZeroDurationServes) {
  Simulator sim;
  FifoServer server(sim);
  int count = 0;
  auto client = [&]() -> Proc {
    co_await server.Serve(0);
    ++count;
  };
  sim.Spawn(client());
  sim.Spawn(client());
  sim.Run();
  EXPECT_EQ(count, 2);
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 2);
  int concurrent = 0;
  int max_concurrent = 0;
  auto client = [&]() -> Proc {
    co_await sem.Acquire();
    ++concurrent;
    max_concurrent = std::max(max_concurrent, concurrent);
    co_await Delay(sim, 100);
    --concurrent;
    sem.Release();
  };
  for (int i = 0; i < 6; ++i) {
    sim.Spawn(client());
  }
  sim.Run();
  EXPECT_EQ(max_concurrent, 2);
  EXPECT_EQ(sim.Now(), 300);  // 6 jobs, 2 at a time, 100 each
}

TEST(SemaphoreTest, FifoHandoff) {
  Simulator sim;
  Semaphore sem(sim, 1);
  std::vector<int> order;
  auto client = [&](int id) -> Proc {
    co_await sem.Acquire();
    order.push_back(id);
    co_await Delay(sim, 10);
    sem.Release();
  };
  for (int i = 0; i < 4; ++i) {
    sim.Spawn(client(i));
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(FifoMutexTest, MutualExclusion) {
  Simulator sim;
  FifoMutex mutex(sim);
  bool held = false;
  int violations = 0;
  auto client = [&]() -> Proc {
    co_await mutex.Acquire();
    if (held) {
      ++violations;
    }
    held = true;
    co_await Delay(sim, 7);
    held = false;
    mutex.Release();
  };
  for (int i = 0; i < 10; ++i) {
    sim.Spawn(client());
  }
  sim.Run();
  EXPECT_EQ(violations, 0);
  EXPECT_EQ(sim.Now(), 70);
}

TEST(CpuTest, PinnedThreadsShareCoreFifo) {
  Simulator sim;
  Cpu cpu(sim, 1);
  std::vector<Nanos> done_at;
  auto thread = [&]() -> Proc {
    co_await cpu.core(0).Work(40);
    done_at.push_back(sim.Now());
  };
  sim.Spawn(thread());
  sim.Spawn(thread());
  sim.Run();
  ASSERT_EQ(done_at.size(), 2u);
  EXPECT_EQ(done_at[0], 40);
  EXPECT_EQ(done_at[1], 80);
  EXPECT_EQ(cpu.TotalBusyTime(), 80);
}

TEST(CpuTest, SeparateCoresRunInParallel) {
  Simulator sim;
  Cpu cpu(sim, 2);
  std::vector<Nanos> done_at;
  auto thread = [&](int core) -> Proc {
    co_await cpu.core(core).Work(40);
    done_at.push_back(sim.Now());
  };
  sim.Spawn(thread(0));
  sim.Spawn(thread(1));
  sim.Run();
  ASSERT_EQ(done_at.size(), 2u);
  EXPECT_EQ(done_at[0], 40);
  EXPECT_EQ(done_at[1], 40);
}

TEST(CpuTest, CoreIndexWraps) {
  Simulator sim;
  Cpu cpu(sim, 3);
  EXPECT_EQ(&cpu.core(0), &cpu.core(3));
  EXPECT_EQ(&cpu.core(2), &cpu.core(5));
}

// Determinism: two identical simulations produce identical event counts and
// final clocks.
TEST(SimulatorTest, DeterministicReplay) {
  auto run = [](uint64_t& events, Nanos& end) {
    Simulator sim;
    FifoServer server(sim);
    Condition cond(sim);
    int remaining = 20;
    auto worker = [&](int id) -> Proc {
      for (int i = 0; i < 5; ++i) {
        co_await server.Serve(3 + id % 4);
        co_await Delay(sim, id % 3);
      }
      if (--remaining == 0) {
        cond.NotifyAll();
      }
    };
    for (int i = 0; i < 20; ++i) {
      sim.Spawn(worker(i));
    }
    sim.Run();
    events = sim.events_processed();
    end = sim.Now();
  };
  uint64_t e1, e2;
  Nanos t1, t2;
  run(e1, t1);
  run(e2, t2);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(t1, t2);
}

}  // namespace
}  // namespace flock::sim
