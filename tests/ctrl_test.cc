// Connection control plane tests (DESIGN.md §10): connect/accept handshake,
// QP re-establishment after a kill, membership leave/rejoin with AQP
// repartitioning, elastic lane grow/shrink, and same-seed determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "src/ctrl/control_plane.h"
#include "src/flock/flock.h"
#include "src/verbs/fault.h"

namespace flock {
namespace {

constexpr uint16_t kEchoRpc = 1;

uint32_t EchoHandler(const uint8_t* req, uint32_t len, uint8_t* resp,
                     uint32_t cap, Nanos* cpu) {
  FLOCK_CHECK_LE(len, cap);
  std::memcpy(resp, req, len);
  *cpu = 60;
  return len;
}

// A server plus N-1 clients wired for control-plane testing: clients carry
// rpc_timeout (the reconnect path replays un-acked batches via the retry
// watchdog) and, by default, lane_reconnect.
struct CtrlWorld {
  explicit CtrlWorld(int nodes = 2, FlockConfig server_cfg = FlockConfig{},
                     FlockConfig client_cfg = DefaultClientConfig())
      : cluster(verbs::Cluster::Config{.num_nodes = nodes, .cores_per_node = 8}) {
    server = std::make_unique<FlockRuntime>(cluster, 0, server_cfg);
    server->RegisterHandler(kEchoRpc, EchoHandler);
    server->StartServer(4);
    for (int n = 1; n < nodes; ++n) {
      clients.push_back(std::make_unique<FlockRuntime>(cluster, n, client_cfg));
      clients.back()->StartClient();
    }
  }

  static FlockConfig DefaultClientConfig() {
    FlockConfig cfg;
    cfg.rpc_timeout = 100 * kMicrosecond;
    cfg.max_retries = 5;
    cfg.lane_reconnect = true;
    cfg.reconnect_backoff = 50 * kMicrosecond;
    return cfg;
  }

  verbs::Cluster cluster;
  std::unique_ptr<FlockRuntime> server;
  std::vector<std::unique_ptr<FlockRuntime>> clients;
};

sim::Proc EchoLoop(Connection* conn, FlockThread* thread, int count,
                   int* ok_count, int* fail_count) {
  std::vector<uint8_t> resp;
  for (int i = 0; i < count; ++i) {
    uint64_t payload = static_cast<uint64_t>(i);
    const bool ok =
        co_await conn->Call(*thread, kEchoRpc,
                            reinterpret_cast<const uint8_t*>(&payload), 8, &resp);
    (ok ? *ok_count : *fail_count) += 1;
  }
}

// ---------------------------------------------------------------------------
// Connect/accept handshake
// ---------------------------------------------------------------------------

TEST(CtrlTest, HandshakeWiresLanesAndServesRpcs) {
  CtrlWorld world;
  // Node-id overload: the client knows nothing but the server's node number;
  // QPs, rings, rkeys and credits all arrive through the accept message.
  Connection* conn = world.clients[0]->Connect(/*server_node=*/0, 4);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->num_lanes(), 4u);
  EXPECT_EQ(conn->server_node(), 0);

  Connection::LaneStates states = conn->CountLaneStates();
  EXPECT_EQ(states.healthy, 4u);
  EXPECT_EQ(states.quarantined, 0u);
  EXPECT_EQ(states.retired, 0u);

  const ctrl::ControlPlane::Stats& cp = ctrl::ControlPlane::For(world.cluster).stats();
  EXPECT_GE(cp.calls, 1u);
  EXPECT_EQ(cp.rejected_malformed, 0u);
  EXPECT_EQ(cp.rejected_replay, 0u);

  int ok = 0, fail = 0;
  for (int t = 0; t < 4; ++t) {
    world.cluster.sim().Spawn(
        EchoLoop(conn, world.clients[0]->CreateThread(t), 200, &ok, &fail));
  }
  world.cluster.sim().RunFor(100 * kMillisecond);
  EXPECT_EQ(ok, 4 * 200);
  EXPECT_EQ(fail, 0);
}

// ---------------------------------------------------------------------------
// QP kill → reconnect → full recovery
// ---------------------------------------------------------------------------

TEST(CtrlTest, QpKillReconnectsAndRestoresLane) {
  CtrlWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 4);
  int ok = 0, fail = 0;
  for (int t = 0; t < 4; ++t) {
    world.cluster.sim().Spawn(
        EchoLoop(conn, world.clients[0]->CreateThread(t), 400, &ok, &fail));
  }
  world.cluster.fault().KillQpAt(200 * kMicrosecond, /*node=*/1,
                                 conn->lane(0).qp->qpn());
  world.cluster.sim().RunFor(200 * kMillisecond);

  EXPECT_EQ(ok + fail, 4 * 400);
  EXPECT_EQ(fail, 0) << "retry + reconnect must absorb a single QP kill";
  // Unlike the quarantine-only behaviour (fault_test expects 1 failed lane),
  // the reconnect daemon replaced the QP pair and revived the lane.
  EXPECT_EQ(conn->num_failed_lanes(), 0u);
  EXPECT_GE(conn->lane_reconnects(), 1u);
  Connection::LaneStates states = conn->CountLaneStates();
  EXPECT_EQ(states.healthy, 4u);
  EXPECT_EQ(states.quarantined, 0u);
  EXPECT_EQ(states.reconnecting, 0u);
  EXPECT_GE(world.clients[0]->client_stats().lane_reconnects, 1u);
  EXPECT_GE(world.server->server_stats().lane_reconnects, 1u);
  // Quarantine was still recorded before the revival.
  EXPECT_GE(world.clients[0]->client_stats().lane_failures, 1u);
}

TEST(CtrlTest, RepeatedKillsOnSameLaneKeepRecovering) {
  CtrlWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 2);
  int ok = 0, fail = 0;
  // Enough traffic that the handle is still busy when the second kill lands
  // (an idle lane posts no sends, so a kill would go unnoticed until used).
  for (int t = 0; t < 2; ++t) {
    world.cluster.sim().Spawn(
        EchoLoop(conn, world.clients[0]->CreateThread(t), 8000, &ok, &fail));
  }
  // First kill, let the lane reconnect, then kill the lane the migrated
  // threads are now driving (an idle lane's death would go unnoticed).
  world.cluster.fault().KillQpAt(200 * kMicrosecond, /*node=*/1,
                                 conn->lane(0).qp->qpn());
  world.cluster.sim().RunFor(20 * kMillisecond);
  ASSERT_EQ(conn->num_failed_lanes(), 0u) << "first reconnect must finish";
  world.cluster.fault().KillQp(/*node=*/1, conn->lane(1).qp->qpn());
  world.cluster.sim().RunFor(400 * kMillisecond);

  EXPECT_EQ(ok + fail, 2 * 8000);
  EXPECT_EQ(fail, 0);
  EXPECT_EQ(conn->num_failed_lanes(), 0u);
  EXPECT_GE(conn->lane_reconnects(), 2u);
  EXPECT_GE(world.server->server_stats().lane_reconnects, 2u);
}

// ---------------------------------------------------------------------------
// Membership: leave reclaims, rejoin restores lanes and AQP share
// ---------------------------------------------------------------------------

TEST(CtrlTest, LeaveReclaimsSenderAndRepartitionsAqp) {
  // Cap the server at 2 active QPs so the §5 quota split is observable:
  // two clients with 2 lanes each → 1 active lane per sender.
  FlockConfig server_cfg;
  server_cfg.max_active_qps = 2;
  CtrlWorld world(/*nodes=*/3, server_cfg);
  Connection* victim = world.clients[0]->Connect(*world.server, 2);
  Connection* healthy = world.clients[1]->Connect(*world.server, 2);
  int v_ok = 0, v_fail = 0, h_ok = 0, h_fail = 0;
  world.cluster.sim().Spawn(EchoLoop(victim, world.clients[0]->CreateThread(0),
                                     4000, &v_ok, &v_fail));
  world.cluster.sim().Spawn(EchoLoop(healthy, world.clients[1]->CreateThread(0),
                                     4000, &h_ok, &h_fail));
  world.cluster.sim().RunFor(300 * kMicrosecond);

  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(world.cluster);
  cp.Leave(/*node=*/1);
  EXPECT_FALSE(cp.IsMember(1));
  // Give the scheduler a few sweeps: the departed sender is reclaimed and its
  // AQP quota flows to the survivor (budget 2 → both healthy lanes active).
  world.cluster.sim().RunFor(5 * kMillisecond);
  EXPECT_GE(world.server->server_stats().dead_senders, 1u);
  EXPECT_EQ(victim->CountLaneStates().healthy, 0u)
      << "leave must quarantine every lane of the departed node";
  EXPECT_EQ(healthy->num_active_lanes(), 2u)
      << "the survivor inherits the departed sender's AQP quota";

  // Rejoin: the reconnect daemon (which was gated on membership) revives the
  // lanes through fresh handshakes and the quota is split again.
  cp.Join(/*node=*/1);
  world.cluster.sim().RunFor(400 * kMillisecond);

  EXPECT_EQ(v_ok + v_fail, 4000);
  EXPECT_EQ(h_ok + h_fail, 4000);
  EXPECT_EQ(h_fail, 0) << "the healthy client must never be disturbed";
  EXPECT_GT(v_ok, 0);
  EXPECT_EQ(victim->num_failed_lanes(), 0u)
      << "rejoin must deterministically restore every lane";
  EXPECT_EQ(victim->CountLaneStates().healthy, 2u);
  EXPECT_GE(victim->lane_reconnects(), 2u);
  EXPECT_GE(victim->num_active_lanes(), 1u)
      << "the rejoined sender gets its AQP share back";
  EXPECT_GE(cp.stats().leaves, 1u);
  EXPECT_GE(cp.stats().joins, 1u);
}

// ---------------------------------------------------------------------------
// Elastic lane scaling
// ---------------------------------------------------------------------------

TEST(CtrlTest, ElasticGrowsUnderCoalescingPressure) {
  FlockConfig client_cfg = CtrlWorld::DefaultClientConfig();
  client_cfg.elastic_lanes = true;
  client_cfg.elastic_interval = 200 * kMicrosecond;
  client_cfg.elastic_grow_degree = 4;
  CtrlWorld world(/*nodes=*/2, FlockConfig{}, client_cfg);
  // 8 threads squeezed onto one lane: the median coalescing degree rises well
  // past the grow threshold and the scaler must add lanes.
  Connection* conn = world.clients[0]->Connect(*world.server, 1);
  int ok = 0, fail = 0;
  for (int t = 0; t < 8; ++t) {
    world.cluster.sim().Spawn(
        EchoLoop(conn, world.clients[0]->CreateThread(t), 2000, &ok, &fail));
  }
  world.cluster.sim().RunFor(200 * kMillisecond);

  EXPECT_EQ(ok, 8 * 2000);
  EXPECT_EQ(fail, 0);
  EXPECT_GT(conn->num_lanes(), 1u) << "contended handle must grow";
  EXPECT_GE(world.clients[0]->client_stats().lanes_added, 1u);
  EXPECT_GE(world.server->server_stats().lanes_added, 1u);
  EXPECT_EQ(conn->num_failed_lanes(), 0u);
}

TEST(CtrlTest, ElasticShrinksIdleLanes) {
  FlockConfig client_cfg = CtrlWorld::DefaultClientConfig();
  client_cfg.elastic_lanes = true;
  client_cfg.elastic_interval = 200 * kMicrosecond;
  client_cfg.elastic_shrink_degree = 2;
  client_cfg.min_lanes = 1;
  CtrlWorld world(/*nodes=*/2, FlockConfig{}, client_cfg);
  // One slow thread over four lanes: requests never coalesce, so the scaler
  // retires surplus lanes down toward min_lanes.
  Connection* conn = world.clients[0]->Connect(*world.server, 4);
  int ok = 0, fail = 0;
  world.cluster.sim().Spawn(
      EchoLoop(conn, world.clients[0]->CreateThread(0), 3000, &ok, &fail));
  world.cluster.sim().RunFor(200 * kMillisecond);

  EXPECT_EQ(ok, 3000);
  EXPECT_EQ(fail, 0);
  Connection::LaneStates states = conn->CountLaneStates();
  EXPECT_GE(states.retired, 1u) << "idle lanes must be retired";
  EXPECT_GE(states.healthy, client_cfg.min_lanes);
  EXPECT_GE(world.clients[0]->client_stats().lanes_retired, 1u);
  EXPECT_GE(world.server->server_stats().lanes_retired, 1u);
  EXPECT_EQ(states.quarantined, 0u);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

struct KillRunResult {
  int ok = 0;
  int fail = 0;
  uint64_t events = 0;
  uint64_t lane_reconnects = 0;
  uint64_t client_retries = 0;
  uint64_t server_requests = 0;
  uint64_t server_reconnects = 0;
  Connection::LaneStates states;
};

KillRunResult RunKillScenario() {
  CtrlWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 4);
  KillRunResult r;
  for (int t = 0; t < 4; ++t) {
    world.cluster.sim().Spawn(
        EchoLoop(conn, world.clients[0]->CreateThread(t), 300, &r.ok, &r.fail));
  }
  world.cluster.fault().KillQpAt(150 * kMicrosecond, /*node=*/1,
                                 conn->lane(0).qp->qpn());
  world.cluster.sim().RunFor(100 * kMillisecond);
  r.events = world.cluster.sim().events_processed();
  r.lane_reconnects = conn->lane_reconnects();
  r.client_retries = world.clients[0]->client_stats().retries;
  r.server_requests = world.server->server_stats().requests;
  r.server_reconnects = world.server->server_stats().lane_reconnects;
  r.states = conn->CountLaneStates();
  return r;
}

TEST(CtrlTest, ReconnectScenarioIsDeterministic) {
  KillRunResult a = RunKillScenario();
  KillRunResult b = RunKillScenario();
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.fail, b.fail);
  EXPECT_EQ(a.events, b.events) << "same seed must replay the same event count";
  EXPECT_EQ(a.lane_reconnects, b.lane_reconnects);
  EXPECT_EQ(a.client_retries, b.client_retries);
  EXPECT_EQ(a.server_requests, b.server_requests);
  EXPECT_EQ(a.server_reconnects, b.server_reconnects);
  EXPECT_EQ(a.states.healthy, b.states.healthy);
  EXPECT_EQ(a.states.quarantined, b.states.quarantined);
  EXPECT_EQ(a.states.retired, b.states.retired);
  EXPECT_GE(a.lane_reconnects, 1u) << "the scenario must actually reconnect";
}

// ---------------------------------------------------------------------------
// Nonce replay window: bounded forever, replays always rejected
// ---------------------------------------------------------------------------

// A bare endpoint answering every framing-valid call with its id, so the
// control plane's validation layer can be exercised without a runtime.
struct CountingEndpoint : ctrl::Endpoint {
  explicit CountingEndpoint(uint32_t id) : id(id) {}
  uint32_t OnCtrlMessage(const uint8_t*, uint32_t, uint8_t* resp,
                         uint32_t cap) override {
    FLOCK_CHECK_GE(cap, 4u);
    std::memcpy(resp, &id, 4);
    handled += 1;
    return 4;
  }
  uint32_t id;
  uint64_t handled = 0;
};

uint32_t CallWithNonce(ctrl::ControlPlane& cp, int node, uint64_t nonce,
                       uint8_t* resp) {
  ctrl::wire::RetireLaneRequest body;
  uint8_t msg[ctrl::wire::kMaxMessageBytes];
  const uint32_t len = ctrl::wire::EncodeMessage(
      msg, sizeof(msg), ctrl::wire::MsgType::kRetireLaneRequest, nonce, &body,
      sizeof(body));
  return cp.Call(node, msg, len, resp, ctrl::wire::kMaxMessageBytes);
}

TEST(CtrlTest, ReplayWindowStaysBoundedOver100kCalls) {
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 2});
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(cluster);
  CountingEndpoint ep(7);
  cp.RegisterEndpoint(1, &ep);
  uint8_t resp[ctrl::wire::kMaxMessageBytes];

  // 100k in-order calls: the window must never hold more than kNonceWindow
  // entries no matter how many nonces have been consumed (the regression was
  // an ever-growing seen-nonce set).
  size_t max_window = 0;
  uint64_t last_nonce = 0;
  for (int i = 0; i < 100000; ++i) {
    last_nonce = cp.NextNonce();
    ASSERT_NE(CallWithNonce(cp, 1, last_nonce, resp), 0u);
    max_window = std::max(max_window, cp.replay_window_entries());
  }
  EXPECT_EQ(ep.handled, 100000u);
  EXPECT_LE(max_window, ctrl::ControlPlane::kNonceWindow);

  // Out-of-order delivery (nonce pairs swapped) stays accepted and bounded.
  for (int i = 0; i < 1000; ++i) {
    const uint64_t a = cp.NextNonce();
    const uint64_t b = cp.NextNonce();
    ASSERT_NE(CallWithNonce(cp, 1, b, resp), 0u);
    ASSERT_NE(CallWithNonce(cp, 1, a, resp), 0u);
    max_window = std::max(max_window, cp.replay_window_entries());
  }
  EXPECT_LE(max_window, ctrl::ControlPlane::kNonceWindow);

  // Burned nonces (issued, never delivered — every rejected handshake does
  // this) leave permanent gaps; the watermark jump must still cap the window.
  for (int i = 0; i < 300; ++i) {
    cp.NextNonce();
  }
  for (int i = 0; i < 1000; ++i) {
    ASSERT_NE(CallWithNonce(cp, 1, cp.NextNonce(), resp), 0u);
    max_window = std::max(max_window, cp.replay_window_entries());
  }
  EXPECT_LE(max_window, ctrl::ControlPlane::kNonceWindow);

  // Replays reject: a just-used nonce and an ancient below-watermark one.
  const uint64_t replay_before = cp.stats().rejected_replay;
  EXPECT_EQ(CallWithNonce(cp, 1, last_nonce, resp), 0u);
  EXPECT_EQ(CallWithNonce(cp, 1, 1, resp), 0u);
  EXPECT_EQ(cp.stats().rejected_replay, replay_before + 2);
  cp.DeregisterEndpoint(1, &ep);
}

// ---------------------------------------------------------------------------
// Endpoint hand-off: the survivor answers when a co-located runtime dies
// ---------------------------------------------------------------------------

TEST(CtrlTest, EndpointHandOffPromotesSurvivor) {
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 2});
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(cluster);
  CountingEndpoint first(1), second(2);
  cp.RegisterEndpoint(1, &first);
  cp.RegisterEndpoint(1, &second);
  uint8_t resp[ctrl::wire::kMaxMessageBytes];

  // Registration order decides who answers; the second registrant must not
  // have displaced (or been dropped on the floor by) the first.
  ASSERT_EQ(CallWithNonce(cp, 1, cp.NextNonce(), resp), 4u);
  uint32_t answered = 0;
  std::memcpy(&answered, resp, 4);
  EXPECT_EQ(answered, 1u);

  // The hand-off bug: deregistering the active endpoint left the node dark
  // even though another runtime still lived there. The survivor must answer.
  cp.DeregisterEndpoint(1, &first);
  EXPECT_TRUE(cp.HasEndpoint(1));
  ASSERT_EQ(CallWithNonce(cp, 1, cp.NextNonce(), resp), 4u);
  std::memcpy(&answered, resp, 4);
  EXPECT_EQ(answered, 2u);
  EXPECT_EQ(second.handled, 1u);

  const uint64_t no_ep_before = cp.stats().rejected_no_endpoint;
  cp.DeregisterEndpoint(1, &second);
  EXPECT_FALSE(cp.HasEndpoint(1));
  EXPECT_EQ(CallWithNonce(cp, 1, cp.NextNonce(), resp), 0u);
  EXPECT_EQ(cp.stats().rejected_no_endpoint, no_ep_before + 1);
}

TEST(CtrlTest, CoLocatedRuntimesHandOffOnDestruction) {
  // Integration shape of the same bug: two runtimes sharing a node (bench
  // "processes") both register, and destroying the first — the one answering
  // the node's control traffic — must promote the second, not dead-end it.
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 8});
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(cluster);
  auto first = std::make_unique<FlockRuntime>(cluster, 1, FlockConfig{});
  auto second = std::make_unique<FlockRuntime>(cluster, 1, FlockConfig{});
  EXPECT_TRUE(cp.HasEndpoint(1));
  first.reset();
  EXPECT_TRUE(cp.HasEndpoint(1)) << "survivor runtime must keep answering";
  second.reset();
  EXPECT_FALSE(cp.HasEndpoint(1));
}

// ---------------------------------------------------------------------------
// Membership-listener reentrancy
// ---------------------------------------------------------------------------

TEST(CtrlTest, ListenerMayRemoveItselfMidNotification) {
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = 3, .cores_per_node = 2});
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(cluster);
  int self_calls = 0, other_calls = 0;
  uint64_t self_id = 0;
  self_id = cp.AddMembershipListener([&](int, bool) {
    self_calls += 1;
    cp.RemoveMembershipListener(self_id);  // destroys the running closure
  });
  cp.AddMembershipListener([&](int, bool) { other_calls += 1; });
  cp.Leave(1);
  cp.Join(1);
  EXPECT_EQ(self_calls, 1) << "removed itself after the first event";
  EXPECT_EQ(other_calls, 2) << "the other listener must see both events";
}

TEST(CtrlTest, ListenerMayAddListenersMidNotification) {
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = 3, .cores_per_node = 2});
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(cluster);
  int added_calls = 0;
  cp.AddMembershipListener([&](int, bool) {
    cp.AddMembershipListener([&](int, bool) { added_calls += 1; });
  });
  cp.Leave(1);  // adds one listener; must not invalidate the iteration
  EXPECT_EQ(added_calls, 0) << "snapshot: not fired for the current event";
  cp.Join(1);  // the listener added above fires now (and adds another)
  EXPECT_EQ(added_calls, 1);
}

TEST(CtrlTest, ListenerMayRejoinNodeFromCallback) {
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 2});
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(cluster);
  const uint64_t e0 = cp.epoch();
  bool rearmed = false;
  cp.AddMembershipListener([&](int node, bool joined) {
    if (!joined && !rearmed) {
      rearmed = true;
      cp.Join(node);  // nested notification from inside a notification
    }
  });
  cp.Leave(1);
  EXPECT_TRUE(cp.IsMember(1)) << "the callback's Join must have landed";
  EXPECT_EQ(cp.epoch(), e0 + 2) << "leave and nested join each bump";
}

// ---------------------------------------------------------------------------
// Batched membership epochs
// ---------------------------------------------------------------------------

TEST(CtrlTest, EpochBatchCoalescesAndSkipsNetNoops) {
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = 3, .cores_per_node = 2});
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(cluster);
  int notifications = 0, batch_ends = 0;
  cp.AddMembershipListener([&](int, bool) { notifications += 1; });
  cp.AddBatchEndListener([&] { batch_ends += 1; });

  const uint64_t e0 = cp.epoch();
  cp.BeginEpochBatch();
  cp.Leave(1);
  cp.Leave(2);
  cp.Join(1);  // node 1 nets out; node 2 is the window's only real change
  EXPECT_TRUE(cp.IsMember(1)) << "membership flips immediately inside a batch";
  EXPECT_FALSE(cp.IsMember(2));
  EXPECT_EQ(cp.epoch(), e0) << "epoch bump deferred to EndEpochBatch";
  EXPECT_EQ(notifications, 0);
  cp.EndEpochBatch();
  EXPECT_EQ(cp.epoch(), e0 + 1) << "one bump for the whole window";
  EXPECT_EQ(notifications, 1) << "only net-changed nodes notify";
  EXPECT_EQ(batch_ends, 1);
  EXPECT_EQ(cp.stats().epoch_batches, 1u);

  // A window whose changes fully cancel is invisible: no bump, no listeners.
  cp.BeginEpochBatch();
  cp.Leave(1);
  cp.Join(1);
  cp.EndEpochBatch();
  EXPECT_EQ(cp.epoch(), e0 + 1);
  EXPECT_EQ(notifications, 1);
  EXPECT_EQ(batch_ends, 1);
  EXPECT_EQ(cp.stats().epoch_batches, 1u);
}

// ---------------------------------------------------------------------------
// Churn: 1k+ Leave→Join→Connect cycles with QP recycling
// ---------------------------------------------------------------------------

struct ChurnResult {
  int ok = 0;
  int fail = 0;
  bool done = false;
  bool epochs_monotonic = true;
  uint64_t events = 0;
  uint64_t epoch = 0;
  uint64_t cp_calls = 0;
  uint64_t rejects = 0;
  uint64_t qps_created = 0;   // client + server
  uint64_t qps_recycled = 0;  // client + server
  size_t live_lanes = 0;
  size_t sender_slots = 0;
  size_t server_pool = 0;
  size_t client_pool = 0;
  size_t replay_window = 0;
};

sim::Proc ChurnDriver(verbs::Cluster& cluster, FlockRuntime& client,
                      FlockThread* thread, int cycles, ChurnResult* r) {
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(cluster);
  std::vector<uint8_t> resp;
  for (int c = 0; c < cycles; ++c) {
    const uint64_t epoch_before = cp.epoch();
    cp.Join(client.node());
    Connection* conn = co_await client.ConnectAsync(/*server_node=*/0, 2);
    uint64_t payload = static_cast<uint64_t>(c);
    const bool ok = co_await conn->Call(
        *thread, kEchoRpc, reinterpret_cast<const uint8_t*>(&payload), 8, &resp);
    (ok ? r->ok : r->fail) += 1;
    // Step off the dispatcher's resume stack so CloseConnection sees the
    // lane quiescent and harvests it into the recycling pool.
    co_await sim::Delay(cluster.sim(), 1 * kMicrosecond);
    client.CloseConnection(conn);
    cp.Leave(client.node());
    if (cp.epoch() != epoch_before + 2) {  // join + leave, exactly one each
      r->epochs_monotonic = false;
    }
  }
  r->done = true;
}

ChurnResult RunChurn(int cycles) {
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = 2, .cores_per_node = 8});
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(cluster);
  FlockConfig server_cfg;
  server_cfg.qp_recycling = true;
  FlockRuntime server(cluster, 0, server_cfg);
  server.RegisterHandler(kEchoRpc, EchoHandler);
  server.StartServer(2);
  FlockConfig client_cfg;
  client_cfg.qp_recycling = true;
  client_cfg.lazy_lanes = true;
  client_cfg.connect_piggyback = true;
  FlockRuntime client(cluster, 1, client_cfg);
  client.StartClient();
  FlockThread* thread = client.CreateThread(2);

  cp.Leave(1);  // the churning node starts outside the cluster
  ChurnResult r;
  cluster.sim().Spawn(ChurnDriver(cluster, client, thread, cycles, &r));
  while (!r.done && cluster.sim().Now() < 2000 * kMillisecond) {
    cluster.sim().RunFor(1 * kMillisecond);
  }
  r.events = cluster.sim().events_processed();
  r.epoch = cp.epoch();
  r.cp_calls = cp.stats().calls;
  r.rejects = cp.stats().rejected_malformed + cp.stats().rejected_replay +
              cp.stats().rejected_no_endpoint + cp.stats().rejected_not_member;
  r.qps_created =
      server.server_stats().qps_created + client.client_stats().qps_created;
  r.qps_recycled =
      server.server_stats().qps_recycled + client.client_stats().qps_recycled;
  r.live_lanes = server.ServerLiveLanes();
  r.sender_slots = server.ServerSenderSlots();
  r.server_pool = server.ServerLanePool();
  r.client_pool = client.ClientLanePool();
  r.replay_window = cp.replay_window_entries();
  return r;
}

TEST(CtrlTest, ThousandChurnCyclesLeakNothing) {
  ChurnResult r = RunChurn(1000);
  ASSERT_TRUE(r.done) << "churn wedged before finishing";
  EXPECT_EQ(r.ok, 1000);
  EXPECT_EQ(r.fail, 0);
  EXPECT_TRUE(r.epochs_monotonic)
      << "every Join/Leave must bump the epoch exactly once, in order";
  EXPECT_EQ(r.rejects, 0u) << "well-formed churn must never be rejected";
  // Zero stale-lane leaks: after the last Leave no server lane is live, the
  // sender slots were reused rather than grown per cycle, and the shell
  // pools hold only the storm's concurrent footprint.
  EXPECT_EQ(r.live_lanes, 0u);
  EXPECT_LE(r.sender_slots, 4u);
  EXPECT_LE(r.server_pool, 4u);
  EXPECT_LE(r.client_pool, 4u);
  // Recycling must carry the storm: a handful of fresh QPs bootstrap the
  // pools, everything after re-arms a recycled shell.
  EXPECT_LE(r.qps_created, 8u);
  EXPECT_GE(r.qps_recycled, 1990u);
  EXPECT_LE(r.replay_window, ctrl::ControlPlane::kNonceWindow);
}

TEST(CtrlTest, ChurnIsDeterministic) {
  ChurnResult a = RunChurn(300);
  ChurnResult b = RunChurn(300);
  ASSERT_TRUE(a.done);
  ASSERT_TRUE(b.done);
  EXPECT_EQ(a.events, b.events) << "same seed must replay the same trace";
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.cp_calls, b.cp_calls);
  EXPECT_EQ(a.qps_created, b.qps_created);
  EXPECT_EQ(a.qps_recycled, b.qps_recycled);
}

}  // namespace
}  // namespace flock
