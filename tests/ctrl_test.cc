// Connection control plane tests (DESIGN.md §10): connect/accept handshake,
// QP re-establishment after a kill, membership leave/rejoin with AQP
// repartitioning, elastic lane grow/shrink, and same-seed determinism.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/ctrl/control_plane.h"
#include "src/flock/flock.h"
#include "src/verbs/fault.h"

namespace flock {
namespace {

constexpr uint16_t kEchoRpc = 1;

uint32_t EchoHandler(const uint8_t* req, uint32_t len, uint8_t* resp,
                     uint32_t cap, Nanos* cpu) {
  FLOCK_CHECK_LE(len, cap);
  std::memcpy(resp, req, len);
  *cpu = 60;
  return len;
}

// A server plus N-1 clients wired for control-plane testing: clients carry
// rpc_timeout (the reconnect path replays un-acked batches via the retry
// watchdog) and, by default, lane_reconnect.
struct CtrlWorld {
  explicit CtrlWorld(int nodes = 2, FlockConfig server_cfg = FlockConfig{},
                     FlockConfig client_cfg = DefaultClientConfig())
      : cluster(verbs::Cluster::Config{.num_nodes = nodes, .cores_per_node = 8}) {
    server = std::make_unique<FlockRuntime>(cluster, 0, server_cfg);
    server->RegisterHandler(kEchoRpc, EchoHandler);
    server->StartServer(4);
    for (int n = 1; n < nodes; ++n) {
      clients.push_back(std::make_unique<FlockRuntime>(cluster, n, client_cfg));
      clients.back()->StartClient();
    }
  }

  static FlockConfig DefaultClientConfig() {
    FlockConfig cfg;
    cfg.rpc_timeout = 100 * kMicrosecond;
    cfg.max_retries = 5;
    cfg.lane_reconnect = true;
    cfg.reconnect_backoff = 50 * kMicrosecond;
    return cfg;
  }

  verbs::Cluster cluster;
  std::unique_ptr<FlockRuntime> server;
  std::vector<std::unique_ptr<FlockRuntime>> clients;
};

sim::Proc EchoLoop(Connection* conn, FlockThread* thread, int count,
                   int* ok_count, int* fail_count) {
  std::vector<uint8_t> resp;
  for (int i = 0; i < count; ++i) {
    uint64_t payload = static_cast<uint64_t>(i);
    const bool ok =
        co_await conn->Call(*thread, kEchoRpc,
                            reinterpret_cast<const uint8_t*>(&payload), 8, &resp);
    (ok ? *ok_count : *fail_count) += 1;
  }
}

// ---------------------------------------------------------------------------
// Connect/accept handshake
// ---------------------------------------------------------------------------

TEST(CtrlTest, HandshakeWiresLanesAndServesRpcs) {
  CtrlWorld world;
  // Node-id overload: the client knows nothing but the server's node number;
  // QPs, rings, rkeys and credits all arrive through the accept message.
  Connection* conn = world.clients[0]->Connect(/*server_node=*/0, 4);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->num_lanes(), 4u);
  EXPECT_EQ(conn->server_node(), 0);

  Connection::LaneStates states = conn->CountLaneStates();
  EXPECT_EQ(states.healthy, 4u);
  EXPECT_EQ(states.quarantined, 0u);
  EXPECT_EQ(states.retired, 0u);

  const ctrl::ControlPlane::Stats& cp = ctrl::ControlPlane::For(world.cluster).stats();
  EXPECT_GE(cp.calls, 1u);
  EXPECT_EQ(cp.rejected_malformed, 0u);
  EXPECT_EQ(cp.rejected_replay, 0u);

  int ok = 0, fail = 0;
  for (int t = 0; t < 4; ++t) {
    world.cluster.sim().Spawn(
        EchoLoop(conn, world.clients[0]->CreateThread(t), 200, &ok, &fail));
  }
  world.cluster.sim().RunFor(100 * kMillisecond);
  EXPECT_EQ(ok, 4 * 200);
  EXPECT_EQ(fail, 0);
}

// ---------------------------------------------------------------------------
// QP kill → reconnect → full recovery
// ---------------------------------------------------------------------------

TEST(CtrlTest, QpKillReconnectsAndRestoresLane) {
  CtrlWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 4);
  int ok = 0, fail = 0;
  for (int t = 0; t < 4; ++t) {
    world.cluster.sim().Spawn(
        EchoLoop(conn, world.clients[0]->CreateThread(t), 400, &ok, &fail));
  }
  world.cluster.fault().KillQpAt(200 * kMicrosecond, /*node=*/1,
                                 conn->lane(0).qp->qpn());
  world.cluster.sim().RunFor(200 * kMillisecond);

  EXPECT_EQ(ok + fail, 4 * 400);
  EXPECT_EQ(fail, 0) << "retry + reconnect must absorb a single QP kill";
  // Unlike the quarantine-only behaviour (fault_test expects 1 failed lane),
  // the reconnect daemon replaced the QP pair and revived the lane.
  EXPECT_EQ(conn->num_failed_lanes(), 0u);
  EXPECT_GE(conn->lane_reconnects(), 1u);
  Connection::LaneStates states = conn->CountLaneStates();
  EXPECT_EQ(states.healthy, 4u);
  EXPECT_EQ(states.quarantined, 0u);
  EXPECT_EQ(states.reconnecting, 0u);
  EXPECT_GE(world.clients[0]->client_stats().lane_reconnects, 1u);
  EXPECT_GE(world.server->server_stats().lane_reconnects, 1u);
  // Quarantine was still recorded before the revival.
  EXPECT_GE(world.clients[0]->client_stats().lane_failures, 1u);
}

TEST(CtrlTest, RepeatedKillsOnSameLaneKeepRecovering) {
  CtrlWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 2);
  int ok = 0, fail = 0;
  // Enough traffic that the handle is still busy when the second kill lands
  // (an idle lane posts no sends, so a kill would go unnoticed until used).
  for (int t = 0; t < 2; ++t) {
    world.cluster.sim().Spawn(
        EchoLoop(conn, world.clients[0]->CreateThread(t), 8000, &ok, &fail));
  }
  // First kill, let the lane reconnect, then kill the lane the migrated
  // threads are now driving (an idle lane's death would go unnoticed).
  world.cluster.fault().KillQpAt(200 * kMicrosecond, /*node=*/1,
                                 conn->lane(0).qp->qpn());
  world.cluster.sim().RunFor(20 * kMillisecond);
  ASSERT_EQ(conn->num_failed_lanes(), 0u) << "first reconnect must finish";
  world.cluster.fault().KillQp(/*node=*/1, conn->lane(1).qp->qpn());
  world.cluster.sim().RunFor(400 * kMillisecond);

  EXPECT_EQ(ok + fail, 2 * 8000);
  EXPECT_EQ(fail, 0);
  EXPECT_EQ(conn->num_failed_lanes(), 0u);
  EXPECT_GE(conn->lane_reconnects(), 2u);
  EXPECT_GE(world.server->server_stats().lane_reconnects, 2u);
}

// ---------------------------------------------------------------------------
// Membership: leave reclaims, rejoin restores lanes and AQP share
// ---------------------------------------------------------------------------

TEST(CtrlTest, LeaveReclaimsSenderAndRepartitionsAqp) {
  // Cap the server at 2 active QPs so the §5 quota split is observable:
  // two clients with 2 lanes each → 1 active lane per sender.
  FlockConfig server_cfg;
  server_cfg.max_active_qps = 2;
  CtrlWorld world(/*nodes=*/3, server_cfg);
  Connection* victim = world.clients[0]->Connect(*world.server, 2);
  Connection* healthy = world.clients[1]->Connect(*world.server, 2);
  int v_ok = 0, v_fail = 0, h_ok = 0, h_fail = 0;
  world.cluster.sim().Spawn(EchoLoop(victim, world.clients[0]->CreateThread(0),
                                     4000, &v_ok, &v_fail));
  world.cluster.sim().Spawn(EchoLoop(healthy, world.clients[1]->CreateThread(0),
                                     4000, &h_ok, &h_fail));
  world.cluster.sim().RunFor(300 * kMicrosecond);

  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(world.cluster);
  cp.Leave(/*node=*/1);
  EXPECT_FALSE(cp.IsMember(1));
  // Give the scheduler a few sweeps: the departed sender is reclaimed and its
  // AQP quota flows to the survivor (budget 2 → both healthy lanes active).
  world.cluster.sim().RunFor(5 * kMillisecond);
  EXPECT_GE(world.server->server_stats().dead_senders, 1u);
  EXPECT_EQ(victim->CountLaneStates().healthy, 0u)
      << "leave must quarantine every lane of the departed node";
  EXPECT_EQ(healthy->num_active_lanes(), 2u)
      << "the survivor inherits the departed sender's AQP quota";

  // Rejoin: the reconnect daemon (which was gated on membership) revives the
  // lanes through fresh handshakes and the quota is split again.
  cp.Join(/*node=*/1);
  world.cluster.sim().RunFor(400 * kMillisecond);

  EXPECT_EQ(v_ok + v_fail, 4000);
  EXPECT_EQ(h_ok + h_fail, 4000);
  EXPECT_EQ(h_fail, 0) << "the healthy client must never be disturbed";
  EXPECT_GT(v_ok, 0);
  EXPECT_EQ(victim->num_failed_lanes(), 0u)
      << "rejoin must deterministically restore every lane";
  EXPECT_EQ(victim->CountLaneStates().healthy, 2u);
  EXPECT_GE(victim->lane_reconnects(), 2u);
  EXPECT_GE(victim->num_active_lanes(), 1u)
      << "the rejoined sender gets its AQP share back";
  EXPECT_GE(cp.stats().leaves, 1u);
  EXPECT_GE(cp.stats().joins, 1u);
}

// ---------------------------------------------------------------------------
// Elastic lane scaling
// ---------------------------------------------------------------------------

TEST(CtrlTest, ElasticGrowsUnderCoalescingPressure) {
  FlockConfig client_cfg = CtrlWorld::DefaultClientConfig();
  client_cfg.elastic_lanes = true;
  client_cfg.elastic_interval = 200 * kMicrosecond;
  client_cfg.elastic_grow_degree = 4;
  CtrlWorld world(/*nodes=*/2, FlockConfig{}, client_cfg);
  // 8 threads squeezed onto one lane: the median coalescing degree rises well
  // past the grow threshold and the scaler must add lanes.
  Connection* conn = world.clients[0]->Connect(*world.server, 1);
  int ok = 0, fail = 0;
  for (int t = 0; t < 8; ++t) {
    world.cluster.sim().Spawn(
        EchoLoop(conn, world.clients[0]->CreateThread(t), 2000, &ok, &fail));
  }
  world.cluster.sim().RunFor(200 * kMillisecond);

  EXPECT_EQ(ok, 8 * 2000);
  EXPECT_EQ(fail, 0);
  EXPECT_GT(conn->num_lanes(), 1u) << "contended handle must grow";
  EXPECT_GE(world.clients[0]->client_stats().lanes_added, 1u);
  EXPECT_GE(world.server->server_stats().lanes_added, 1u);
  EXPECT_EQ(conn->num_failed_lanes(), 0u);
}

TEST(CtrlTest, ElasticShrinksIdleLanes) {
  FlockConfig client_cfg = CtrlWorld::DefaultClientConfig();
  client_cfg.elastic_lanes = true;
  client_cfg.elastic_interval = 200 * kMicrosecond;
  client_cfg.elastic_shrink_degree = 2;
  client_cfg.min_lanes = 1;
  CtrlWorld world(/*nodes=*/2, FlockConfig{}, client_cfg);
  // One slow thread over four lanes: requests never coalesce, so the scaler
  // retires surplus lanes down toward min_lanes.
  Connection* conn = world.clients[0]->Connect(*world.server, 4);
  int ok = 0, fail = 0;
  world.cluster.sim().Spawn(
      EchoLoop(conn, world.clients[0]->CreateThread(0), 3000, &ok, &fail));
  world.cluster.sim().RunFor(200 * kMillisecond);

  EXPECT_EQ(ok, 3000);
  EXPECT_EQ(fail, 0);
  Connection::LaneStates states = conn->CountLaneStates();
  EXPECT_GE(states.retired, 1u) << "idle lanes must be retired";
  EXPECT_GE(states.healthy, client_cfg.min_lanes);
  EXPECT_GE(world.clients[0]->client_stats().lanes_retired, 1u);
  EXPECT_GE(world.server->server_stats().lanes_retired, 1u);
  EXPECT_EQ(states.quarantined, 0u);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

struct KillRunResult {
  int ok = 0;
  int fail = 0;
  uint64_t events = 0;
  uint64_t lane_reconnects = 0;
  uint64_t client_retries = 0;
  uint64_t server_requests = 0;
  uint64_t server_reconnects = 0;
  Connection::LaneStates states;
};

KillRunResult RunKillScenario() {
  CtrlWorld world;
  Connection* conn = world.clients[0]->Connect(*world.server, 4);
  KillRunResult r;
  for (int t = 0; t < 4; ++t) {
    world.cluster.sim().Spawn(
        EchoLoop(conn, world.clients[0]->CreateThread(t), 300, &r.ok, &r.fail));
  }
  world.cluster.fault().KillQpAt(150 * kMicrosecond, /*node=*/1,
                                 conn->lane(0).qp->qpn());
  world.cluster.sim().RunFor(100 * kMillisecond);
  r.events = world.cluster.sim().events_processed();
  r.lane_reconnects = conn->lane_reconnects();
  r.client_retries = world.clients[0]->client_stats().retries;
  r.server_requests = world.server->server_stats().requests;
  r.server_reconnects = world.server->server_stats().lane_reconnects;
  r.states = conn->CountLaneStates();
  return r;
}

TEST(CtrlTest, ReconnectScenarioIsDeterministic) {
  KillRunResult a = RunKillScenario();
  KillRunResult b = RunKillScenario();
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.fail, b.fail);
  EXPECT_EQ(a.events, b.events) << "same seed must replay the same event count";
  EXPECT_EQ(a.lane_reconnects, b.lane_reconnects);
  EXPECT_EQ(a.client_retries, b.client_retries);
  EXPECT_EQ(a.server_requests, b.server_requests);
  EXPECT_EQ(a.server_reconnects, b.server_reconnects);
  EXPECT_EQ(a.states.healthy, b.states.healthy);
  EXPECT_EQ(a.states.quarantined, b.states.quarantined);
  EXPECT_EQ(a.states.retired, b.states.retired);
  EXPECT_GE(a.lane_reconnects, 1u) << "the scenario must actually reconnect";
}

}  // namespace
}  // namespace flock
