// Example: distributed transactions with FlockTX (§8.5).
//
// Three replicated servers and two client nodes run a tiny banking workload:
// transfers between accounts as OCC + 2PC transactions with 3-way
// primary-backup replication, validated with one-sided RDMA reads. The demo
// checks the global invariant (money is conserved) and that all three
// replicas converge to identical state.
//
//   $ ./examples/txn_demo
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "src/flock/flock.h"
#include "src/txn/coordinator.h"
#include "src/txn/server.h"
#include "src/txn/transport.h"
#include "src/workloads/smallbank.h"

using namespace flock;

namespace {

constexpr int kServers = 3;
constexpr int kReplication = 3;
constexpr int kClients = 2;
constexpr uint64_t kAccounts = 64;

sim::Proc TellerWorker(verbs::Cluster* cluster, txn::TxCoordinator* coordinator,
                       uint64_t seed, int transactions, uint64_t* committed,
                       uint64_t* aborted) {
  Rng rng(seed);
  workloads::Smallbank bank(kAccounts);
  for (int i = 0; i < transactions; ++i) {
    const txn::TxRequest tx = bank.Next(rng);
    const int attempts = co_await coordinator->ExecuteWithRetry(tx);
    if (attempts > 0) {
      *committed += 1;
      *aborted += static_cast<uint64_t>(attempts - 1);
    }
  }
}

}  // namespace

int main() {
  verbs::Cluster cluster(verbs::Cluster::Config{
      .num_nodes = kServers + kClients, .cores_per_node = 16});

  // KV substrate: each server is primary for one partition, replica for two.
  std::vector<std::unique_ptr<txn::TxServer>> servers;
  std::vector<txn::TxServer*> server_ptrs;
  for (int s = 0; s < kServers; ++s) {
    servers.push_back(std::make_unique<txn::TxServer>(cluster.mem(s), s, kServers,
                                                      kReplication, 4096, 16));
    server_ptrs.push_back(servers.back().get());
  }
  workloads::Smallbank bank(kAccounts);
  uint8_t initial[txn::kTxMaxValue] = {};
  const uint64_t opening_balance = 100;
  std::memcpy(initial, &opening_balance, 8);
  bank.Populate([&](uint64_t key) { txn::PopulateKey(server_ptrs, key, initial); });

  // Flock runtimes: servers register the transaction handlers.
  FlockConfig config;
  std::vector<std::unique_ptr<FlockRuntime>> server_runtimes;
  for (int s = 0; s < kServers; ++s) {
    server_runtimes.push_back(std::make_unique<FlockRuntime>(cluster, s, config));
    servers[static_cast<size_t>(s)]->RegisterAll([&](uint16_t id, RpcHandler h) {
      server_runtimes.back()->RegisterHandler(id, h);
    });
    server_runtimes.back()->StartServer(8);
  }

  // Clients: each runs 4 coroutine tellers over one Flock thread.
  uint64_t committed = 0, aborted = 0;
  std::vector<std::unique_ptr<FlockRuntime>> client_runtimes;
  std::vector<std::unique_ptr<txn::FlockTxTransport>> transports;
  std::vector<std::unique_ptr<txn::TxCoordinator>> coordinators;
  for (int c = 0; c < kClients; ++c) {
    client_runtimes.push_back(
        std::make_unique<FlockRuntime>(cluster, kServers + c, config));
    FlockRuntime& runtime = *client_runtimes.back();
    runtime.StartClient();
    std::vector<Connection*> conns;
    std::vector<std::vector<RemoteMr>> mrs(kServers);
    for (int s = 0; s < kServers; ++s) {
      conns.push_back(runtime.Connect(*server_runtimes[static_cast<size_t>(s)], 4));
      for (const auto& span : servers[static_cast<size_t>(s)]->primary()->spans()) {
        mrs[static_cast<size_t>(s)].push_back(
            conns.back()->AttachMreg(span.addr, span.length));
      }
    }
    FlockThread* thread = runtime.CreateThread(0);
    for (int w = 0; w < 4; ++w) {
      transports.push_back(
          std::make_unique<txn::FlockTxTransport>(runtime, *thread, conns, mrs));
      coordinators.push_back(std::make_unique<txn::TxCoordinator>(
          *transports.back(), kServers, kReplication));
      cluster.sim().Spawn(TellerWorker(&cluster, coordinators.back().get(),
                                       0xfeedu + static_cast<uint64_t>(c * 8 + w), 100,
                                       &committed, &aborted));
    }
  }

  cluster.sim().RunFor(200 * kMillisecond);
  std::printf("committed %lu transactions (%lu OCC aborts retried)\n",
              (unsigned long)committed, (unsigned long)aborted);

  // Verify replica convergence: every copy of every partition must agree.
  bool consistent = true;
  uint64_t update_sum = 0;
  for (uint64_t account = 0; account < kAccounts; ++account) {
    for (auto table : {workloads::Smallbank::kSavings, workloads::Smallbank::kChecking}) {
      const uint64_t key = workloads::Smallbank::Key(table, account);
      const int partition = txn::PartitionOf(key, kServers);
      uint64_t reference_version = 0;
      uint8_t reference[txn::kTxMaxValue];
      for (int r = 0; r < kReplication; ++r) {
        txn::TxServer& server = *servers[static_cast<size_t>((partition + r) % kServers)];
        kv::KvStore* store = server.store(partition);
        uint8_t value[txn::kTxMaxValue];
        uint64_t version = 0;
        if (!store->Get(key, value, &version, nullptr)) {
          consistent = false;
          continue;
        }
        if (r == 0) {
          reference_version = version;
          std::memcpy(reference, value, sizeof(reference));
          uint64_t counter = 0;
          std::memcpy(&counter, value, 8);
          update_sum += counter - opening_balance;
        } else if (version != reference_version ||
                   std::memcmp(value, reference, sizeof(reference)) != 0) {
          consistent = false;
        }
      }
    }
  }
  std::printf("replicas consistent across all %d copies: %s\n", kReplication,
              consistent ? "yes" : "NO");
  std::printf("total updates applied (sum of counters): %lu\n",
              (unsigned long)update_sum);
  return consistent ? 0 : 1;
}
