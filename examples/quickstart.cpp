// Quickstart: the smallest complete Flock program.
//
// Builds a two-node simulated RDMA cluster, starts a Flock server with one
// RPC handler, connects a client, and exercises the full Table-2 API surface:
// an RPC round trip, a one-sided read/write, and a remote atomic.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/flock/flock.h"

using namespace flock;

namespace {

constexpr uint16_t kGreetRpc = 7;

// RPC handler (fl_reg_handler): uppercases the request.
uint32_t GreetHandler(const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
                      Nanos* cpu) {
  for (uint32_t i = 0; i < len && i < cap; ++i) {
    const uint8_t c = req[i];
    resp[i] = (c >= 'a' && c <= 'z') ? static_cast<uint8_t>(c - 32) : c;
  }
  *cpu = 80;  // simulated handler CPU
  return len;
}

sim::Proc ClientMain(verbs::Cluster* cluster, Connection* conn, FlockThread* thread,
                     RemoteMr mr, uint64_t region) {
  // --- RPC (fl_send_rpc / fl_recv_res) ---
  const char hello[] = "hello, flock!";
  std::vector<uint8_t> resp;
  const bool ok = co_await conn->Call(*thread, kGreetRpc,
                                      reinterpret_cast<const uint8_t*>(hello),
                                      sizeof(hello), &resp);
  std::printf("[%-6ld ns] rpc ok=%d response=\"%s\"\n", (long)cluster->sim().Now(), ok,
              reinterpret_cast<const char*>(resp.data()));

  // --- one-sided write + read (fl_write / fl_read) ---
  fabric::MemorySpace& mem = cluster->mem(thread->node());
  const uint64_t lbuf = mem.Alloc(64);
  const char secret[] = "written one-sided";
  mem.Write(lbuf, secret, sizeof(secret));
  co_await conn->Write(*thread, lbuf, region, sizeof(secret), mr);

  const uint64_t lbuf2 = mem.Alloc(64);
  co_await conn->Read(*thread, lbuf2, region, sizeof(secret), mr);
  char out[64] = {};
  mem.Read(lbuf2, out, sizeof(secret));
  std::printf("[%-6ld ns] one-sided round trip: \"%s\"\n", (long)cluster->sim().Now(),
              out);

  // --- remote atomics (fl_fetch_and_add / fl_cmp_and_swap) ---
  const uint64_t counter = region + 128;
  uint64_t old_value = 0;
  co_await conn->FetchAndAdd(*thread, counter, 41, &old_value, mr);
  co_await conn->FetchAndAdd(*thread, counter, 1, &old_value, mr);
  std::printf("[%-6ld ns] fetch-and-add: counter was %lu, now %lu\n",
              (long)cluster->sim().Now(), (unsigned long)old_value,
              (unsigned long)(old_value + 1));
  co_await conn->CompareAndSwap(*thread, counter, 42, 0, &old_value, mr);
  std::printf("[%-6ld ns] compare-and-swap(42 -> 0): old=%lu\n",
              (long)cluster->sim().Now(), (unsigned long)old_value);
}

}  // namespace

int main() {
  // A simulated 2-node cluster: node 0 = server, node 1 = client.
  verbs::Cluster cluster(verbs::Cluster::Config{.num_nodes = 2});

  FlockConfig config;
  FlockRuntime server(cluster, 0, config);
  server.RegisterHandler(kGreetRpc, GreetHandler);  // fl_reg_handler
  server.StartServer(4);

  FlockRuntime client(cluster, 1, config);
  client.StartClient();
  Connection* conn = client.Connect(server, /*lanes=*/4);  // fl_connect
  FlockThread* thread = client.CreateThread(0);

  // Server-side memory region exposed for one-sided ops (fl_attach_mreg).
  const uint64_t region = cluster.mem(0).Alloc(4096);
  RemoteMr mr = conn->AttachMreg(region, 4096);

  cluster.sim().Spawn(ClientMain(&cluster, conn, thread, mr, region));
  cluster.sim().RunFor(5 * kMillisecond);

  std::printf("done: %lu requests served, %lu simulation events\n",
              (unsigned long)server.server_stats().requests,
              (unsigned long)cluster.sim().events_processed());
  return 0;
}
