// Example: a remote key-value cache in the style the paper's intro motivates
// (high fan-in memcached-like service).
//
// Eight client nodes hammer one server holding a MICA-style store. GETs and
// PUTs travel as Flock RPCs — many client threads share a few QPs, their
// requests coalescing into combined messages — while a "hot counter" is
// updated with one-sided fetch-and-add, bypassing the server CPU entirely.
//
//   $ ./examples/kv_cache
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "src/flock/flock.h"
#include "src/kv/kvstore.h"

using namespace flock;

namespace {

constexpr uint16_t kGetRpc = 1;
constexpr uint16_t kPutRpc = 2;
constexpr uint32_t kValueBytes = 32;
constexpr int kClients = 8;
constexpr int kThreadsPerClient = 8;

struct GetReq {
  uint64_t key;
};
struct PutReq {
  uint64_t key;
  uint8_t value[kValueBytes];
};
struct GetResp {
  uint8_t ok;
  uint8_t value[kValueBytes];
};

struct Stats {
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t hits = 0;
};

sim::Proc CacheWorker(verbs::Cluster* cluster, Connection* conn, FlockThread* thread,
                      RemoteMr counter_mr, uint64_t counter_addr, uint64_t keys,
                      Nanos run_for, Stats* stats) {
  Rng rng(0x1234u + thread->id() * 7919u + static_cast<uint64_t>(thread->node()) * 104729u);
  const Nanos deadline = cluster->sim().Now() + run_for;
  while (cluster->sim().Now() < deadline) {
    const uint64_t key = rng.NextBelow(keys);
    if (rng.NextBelow(100) < 80) {  // 80% GET
      GetReq req{key};
      std::vector<uint8_t> resp;
      co_await conn->Call(*thread, kGetRpc, reinterpret_cast<const uint8_t*>(&req),
                          sizeof(req), &resp);
      GetResp get;
      std::memcpy(&get, resp.data(), sizeof(get));
      stats->gets += 1;
      stats->hits += get.ok;
    } else {  // 20% PUT
      PutReq req;
      req.key = key;
      std::memset(req.value, static_cast<int>(key & 0xff), kValueBytes);
      std::vector<uint8_t> resp;
      co_await conn->Call(*thread, kPutRpc, reinterpret_cast<const uint8_t*>(&req),
                          sizeof(req), &resp);
      stats->puts += 1;
      // Bump the global write counter without touching the server's CPU.
      uint64_t before = 0;
      co_await conn->FetchAndAdd(*thread, counter_addr, 1, &before, counter_mr);
    }
  }
}

}  // namespace

int main() {
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = 1 + kClients, .cores_per_node = 16});

  // The server-side store: pre-populate half the keyspace so GETs miss too.
  const uint64_t kKeys = 4096;
  kv::KvStore store(cluster.mem(0), kKeys, kValueBytes);
  for (uint64_t k = 0; k < kKeys; k += 2) {
    uint8_t value[kValueBytes];
    std::memset(value, static_cast<int>(k & 0xff), kValueBytes);
    store.Insert(k, value);
  }

  FlockConfig config;
  FlockRuntime server(cluster, 0, config);
  server.RegisterHandler(kGetRpc, [&store](const uint8_t* req, uint32_t, uint8_t* resp,
                                           uint32_t, Nanos* cpu) -> uint32_t {
    GetReq get;
    std::memcpy(&get, req, sizeof(get));
    GetResp out;
    out.ok = store.Get(get.key, out.value, nullptr, nullptr) ? 1 : 0;
    std::memcpy(resp, &out, sizeof(out));
    *cpu = kv::KvStore::kAccessCost;
    return sizeof(out);
  });
  server.RegisterHandler(kPutRpc, [&store](const uint8_t* req, uint32_t, uint8_t* resp,
                                           uint32_t, Nanos* cpu) -> uint32_t {
    PutReq put;
    std::memcpy(&put, req, sizeof(put));
    if (!store.Insert(put.key, put.value)) {
      // Existing key: overwrite under the store's lock protocol.
      if (store.TryLock(put.key, nullptr, nullptr)) {
        store.UpdateAndUnlock(put.key, put.value);
      }
    }
    resp[0] = 1;
    *cpu = kv::KvStore::kAccessCost + 40;
    return 1;
  });
  server.StartServer(12);

  // A hot counter updated with remote atomics only.
  const uint64_t counter_addr = cluster.mem(0).Alloc(8, 8);

  std::vector<std::unique_ptr<FlockRuntime>> clients;
  std::vector<std::unique_ptr<Stats>> stats;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<FlockRuntime>(cluster, 1 + c, config));
    clients.back()->StartClient();
    Connection* conn = clients.back()->Connect(server, kThreadsPerClient);
    RemoteMr counter_mr = conn->AttachMreg(counter_addr, 8);
    stats.push_back(std::make_unique<Stats>());
    for (int t = 0; t < kThreadsPerClient; ++t) {
      cluster.sim().Spawn(CacheWorker(&cluster, conn, clients.back()->CreateThread(t),
                                      counter_mr, counter_addr, kKeys,
                                      2 * kMillisecond, stats.back().get()));
    }
  }

  cluster.sim().RunFor(3 * kMillisecond);

  Stats total;
  for (const auto& s : stats) {
    total.gets += s->gets;
    total.puts += s->puts;
    total.hits += s->hits;
  }
  uint64_t counter = 0;
  cluster.mem(0).Read(counter_addr, &counter, 8);
  const double seconds = 2e-3;
  std::printf("cache: %lu GETs (%.0f%% hit), %lu PUTs in 2 ms of simulated time\n",
              (unsigned long)total.gets,
              total.gets ? 100.0 * static_cast<double>(total.hits) /
                               static_cast<double>(total.gets)
                         : 0.0,
              (unsigned long)total.puts);
  std::printf("throughput: %.2f M ops/s across %d client threads\n",
              static_cast<double>(total.gets + total.puts) / seconds / 1e6,
              kClients * kThreadsPerClient);
  std::printf("write counter (remote atomics only): %lu == PUTs? %s\n",
              (unsigned long)counter, counter == total.puts ? "yes" : "NO");
  std::printf("server QPs active: %u; mean coalescing at server: %.2f reqs/msg\n",
              server.ActiveServerLanes(), server.MeanServerCoalescing());
  return counter == total.puts ? 0 : 1;
}
