// Example: a zero-server-CPU telemetry/counter service built purely from
// Flock's one-sided operations — the capability RC keeps and UD forgoes
// (Table 1), and the reason Flock refuses to give up connected transport.
//
// Six "sensor" nodes publish readings into per-sensor slots on an aggregator
// node with fl_write, bump a global epoch with fl_fetch_and_add, and elect a
// round leader with fl_cmp_and_swap — all without a single RPC handler or
// aggregator-side CPU cycle on the data path. A reader node audits the state
// with fl_read.
//
//   $ ./examples/one_sided_counters
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "src/flock/flock.h"

using namespace flock;

namespace {

constexpr int kSensors = 6;
constexpr int kRounds = 50;

struct Layout {
  uint64_t epoch = 0;        // fetch-and-add'ed once per publication
  uint64_t leader_slot = 0;  // compare-and-swap leader election per round
  uint64_t readings = 0;     // kSensors 8-byte slots
};

sim::Proc Sensor(verbs::Cluster* cluster, Connection* conn, FlockThread* thread,
                 const Layout* layout, RemoteMr mr, int id, uint64_t* leaderships) {
  fabric::MemorySpace& mem = cluster->mem(thread->node());
  const uint64_t scratch = mem.Alloc(8, 8);
  for (int round = 0; round < kRounds; ++round) {
    // Publish a reading into our slot: one RDMA write, no remote CPU.
    const uint64_t reading = static_cast<uint64_t>(id) * 1000000 +
                             static_cast<uint64_t>(round);
    mem.Write(scratch, &reading, 8);
    verbs::WcStatus status = co_await conn->Write(
        *thread, scratch, layout->readings + static_cast<uint64_t>(id) * 8, 8, mr);
    FLOCK_CHECK(status == verbs::WcStatus::kSuccess);

    // Announce it: atomically bump the global epoch.
    uint64_t old_epoch = 0;
    status = co_await conn->FetchAndAdd(*thread, layout->epoch, 1, &old_epoch, mr);
    FLOCK_CHECK(status == verbs::WcStatus::kSuccess);

    // Try to become this round's leader: CAS 0 -> id+1 on the leader slot.
    uint64_t seen = 0;
    status = co_await conn->CompareAndSwap(*thread, layout->leader_slot, 0,
                                           static_cast<uint64_t>(id) + 1, &seen, mr);
    FLOCK_CHECK(status == verbs::WcStatus::kSuccess);
    if (seen == 0) {
      // We won: do "leader work", then release the slot for the next round.
      *leaderships += 1;
      co_await sim::Delay(cluster->sim(), 2 * kMicrosecond);
      uint64_t back = 0;
      status = co_await conn->CompareAndSwap(*thread, layout->leader_slot,
                                             static_cast<uint64_t>(id) + 1, 0, &back, mr);
      FLOCK_CHECK(status == verbs::WcStatus::kSuccess);
      FLOCK_CHECK_EQ(back, static_cast<uint64_t>(id) + 1) << "lost our own lease";
    }
    co_await sim::Delay(cluster->sim(), 5 * kMicrosecond);
  }
}

}  // namespace

int main() {
  // Node 0 = aggregator (no Flock server role needed for one-sided traffic,
  // but the runtime must exist to accept connections); nodes 1..6 sensors;
  // node 7 auditor.
  verbs::Cluster cluster(
      verbs::Cluster::Config{.num_nodes = 2 + kSensors, .cores_per_node = 8});
  FlockRuntime aggregator(cluster, 0, FlockConfig{});
  aggregator.StartServer(2);  // dispatchers idle: the data path is one-sided

  Layout layout;
  layout.epoch = cluster.mem(0).Alloc(8, 8);
  layout.leader_slot = cluster.mem(0).Alloc(8, 8);
  layout.readings = cluster.mem(0).Alloc(8 * kSensors, 8);

  std::vector<std::unique_ptr<FlockRuntime>> nodes;
  std::vector<uint64_t> leaderships(kSensors, 0);
  for (int s = 0; s < kSensors; ++s) {
    nodes.push_back(std::make_unique<FlockRuntime>(cluster, 1 + s, FlockConfig{}));
    nodes.back()->StartClient();
    Connection* conn = nodes.back()->Connect(aggregator, 2);
    RemoteMr mr = conn->AttachMreg(layout.epoch, 8 * (2 + kSensors));
    cluster.sim().Spawn(Sensor(&cluster, conn, nodes.back()->CreateThread(0), &layout,
                               mr, s, &leaderships[static_cast<size_t>(s)]));
  }

  cluster.sim().RunFor(50 * kMillisecond);

  uint64_t epoch = 0;
  cluster.mem(0).Read(layout.epoch, &epoch, 8);
  std::printf("epoch counter: %lu (expected %d)\n", (unsigned long)epoch,
              kSensors * kRounds);
  uint64_t total_leaderships = 0;
  for (int s = 0; s < kSensors; ++s) {
    uint64_t reading = 0;
    cluster.mem(0).Read(layout.readings + static_cast<uint64_t>(s) * 8, &reading, 8);
    std::printf("sensor %d: last reading %lu, led %lu rounds\n", s,
                (unsigned long)reading, (unsigned long)leaderships[static_cast<size_t>(s)]);
    total_leaderships += leaderships[static_cast<size_t>(s)];
  }
  std::printf("aggregator request-dispatch CPU consumed by data path: %lu requests\n",
              (unsigned long)aggregator.server_stats().requests);
  const bool ok = epoch == static_cast<uint64_t>(kSensors) * kRounds &&
                  aggregator.server_stats().requests == 0 && total_leaderships > 0;
  std::printf("%s\n", ok ? "OK: all one-sided, fully consistent"
                         : "FAILED: inconsistent state");
  return ok ? 0 : 1;
}
