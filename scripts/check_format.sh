#!/usr/bin/env bash
# Format gate: clang-format --dry-run over every C++ file in the repo.
# Exits non-zero (and prints the offending diffs) if any file deviates from
# .clang-format. Pass --fix to rewrite in place instead.
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check_format: $CLANG_FORMAT not found; skipping (install clang-format to run locally)" >&2
  exit 0
fi

mode=(--dry-run --Werror)
if [[ "${1:-}" == "--fix" ]]; then
  mode=(-i)
fi

mapfile -t files < <(git ls-files '*.cc' '*.h')
"$CLANG_FORMAT" "${mode[@]}" "${files[@]}"
echo "check_format: ${#files[@]} files OK"
