#!/usr/bin/env python3
"""CI perf gate: compare a fresh perf_smoke run against the checked-in baseline.

Usage:
    check_perf.py BASELINE.json CURRENT.json [--max-regression=0.10]

perf_smoke emits one row per configuration (the "config" field): a "default"
single-shard row plus a shard-scaling pair ("scale_seq" / "scale_par") that
runs the same larger world sequentially and sharded. Three gates:

 1. Rate regression — the default row's wall-clock rates (events/s, rpcs/s)
    must not drop more than --max-regression vs the baseline row with the
    same config. Improvements never fail; refresh the baseline in the PR
    that moves the numbers.
 2. Trace identity — scale_seq and scale_par in the *current* run must report
    identical event counts, RPC counts and trace hashes: the sharded kernel
    must replay the sequential trace bit for bit (DESIGN.md §12).
 3. Shard speedup — scale_par must beat scale_seq by a factor that depends on
    the host parallelism actually available (the "host_cpus" field):
    >= 4x with 8+ effective cores, >= 2x with 4+, >= 1.2x with 2+; skipped on
    single-core hosts, where the worker pool collapses to one thread and the
    window loop can only break even.

Passing --conn-storm=PATH additionally gates the connection-storm bench
(DESIGN.md §13) from its JSON dump: the optimized configuration's p99
time-to-first-RPC must beat the eager baseline by >= --min-ttfr-improvement
and stay under --max-ttfr-p99-us absolute at the offered join rate, with
zero control-plane rejects in either configuration. These are simulated-time
gates — deterministic, host-speed independent — so they are exact, not
thresholded against a checked-in baseline.

Passing --crossover=PATH gates the one-sided data plane (DESIGN.md §14) from
the onesided_crossover JSON dump: every swept cell must carry both an "rpc"
and a "onesided" row, and one-sided point reads must beat the RPC path by
>= --min-onesided-speedup at the 64B / 100%-read cell. Simulated-time gate,
same as the storm gates: exact.

Passing --extent-store=PATH gates the scatter-gather / segmentation data
path (DESIGN.md §16) from the extent_store JSON dump: the bimodal
configuration must move >= --min-extent-kb extents at >=
--min-extent-gbps sustained, keep the metadata p99 within
--max-meta-p99-ratio of the metadata-only solo run, and complete with zero
failures in either configuration. Simulated-time gate: exact.

Passing --tenant-isolation=PATH gates the multi-tenant service layer
(DESIGN.md §15) from the tenant_isolation JSON dump: under every attack
profile the victim tenant's p99 must stay within --max-victim-p99-ratio of
its solo run and its throughput above --min-victim-tput-frac of solo, with
zero victim failures, zero unknown-tenant rejects and zero leaked
admission accounting. Simulated-time gate: exact.
"""

import argparse
import json
import sys

# Rates gated against the baseline. Higher is better for every entry.
GATED_METRICS = ("events_per_sec", "rpcs_per_sec")
# Reported for context but not gated (events_per_rpc is a design property of
# the kernel, not a wall-clock rate; it moves only when event batching
# changes, and such a change must update the baseline deliberately).
INFO_METRICS = ("events_per_rpc", "sim_mops", "peak_rss_kb")
# Fields that must be bit-identical between the sequential and sharded run.
IDENTITY_FIELDS = ("events", "rpcs", "trace_hash")


def load_rows(path):
    with open(path) as f:
        dump = json.load(f)
    rows = dump.get("rows", [])
    if not rows:
        sys.exit(f"error: {path} has no rows")
    by_config = {}
    for i, row in enumerate(rows):
        # Rows predating the multi-config schema carry no "config"; the first
        # row was always the default configuration.
        by_config[row.get("config", "default" if i == 0 else f"row{i}")] = row
    return by_config


def required_speedup(effective_cores):
    if effective_cores >= 8:
        return 4.0
    if effective_cores >= 4:
        return 2.0
    if effective_cores >= 2:
        return 1.2
    return None  # single-core host: the pool degenerates to one worker


def check_rates(base, cur, max_regression):
    failed = []
    print(f"{'metric':<18} {'baseline':>14} {'current':>14} {'delta':>8}")
    for metric in GATED_METRICS + INFO_METRICS:
        b, c = base.get(metric), cur.get(metric)
        if b is None or c is None:
            print(f"{metric:<18} {'(missing)':>14} {'(missing)':>14}")
            continue
        delta = (c - b) / b if b else 0.0
        gated = metric in GATED_METRICS
        mark = ""
        if gated and delta < -max_regression:
            failed.append(metric)
            mark = "  << REGRESSION"
        print(f"{metric:<18} {b:>14.0f} {c:>14.0f} {delta:>+7.1%}{mark}")
    return failed


def check_scaling(cur_rows):
    seq = cur_rows.get("scale_seq")
    par = cur_rows.get("scale_par")
    if seq is None or par is None:
        print("\nscaling pair: not present in current run (perf_smoke "
              "--scale=0?); identity and speedup gates skipped")
        return []
    failed = []

    print(f"\n{'identity':<18} {'sequential':>22} {'sharded':>22}")
    for field in IDENTITY_FIELDS:
        s, p = seq.get(field), par.get(field)
        mark = ""
        if s != p:
            failed.append(f"identity:{field}")
            mark = "  << TRACE DIVERGED"
        print(f"{field:<18} {str(s):>22} {str(p):>22}{mark}")

    host_cpus = int(par.get("host_cpus", 0))
    shards = int(par.get("shards", 1))
    effective = min(shards, host_cpus)
    speedup = seq["wall_s"] / par["wall_s"] if par.get("wall_s") else 0.0
    need = required_speedup(effective)
    print(f"\nshard speedup: {speedup:.2f}x on {shards} shards "
          f"({host_cpus} host cpus, {effective} effective)")
    if need is None:
        print("speedup gate skipped: single-core host")
    elif speedup < need:
        failed.append("speedup")
        print(f"<< SPEEDUP BELOW GATE: {speedup:.2f}x < required {need:.1f}x")
    else:
        print(f"speedup gate passed: {speedup:.2f}x >= required {need:.1f}x")
    return failed


def check_crossover(path, min_speedup):
    """Gate the one-sided data plane (DESIGN.md §14) from the
    onesided_crossover JSON dump: both paths must have produced rows at every
    swept cell, and one-sided point reads must beat the RPC path by
    >= min_speedup at the 64B / 100%-read cell. Simulated-time gate: exact."""
    with open(path) as f:
        rows = json.load(f).get("rows", [])
    failed = []
    cells = {}
    gate = None
    for row in rows:
        p = row.get("path")
        if p == "gate":
            gate = row
        elif p in ("rpc", "onesided"):
            cells.setdefault((row.get("payload"), row.get("read_pct")), set()).add(p)
    lopsided = [c for c, paths in cells.items() if paths != {"rpc", "onesided"}]
    print(f"\ncrossover sweep: {len(cells)} cells with both paths required")
    if not cells or lopsided:
        failed.append("crossover:missing-paths")
        print(f"<< CELLS MISSING A PATH: {sorted(lopsided) or 'no cells at all'}")
    if gate is None:
        failed.append("crossover:missing-gate")
        print("<< NO GATE ROW IN DUMP")
    else:
        speedup = gate.get("speedup_64b_100r", 0.0)
        print(f"one-sided speedup at 64B/100% reads: {speedup:.2f}x")
        if speedup < min_speedup:
            failed.append("crossover:speedup")
            print(f"<< ONE-SIDED SPEEDUP BELOW GATE: {speedup:.2f}x < "
                  f"required {min_speedup:.1f}x")
        else:
            print(f"crossover gate passed: {speedup:.2f}x >= {min_speedup:.1f}x")
    return failed


def check_conn_storm(path, min_improvement, max_p99_us):
    rows = load_rows(path)
    eager = rows.get("eager")
    optimized = rows.get("optimized")
    if eager is None or optimized is None:
        return [f"conn_storm:missing-rows ({path})"]
    failed = []

    e_p99 = eager.get("ttfr_p99_ns", 0) / 1e3
    o_p99 = optimized.get("ttfr_p99_ns", 0) / 1e3
    improvement = e_p99 / o_p99 if o_p99 else 0.0
    print(f"\nconn_storm p99 TTFR: eager {e_p99:.1f} us, optimized "
          f"{o_p99:.1f} us -> {improvement:.2f}x")
    if improvement < min_improvement:
        failed.append("conn_storm:improvement")
        print(f"<< TTFR IMPROVEMENT BELOW GATE: {improvement:.2f}x < "
              f"required {min_improvement:.1f}x")
    if o_p99 <= 0 or o_p99 > max_p99_us:
        failed.append("conn_storm:p99")
        print(f"<< OPTIMIZED P99 TTFR ABOVE GATE: {o_p99:.1f} us > "
              f"{max_p99_us:.1f} us")
    for name, row in (("eager", eager), ("optimized", optimized)):
        rejects = sum(row.get(k, 0) for k in (
            "rejected_malformed", "rejected_replay", "rejected_no_endpoint",
            "rejected_not_member"))
        if rejects:
            failed.append(f"conn_storm:rejects:{name}")
            print(f"<< {name} SAW {rejects:.0f} CONTROL-PLANE REJECTS")
    if not failed:
        print(f"conn_storm gate passed: {improvement:.2f}x >= "
              f"{min_improvement:.1f}x, p99 {o_p99:.1f} us <= "
              f"{max_p99_us:.1f} us, zero rejects")
    return failed


def check_extent_store(path, min_extent_kb, min_extent_gbps, max_p99_ratio):
    """Gate the scatter-gather / segmentation path (DESIGN.md §16) from the
    extent_store JSON dump: bimodal extents at least min_extent_kb large and
    min_extent_gbps sustained, metadata p99 within max_p99_ratio of the
    metadata-only solo run, zero failures. Simulated-time gate: exact."""
    rows = load_rows(path)
    solo = rows.get("solo")
    bimodal = rows.get("bimodal")
    if solo is None or bimodal is None:
        return [f"extent_store:missing-rows ({path})"]
    failed = []
    solo_p99 = solo.get("meta_p99_ns", 0)
    extent_kb = bimodal.get("extent_kb", 0)
    gbps = bimodal.get("extent_gbps", 0.0)
    ratio = bimodal.get("meta_p99_ns", 0) / solo_p99 if solo_p99 else 0.0
    print(f"\nextent_store: solo meta p99 {solo_p99 / 1e3:.1f} us; bimodal "
          f"{extent_kb:.0f} KB extents at {gbps:.2f} GB/s, meta p99 "
          f"{bimodal.get('meta_p99_ns', 0) / 1e3:.1f} us ({ratio:.2f}x solo)")
    if extent_kb < min_extent_kb:
        failed.append("extent_store:extent-size")
        print(f"<< EXTENTS BELOW GATE: {extent_kb:.0f} KB < "
              f"required {min_extent_kb:.0f} KB")
    if gbps < min_extent_gbps:
        failed.append("extent_store:bandwidth")
        print(f"<< EXTENT BANDWIDTH BELOW GATE: {gbps:.2f} GB/s < "
              f"required {min_extent_gbps:.1f} GB/s")
    if ratio <= 0 or ratio > max_p99_ratio:
        failed.append("extent_store:meta-p99")
        print(f"<< METADATA P99 ABOVE GATE: {ratio:.2f}x > "
              f"{max_p99_ratio:.2f}x solo")
    for name, row in (("solo", solo), ("bimodal", bimodal)):
        if row.get("failures", 0):
            failed.append(f"extent_store:failures:{name}")
            print(f"<< {name} SAW {row['failures']:.0f} FAILED RPCs")
    if not failed:
        print(f"extent_store gate passed: {extent_kb:.0f} KB extents at "
              f"{gbps:.2f} GB/s with meta p99 {ratio:.2f}x <= "
              f"{max_p99_ratio:.2f}x solo, zero failures")
    return failed


def check_tenant_isolation(path, max_p99_ratio, min_tput_frac):
    """Gate the multi-tenant service layer (DESIGN.md §15) from the
    tenant_isolation JSON dump: victim p99/throughput bounded relative to its
    solo baseline under every attack profile, no victim failures, no
    unknown-tenant rejects, no leaked accounting. Simulated-time gate: exact."""
    rows = load_rows(path)
    solo = rows.get("solo")
    if solo is None:
        return [f"tenant_isolation:missing-solo ({path})"]
    failed = []
    solo_p99 = solo.get("victim_p99_ns", 0)
    solo_rps = solo.get("victim_rps", 0)
    print(f"\ntenant_isolation: solo victim p99 {solo_p99 / 1e3:.1f} us, "
          f"{solo_rps:.0f} rps")
    for name in ("hotloop", "oversized", "churn"):
        row = rows.get(name)
        if row is None:
            failed.append(f"tenant_isolation:missing-{name}")
            print(f"<< NO {name} ROW IN DUMP")
            continue
        p99 = row.get("victim_p99_ns", 0)
        rps = row.get("victim_rps", 0)
        ratio = p99 / solo_p99 if solo_p99 else 0.0
        frac = rps / solo_rps if solo_rps else 0.0
        print(f"  {name:<10} victim p99 {p99 / 1e3:.1f} us ({ratio:.2f}x "
              f"solo), {rps:.0f} rps ({frac:.2f}x solo), attacker ok "
              f"{row.get('attacker_ok', 0):.0f}")
        if ratio > max_p99_ratio:
            failed.append(f"tenant_isolation:p99:{name}")
            print(f"<< VICTIM P99 ABOVE GATE: {ratio:.2f}x > "
                  f"{max_p99_ratio:.2f}x solo")
        if frac < min_tput_frac:
            failed.append(f"tenant_isolation:tput:{name}")
            print(f"<< VICTIM THROUGHPUT BELOW GATE: {frac:.2f}x < "
                  f"{min_tput_frac:.2f}x solo")
        if row.get("victim_fail", 0):
            failed.append(f"tenant_isolation:victim-fail:{name}")
            print(f"<< {row['victim_fail']:.0f} VICTIM RPCs FAILED")
        if row.get("unknown_rejects", 0):
            failed.append(f"tenant_isolation:unknown-rejects:{name}")
            print(f"<< {row['unknown_rejects']:.0f} UNKNOWN-TENANT REJECTS")
    if not failed:
        print(f"tenant_isolation gate passed: victim p99 within "
              f"{max_p99_ratio:.2f}x and throughput above "
              f"{min_tput_frac:.2f}x solo under every attack")
    return failed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.10,
        help="fail if a gated metric drops by more than this fraction",
    )
    parser.add_argument(
        "--conn-storm",
        default=None,
        help="conn_storm JSON dump to gate (improvement, absolute p99, rejects)",
    )
    parser.add_argument(
        "--min-ttfr-improvement",
        type=float,
        default=2.0,
        help="required eager/optimized p99 TTFR ratio in the conn_storm dump",
    )
    parser.add_argument(
        "--max-ttfr-p99-us",
        type=float,
        default=50.0,
        help="absolute ceiling on the optimized conn_storm p99 TTFR",
    )
    parser.add_argument(
        "--crossover",
        default=None,
        help="onesided_crossover JSON dump to gate (64B/100%%-read speedup)",
    )
    parser.add_argument(
        "--min-onesided-speedup",
        type=float,
        default=1.5,
        help="required one-sided/RPC throughput ratio at 64B, 100%% reads",
    )
    parser.add_argument(
        "--extent-store",
        default=None,
        help="extent_store JSON dump to gate (size, bandwidth, meta p99 ratio)",
    )
    parser.add_argument(
        "--min-extent-kb",
        type=float,
        default=1024.0,
        help="floor on the bimodal extent size in the extent_store dump",
    )
    parser.add_argument(
        "--min-extent-gbps",
        type=float,
        default=4.0,
        help="floor on sustained bimodal extent bandwidth (payload GB/s)",
    )
    parser.add_argument(
        "--max-meta-p99-ratio",
        type=float,
        default=2.0,
        help="ceiling on bimodal metadata p99 relative to the solo run",
    )
    parser.add_argument(
        "--tenant-isolation",
        default=None,
        help="tenant_isolation JSON dump to gate (victim p99/tput vs solo)",
    )
    parser.add_argument(
        "--max-victim-p99-ratio",
        type=float,
        default=2.0,
        help="ceiling on victim p99 relative to its solo run, per attack",
    )
    parser.add_argument(
        "--min-victim-tput-frac",
        type=float,
        default=0.8,
        help="floor on victim throughput relative to its solo run, per attack",
    )
    args = parser.parse_args()

    base_rows = load_rows(args.baseline)
    cur_rows = load_rows(args.current)

    failed = check_rates(base_rows["default"], cur_rows["default"],
                         args.max_regression)
    failed += check_scaling(cur_rows)
    if args.conn_storm:
        failed += check_conn_storm(args.conn_storm, args.min_ttfr_improvement,
                                   args.max_ttfr_p99_us)
    if args.crossover:
        failed += check_crossover(args.crossover, args.min_onesided_speedup)
    if args.extent_store:
        failed += check_extent_store(args.extent_store, args.min_extent_kb,
                                     args.min_extent_gbps,
                                     args.max_meta_p99_ratio)
    if args.tenant_isolation:
        failed += check_tenant_isolation(args.tenant_isolation,
                                         args.max_victim_p99_ratio,
                                         args.min_victim_tput_frac)

    if failed:
        print(f"\nFAIL: {', '.join(failed)} (baseline {args.baseline})",
              file=sys.stderr)
        return 1
    print("\nOK: rates within "
          f"{args.max_regression:.0%}, sharded trace identical, speedup gate "
          "satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
