#!/usr/bin/env python3
"""CI perf gate: compare a fresh perf_smoke run against the checked-in baseline.

Usage:
    check_perf.py BASELINE.json CURRENT.json [--max-regression=0.10]

Reads the first row of each JSON dump (the schema bench/bench_util.h emits),
compares the wall-clock rate metrics, and exits non-zero if any gated metric
regressed by more than the threshold. Improvements are reported but never
fail the gate; the checked-in baseline should be refreshed in the PR that
moves the numbers.
"""

import argparse
import json
import sys

# Rates gated against the baseline. Higher is better for every entry.
GATED_METRICS = ("events_per_sec", "rpcs_per_sec")
# Reported for context but not gated (events_per_rpc is a design property of
# the kernel, not a wall-clock rate; it moves only when event batching
# changes, and such a change must update the baseline deliberately).
INFO_METRICS = ("events_per_rpc", "sim_mops", "peak_rss_kb")


def load_row(path):
    with open(path) as f:
        dump = json.load(f)
    rows = dump.get("rows", [])
    if not rows:
        sys.exit(f"error: {path} has no rows")
    return rows[0]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.10,
        help="fail if a gated metric drops by more than this fraction",
    )
    args = parser.parse_args()

    base = load_row(args.baseline)
    cur = load_row(args.current)

    failed = []
    print(f"{'metric':<18} {'baseline':>14} {'current':>14} {'delta':>8}")
    for metric in GATED_METRICS + INFO_METRICS:
        b, c = base.get(metric), cur.get(metric)
        if b is None or c is None:
            print(f"{metric:<18} {'(missing)':>14} {'(missing)':>14}")
            continue
        delta = (c - b) / b if b else 0.0
        gated = metric in GATED_METRICS
        mark = ""
        if gated and delta < -args.max_regression:
            failed.append((metric, b, c, delta))
            mark = "  << REGRESSION"
        print(f"{metric:<18} {b:>14.0f} {c:>14.0f} {delta:>+7.1%}{mark}")

    if failed:
        names = ", ".join(m for m, *_ in failed)
        print(
            f"\nFAIL: {names} regressed more than "
            f"{args.max_regression:.0%} vs {args.baseline}",
            file=sys.stderr,
        )
        return 1
    print("\nOK: no gated metric regressed more than "
          f"{args.max_regression:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
