#!/usr/bin/env python3
"""Layering lint for the Flock runtime modules (DESIGN.md §11).

The mechanism modules under src/flock/ form a strict stack:

    rank 0  transport, thread      (the seam + per-thread state)
    rank 1  lane                   (lane/conn/node state containers)
    rank 2  sched/receiver, sched/sender
    rank 3  combine
    rank 4  watchdog, dispatch
    rank 5  runtime                (orchestration + public facade)
    rank 6  flock, alock           (umbrella header; locks over the facade)

A module may include only strictly lower-ranked flock modules (plus its own
header and the rank-free foundation headers config/ring/wire). In particular
no mechanism module may include runtime.h — only runtime.cc and the umbrella
flock.h may. Foundation libraries (src/common, src/sim, src/fabric,
src/verbs, src/rnic, src/tenant, src/ctrl) must not include src/flock at all.

Exit status 0 when clean; 1 with one line per violation otherwise.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

RANK = {
    "transport": 0,
    "thread": 0,
    "lane": 1,
    "sched/receiver": 2,
    "sched/sender": 2,
    "combine": 3,
    "watchdog": 4,
    "dispatch": 4,
    "runtime": 5,
    "flock": 6,
    # ALock builds on the public Connection memop API, so it sits above
    # runtime like the umbrella header does (flock.h does not include it:
    # one-sided locking is opt-in).
    "alock": 6,
}

# Rank-free: includable from any flock module (pure data/format headers with
# no mechanism dependencies of their own). segment.h qualifies: chunking
# arithmetic and the reassembly slab over config + wire only.
FOUNDATION = {"config", "ring", "wire", "segment"}

# Layers below flock: must not include src/flock at all.
LOWER_LAYER_DIRS = [
    "src/common",
    "src/sim",
    "src/fabric",
    "src/verbs",
    "src/rnic",
    "src/tenant",
    "src/ctrl",
]

INCLUDE_RE = re.compile(r'^\s*#include\s+"src/flock/([^"]+)"')


def flock_module(rel):
    """src/flock-relative path -> module key, e.g. 'sched/receiver.h' ->
    'sched/receiver'. Returns None for non-module files."""
    stem = rel.rsplit(".", 1)[0]
    if stem in FOUNDATION:
        return "foundation"
    if stem in RANK:
        return stem
    return None


def iter_sources(root):
    for dirpath, _, names in os.walk(os.path.join(REPO, root)):
        for name in sorted(names):
            if name.endswith((".h", ".cc")):
                yield os.path.join(dirpath, name)


def main():
    violations = []

    # Rule 1+2: ranked includes within src/flock.
    for path in iter_sources("src/flock"):
        rel = os.path.relpath(path, os.path.join(REPO, "src/flock"))
        module = flock_module(rel)
        if module is None:
            violations.append(f"{rel}: unknown module — add it to RANK in "
                              "scripts/check_layering.py")
            continue
        if module == "foundation":
            my_rank = -1  # foundation may only include other foundation
        else:
            my_rank = RANK[module]
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                m = INCLUDE_RE.match(line)
                if not m:
                    continue
                target = flock_module(m.group(1))
                if target is None:
                    violations.append(
                        f"src/flock/{rel}:{lineno}: includes unknown flock "
                        f"header {m.group(1)}")
                    continue
                if target == "foundation":
                    continue
                if target == module and rel.endswith(".cc"):
                    continue  # a .cc includes its own header
                if RANK[target] >= max(my_rank, 0):
                    violations.append(
                        f"src/flock/{rel}:{lineno}: upward include of "
                        f"{target}.h (rank {RANK[target]}) from rank "
                        f"{my_rank} module {module}")

    # Rule 3: foundation libraries never reach up into src/flock.
    for root in LOWER_LAYER_DIRS:
        if not os.path.isdir(os.path.join(REPO, root)):
            continue
        for path in iter_sources(root):
            rel = os.path.relpath(path, REPO)
            with open(path, encoding="utf-8") as f:
                for lineno, line in enumerate(f, 1):
                    if INCLUDE_RE.match(line):
                        violations.append(
                            f"{rel}:{lineno}: lower-layer file includes "
                            "src/flock")

    if violations:
        for v in violations:
            print(v)
        print(f"check_layering: {len(violations)} violation(s)")
        return 1
    print("check_layering: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
