// Multi-tenant service layer (DESIGN.md §15): tenant identity, per-tenant
// policy, admission accounting, weighted-fair credit budgets and the
// misbehaving-tenant throttle.
//
// This is a foundation-style module: pure data + bookkeeping with no
// simulation or flock dependencies, so both the control plane (admission at
// handshake time) and the flock schedulers (credit clipping, byte quotas)
// can share one registry. The registry itself lives on the cluster's
// ControlPlane — in a real deployment it is the service layer's trusted
// state, reachable from every node's privileged runtime but never from
// tenant application code.
//
// All state is kept in small flat vectors in registration order, so every
// walk over tenants is deterministic and the whole layer adds zero heap
// traffic after registration.
#ifndef FLOCK_TENANT_TENANT_H_
#define FLOCK_TENANT_TENANT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flock::tenant {

using TenantId = uint32_t;

// Tenant 0 is the default (untenanted) identity: always admitted, never
// budgeted. Single-tenant runs stay on it and see no tenancy behavior at all.
inline constexpr TenantId kDefaultTenant = 0;

// Tenant ids must fit the 12-bit data-plane stamp (flock::wire header flags);
// the control-plane decoder rejects anything larger as forged.
inline constexpr TenantId kMaxTenantId = 0x0FFF;

// Per-tenant policy, fixed at registration.
struct TenantPolicy {
  // Weighted-fair share: scales this tenant's slice of the receiver
  // scheduler's window credit pool and its AQP allocation in Redistribute.
  uint32_t weight = 1;
  // Credits the receiver scheduler may grant this tenant per scheduling
  // window (0 = take the weighted share of the window pool; unlimited when
  // no pool is configured either). The throttle decays this exponentially.
  uint32_t credit_budget = 0;
  // Bytes this tenant may move per scheduling window (0 = unlimited). The
  // client pump stalls batches at the quota; sustained server-side
  // over-quota windows drive the throttle.
  uint64_t byte_quota = 0;
  // Lane/connection ceilings enforced by admission control (0 = unlimited).
  uint32_t max_lanes = 0;
  uint32_t max_connections = 0;
};

// Throttle state machine knobs (registry-wide).
struct ThrottleParams {
  uint32_t decay_after = 2;    // consecutive over-quota windows per decay step
  uint32_t recover_after = 4;  // consecutive clean windows per recovery step
  uint32_t max_level = 6;      // budget floor: credit_budget >> max_level
};

// Cumulative per-tenant counters, surfaced through the shared --json census.
struct TenantCounters {
  uint64_t rpcs = 0;               // requests the server handled
  uint64_t bytes = 0;              // request bytes the server received
  uint64_t credit_stalls = 0;      // grants clipped by the fair layer
  uint64_t quota_stalls = 0;       // client batches stalled on the byte quota
  uint64_t throttle_events = 0;    // decay steps applied
  uint64_t throttle_recoveries = 0;
  uint64_t over_quota_windows = 0;
  uint64_t admission_rejects = 0;
  uint64_t admission_degrades = 0;
  uint64_t stamp_mismatches = 0;   // data-plane stamp != handshake identity
};

// Admission verdict for a connect carrying a lane request.
struct Admission {
  enum class Verdict : uint8_t { kAdmit, kOverConnections, kOverLanes };
  Verdict verdict = Verdict::kAdmit;
  uint32_t lanes = 0;  // granted lane count (may be < requested: degrade)
};

class TenantRegistry {
 public:
  // Registration order fixes iteration order everywhere below.
  void Register(TenantId id, const TenantPolicy& policy);
  bool Registered(TenantId id) const { return Find(id) != nullptr; }
  const TenantPolicy* PolicyFor(TenantId id) const;

  // ---- admission control (handshake / elastic lane growth) ----

  // Charge one connection and up to `want_lanes` lanes. kAdmit with
  // lanes < want_lanes is a degraded accept. Non-admit verdicts charge
  // nothing. The default tenant is always admitted in full.
  Admission AdmitConnect(TenantId id, uint32_t want_lanes);
  // Charge one more lane on an existing connection (AddLane path).
  bool AdmitLane(TenantId id);
  // Release accounting charged by the calls above (teardown paths).
  void ReleaseConnection(TenantId id, uint32_t lanes);
  void ReleaseLanes(TenantId id, uint32_t lanes);

  uint32_t LiveConnections(TenantId id) const;
  uint32_t LiveLanes(TenantId id) const;

  // Rejected connects from ids that were never registered (forged or stale).
  uint64_t unknown_rejects() const { return unknown_rejects_; }
  void NoteUnknownTenant() { ++unknown_rejects_; }

  // ---- weighted-fair credit budgets (receiver scheduler) ----

  // Receiver-side credit pool shared by all registered tenants per window,
  // split by weight (0 = no pool; explicit credit_budget still applies).
  void SetWindowCreditPool(uint64_t credits) { window_pool_ = credits; }

  // Clip a credit grant against the tenant's remaining window budget.
  // Returns the grantable amount (0..want) and charges it. Unbudgeted
  // tenants (and the default tenant) always get the full grant.
  uint32_t ClipGrant(TenantId id, uint32_t want);

  // ---- byte quotas ----

  // Client pump gate: true while the tenant may start another batch this
  // window (soft bound: the batch that crosses the quota still goes out).
  bool SendAllowed(TenantId id) const;
  // Bytes the tenant may still send this window (UINT64_MAX = unlimited).
  // The sender scheduler packs threads by this cap instead of the offered
  // load, so a quota-bound tenant's thread→lane packing reflects what it is
  // actually allowed to move.
  uint64_t SendBudgetRemaining(TenantId id) const;
  void ChargeSent(TenantId id, uint64_t bytes);
  void NoteQuotaStall(TenantId id);

  // Server dispatch attribution: received requests and bytes. Feeds both the
  // census counters and the throttle's over-quota detection.
  void OnRequests(TenantId id, uint32_t reqs, uint64_t bytes);
  void NoteStampMismatch(TenantId id);

  // ---- window roll + throttle state machine ----

  // Advance to a new scheduling window at sim-time `now`: refill credit
  // budgets (scaled by the throttle level), reset byte windows, and step the
  // throttle — `decay_after` consecutive over-quota windows halve the budget
  // (down to >> max_level), `recover_after` clean windows restore one step.
  // Idempotent per `now`, so several runtimes ticking at the same instant
  // roll the window once.
  void EndWindow(uint64_t now);

  uint32_t ThrottleLevel(TenantId id) const;

  // ---- census ----

  const TenantCounters* CountersFor(TenantId id) const;
  size_t NumRegistered() const { return entries_.size(); }

  // fn(TenantId, const TenantPolicy&, const TenantCounters&,
  //    uint32_t live_connections, uint32_t live_lanes), registration order.
  template <typename Fn>
  void ForEachTenant(Fn&& fn) const {
    for (const Entry& e : entries_) {
      fn(e.id, e.policy, e.counters, e.connections, e.lanes);
    }
  }

  ThrottleParams throttle;

 private:
  struct Entry {
    TenantId id = kDefaultTenant;
    TenantPolicy policy;
    // Live admission accounting.
    uint32_t connections = 0;
    uint32_t lanes = 0;
    // Scheduling-window state.
    uint64_t budget_left = 0;    // credits still grantable this window
    bool budgeted = false;       // false = unlimited grants
    uint64_t sent_window = 0;    // client-charged bytes this window
    uint64_t recv_window = 0;    // server-received bytes this window
    // Throttle state machine.
    uint32_t throttle_level = 0;
    uint32_t over_streak = 0;
    uint32_t good_streak = 0;
    TenantCounters counters;
  };

  Entry* Find(TenantId id);
  const Entry* Find(TenantId id) const;
  // Recompute an entry's window budget from policy, pool and throttle level.
  void RefillBudget(Entry& e, uint64_t total_weight);
  uint64_t TotalWeight() const;

  std::vector<Entry> entries_;
  uint64_t window_pool_ = 0;
  uint64_t last_window_ = 0;
  bool window_started_ = false;
  uint64_t unknown_rejects_ = 0;
};

}  // namespace flock::tenant

#endif  // FLOCK_TENANT_TENANT_H_
