#include "src/tenant/tenant.h"

#include <algorithm>

namespace flock::tenant {

void TenantRegistry::Register(TenantId id, const TenantPolicy& policy) {
  if (id == kDefaultTenant || id > kMaxTenantId) {
    return;  // the default tenant is implicit; out-of-range ids are forged
  }
  if (Entry* e = Find(id)) {
    e->policy = policy;  // re-registration updates the policy in place
    return;
  }
  Entry e;
  e.id = id;
  e.policy = policy;
  entries_.push_back(e);
  // A tenant registered mid-window starts with a full budget.
  RefillBudget(entries_.back(), TotalWeight());
}

const TenantPolicy* TenantRegistry::PolicyFor(TenantId id) const {
  const Entry* e = Find(id);
  return e ? &e->policy : nullptr;
}

TenantRegistry::Entry* TenantRegistry::Find(TenantId id) {
  for (Entry& e : entries_) {
    if (e.id == id) {
      return &e;
    }
  }
  return nullptr;
}

const TenantRegistry::Entry* TenantRegistry::Find(TenantId id) const {
  for (const Entry& e : entries_) {
    if (e.id == id) {
      return &e;
    }
  }
  return nullptr;
}

uint64_t TenantRegistry::TotalWeight() const {
  uint64_t total = 0;
  for (const Entry& e : entries_) {
    total += std::max<uint32_t>(1, e.policy.weight);
  }
  return total;
}

Admission TenantRegistry::AdmitConnect(TenantId id, uint32_t want_lanes) {
  Entry* e = Find(id);
  if (e == nullptr) {
    // Default tenant (or a caller that skipped the unknown-id check):
    // unlimited.
    return {Admission::Verdict::kAdmit, want_lanes};
  }
  const TenantPolicy& p = e->policy;
  if (p.max_connections != 0 && e->connections >= p.max_connections) {
    e->counters.admission_rejects += 1;
    return {Admission::Verdict::kOverConnections, 0};
  }
  uint32_t grant = want_lanes;
  if (p.max_lanes != 0) {
    const uint32_t avail = p.max_lanes > e->lanes ? p.max_lanes - e->lanes : 0;
    grant = std::min(grant, avail);
  }
  if (grant == 0) {
    e->counters.admission_rejects += 1;
    return {Admission::Verdict::kOverLanes, 0};
  }
  if (grant < want_lanes) {
    e->counters.admission_degrades += 1;
  }
  e->connections += 1;
  e->lanes += grant;
  return {Admission::Verdict::kAdmit, grant};
}

bool TenantRegistry::AdmitLane(TenantId id) {
  Entry* e = Find(id);
  if (e == nullptr) {
    return true;
  }
  if (e->policy.max_lanes != 0 && e->lanes >= e->policy.max_lanes) {
    e->counters.admission_rejects += 1;
    return false;
  }
  e->lanes += 1;
  return true;
}

void TenantRegistry::ReleaseConnection(TenantId id, uint32_t lanes) {
  if (Entry* e = Find(id)) {
    e->connections -= std::min(e->connections, 1u);
    e->lanes -= std::min(e->lanes, lanes);
  }
}

void TenantRegistry::ReleaseLanes(TenantId id, uint32_t lanes) {
  if (Entry* e = Find(id)) {
    e->lanes -= std::min(e->lanes, lanes);
  }
}

uint32_t TenantRegistry::LiveConnections(TenantId id) const {
  const Entry* e = Find(id);
  return e ? e->connections : 0;
}

uint32_t TenantRegistry::LiveLanes(TenantId id) const {
  const Entry* e = Find(id);
  return e ? e->lanes : 0;
}

uint32_t TenantRegistry::ClipGrant(TenantId id, uint32_t want) {
  Entry* e = Find(id);
  if (e == nullptr || !e->budgeted) {
    return want;
  }
  const uint32_t grant =
      static_cast<uint32_t>(std::min<uint64_t>(want, e->budget_left));
  e->budget_left -= grant;
  if (grant < want) {
    e->counters.credit_stalls += 1;
  }
  return grant;
}

bool TenantRegistry::SendAllowed(TenantId id) const {
  const Entry* e = Find(id);
  if (e == nullptr || e->policy.byte_quota == 0) {
    return true;
  }
  return e->sent_window < e->policy.byte_quota;
}

uint64_t TenantRegistry::SendBudgetRemaining(TenantId id) const {
  const Entry* e = Find(id);
  if (e == nullptr || e->policy.byte_quota == 0) {
    return UINT64_MAX;
  }
  return e->policy.byte_quota > e->sent_window
             ? e->policy.byte_quota - e->sent_window
             : 0;
}

void TenantRegistry::ChargeSent(TenantId id, uint64_t bytes) {
  if (Entry* e = Find(id)) {
    e->sent_window += bytes;
  }
}

void TenantRegistry::NoteQuotaStall(TenantId id) {
  if (Entry* e = Find(id)) {
    e->counters.quota_stalls += 1;
  }
}

void TenantRegistry::OnRequests(TenantId id, uint32_t reqs, uint64_t bytes) {
  if (Entry* e = Find(id)) {
    e->counters.rpcs += reqs;
    e->counters.bytes += bytes;
    e->recv_window += bytes;
  }
}

void TenantRegistry::NoteStampMismatch(TenantId id) {
  if (Entry* e = Find(id)) {
    e->counters.stamp_mismatches += 1;
  }
}

void TenantRegistry::RefillBudget(Entry& e, uint64_t total_weight) {
  uint64_t base = e.policy.credit_budget;
  if (base == 0 && window_pool_ != 0 && total_weight != 0) {
    base = window_pool_ * std::max<uint32_t>(1, e.policy.weight) / total_weight;
  }
  if (base == 0) {
    e.budgeted = false;
    e.budget_left = 0;
    return;
  }
  e.budgeted = true;
  // The throttle halves the budget per level but never below 1 credit per
  // window, so a throttled tenant drains its deficit instead of deadlocking.
  e.budget_left = std::max<uint64_t>(1, base >> e.throttle_level);
}

void TenantRegistry::EndWindow(uint64_t now) {
  if (window_started_ && now == last_window_) {
    return;  // several runtimes ticked at the same instant
  }
  window_started_ = true;
  last_window_ = now;
  const uint64_t total_weight = TotalWeight();
  for (Entry& e : entries_) {
    const bool over =
        e.policy.byte_quota != 0 && e.recv_window > e.policy.byte_quota;
    if (over) {
      e.counters.over_quota_windows += 1;
      e.over_streak += 1;
      e.good_streak = 0;
      if (e.over_streak >= throttle.decay_after) {
        e.over_streak = 0;
        if (e.throttle_level < throttle.max_level) {
          e.throttle_level += 1;
          e.counters.throttle_events += 1;
        }
      }
    } else {
      e.good_streak += 1;
      e.over_streak = 0;
      if (e.good_streak >= throttle.recover_after) {
        e.good_streak = 0;
        if (e.throttle_level > 0) {
          e.throttle_level -= 1;
          e.counters.throttle_recoveries += 1;
        }
      }
    }
    e.sent_window = 0;
    e.recv_window = 0;
    RefillBudget(e, total_weight);
  }
}

uint32_t TenantRegistry::ThrottleLevel(TenantId id) const {
  const Entry* e = Find(id);
  return e ? e->throttle_level : 0;
}

const TenantCounters* TenantRegistry::CountersFor(TenantId id) const {
  const Entry* e = Find(id);
  return e ? &e->counters : nullptr;
}

}  // namespace flock::tenant
