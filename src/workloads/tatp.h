// TATP: the Telecom Application Transaction Processing benchmark (§8.5.2).
//
// The standard mix (read-intensive: 80% reads / 20% updates, matching the
// paper's "70% single key reads, 10% multi-key reads, rest updating keys"):
//
//   GET_SUBSCRIBER_DATA    35%  read  {Subscriber}
//   GET_NEW_DESTINATION    10%  read  {SpecialFacility, CallForwarding}
//   GET_ACCESS_DATA        35%  read  {AccessInfo}
//   UPDATE_SUBSCRIBER_DATA  2%  write {Subscriber, SpecialFacility}
//   UPDATE_LOCATION        14%  write {Subscriber}
//   INSERT_CALL_FORWARDING  2%  read {Subscriber} + write {CallForwarding}
//   DELETE_CALL_FORWARDING  2%  write {CallForwarding}
//
// Rows are pre-populated (inserts/deletes become updates of a presence flag,
// the usual simplification for partitioned OCC stores); subscriber ids are
// drawn with TATP's non-uniform getSubscriberId distribution.
#ifndef FLOCK_WORKLOADS_TATP_H_
#define FLOCK_WORKLOADS_TATP_H_

#include <cstdint>
#include <functional>

#include "src/common/rand.h"
#include "src/txn/coordinator.h"

namespace flock::workloads {

class Tatp {
 public:
  enum Table : uint64_t {
    kSubscriber = 1,
    kAccessInfo = 2,
    kSpecialFacility = 3,
    kCallForwarding = 4,
  };

  explicit Tatp(uint64_t subscribers) : subscribers_(subscribers) {}

  uint64_t subscribers() const { return subscribers_; }

  static uint64_t Key(Table table, uint64_t subscriber) {
    return (static_cast<uint64_t>(table) << 56) | subscriber;
  }

  // Population: every subscriber has one row per table (access-info /
  // special-facility / call-forwarding types collapsed to one row each; type
  // choice does not change the communication pattern).
  void Populate(const std::function<void(uint64_t key)>& insert) const {
    for (uint64_t s = 0; s < subscribers_; ++s) {
      insert(Key(kSubscriber, s));
      insert(Key(kAccessInfo, s));
      insert(Key(kSpecialFacility, s));
      insert(Key(kCallForwarding, s));
    }
  }

  txn::TxRequest Next(Rng& rng) {
    const uint64_t s = SubscriberId(rng);
    const uint64_t roll = rng.NextBelow(100);
    txn::TxRequest tx;
    if (roll < 35) {  // GET_SUBSCRIBER_DATA
      tx.reads = {Key(kSubscriber, s)};
    } else if (roll < 45) {  // GET_NEW_DESTINATION
      tx.reads = {Key(kSpecialFacility, s), Key(kCallForwarding, s)};
    } else if (roll < 80) {  // GET_ACCESS_DATA
      tx.reads = {Key(kAccessInfo, s)};
    } else if (roll < 82) {  // UPDATE_SUBSCRIBER_DATA
      tx.writes = {Key(kSubscriber, s), Key(kSpecialFacility, s)};
    } else if (roll < 96) {  // UPDATE_LOCATION
      tx.writes = {Key(kSubscriber, s)};
    } else if (roll < 98) {  // INSERT_CALL_FORWARDING
      tx.reads = {Key(kSubscriber, s)};
      tx.writes = {Key(kCallForwarding, s)};
    } else {  // DELETE_CALL_FORWARDING
      tx.writes = {Key(kCallForwarding, s)};
    }
    return tx;
  }

 private:
  // TATP's non-uniform subscriber draw: (A & rand) | rand with A = 2^k - 1.
  uint64_t SubscriberId(Rng& rng) {
    uint64_t a = 1;
    while (a < subscribers_) {
      a <<= 1;
    }
    a = (a >> 1) - 1;
    const uint64_t value =
        (rng.NextBelow(a + 1) & rng.NextBelow(subscribers_)) % subscribers_;
    return value;
  }

  uint64_t subscribers_;
};

}  // namespace flock::workloads

#endif  // FLOCK_WORKLOADS_TATP_H_
