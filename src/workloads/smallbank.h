// Smallbank: the write-intensive banking benchmark (§8.5.2).
//
// Six transaction types over (savings, checking) rows; only Balance (15%) is
// read-only, so 85% of transactions update keys. Account skew follows the
// paper's setup: 4% of the accounts receive 90% of the accesses.
//
//   Amalgamate        15%  write {Sav(a1), Chk(a1), Chk(a2)}
//   Balance           15%  read  {Sav(a), Chk(a)}
//   DepositChecking   15%  write {Chk(a)}
//   SendPayment       25%  write {Chk(a1), Chk(a2)}
//   TransactSavings   15%  write {Sav(a)}
//   WriteCheck        15%  read {Sav(a)} + write {Chk(a)}
#ifndef FLOCK_WORKLOADS_SMALLBANK_H_
#define FLOCK_WORKLOADS_SMALLBANK_H_

#include <cstdint>
#include <functional>

#include "src/common/rand.h"
#include "src/txn/coordinator.h"

namespace flock::workloads {

class Smallbank {
 public:
  enum Table : uint64_t {
    kSavings = 1,
    kChecking = 2,
  };

  Smallbank(uint64_t accounts, double hot_fraction = 0.04, double hot_probability = 0.9)
      : accounts_(accounts),
        hot_accounts_(static_cast<uint64_t>(static_cast<double>(accounts) * hot_fraction)),
        hot_probability_(hot_probability) {
    if (hot_accounts_ == 0) {
      hot_accounts_ = 1;
    }
  }

  uint64_t accounts() const { return accounts_; }

  static uint64_t Key(Table table, uint64_t account) {
    return (static_cast<uint64_t>(table) << 56) | account;
  }

  void Populate(const std::function<void(uint64_t key)>& insert) const {
    for (uint64_t a = 0; a < accounts_; ++a) {
      insert(Key(kSavings, a));
      insert(Key(kChecking, a));
    }
  }

  txn::TxRequest Next(Rng& rng) {
    const uint64_t a1 = Account(rng);
    uint64_t a2 = Account(rng);
    if (a2 == a1) {
      a2 = (a1 + 1) % accounts_;
    }
    const uint64_t roll = rng.NextBelow(100);
    txn::TxRequest tx;
    if (roll < 15) {  // Amalgamate
      tx.writes = {Key(kSavings, a1), Key(kChecking, a1), Key(kChecking, a2)};
    } else if (roll < 30) {  // Balance (the only read-only transaction)
      tx.reads = {Key(kSavings, a1), Key(kChecking, a1)};
    } else if (roll < 45) {  // DepositChecking
      tx.writes = {Key(kChecking, a1)};
    } else if (roll < 70) {  // SendPayment
      tx.writes = {Key(kChecking, a1), Key(kChecking, a2)};
    } else if (roll < 85) {  // TransactSavings
      tx.writes = {Key(kSavings, a1)};
    } else {  // WriteCheck
      tx.reads = {Key(kSavings, a1)};
      tx.writes = {Key(kChecking, a1)};
    }
    return tx;
  }

 private:
  uint64_t Account(Rng& rng) {
    if (rng.NextBool(hot_probability_)) {
      return rng.NextBelow(hot_accounts_);
    }
    if (accounts_ > hot_accounts_) {
      return hot_accounts_ + rng.NextBelow(accounts_ - hot_accounts_);
    }
    return rng.NextBelow(accounts_);
  }

  uint64_t accounts_;
  uint64_t hot_accounts_;
  double hot_probability_;
};

}  // namespace flock::workloads

#endif  // FLOCK_WORKLOADS_SMALLBANK_H_
