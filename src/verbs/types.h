// Work-request and completion types for the simulated verbs API.
//
// The shapes deliberately mirror libibverbs (ibv_send_wr / ibv_recv_wr /
// ibv_wc) so that code written against this API — Flock, the baselines, the
// applications — reads like real RDMA code and could be retargeted at real
// hardware by swapping the backend.
#ifndef FLOCK_VERBS_TYPES_H_
#define FLOCK_VERBS_TYPES_H_

#include <cstdint>

namespace flock::verbs {

// Transport types (Table 1 of the paper).
enum class QpType : uint8_t {
  kRc,  // reliable connection: all verbs, hardware retransmission
  kUc,  // unreliable connection: writes and sends only
  kUd,  // unreliable datagram: sends only, MTU-limited, one-to-many
};

enum class Opcode : uint8_t {
  kSend,
  kSendImm,
  kWrite,
  kWriteImm,
  kRead,
  kFetchAdd,
  kCmpSwap,
};

enum class WcStatus : uint8_t {
  kSuccess,
  kRemoteAccessError,  // rkey/bounds check failed at the responder
  kRemoteInvalidQp,    // destination QP does not exist / wrong type / errored
  kRnrError,           // responder had no receive buffer posted (RC)
  kUnsupportedOp,      // opcode not legal on this transport (Table 1)
  kMtuExceeded,        // UD payload larger than MTU - GRH
  kFlushError,         // WR flushed: the QP entered the error state
  kQpError,            // post rejected: the QP is already in the error state
};

enum class WcOpcode : uint8_t {
  kSend,
  kWrite,
  kRead,
  kFetchAdd,
  kCmpSwap,
  kRecv,
  kRecvImm,  // consumed by RDMA write-with-imm or send-with-imm
};

inline const char* WcStatusName(WcStatus s) {
  switch (s) {
    case WcStatus::kSuccess:
      return "success";
    case WcStatus::kRemoteAccessError:
      return "remote-access-error";
    case WcStatus::kRemoteInvalidQp:
      return "remote-invalid-qp";
    case WcStatus::kRnrError:
      return "rnr";
    case WcStatus::kUnsupportedOp:
      return "unsupported-op";
    case WcStatus::kMtuExceeded:
      return "mtu-exceeded";
    case WcStatus::kFlushError:
      return "flush-error";
    case WcStatus::kQpError:
      return "qp-error";
  }
  return "?";
}

// A send-queue work request (single contiguous local segment — the only form
// this codebase needs; real SGE lists degenerate to this shape here).
struct SendWr {
  uint64_t wr_id = 0;
  Opcode opcode = Opcode::kSend;
  bool signaled = true;  // selective signaling: unsignaled WRs produce no CQE

  // Local segment.
  uint64_t local_addr = 0;
  uint32_t length = 0;

  // One-sided target (write/read/atomics).
  uint64_t remote_addr = 0;
  uint32_t rkey = 0;

  // Immediate data (kSendImm / kWriteImm).
  uint32_t imm = 0;

  // Atomics.
  uint64_t compare = 0;      // kCmpSwap: expected value
  uint64_t swap_or_add = 0;  // kCmpSwap: new value; kFetchAdd: addend

  // UD address handle.
  int dest_node = -1;
  uint32_t dest_qpn = 0;

  // Internal (stamped at post time, not set by callers): the QP's reset
  // epoch when this WR was enqueued. A WR that survives into a recycled
  // incarnation of its QP (Device::ResetQp bumped the epoch) is stale and is
  // dropped instead of delivered into the new session.
  uint32_t src_epoch = 0;
};

struct RecvWr {
  uint64_t wr_id = 0;
  uint64_t local_addr = 0;
  uint32_t length = 0;
};

struct Completion {
  uint64_t wr_id = 0;
  WcOpcode opcode = WcOpcode::kSend;
  WcStatus status = WcStatus::kSuccess;
  uint32_t byte_len = 0;
  uint32_t imm = 0;
  bool has_imm = false;
  // Receive-side provenance (meaningful for kRecv/kRecvImm).
  int src_node = -1;
  uint32_t src_qpn = 0;
  // The local QP this completion came from (0 = unknown). Lets a consumer
  // that replaced a lane's QP distinguish a stale flush of the dead QP from
  // an error on the live one.
  uint32_t qpn = 0;
};

}  // namespace flock::verbs

#endif  // FLOCK_VERBS_TYPES_H_
