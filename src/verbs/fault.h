// Deterministic fault injection for the simulated verbs stack (§7).
//
// Faults are scheduled in *simulated* time, so a seeded schedule reproduces
// the exact same failure interleaving run after run. Supported faults:
//
//   * QP kill — the QP transitions to the error state: queued WRs and posted
//     receives flush as kFlushError completions, in-flight WRs complete with
//     kFlushError, later posts are rejected with kQpError, and peers writing
//     to the dead QP see kRemoteInvalidQp (the observable outcome of RC
//     transport-retry exhaustion on real hardware).
//   * Transient send errors — the next N work requests leaving (node, qpn)
//     are dropped on the wire and complete with an injected status
//     (kRnrError / kRemoteAccessError), modeling recoverable transport noise.
//   * Node pause / kill — the node's NIC stops serving TX and RX (pause), or
//     additionally errors every QP on the node (kill).
//
// The injector is consulted from the device data path only through
// `armed()` / `Qp::in_error()` — plain bool loads, no extra simulation
// events — so a run that never arms a fault executes the bit-identical event
// sequence of a build without fault support (the reference-trace guarantee).
#ifndef FLOCK_VERBS_FAULT_H_
#define FLOCK_VERBS_FAULT_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"
#include "src/sim/simulator.h"
#include "src/verbs/types.h"

namespace flock::verbs {

class Cluster;

class FaultInjector {
 public:
  struct Stats {
    uint64_t qp_kills = 0;
    uint64_t injected_errors = 0;
    uint64_t node_pauses = 0;
    uint64_t node_kills = 0;
  };

  explicit FaultInjector(Cluster& cluster) : cluster_(cluster) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // True once any fault has been requested (scheduled or immediate).
  bool armed() const { return armed_; }

  // ---- immediate actions ----
  void KillQp(int node, uint32_t qpn);
  void KillNode(int node);  // errors every QP on the node, then pauses it
  void PauseNode(int node);
  void ResumeNode(int node);
  void InjectSendErrors(int node, uint32_t qpn, WcStatus status, uint32_t count);

  // ---- scheduled actions (`at` is absolute simulated time) ----
  void KillQpAt(Nanos at, int node, uint32_t qpn);
  void KillNodeAt(Nanos at, int node);
  void PauseNodeAt(Nanos at, int node, Nanos duration);
  void InjectSendErrorsAt(Nanos at, int node, uint32_t qpn, WcStatus status,
                          uint32_t count);

  // Device hook, called once per delivered WR (only while armed): returns the
  // status the transport should report, consuming one pending injected error
  // for (node, qpn) if any. A non-success return means the WR never reaches
  // the peer.
  WcStatus FilterSendStatus(int node, uint32_t qpn, WcStatus status);

  const Stats& stats() const { return stats_; }

 private:
  struct PendingError {
    int node = -1;
    uint32_t qpn = 0;
    WcStatus status = WcStatus::kSuccess;
    uint32_t remaining = 0;
  };

  // Marks the injector armed; checks the simulation is single-shard (fault
  // actions mutate foreign-node state without paying the fabric delay).
  void Arm();

  Nanos DelayUntil(Nanos at) const;
  sim::Proc DelayedKillQp(Nanos at, int node, uint32_t qpn);
  sim::Proc DelayedKillNode(Nanos at, int node);
  sim::Proc DelayedPauseNode(Nanos at, int node, Nanos duration);
  sim::Proc DelayedInjectSendErrors(Nanos at, int node, uint32_t qpn,
                                    WcStatus status, uint32_t count);

  Cluster& cluster_;
  bool armed_ = false;
  std::vector<PendingError> pending_errors_;
  Stats stats_;
};

}  // namespace flock::verbs

#endif  // FLOCK_VERBS_FAULT_H_
