#include "src/verbs/fault.h"

#include "src/verbs/device.h"

namespace flock::verbs {

void FaultInjector::Arm() {
  // Fault injection mutates foreign-node state (QP kills, NIC pauses,
  // sender-side error filtering at the receiver) without paying the fabric
  // delay, which would race across shards. The fault benches and tests run
  // the sequential (one-shard) kernel, where this is sound.
  FLOCK_CHECK_EQ(cluster_.sim().num_shards(), 1)
      << "fault injection requires a single-shard simulation";
  armed_ = true;
}

void FaultInjector::KillQp(int node, uint32_t qpn) {
  Arm();
  Device& dev = cluster_.device(node);
  Qp* qp = dev.FindQp(qpn);
  if (qp != nullptr && !qp->in_error()) {
    dev.ErrorQp(*qp);
    stats_.qp_kills += 1;
  }
}

void FaultInjector::KillNode(int node) {
  Arm();
  Device& dev = cluster_.device(node);
  for (uint32_t qpn = 1;; ++qpn) {
    Qp* qp = dev.FindQp(qpn);
    if (qp == nullptr) {
      break;
    }
    if (!qp->in_error()) {
      dev.ErrorQp(*qp);
      stats_.qp_kills += 1;
    }
  }
  dev.Pause();
  stats_.node_kills += 1;
}

void FaultInjector::PauseNode(int node) {
  Arm();
  cluster_.device(node).Pause();
  stats_.node_pauses += 1;
}

void FaultInjector::ResumeNode(int node) { cluster_.device(node).Resume(); }

void FaultInjector::InjectSendErrors(int node, uint32_t qpn, WcStatus status,
                                     uint32_t count) {
  FLOCK_CHECK(status != WcStatus::kSuccess);
  if (count == 0) {
    return;
  }
  Arm();
  pending_errors_.push_back(PendingError{node, qpn, status, count});
}

WcStatus FaultInjector::FilterSendStatus(int node, uint32_t qpn, WcStatus status) {
  if (status != WcStatus::kSuccess || pending_errors_.empty()) {
    return status;
  }
  for (size_t i = 0; i < pending_errors_.size(); ++i) {
    PendingError& pe = pending_errors_[i];
    if (pe.node == node && pe.qpn == qpn) {
      const WcStatus injected = pe.status;
      if (--pe.remaining == 0) {
        pending_errors_.erase(pending_errors_.begin() +
                              static_cast<ptrdiff_t>(i));
      }
      stats_.injected_errors += 1;
      return injected;
    }
  }
  return status;
}

Nanos FaultInjector::DelayUntil(Nanos at) const {
  const Nanos now = cluster_.sim().Now();
  return at > now ? at - now : 0;
}

void FaultInjector::KillQpAt(Nanos at, int node, uint32_t qpn) {
  Arm();
  cluster_.sim().Spawn(DelayedKillQp(at, node, qpn));
}

void FaultInjector::KillNodeAt(Nanos at, int node) {
  Arm();
  cluster_.sim().Spawn(DelayedKillNode(at, node));
}

void FaultInjector::PauseNodeAt(Nanos at, int node, Nanos duration) {
  Arm();
  cluster_.sim().Spawn(DelayedPauseNode(at, node, duration));
}

void FaultInjector::InjectSendErrorsAt(Nanos at, int node, uint32_t qpn,
                                       WcStatus status, uint32_t count) {
  Arm();
  cluster_.sim().Spawn(DelayedInjectSendErrors(at, node, qpn, status, count));
}

sim::Proc FaultInjector::DelayedKillQp(Nanos at, int node, uint32_t qpn) {
  co_await sim::Delay(cluster_.sim(), DelayUntil(at));
  KillQp(node, qpn);
}

sim::Proc FaultInjector::DelayedKillNode(Nanos at, int node) {
  co_await sim::Delay(cluster_.sim(), DelayUntil(at));
  KillNode(node);
}

sim::Proc FaultInjector::DelayedPauseNode(Nanos at, int node, Nanos duration) {
  co_await sim::Delay(cluster_.sim(), DelayUntil(at));
  PauseNode(node);
  co_await sim::Delay(cluster_.sim(), duration);
  ResumeNode(node);
}

sim::Proc FaultInjector::DelayedInjectSendErrors(Nanos at, int node, uint32_t qpn,
                                                 WcStatus status, uint32_t count) {
  co_await sim::Delay(cluster_.sim(), DelayUntil(at));
  InjectSendErrors(node, qpn, status, count);
}

}  // namespace flock::verbs
