#include <algorithm>
#include <vector>

#include "src/verbs/device.h"

namespace flock::verbs {

Cluster::Cluster(const Config& config)
    : cost_(config.cost),
      network_(sim_, cost_, config.num_nodes),
      fault_(*this) {
  FLOCK_CHECK_GT(config.num_nodes, 0);
  FLOCK_CHECK_GT(config.num_shards, 0);
  // Always run the windowed kernel (shards=1 is the sequential special case
  // of the same machinery): cross-node hops take the mailbox path at every
  // shard count, which is what makes traces shard-count independent. The
  // window width is the fabric's minimum cross-node delay.
  std::vector<int> node_shard(static_cast<size_t>(config.num_nodes));
  for (int n = 0; n < config.num_nodes; ++n) {
    node_shard[static_cast<size_t>(n)] = n % config.num_shards;
  }
  sim_.ConfigureSharding(std::min(config.num_shards, config.num_nodes),
                         node_shard, network_.MinCrossNodeDelay(),
                         config.num_workers);
  nodes_.reserve(static_cast<size_t>(config.num_nodes));
  for (int i = 0; i < config.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<NodeState>(sim_, config.cores_per_node));
    nodes_.back()->device = std::make_unique<Device>(*this, i);
  }
}

Cluster::~Cluster() {
  // Destroy all coroutine frames while the nodes they reference still exist.
  sim_.Shutdown();
}

std::pair<Qp*, Qp*> Cluster::ConnectRc(int node_a, Cq* scq_a, Cq* rcq_a, int node_b,
                                       Cq* scq_b, Cq* rcq_b) {
  Qp* a = device(node_a).CreateQp(QpType::kRc, scq_a, rcq_a);
  Qp* b = device(node_b).CreateQp(QpType::kRc, scq_b, rcq_b);
  a->ConnectTo(node_b, b->qpn());
  b->ConnectTo(node_a, a->qpn());
  return {a, b};
}

}  // namespace flock::verbs
