#include "src/verbs/device.h"

namespace flock::verbs {

Cluster::Cluster(const Config& config)
    : cost_(config.cost),
      network_(sim_, cost_, config.num_nodes),
      fault_(*this) {
  FLOCK_CHECK_GT(config.num_nodes, 0);
  nodes_.reserve(static_cast<size_t>(config.num_nodes));
  for (int i = 0; i < config.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<NodeState>(sim_, config.cores_per_node));
    nodes_.back()->device = std::make_unique<Device>(*this, i);
  }
}

Cluster::~Cluster() {
  // Destroy all coroutine frames while the nodes they reference still exist.
  sim_.Shutdown();
}

std::pair<Qp*, Qp*> Cluster::ConnectRc(int node_a, Cq* scq_a, Cq* rcq_a, int node_b,
                                       Cq* scq_b, Cq* rcq_b) {
  Qp* a = device(node_a).CreateQp(QpType::kRc, scq_a, rcq_a);
  Qp* b = device(node_b).CreateQp(QpType::kRc, scq_b, rcq_b);
  a->ConnectTo(node_b, b->qpn());
  b->ConnectTo(node_a, a->qpn());
  return {a, b};
}

}  // namespace flock::verbs
