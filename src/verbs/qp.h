// Queue pairs.
//
// A Qp owns its send/receive queues and transport-level validation (which
// verbs each transport supports — Table 1 of the paper); the Device drains
// the send queue in order, which preserves the per-QP ordering RC guarantees
// and that Flock's canary scheme depends on.
#ifndef FLOCK_VERBS_QP_H_
#define FLOCK_VERBS_QP_H_

#include "src/common/logging.h"
#include "src/common/pool.h"
#include "src/sim/sync.h"
#include "src/verbs/cq.h"
#include "src/verbs/types.h"

namespace flock::verbs {

class Device;

class Qp {
 public:
  Qp(Device& device, uint32_t qpn, QpType type, Cq* send_cq, Cq* recv_cq)
      : device_(device), qpn_(qpn), type_(type), send_cq_(send_cq), recv_cq_(recv_cq) {}

  Qp(const Qp&) = delete;
  Qp& operator=(const Qp&) = delete;

  uint32_t qpn() const { return qpn_; }
  QpType type() const { return type_; }
  Cq* send_cq() const { return send_cq_; }
  Cq* recv_cq() const { return recv_cq_; }
  int node() const;

  // RC/UC: establish the one-to-one connection.
  void ConnectTo(int peer_node, uint32_t peer_qpn) {
    FLOCK_CHECK(type_ != QpType::kUd) << "UD QPs are connectionless";
    peer_node_ = peer_node;
    peer_qpn_ = peer_qpn;
  }

  bool connected() const { return peer_node_ >= 0; }
  int peer_node() const { return peer_node_; }
  uint32_t peer_qpn() const { return peer_qpn_; }

  // A QP in the error state accepts no new work; its queued WRs have been
  // flushed with kFlushError completions (see Device::ErrorQp). Mirrors
  // IBV_QPS_ERR — recovery means Device::ResetQp (the recycling pool's
  // reset→init→RTS shortcut) or recreating the QP.
  bool in_error() const { return in_error_; }

  // Incremented by Device::ResetQp. WRs are stamped with the epoch at post
  // time; the device drops any WR whose stamp no longer matches, so work
  // posted to a previous incarnation can never leak into the next session.
  uint32_t reset_epoch() const { return reset_epoch_; }

  // Validates the WR against the transport's capabilities and enqueues it for
  // the device's send engine. Returns kSuccess if accepted. The *CPU* cost of
  // posting (WQE build + doorbell) is charged by the caller.
  WcStatus PostSend(const SendWr& wr);

  // Batched post: one doorbell, many WRs (the Flock leader's linked WR list).
  // All-or-nothing: every WR is validated before any is enqueued, so a
  // mid-batch error never leaves earlier WRs silently posted. On failure the
  // status of the offending WR is returned and `failed_index` (if non-null)
  // receives its position; the caller may fix or re-stage the whole batch.
  // On success the batch is enqueued in order behind one doorbell kick.
  WcStatus PostSendBatch(const SendWr* wrs, size_t count,
                         size_t* failed_index = nullptr);

  void PostRecv(const RecvWr& wr) { recv_queue_.push_back(wr); }

  size_t send_queue_depth() const { return send_queue_.size(); }
  size_t recv_queue_depth() const { return recv_queue_.size(); }

 private:
  friend class Device;

  WcStatus Validate(const SendWr& wr) const;

  Device& device_;
  const uint32_t qpn_;
  const QpType type_;
  Cq* const send_cq_;
  Cq* const recv_cq_;

  int peer_node_ = -1;
  uint32_t peer_qpn_ = 0;

  // FifoRing, not std::deque: the send queue oscillates around a fixed depth
  // in steady state, and a deque would allocate/free a node each time the
  // queue drifts across a block boundary.
  FifoRing<SendWr> send_queue_;
  FifoRing<RecvWr> recv_queue_;
  // The send engine is a persistent per-QP process: spawned on the first
  // doorbell, it drains the whole run of queued WRs per wakeup and then parks
  // on engine_wake_ (no coroutine frame is built per doorbell).
  bool engine_running_ = false;
  bool engine_spawned_ = false;
  sim::OneShotEvent engine_wake_;
  bool in_error_ = false;
  uint32_t reset_epoch_ = 0;
};

}  // namespace flock::verbs

#endif  // FLOCK_VERBS_QP_H_
