// Completion queues.
//
// The device DMAs completions in; application threads poll them out. Polling
// itself is free at this layer — the *CPU cost* of ibv_poll_cq is charged by
// the caller from the CostModel, because who pays the polling cost (and how
// often they poll empty) is precisely what separates the systems under study.
#ifndef FLOCK_VERBS_CQ_H_
#define FLOCK_VERBS_CQ_H_

#include <cstdint>
#include <vector>

#include "src/verbs/types.h"

namespace flock::verbs {

// Power-of-two ring: completions are stored in place and recycled, so the
// push/poll hot path never touches the allocator (polling dominates — every
// dispatcher and scheduler pass polls, almost always empty).
class Cq {
 public:
  // Device-side: deliver a completion.
  void Push(const Completion& wc) {
    if (tail_ - head_ == ring_.size()) {
      Grow();
    }
    ring_[tail_ & (ring_.size() - 1)] = wc;
    ++tail_;
    ++pushed_;
  }

  // Host-side: non-blocking poll of one completion.
  bool Poll(Completion* out) {
    if (head_ == tail_) {
      return false;
    }
    *out = ring_[head_ & (ring_.size() - 1)];
    ++head_;
    ++polled_;
    return true;
  }

  // Vectorized drain: pops up to `max` completions into `out`, returning the
  // count. Batch order is push order, so per-QP completion order (and the
  // position of error CQEs between successes) is exactly what a one-at-a-time
  // Poll loop would see. The *CPU* cost of the poll is still charged by the
  // caller, typically once per batch — that per-batch (not per-CQE) charging
  // is the ibv_poll_cq(num_entries) amortization the dispatchers exploit.
  size_t PollBatch(Completion* out, size_t max) {
    size_t n = 0;
    while (n < max && head_ != tail_) {
      out[n++] = ring_[head_ & (ring_.size() - 1)];
      ++head_;
    }
    polled_ += n;
    return n;
  }

  size_t depth() const { return static_cast<size_t>(tail_ - head_); }
  uint64_t pushed() const { return pushed_; }
  uint64_t polled() const { return polled_; }

 private:
  void Grow() {
    const size_t old_cap = ring_.size();
    const size_t new_cap = old_cap == 0 ? 64 : old_cap * 2;
    std::vector<Completion> grown(new_cap);
    for (uint64_t i = head_; i != tail_; ++i) {
      grown[i & (new_cap - 1)] = ring_[i & (old_cap - 1)];
    }
    ring_ = std::move(grown);
  }

  std::vector<Completion> ring_;
  uint64_t head_ = 0;
  uint64_t tail_ = 0;
  uint64_t pushed_ = 0;
  uint64_t polled_ = 0;
};

}  // namespace flock::verbs

#endif  // FLOCK_VERBS_CQ_H_
