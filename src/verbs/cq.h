// Completion queues.
//
// The device DMAs completions in; application threads poll them out. Polling
// itself is free at this layer — the *CPU cost* of ibv_poll_cq is charged by
// the caller from the CostModel, because who pays the polling cost (and how
// often they poll empty) is precisely what separates the systems under study.
#ifndef FLOCK_VERBS_CQ_H_
#define FLOCK_VERBS_CQ_H_

#include <deque>

#include "src/verbs/types.h"

namespace flock::verbs {

class Cq {
 public:
  // Device-side: deliver a completion.
  void Push(const Completion& wc) {
    entries_.push_back(wc);
    ++pushed_;
  }

  // Host-side: non-blocking poll of one completion.
  bool Poll(Completion* out) {
    if (entries_.empty()) {
      return false;
    }
    *out = entries_.front();
    entries_.pop_front();
    ++polled_;
    return true;
  }

  size_t depth() const { return entries_.size(); }
  uint64_t pushed() const { return pushed_; }
  uint64_t polled() const { return polled_; }

 private:
  std::deque<Completion> entries_;
  uint64_t pushed_ = 0;
  uint64_t polled_ = 0;
};

}  // namespace flock::verbs

#endif  // FLOCK_VERBS_CQ_H_
