// The RNIC device model.
//
// One Device per node. It implements, in simulated time, everything the NIC
// does between a doorbell ring and a completion:
//
//   post → [TX pipeline: WQE fetch + per-packet occupancy]
//        → [QP-state cache lookup; miss = PCIe fetch w/ bounded concurrency]
//        → [payload DMA from host]
//        → [uplink serialization] → [switch transit] → [downlink serialization]
//        → [RX pipeline at the peer] → [peer QP-state cache lookup]
//        → [payload DMA to host / posted-recv consumption / READ or atomic
//           execution and response transfer]
//        → [RC ACK latency back] → [CQE DMA if signaled]
//
// The QP-state cache at the *receiver* of a high fan-in pattern is where the
// paper's Fig. 2(a) collapse comes from; the per-packet RX work consumed on
// *host CPU* (posting receives, polling CQs) is charged not here but by the
// software layers above, from the CostModel.
#ifndef FLOCK_VERBS_DEVICE_H_
#define FLOCK_VERBS_DEVICE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/pool.h"
#include "src/common/units.h"
#include "src/fabric/memory.h"
#include "src/fabric/network.h"
#include "src/rnic/qp_cache.h"
#include "src/sim/cost_model.h"
#include "src/sim/cpu.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/verbs/cq.h"
#include "src/verbs/fault.h"
#include "src/verbs/mr.h"
#include "src/verbs/qp.h"
#include "src/verbs/types.h"

namespace flock::verbs {

class Cluster;

// Payload sizes at or below this post inline (no payload DMA read by the NIC;
// mirrors ConnectX max_inline_data ≈ 220 B).
inline constexpr uint32_t kMaxInlineData = 220;

// In-flight payload snapshot. Coalesced Flock messages are usually a few
// hundred bytes, so the snapshot lives inside the (pooled) coroutine frame;
// only jumbo messages touch the heap.
using PayloadBuf = ::flock::SmallBuf<512>;

class Device {
 public:
  struct Stats {
    uint64_t tx_msgs = 0;
    uint64_t tx_bytes = 0;         // payload bytes transmitted
    uint64_t tx_wire_bytes = 0;    // payload + per-packet framing
    uint64_t tx_packets = 0;
    uint64_t tx_reads = 0;         // one-sided READ requests issued
    uint64_t tx_atomics = 0;       // FetchAdd/CmpSwap requests issued
    uint64_t rx_msgs = 0;
    uint64_t rx_packets = 0;
    uint64_t ud_drops = 0;         // UD arrivals with no posted receive
    uint64_t remote_errors = 0;    // failed rkey/bounds/transport checks
    uint64_t cqes_dma_ed = 0;      // completions written over PCIe
    uint64_t tx_stale_drops = 0;   // WRs/CQEs dropped: QP recycled mid-flight
  };

  Device(Cluster& cluster, int node_id);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // ---- control path ----
  Cq* CreateCq();
  Qp* CreateQp(QpType type, Cq* send_cq, Cq* recv_cq);
  Mr RegisterMr(uint64_t addr, uint64_t length);

  Qp* FindQp(uint32_t qpn);
  int node_id() const { return node_id_; }
  const sim::CostModel& cluster_cost() const { return cost_; }
  rnic::QpCache& qp_cache() { return qp_cache_; }
  MrTable& mrs() { return mrs_; }
  const Stats& stats() const { return stats_; }

  // ---- data path (called by Qp) ----
  void KickSendEngine(Qp& qp);

  // ---- fault support (driven by FaultInjector) ----
  // Transitions `qp` to the error state: queued send WRs and posted receives
  // flush as kFlushError completions (error CQEs are always delivered, even
  // for unsignaled WRs), and later posts fail with kQpError.
  void ErrorQp(Qp& qp);
  void KillQp(uint32_t qpn);
  // ---- recycling support (DESIGN.md §13) ----
  // Resets `qp` for reuse by a new connection: flushes queued work like
  // ErrorQp, then clears the error state and bumps the reset epoch so
  // anything still in flight from the old incarnation is dropped, not
  // delivered. Models ibv_modify_qp reset→init→RTR→RTS on an existing QP,
  // which is why it is far cheaper than CreateQp (CostModel::qp_reset vs
  // qp_create — charged by the control-plane callers, not here).
  void ResetQp(Qp& qp);
  // NIC pause: TX and RX processing stall until Resume().
  void Pause();
  void Resume();
  bool paused() const { return paused_; }

 private:
  friend class Qp;

  sim::Proc SendEngine(Qp& qp);
  sim::Co<void> ProcessWr(Qp& qp, SendWr wr);
  sim::Proc Deliver(Qp& qp, SendWr wr, PayloadBuf payload);
  sim::Co<void> ReceiveAtPeer(Device& peer, Qp& src_qp, const SendWr& wr,
                              PayloadBuf& payload, WcStatus& status,
                              uint64_t& atomic_result);
  sim::Co<void> TouchQpState(uint32_t qpn, sim::FifoServer& pipe);
  void CompleteSend(Qp& qp, const SendWr& wr, WcStatus status, uint32_t byte_len);

  // Recycled jumbo payload snapshots: messages above the SmallBuf inline
  // threshold reuse previously grown heap blocks instead of allocating one
  // per WR, so multi-MB extent streams stay allocation-free in steady
  // state. Shard discipline like every other device member: acquire and
  // recycle only from events currently executing on this device's node —
  // callers hand a finished buffer to whichever device's shard they are on.
  PayloadBuf AcquirePayloadBuf(uint32_t len) {
    if (payload_freelist_.empty()) {
      return PayloadBuf();
    }
    // Best fit: the smallest block that already holds `len` without
    // allocating. Big blocks — grown by rare jumbo coalesced messages — must
    // not be burned on small payloads, or the next jumbo arrival finds only
    // small blocks in the list and Resize allocates again. With best fit
    // every capacity class converges to its own steady-state population and
    // the list stops allocating entirely.
    size_t pick = payload_freelist_.size();
    for (size_t i = 0; i < payload_freelist_.size(); ++i) {
      if (!payload_freelist_[i].FitsWithoutAlloc(len)) {
        continue;
      }
      if (pick == payload_freelist_.size() ||
          payload_freelist_[i].heap_capacity() <
              payload_freelist_[pick].heap_capacity()) {
        pick = i;
        if (payload_freelist_[i].heap_capacity() == 0) {
          break;  // inline fit; nothing smaller exists
        }
      }
    }
    if (pick == payload_freelist_.size()) {
      pick = payload_freelist_.size() - 1;  // no fit: grow an existing block
    }
    PayloadBuf buf = std::move(payload_freelist_[pick]);
    payload_freelist_[pick] = std::move(payload_freelist_.back());
    payload_freelist_.pop_back();
    return buf;
  }
  void RecyclePayloadBuf(PayloadBuf&& buf) {
    buf.clear();
    payload_freelist_.push_back(std::move(buf));
  }

  Cluster& cluster_;
  sim::Simulator& sim_;
  const sim::CostModel& cost_;
  fabric::Network& net_;
  const int node_id_;

  sim::FifoServer tx_pipe_;
  sim::FifoServer rx_pipe_;
  sim::Semaphore pcie_fetch_slots_;
  bool paused_ = false;
  sim::Condition resume_cond_;
  rnic::QpCache qp_cache_;
  MrTable mrs_;

  uint32_t next_qpn_ = 1;
  std::vector<std::unique_ptr<Qp>> qps_;  // index = qpn - 1 (qpns are dense)
  std::vector<std::unique_ptr<Cq>> cqs_;
  std::vector<PayloadBuf> payload_freelist_;
  Stats stats_;
};

// A simulated cluster: the simulator, the cost model, the switched network,
// and per-node memory, cores and NIC. This is the root object every bench,
// test and example builds first. Its destructor shuts the simulator down
// (destroying all coroutine frames) *before* the nodes they reference die.
class Cluster {
 public:
  struct Config {
    int num_nodes = 2;
    int cores_per_node = 32;
    sim::CostModel cost;
    // Simulation-kernel shards (see src/sim/simulator.h). Nodes are assigned
    // round-robin (node % num_shards); traces are bit-identical at every
    // shard count, so this is purely a wall-clock knob. Scheduled fault
    // injection is single-shard only (it mutates foreign-node state without
    // paying the fabric delay).
    int num_shards = 1;
    // OS threads executing the shards; 0 = min(num_shards, hardware
    // threads). Never affects the trace.
    int num_workers = 0;
  };

  explicit Cluster(const Config& config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulator& sim() { return sim_; }
  const sim::CostModel& cost() const { return cost_; }
  fabric::Network& network() { return network_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  fabric::MemorySpace& mem(int node) { return nodes_[static_cast<size_t>(node)]->mem; }
  sim::Cpu& cpu(int node) { return nodes_[static_cast<size_t>(node)]->cpu; }
  Device& device(int node) { return *nodes_[static_cast<size_t>(node)]->device; }

  // Convenience: creates an RC QP pair between two nodes, already connected.
  std::pair<Qp*, Qp*> ConnectRc(int node_a, Cq* scq_a, Cq* rcq_a, int node_b,
                                Cq* scq_b, Cq* rcq_b);

  // Deterministic fault injection (QP kills, transient errors, node pauses).
  FaultInjector& fault() { return fault_; }
  const FaultInjector& fault() const { return fault_; }

  // Opaque per-cluster extension slot. The connection control plane
  // (src/ctrl) attaches its singleton here so every runtime on every node
  // shares one instance without verbs depending on the layers above it.
  void* extension() const { return extension_.get(); }
  void SetExtension(void* ptr, void (*deleter)(void*)) {
    FLOCK_CHECK(extension_ == nullptr) << "cluster extension already set";
    extension_ = std::unique_ptr<void, void (*)(void*)>(ptr, deleter);
  }

 private:
  struct NodeState {
    fabric::MemorySpace mem;
    sim::Cpu cpu;
    std::unique_ptr<Device> device;
    NodeState(sim::Simulator& sim, int cores) : cpu(sim, cores) {}
  };

  sim::Simulator sim_;
  sim::CostModel cost_;
  fabric::Network network_;
  FaultInjector fault_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  // Declared last: destroyed first, so the extension (the control plane) may
  // reference any cluster member for its whole lifetime.
  std::unique_ptr<void, void (*)(void*)> extension_{nullptr, [](void*) {}};
};

}  // namespace flock::verbs

#endif  // FLOCK_VERBS_DEVICE_H_
