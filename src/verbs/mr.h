// Memory regions: registration and remote-access validation.
//
// An Mr grants remote peers access to [addr, addr+length) of a node's memory
// under a generated rkey. The responder-side rkey/bounds check is real — a
// bad rkey or out-of-bounds access surfaces as kRemoteAccessError on the
// requester's completion, which the fault-injection tests rely on.
#ifndef FLOCK_VERBS_MR_H_
#define FLOCK_VERBS_MR_H_

#include <cstdint>
#include <unordered_map>

#include "src/common/logging.h"

namespace flock::verbs {

struct Mr {
  uint32_t lkey = 0;
  uint32_t rkey = 0;
  uint64_t addr = 0;
  uint64_t length = 0;
};

class MrTable {
 public:
  Mr Register(uint64_t addr, uint64_t length) {
    Mr mr;
    mr.lkey = next_key_;
    mr.rkey = next_key_;
    ++next_key_;
    mr.addr = addr;
    mr.length = length;
    by_rkey_[mr.rkey] = mr;
    return mr;
  }

  void Deregister(uint32_t rkey) { by_rkey_.erase(rkey); }

  // True iff rkey exists and fully covers [addr, addr+len).
  bool ValidateRemote(uint32_t rkey, uint64_t addr, uint64_t len) const {
    auto it = by_rkey_.find(rkey);
    if (it == by_rkey_.end()) {
      return false;
    }
    const Mr& mr = it->second;
    return addr >= mr.addr && addr + len <= mr.addr + mr.length && addr + len >= addr;
  }

  size_t size() const { return by_rkey_.size(); }

 private:
  uint32_t next_key_ = 1;
  std::unordered_map<uint32_t, Mr> by_rkey_;
};

}  // namespace flock::verbs

#endif  // FLOCK_VERBS_MR_H_
