#include "src/verbs/device.h"

#include <utility>

namespace flock::verbs {

namespace {

WcOpcode ToWcOpcode(Opcode op) {
  switch (op) {
    case Opcode::kSend:
    case Opcode::kSendImm:
      return WcOpcode::kSend;
    case Opcode::kWrite:
    case Opcode::kWriteImm:
      return WcOpcode::kWrite;
    case Opcode::kRead:
      return WcOpcode::kRead;
    case Opcode::kFetchAdd:
      return WcOpcode::kFetchAdd;
    case Opcode::kCmpSwap:
      return WcOpcode::kCmpSwap;
  }
  return WcOpcode::kSend;
}

bool IsAtomic(Opcode op) {
  return op == Opcode::kFetchAdd || op == Opcode::kCmpSwap;
}

// Bytes carried by the request leg of a WR (READ requests and atomic
// operands are tiny control payloads).
uint64_t OutboundBytes(const SendWr& wr) {
  if (wr.opcode == Opcode::kRead) {
    return 0;
  }
  if (IsAtomic(wr.opcode)) {
    return 16;
  }
  return wr.length;
}

// Serializes `bytes` of payload onto `link`. With link_arb_quantum_bytes set
// the message holds the link one quantum at a time, re-queueing behind any
// waiting peers between quanta (per-packet QP arbitration — see
// CostModel::link_arb_quantum_bytes); with it unset the whole message is one
// uninterruptible serve, the legacy behavior every existing trace encodes.
sim::Co<void> ServeSerialized(sim::FifoServer& link, const fabric::Network& net,
                              const sim::CostModel& cost, uint64_t bytes) {
  if (cost.link_arb_quantum_bytes == 0) {
    co_await link.Serve(net.SerializeTime(bytes));
    co_return;
  }
  if (bytes <= cost.link_arb_quantum_bytes) {
    // A single-quantum message goes out after at most the packet in flight:
    // the arbiter's round-robin reaches it before re-serving any queued bulk
    // train, which the expedited band models without per-flow bookkeeping.
    co_await link.Serve(net.SerializeTime(bytes), /*expedited=*/true);
    co_return;
  }
  for (uint64_t rest = bytes; rest > 0;) {
    const uint64_t quantum =
        rest < cost.link_arb_quantum_bytes ? rest : cost.link_arb_quantum_bytes;
    co_await link.Serve(net.SerializeTime(quantum));
    rest -= quantum;
  }
}

}  // namespace

int Qp::node() const { return device_.node_id(); }

WcStatus Qp::Validate(const SendWr& wr) const {
  switch (type_) {
    case QpType::kRc:
      break;  // all verbs supported (Table 1)
    case QpType::kUc:
      if (wr.opcode != Opcode::kWrite && wr.opcode != Opcode::kWriteImm &&
          wr.opcode != Opcode::kSend && wr.opcode != Opcode::kSendImm) {
        return WcStatus::kUnsupportedOp;
      }
      break;
    case QpType::kUd:
      if (wr.opcode != Opcode::kSend && wr.opcode != Opcode::kSendImm) {
        return WcStatus::kUnsupportedOp;
      }
      break;
  }
  if (IsAtomic(wr.opcode) && (wr.remote_addr % 8 != 0)) {
    // Real RNICs reject atomics on targets that are not 8-byte aligned; fail
    // the post synchronously so a misaligned WR never reaches the responder
    // (the device-side alignment assert below then only guards internal
    // callers that bypass the post path).
    return WcStatus::kQpError;
  }
  if (type_ == QpType::kUd) {
    // UD datagrams carry a 40 B GRH inside the MTU; larger payloads must be
    // fragmented by software (the limitation Table 1 calls out).
    if (wr.length + 40 > device_.cluster_cost().mtu_bytes) {
      return WcStatus::kMtuExceeded;
    }
    if (wr.dest_node < 0) {
      return WcStatus::kRemoteInvalidQp;
    }
  } else if (!connected()) {
    return WcStatus::kRemoteInvalidQp;
  }
  return WcStatus::kSuccess;
}

WcStatus Qp::PostSend(const SendWr& wr) {
  if (in_error_) {
    return WcStatus::kQpError;
  }
  const WcStatus status = Validate(wr);
  if (status != WcStatus::kSuccess) {
    return status;
  }
  SendWr stamped = wr;
  stamped.src_epoch = reset_epoch_;
  send_queue_.push_back(stamped);
  device_.KickSendEngine(*this);
  return WcStatus::kSuccess;
}

WcStatus Qp::PostSendBatch(const SendWr* wrs, size_t count,
                           size_t* failed_index) {
  if (in_error_) {
    if (failed_index != nullptr) {
      *failed_index = 0;
    }
    return WcStatus::kQpError;
  }
  for (size_t i = 0; i < count; ++i) {
    const WcStatus status = Validate(wrs[i]);
    if (status != WcStatus::kSuccess) {
      if (failed_index != nullptr) {
        *failed_index = i;
      }
      return status;  // nothing enqueued: the batch is rejected whole
    }
  }
  for (size_t i = 0; i < count; ++i) {
    SendWr stamped = wrs[i];
    stamped.src_epoch = reset_epoch_;
    send_queue_.push_back(stamped);
  }
  if (count > 0) {
    device_.KickSendEngine(*this);  // one doorbell for the linked WR list
  }
  return WcStatus::kSuccess;
}

Device::Device(Cluster& cluster, int node_id)
    : cluster_(cluster),
      sim_(cluster.sim()),
      cost_(cluster.cost()),
      net_(cluster.network()),
      node_id_(node_id),
      tx_pipe_(cluster.sim()),
      rx_pipe_(cluster.sim()),
      pcie_fetch_slots_(cluster.sim(), cluster.cost().nic_pcie_concurrency),
      resume_cond_(cluster.sim()),
      qp_cache_(cluster.cost().nic_qp_cache_entries, rnic::QpCache::Policy::kRandom,
                0x9e3779b97f4a7c15ull * static_cast<uint64_t>(node_id + 1)) {}

Cq* Device::CreateCq() {
  cqs_.push_back(std::make_unique<Cq>());
  return cqs_.back().get();
}

Qp* Device::CreateQp(QpType type, Cq* send_cq, Cq* recv_cq) {
  FLOCK_CHECK(send_cq != nullptr);
  FLOCK_CHECK(recv_cq != nullptr);
  const uint32_t qpn = next_qpn_++;
  auto qp = std::make_unique<Qp>(*this, qpn, type, send_cq, recv_cq);
  Qp* raw = qp.get();
  qps_.push_back(std::move(qp));
  return raw;
}

Mr Device::RegisterMr(uint64_t addr, uint64_t length) {
  FLOCK_CHECK(cluster_.mem(node_id_).Contains(addr, length));
  return mrs_.Register(addr, length);
}

Qp* Device::FindQp(uint32_t qpn) {
  return qpn >= 1 && qpn <= qps_.size() ? qps_[qpn - 1].get() : nullptr;
}

void Device::KickSendEngine(Qp& qp) {
  if (qp.engine_running_) {
    return;  // the engine picks freshly queued WRs up in its current run
  }
  qp.engine_running_ = true;
  if (!qp.engine_spawned_) {
    qp.engine_spawned_ = true;
    sim_.Spawn(SendEngine(qp), node_id_);
  } else {
    qp.engine_wake_.Fire(sim_);
  }
}

sim::Proc Device::SendEngine(Qp& qp) {
  for (;;) {
    // Drain the whole run of queued WRs per doorbell: WRs posted while the
    // engine is mid-run (batched posts, back-to-back messages) are processed
    // by this same activation without another wake event.
    while (!qp.send_queue_.empty()) {
      SendWr wr = qp.send_queue_.front();
      qp.send_queue_.pop_front();
      co_await ProcessWr(qp, wr);
    }
    qp.engine_running_ = false;
    qp.engine_wake_.Reset();
    co_await qp.engine_wake_.Wait();
  }
}

sim::Co<void> Device::ProcessWr(Qp& qp, SendWr wr) {
  while (paused_) {
    co_await resume_cond_.Wait();
  }
  if (qp.in_error_) {
    // The QP errored while this WR sat in the send queue (or the whole node
    // was killed): flush instead of transmitting.
    CompleteSend(qp, wr, WcStatus::kFlushError, 0);
    co_return;
  }
  if (wr.src_epoch != qp.reset_epoch_) {
    // The QP was recycled (ResetQp) while this WR waited: its session is
    // gone. Drop without a CQE — the old session has no waiters, and the new
    // incarnation must never see completions it did not post.
    stats_.tx_stale_drops++;
    co_return;
  }
  const uint64_t outbound = OutboundBytes(wr);
  const uint32_t packets = net_.PacketCount(outbound);

  // TX pipeline occupancy: descriptor fetch plus per-packet processing.
  // Under per-packet arbitration single-packet WQEs take the expedited band
  // here too — the NIC's WQE fetcher round-robins send queues, so a small
  // message does not sit behind every queued WQE of a multi-packet train.
  co_await tx_pipe_.Serve(
      cost_.nic_per_wqe + static_cast<Nanos>(packets) * cost_.nic_tx_per_packet,
      cost_.link_arb_quantum_bytes > 0 && packets == 1);
  // Sender-side connection state.
  co_await TouchQpState(qp.qpn(), tx_pipe_);

  // Snapshot the payload from host memory (DMA read unless inlined).
  PayloadBuf payload = AcquirePayloadBuf(wr.length);
  if (wr.opcode != Opcode::kRead && !IsAtomic(wr.opcode) && wr.length > 0) {
    FLOCK_CHECK(cluster_.mem(node_id_).Contains(wr.local_addr, wr.length))
        << "bad local segment on node " << node_id_;
    if (wr.length > kMaxInlineData) {
      co_await sim::Delay(sim_, cost_.nic_dma_read);
    }
    cluster_.mem(node_id_).Read(wr.local_addr, payload.Resize(wr.length), wr.length);
  }

  stats_.tx_msgs++;
  if (wr.opcode == Opcode::kRead) {
    stats_.tx_reads++;
  } else if (IsAtomic(wr.opcode)) {
    stats_.tx_atomics++;
  }
  stats_.tx_bytes += outbound;
  stats_.tx_packets += packets;
  stats_.tx_wire_bytes += outbound + uint64_t{packets} * cost_.wire_overhead_bytes;

  sim_.Spawn(Deliver(qp, wr, std::move(payload)), node_id_);

  // Unreliable transports complete at transmission; RC completes on ACK or
  // response inside Deliver.
  if (qp.type() != QpType::kRc) {
    CompleteSend(qp, wr, WcStatus::kSuccess, wr.length);
  }
}

sim::Proc Device::Deliver(Qp& qp, SendWr wr, PayloadBuf payload) {
  if (wr.src_epoch != qp.reset_epoch_) {
    // Recycled before transmission got scheduled: drop on the floor (see
    // ProcessWr). ConnectTo may already have re-pointed peer_node at the new
    // session's peer, so nothing below is safe to run for a stale WR.
    stats_.tx_stale_drops++;
    RecyclePayloadBuf(std::move(payload));  // still on the sender's shard
    co_return;
  }
  const int dest_node = qp.type() == QpType::kUd ? wr.dest_node : qp.peer_node();
  FLOCK_CHECK_GE(dest_node, 0);
  FLOCK_CHECK_LT(dest_node, net_.num_nodes());

  const uint64_t outbound = OutboundBytes(wr);

  co_await ServeSerialized(net_.Uplink(node_id_), net_, cost_, outbound);
  // Switch transit is the shard migration point: execution resumes on the
  // destination node, so the downlink, RX pipeline and peer-side state below
  // are all touched by events of the node that owns them.
  co_await sim::HopToNode(sim_, dest_node, net_.TransitDelay());
  co_await ServeSerialized(net_.Downlink(dest_node), net_, cost_, outbound);

  Device& peer = cluster_.device(dest_node);
  WcStatus status = WcStatus::kSuccess;
  uint64_t atomic_result = 0;
  co_await ReceiveAtPeer(peer, qp, wr, payload, status, atomic_result);
  if (status == WcStatus::kSuccess && cluster_.fault().armed()) {
    // Injected transient error models a lost ACK after RC retry exhaustion:
    // the payload landed at the peer, but the sender's completion reports the
    // injected status. (Dropping the payload instead would punch a permanent
    // hole into one-sided ring transports — no peer-side state can ever fill
    // the reserved bytes, which is exactly why real RC moves the QP to error
    // for data loss. Data loss with a surviving QP is modeled by KillQp.)
    // Consumed only after a successful delivery: a WR that fails on its own
    // (e.g. dead peer QP) must not silently burn a pending injected error,
    // or InjectSendErrors(count=N) would surface fewer than N errors.
    status = cluster_.fault().FilterSendStatus(node_id_, qp.qpn(), status);
  }

  if (qp.type() != QpType::kRc) {
    // Unreliable: remote failures are silent, already completed. Execution
    // sits on the destination's shard, so the buffer goes to that device.
    peer.RecyclePayloadBuf(std::move(payload));
    co_return;
  }
  if (wr.opcode != Opcode::kRead && !IsAtomic(wr.opcode)) {
    // Hardware ACK for writes/sends: migrates execution back to the sender.
    co_await sim::HopToNode(sim_, node_id_, cost_.rc_ack_latency);
  } else if (status != WcStatus::kSuccess) {
    // A failed READ/atomic never ran its response leg, so execution is still
    // at the responder; the NAK travels back like an ACK would.
    co_await sim::HopToNode(sim_, node_id_, cost_.rc_ack_latency);
  }
  CompleteSend(qp, wr, status, wr.length);
  // Every RC path above ends back on the sender's shard.
  RecyclePayloadBuf(std::move(payload));
}

sim::Co<void> Device::ReceiveAtPeer(Device& peer, Qp& src_qp, const SendWr& wr,
                                    PayloadBuf& payload, WcStatus& status,
                                    uint64_t& atomic_result) {
  if (peer.paused_) {
    // A dead destination QP fails the WR even while the peer NIC is frozen:
    // RC transport-retry exhaustion fires at the *sender*, which needs no
    // cooperation from the (possibly killed) target. Only healthy-but-paused
    // destinations make the sender wait.
    const uint32_t paused_dst_qpn =
        src_qp.type() == QpType::kUd ? wr.dest_qpn : src_qp.peer_qpn();
    Qp* paused_dst = peer.FindQp(paused_dst_qpn);
    if (paused_dst == nullptr || paused_dst->in_error_) {
      peer.stats_.remote_errors++;
      status = WcStatus::kRemoteInvalidQp;
      co_return;
    }
  }
  while (peer.paused_) {
    co_await peer.resume_cond_.Wait();
  }
  const uint32_t packets = net_.PacketCount(OutboundBytes(wr));
  co_await peer.rx_pipe_.Serve(
      static_cast<Nanos>(packets) * cost_.nic_rx_per_packet,
      cost_.link_arb_quantum_bytes > 0 && packets == 1);
  peer.stats_.rx_msgs++;
  peer.stats_.rx_packets += packets;

  const uint32_t dst_qpn =
      src_qp.type() == QpType::kUd ? wr.dest_qpn : src_qp.peer_qpn();
  Qp* dst = peer.FindQp(dst_qpn);
  if (dst == nullptr || dst->type() != src_qp.type() || dst->in_error_) {
    // An errored destination QP behaves like a vanished one: the sender's RC
    // transport retries exhaust and the WR completes with an error (§7).
    peer.stats_.remote_errors++;
    status = WcStatus::kRemoteInvalidQp;
    co_return;
  }
  if (src_qp.type() != QpType::kUd &&
      (dst->peer_node() != node_id_ || dst->peer_qpn() != src_qp.qpn())) {
    // The destination QP exists but is paired with someone else: it was
    // recycled into a different connection after this WR left the sender.
    // Real RC rejects the mismatched QPN/PSN; the sender sees retry
    // exhaustion, never the new session.
    peer.stats_.remote_errors++;
    status = WcStatus::kRemoteInvalidQp;
    co_return;
  }
  // Receiver-side connection state — the cache that thrashes under fan-in.
  co_await peer.TouchQpState(dst_qpn, peer.rx_pipe_);

  fabric::MemorySpace& peer_mem = cluster_.mem(peer.node_id_);

  switch (wr.opcode) {
    case Opcode::kWrite:
    case Opcode::kWriteImm: {
      if (!peer.mrs_.ValidateRemote(wr.rkey, wr.remote_addr, wr.length)) {
        peer.stats_.remote_errors++;
        status = WcStatus::kRemoteAccessError;
        co_return;
      }
      co_await sim::Delay(sim_, cost_.nic_dma_write);
      if (!payload.empty()) {
        peer_mem.Write(wr.remote_addr, payload.data(), payload.size());
      }
      if (wr.opcode == Opcode::kWriteImm) {
        // write-with-imm consumes a posted receive and raises a completion.
        if (dst->recv_queue_.empty()) {
          peer.stats_.remote_errors++;
          status = WcStatus::kRnrError;
          co_return;
        }
        const RecvWr recv = dst->recv_queue_.front();
        dst->recv_queue_.pop_front();
        Completion wc;
        wc.wr_id = recv.wr_id;
        wc.opcode = WcOpcode::kRecvImm;
        wc.status = WcStatus::kSuccess;
        wc.byte_len = wr.length;
        wc.imm = wr.imm;
        wc.has_imm = true;
        wc.src_node = node_id_;
        wc.src_qpn = src_qp.qpn();
        wc.qpn = dst->qpn();
        peer.stats_.cqes_dma_ed++;
        dst->recv_cq()->Push(wc);
      }
      co_return;
    }
    case Opcode::kSend:
    case Opcode::kSendImm: {
      if (dst->recv_queue_.empty()) {
        if (dst->type() == QpType::kUd || dst->type() == QpType::kUc) {
          peer.stats_.ud_drops++;  // silently dropped on the floor
          co_return;
        }
        peer.stats_.remote_errors++;
        status = WcStatus::kRnrError;  // RC would RNR-NAK; we surface it
        co_return;
      }
      const RecvWr recv = dst->recv_queue_.front();
      dst->recv_queue_.pop_front();
      FLOCK_CHECK_GE(recv.length, wr.length) << "receive buffer too small";
      co_await sim::Delay(sim_, cost_.nic_dma_write);
      if (!payload.empty()) {
        peer_mem.Write(recv.local_addr, payload.data(), payload.size());
      }
      Completion wc;
      wc.wr_id = recv.wr_id;
      wc.opcode = wr.opcode == Opcode::kSendImm ? WcOpcode::kRecvImm : WcOpcode::kRecv;
      wc.status = WcStatus::kSuccess;
      wc.byte_len = wr.length;
      wc.imm = wr.imm;
      wc.has_imm = wr.opcode == Opcode::kSendImm;
      wc.src_node = node_id_;
      wc.src_qpn = src_qp.qpn();
      wc.qpn = dst->qpn();
      peer.stats_.cqes_dma_ed++;
      dst->recv_cq()->Push(wc);
      co_return;
    }
    case Opcode::kRead: {
      if (!peer.mrs_.ValidateRemote(wr.rkey, wr.remote_addr, wr.length)) {
        peer.stats_.remote_errors++;
        status = WcStatus::kRemoteAccessError;
        co_return;
      }
      // NIC fetches the data from the responder's host memory...
      co_await sim::Delay(sim_, cost_.nic_dma_read);
      PayloadBuf data = peer.AcquirePayloadBuf(wr.length);
      peer_mem.Read(wr.remote_addr, data.Resize(wr.length), wr.length);
      // ...and streams it back.
      const uint32_t resp_packets = net_.PacketCount(wr.length);
      co_await peer.tx_pipe_.Serve(
          cost_.nic_per_wqe + static_cast<Nanos>(resp_packets) * cost_.nic_tx_per_packet);
      peer.stats_.tx_msgs++;
      peer.stats_.tx_bytes += wr.length;
      peer.stats_.tx_packets += resp_packets;
      peer.stats_.tx_wire_bytes +=
          wr.length + uint64_t{resp_packets} * cost_.wire_overhead_bytes;
      co_await ServeSerialized(net_.Uplink(peer.node_id_), net_, cost_, wr.length);
      // Response transit hops execution back to the requester's shard.
      co_await sim::HopToNode(sim_, node_id_, net_.TransitDelay());
      co_await ServeSerialized(net_.Downlink(node_id_), net_, cost_, wr.length);
      co_await rx_pipe_.Serve(static_cast<Nanos>(resp_packets) * cost_.nic_rx_per_packet);
      co_await sim::Delay(sim_, cost_.nic_dma_write);
      FLOCK_CHECK(cluster_.mem(node_id_).Contains(wr.local_addr, wr.length));
      cluster_.mem(node_id_).Write(wr.local_addr, data.data(), data.size());
      // The response hop above moved execution to the requester's shard:
      // the buffer (acquired on the responder) retires into this device.
      RecyclePayloadBuf(std::move(data));
      co_return;
    }
    case Opcode::kFetchAdd:
    case Opcode::kCmpSwap: {
      if (!peer.mrs_.ValidateRemote(wr.rkey, wr.remote_addr, 8)) {
        peer.stats_.remote_errors++;
        status = WcStatus::kRemoteAccessError;
        co_return;
      }
      FLOCK_CHECK_EQ(wr.remote_addr % 8, 0u) << "atomics require 8B alignment";
      // The NIC performs a locked read-modify-write against host memory.
      co_await sim::Delay(sim_, cost_.nic_atomic_execute);
      uint64_t old_value = 0;
      peer_mem.Read(wr.remote_addr, &old_value, 8);
      uint64_t new_value = old_value;
      if (wr.opcode == Opcode::kFetchAdd) {
        new_value = old_value + wr.swap_or_add;
      } else if (old_value == wr.compare) {
        new_value = wr.swap_or_add;
      }
      peer_mem.Write(wr.remote_addr, &new_value, 8);
      atomic_result = old_value;
      // 8-byte response returns over the wire.
      const Nanos resp_serialize = net_.SerializeTime(8);
      co_await peer.tx_pipe_.Serve(cost_.nic_per_wqe + cost_.nic_tx_per_packet);
      co_await net_.Uplink(peer.node_id_).Serve(resp_serialize);
      // Atomic response transit hops execution back to the requester.
      co_await sim::HopToNode(sim_, node_id_, net_.TransitDelay());
      co_await net_.Downlink(node_id_).Serve(resp_serialize);
      co_await rx_pipe_.Serve(cost_.nic_rx_per_packet);
      co_await sim::Delay(sim_, cost_.nic_dma_write);
      if (wr.local_addr != 0) {
        FLOCK_CHECK(cluster_.mem(node_id_).Contains(wr.local_addr, 8));
        cluster_.mem(node_id_).Write(wr.local_addr, &old_value, 8);
      }
      co_return;
    }
  }
}

sim::Co<void> Device::TouchQpState(uint32_t qpn, sim::FifoServer& pipe) {
  if (!qp_cache_.Touch(qpn)) {
    // The processing unit stalls while the connection context streams in, and
    // the fetch itself contends for a bounded number of PCIe read slots.
    co_await pipe.Serve(cost_.nic_miss_stall);
    co_await pcie_fetch_slots_.Acquire();
    co_await sim::Delay(sim_, cost_.nic_pcie_fetch);
    pcie_fetch_slots_.Release();
  }
}

void Device::CompleteSend(Qp& qp, const SendWr& wr, WcStatus status, uint32_t byte_len) {
  if (wr.src_epoch != qp.reset_epoch_) {
    // Completion for a previous incarnation of a recycled QP: suppress it.
    // wc.qpn would match the new incarnation, so the consumer could not
    // filter this itself.
    stats_.tx_stale_drops++;
    return;
  }
  if (qp.in_error_ && status == WcStatus::kSuccess) {
    status = WcStatus::kFlushError;  // errored while the WR was in flight
  }
  if (!wr.signaled && status == WcStatus::kSuccess) {
    return;  // selective signaling: no CQE, no PCIe DMA (errors always signal)
  }
  Completion wc;
  wc.wr_id = wr.wr_id;
  wc.opcode = ToWcOpcode(wr.opcode);
  wc.status = status;
  wc.byte_len = byte_len;
  wc.qpn = qp.qpn();
  stats_.cqes_dma_ed++;
  qp.send_cq()->Push(wc);
}

void Device::ErrorQp(Qp& qp) {
  if (qp.in_error_) {
    return;
  }
  qp.in_error_ = true;
  // Flush queued (not yet transmitted) send WRs. WRs already inside the TX
  // pipeline flush when they reach ProcessWr or CompleteSend.
  while (!qp.send_queue_.empty()) {
    const SendWr wr = qp.send_queue_.front();
    qp.send_queue_.pop_front();
    Completion wc;
    wc.wr_id = wr.wr_id;
    wc.opcode = ToWcOpcode(wr.opcode);
    wc.status = WcStatus::kFlushError;
    wc.qpn = qp.qpn();
    stats_.cqes_dma_ed++;
    qp.send_cq()->Push(wc);
  }
  // Flush posted receives to the receive CQ.
  while (!qp.recv_queue_.empty()) {
    const RecvWr recv = qp.recv_queue_.front();
    qp.recv_queue_.pop_front();
    Completion wc;
    wc.wr_id = recv.wr_id;
    wc.opcode = WcOpcode::kRecv;
    wc.status = WcStatus::kFlushError;
    wc.qpn = qp.qpn();
    stats_.cqes_dma_ed++;
    qp.recv_cq()->Push(wc);
  }
}

void Device::ResetQp(Qp& qp) {
  // The recycling pool's reset→init→RTS shortcut. Flush anything still
  // queued (exactly as ErrorQp would — a healthy QP being recycled still owes
  // flush CQEs for its queued WRs), then clear the error state and open a new
  // reset epoch: WRs of the previous incarnation still inside the TX pipeline
  // or the fabric are dropped at their next epoch check instead of being
  // delivered into the next session. Peer wiring is cleared so an in-flight
  // write *from* the old peer (its Deliver frame resolves this QP as its
  // destination) fails the receiver's mutual-connection check instead of
  // landing in memory that may already belong to a pooled shell.
  ErrorQp(qp);
  qp.in_error_ = false;
  qp.reset_epoch_ += 1;
  qp.peer_node_ = -1;
  qp.peer_qpn_ = 0;
}

void Device::KillQp(uint32_t qpn) {
  Qp* qp = FindQp(qpn);
  if (qp != nullptr) {
    ErrorQp(*qp);
  }
}

void Device::Pause() { paused_ = true; }

void Device::Resume() {
  if (paused_) {
    paused_ = false;
    resume_cond_.NotifyAll();
  }
}

}  // namespace verbs
