// Synchronization and queueing primitives for simulation processes.
//
//  * Condition  — waiters suspend until Notify; used for "response arrived",
//    "credit granted", "leadership handed over" style signals.
//  * FifoServer — a single server with a FIFO queue; models any serially
//    occupied resource: a NIC pipeline, a link, a CPU core, a PCIe engine.
//  * Semaphore  — counted FIFO resource; models bounded concurrency such as
//    outstanding PCIe reads.
//  * FifoMutex  — acquire/release lock with FIFO handoff; models the spinlock
//    in the FaRM-like QP-sharing baseline.
//
// Wakeups are batched (see DESIGN.md "Batched event delivery"): notify-style
// primitives queue their waiters on the Simulator and commit them as one
// batch per notify call (one drain event resumes all of them), and a
// FifoServer resumes the served process directly inside its completion event
// when nothing else is pending at the timestamp. Both transformations are
// order-preserving — every coroutine resumes at exactly the queue position a
// one-event-per-wake kernel would have given it — so simulated results are
// unchanged; only the event count (and therefore host wall-clock cost) drops.
// A notifier still never has a waiter run under its feet: waiters run after
// the current event returns.
#ifndef FLOCK_SIM_SYNC_H_
#define FLOCK_SIM_SYNC_H_

#include <coroutine>
#include <deque>
#include <vector>

#include "src/common/logging.h"
#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace flock::sim {

// Single-waiter, single-shot completion event with no internal allocation.
// Used for per-operation state (an outstanding RPC or one-sided op has
// exactly one awaiter): Fire() marks the event done and schedules the waiter
// if one is parked; Wait() after Fire() resumes immediately. Reset() re-arms
// a recycled (pooled) parent object.
class OneShotEvent {
 public:
  bool done() const { return done_; }

  void Reset() {
    done_ = false;
    waiter_ = nullptr;
  }

  class Awaiter {
   public:
    explicit Awaiter(OneShotEvent& event) : event_(event) {}
    bool await_ready() const noexcept { return event_.done_; }
    void await_suspend(std::coroutine_handle<> handle) {
      FLOCK_CHECK(event_.waiter_ == nullptr)
          << "OneShotEvent supports a single waiter";
      event_.waiter_ = handle;
    }
    void await_resume() const noexcept {}

   private:
    OneShotEvent& event_;
  };

  Awaiter Wait() { return Awaiter(*this); }

  void Fire(Simulator& sim) {
    done_ = true;
    if (waiter_) {
      sim.ScheduleWake(waiter_);
      waiter_ = nullptr;
    }
  }

 private:
  bool done_ = false;
  std::coroutine_handle<> waiter_ = nullptr;
};

// Broadcast condition. Wait() suspends until the next Notify*() call.
class Condition {
 public:
  explicit Condition(Simulator& sim) : sim_(sim) {}

  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  class Awaiter {
   public:
    explicit Awaiter(Condition& cond) : cond_(cond) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) {
      cond_.waiters_.push_back(handle);
    }
    void await_resume() const noexcept {}

   private:
    Condition& cond_;
  };

  Awaiter Wait() { return Awaiter(*this); }

  // Wake coalescing: all waiters are queued as one batch and resumed by a
  // single drain event, so notifying N waiters costs one event instead of N
  // — at exactly the queue positions N individual resume events would have
  // had (their sequence numbers were consecutive). Which waiters wake is
  // still decided here, at notify time — a waiter arriving after NotifyAll()
  // waits for the next notify.
  void NotifyAll() {
    for (auto handle : waiters_) {
      sim_.QueueWake(handle);
    }
    waiters_.clear();
    sim_.CommitWakes();
  }

  void NotifyOne() {
    if (!waiters_.empty()) {
      sim_.ScheduleWake(waiters_.front());
      waiters_.erase(waiters_.begin());
    }
  }

  bool HasWaiters() const { return !waiters_.empty(); }

 private:
  Simulator& sim_;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Single FIFO server: `co_await server.Serve(d)` waits for all earlier
// requests to finish, occupies the server for `d`, then resumes the caller.
//
// Serve(d, /*expedited=*/true) joins a second band drained ahead of the
// normal queue (still FIFO within the band, and never preempting the serve
// in progress). The wire model uses it for single-quantum messages under
// per-packet QP arbitration (CostModel::link_arb_quantum_bytes): on a real
// RNIC a one-packet message transmits after at most the packet in flight,
// not after every queued packet of every bulk train. Callers that never
// expedite get byte-for-byte the old single-queue behavior.
class FifoServer {
 public:
  explicit FifoServer(Simulator& sim) : sim_(sim) {}

  FifoServer(const FifoServer&) = delete;
  FifoServer& operator=(const FifoServer&) = delete;

  class Awaiter {
   public:
    Awaiter(FifoServer& server, Nanos duration, bool expedited)
        : server_(server), duration_(duration), expedited_(expedited) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) {
      server_.Enqueue(handle, duration_, expedited_);
    }
    void await_resume() const noexcept {}

   private:
    FifoServer& server_;
    Nanos duration_;
    bool expedited_;
  };

  Awaiter Serve(Nanos duration, bool expedited = false) {
    return Awaiter(*this, duration, expedited);
  }

  bool busy() const { return busy_; }
  size_t queue_depth() const {
    return static_cast<size_t>(tail_ - head_) +
           static_cast<size_t>(exp_tail_ - exp_head_);
  }
  Nanos busy_time() const { return busy_time_; }
  uint64_t served() const { return served_; }

 private:
  struct Item {
    std::coroutine_handle<> handle;
    Nanos duration;
  };

  // The queue is a power-of-two ring: FifoServer sits under every simulated
  // CPU/NIC occupancy, so enqueue/dequeue must not touch the allocator once
  // the ring has grown to the steady-state depth.
  void Enqueue(std::coroutine_handle<> handle, Nanos duration, bool expedited) {
    std::vector<Item>& ring = expedited ? exp_ring_ : ring_;
    uint64_t& head = expedited ? exp_head_ : head_;
    uint64_t& tail = expedited ? exp_tail_ : tail_;
    if (tail - head == ring.size()) {
      GrowRing(ring, head, tail);
    }
    ring[tail & (ring.size() - 1)] = Item{handle, duration < 0 ? 0 : duration};
    ++tail;
    if (!busy_) {
      StartNext();
    }
  }

  static void GrowRing(std::vector<Item>& ring, uint64_t head, uint64_t tail) {
    const size_t old_cap = ring.size();
    const size_t new_cap = old_cap == 0 ? 16 : old_cap * 2;
    std::vector<Item> grown(new_cap);
    for (uint64_t i = head; i != tail; ++i) {
      grown[i & (new_cap - 1)] = ring[i & (old_cap - 1)];
    }
    ring = std::move(grown);
  }

  void StartNext() {
    busy_ = true;
    if (exp_head_ != exp_tail_) {
      current_ = exp_ring_[exp_head_ & (exp_ring_.size() - 1)];
      ++exp_head_;
    } else {
      FLOCK_CHECK(head_ != tail_);
      current_ = ring_[head_ & (ring_.size() - 1)];
      ++head_;
    }
    busy_time_ += current_.duration;
    sim_.Schedule(current_.duration, &FifoServer::DoneTrampoline, this);
  }

  static void DoneTrampoline(void* self) {
    static_cast<FifoServer*>(self)->Done();
  }

  void Done() {
    ++served_;
    const std::coroutine_handle<> finished = current_.handle;
    if (head_ != tail_ || exp_head_ != exp_tail_) {
      StartNext();
    } else {
      busy_ = false;
    }
    if (!sim_.SameTimePending()) {
      // Nothing else is queued at this timestamp *for this node*, so a
      // ScheduleResume(0) would make `finished` the very next event of this
      // node anyway: resuming it inline skips the queue round trip without
      // reordering anything. Same-time events of other nodes are causally
      // independent (cross-node influence costs at least the fabric's
      // minimum delay), so the predicate is node-local — which keeps the
      // decision, and the event count, identical across shard counts. (The
      // next service's completion was scheduled above, before user code
      // runs, so a waiter that re-enqueues observes a consistent server.)
      sim_.NoteDirectResume();
      finished.resume();
    } else {
      // Same-time events of this node are pending; an inline resume would
      // run `finished` ahead of them. Keep the order the unbatched kernel
      // had.
      sim_.ScheduleResume(0, finished);
    }
  }

  Simulator& sim_;
  bool busy_ = false;
  Item current_{};
  std::vector<Item> ring_;
  uint64_t head_ = 0;
  uint64_t tail_ = 0;
  std::vector<Item> exp_ring_;  // expedited band; empty unless callers opt in
  uint64_t exp_head_ = 0;
  uint64_t exp_tail_ = 0;
  Nanos busy_time_ = 0;
  uint64_t served_ = 0;
};

// Counted FIFO semaphore. Models resources with bounded concurrency.
class Semaphore {
 public:
  Semaphore(Simulator& sim, int64_t permits) : sim_(sim), permits_(permits) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  class Awaiter {
   public:
    explicit Awaiter(Semaphore& sem) : sem_(sem) {}
    bool await_ready() const noexcept {
      if (sem_.permits_ > 0 && sem_.waiters_.empty()) {
        --sem_.permits_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> handle) {
      sem_.waiters_.push_back(handle);
    }
    void await_resume() const noexcept {}

   private:
    Semaphore& sem_;
  };

  Awaiter Acquire() { return Awaiter(*this); }

  void Release() {
    if (!waiters_.empty()) {
      // Hand the permit to the oldest waiter, decided now; delivery rides the
      // shared wake drain so a burst of releases costs one event total.
      sim_.ScheduleWake(waiters_.front());
      waiters_.pop_front();
    } else {
      ++permits_;
    }
  }

  int64_t available() const { return permits_; }

 private:
  Simulator& sim_;
  int64_t permits_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// FIFO mutex. The releasing process hands the lock directly to the oldest
// waiter, mirroring the queueing behaviour of a contended spinlock without
// burning simulated CPU in the waiters.
class FifoMutex {
 public:
  explicit FifoMutex(Simulator& sim) : sem_(sim, 1) {}

  Semaphore::Awaiter Acquire() { return sem_.Acquire(); }
  void Release() { sem_.Release(); }

 private:
  Semaphore sem_;
};

}  // namespace flock::sim

#endif  // FLOCK_SIM_SYNC_H_
