// Calibrated cost constants for the simulated testbed.
//
// The paper's cluster is CloudLab d6515: 32-core AMD EPYC 7452 @ 2.35 GHz,
// Mellanox ConnectX-5 100 Gbps, Dell Z9264F-ON switch, MTU 4096 (§8.1).
// Constants below are drawn from published measurements of that class of
// hardware (eRPC NSDI'19, FaRM NSDI'14, "Design Guidelines for High
// Performance RDMA Systems" ATC'16, Storm SYSTOR'19) and tuned so the
// motivation experiment (Fig. 2) lands near the paper's absolute numbers.
// Everything is overridable per bench so design points can be ablated.
//
// Units: nanoseconds unless stated otherwise.
#ifndef FLOCK_SIM_COST_MODEL_H_
#define FLOCK_SIM_COST_MODEL_H_

#include <cstdint>

#include "src/common/units.h"

namespace flock::sim {

struct CostModel {
  // ---- CPU-side verbs costs (charged on simulated cores) ----
  // Building one WQE in host memory.
  Nanos cpu_wqe_prep = 60;
  // MMIO doorbell write (write-combining 64B). One per PostSend batch.
  Nanos cpu_mmio_doorbell = 110;
  // One poll of an empty completion queue.
  Nanos cpu_cq_poll_empty = 35;
  // Consuming one CQE (read + bookkeeping).
  Nanos cpu_cqe_handle = 45;
  // Re-posting one receive buffer (ibv_post_recv bookkeeping; the dominant
  // cost Fig. 2(b) attributes to the Mellanox userspace libraries).
  Nanos cpu_post_recv = 350;
  // Per-packet software processing on a UD RPC path: header parse, session
  // lookup, software reliability bookkeeping (eRPC-style).
  Nanos cpu_ud_pkt_process = 550;
  // Fixed + per-byte cost of a host memcpy (~25 GB/s effective).
  Nanos cpu_memcpy_fixed = 12;
  double cpu_memcpy_per_byte = 0.04;
  // Uncontended atomic RMW / contended cacheline transfer (TCQ, spinlocks).
  Nanos cpu_atomic_rmw = 18;
  Nanos cpu_cacheline_transfer = 45;
  // Polling one Flock ring-buffer head that has no new message.
  Nanos cpu_ring_poll_empty = 22;
  // Decoding/encoding a coalesced Flock message: fixed header + per-request.
  Nanos cpu_msg_fixed = 40;
  Nanos cpu_msg_per_req = 32;

  // ---- RNIC model ----
  // Pipeline occupancy per packet (TX and RX sides), ~70 Mpps engines.
  Nanos nic_tx_per_packet = 16;
  Nanos nic_rx_per_packet = 14;
  // Extra TX occupancy per WQE (fetch WQE descriptor via DMA, amortized).
  Nanos nic_per_wqe = 12;
  // QP/connection-state cache: capacity in QPs and PCIe behaviour on miss.
  // The paper's Fig. 2(a) peaks between 176 and 704 QPs; capacity 768 puts
  // the knee there.
  uint32_t nic_qp_cache_entries = 768;
  Nanos nic_pcie_fetch = 900;     // latency of one state fetch over PCIe
  int nic_pcie_concurrency = 16;   // outstanding PCIe reads the NIC sustains
  // Pipeline occupancy lost per miss: the processing unit stalls while the
  // connection context streams in (this, not the raw latency, is what caves
  // in aggregate throughput in Fig. 2(a)).
  Nanos nic_miss_stall = 120;
  // DMA of payload or a CQE into host memory (posted write latency).
  Nanos nic_dma_write = 150;
  // NIC-side fetch of payload from host memory when transmitting.
  Nanos nic_dma_read = 250;
  // Executing a remote atomic in the NIC (PCIe read-modify-write).
  Nanos nic_atomic_execute = 350;

  // ---- control path: connection setup (DESIGN.md §13) ----
  // Charged only by the asynchronous connect path (FlockRuntime::ConnectAsync
  // and lazy lane materialization); the synchronous setup-phase Connect stays
  // cost-free so existing traces are untouched.
  // Full QP bring-up: ibv_create_qp + reset→init→RTR→RTS transitions + the
  // driver bookkeeping around them (µs-scale on real HCAs; Swift measures
  // the same order).
  Nanos qp_create = 12'000;
  // Recycled bring-up: state transitions only, on a QP whose host and NIC
  // resources already exist (Device::ResetQp).
  Nanos qp_reset = 1'200;

  // ---- Wire ----
  double link_gbps = 100.0;
  // RoCE per-packet overhead: Eth+IP+UDP+BTH+ICRC+FCS+IPG.
  uint32_t wire_overhead_bytes = 80;
  uint32_t mtu_bytes = 4096;
  // Wire arbitration granularity. 0 = a message serializes as one
  // uninterruptible unit (legacy whole-message FIFO). > 0 = the link
  // round-robins contending flows every this many payload bytes, the way RC
  // RNICs actually schedule QPs per packet on the wire: a multi-packet
  // message re-queues behind waiting peers after each quantum, so jumbo
  // segment trains cannot head-of-line block small messages for their whole
  // serialization time. Typically set to mtu_bytes.
  uint32_t link_arb_quantum_bytes = 0;
  Nanos link_propagation = 200;  // per hop
  Nanos switch_latency = 250;
  // One-way latency charged for RC ACK return (no payload modeled).
  Nanos rc_ack_latency = 450;

  double LinkBytesPerNano() const { return GbpsToBytesPerNano(link_gbps); }

  Nanos MemcpyCost(uint64_t bytes) const {
    return cpu_memcpy_fixed +
           static_cast<Nanos>(cpu_memcpy_per_byte * static_cast<double>(bytes));
  }
};

}  // namespace flock::sim

#endif  // FLOCK_SIM_COST_MODEL_H_
