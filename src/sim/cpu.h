// Simulated CPU cores.
//
// A Core is a FIFO-served resource: a simulated thread "executes" by
// occupying its pinned core for a duration. Threads pinned one-per-core never
// queue; oversubscribed threads serialize in FIFO order (a reasonable model
// for the paper's pinned, run-to-completion workloads — no preemption is
// modeled, which we note in DESIGN.md).
//
// Core busy-time is tracked so benches can report CPU utilization, e.g. the
// ">90% of server cycles inside the userspace NIC libraries" observation that
// motivates Fig. 2(b).
//
// Sharding: a node's Cpu (like its Device pipes and Network links) is only
// ever served by events of that node, so under ConfigureSharding every Core
// is touched by exactly one shard — no locks needed. Awaiting Work() from a
// foreign node's event would be a cross-shard race; cross-node interaction
// must go through the fabric (HopToNode) instead.
#ifndef FLOCK_SIM_CPU_H_
#define FLOCK_SIM_CPU_H_

#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/sim/sync.h"

namespace flock::sim {

class Core {
 public:
  explicit Core(Simulator& sim) : server_(sim) {}

  // Occupies the core for `duration`; FIFO among threads sharing the core.
  FifoServer::Awaiter Work(Nanos duration) { return server_.Serve(duration); }

  Nanos busy_time() const { return server_.busy_time(); }

 private:
  FifoServer server_;
};

// A node's core complex; threads are pinned round-robin by the caller.
class Cpu {
 public:
  Cpu(Simulator& sim, int num_cores) {
    cores_.reserve(static_cast<size_t>(num_cores));
    for (int i = 0; i < num_cores; ++i) {
      cores_.push_back(std::make_unique<Core>(sim));
    }
  }

  int num_cores() const { return static_cast<int>(cores_.size()); }
  Core& core(int i) { return *cores_[static_cast<size_t>(i % num_cores())]; }

  Nanos TotalBusyTime() const {
    Nanos total = 0;
    for (const auto& c : cores_) {
      total += c->busy_time();
    }
    return total;
  }

 private:
  std::vector<std::unique_ptr<Core>> cores_;
};

}  // namespace flock::sim

#endif  // FLOCK_SIM_CPU_H_
