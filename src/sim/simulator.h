// Discrete-event simulation kernel.
//
// The Simulator owns a virtual clock and an event queue ordered by
// (time, insertion sequence); equal-time events fire in FIFO order, which
// makes every run bit-for-bit deterministic. An event is either a coroutine
// resumption or a raw (function pointer, argument) callback — the latter is
// used by resource models (FIFO servers) that do not want a coroutine frame
// per service completion.
//
// Internally the queue is a calendar queue tuned for this workload (almost
// all delays are 0 ns or small CPU/NIC costs, with a thin tail of scheduler
// timers), rather than a binary heap:
//
//   * now-FIFO   — a drain vector of events at exactly the current time.
//     Zero-delay scheduling (condition notifies, symmetric transfers) is one
//     append; dequeue is one index increment. The FIFO holds events of a
//     single timestamp at a time, so FIFO order *is* (time, seq) order.
//   * calendar   — kNumBuckets one-nanosecond buckets covering the near
//     future. One bucket ⇔ one timestamp, and sequence numbers are assigned
//     monotonically, so append order inside a bucket is already seq order:
//     refill walks the bucket's list into the now-FIFO. Buckets are singly
//     linked lists threaded through one shared node pool, so the only growth
//     high-water mark is the *total* number of in-calendar events — once the
//     workload's peak is seen, pushes never allocate again. An occupancy
//     bitmap finds the next non-empty bucket with a few word scans.
//   * overflow heap — events beyond the calendar horizon (rare: periodic
//     scheduler timers) wait in a std::priority_queue and are merged by
//     (time, seq) with calendar batches at refill.
//
// See DESIGN.md "Simulator internals & performance" and bench/perf_smoke.cc
// for the measured effect.
//
// All simulated activity lives in Proc coroutines spawned on the Simulator.
// Live processes are tracked on an intrusive doubly-linked list threaded
// through their promises. Shutdown() (also run by the destructor) destroys
// every still-suspended process frame, so a bench can simply stop simulating
// mid-workload without draining in-flight operations.
#ifndef FLOCK_SIM_SIMULATOR_H_
#define FLOCK_SIM_SIMULATOR_H_

#include <algorithm>
#include <bit>
#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "src/common/logging.h"
#include "src/common/units.h"
#include "src/sim/task.h"

namespace flock::sim {

class Simulator {
 public:
  Simulator() = default;
  ~Simulator() { Shutdown(); }

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Nanos Now() const { return now_; }

  // Transfers ownership of the process frame to the simulator and schedules
  // its first resumption at the current time.
  void Spawn(Proc&& proc) {
    Proc::Handle handle = proc.Release();
    FLOCK_CHECK(handle);
    internal::ProcPromise& promise = handle.promise();
    promise.sim = this;
    promise.live_prev = nullptr;
    promise.live_next = live_head_;
    if (live_head_ != nullptr) {
      live_head_->live_prev = &promise;
    }
    live_head_ = &promise;
    ++live_count_;
    ScheduleResume(0, handle);
  }

  // Schedules `handle` to be resumed `delay` from now.
  void ScheduleResume(Nanos delay, std::coroutine_handle<> handle) {
    FLOCK_CHECK_GE(delay, 0);
    Push(Event{now_ + delay, next_seq_++, handle.address(), nullptr});
  }

  // Schedules `fn(arg)` to run `delay` from now.
  void Schedule(Nanos delay, void (*fn)(void*), void* arg) {
    FLOCK_CHECK_GE(delay, 0);
    FLOCK_CHECK(fn != nullptr);
    Push(Event{now_ + delay, next_seq_++, arg, fn});
  }

  // Runs events until the queue drains. Returns the number of events run.
  uint64_t Run() { return RunUntilInternal(-1); }

  // Runs events with time <= deadline; the clock lands on `deadline` even if
  // the queue still has later events.
  uint64_t RunUntil(Nanos deadline) {
    const uint64_t n = RunUntilInternal(deadline);
    if (now_ < deadline) {
      now_ = deadline;
    }
    return n;
  }

  uint64_t RunFor(Nanos duration) { return RunUntil(now_ + duration); }

  bool Idle() const { return size_ == 0; }
  uint64_t events_processed() const { return events_processed_; }
  size_t live_proc_count() const { return live_count_; }
  size_t queue_size() const { return size_; }

  // ---- kernel counters (see bench/perf_smoke and bench/sim_kernel) ----
  // Total coroutine resumptions, however delivered.
  uint64_t resumes() const { return resumes_; }
  // Resumptions performed inline by a resource model (FifoServer completion)
  // instead of a schedule/dequeue round trip through the event queue.
  uint64_t direct_resumes() const { return direct_resumes_; }
  // Waiters woken by a shared drain event (Condition::NotifyAll, Semaphore
  // release batches) rather than one scheduled event per waiter.
  uint64_t coalesced_wakes() const { return coalesced_wakes_; }

  // Bookkeeping hook for sync primitives that resume coroutines without a
  // per-waiter event (src/sim/sync.h).
  void NoteDirectResume() {
    ++resumes_;
    ++direct_resumes_;
  }

  // ---- wake coalescing ----
  //
  // A notify-style primitive that wakes N waiters in one call (NotifyAll, a
  // batched release) queues the handles with QueueWake() and seals the batch
  // with CommitWakes(): ONE zero-delay drain event then resumes all N, in
  // queue order. Because the N handles would have been scheduled back to back
  // (consecutive sequence numbers, nothing can interleave inside the notify
  // call), the drain runs them at exactly the positions N individual
  // ScheduleResume(0) events would have — batching changes the event count,
  // never the execution order. The drain holds only coroutine handles, never
  // a pointer to the notifying primitive, so a primitive may be destroyed
  // (e.g. it lives in a resumed waiter's frame) with a drain still pending.
  void QueueWake(std::coroutine_handle<> handle) {
    wake_batch_.push_back(handle.address());
    ++uncommitted_wakes_;
  }

  void CommitWakes() {
    if (uncommitted_wakes_ == 0) {
      return;
    }
    wake_counts_.push_back(uncommitted_wakes_);
    uncommitted_wakes_ = 0;
    Schedule(0, &Simulator::WakeDrainTrampoline, this);
  }

  // Single-waiter convenience (OneShotEvent::Fire, NotifyOne).
  void ScheduleWake(std::coroutine_handle<> handle) {
    QueueWake(handle);
    CommitWakes();
  }

  // True while events at the current timestamp are still pending in the drain
  // FIFO. Resource models use this to decide whether an inline resume is
  // order-equivalent to a ScheduleResume(0) (see FifoServer::Done).
  bool SameTimePending() const { return fifo_pos_ < fifo_.size(); }

  // Destroys every live process frame and drops pending events. Safe to call
  // more than once. Must run while the objects referenced by process locals
  // are still alive (see Cluster in src/fabric).
  void Shutdown() {
    shutting_down_ = true;
    // Destroying one frame can destroy child frames but never spawns procs.
    while (live_head_ != nullptr) {
      internal::ProcPromise* promise = live_head_;
      live_head_ = promise->live_next;
      if (live_head_ != nullptr) {
        live_head_->live_prev = nullptr;
      }
      std::coroutine_handle<internal::ProcPromise>::from_promise(*promise)
          .destroy();
    }
    live_count_ = 0;
    fifo_.clear();
    fifo_pos_ = 0;
    wake_batch_.clear();
    wake_drain_pos_ = 0;
    wake_counts_.clear();
    wake_counts_pos_ = 0;
    uncommitted_wakes_ = 0;
    for (size_t word = 0; word < kNumWords; ++word) {
      uint64_t bits = occupancy_[word];
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        bits &= bits - 1;
        Bucket& b = buckets_[(word << 6) + static_cast<size_t>(bit)];
        b.head = kNilNode;
        b.tail = kNilNode;
      }
      occupancy_[word] = 0;
    }
    nodes_.clear();
    free_node_ = kNilNode;
    calendar_count_ = 0;
    while (!overflow_.empty()) {
      overflow_.pop();
    }
    size_ = 0;
    shutting_down_ = false;
  }

 private:
  friend struct internal::ProcFinalAwaiter;

  static void WakeDrainTrampoline(void* self) {
    static_cast<Simulator*>(self)->WakeDrain();
  }

  void WakeDrain() {
    // Each drain event consumes exactly the handles of its own commit — a
    // waiter that notifies further waiters commits a new batch with its own
    // drain event, which keeps their resumption at the position fresh
    // ScheduleResume(0) events would have had.
    const uint32_t count = wake_counts_[wake_counts_pos_++];
    for (uint32_t i = 0; i < count; ++i) {
      ++resumes_;
      ++coalesced_wakes_;
      std::coroutine_handle<>::from_address(wake_batch_[wake_drain_pos_++])
          .resume();
    }
    if (wake_drain_pos_ == wake_batch_.size() && uncommitted_wakes_ == 0) {
      // Fully drained: reset the consumed prefixes, keeping capacity.
      wake_batch_.clear();
      wake_drain_pos_ = 0;
      wake_counts_.clear();
      wake_counts_pos_ = 0;
    }
  }

  // 32 bytes: when `fn` is null, `ctx` is a coroutine frame address to
  // resume; otherwise the event runs fn(ctx).
  struct Event {
    Nanos at;
    uint64_t seq;
    void* ctx;
    void (*fn)(void*);
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  // Calendar geometry: 4096 one-nanosecond buckets cover ~4 us of lookahead,
  // which swallows every CPU/NIC/wire delay in the cost model (the largest
  // common short delays — PCIe fetches, MTU serialization, the 1 us
  // ring-stall retry — are ~1 us); only long timers (QP/thread scheduler
  // intervals, bench warmups) overflow to the heap. Events within the horizon
  // occupy distinct buckets, so a bucket never mixes timestamps. Keeping the
  // array small matters: the active window of buckets stays cache-resident.
  static constexpr size_t kBucketBits = 12;
  static constexpr size_t kNumBuckets = size_t{1} << kBucketBits;
  static constexpr size_t kNumWords = kNumBuckets / 64;
  static constexpr Nanos kHorizon = static_cast<Nanos>(kNumBuckets);

  static size_t BucketOf(Nanos at) {
    return static_cast<size_t>(at) & (kNumBuckets - 1);
  }

  void OnProcFinished(std::coroutine_handle<internal::ProcPromise> handle) {
    if (!shutting_down_) {
      internal::ProcPromise& promise = handle.promise();
      if (promise.live_prev != nullptr) {
        promise.live_prev->live_next = promise.live_next;
      } else {
        live_head_ = promise.live_next;
      }
      if (promise.live_next != nullptr) {
        promise.live_next->live_prev = promise.live_prev;
      }
      --live_count_;
    }
    handle.destroy();
  }

  // ---- now-FIFO drain vector (single timestamp at a time) ----
  //
  // Consumed events stay in the processed prefix until the whole batch drains
  // (the vector is cleared at the next refill, keeping its capacity), so push
  // is a plain append and pop an index increment.

  bool FifoEmpty() const { return fifo_pos_ == fifo_.size(); }

  void FifoPush(const Event& event) { fifo_.push_back(event); }

  // ---- enqueue ----

  void Push(const Event& event) {
    ++size_;
    if (event.at == now_) {
      // Invariant: buckets and overflow never hold events at the current
      // time (Refill drains the full timestamp batch), and the now-FIFO holds
      // a single timestamp, so appending preserves (time, seq) order.
      FifoPush(event);
      return;
    }
    if (event.at - now_ < kHorizon) {
      const size_t bucket = BucketOf(event.at);
      const uint32_t node = AllocNode(event);
      Bucket& b = buckets_[bucket];
      if (b.tail == kNilNode) {
        b.head = node;
      } else {
        nodes_[b.tail].next = node;
      }
      b.tail = node;
      occupancy_[bucket >> 6] |= uint64_t{1} << (bucket & 63);
      ++calendar_count_;
    } else {
      overflow_.push(event);
    }
  }

  uint32_t AllocNode(const Event& event) {
    uint32_t node = free_node_;
    if (node != kNilNode) {
      free_node_ = nodes_[node].next;
    } else {
      node = static_cast<uint32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    nodes_[node].event = event;
    nodes_[node].next = kNilNode;
    return node;
  }

  // ---- refill: move the earliest timestamp batch into the now-FIFO ----

  // First occupied bucket at or after `start`, in ring order (ring order is
  // time order because live events span less than one calendar revolution).
  size_t FirstOccupied(size_t start) const {
    size_t word = start >> 6;
    uint64_t bits = occupancy_[word] & (~uint64_t{0} << (start & 63));
    for (size_t scanned = 0; scanned <= kNumWords; ++scanned) {
      if (bits != 0) {
        return (word << 6) + static_cast<size_t>(std::countr_zero(bits));
      }
      word = (word + 1) & (kNumWords - 1);
      bits = occupancy_[word];
    }
    FLOCK_CHECK(false) << "occupancy bitmap and calendar_count_ disagree";
    return 0;
  }

  void Refill() {
    fifo_.clear();  // previous batch fully consumed; keep the capacity
    fifo_pos_ = 0;
    if (calendar_count_ == 0) {
      DrainOverflowBatch();
      return;
    }
    const size_t bucket = FirstOccupied(BucketOf(now_));
    Bucket& slot = buckets_[bucket];
    const Nanos bucket_at = nodes_[slot.head].event.at;  // one timestamp per bucket
    if (!overflow_.empty() && overflow_.top().at < bucket_at) {
      DrainOverflowBatch();
      return;
    }
    // Append order inside the bucket is seq order, so walking head-to-tail
    // yields the drain batch already in (time, seq) order. Nodes return to
    // the shared free list as they are copied out.
    uint32_t node = slot.head;
    while (node != kNilNode) {
      fifo_.push_back(nodes_[node].event);
      const uint32_t next = nodes_[node].next;
      nodes_[node].next = free_node_;
      free_node_ = node;
      node = next;
      --calendar_count_;
    }
    slot.head = kNilNode;
    slot.tail = kNilNode;
    occupancy_[bucket >> 6] &= ~(uint64_t{1} << (bucket & 63));
    if (!overflow_.empty() && overflow_.top().at == bucket_at) {
      // Calendar and heap collide on one timestamp (rare): merge by seq.
      while (!overflow_.empty() && overflow_.top().at == bucket_at) {
        fifo_.push_back(overflow_.top());
        overflow_.pop();
      }
      std::sort(fifo_.begin(), fifo_.end(),
                [](const Event& a, const Event& b) { return a.seq < b.seq; });
    }
  }

  // Moves the earliest-timestamp batch from the overflow heap to the FIFO.
  // The heap pops equal-time events in seq order (EventLater tie-break).
  void DrainOverflowBatch() {
    FLOCK_CHECK(!overflow_.empty());
    const Nanos cut = overflow_.top().at;
    while (!overflow_.empty() && overflow_.top().at == cut) {
      FifoPush(overflow_.top());
      overflow_.pop();
    }
  }

  // Returns a refilled-but-unreachable batch (deadline passed) to the
  // calendar so later inserts keep ordering. The batch shares one timestamp
  // strictly after now_, so Push never routes back to the FIFO.
  void FlushFifo() {
    while (fifo_pos_ < fifo_.size()) {
      const Event event = fifo_[fifo_pos_++];
      --size_;  // Push re-counts it; the event keeps its original seq
      Push(event);
    }
    fifo_.clear();
    fifo_pos_ = 0;
  }

  uint64_t RunUntilInternal(Nanos deadline) {
    uint64_t ran = 0;
    for (;;) {
      if (FifoEmpty()) {
        if (size_ == 0) {
          break;
        }
        Refill();
      }
      const Event& front = fifo_[fifo_pos_];
      if (deadline >= 0 && front.at > deadline) {
        if (front.at > now_) {
          FlushFifo();
        }
        break;
      }
      const Event event = front;
      ++fifo_pos_;
      --size_;
      FLOCK_CHECK_GE(event.at, now_);
      now_ = event.at;
      ++ran;
      ++events_processed_;
      if (event.fn != nullptr) {
        event.fn(event.ctx);
      } else {
        ++resumes_;
        std::coroutine_handle<>::from_address(event.ctx).resume();
      }
    }
    return ran;
  }

  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  uint64_t resumes_ = 0;
  uint64_t direct_resumes_ = 0;
  uint64_t coalesced_wakes_ = 0;
  size_t size_ = 0;
  bool shutting_down_ = false;

  std::vector<Event> fifo_;  // drain vector: [fifo_pos_, size) is pending
  size_t fifo_pos_ = 0;

  // Wake batches: handles in commit order, one count per commit. Both vectors
  // drain by position and reset when empty, so steady state never allocates.
  std::vector<void*> wake_batch_;
  size_t wake_drain_pos_ = 0;
  std::vector<uint32_t> wake_counts_;
  size_t wake_counts_pos_ = 0;
  uint32_t uncommitted_wakes_ = 0;

  static constexpr uint32_t kNilNode = UINT32_MAX;

  struct CalendarNode {
    Event event;
    uint32_t next = kNilNode;
  };

  struct Bucket {
    uint32_t head = kNilNode;
    uint32_t tail = kNilNode;
  };

  Bucket buckets_[kNumBuckets];
  std::vector<CalendarNode> nodes_;  // shared node pool for all buckets
  uint32_t free_node_ = kNilNode;
  uint64_t occupancy_[kNumWords] = {};
  size_t calendar_count_ = 0;

  std::priority_queue<Event, std::vector<Event>, EventLater> overflow_;

  internal::ProcPromise* live_head_ = nullptr;
  size_t live_count_ = 0;
};

namespace internal {

inline void ProcFinalAwaiter::await_suspend(
    std::coroutine_handle<ProcPromise> handle) noexcept {
  handle.promise().sim->OnProcFinished(handle);
}

}  // namespace internal

// Suspends the awaiting coroutine for `delay` of simulated time.
class Delay {
 public:
  Delay(Simulator& sim, Nanos delay) : sim_(sim), delay_(delay) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle) {
    sim_.ScheduleResume(delay_ < 0 ? 0 : delay_, handle);
  }
  void await_resume() const noexcept {}

 private:
  Simulator& sim_;
  Nanos delay_;
};

}  // namespace flock::sim

#endif  // FLOCK_SIM_SIMULATOR_H_
