// Discrete-event simulation kernel, shardable across OS threads.
//
// The Simulator owns a virtual clock and an event queue ordered by
// (time, insertion sequence); equal-time events fire in FIFO order, which
// makes every run bit-for-bit deterministic. An event is either a coroutine
// resumption or a raw (function pointer, argument) callback — the latter is
// used by resource models (FIFO servers) that do not want a coroutine frame
// per service completion.
//
// ---- Sharding (DESIGN.md §12) ----
//
// Every event belongs to a simulated *node*, and ConfigureSharding() groups
// nodes into shards. Each shard owns a complete private queue (now-FIFO,
// calendar, overflow heap), its own sequence counter, its own live-process
// list and its own kernel counters, so a shard executes a time window without
// touching any other shard's state. Windows are `lookahead` wide — the
// fabric's minimum cross-node delay — and between windows the coordinator
// drains per-(src,dst) shard mailboxes that carry cross-node hops
// (ScheduleOnNode). A hop scheduled inside window [T, T+W) carries delay
// >= W, so it can only land in a later window: intra-window execution is
// embarrassingly parallel, no null messages needed. Mailbox merge order is
// the deterministic key (arrival time, source node, per-source hop sequence),
// which does not depend on the shard count — the same seed produces
// bit-identical traces on 1, 2, 4 or 8 shards, and shards==1 *is* the
// sequential kernel. Shards are distributed over a fixed pool of
// min(shards, hardware threads) workers; the pool size affects wall-clock
// only, never the trace.
//
// A Simulator without ConfigureSharding() (kernel unit tests, microbenches)
// runs exactly one shard with no window loop and no threads.
//
// Internally each shard queue is a calendar queue tuned for this workload
// (almost all delays are 0 ns or small CPU/NIC costs, with a thin tail of
// scheduler timers), rather than a binary heap:
//
//   * now-FIFO   — a drain vector of events at exactly the current time.
//     Zero-delay scheduling (condition notifies, symmetric transfers) is one
//     append; dequeue is one index increment. The FIFO holds events of a
//     single timestamp at a time, so FIFO order *is* (time, seq) order.
//   * calendar   — kNumBuckets one-nanosecond buckets covering the near
//     future. One bucket ⇔ one timestamp, and sequence numbers are assigned
//     monotonically, so append order inside a bucket is already seq order:
//     refill walks the bucket's list into the now-FIFO. Buckets are singly
//     linked lists threaded through one shared node pool, so the only growth
//     high-water mark is the *total* number of in-calendar events — once the
//     workload's peak is seen, pushes never allocate again. An occupancy
//     bitmap finds the next non-empty bucket with a few word scans.
//   * overflow heap — events beyond the calendar horizon (rare: periodic
//     scheduler timers) wait in a std::priority_queue and are merged by
//     (time, seq) with calendar batches at refill.
//
// See DESIGN.md "Simulator internals & performance" and bench/perf_smoke.cc
// for the measured effect.
//
// All simulated activity lives in Proc coroutines spawned on the Simulator.
// Live processes are tracked on an intrusive doubly-linked list threaded
// through their promises (one list per shard). Shutdown() (also run by the
// destructor) destroys every still-suspended process frame, so a bench can
// simply stop simulating mid-workload without draining in-flight operations.
#ifndef FLOCK_SIM_SIMULATOR_H_
#define FLOCK_SIM_SIMULATOR_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/units.h"
#include "src/sim/task.h"

namespace flock::sim {

class Simulator {
 public:
  // Spawn()/ScheduleOnNode() sentinel: tag with the node of the event that is
  // currently executing (node 0 outside event execution).
  static constexpr int kInheritNode = -1;
  static constexpr int kMaxShards = 64;

  Simulator() { shards_.push_back(std::make_unique<Shard>(this, 0, 1)); }
  ~Simulator() { Shutdown(); }

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // ---- sharding configuration ----
  //
  // Partitions nodes into `num_shards` queues (`node_shard[n]` = shard of
  // node n) advancing in windows of `lookahead` ns — the minimum delay of any
  // cross-node hop. Must be called before any event is scheduled. The worker
  // pool holds min(num_shards, hardware threads) OS threads unless
  // `num_workers` overrides it; the pool size never affects the trace.
  void ConfigureSharding(int num_shards, const std::vector<int>& node_shard,
                         Nanos lookahead, int num_workers = 0) {
    FLOCK_CHECK_GT(num_shards, 0);
    FLOCK_CHECK_LE(num_shards, kMaxShards);
    FLOCK_CHECK_GT(lookahead, 0) << "conservative lookahead must be positive";
    FLOCK_CHECK(events_processed() == 0 && live_proc_count() == 0 && Idle() &&
                Now() == 0)
        << "ConfigureSharding must run before any simulated activity";
    for (const int s : node_shard) {
      FLOCK_CHECK(s >= 0 && s < num_shards) << "bad shard id " << s;
    }
    node_shard_.assign(node_shard.begin(), node_shard.end());
    node_hop_seq_.assign(node_shard.size(), 0);
    lookahead_ = lookahead;
    windowed_ = true;
    shards_.clear();
    for (int i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(this, i, num_shards));
    }
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    num_workers_ = num_workers > 0 ? num_workers
                                   : std::min(num_shards, std::max(1, hw));
    num_workers_ = std::min(num_workers_, num_shards);
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_workers() const { return num_workers_; }
  Nanos lookahead() const { return lookahead_; }

  Nanos Now() const {
    const Shard* s = RunningShard();
    return s != nullptr ? s->now_ : shards_[0]->now_;
  }

  // Transfers ownership of the process frame to the simulator and schedules
  // its first resumption at the current time, homed on `node`'s shard. A
  // process spawned while an event is executing must home on the executing
  // shard (cross-shard injection mid-window would race; route it through a
  // hop instead).
  void Spawn(Proc&& proc, int node = kInheritNode) {
    Proc::Handle handle = proc.Release();
    FLOCK_CHECK(handle);
    Shard* cur = RunningShard();
    if (node == kInheritNode) {
      node = cur != nullptr ? cur->current_node_ : 0;
    }
    Shard& home = ShardOfNode(node);
    if (cur != nullptr) {
      FLOCK_CHECK(&home == cur) << "cross-shard Spawn mid-run (node " << node
                                << " lives on shard " << home.index_
                                << ", executing node " << cur->current_node_
                                << " on shard " << cur->index_ << " at t="
                                << cur->now_ << ")";
    }
    internal::ProcPromise& promise = handle.promise();
    promise.sim = this;
    promise.home_shard = home.index_;
    promise.live_prev = nullptr;
    promise.live_next = home.live_head_;
    if (home.live_head_ != nullptr) {
      home.live_head_->live_prev = &promise;
    }
    home.live_head_ = &promise;
    ++home.live_count_;
    home.Push(Event{home.now_, home.next_seq_++, handle.address(), nullptr,
                    static_cast<int32_t>(node)});
  }

  // Schedules `handle` to be resumed `delay` from now, on the current node.
  void ScheduleResume(Nanos delay, std::coroutine_handle<> handle) {
    FLOCK_CHECK_GE(delay, 0);
    Shard& s = CurrentShard();
    s.Push(Event{s.now_ + delay, s.next_seq_++, handle.address(), nullptr,
                 s.current_node_});
  }

  // Schedules `fn(arg)` to run `delay` from now, on the current node.
  void Schedule(Nanos delay, void (*fn)(void*), void* arg) {
    FLOCK_CHECK_GE(delay, 0);
    FLOCK_CHECK(fn != nullptr);
    Shard& s = CurrentShard();
    s.Push(Event{s.now_ + delay, s.next_seq_++, arg, fn, s.current_node_});
  }

  // Schedules `handle` to resume `delay` from now on `node` — the only way an
  // event crosses nodes (and therefore shards). Under sharding the delay must
  // be at least the configured lookahead (the fabric guarantees this: every
  // cross-node interaction pays at least the minimum wire delay), and the
  // handle travels through the per-(src,dst) mailbox drained at the next
  // window barrier. Merge key (arrival, src node, per-src hop seq) makes the
  // destination ordering independent of the shard count.
  void ScheduleOnNode(int node, Nanos delay, std::coroutine_handle<> handle) {
    FLOCK_CHECK_GE(delay, 0);
    Shard* cur = RunningShard();
    if (!windowed_) {
      Shard& s = cur != nullptr ? *cur : *shards_[0];
      s.Push(Event{s.now_ + delay, s.next_seq_++, handle.address(), nullptr,
                   static_cast<int32_t>(node)});
      return;
    }
    FLOCK_CHECK(cur != nullptr) << "cross-node hop outside event execution";
    FLOCK_CHECK_LT(static_cast<size_t>(node), node_shard_.size());
    FLOCK_CHECK_GE(delay, lookahead_)
        << "cross-node hop below the conservative lookahead";
    const int32_t src = cur->current_node_;
    cur->hop_out_[static_cast<size_t>(node_shard_[static_cast<size_t>(node)])]
        .push_back(HopEntry{cur->now_ + delay,
                            node_hop_seq_[static_cast<size_t>(src)]++, src,
                            static_cast<int32_t>(node), handle.address()});
  }

  // Runs events until all queues drain. Returns the number of events run.
  uint64_t Run() { return RunLoop(-1); }

  // Runs events with time <= deadline; the clock lands on `deadline` even if
  // queues still have later events.
  uint64_t RunUntil(Nanos deadline) {
    const uint64_t n = RunLoop(deadline);
    for (auto& s : shards_) {
      if (s->now_ < deadline) {
        s->now_ = deadline;
      }
    }
    return n;
  }

  uint64_t RunFor(Nanos duration) { return RunUntil(Now() + duration); }

  bool Idle() const {
    for (const auto& s : shards_) {
      if (s->size_ != 0) {
        return false;
      }
    }
    return true;
  }

  uint64_t events_processed() const { return Sum(&Shard::events_processed_); }
  size_t live_proc_count() const {
    size_t n = 0;
    for (const auto& s : shards_) {
      n += s->live_count_;
    }
    return n;
  }
  size_t queue_size() const {
    size_t n = 0;
    for (const auto& s : shards_) {
      n += s->size_;
    }
    return n;
  }

  // ---- kernel counters (see bench/perf_smoke and bench/sim_kernel) ----
  // Each shard counts privately mid-window; accessors sum at read time (reads
  // happen on the coordinator between windows, never mid-window).
  // Total coroutine resumptions, however delivered.
  uint64_t resumes() const { return Sum(&Shard::resumes_); }
  // Resumptions performed inline by a resource model (FifoServer completion)
  // instead of a schedule/dequeue round trip through the event queue.
  uint64_t direct_resumes() const { return Sum(&Shard::direct_resumes_); }
  // Waiters woken by a shared drain event (Condition::NotifyAll, Semaphore
  // release batches) rather than one scheduled event per waiter.
  uint64_t coalesced_wakes() const { return Sum(&Shard::coalesced_wakes_); }

  // Bookkeeping hook for sync primitives that resume coroutines without a
  // per-waiter event (src/sim/sync.h).
  void NoteDirectResume() {
    Shard& s = CurrentShard();
    ++s.resumes_;
    ++s.direct_resumes_;
  }

  // ---- wake coalescing ----
  //
  // A notify-style primitive that wakes N waiters in one call (NotifyAll, a
  // batched release) queues the handles with QueueWake() and seals the batch
  // with CommitWakes(): ONE zero-delay drain event then resumes all N, in
  // queue order. Because the N handles would have been scheduled back to back
  // (consecutive sequence numbers, nothing can interleave inside the notify
  // call), the drain runs them at exactly the positions N individual
  // ScheduleResume(0) events would have — batching changes the event count,
  // never the execution order. The drain holds only coroutine handles, never
  // a pointer to the notifying primitive, so a primitive may be destroyed
  // (e.g. it lives in a resumed waiter's frame) with a drain still pending.
  // Batches are per shard: waiters of one primitive always share the
  // notifier's node (and therefore its shard).
  void QueueWake(std::coroutine_handle<> handle) {
    Shard& s = CurrentShard();
    s.wake_batch_.push_back(handle.address());
    ++s.uncommitted_wakes_;
  }

  void CommitWakes() {
    Shard& s = CurrentShard();
    if (s.uncommitted_wakes_ == 0) {
      return;
    }
    s.wake_counts_.push_back(s.uncommitted_wakes_);
    s.uncommitted_wakes_ = 0;
    Schedule(0, &Simulator::WakeDrainTrampoline, &s);
  }

  // Single-waiter convenience (OneShotEvent::Fire, NotifyOne).
  void ScheduleWake(std::coroutine_handle<> handle) {
    QueueWake(handle);
    CommitWakes();
  }

  // True while events at the current timestamp are still pending *for the
  // node of the executing event*. Resource models use this to decide whether
  // an inline resume is order-equivalent to a ScheduleResume(0) (see
  // FifoServer::Done). The predicate is node-local, not queue-global: events
  // of other nodes at the same timestamp are causally independent (any
  // influence crosses the fabric, which costs at least the lookahead), so
  // only same-node events constrain the resume position. Keeping it node-
  // local is what makes the decision — and with it the event count —
  // identical across shard counts.
  bool SameTimePending() const {
    const Shard& s = CurrentShard();
    const auto node = static_cast<size_t>(s.current_node_);
    return node < s.fifo_node_pending_.size() &&
           s.fifo_node_pending_[node] > 0;
  }

  // Destroys every live process frame and drops pending events. Safe to call
  // more than once. Must run while the objects referenced by process locals
  // are still alive (see Cluster in src/verbs).
  void Shutdown() {
    StopWorkers();
    shutting_down_ = true;
    for (auto& sp : shards_) {
      Shard& s = *sp;
      // Frames parked in finish mailboxes are still on their home live list;
      // the walk below destroys them. Hops in flight hold handles of frames
      // the walk destroys too, so the mailboxes just empty.
      for (auto& q : s.finish_out_) {
        q.clear();
      }
      for (auto& q : s.hop_out_) {
        q.clear();
      }
      // Destroying one frame can destroy child frames but never spawns procs.
      while (s.live_head_ != nullptr) {
        internal::ProcPromise* promise = s.live_head_;
        s.live_head_ = promise->live_next;
        if (s.live_head_ != nullptr) {
          s.live_head_->live_prev = nullptr;
        }
        std::coroutine_handle<internal::ProcPromise>::from_promise(*promise)
            .destroy();
      }
      s.live_count_ = 0;
      s.fifo_.clear();
      s.fifo_pos_ = 0;
      std::fill(s.fifo_node_pending_.begin(), s.fifo_node_pending_.end(), 0u);
      s.wake_batch_.clear();
      s.wake_drain_pos_ = 0;
      s.wake_counts_.clear();
      s.wake_counts_pos_ = 0;
      s.uncommitted_wakes_ = 0;
      for (size_t word = 0; word < kNumWords; ++word) {
        uint64_t bits = s.occupancy_[word];
        while (bits != 0) {
          const int bit = std::countr_zero(bits);
          bits &= bits - 1;
          Bucket& b = s.buckets_[(word << 6) + static_cast<size_t>(bit)];
          b.head = kNilNode;
          b.tail = kNilNode;
        }
        s.occupancy_[word] = 0;
      }
      s.nodes_.clear();
      s.free_node_ = kNilNode;
      s.calendar_count_ = 0;
      while (!s.overflow_.empty()) {
        s.overflow_.pop();
      }
      s.size_ = 0;
    }
    shutting_down_ = false;
  }

 private:
  friend struct internal::ProcFinalAwaiter;

  // 40 bytes: when `fn` is null, `ctx` is a coroutine frame address to
  // resume; otherwise the event runs fn(ctx). `node` is the simulated node
  // the event belongs to: pushes inherit the executing event's node, so every
  // event of a node runs on the shard that owns it.
  struct Event {
    Nanos at;
    uint64_t seq;
    void* ctx;
    void (*fn)(void*);
    int32_t node;
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  // A cross-node hop parked in a mailbox until the window barrier. Ordered by
  // (at, src_node, hop_seq); the triple is unique and independent of both the
  // shard count and the shard→worker assignment.
  struct HopEntry {
    Nanos at;
    uint64_t hop_seq;  // per-source-node counter, not per-shard
    int32_t src_node;
    int32_t dst_node;
    void* ctx;  // coroutine frame address (hops are always resumes)
  };

  // Calendar geometry: 4096 one-nanosecond buckets cover ~4 us of lookahead,
  // which swallows every CPU/NIC/wire delay in the cost model (the largest
  // common short delays — PCIe fetches, MTU serialization, the 1 us
  // ring-stall retry — are ~1 us); only long timers (QP/thread scheduler
  // intervals, bench warmups) overflow to the heap. Events within the horizon
  // occupy distinct buckets, so a bucket never mixes timestamps. Keeping the
  // array small matters: the active window of buckets stays cache-resident.
  static constexpr size_t kBucketBits = 12;
  static constexpr size_t kNumBuckets = size_t{1} << kBucketBits;
  static constexpr size_t kNumWords = kNumBuckets / 64;
  static constexpr Nanos kHorizon = static_cast<Nanos>(kNumBuckets);
  static constexpr uint32_t kNilNode = UINT32_MAX;

  static size_t BucketOf(Nanos at) {
    return static_cast<size_t>(at) & (kNumBuckets - 1);
  }

  struct CalendarNode {
    Event event;
    uint32_t next = kNilNode;
  };

  struct Bucket {
    uint32_t head = kNilNode;
    uint32_t tail = kNilNode;
  };

  // One shard: a complete, self-contained event queue plus the live-process
  // list and counters of the nodes it owns. Mid-window a shard is touched
  // only by the worker thread running it; between windows only by the
  // coordinator (ordering enforced by the epoch barrier's acquire/release
  // pairs).
  struct Shard {
    Shard(Simulator* owner, int index, int num_shards)
        : owner_(owner), index_(static_cast<uint32_t>(index)) {
      hop_out_.resize(static_cast<size_t>(num_shards));
      finish_out_.resize(static_cast<size_t>(num_shards));
    }

    // ---- now-FIFO drain vector (single timestamp at a time) ----
    //
    // Consumed events stay in the processed prefix until the whole batch
    // drains (the vector is cleared at the next refill, keeping its
    // capacity), so push is a plain append and pop an index increment.
    // fifo_node_pending_ counts the *unconsumed* FIFO events per node,
    // maintained on push/pop/flush, so SameTimePending() is one array read.

    bool FifoEmpty() const { return fifo_pos_ == fifo_.size(); }

    void FifoPush(const Event& event) {
      fifo_.push_back(event);
      const auto node = static_cast<size_t>(event.node);
      if (node >= fifo_node_pending_.size()) {
        fifo_node_pending_.resize(node + 1, 0u);
      }
      ++fifo_node_pending_[node];
    }

    // ---- enqueue ----

    void Push(const Event& event) {
      ++size_;
      if (event.at == now_) {
        // Invariant: buckets and overflow never hold events at the current
        // time (Refill drains the full timestamp batch), and the now-FIFO
        // holds a single timestamp, so appending preserves (time, seq) order.
        FifoPush(event);
        return;
      }
      if (event.at - now_ < kHorizon) {
        const size_t bucket = BucketOf(event.at);
        const uint32_t node = AllocNode(event);
        Bucket& b = buckets_[bucket];
        if (b.tail == kNilNode) {
          b.head = node;
        } else {
          nodes_[b.tail].next = node;
        }
        b.tail = node;
        occupancy_[bucket >> 6] |= uint64_t{1} << (bucket & 63);
        ++calendar_count_;
      } else {
        overflow_.push(event);
      }
    }

    uint32_t AllocNode(const Event& event) {
      uint32_t node = free_node_;
      if (node != kNilNode) {
        free_node_ = nodes_[node].next;
      } else {
        node = static_cast<uint32_t>(nodes_.size());
        nodes_.emplace_back();
      }
      nodes_[node].event = event;
      nodes_[node].next = kNilNode;
      return node;
    }

    // ---- refill: move the earliest timestamp batch into the now-FIFO ----

    // First occupied bucket at or after `start`, in ring order (ring order is
    // time order because live events span less than one calendar revolution —
    // the window loop advances now_ to each window's end, so events never
    // accumulate more than a horizon ahead of the scan start).
    size_t FirstOccupied(size_t start) const {
      size_t word = start >> 6;
      uint64_t bits = occupancy_[word] & (~uint64_t{0} << (start & 63));
      for (size_t scanned = 0; scanned <= kNumWords; ++scanned) {
        if (bits != 0) {
          return (word << 6) + static_cast<size_t>(std::countr_zero(bits));
        }
        word = (word + 1) & (kNumWords - 1);
        bits = occupancy_[word];
      }
      FLOCK_CHECK(false) << "occupancy bitmap and calendar_count_ disagree";
      return 0;
    }

    void Refill() {
      fifo_.clear();  // previous batch fully consumed; keep the capacity
      fifo_pos_ = 0;
      if (calendar_count_ == 0) {
        DrainOverflowBatch();
        return;
      }
      const size_t bucket = FirstOccupied(BucketOf(now_));
      Bucket& slot = buckets_[bucket];
      const Nanos bucket_at = nodes_[slot.head].event.at;  // one ts per bucket
      if (!overflow_.empty() && overflow_.top().at < bucket_at) {
        DrainOverflowBatch();
        return;
      }
      // Append order inside the bucket is seq order, so walking head-to-tail
      // yields the drain batch already in (time, seq) order. Nodes return to
      // the shared free list as they are copied out.
      uint32_t node = slot.head;
      while (node != kNilNode) {
        FifoPush(nodes_[node].event);
        const uint32_t next = nodes_[node].next;
        nodes_[node].next = free_node_;
        free_node_ = node;
        node = next;
        --calendar_count_;
      }
      slot.head = kNilNode;
      slot.tail = kNilNode;
      occupancy_[bucket >> 6] &= ~(uint64_t{1} << (bucket & 63));
      if (!overflow_.empty() && overflow_.top().at == bucket_at) {
        // Calendar and heap collide on one timestamp (rare): merge by seq.
        while (!overflow_.empty() && overflow_.top().at == bucket_at) {
          FifoPush(overflow_.top());
          overflow_.pop();
        }
        std::sort(fifo_.begin(), fifo_.end(),
                  [](const Event& a, const Event& b) { return a.seq < b.seq; });
      }
    }

    // Moves the earliest-timestamp batch from the overflow heap to the FIFO.
    // The heap pops equal-time events in seq order (EventLater tie-break).
    void DrainOverflowBatch() {
      FLOCK_CHECK(!overflow_.empty());
      const Nanos cut = overflow_.top().at;
      while (!overflow_.empty() && overflow_.top().at == cut) {
        FifoPush(overflow_.top());
        overflow_.pop();
      }
    }

    // Returns a refilled-but-unreachable batch (deadline passed) to the
    // calendar so later inserts keep ordering. The batch shares one timestamp
    // strictly after now_, so Push never routes back to the FIFO.
    void FlushFifo() {
      while (fifo_pos_ < fifo_.size()) {
        const Event event = fifo_[fifo_pos_++];
        --fifo_node_pending_[static_cast<size_t>(event.node)];
        --size_;  // Push re-counts it; the event keeps its original seq
        Push(event);
      }
      fifo_.clear();
      fifo_pos_ = 0;
    }

    // Earliest pending event time, or -1 if the shard is empty. Called by the
    // coordinator between windows to pick the next window start.
    Nanos NextEventAt() const {
      if (!FifoEmpty()) {
        return fifo_[fifo_pos_].at;  // e.g. a Spawn between runs
      }
      Nanos best = -1;
      if (calendar_count_ != 0) {
        const size_t bucket = FirstOccupied(BucketOf(now_));
        best = nodes_[buckets_[bucket].head].event.at;
      }
      if (!overflow_.empty() && (best < 0 || overflow_.top().at < best)) {
        best = overflow_.top().at;
      }
      return best;
    }

    // Runs events with time <= deadline (every event if deadline < 0).
    uint64_t RunWindow(Nanos deadline) {
      uint64_t ran = 0;
      for (;;) {
        if (FifoEmpty()) {
          if (size_ == 0) {
            break;
          }
          Refill();
        }
        const Event& front = fifo_[fifo_pos_];
        if (deadline >= 0 && front.at > deadline) {
          if (front.at > now_) {
            FlushFifo();
          }
          break;
        }
        const Event event = front;
        ++fifo_pos_;
        --fifo_node_pending_[static_cast<size_t>(event.node)];
        --size_;
        FLOCK_CHECK_GE(event.at, now_);
        now_ = event.at;
        current_node_ = event.node;
        ++ran;
        ++events_processed_;
        if (event.fn != nullptr) {
          event.fn(event.ctx);
        } else {
          ++resumes_;
          std::coroutine_handle<>::from_address(event.ctx).resume();
        }
      }
      // Land the shard clock on the window end: keeps every live event within
      // one calendar revolution of the bucket scan start, and the value is a
      // global window boundary, so it is identical across shard counts.
      if (deadline >= 0 && now_ < deadline) {
        now_ = deadline;
      }
      return ran;
    }

    void WakeDrain() {
      // Each drain event consumes exactly the handles of its own commit — a
      // waiter that notifies further waiters commits a new batch with its own
      // drain event, which keeps their resumption at the position fresh
      // ScheduleResume(0) events would have had.
      const uint32_t count = wake_counts_[wake_counts_pos_++];
      for (uint32_t i = 0; i < count; ++i) {
        ++resumes_;
        ++coalesced_wakes_;
        std::coroutine_handle<>::from_address(wake_batch_[wake_drain_pos_++])
            .resume();
      }
      if (wake_drain_pos_ == wake_batch_.size() && uncommitted_wakes_ == 0) {
        // Fully drained: reset the consumed prefixes, keeping capacity.
        wake_batch_.clear();
        wake_drain_pos_ = 0;
        wake_counts_.clear();
        wake_counts_pos_ = 0;
      }
    }

    Simulator* owner_;
    uint32_t index_;

    Nanos now_ = 0;
    uint64_t next_seq_ = 0;
    uint64_t events_processed_ = 0;
    uint64_t resumes_ = 0;
    uint64_t direct_resumes_ = 0;
    uint64_t coalesced_wakes_ = 0;
    size_t size_ = 0;
    int32_t current_node_ = 0;

    std::vector<Event> fifo_;  // drain vector: [fifo_pos_, size) is pending
    size_t fifo_pos_ = 0;
    std::vector<uint32_t> fifo_node_pending_;  // unconsumed FIFO events/node

    // Wake batches: handles in commit order, one count per commit. Both
    // vectors drain by position and reset when empty, so steady state never
    // allocates.
    std::vector<void*> wake_batch_;
    size_t wake_drain_pos_ = 0;
    std::vector<uint32_t> wake_counts_;
    size_t wake_counts_pos_ = 0;
    uint32_t uncommitted_wakes_ = 0;

    Bucket buckets_[kNumBuckets];
    std::vector<CalendarNode> nodes_;  // shared node pool for all buckets
    uint32_t free_node_ = kNilNode;
    uint64_t occupancy_[kNumWords] = {};
    size_t calendar_count_ = 0;

    std::priority_queue<Event, std::vector<Event>, EventLater> overflow_;

    internal::ProcPromise* live_head_ = nullptr;
    size_t live_count_ = 0;

    // Outboxes, indexed by destination shard; SPSC by construction (the shard
    // appends mid-window, the coordinator drains at the barrier). Capacity is
    // kept across windows, so steady state never allocates.
    std::vector<std::vector<HopEntry>> hop_out_;
    std::vector<std::vector<internal::ProcPromise*>> finish_out_;
  };

  static void WakeDrainTrampoline(void* shard) {
    static_cast<Shard*>(shard)->WakeDrain();
  }

  // The shard whose window the calling thread is currently executing, or null
  // outside event execution. thread_local so worker threads and concurrent
  // Simulators on other threads never observe each other.
  static Shard*& RunningShardSlot() {
    static thread_local Shard* slot = nullptr;
    return slot;
  }

  Shard* RunningShard() const {
    Shard* s = RunningShardSlot();
    return s != nullptr && s->owner_ == this ? s : nullptr;
  }

  // Routing for schedule calls: the executing shard mid-window, shard 0 from
  // the main thread outside execution (setup code between runs).
  Shard& CurrentShard() {
    Shard* s = RunningShard();
    return s != nullptr ? *s : *shards_[0];
  }
  const Shard& CurrentShard() const {
    const Shard* s = RunningShard();
    return s != nullptr ? *s : *shards_[0];
  }

  Shard& ShardOfNode(int node) {
    if (node_shard_.empty()) {
      return *shards_[0];
    }
    FLOCK_CHECK(node >= 0 && static_cast<size_t>(node) < node_shard_.size())
        << "node " << node << " outside the sharding map";
    return *shards_[static_cast<size_t>(node_shard_[static_cast<size_t>(node)])];
  }

  uint64_t Sum(uint64_t Shard::* field) const {
    uint64_t total = 0;
    for (const auto& s : shards_) {
      total += (*s).*field;
    }
    return total;
  }

  void OnProcFinished(std::coroutine_handle<internal::ProcPromise> handle) {
    internal::ProcPromise& promise = handle.promise();
    if (shutting_down_) {
      handle.destroy();
      return;
    }
    Shard* cur = RunningShard();
    Shard& home = *shards_[promise.home_shard];
    if (cur != nullptr && cur != &home) {
      // Finished on a foreign shard (e.g. an unreliable delivery that ends at
      // the receiver): park the frame; the coordinator unlinks and destroys
      // it at the window barrier, when the home shard's list is quiescent.
      cur->finish_out_[promise.home_shard].push_back(&promise);
      return;
    }
    UnlinkAndDestroy(home, promise);
  }

  void UnlinkAndDestroy(Shard& home, internal::ProcPromise& promise) {
    if (promise.live_prev != nullptr) {
      promise.live_prev->live_next = promise.live_next;
    } else {
      home.live_head_ = promise.live_next;
    }
    if (promise.live_next != nullptr) {
      promise.live_next->live_prev = promise.live_prev;
    }
    --home.live_count_;
    std::coroutine_handle<internal::ProcPromise>::from_promise(promise)
        .destroy();
  }

  // ---- window loop ----

  uint64_t RunLoop(Nanos deadline) {
    if (!windowed_) {
      Shard& s = *shards_[0];
      RunningShardSlot() = &s;
      const uint64_t ran = s.RunWindow(deadline);
      RunningShardSlot() = nullptr;
      return ran;
    }
    const uint64_t before = events_processed();
    for (;;) {
      Nanos next = -1;
      for (const auto& s : shards_) {
        const Nanos t = s->NextEventAt();
        if (t >= 0 && (next < 0 || t < next)) {
          next = t;
        }
      }
      if (next < 0 || (deadline >= 0 && next > deadline)) {
        break;
      }
      // Window [next, wend]: a hop from t >= next has arrival
      // t + lookahead > wend, so it cannot land inside this window. The
      // boundary depends only on the global earliest event time — identical
      // at every shard count, which keeps barrier (and therefore mailbox
      // drain) positions aligned across configurations.
      Nanos wend = next + lookahead_ - 1;
      if (deadline >= 0 && wend > deadline) {
        wend = deadline;
      }
      RunWindowAll(wend);
      DrainBarrier();
    }
    return events_processed() - before;
  }

  void RunShardWindow(Shard& s, Nanos wend) {
    RunningShardSlot() = &s;
    s.RunWindow(wend);
    RunningShardSlot() = nullptr;
  }

  void RunWindowAll(Nanos wend) {
    if (num_workers_ > 1 && workers_.empty()) {
      StartWorkers();
    }
    if (num_workers_ <= 1) {
      for (auto& s : shards_) {
        RunShardWindow(*s, wend);
      }
      return;
    }
    // Publish the window, run our own shards, then wait for the pool. The
    // release/acquire pairs on window_epoch_ and worker_done_ order all shard
    // and mailbox memory between the coordinator and the workers.
    window_deadline_ = wend;
    const uint64_t epoch =
        window_epoch_.load(std::memory_order_relaxed) + 1;
    window_epoch_.store(epoch, std::memory_order_release);
    for (size_t i = 0; i < shards_.size();
         i += static_cast<size_t>(num_workers_)) {
      RunShardWindow(*shards_[i], wend);
    }
    for (int w = 1; w < num_workers_; ++w) {
      SpinUntil([&] {
        return worker_done_[static_cast<size_t>(w)].value.load(
                   std::memory_order_acquire) == epoch;
      });
    }
  }

  void DrainBarrier() {
    const size_t n = shards_.size();
    for (size_t dst = 0; dst < n; ++dst) {
      merge_scratch_.clear();
      for (size_t src = 0; src < n; ++src) {
        auto& box = shards_[src]->hop_out_[dst];
        merge_scratch_.insert(merge_scratch_.end(), box.begin(), box.end());
        box.clear();
      }
      if (merge_scratch_.empty()) {
        continue;
      }
      std::sort(merge_scratch_.begin(), merge_scratch_.end(),
                [](const HopEntry& a, const HopEntry& b) {
                  if (a.at != b.at) {
                    return a.at < b.at;
                  }
                  if (a.src_node != b.src_node) {
                    return a.src_node < b.src_node;
                  }
                  return a.hop_seq < b.hop_seq;
                });
      Shard& d = *shards_[dst];
      for (const HopEntry& h : merge_scratch_) {
        d.Push(Event{h.at, d.next_seq_++, h.ctx, nullptr, h.dst_node});
      }
    }
    for (size_t src = 0; src < n; ++src) {
      for (size_t home = 0; home < n; ++home) {
        auto& fin = shards_[src]->finish_out_[home];
        for (internal::ProcPromise* promise : fin) {
          UnlinkAndDestroy(*shards_[home], *promise);
        }
        fin.clear();
      }
    }
  }

  // ---- worker pool ----

  template <typename Pred>
  static void SpinUntil(Pred pred) {
    for (int spins = 0; !pred(); ++spins) {
      if (spins > 256) {
        std::this_thread::yield();
      }
    }
  }

  void StartWorkers() {
    worker_done_ = std::make_unique<PaddedEpoch[]>(
        static_cast<size_t>(num_workers_));
    const uint64_t epoch = window_epoch_.load(std::memory_order_relaxed);
    for (int w = 0; w < num_workers_; ++w) {
      worker_done_[static_cast<size_t>(w)].value.store(
          epoch, std::memory_order_relaxed);
    }
    stop_workers_.store(false, std::memory_order_relaxed);
    for (int w = 1; w < num_workers_; ++w) {
      // Pass the pre-window epoch: re-reading window_epoch_ from the worker
      // would race with the coordinator's first increment (the worker could
      // treat the first window as already seen and sleep forever).
      workers_.emplace_back([this, w, epoch] { WorkerLoop(w, epoch); });
    }
  }

  void WorkerLoop(int w, uint64_t seen) {
    for (;;) {
      uint64_t epoch = seen;
      SpinUntil([&] {
        epoch = window_epoch_.load(std::memory_order_acquire);
        return epoch != seen;
      });
      seen = epoch;
      if (stop_workers_.load(std::memory_order_acquire)) {
        return;
      }
      for (size_t i = static_cast<size_t>(w); i < shards_.size();
           i += static_cast<size_t>(num_workers_)) {
        RunShardWindow(*shards_[i], window_deadline_);
      }
      worker_done_[static_cast<size_t>(w)].value.store(
          epoch, std::memory_order_release);
    }
  }

  void StopWorkers() {
    if (workers_.empty()) {
      return;
    }
    stop_workers_.store(true, std::memory_order_release);
    window_epoch_.fetch_add(1, std::memory_order_release);
    for (std::thread& t : workers_) {
      t.join();
    }
    workers_.clear();
    worker_done_.reset();
  }

  struct alignas(64) PaddedEpoch {
    std::atomic<uint64_t> value{0};
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<int32_t> node_shard_;    // empty → every node on shard 0
  std::vector<uint64_t> node_hop_seq_; // per-source-node hop counters
  Nanos lookahead_ = 0;
  bool windowed_ = false;
  bool shutting_down_ = false;
  int num_workers_ = 1;
  std::vector<HopEntry> merge_scratch_;

  std::vector<std::thread> workers_;
  std::atomic<uint64_t> window_epoch_{0};
  std::atomic<bool> stop_workers_{false};
  Nanos window_deadline_ = 0;  // written before the epoch release-store
  std::unique_ptr<PaddedEpoch[]> worker_done_;
};

namespace internal {

inline void ProcFinalAwaiter::await_suspend(
    std::coroutine_handle<ProcPromise> handle) noexcept {
  handle.promise().sim->OnProcFinished(handle);
}

}  // namespace internal

// Suspends the awaiting coroutine for `delay` of simulated time (same node).
class Delay {
 public:
  Delay(Simulator& sim, Nanos delay) : sim_(sim), delay_(delay) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle) {
    sim_.ScheduleResume(delay_ < 0 ? 0 : delay_, handle);
  }
  void await_resume() const noexcept {}

 private:
  Simulator& sim_;
  Nanos delay_;
};

// Suspends the awaiting coroutine for `delay` and resumes it on `node` —
// the migration point of every cross-node interaction (switch transit, RC
// acknowledgements). Under sharding the delay must be at least the
// configured lookahead; see Simulator::ScheduleOnNode.
class HopToNode {
 public:
  HopToNode(Simulator& sim, int node, Nanos delay)
      : sim_(sim), node_(node), delay_(delay) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle) {
    sim_.ScheduleOnNode(node_, delay_ < 0 ? 0 : delay_, handle);
  }
  void await_resume() const noexcept {}

 private:
  Simulator& sim_;
  int node_;
  Nanos delay_;
};

}  // namespace flock::sim

#endif  // FLOCK_SIM_SIMULATOR_H_
