// Discrete-event simulation kernel.
//
// The Simulator owns a virtual clock and an event queue ordered by
// (time, insertion sequence); equal-time events fire in FIFO order, which
// makes every run bit-for-bit deterministic. An event is either a coroutine
// resumption or a raw (function pointer, argument) callback — the latter is
// used by resource models (FIFO servers) that do not want a coroutine frame
// per service completion.
//
// All simulated activity lives in Proc coroutines spawned on the Simulator.
// Shutdown() (also run by the destructor) destroys every still-suspended
// process frame, so a bench can simply stop simulating mid-workload without
// draining in-flight operations.
#ifndef FLOCK_SIM_SIMULATOR_H_
#define FLOCK_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/logging.h"
#include "src/common/units.h"
#include "src/sim/task.h"

namespace flock::sim {

class Simulator {
 public:
  Simulator() = default;
  ~Simulator() { Shutdown(); }

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Nanos Now() const { return now_; }

  // Transfers ownership of the process frame to the simulator and schedules
  // its first resumption at the current time.
  void Spawn(Proc&& proc) {
    Proc::Handle handle = proc.Release();
    FLOCK_CHECK(handle);
    handle.promise().sim = this;
    live_procs_.insert(handle.address());
    ScheduleResume(0, handle);
  }

  // Schedules `handle` to be resumed `delay` from now.
  void ScheduleResume(Nanos delay, std::coroutine_handle<> handle) {
    FLOCK_CHECK_GE(delay, 0);
    queue_.push(Event{now_ + delay, next_seq_++, handle, nullptr, nullptr});
  }

  // Schedules `fn(arg)` to run `delay` from now.
  void Schedule(Nanos delay, void (*fn)(void*), void* arg) {
    FLOCK_CHECK_GE(delay, 0);
    queue_.push(Event{now_ + delay, next_seq_++, nullptr, fn, arg});
  }

  // Runs events until the queue drains. Returns the number of events run.
  uint64_t Run() { return RunUntilInternal(-1); }

  // Runs events with time <= deadline; the clock lands on `deadline` even if
  // the queue still has later events.
  uint64_t RunUntil(Nanos deadline) {
    const uint64_t n = RunUntilInternal(deadline);
    if (now_ < deadline) {
      now_ = deadline;
    }
    return n;
  }

  uint64_t RunFor(Nanos duration) { return RunUntil(now_ + duration); }

  bool Idle() const { return queue_.empty(); }
  uint64_t events_processed() const { return events_processed_; }
  size_t live_proc_count() const { return live_procs_.size(); }

  // Destroys every live process frame and drops pending events. Safe to call
  // more than once. Must run while the objects referenced by process locals
  // are still alive (see Cluster in src/fabric).
  void Shutdown() {
    shutting_down_ = true;
    // Destroying one frame can destroy child frames but never spawns procs.
    auto snapshot = live_procs_;
    live_procs_.clear();
    for (void* address : snapshot) {
      std::coroutine_handle<>::from_address(address).destroy();
    }
    while (!queue_.empty()) {
      queue_.pop();
    }
    shutting_down_ = false;
  }

 private:
  friend struct internal::ProcFinalAwaiter;

  struct Event {
    Nanos at;
    uint64_t seq;
    std::coroutine_handle<> coroutine;
    void (*fn)(void*);
    void* arg;
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  void OnProcFinished(std::coroutine_handle<internal::ProcPromise> handle) {
    if (!shutting_down_) {
      live_procs_.erase(handle.address());
    }
    handle.destroy();
  }

  uint64_t RunUntilInternal(Nanos deadline) {
    uint64_t ran = 0;
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (deadline >= 0 && top.at > deadline) {
        break;
      }
      Event event = top;
      queue_.pop();
      FLOCK_CHECK_GE(event.at, now_);
      now_ = event.at;
      ++ran;
      ++events_processed_;
      if (event.coroutine) {
        event.coroutine.resume();
      } else {
        event.fn(event.arg);
      }
    }
    return ran;
  }

  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  bool shutting_down_ = false;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::unordered_set<void*> live_procs_;
};

namespace internal {

inline void ProcFinalAwaiter::await_suspend(
    std::coroutine_handle<ProcPromise> handle) noexcept {
  handle.promise().sim->OnProcFinished(handle);
}

}  // namespace internal

// Suspends the awaiting coroutine for `delay` of simulated time.
class Delay {
 public:
  Delay(Simulator& sim, Nanos delay) : sim_(sim), delay_(delay) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle) {
    sim_.ScheduleResume(delay_ < 0 ? 0 : delay_, handle);
  }
  void await_resume() const noexcept {}

 private:
  Simulator& sim_;
  Nanos delay_;
};

}  // namespace flock::sim

#endif  // FLOCK_SIM_SIMULATOR_H_
