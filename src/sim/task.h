// Coroutine types for the discrete-event simulator.
//
// Two shapes of coroutine exist in the simulation:
//
//  * Proc  — a fire-and-forget "process" (a simulated thread, a NIC engine, a
//    scheduler loop). Created suspended, registered with the Simulator via
//    Simulator::Spawn, destroyed either when it runs to completion or when the
//    Simulator shuts down.
//
//  * Co<T> — a lazily-started, value-returning subroutine awaited from inside
//    a Proc or another Co. Completion resumes the awaiting coroutine via
//    symmetric transfer, so arbitrarily deep call chains cost no stack.
//
// Exceptions are not used inside the simulation (error paths return status
// values); an exception escaping a coroutine is a bug and terminates.
#ifndef FLOCK_SIM_TASK_H_
#define FLOCK_SIM_TASK_H_

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <new>
#include <optional>
#include <utility>

namespace flock::sim {

class Simulator;

namespace internal {
struct ProcPromise;

// Size-class free-list recycler for coroutine frames.
//
// Frames churn at event rate — every RPC allocates a SendRpc frame, an
// AwaitResponse frame, and usually a Pump frame — so after warmup the same
// handful of frame sizes is allocated and freed millions of times. Promise
// types below route frame storage through this pool: a freed frame parks on
// the free list of its size class and the next coroutine of that size reuses
// it without touching the general-purpose allocator. Frames larger than
// kMaxPooledBytes (rare: big local arrays) fall through to operator new.
//
// The pool is thread_local: tests run several simulators on different
// threads concurrently, and a sharded simulation runs shards on a worker
// pool. A frame may be allocated on one worker and freed on another (a
// process migrated by a cross-node hop, or destroyed by the coordinator at
// shutdown); the block simply parks on the freeing thread's list — free
// lists hold untyped memory, not simulator state, so crossing pools is
// benign and, critically, never affects the simulated trace.
class FramePool {
 public:
  static constexpr size_t kGranuleBytes = 64;
  static constexpr size_t kMaxPooledBytes = 8192;
  static constexpr size_t kNumClasses = kMaxPooledBytes / kGranuleBytes + 1;

  static void* Alloc(size_t bytes) {
    if (bytes > kMaxPooledBytes) {
      return ::operator new(bytes);
    }
    FramePool& pool = Instance();
    const size_t cls = (bytes + kGranuleBytes - 1) / kGranuleBytes;
    void* block = pool.free_[cls];
    if (block != nullptr) {
      pool.free_[cls] = *static_cast<void**>(block);
      ++pool.hits_;
      return block;
    }
    ++pool.misses_;
    return ::operator new(cls * kGranuleBytes);
  }

  static void Free(void* block, size_t bytes) {
    if (bytes > kMaxPooledBytes || !alive()) {
      ::operator delete(block);
      return;
    }
    FramePool& pool = Instance();
    const size_t cls = (bytes + kGranuleBytes - 1) / kGranuleBytes;
    *static_cast<void**>(block) = pool.free_[cls];
    pool.free_[cls] = block;
  }

  // Frames served from a free list vs. from operator new (observability for
  // the allocation-free-hot-path tests).
  static uint64_t hits() { return Instance().hits_; }
  static uint64_t misses() { return Instance().misses_; }

  ~FramePool() {
    alive() = false;
    for (size_t cls = 0; cls < kNumClasses; ++cls) {
      void* block = free_[cls];
      while (block != nullptr) {
        void* next = *static_cast<void**>(block);
        ::operator delete(block);
        block = next;
      }
    }
  }

 private:
  FramePool() = default;

  static FramePool& Instance() {
    thread_local FramePool pool;
    return pool;
  }

  // Trivially-destructible flag that outlives the pool, so frames destroyed
  // during thread teardown (after ~FramePool) fall back to operator delete.
  static bool& alive() {
    thread_local bool is_alive = true;
    return is_alive;
  }

  void* free_[kNumClasses] = {};
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

// Inherit (or mirror) these operators in a promise_type to give its
// coroutine frames pooled storage.
struct FramePooled {
  static void* operator new(size_t bytes) { return FramePool::Alloc(bytes); }
  static void operator delete(void* block, size_t bytes) {
    FramePool::Free(block, bytes);
  }
};
}  // namespace internal

// Handle returned by a process coroutine. Ownership of the frame passes to
// the Simulator on Spawn; a Proc that is never spawned destroys its frame.
class [[nodiscard]] Proc {
 public:
  using promise_type = internal::ProcPromise;
  using Handle = std::coroutine_handle<internal::ProcPromise>;

  Proc() = default;
  explicit Proc(Handle handle) : handle_(handle) {}
  Proc(Proc&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Proc& operator=(Proc&& other) noexcept {
    if (this != &other) {
      DestroyIfOwned();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;
  ~Proc() { DestroyIfOwned(); }

  Handle Release() { return std::exchange(handle_, nullptr); }

 private:
  void DestroyIfOwned() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  Handle handle_ = nullptr;
};

namespace internal {

struct ProcFinalAwaiter {
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<ProcPromise> handle) noexcept;
  void await_resume() const noexcept {}
};

struct ProcPromise : FramePooled {
  Simulator* sim = nullptr;
  // Shard the process was spawned on (the shard owning its node). A process
  // that runs its last event on a foreign shard — possible only via a
  // cross-node hop — is parked until the window barrier so its home shard's
  // live list is only ever unlinked while that shard is quiescent.
  uint32_t home_shard = 0;
  // Intrusive doubly-linked list of live (spawned, not yet finished)
  // processes, threaded through the promise so the Simulator tracks
  // membership with pointer writes instead of a hash set.
  ProcPromise* live_prev = nullptr;
  ProcPromise* live_next = nullptr;

  Proc get_return_object() {
    return Proc(std::coroutine_handle<ProcPromise>::from_promise(*this));
  }
  std::suspend_always initial_suspend() noexcept { return {}; }
  ProcFinalAwaiter final_suspend() noexcept { return {}; }
  void return_void() {}
  void unhandled_exception() { std::terminate(); }
};

}  // namespace internal

// Value-returning subroutine. `co_await SomeCo(...)` starts the child and
// resumes the caller when the child co_returns.
template <typename T>
class [[nodiscard]] Co {
 public:
  struct promise_type : internal::FramePooled {
    std::coroutine_handle<> continuation;
    std::optional<T> value;

    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> handle) noexcept {
        auto continuation = handle.promise().continuation;
        return continuation ? continuation : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value.emplace(std::move(v)); }
    void unhandled_exception() { std::terminate(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  explicit Co(Handle handle) : handle_(handle) {}
  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&&) = delete;
  ~Co() {
    if (handle_) {
      handle_.destroy();
    }
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) noexcept {
    handle_.promise().continuation = caller;
    return handle_;
  }
  T await_resume() { return std::move(*handle_.promise().value); }

 private:
  Handle handle_;
};

// Spawning a *capturing lambda* coroutine directly is a lifetime trap: the
// captures live in the closure object, which usually dies long before the
// simulator first resumes the coroutine. RunClosure copies the closure into
// its own frame and drives it, so
//
//   sim.Spawn(RunClosure([&]() -> Co<void> { ... }));
//
// is safe no matter where the lambda was declared. (Plain coroutine
// *functions* are always safe — parameters are copied into the frame.)
template <typename Lambda>
Proc RunClosure(Lambda lambda) {
  co_await lambda();
}

template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type : internal::FramePooled {
    std::coroutine_handle<> continuation;

    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> handle) noexcept {
        auto continuation = handle.promise().continuation;
        return continuation ? continuation : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  explicit Co(Handle handle) : handle_(handle) {}
  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&&) = delete;
  ~Co() {
    if (handle_) {
      handle_.destroy();
    }
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) noexcept {
    handle_.promise().continuation = caller;
    return handle_;
  }
  void await_resume() {}

 private:
  Handle handle_;
};

}  // namespace flock::sim

#endif  // FLOCK_SIM_TASK_H_
