// Coroutine types for the discrete-event simulator.
//
// Two shapes of coroutine exist in the simulation:
//
//  * Proc  — a fire-and-forget "process" (a simulated thread, a NIC engine, a
//    scheduler loop). Created suspended, registered with the Simulator via
//    Simulator::Spawn, destroyed either when it runs to completion or when the
//    Simulator shuts down.
//
//  * Co<T> — a lazily-started, value-returning subroutine awaited from inside
//    a Proc or another Co. Completion resumes the awaiting coroutine via
//    symmetric transfer, so arbitrarily deep call chains cost no stack.
//
// Exceptions are not used inside the simulation (error paths return status
// values); an exception escaping a coroutine is a bug and terminates.
#ifndef FLOCK_SIM_TASK_H_
#define FLOCK_SIM_TASK_H_

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace flock::sim {

class Simulator;

namespace internal {
struct ProcPromise;
}  // namespace internal

// Handle returned by a process coroutine. Ownership of the frame passes to
// the Simulator on Spawn; a Proc that is never spawned destroys its frame.
class [[nodiscard]] Proc {
 public:
  using promise_type = internal::ProcPromise;
  using Handle = std::coroutine_handle<internal::ProcPromise>;

  Proc() = default;
  explicit Proc(Handle handle) : handle_(handle) {}
  Proc(Proc&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Proc& operator=(Proc&& other) noexcept {
    if (this != &other) {
      DestroyIfOwned();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;
  ~Proc() { DestroyIfOwned(); }

  Handle Release() { return std::exchange(handle_, nullptr); }

 private:
  void DestroyIfOwned() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  Handle handle_ = nullptr;
};

namespace internal {

struct ProcFinalAwaiter {
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<ProcPromise> handle) noexcept;
  void await_resume() const noexcept {}
};

struct ProcPromise {
  Simulator* sim = nullptr;

  Proc get_return_object() {
    return Proc(std::coroutine_handle<ProcPromise>::from_promise(*this));
  }
  std::suspend_always initial_suspend() noexcept { return {}; }
  ProcFinalAwaiter final_suspend() noexcept { return {}; }
  void return_void() {}
  void unhandled_exception() { std::terminate(); }
};

}  // namespace internal

// Value-returning subroutine. `co_await SomeCo(...)` starts the child and
// resumes the caller when the child co_returns.
template <typename T>
class [[nodiscard]] Co {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;
    std::optional<T> value;

    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> handle) noexcept {
        auto continuation = handle.promise().continuation;
        return continuation ? continuation : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value.emplace(std::move(v)); }
    void unhandled_exception() { std::terminate(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  explicit Co(Handle handle) : handle_(handle) {}
  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&&) = delete;
  ~Co() {
    if (handle_) {
      handle_.destroy();
    }
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) noexcept {
    handle_.promise().continuation = caller;
    return handle_;
  }
  T await_resume() { return std::move(*handle_.promise().value); }

 private:
  Handle handle_;
};

// Spawning a *capturing lambda* coroutine directly is a lifetime trap: the
// captures live in the closure object, which usually dies long before the
// simulator first resumes the coroutine. RunClosure copies the closure into
// its own frame and drives it, so
//
//   sim.Spawn(RunClosure([&]() -> Co<void> { ... }));
//
// is safe no matter where the lambda was declared. (Plain coroutine
// *functions* are always safe — parameters are copied into the frame.)
template <typename Lambda>
Proc RunClosure(Lambda lambda) {
  co_await lambda();
}

template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;

    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> handle) noexcept {
        auto continuation = handle.promise().continuation;
        return continuation ? continuation : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  explicit Co(Handle handle) : handle_(handle) {}
  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&&) = delete;
  ~Co() {
    if (handle_) {
      handle_.destroy();
    }
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) noexcept {
    handle_.promise().continuation = caller;
    return handle_;
  }
  void await_resume() {}

 private:
  Handle handle_;
};

}  // namespace flock::sim

#endif  // FLOCK_SIM_TASK_H_
