// Per-node host memory.
//
// Every simulated node owns one flat byte space. "Addresses" handed to the
// verbs layer are offsets into this space, which plays the role of the
// virtual addresses an RDMA application registers: RDMA reads/writes between
// nodes copy real bytes between these spaces, so protocol code (ring buffers,
// canaries, message codecs) above the verbs layer runs against genuine
// memory, not token messages.
//
// Storage is chunked and grows on demand; pointers returned by At() stay
// valid forever because chunks are never reallocated. A single allocation
// must fit inside one chunk (4 MiB), which every buffer in this codebase
// satisfies by a wide margin.
#ifndef FLOCK_FABRIC_MEMORY_H_
#define FLOCK_FABRIC_MEMORY_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "src/common/logging.h"

namespace flock::fabric {

class MemorySpace {
 public:
  static constexpr size_t kChunkBytes = size_t{4} << 20;

  MemorySpace() = default;

  MemorySpace(const MemorySpace&) = delete;
  MemorySpace& operator=(const MemorySpace&) = delete;

  size_t capacity() const { return chunks_.size() * kChunkBytes; }
  size_t allocated() const { return next_; }

  // Bump allocation; simulated applications never free (they live for the
  // duration of one experiment, as the paper's do). An allocation never
  // straddles a chunk boundary so At(addr) is contiguous for its whole size.
  uint64_t Alloc(size_t size, size_t align = 64) {
    FLOCK_CHECK_GT(align, 0u);
    FLOCK_CHECK_LE(size, kChunkBytes) << "single allocation too large";
    size_t base = (next_ + align - 1) & ~(align - 1);
    if (size > 0 && ChunkIndex(base) != ChunkIndex(base + size - 1)) {
      base = (ChunkIndex(base) + 1) * kChunkBytes;  // start of next chunk
    }
    while (ChunkIndex(base + (size > 0 ? size - 1 : 0)) >= chunks_.size()) {
      chunks_.push_back(std::make_unique<uint8_t[]>(kChunkBytes));
      std::memset(chunks_.back().get(), 0, kChunkBytes);
    }
    next_ = base + size;
    high_water_ = next_ > high_water_ ? next_ : high_water_;
    return static_cast<uint64_t>(base);
  }

  uint8_t* At(uint64_t addr) {
    FLOCK_CHECK_LT(addr, capacity());
    return chunks_[ChunkIndex(addr)].get() + (addr % kChunkBytes);
  }
  const uint8_t* At(uint64_t addr) const {
    FLOCK_CHECK_LT(addr, capacity());
    return chunks_[ChunkIndex(addr)].get() + (addr % kChunkBytes);
  }

  bool Contains(uint64_t addr, size_t len) const {
    return addr + len <= capacity() && addr + len >= addr;
  }

  // Chunk-boundary-safe bulk copy into the space.
  void Write(uint64_t addr, const void* src, size_t len) {
    FLOCK_CHECK(Contains(addr, len));
    const uint8_t* from = static_cast<const uint8_t*>(src);
    while (len > 0) {
      const size_t in_chunk = kChunkBytes - (addr % kChunkBytes);
      const size_t n = len < in_chunk ? len : in_chunk;
      std::memcpy(At(addr), from, n);
      addr += n;
      from += n;
      len -= n;
    }
  }

  // Chunk-boundary-safe bulk copy out of the space.
  void Read(uint64_t addr, void* dst, size_t len) const {
    FLOCK_CHECK(Contains(addr, len));
    uint8_t* to = static_cast<uint8_t*>(dst);
    while (len > 0) {
      const size_t in_chunk = kChunkBytes - (addr % kChunkBytes);
      const size_t n = len < in_chunk ? len : in_chunk;
      std::memcpy(to, At(addr), n);
      addr += n;
      to += n;
      len -= n;
    }
  }

 private:
  static size_t ChunkIndex(uint64_t addr) { return addr / kChunkBytes; }

  std::vector<std::unique_ptr<uint8_t[]>> chunks_;
  // Address 0 is reserved as a null sentinel (work requests use local_addr 0
  // to mean "no local buffer"), so allocations start at 64.
  size_t next_ = 64;
  size_t high_water_ = 0;
};

}  // namespace flock::fabric

#endif  // FLOCK_FABRIC_MEMORY_H_
