// The switched fabric: one full-duplex link per node to a single switch.
//
// Each direction of each link is a FIFO-served resource with serialization
// delay at the configured line rate; the switch adds a fixed forwarding
// latency. The shared *downlink into the server* is where high fan-in
// congestion materializes, exactly as on the paper's 100 Gbps testbed.
//
// Messages are serialized as one burst (their packets are back-to-back on the
// wire); per-packet framing overhead is still charged per MTU-sized packet so
// that coalescing's bytes-on-the-wire savings are visible.
#ifndef FLOCK_FABRIC_NETWORK_H_
#define FLOCK_FABRIC_NETWORK_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/sim/cost_model.h"
#include "src/sim/sync.h"

namespace flock::fabric {

class Network {
 public:
  Network(sim::Simulator& simulator, const sim::CostModel& cost, int num_nodes)
      : cost_(cost) {
    uplinks_.reserve(static_cast<size_t>(num_nodes));
    downlinks_.reserve(static_cast<size_t>(num_nodes));
    for (int i = 0; i < num_nodes; ++i) {
      uplinks_.push_back(std::make_unique<sim::FifoServer>(simulator));
      downlinks_.push_back(std::make_unique<sim::FifoServer>(simulator));
    }
  }

  sim::FifoServer& Uplink(int node) { return *uplinks_[static_cast<size_t>(node)]; }
  sim::FifoServer& Downlink(int node) { return *downlinks_[static_cast<size_t>(node)]; }

  // Packets needed for `payload_bytes` at the configured MTU (min 1: even a
  // 0-byte message, e.g. a pure-immediate write, is one packet).
  uint32_t PacketCount(uint64_t payload_bytes) const {
    const uint32_t mtu = cost_.mtu_bytes;
    if (payload_bytes == 0) {
      return 1;
    }
    return static_cast<uint32_t>((payload_bytes + mtu - 1) / mtu);
  }

  // Wire time for a burst: payload plus per-packet framing at line rate.
  Nanos SerializeTime(uint64_t payload_bytes) const {
    const uint64_t wire_bytes =
        payload_bytes +
        static_cast<uint64_t>(PacketCount(payload_bytes)) * cost_.wire_overhead_bytes;
    return SerializationDelay(wire_bytes, cost_.LinkBytesPerNano());
  }

  // Propagation + switching between serialization on the two links.
  Nanos TransitDelay() const {
    return 2 * cost_.link_propagation + cost_.switch_latency;
  }

  // Minimum delay of *any* cross-node interaction: forward traffic pays the
  // switch transit, and the only other inter-node edge is the RC hardware
  // acknowledgement. This bound is the conservative lookahead (window width)
  // of the sharded simulation kernel — an event can only influence another
  // node at least this far in the future, so shards running a window of this
  // width in parallel can never miss an incoming dependency (DESIGN.md §12).
  Nanos MinCrossNodeDelay() const {
    return std::min(TransitDelay(), cost_.rc_ack_latency);
  }

  int num_nodes() const { return static_cast<int>(uplinks_.size()); }

 private:
  const sim::CostModel& cost_;
  std::vector<std::unique_ptr<sim::FifoServer>> uplinks_;
  std::vector<std::unique_ptr<sim::FifoServer>> downlinks_;
};

}  // namespace flock::fabric

#endif  // FLOCK_FABRIC_NETWORK_H_
