#include "src/ctrl/control_plane.h"

namespace flock::ctrl {

namespace {

void DeleteControlPlane(void* p) { delete static_cast<ControlPlane*>(p); }

}  // namespace

ControlPlane& ControlPlane::For(verbs::Cluster& cluster) {
  if (cluster.extension() == nullptr) {
    cluster.SetExtension(new ControlPlane(cluster), &DeleteControlPlane);
  }
  return *static_cast<ControlPlane*>(cluster.extension());
}

ControlPlane::ControlPlane(verbs::Cluster& cluster) : cluster_(cluster) {
  const size_t n = static_cast<size_t>(cluster.num_nodes());
  endpoints_.assign(n, nullptr);
  member_.assign(n, 1);  // every configured node starts as a member
}

bool ControlPlane::HasEndpoint(int node) const {
  return node >= 0 && static_cast<size_t>(node) < endpoints_.size() &&
         endpoints_[static_cast<size_t>(node)] != nullptr;
}

void ControlPlane::RegisterEndpoint(int node, Endpoint* endpoint) {
  FLOCK_CHECK_GE(node, 0);
  FLOCK_CHECK_LT(static_cast<size_t>(node), endpoints_.size());
  FLOCK_CHECK(endpoints_[static_cast<size_t>(node)] == nullptr)
      << "node " << node << " already has a control-plane endpoint";
  endpoints_[static_cast<size_t>(node)] = endpoint;
}

void ControlPlane::DeregisterEndpoint(int node, Endpoint* endpoint) {
  if (node < 0 || static_cast<size_t>(node) >= endpoints_.size()) {
    return;
  }
  if (endpoints_[static_cast<size_t>(node)] == endpoint) {
    endpoints_[static_cast<size_t>(node)] = nullptr;
  }
}

uint32_t ControlPlane::Call(int to_node, const uint8_t* msg, uint32_t len,
                            uint8_t* resp, uint32_t resp_cap) {
  stats_.calls += 1;
  wire::MsgHeader header;
  if (!wire::DecodeHeader(msg, len, &header)) {
    stats_.rejected_malformed += 1;
    return 0;
  }
  // Replay guard: each nonce is delivered at most once, ever. A duplicate —
  // whether a retransmitted or a maliciously replayed handshake — is dropped
  // before it reaches the endpoint. The nonce burns even if delivery fails
  // below, so retries must re-encode with a fresh nonce.
  if (!seen_nonces_.insert(header.nonce).second) {
    stats_.rejected_replay += 1;
    return 0;
  }
  if (to_node < 0 || static_cast<size_t>(to_node) >= endpoints_.size() ||
      member_[static_cast<size_t>(to_node)] == 0) {
    stats_.rejected_not_member += 1;
    return 0;
  }
  Endpoint* endpoint = endpoints_[static_cast<size_t>(to_node)];
  if (endpoint == nullptr) {
    stats_.rejected_no_endpoint += 1;
    return 0;
  }
  return endpoint->OnCtrlMessage(msg, len, resp, resp_cap);
}

void ControlPlane::Join(int node) {
  if (node < 0 || static_cast<size_t>(node) >= member_.size() ||
      member_[static_cast<size_t>(node)] != 0) {
    return;
  }
  member_[static_cast<size_t>(node)] = 1;
  epoch_ += 1;
  stats_.joins += 1;
  for (const ListenerEntry& entry : listeners_) {
    entry.fn(node, /*joined=*/true);
  }
}

void ControlPlane::Leave(int node) {
  if (node < 0 || static_cast<size_t>(node) >= member_.size() ||
      member_[static_cast<size_t>(node)] == 0) {
    return;
  }
  member_[static_cast<size_t>(node)] = 0;
  epoch_ += 1;
  stats_.leaves += 1;
  for (const ListenerEntry& entry : listeners_) {
    entry.fn(node, /*joined=*/false);
  }
}

bool ControlPlane::IsMember(int node) const {
  return node >= 0 && static_cast<size_t>(node) < member_.size() &&
         member_[static_cast<size_t>(node)] != 0;
}

uint64_t ControlPlane::AddMembershipListener(MembershipListener listener) {
  const uint64_t id = next_listener_id_++;
  listeners_.push_back(ListenerEntry{id, std::move(listener)});
  return id;
}

void ControlPlane::RemoveMembershipListener(uint64_t id) {
  for (size_t i = 0; i < listeners_.size(); ++i) {
    if (listeners_[i].id == id) {
      listeners_.erase(listeners_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

}  // namespace flock::ctrl
