#include "src/ctrl/control_plane.h"

#include <algorithm>

namespace flock::ctrl {

namespace {

void DeleteControlPlane(void* p) { delete static_cast<ControlPlane*>(p); }

}  // namespace

ControlPlane& ControlPlane::For(verbs::Cluster& cluster) {
  if (cluster.extension() == nullptr) {
    cluster.SetExtension(new ControlPlane(cluster), &DeleteControlPlane);
  }
  return *static_cast<ControlPlane*>(cluster.extension());
}

ControlPlane::ControlPlane(verbs::Cluster& cluster) : cluster_(cluster) {
  const size_t n = static_cast<size_t>(cluster.num_nodes());
  endpoints_.assign(n, {});
  member_.assign(n, 1);  // every configured node starts as a member
}

bool ControlPlane::HasEndpoint(int node) const {
  return node >= 0 && static_cast<size_t>(node) < endpoints_.size() &&
         !endpoints_[static_cast<size_t>(node)].empty();
}

void ControlPlane::RegisterEndpoint(int node, Endpoint* endpoint) {
  FLOCK_CHECK_GE(node, 0);
  FLOCK_CHECK_LT(static_cast<size_t>(node), endpoints_.size());
  std::vector<Endpoint*>& eps = endpoints_[static_cast<size_t>(node)];
  FLOCK_CHECK(std::find(eps.begin(), eps.end(), endpoint) == eps.end())
      << "endpoint registered twice on node " << node;
  eps.push_back(endpoint);
}

void ControlPlane::DeregisterEndpoint(int node, Endpoint* endpoint) {
  if (node < 0 || static_cast<size_t>(node) >= endpoints_.size()) {
    return;
  }
  std::vector<Endpoint*>& eps = endpoints_[static_cast<size_t>(node)];
  // Erase wherever it sits; if it was the front, the next registration-order
  // survivor is promoted implicitly and the node keeps answering.
  eps.erase(std::remove(eps.begin(), eps.end(), endpoint), eps.end());
}

uint32_t ControlPlane::Call(int to_node, const uint8_t* msg, uint32_t len,
                            uint8_t* resp, uint32_t resp_cap) {
  stats_.calls += 1;
  wire::MsgHeader header;
  if (!wire::DecodeHeader(msg, len, &header)) {
    stats_.rejected_malformed += 1;
    return 0;
  }
  // Replay guard: each nonce is delivered at most once, ever. A duplicate —
  // whether a retransmitted or a maliciously replayed handshake — is dropped
  // before it reaches the endpoint. The nonce burns even if delivery fails
  // below, so retries must re-encode with a fresh nonce.
  //
  // The window is bounded (kNonceWindow), not an ever-growing set: everything
  // at or below the watermark counts as seen, and only the out-of-order
  // stragglers above it are stored. A call delayed more than kNonceWindow
  // nonces behind the issue counter is indistinguishable from a replay and
  // rejects — acceptable because nonces are consumed nearly in issue order.
  if (header.nonce <= nonce_watermark_ ||
      std::find(recent_nonces_.begin(), recent_nonces_.end(), header.nonce) !=
          recent_nonces_.end()) {
    stats_.rejected_replay += 1;
    return 0;
  }
  recent_nonces_.push_back(header.nonce);
  // Collapse the contiguous run above the watermark (the common case: nonces
  // arrive in issue order, so the window drains to empty right here).
  for (bool advanced = true; advanced;) {
    advanced = false;
    for (size_t i = 0; i < recent_nonces_.size(); ++i) {
      if (recent_nonces_[i] == nonce_watermark_ + 1) {
        nonce_watermark_ += 1;
        recent_nonces_[i] = recent_nonces_.back();
        recent_nonces_.pop_back();
        advanced = true;
        break;
      }
    }
  }
  if (recent_nonces_.size() > kNonceWindow) {
    // Too many gaps: advance the watermark to the highest seen nonce. The
    // skipped-over (never-delivered) nonces below it burn unused.
    nonce_watermark_ =
        *std::max_element(recent_nonces_.begin(), recent_nonces_.end());
    recent_nonces_.clear();
  }
  if (to_node < 0 || static_cast<size_t>(to_node) >= endpoints_.size() ||
      member_[static_cast<size_t>(to_node)] == 0) {
    stats_.rejected_not_member += 1;
    return 0;
  }
  const std::vector<Endpoint*>& eps = endpoints_[static_cast<size_t>(to_node)];
  if (eps.empty()) {
    stats_.rejected_no_endpoint += 1;
    return 0;
  }
  return eps.front()->OnCtrlMessage(msg, len, resp, resp_cap);
}

void ControlPlane::Join(int node) {
  if (node < 0 || static_cast<size_t>(node) >= member_.size() ||
      member_[static_cast<size_t>(node)] != 0) {
    return;
  }
  member_[static_cast<size_t>(node)] = 1;
  stats_.joins += 1;
  if (in_batch_) {
    return;  // epoch bump + notification deferred to EndEpochBatch
  }
  epoch_ += 1;
  NotifyListeners(node, /*joined=*/true);
}

void ControlPlane::Leave(int node) {
  if (node < 0 || static_cast<size_t>(node) >= member_.size() ||
      member_[static_cast<size_t>(node)] == 0) {
    return;
  }
  member_[static_cast<size_t>(node)] = 0;
  stats_.leaves += 1;
  if (in_batch_) {
    return;  // epoch bump + notification deferred to EndEpochBatch
  }
  epoch_ += 1;
  NotifyListeners(node, /*joined=*/false);
}

void ControlPlane::BeginEpochBatch() {
  FLOCK_CHECK(!in_batch_) << "epoch batches do not nest";
  in_batch_ = true;
  batch_start_member_ = member_;
}

void ControlPlane::EndEpochBatch() {
  FLOCK_CHECK(in_batch_) << "EndEpochBatch without BeginEpochBatch";
  // Fire one pass per NET change, with in_batch_ still set so membership
  // listeners (the server runtimes) defer their AQP repartition to the
  // batch-end pass below. A leave+rejoin inside the window nets to nothing
  // and is invisible — one epoch bump covers the whole window.
  bool any_change = false;
  for (size_t node = 0; node < member_.size(); ++node) {
    if (member_[node] == batch_start_member_[node]) {
      continue;
    }
    if (!any_change) {
      any_change = true;
      epoch_ += 1;
      stats_.epoch_batches += 1;
    }
    NotifyListeners(static_cast<int>(node), /*joined=*/member_[node] != 0);
  }
  in_batch_ = false;
  if (any_change) {
    NotifyBatchEnd();
  }
}

bool ControlPlane::IsMember(int node) const {
  return node >= 0 && static_cast<size_t>(node) < member_.size() &&
         member_[static_cast<size_t>(node)] != 0;
}

uint64_t ControlPlane::AddMembershipListener(MembershipListener listener) {
  const uint64_t id = next_listener_id_++;
  listeners_.push_back(ListenerEntry{id, std::move(listener)});
  return id;
}

void ControlPlane::RemoveMembershipListener(uint64_t id) {
  for (size_t i = 0; i < listeners_.size(); ++i) {
    if (listeners_[i].id == id) {
      listeners_.erase(listeners_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

uint64_t ControlPlane::AddBatchEndListener(BatchEndListener listener) {
  const uint64_t id = next_listener_id_++;
  batch_end_listeners_.push_back(BatchEndEntry{id, std::move(listener)});
  return id;
}

void ControlPlane::RemoveBatchEndListener(uint64_t id) {
  for (size_t i = 0; i < batch_end_listeners_.size(); ++i) {
    if (batch_end_listeners_[i].id == id) {
      batch_end_listeners_.erase(batch_end_listeners_.begin() +
                                 static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

void ControlPlane::NotifyListeners(int node, bool joined) {
  // Snapshot ids, then re-look each up before invoking: a callback may remove
  // any listener (including itself), add new ones (snapshot semantics: they
  // miss this event), or trigger a nested Join/Leave. Invoking a copy keeps
  // the closure alive through self-removal.
  std::vector<uint64_t> ids;
  ids.reserve(listeners_.size());
  for (const ListenerEntry& entry : listeners_) {
    ids.push_back(entry.id);
  }
  for (uint64_t id : ids) {
    const MembershipListener* fn = nullptr;
    for (const ListenerEntry& entry : listeners_) {
      if (entry.id == id) {
        fn = &entry.fn;
        break;
      }
    }
    if (fn == nullptr) {
      continue;  // removed by an earlier callback
    }
    MembershipListener copy = *fn;
    copy(node, joined);
  }
}

void ControlPlane::NotifyBatchEnd() {
  std::vector<uint64_t> ids;
  ids.reserve(batch_end_listeners_.size());
  for (const BatchEndEntry& entry : batch_end_listeners_) {
    ids.push_back(entry.id);
  }
  for (uint64_t id : ids) {
    const BatchEndListener* fn = nullptr;
    for (const BatchEndEntry& entry : batch_end_listeners_) {
      if (entry.id == id) {
        fn = &entry.fn;
        break;
      }
    }
    if (fn == nullptr) {
      continue;
    }
    BatchEndListener copy = *fn;
    copy();
  }
}

}  // namespace flock::ctrl
