// Wire format for the out-of-band connection control plane (DESIGN.md §10).
//
// Handshake messages travel over the control plane's reliable side channel
// (modelling RDMA-CM over TCP), not over RDMA rings, so the codec here is
// deliberately independent of src/flock/wire.h: fixed-size POD bodies behind
// a checksummed, nonce-carrying header. Everything is pure byte manipulation
// with explicit bounds checks — the decoder is fuzzed by property_test's
// CtrlFuzzProperty and must reject (never crash on) truncated, corrupted or
// replayed messages.
#ifndef FLOCK_CTRL_WIRE_H_
#define FLOCK_CTRL_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "src/common/logging.h"
#include "src/tenant/tenant.h"

namespace flock::ctrl::wire {

inline constexpr uint32_t kMagic = 0x464C434Bu;  // "FLCK"
inline constexpr uint16_t kVersion = 1;

enum class MsgType : uint16_t {
  kInvalid = 0,
  kConnectRequest = 1,     // client → server: establish all lanes of a handle
  kConnectAccept = 2,      // server → client: QPs, rings, rkeys, bootstrap
  kReconnectRequest = 3,   // client → server: fresh QP pair for a dead lane
  kReconnectAccept = 4,    // server → client: revived lane wiring + credits
  kAddLaneRequest = 5,     // client → server: elastic grow by one lane
  kAddLaneAccept = 6,
  kRetireLaneRequest = 7,  // client → server: elastic shrink by one lane
  kRetireLaneAccept = 8,
  kReject = 9,             // any request the receiver cannot honor right now
  kDisconnectRequest = 10, // client → server: orderly close of a whole handle
  kDisconnectAccept = 11,
};

struct MsgHeader {
  uint32_t magic = kMagic;
  uint16_t version = kVersion;
  uint16_t type = 0;
  uint32_t body_len = 0;
  uint32_t checksum = 0;  // FNV-1a over the body bytes
  uint64_t nonce = 0;     // replay guard: the control plane accepts each once
};
static_assert(sizeof(MsgHeader) == 24);

inline constexpr uint32_t kHeaderBytes = sizeof(MsgHeader);
inline constexpr uint32_t kMaxLanesPerMsg = 64;

// Per-lane wiring the client advertises: its QP plus the two client-local
// regions the server RDMA-writes (response ring, control slot).
struct ClientLaneInfo {
  uint32_t qpn = 0;
  uint32_t resp_ring_rkey = 0;
  uint64_t resp_ring_addr = 0;
  uint64_t ctrl_slot_addr = 0;
  uint32_t ctrl_slot_rkey = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(ClientLaneInfo) == 32);

// Per-lane wiring the server answers with: its QP, the two server-local
// regions the client RDMA-writes (request ring, head slot), and the §5.1
// bootstrap decision (activation + initial credits).
struct ServerLaneInfo {
  uint32_t qpn = 0;
  uint32_t req_ring_rkey = 0;
  uint64_t req_ring_addr = 0;
  uint64_t head_slot_addr = 0;
  uint32_t head_slot_rkey = 0;
  uint8_t active = 0;
  uint8_t pad[3] = {};
  uint32_t credits = 0;
  uint32_t pad2 = 0;
};
static_assert(sizeof(ServerLaneInfo) == 40);

struct ConnectRequest {
  int32_t client_node = -1;
  uint32_t num_lanes = 0;
  uint32_t ring_bytes = 0;
  // Tenant identity registered by the handshake (DESIGN.md §15). Occupies
  // the former pad word, so the default (tenant 0) encodes byte-identically
  // to pre-tenancy requests.
  uint32_t tenant_id = 0;
  ClientLaneInfo lanes[kMaxLanesPerMsg];
};

struct ConnectAccept {
  uint32_t conn_id = 0;  // the sender key the server filed this handle under
  uint32_t num_lanes = 0;
  // QP provenance on the server side, so the client can charge the right
  // setup cost (CostModel::qp_create vs qp_reset) on the async connect path.
  uint32_t fresh_qps = 0;
  uint32_t recycled_qps = 0;
  ServerLaneInfo lanes[kMaxLanesPerMsg];
};

struct ReconnectRequest {
  int32_t client_node = -1;
  uint32_t conn_id = 0;
  uint32_t lane_index = 0;
  uint32_t pad = 0;
  ClientLaneInfo lane;  // fresh QP; rings/rkeys re-advertised unchanged
};

struct ReconnectAccept {
  uint32_t lane_index = 0;
  uint32_t credits = 0;           // fresh credit bootstrap
  uint32_t grant_cumulative = 0;  // resync point for the client's grants_seen
  uint32_t pad = 0;
  ServerLaneInfo lane;
};

struct AddLaneRequest {
  int32_t client_node = -1;
  uint32_t conn_id = 0;
  uint32_t lane_index = 0;  // index the new lane will occupy (== current count)
  uint32_t ring_bytes = 0;
  ClientLaneInfo lane;
};

struct AddLaneAccept {
  uint32_t lane_index = 0;
  uint32_t recycled = 0;  // 1 = the server lane came from the recycling pool
  ServerLaneInfo lane;
};

struct RetireLaneRequest {
  int32_t client_node = -1;
  uint32_t conn_id = 0;
  uint32_t lane_index = 0;
  uint32_t pad = 0;
};

struct RetireLaneAccept {
  uint32_t lane_index = 0;
  uint32_t pad = 0;
};

// Orderly whole-handle close (DESIGN.md §15): the client tells the server it
// is done, so sender-slot and tenant admission accounting are reclaimed
// immediately instead of waiting for dead-sender detection to notice the
// departed QPs. Sent by CloseConnection when tenancy is on.
struct DisconnectRequest {
  int32_t client_node = -1;
  uint32_t conn_id = 0;
};

struct DisconnectAccept {
  uint32_t lanes_torn = 0;
  uint32_t pad = 0;
};

enum class RejectReason : uint32_t {
  kUnknown = 0,
  kServerNotStarted = 1,
  kBadConnId = 2,
  kBadLane = 3,
  kLaneBusy = 4,      // the lane is mid-dispatch; retry after backoff
  kLaneHealthy = 5,   // reconnect asked for a lane that is not quarantined
  kLastActiveLane = 6,  // retire would leave the handle with no lanes
  // Tenancy admission control (DESIGN.md §15):
  kUnknownTenant = 7,         // tenant id never registered (or forged)
  kTenantOverConnections = 8, // tenant at its max_connections ceiling
  kTenantOverLanes = 9,       // tenant at its max_lanes ceiling
};

struct Reject {
  uint32_t reason = 0;
};

inline uint32_t Fnv1a(const uint8_t* data, uint32_t len) {
  uint32_t h = 2166136261u;
  for (uint32_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

// Maximum encoded message: header + the largest body (ConnectAccept).
inline constexpr uint32_t kMaxMessageBytes =
    kHeaderBytes + static_cast<uint32_t>(sizeof(ConnectAccept));

// Encodes header + body into `buf`; returns the total length.
inline uint32_t EncodeMessage(uint8_t* buf, uint32_t cap, MsgType type,
                              uint64_t nonce, const void* body,
                              uint32_t body_len) {
  FLOCK_CHECK_GE(cap, kHeaderBytes + body_len);
  MsgHeader h;
  h.type = static_cast<uint16_t>(type);
  h.body_len = body_len;
  h.nonce = nonce;
  h.checksum = Fnv1a(static_cast<const uint8_t*>(body), body_len);
  std::memcpy(buf, &h, kHeaderBytes);
  if (body_len > 0) {
    std::memcpy(buf + kHeaderBytes, body, body_len);
  }
  return kHeaderBytes + body_len;
}

// Validates framing (magic, version, body length within the buffer, body
// checksum) and extracts the header. Returns false on anything malformed.
inline bool DecodeHeader(const uint8_t* buf, uint32_t len, MsgHeader* out) {
  if (buf == nullptr || len < kHeaderBytes) {
    return false;
  }
  std::memcpy(out, buf, kHeaderBytes);
  if (out->magic != kMagic || out->version != kVersion) {
    return false;
  }
  if (out->body_len > len - kHeaderBytes) {
    return false;
  }
  if (Fnv1a(buf + kHeaderBytes, out->body_len) != out->checksum) {
    return false;
  }
  return true;
}

// ---- variable-length bodies (lane-array prefix encoding) ----

inline uint32_t ConnectRequestBytes(uint32_t num_lanes) {
  return static_cast<uint32_t>(offsetof(ConnectRequest, lanes)) +
         num_lanes * static_cast<uint32_t>(sizeof(ClientLaneInfo));
}

inline uint32_t ConnectAcceptBytes(uint32_t num_lanes) {
  return static_cast<uint32_t>(offsetof(ConnectAccept, lanes)) +
         num_lanes * static_cast<uint32_t>(sizeof(ServerLaneInfo));
}

inline bool DecodeConnectRequest(const MsgHeader& h, const uint8_t* buf,
                                 ConnectRequest* out) {
  if (h.type != static_cast<uint16_t>(MsgType::kConnectRequest) ||
      h.body_len < offsetof(ConnectRequest, lanes)) {
    return false;
  }
  // The default member initializers make these structs non-trivial in the
  // eyes of -Wclass-memaccess, but they are standard-layout and the byte
  // image is the wire format; the void casts assert that intent.
  std::memcpy(static_cast<void*>(out), buf + kHeaderBytes,
              offsetof(ConnectRequest, lanes));
  if (out->num_lanes == 0 || out->num_lanes > kMaxLanesPerMsg ||
      h.body_len != ConnectRequestBytes(out->num_lanes)) {
    return false;
  }
  if (out->ring_bytes == 0) {
    return false;
  }
  if (out->tenant_id > tenant::kMaxTenantId) {
    return false;  // forged: ids must fit the data-plane stamp
  }
  std::memcpy(out->lanes, buf + kHeaderBytes + offsetof(ConnectRequest, lanes),
              size_t{out->num_lanes} * sizeof(ClientLaneInfo));
  return true;
}

inline bool DecodeConnectAccept(const MsgHeader& h, const uint8_t* buf,
                                ConnectAccept* out) {
  if (h.type != static_cast<uint16_t>(MsgType::kConnectAccept) ||
      h.body_len < offsetof(ConnectAccept, lanes)) {
    return false;
  }
  std::memcpy(static_cast<void*>(out), buf + kHeaderBytes,
              offsetof(ConnectAccept, lanes));
  if (out->num_lanes == 0 || out->num_lanes > kMaxLanesPerMsg ||
      h.body_len != ConnectAcceptBytes(out->num_lanes)) {
    return false;
  }
  std::memcpy(out->lanes, buf + kHeaderBytes + offsetof(ConnectAccept, lanes),
              size_t{out->num_lanes} * sizeof(ServerLaneInfo));
  return true;
}

// ---- fixed-size bodies ----

template <typename T>
inline bool DecodeFixed(const MsgHeader& h, const uint8_t* buf, MsgType type,
                        T* out) {
  if (h.type != static_cast<uint16_t>(type) || h.body_len != sizeof(T)) {
    return false;
  }
  std::memcpy(out, buf + kHeaderBytes, sizeof(T));
  return true;
}

inline bool DecodeReconnectRequest(const MsgHeader& h, const uint8_t* buf,
                                   ReconnectRequest* out) {
  return DecodeFixed(h, buf, MsgType::kReconnectRequest, out) &&
         out->lane_index < kMaxLanesPerMsg;
}

inline bool DecodeReconnectAccept(const MsgHeader& h, const uint8_t* buf,
                                  ReconnectAccept* out) {
  return DecodeFixed(h, buf, MsgType::kReconnectAccept, out);
}

inline bool DecodeAddLaneRequest(const MsgHeader& h, const uint8_t* buf,
                                 AddLaneRequest* out) {
  return DecodeFixed(h, buf, MsgType::kAddLaneRequest, out) &&
         out->lane_index < kMaxLanesPerMsg && out->ring_bytes != 0;
}

inline bool DecodeAddLaneAccept(const MsgHeader& h, const uint8_t* buf,
                                AddLaneAccept* out) {
  return DecodeFixed(h, buf, MsgType::kAddLaneAccept, out);
}

inline bool DecodeRetireLaneRequest(const MsgHeader& h, const uint8_t* buf,
                                    RetireLaneRequest* out) {
  return DecodeFixed(h, buf, MsgType::kRetireLaneRequest, out);
}

inline bool DecodeRetireLaneAccept(const MsgHeader& h, const uint8_t* buf,
                                   RetireLaneAccept* out) {
  return DecodeFixed(h, buf, MsgType::kRetireLaneAccept, out);
}

inline bool DecodeDisconnectRequest(const MsgHeader& h, const uint8_t* buf,
                                    DisconnectRequest* out) {
  return DecodeFixed(h, buf, MsgType::kDisconnectRequest, out);
}

inline bool DecodeDisconnectAccept(const MsgHeader& h, const uint8_t* buf,
                                   DisconnectAccept* out) {
  return DecodeFixed(h, buf, MsgType::kDisconnectAccept, out);
}

inline bool DecodeReject(const MsgHeader& h, const uint8_t* buf, Reject* out) {
  return DecodeFixed(h, buf, MsgType::kReject, out);
}

inline uint32_t EncodeReject(uint8_t* buf, uint32_t cap, uint64_t nonce,
                             RejectReason reason) {
  Reject r;
  r.reason = static_cast<uint32_t>(reason);
  return EncodeMessage(buf, cap, MsgType::kReject, nonce, &r, sizeof(r));
}

}  // namespace flock::ctrl::wire

#endif  // FLOCK_CTRL_WIRE_H_
