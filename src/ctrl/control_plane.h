// The connection control plane (DESIGN.md §10): a deterministic, cluster-wide
// service owning connection lifecycle — connect/accept handshakes with MR
// rkey exchange and credit bootstrap, QP re-establishment for quarantined
// lanes, elastic lane add/retire, and dynamic membership (join/leave/rejoin).
//
// It models the out-of-band channel real deployments run over RDMA-CM/TCP:
// message delivery is a synchronous function call into the destination
// node's registered Endpoint, with validation (framing, checksum, nonce
// replay) in front. Crucially it schedules *no simulator events* of its own —
// callers that want the handshake to cost simulated time insert their own
// sim::Delay (FlockConfig::ctrl_rtt) around Call(). That keeps every
// fault-free trace bit-identical: a run that never reconnects never sees the
// control plane after setup.
#ifndef FLOCK_CTRL_CONTROL_PLANE_H_
#define FLOCK_CTRL_CONTROL_PLANE_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "src/ctrl/wire.h"
#include "src/verbs/device.h"

namespace flock::ctrl {

// A per-node handler for control-plane messages. The Flock runtime implements
// this to answer connect/reconnect/add-lane/retire-lane requests.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  // Handles one framing-validated message (`msg`/`len` include the header).
  // Writes an encoded response into `resp` (capacity `resp_cap`) and returns
  // its length; 0 means "no response" and the caller treats it as a reject.
  virtual uint32_t OnCtrlMessage(const uint8_t* msg, uint32_t len,
                                 uint8_t* resp, uint32_t resp_cap) = 0;
};

class ControlPlane {
 public:
  struct Stats {
    uint64_t calls = 0;
    uint64_t rejected_malformed = 0;
    uint64_t rejected_replay = 0;
    uint64_t rejected_no_endpoint = 0;
    uint64_t rejected_not_member = 0;
    uint64_t joins = 0;
    uint64_t leaves = 0;
  };

  // The one control plane of `cluster`, created on first use and owned by the
  // cluster (via its extension slot) so every runtime on every node shares it.
  static ControlPlane& For(verbs::Cluster& cluster);

  explicit ControlPlane(verbs::Cluster& cluster);

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  // ---- endpoints ----
  // One endpoint per node: when several runtimes share a node (bench
  // "processes"), the first to construct answers the node's control traffic.
  bool HasEndpoint(int node) const;
  void RegisterEndpoint(int node, Endpoint* endpoint);
  // Deregisters only if `endpoint` is still the registered one (a runtime
  // being destroyed must not unhook its successor).
  void DeregisterEndpoint(int node, Endpoint* endpoint);

  // ---- out-of-band RPC ----
  // Validates `msg` (framing, checksum, nonce replay, destination membership)
  // and delivers it synchronously to `to_node`'s endpoint. Returns the
  // response length written into `resp`, or 0 on any rejection. Each attempt
  // must carry a fresh nonce from NextNonce(): a consumed nonce is burned
  // even when delivery subsequently fails.
  uint32_t Call(int to_node, const uint8_t* msg, uint32_t len, uint8_t* resp,
                uint32_t resp_cap);

  uint64_t NextNonce() { return ++nonce_; }

  // ---- membership ----
  // Every node of the cluster is a member at startup. Leave/Join flip the
  // flag, bump the epoch and fire the listeners (leave first tears down the
  // node's lanes via the server runtimes listening here).
  void Join(int node);
  void Leave(int node);
  bool IsMember(int node) const;
  uint64_t epoch() const { return epoch_; }

  // Listener fired on every membership change; returns an id for removal.
  // Runtimes must remove their listener on destruction (the control plane
  // outlives them — it is owned by the cluster).
  using MembershipListener = std::function<void(int node, bool joined)>;
  uint64_t AddMembershipListener(MembershipListener listener);
  void RemoveMembershipListener(uint64_t id);

  const Stats& stats() const { return stats_; }

 private:
  struct ListenerEntry {
    uint64_t id;
    MembershipListener fn;
  };

  verbs::Cluster& cluster_;
  std::vector<Endpoint*> endpoints_;  // index = node
  std::vector<uint8_t> member_;       // index = node
  std::unordered_set<uint64_t> seen_nonces_;
  std::vector<ListenerEntry> listeners_;
  uint64_t next_listener_id_ = 1;
  uint64_t nonce_ = 0;
  uint64_t epoch_ = 0;
  Stats stats_;
};

}  // namespace flock::ctrl

#endif  // FLOCK_CTRL_CONTROL_PLANE_H_
