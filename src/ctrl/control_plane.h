// The connection control plane (DESIGN.md §10): a deterministic, cluster-wide
// service owning connection lifecycle — connect/accept handshakes with MR
// rkey exchange and credit bootstrap, QP re-establishment for quarantined
// lanes, elastic lane add/retire, and dynamic membership (join/leave/rejoin).
//
// It models the out-of-band channel real deployments run over RDMA-CM/TCP:
// message delivery is a synchronous function call into the destination
// node's registered Endpoint, with validation (framing, checksum, nonce
// replay) in front. Crucially it schedules *no simulator events* of its own —
// callers that want the handshake to cost simulated time insert their own
// sim::Delay (FlockConfig::ctrl_rtt) around Call(). That keeps every
// fault-free trace bit-identical: a run that never reconnects never sees the
// control plane after setup.
#ifndef FLOCK_CTRL_CONTROL_PLANE_H_
#define FLOCK_CTRL_CONTROL_PLANE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/ctrl/wire.h"
#include "src/tenant/tenant.h"
#include "src/verbs/device.h"

namespace flock::ctrl {

// A per-node handler for control-plane messages. The Flock runtime implements
// this to answer connect/reconnect/add-lane/retire-lane requests.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  // Handles one framing-validated message (`msg`/`len` include the header).
  // Writes an encoded response into `resp` (capacity `resp_cap`) and returns
  // its length; 0 means "no response" and the caller treats it as a reject.
  virtual uint32_t OnCtrlMessage(const uint8_t* msg, uint32_t len,
                                 uint8_t* resp, uint32_t resp_cap) = 0;
};

class ControlPlane {
 public:
  struct Stats {
    uint64_t calls = 0;
    uint64_t rejected_malformed = 0;
    uint64_t rejected_replay = 0;
    uint64_t rejected_no_endpoint = 0;
    uint64_t rejected_not_member = 0;
    uint64_t joins = 0;
    uint64_t leaves = 0;
    uint64_t epoch_batches = 0;  // EndEpochBatch calls with >= 1 net change
  };

  // Out-of-order tolerance of the replay window: a call whose nonce trails
  // the highest-seen by more than this is indistinguishable from a replay
  // and rejects. Nonces are issued from one monotonic counter and consumed
  // almost in order (handshakes are synchronous), so in practice the window
  // holds a handful of entries.
  static constexpr size_t kNonceWindow = 128;

  // The one control plane of `cluster`, created on first use and owned by the
  // cluster (via its extension slot) so every runtime on every node shares it.
  static ControlPlane& For(verbs::Cluster& cluster);

  explicit ControlPlane(verbs::Cluster& cluster);

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  // ---- endpoints ----
  // Each node keeps a registration-ordered list of endpoints: when several
  // runtimes share a node (bench "processes"), the first registered answers
  // the node's control traffic, and when it deregisters (runtime destroyed)
  // the next survivor is promoted — the node never goes dark while a runtime
  // on it is still alive.
  bool HasEndpoint(int node) const;
  void RegisterEndpoint(int node, Endpoint* endpoint);
  void DeregisterEndpoint(int node, Endpoint* endpoint);

  // ---- out-of-band RPC ----
  // Validates `msg` (framing, checksum, nonce replay, destination membership)
  // and delivers it synchronously to `to_node`'s endpoint. Returns the
  // response length written into `resp`, or 0 on any rejection. Each attempt
  // must carry a fresh nonce from NextNonce(): a consumed nonce is burned
  // even when delivery subsequently fails.
  uint32_t Call(int to_node, const uint8_t* msg, uint32_t len, uint8_t* resp,
                uint32_t resp_cap);

  uint64_t NextNonce() { return ++nonce_; }

  // Entries currently held by the replay window (watermark excluded). Bounded
  // by kNonceWindow no matter how many calls have been made; exposed so the
  // churn regression test can assert that.
  size_t replay_window_entries() const { return recent_nonces_.size(); }

  // ---- membership ----
  // Every node of the cluster is a member at startup. Leave/Join flip the
  // flag, bump the epoch and fire the listeners (leave first tears down the
  // node's lanes via the server runtimes listening here).
  void Join(int node);
  void Leave(int node);
  bool IsMember(int node) const;
  uint64_t epoch() const { return epoch_; }

  // ---- batched membership epochs ----
  // Connection-storm aid: between Begin and End, Join/Leave flip membership
  // immediately (IsMember stays accurate for admission checks) but the epoch
  // bump and listener notifications are deferred. EndEpochBatch compares
  // membership against the batch start, bumps the epoch ONCE if anything net-
  // changed, fires one listener pass per net-changed node, and finally runs
  // the batch-end listeners (where servers coalesce their AQP repartition).
  // A node that left and rejoined inside one window is invisible to
  // listeners — by design: its lanes were torn down by the Leave admission
  // checks' consumers only if someone looked, and the steady state matches.
  void BeginEpochBatch();
  void EndEpochBatch();
  bool InEpochBatch() const { return in_batch_; }

  // Listener fired on every membership change; returns an id for removal.
  // Runtimes must remove their listener on destruction (the control plane
  // outlives them — it is owned by the cluster). Listeners may remove
  // themselves, add listeners, or trigger Join/Leave from inside the
  // callback: notification iterates a snapshot and re-checks liveness.
  using MembershipListener = std::function<void(int node, bool joined)>;
  uint64_t AddMembershipListener(MembershipListener listener);
  void RemoveMembershipListener(uint64_t id);

  // Fired once at the end of EndEpochBatch (after membership listeners, with
  // InEpochBatch() already false) iff the batch had >= 1 net change. Servers
  // hook their single deferred Redistribute here.
  using BatchEndListener = std::function<void()>;
  uint64_t AddBatchEndListener(BatchEndListener listener);
  void RemoveBatchEndListener(uint64_t id);

  const Stats& stats() const { return stats_; }

  // ---- tenancy (DESIGN.md §15) ----
  // The cluster-wide tenant registry: policies, admission accounting,
  // weighted-fair credit budgets and the misbehaving-tenant throttle. Owned
  // here because admission happens at handshake time, on control-plane
  // traffic; the flock schedulers reach the same registry through the
  // cluster. Single-tenant runs never touch it.
  void RegisterTenant(tenant::TenantId id, const tenant::TenantPolicy& policy) {
    tenants_.Register(id, policy);
  }
  tenant::TenantRegistry& tenants() { return tenants_; }
  const tenant::TenantRegistry& tenants() const { return tenants_; }

 private:
  struct ListenerEntry {
    uint64_t id;
    MembershipListener fn;
  };
  struct BatchEndEntry {
    uint64_t id;
    BatchEndListener fn;
  };

  // Reentrancy-safe fan-out: snapshots listener ids, then re-looks each one
  // up (it may have been removed by an earlier callback — or by itself) and
  // invokes a *copy* of the std::function (self-removal mid-call would
  // otherwise destroy the closure it is executing).
  void NotifyListeners(int node, bool joined);
  void NotifyBatchEnd();

  verbs::Cluster& cluster_;
  // index = node; registration order, front answers (see RegisterEndpoint).
  std::vector<std::vector<Endpoint*>> endpoints_;
  std::vector<uint8_t> member_;  // index = node
  // Replay window (bounded; see kNonceWindow): every nonce <= watermark is
  // "seen"; recent_nonces_ holds the seen nonces above it.
  uint64_t nonce_watermark_ = 0;
  std::vector<uint64_t> recent_nonces_;
  std::vector<ListenerEntry> listeners_;
  std::vector<BatchEndEntry> batch_end_listeners_;
  uint64_t next_listener_id_ = 1;
  uint64_t nonce_ = 0;
  uint64_t epoch_ = 0;
  bool in_batch_ = false;
  std::vector<uint8_t> batch_start_member_;
  Stats stats_;
  tenant::TenantRegistry tenants_;
};

}  // namespace flock::ctrl

#endif  // FLOCK_CTRL_CONTROL_PLANE_H_
