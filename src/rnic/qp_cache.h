// RNIC connection-state cache.
//
// ConnectX-class NICs keep per-QP state (QP context, congestion-control
// state, address-translation entries) in a small on-die SRAM; when the
// working set of live QPs exceeds it, state is fetched from host memory over
// PCIe, which is the mechanism behind Fig. 2(a)'s throughput collapse and the
// reason Flock caps active QPs at MAX_AQP.
//
// Two replacement policies:
//   * kLru    — textbook LRU (useful for unit tests and skewed access);
//   * kRandom — random victim, the default for the device model. Real NIC
//     caches are set-associative with pseudo-random behavior under the
//     all-QPs-hot round-robin traffic of a fan-in server; strict LRU would
//     cliff to a 0% hit rate the moment the QP count exceeds capacity,
//     whereas the measured Fig. 2(a) degrades in proportion to
//     capacity / live-QPs, which random replacement reproduces.
#ifndef FLOCK_RNIC_QP_CACHE_H_
#define FLOCK_RNIC_QP_CACHE_H_

#include <cstdint>
#include <list>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rand.h"

namespace flock::rnic {

class QpCache {
 public:
  enum class Policy { kLru, kRandom };

  explicit QpCache(uint32_t capacity, Policy policy = Policy::kLru,
                   uint64_t seed = 0x243f6a8885a308d3ull)
      : capacity_(capacity), policy_(policy), rng_(seed) {}

  // Accesses the state of `qpn`. Returns true on hit. On miss the entry is
  // installed (evicting a victim if full).
  bool Touch(uint32_t qpn) {
    if (capacity_ == 0) {
      ++misses_;
      return false;
    }
    Entry* entry = Find(qpn);
    if (entry != nullptr) {
      if (policy_ == Policy::kLru) {
        lru_.splice(lru_.begin(), lru_, entry->lru_it);
      }
      ++hits_;
      return true;
    }
    ++misses_;
    if (size_ >= capacity_) {
      Evict();
    }
    Install(qpn);
    return false;
  }

  // Drops a QP's state (e.g. QP destroyed).
  void Invalidate(uint32_t qpn) {
    Entry* entry = Find(qpn);
    if (entry == nullptr) {
      return;
    }
    if (policy_ == Policy::kLru) {
      lru_.erase(entry->lru_it);
    } else {
      RemoveFromVector(entry->vec_index);
    }
    entry->present = false;
    --size_;
  }

  size_t size() const { return size_; }
  uint32_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  double MissRatio() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(total);
  }

  void ResetStats() {
    hits_ = 0;
    misses_ = 0;
  }

 private:
  struct Entry {
    std::list<uint32_t>::iterator lru_it;
    size_t vec_index = 0;
    bool present = false;
  };

  // QPNs are small dense integers (devices hand them out sequentially), so
  // presence lookup is a flat vector indexed by qpn — Touch() runs once per
  // simulated message on both the TX and RX paths.
  Entry* Find(uint32_t qpn) {
    if (qpn >= entries_.size() || !entries_[qpn].present) {
      return nullptr;
    }
    return &entries_[qpn];
  }

  Entry& Slot(uint32_t qpn) {
    if (qpn >= entries_.size()) {
      entries_.resize(static_cast<size_t>(qpn) + 1);
    }
    return entries_[qpn];
  }

  void Install(uint32_t qpn) {
    Entry& entry = Slot(qpn);
    if (policy_ == Policy::kLru) {
      lru_.push_front(qpn);
      entry.lru_it = lru_.begin();
    } else {
      entry.vec_index = keys_.size();
      keys_.push_back(qpn);
    }
    entry.present = true;
    ++size_;
  }

  void Evict() {
    uint32_t victim;
    if (policy_ == Policy::kLru) {
      victim = lru_.back();
      lru_.pop_back();
    } else {
      const size_t index = static_cast<size_t>(rng_.NextBelow(keys_.size()));
      victim = keys_[index];
      RemoveFromVector(index);
    }
    entries_[victim].present = false;
    --size_;
  }

  void RemoveFromVector(size_t index) {
    const uint32_t last = keys_.back();
    keys_[index] = last;
    keys_.pop_back();
    if (index < keys_.size()) {
      entries_[last].vec_index = index;
    }
  }

  uint32_t capacity_;
  Policy policy_;
  Rng rng_;
  std::list<uint32_t> lru_;
  std::vector<uint32_t> keys_;
  std::vector<Entry> entries_;  // indexed by qpn
  size_t size_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace flock::rnic

#endif  // FLOCK_RNIC_QP_CACHE_H_
