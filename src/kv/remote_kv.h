// Client-side one-sided KV lookups (fl_read) over the version-word protocol.
//
// The KV store lays records out as [version word | value] precisely so a
// remote reader can validate without the server CPU (kvstore.h): the reader
// fl_reads the whole record in one go, rejects it if the version word is
// locked, then re-reads just the version word and accepts the value only if
// the version did not change in between — a seqlock over RDMA. Odd or
// changed versions mean a writer was concurrently installing; the reader
// retries a bounded number of times and then signals the caller to fall back
// to the RPC path (which serializes against writers on the server).
//
// Record addresses are learned out of band — every RPC Get response carries
// the record's address (the "address-learning channel"), mirroring how
// one-sided designs bootstrap their location caches. Keys never seen via RPC
// are reported as kNoAddr so the caller issues the RPC (and learns the
// address for next time).
#ifndef FLOCK_KV_REMOTE_KV_H_
#define FLOCK_KV_REMOTE_KV_H_

#include <cstdint>
#include <cstring>
#include <unordered_map>

#include "src/fabric/memory.h"
#include "src/flock/runtime.h"
#include "src/kv/kvstore.h"

namespace flock::kv {

// One per (connection, application thread): the scratch landing buffer is
// not re-entrant. The address cache is per-reader too; sharing it across
// threads is a host-side concern the caller can layer on via LearnAddr.
class OneSidedReader {
 public:
  enum class Outcome {
    kOk,        // value + even, stable version delivered
    kNoAddr,    // record address unknown: caller must go through RPC
    kContended, // retries exhausted against a concurrent writer: use RPC
    kError,     // transport failure (dead lane/QP)
  };

  struct Stats {
    uint64_t ok = 0;
    uint64_t no_addr = 0;
    uint64_t locked_retries = 0;   // first read saw the lock bit
    uint64_t version_retries = 0;  // version word moved between the reads
    uint64_t contended = 0;
    uint64_t errors = 0;
  };

  OneSidedReader(Connection& conn, fabric::MemorySpace& local_mem,
                 uint32_t value_size)
      : conn_(&conn),
        value_size_(value_size),
        scratch_(local_mem.Alloc(8 + value_size, 8)),
        local_mem_(&local_mem) {}

  // Files the record address (from an RPC response's version_addr) under
  // `key`. `mr` must cover [addr, addr + 8 + value_size).
  void LearnAddr(uint64_t key, uint64_t record_addr, const RemoteMr& mr) {
    cache_[key] = Entry{record_addr, mr};
  }

  bool KnowsAddr(uint64_t key) const { return cache_.count(key) != 0; }

  // fl_read point lookup. On kOk, `value_out` (if non-null) holds the value
  // and `version_out` (if non-null) the even version it was read under.
  sim::Co<Outcome> Get(FlockThread& thread, uint64_t key, void* value_out,
                       uint64_t* version_out, int max_retries = 3) {
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      stats_.no_addr += 1;
      co_return Outcome::kNoAddr;
    }
    const Entry entry = it->second;
    for (int attempt = 0; attempt <= max_retries; ++attempt) {
      // One read covers the version word and the value.
      if (co_await conn_->Read(thread, scratch_, entry.record_addr,
                               8 + value_size_, entry.mr) !=
          verbs::WcStatus::kSuccess) {
        stats_.errors += 1;
        co_return Outcome::kError;
      }
      uint64_t v1 = 0;
      local_mem_->Read(scratch_, &v1, 8);
      if (v1 & kLockBit) {
        stats_.locked_retries += 1;
        continue;  // writer mid-install: the value bytes may be torn
      }
      if (value_out != nullptr) {
        local_mem_->Read(scratch_ + 8, value_out, value_size_);
      }
      // Seqlock validation: re-read the version word alone; any concurrent
      // commit bumped it, any in-flight writer set the lock bit.
      if (co_await conn_->Read(thread, scratch_, entry.record_addr, 8,
                               entry.mr) != verbs::WcStatus::kSuccess) {
        stats_.errors += 1;
        co_return Outcome::kError;
      }
      uint64_t v2 = 0;
      local_mem_->Read(scratch_, &v2, 8);
      if (v2 != v1) {
        stats_.version_retries += 1;
        continue;
      }
      if (version_out != nullptr) {
        *version_out = v1;
      }
      stats_.ok += 1;
      co_return Outcome::kOk;
    }
    stats_.contended += 1;
    co_return Outcome::kContended;
  }

  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    uint64_t record_addr = 0;
    RemoteMr mr;
  };

  Connection* conn_;
  const uint32_t value_size_;
  const uint64_t scratch_;  // local landing buffer: [version | value]
  fabric::MemorySpace* local_mem_;
  std::unordered_map<uint64_t, Entry> cache_;
  Stats stats_;
};

}  // namespace flock::kv

#endif  // FLOCK_KV_REMOTE_KV_H_
