// A MICA-style partitioned key-value store (the FaSST/FlockTX substrate).
//
// Fixed-size values live in the node's registered memory as
// [version word | value bytes] records, so a transaction coordinator can
// validate a read set with one-sided RDMA reads of the version words
// (FlockTX's validation phase, §8.5.1). The version word encodes:
//
//   bit 0      — lock bit (held during the write phase of OCC)
//   bits 63..1 — version counter, bumped on every committed update
//
// The index is open-addressing (keyhash-distributed, linear probing) in host
// heap; values are never moved after insert, keeping version addresses
// stable — the property remote validation depends on.
#ifndef FLOCK_KV_KVSTORE_H_
#define FLOCK_KV_KVSTORE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/common/logging.h"
#include "src/common/units.h"
#include "src/fabric/memory.h"

namespace flock::kv {

inline constexpr uint64_t kLockBit = 1;

inline uint64_t KeyHash(uint64_t key) {
  key ^= key >> 33;
  key *= 0xff51afd7ed558ccdULL;
  key ^= key >> 33;
  key *= 0xc4ceb9fe1a85ec53ULL;
  key ^= key >> 33;
  return key;
}

class KvStore {
 public:
  // `capacity` is sized up to the next power of two; load factor <= 0.7.
  KvStore(fabric::MemorySpace& mem, size_t capacity, uint32_t value_size)
      : mem_(mem), value_size_(value_size) {
    size_t slots = 16;
    while (slots * 7 / 10 < capacity) {
      slots <<= 1;
    }
    slots_.assign(slots, Slot{});
    mask_ = slots - 1;
  }

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  uint32_t value_size() const { return value_size_; }
  size_t size() const { return size_; }

  // Registered-memory span holding this store's records (for MR setup).
  // Records are allocated in fixed-size slabs; spans() lists them.
  struct Span {
    uint64_t addr = 0;
    uint64_t length = 0;
  };
  const std::vector<Span>& spans() const { return spans_; }

  // Inserts a fresh key (bootstrap only; returns false if present).
  bool Insert(uint64_t key, const void* value) {
    size_t index;
    if (Find(key, &index)) {
      return false;
    }
    FLOCK_CHECK_LT((size_ + 1) * 10, slots_.size() * 8) << "kv store over capacity";
    const uint64_t record = AllocRecord();
    const uint64_t version0 = 2;  // even, unlocked
    mem_.Write(record, &version0, 8);
    mem_.Write(record + 8, value, value_size_);
    // Claim the probe slot.
    size_t slot = KeyHash(key) & mask_;
    while (slots_[slot].used) {
      slot = (slot + 1) & mask_;
    }
    slots_[slot] = Slot{true, key, record};
    ++size_;
    return true;
  }

  // Point read: value + version snapshot. Returns false on miss or if the
  // item is locked (OCC readers retry/abort on locked items).
  bool Get(uint64_t key, void* value_out, uint64_t* version_out,
           uint64_t* version_addr_out) {
    size_t index;
    if (!Find(key, &index)) {
      return false;
    }
    const uint64_t record = slots_[index].record;
    uint64_t version = 0;
    mem_.Read(record, &version, 8);
    if (version_addr_out != nullptr) {
      *version_addr_out = record;
    }
    if (version & kLockBit) {
      return false;
    }
    if (value_out != nullptr) {
      mem_.Read(record + 8, value_out, value_size_);
    }
    if (version_out != nullptr) {
      *version_out = version;
    }
    return true;
  }

  // Write-phase lock: returns the pre-lock version and value on success.
  bool TryLock(uint64_t key, void* value_out, uint64_t* version_out) {
    size_t index;
    if (!Find(key, &index)) {
      return false;
    }
    const uint64_t record = slots_[index].record;
    uint64_t version = 0;
    mem_.Read(record, &version, 8);
    if (version & kLockBit) {
      return false;  // already locked
    }
    const uint64_t locked = version | kLockBit;
    mem_.Write(record, &locked, 8);
    if (value_out != nullptr) {
      mem_.Read(record + 8, value_out, value_size_);
    }
    if (version_out != nullptr) {
      *version_out = version;
    }
    return true;
  }

  // Commit: install the new value, bump the version, release the lock.
  bool UpdateAndUnlock(uint64_t key, const void* value) {
    size_t index;
    if (!Find(key, &index)) {
      return false;
    }
    const uint64_t record = slots_[index].record;
    uint64_t version = 0;
    mem_.Read(record, &version, 8);
    FLOCK_CHECK(version & kLockBit) << "commit on unlocked key " << key << " v=" << version;
    mem_.Write(record + 8, value, value_size_);
    const uint64_t next = (version & ~kLockBit) + 2;
    mem_.Write(record, &next, 8);
    return true;
  }

  // Abort: release the lock without changing value or version.
  bool Unlock(uint64_t key) {
    size_t index;
    if (!Find(key, &index)) {
      return false;
    }
    const uint64_t record = slots_[index].record;
    uint64_t version = 0;
    mem_.Read(record, &version, 8);
    FLOCK_CHECK(version & kLockBit) << "abort-unlock on unlocked key " << key << " v=" << version;
    const uint64_t unlocked = version & ~kLockBit;
    mem_.Write(record, &unlocked, 8);
    return true;
  }

  // Replica apply (logging phase): install value at a given version without
  // the lock protocol — the primary serializes updates.
  bool ReplicaApply(uint64_t key, uint64_t version, const void* value) {
    size_t index;
    if (!Find(key, &index)) {
      return false;
    }
    const uint64_t record = slots_[index].record;
    uint64_t current = 0;
    mem_.Read(record, &current, 8);
    if (version < current) {
      return true;  // stale log record (reordered across coordinators): skip
    }
    mem_.Write(record + 8, value, value_size_);
    mem_.Write(record, &version, 8);
    return true;
  }

  // Current version word (diagnostics / tests).
  bool PeekVersion(uint64_t key, uint64_t* version_out) {
    size_t index;
    if (!Find(key, &index)) {
      return false;
    }
    mem_.Read(slots_[index].record, version_out, 8);
    return true;
  }

  // Approximate CPU cost of one index+record access (charged by handlers).
  static constexpr Nanos kAccessCost = 120;

 private:
  struct Slot {
    bool used = false;
    uint64_t key = 0;
    uint64_t record = 0;  // MemorySpace address of [version | value]
  };

  bool Find(uint64_t key, size_t* index_out) const {
    size_t slot = KeyHash(key) & mask_;
    for (size_t probes = 0; probes <= mask_; ++probes) {
      if (!slots_[slot].used) {
        return false;
      }
      if (slots_[slot].key == key) {
        *index_out = slot;
        return true;
      }
      slot = (slot + 1) & mask_;
    }
    return false;
  }

  uint64_t AllocRecord() {
    const uint32_t record_bytes = 8 + value_size_;
    if (slab_remaining_ < record_bytes) {
      const uint64_t slab_bytes = 1 << 20;
      slab_next_ = mem_.Alloc(slab_bytes, 8);
      slab_remaining_ = slab_bytes;
      spans_.push_back(Span{slab_next_, slab_bytes});
    }
    const uint64_t record = slab_next_;
    const uint32_t aligned = (record_bytes + 7u) & ~7u;
    slab_next_ += aligned;
    slab_remaining_ -= aligned;
    return record;
  }

  fabric::MemorySpace& mem_;
  const uint32_t value_size_;
  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  std::vector<Span> spans_;
  uint64_t slab_next_ = 0;
  uint64_t slab_remaining_ = 0;
};

}  // namespace flock::kv

#endif  // FLOCK_KV_KVSTORE_H_
