// Coordinator-side transport abstraction.
//
// FlockTX and the FaSST-like baseline run the *same* transaction protocol;
// what differs is how RPCs travel and how read-set validation is performed:
//
//   * FlockTxTransport — RPCs through Flock connection handles; validation
//     with one-sided fl_read of the item version words (§8.5.1 phase 2).
//   * FasstTxTransport — RPCs over the UD baseline, one QP per thread, each
//     client thread talking to its peer server worker; validation is another
//     RPC (UD has no one-sided verbs — Table 1).
//
// One transport instance exists per coroutine worker; workers of a thread
// share the underlying FlockThread / UdRpcClient::Thread.
#ifndef FLOCK_TXN_TRANSPORT_H_
#define FLOCK_TXN_TRANSPORT_H_

#include <cstring>
#include <vector>

#include "src/baselines/udrpc.h"
#include "src/flock/runtime.h"
#include "src/txn/protocol.h"

namespace flock::txn {

struct TxCall {
  int server = 0;
  uint16_t rpc = 0;
  uint32_t req_len = 0;
  uint8_t req[64] = {};
  bool ok = false;
  std::vector<uint8_t> resp;

  template <typename T>
  void SetReq(const T& value) {
    static_assert(sizeof(T) <= sizeof(req));
    std::memcpy(req, &value, sizeof(T));
    req_len = sizeof(T);
  }

  template <typename T>
  bool GetResp(T* out) const {
    if (!ok || resp.size() < sizeof(T)) {
      return false;
    }
    std::memcpy(out, resp.data(), sizeof(T));
    return true;
  }
};

class TxTransport {
 public:
  virtual ~TxTransport() = default;

  // Issues all calls concurrently and awaits all responses.
  virtual sim::Co<void> CallAll(TxCall* calls, size_t count) = 0;

  // Read-set validation for one item: is its version still `expected` and
  // unlocked? `version_addr` is used by one-sided transports, `key` by
  // RPC-based ones.
  virtual sim::Co<bool> Validate(int server, uint64_t key, uint64_t version_addr,
                                 uint64_t expected, bool* valid) = 0;
};

// ---- FlockTX ----
class FlockTxTransport : public TxTransport {
 public:
  FlockTxTransport(FlockRuntime& runtime, FlockThread& thread,
                   std::vector<Connection*> connections,
                   std::vector<std::vector<RemoteMr>> server_mrs)
      : runtime_(runtime),
        thread_(thread),
        connections_(std::move(connections)),
        server_mrs_(std::move(server_mrs)) {
    read_slot_ = runtime_.cluster().mem(runtime_.node()).Alloc(8, 8);
  }

  sim::Co<void> CallAll(TxCall* calls, size_t count) override {
    std::vector<PendingRpc*> pending(count);
    for (size_t i = 0; i < count; ++i) {
      pending[i] = co_await connections_[static_cast<size_t>(calls[i].server)]->SendRpc(
          thread_, calls[i].rpc, calls[i].req, calls[i].req_len);
    }
    for (size_t i = 0; i < count; ++i) {
      Connection* conn = connections_[static_cast<size_t>(calls[i].server)];
      calls[i].ok = co_await conn->AwaitResponse(thread_, pending[i]);
      pending[i]->response.CopyTo(&calls[i].resp);
      conn->FreeRpc(pending[i]);
    }
  }

  sim::Co<bool> Validate(int server, uint64_t key, uint64_t version_addr,
                         uint64_t expected, bool* valid) override {
    const RemoteMr* mr = FindMr(server, version_addr);
    if (mr == nullptr) {
      co_return false;
    }
    const verbs::WcStatus status =
        co_await connections_[static_cast<size_t>(server)]->Read(
            thread_, read_slot_, version_addr, 8, *mr);
    if (status != verbs::WcStatus::kSuccess) {
      co_return false;
    }
    uint64_t version = 0;
    runtime_.cluster().mem(runtime_.node()).Read(read_slot_, &version, 8);
    *valid = (version == expected) && !(version & kv::kLockBit);
    co_return true;
  }

 private:
  const RemoteMr* FindMr(int server, uint64_t addr) const {
    for (const RemoteMr& mr : server_mrs_[static_cast<size_t>(server)]) {
      if (addr >= mr.addr && addr + 8 <= mr.addr + mr.length) {
        return &mr;
      }
    }
    return nullptr;
  }

  FlockRuntime& runtime_;
  FlockThread& thread_;
  std::vector<Connection*> connections_;
  std::vector<std::vector<RemoteMr>> server_mrs_;
  uint64_t read_slot_ = 0;
};

// ---- FaSST-like ----
class FasstTxTransport : public TxTransport {
 public:
  FasstTxTransport(baselines::UdRpcClient::Thread& thread,
                   std::vector<baselines::UdEndpoint> peers, Nanos timeout)
      : thread_(thread), peers_(std::move(peers)), timeout_(timeout) {}

  sim::Co<void> CallAll(TxCall* calls, size_t count) override {
    std::vector<baselines::UdRpcClient::Pending*> pending(count);
    for (size_t i = 0; i < count; ++i) {
      pending[i] =
          co_await thread_.Send(peers_[static_cast<size_t>(calls[i].server)],
                                calls[i].rpc, calls[i].req, calls[i].req_len);
    }
    for (size_t i = 0; i < count; ++i) {
      calls[i].ok = co_await thread_.Await(pending[i], timeout_);
      calls[i].resp = std::move(pending[i]->response);
      delete pending[i];
    }
  }

  sim::Co<bool> Validate(int server, uint64_t key, uint64_t version_addr,
                         uint64_t expected, bool* valid) override {
    TxCall call;
    call.server = server;
    call.rpc = kTxGetVersion;
    call.SetReq(TxKeyReq{key});
    co_await CallAll(&call, 1);
    TxVersionResp resp;
    if (!call.GetResp(&resp) || !resp.ok) {
      co_return false;
    }
    *valid = (resp.version == expected) && !(resp.version & kv::kLockBit);
    co_return true;
  }

 private:
  baselines::UdRpcClient::Thread& thread_;
  std::vector<baselines::UdEndpoint> peers_;
  Nanos timeout_;
};

}  // namespace flock::txn

#endif  // FLOCK_TXN_TRANSPORT_H_
