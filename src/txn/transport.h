// Coordinator-side transport abstraction.
//
// FlockTX and the FaSST-like baseline run the *same* transaction protocol;
// what differs is how RPCs travel and how read-set validation is performed:
//
//   * FlockTxTransport — RPCs through Flock connection handles; validation
//     with one-sided fl_read of the item version words (§8.5.1 phase 2).
//   * FasstTxTransport — RPCs over the UD baseline, one QP per thread, each
//     client thread talking to its peer server worker; validation is another
//     RPC (UD has no one-sided verbs — Table 1).
//
// One transport instance exists per coroutine worker; workers of a thread
// share the underlying FlockThread / UdRpcClient::Thread.
#ifndef FLOCK_TXN_TRANSPORT_H_
#define FLOCK_TXN_TRANSPORT_H_

#include <cstring>
#include <unordered_map>
#include <vector>

#include "src/baselines/udrpc.h"
#include "src/flock/alock.h"
#include "src/flock/runtime.h"
#include "src/txn/protocol.h"

namespace flock::txn {

struct TxCall {
  int server = 0;
  uint16_t rpc = 0;
  uint32_t req_len = 0;
  uint8_t req[64] = {};
  bool ok = false;
  std::vector<uint8_t> resp;

  template <typename T>
  void SetReq(const T& value) {
    static_assert(sizeof(T) <= sizeof(req));
    std::memcpy(req, &value, sizeof(T));
    req_len = sizeof(T);
  }

  template <typename T>
  bool GetResp(T* out) const {
    if (!ok || resp.size() < sizeof(T)) {
      return false;
    }
    std::memcpy(out, resp.data(), sizeof(T));
    return true;
  }
};

class TxTransport {
 public:
  virtual ~TxTransport() = default;

  // Issues all calls concurrently and awaits all responses.
  virtual sim::Co<void> CallAll(TxCall* calls, size_t count) = 0;

  // Read-set validation for one item: is its version still `expected` and
  // unlocked? `version_addr` is used by one-sided transports, `key` by
  // RPC-based ones.
  virtual sim::Co<bool> Validate(int server, uint64_t key, uint64_t version_addr,
                                 uint64_t expected, bool* valid) = 0;

  // ---- one-sided data plane (TxMode::kOccOneSidedRead / kLockOneSided) ----
  // RPC-only transports (UD has no one-sided verbs — Table 1) keep the
  // defaults: not supported, every hook degenerates to "use the RPC path".

  // Outcome of a one-sided record read (seqlock over [version | value]).
  enum class OsRead {
    kOk,         // stable, unlocked snapshot delivered
    kNoAddr,     // record address not cached: issue the RPC (and LearnAddr)
    kContended,  // a writer kept colliding: issue the RPC
    kError,      // transport failure (dead lane/QP)
  };
  // Outcome of a one-sided version-word write lock (CAS v -> v|lock).
  enum class OsLock { kAcquired, kMiss, kError };

  virtual bool SupportsOneSided() const { return false; }
  // Files the record address carried by a kTxGet/kTxLockRead response.
  virtual void LearnAddr(int server, uint64_t key, uint64_t version_addr) {}
  virtual bool KnowsAddr(int server, uint64_t key) const { return false; }
  // fl_read of the whole record; validated by re-reading the version word.
  virtual sim::Co<OsRead> ReadRecord(int server, uint64_t key,
                                     uint64_t* version, uint64_t* version_addr,
                                     uint8_t value[kTxMaxValue]) {
    co_return OsRead::kNoAddr;
  }
  // ALock writer path on the version word: CAS expected -> expected|lock.
  // kMiss covers both a concurrent holder and a moved version.
  virtual sim::Co<OsLock> LockRecord(int server, uint64_t version_addr,
                                     uint64_t expected_version) {
    co_return OsLock::kError;
  }
  // Install/release under a held lock: fl_write the value bytes, then the
  // version word (same lane, so the value lands before the lock releases).
  // False means transport failure.
  virtual sim::Co<bool> WriteRecordValue(int server, uint64_t version_addr,
                                         const uint8_t* value, uint32_t len) {
    co_return false;
  }
  virtual sim::Co<bool> WriteRecordVersion(int server, uint64_t version_addr,
                                           uint64_t version) {
    co_return false;
  }
};

// ---- FlockTX ----
class FlockTxTransport : public TxTransport {
 public:
  FlockTxTransport(FlockRuntime& runtime, FlockThread& thread,
                   std::vector<Connection*> connections,
                   std::vector<std::vector<RemoteMr>> server_mrs)
      : runtime_(runtime),
        thread_(thread),
        connections_(std::move(connections)),
        server_mrs_(std::move(server_mrs)) {
    fabric::MemorySpace& mem = runtime_.cluster().mem(runtime_.node());
    read_slot_ = mem.Alloc(8, 8);
    record_slot_ = mem.Alloc(8 + kTxMaxValue, 8);
    value_slot_ = mem.Alloc(kTxMaxValue, 8);
    version_slot_ = mem.Alloc(8, 8);
    cas_slot_ = mem.Alloc(8, 8);
  }

  sim::Co<void> CallAll(TxCall* calls, size_t count) override {
    std::vector<PendingRpc*> pending(count);
    for (size_t i = 0; i < count; ++i) {
      pending[i] = co_await connections_[static_cast<size_t>(calls[i].server)]->SendRpc(
          thread_, calls[i].rpc, calls[i].req, calls[i].req_len);
    }
    for (size_t i = 0; i < count; ++i) {
      Connection* conn = connections_[static_cast<size_t>(calls[i].server)];
      calls[i].ok = co_await conn->AwaitResponse(thread_, pending[i]);
      pending[i]->response.CopyTo(&calls[i].resp);
      conn->FreeRpc(pending[i]);
    }
  }

  sim::Co<bool> Validate(int server, uint64_t key, uint64_t version_addr,
                         uint64_t expected, bool* valid) override {
    const RemoteMr* mr = FindMr(server, version_addr);
    if (mr == nullptr) {
      co_return false;
    }
    const verbs::WcStatus status =
        co_await connections_[static_cast<size_t>(server)]->Read(
            thread_, read_slot_, version_addr, 8, *mr);
    if (status != verbs::WcStatus::kSuccess) {
      co_return false;
    }
    uint64_t version = 0;
    runtime_.cluster().mem(runtime_.node()).Read(read_slot_, &version, 8);
    *valid = (version == expected) && !(version & kv::kLockBit);
    co_return true;
  }

  // ---- one-sided data plane ----
  struct OsStats {
    uint64_t reads = 0;          // one-sided record reads accepted
    uint64_t read_retries = 0;   // locked/changed snapshots rejected
    uint64_t read_fallbacks = 0; // kNoAddr/kContended handed to the RPC path
    uint64_t locks = 0;          // version-word CAS locks acquired
    uint64_t lock_misses = 0;
    uint64_t installs = 0;       // value+version installs under a held lock
  };
  const OsStats& os_stats() const { return os_stats_; }

  bool SupportsOneSided() const override { return true; }

  void LearnAddr(int server, uint64_t key, uint64_t version_addr) override {
    addr_cache_[key] = version_addr;
  }
  bool KnowsAddr(int server, uint64_t key) const override {
    return addr_cache_.count(key) != 0;
  }

  sim::Co<OsRead> ReadRecord(int server, uint64_t key, uint64_t* version,
                             uint64_t* version_addr,
                             uint8_t value[kTxMaxValue]) override {
    const auto it = addr_cache_.find(key);
    if (it == addr_cache_.end()) {
      os_stats_.read_fallbacks += 1;
      co_return OsRead::kNoAddr;
    }
    const uint64_t addr = it->second;
    const RemoteMr* mr = FindMr(server, addr, 8 + kTxMaxValue);
    if (mr == nullptr) {
      os_stats_.read_fallbacks += 1;
      co_return OsRead::kNoAddr;
    }
    Connection* conn = connections_[static_cast<size_t>(server)];
    fabric::MemorySpace& mem = runtime_.cluster().mem(runtime_.node());
    for (int attempt = 0; attempt < 4; ++attempt) {
      if (co_await conn->Read(thread_, record_slot_, addr, 8 + kTxMaxValue,
                              *mr) != verbs::WcStatus::kSuccess) {
        co_return OsRead::kError;
      }
      uint64_t v1 = 0;
      mem.Read(record_slot_, &v1, 8);
      if (v1 & kv::kLockBit) {
        os_stats_.read_retries += 1;
        continue;
      }
      mem.Read(record_slot_ + 8, value, kTxMaxValue);
      // Seqlock validation: the version word must not have moved.
      if (co_await conn->Read(thread_, record_slot_, addr, 8, *mr) !=
          verbs::WcStatus::kSuccess) {
        co_return OsRead::kError;
      }
      uint64_t v2 = 0;
      mem.Read(record_slot_, &v2, 8);
      if (v2 != v1) {
        os_stats_.read_retries += 1;
        continue;
      }
      *version = v1;
      *version_addr = addr;
      os_stats_.reads += 1;
      co_return OsRead::kOk;
    }
    os_stats_.read_fallbacks += 1;
    co_return OsRead::kContended;
  }

  sim::Co<OsLock> LockRecord(int server, uint64_t version_addr,
                             uint64_t expected_version) override {
    const RemoteMr* mr = FindMr(server, version_addr, 8);
    if (mr == nullptr) {
      co_return OsLock::kError;
    }
    verbs::WcStatus status = verbs::WcStatus::kSuccess;
    // cas_slot_: transports share a FlockThread across worker coroutines, so
    // the CAS result must land in a slot this transport owns.
    const bool acquired = co_await VersionTryLock(
        *connections_[static_cast<size_t>(server)], thread_, version_addr,
        expected_version, *mr, &status, cas_slot_);
    if (status != verbs::WcStatus::kSuccess) {
      co_return OsLock::kError;
    }
    if (!acquired) {
      os_stats_.lock_misses += 1;
      co_return OsLock::kMiss;
    }
    os_stats_.locks += 1;
    co_return OsLock::kAcquired;
  }

  sim::Co<bool> WriteRecordValue(int server, uint64_t version_addr,
                                 const uint8_t* value, uint32_t len) override {
    const RemoteMr* mr = FindMr(server, version_addr, 8 + len);
    if (mr == nullptr) {
      co_return false;
    }
    fabric::MemorySpace& mem = runtime_.cluster().mem(runtime_.node());
    mem.Write(value_slot_, value, len);
    co_return co_await connections_[static_cast<size_t>(server)]->Write(
        thread_, value_slot_, version_addr + 8, len, *mr) ==
        verbs::WcStatus::kSuccess;
  }

  sim::Co<bool> WriteRecordVersion(int server, uint64_t version_addr,
                                   uint64_t version) override {
    const RemoteMr* mr = FindMr(server, version_addr, 8);
    if (mr == nullptr) {
      co_return false;
    }
    os_stats_.installs += 1;
    co_return co_await VersionUnlock(
        *connections_[static_cast<size_t>(server)], thread_,
        runtime_.cluster().mem(runtime_.node()), version_slot_, version_addr,
        version, *mr) == verbs::WcStatus::kSuccess;
  }

 private:
  const RemoteMr* FindMr(int server, uint64_t addr, uint64_t len = 8) const {
    for (const RemoteMr& mr : server_mrs_[static_cast<size_t>(server)]) {
      if (addr >= mr.addr && addr + len <= mr.addr + mr.length) {
        return &mr;
      }
    }
    return nullptr;
  }

  FlockRuntime& runtime_;
  FlockThread& thread_;
  std::vector<Connection*> connections_;
  std::vector<std::vector<RemoteMr>> server_mrs_;
  uint64_t read_slot_ = 0;
  // One-sided scratch (per transport instance == per coroutine, so the
  // landing buffers are never re-entrant).
  uint64_t record_slot_ = 0;
  uint64_t value_slot_ = 0;
  uint64_t version_slot_ = 0;
  uint64_t cas_slot_ = 0;
  std::unordered_map<uint64_t, uint64_t> addr_cache_;  // key -> record addr
  OsStats os_stats_;
};

// ---- FaSST-like ----
class FasstTxTransport : public TxTransport {
 public:
  FasstTxTransport(baselines::UdRpcClient::Thread& thread,
                   std::vector<baselines::UdEndpoint> peers, Nanos timeout)
      : thread_(thread), peers_(std::move(peers)), timeout_(timeout) {}

  sim::Co<void> CallAll(TxCall* calls, size_t count) override {
    std::vector<baselines::UdRpcClient::Pending*> pending(count);
    for (size_t i = 0; i < count; ++i) {
      pending[i] =
          co_await thread_.Send(peers_[static_cast<size_t>(calls[i].server)],
                                calls[i].rpc, calls[i].req, calls[i].req_len);
    }
    for (size_t i = 0; i < count; ++i) {
      calls[i].ok = co_await thread_.Await(pending[i], timeout_);
      calls[i].resp = std::move(pending[i]->response);
      delete pending[i];
    }
  }

  sim::Co<bool> Validate(int server, uint64_t key, uint64_t version_addr,
                         uint64_t expected, bool* valid) override {
    TxCall call;
    call.server = server;
    call.rpc = kTxGetVersion;
    call.SetReq(TxKeyReq{key});
    co_await CallAll(&call, 1);
    TxVersionResp resp;
    if (!call.GetResp(&resp) || !resp.ok) {
      co_return false;
    }
    *valid = (resp.version == expected) && !(resp.version & kv::kLockBit);
    co_return true;
  }

 private:
  baselines::UdRpcClient::Thread& thread_;
  std::vector<baselines::UdEndpoint> peers_;
  Nanos timeout_;
};

}  // namespace flock::txn

#endif  // FLOCK_TXN_TRANSPORT_H_
