// Transaction server state and RPC handlers.
//
// Each server node is the primary for one partition and a replica for
// `replication - 1` others (3-way chain placement, as in §8.5.2). Handlers
// are plain RpcHandler functions, registered identically on a FlockRuntime
// or a UdRpcServer.
#ifndef FLOCK_TXN_SERVER_H_
#define FLOCK_TXN_SERVER_H_

#include <cstring>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/flock/runtime.h"  // RpcHandler
#include "src/txn/protocol.h"

namespace flock::txn {

class TxServer {
 public:
  // `server_index` in [0, num_servers); hosts the primary store for its own
  // partition and replica stores for the previous `replication - 1` ones.
  TxServer(fabric::MemorySpace& mem, int server_index, int num_servers,
           int replication, size_t keys_per_partition, uint32_t value_size)
      : server_index_(server_index), num_servers_(num_servers) {
    FLOCK_CHECK_LE(replication, num_servers);
    FLOCK_CHECK_LE(value_size, kTxMaxValue);
    for (int r = 0; r < replication; ++r) {
      const int partition = (server_index - r + num_servers) % num_servers;
      stores_[partition] =
          std::make_unique<kv::KvStore>(mem, keys_per_partition, value_size);
    }
  }

  kv::KvStore* primary() { return stores_.at(server_index_).get(); }
  kv::KvStore* store(int partition) {
    auto it = stores_.find(partition);
    return it == stores_.end() ? nullptr : it->second.get();
  }

  // Primary for a key is the partition; this node must own that partition for
  // kTxGet/kTxLockRead/kTxCommit/kTxUnlock, or host a replica for kTxReplicate.
  int server_index() const { return server_index_; }
  int num_servers() const { return num_servers_; }
  uint64_t commits_applied() const { return commits_applied_; }
  uint64_t lock_failures() const { return lock_failures_; }

  // Registers the six handlers through `reg` (RegisterHandler of either
  // transport).
  void RegisterAll(const std::function<void(uint16_t, RpcHandler)>& reg) {
    reg(kTxGet, [this](const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
                       Nanos* cpu) { return HandleGet(req, len, resp, cap, cpu); });
    reg(kTxLockRead,
        [this](const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
               Nanos* cpu) { return HandleLockRead(req, len, resp, cap, cpu); });
    reg(kTxCommit,
        [this](const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
               Nanos* cpu) { return HandleCommit(req, len, resp, cap, cpu); });
    reg(kTxUnlock,
        [this](const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
               Nanos* cpu) { return HandleUnlock(req, len, resp, cap, cpu); });
    reg(kTxReplicate,
        [this](const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
               Nanos* cpu) { return HandleReplicate(req, len, resp, cap, cpu); });
    reg(kTxGetVersion,
        [this](const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
               Nanos* cpu) { return HandleGetVersion(req, len, resp, cap, cpu); });
  }

 private:
  kv::KvStore& PrimaryFor(uint64_t key) {
    const int partition = PartitionOf(key, num_servers_);
    FLOCK_CHECK_EQ(partition, server_index_) << "request routed to wrong primary";
    return *stores_.at(partition);
  }

  uint32_t HandleGet(const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
                     Nanos* cpu) {
    TxKeyReq request;
    std::memcpy(&request, req, sizeof(request));
    TxValueResp response;
    response.ok = PrimaryFor(request.key)
                          .Get(request.key, response.value, &response.version,
                               &response.version_addr)
                      ? 1
                      : 0;
    *cpu = kv::KvStore::kAccessCost;
    std::memcpy(resp, &response, sizeof(response));
    return sizeof(response);
  }

  uint32_t HandleLockRead(const uint8_t* req, uint32_t len, uint8_t* resp,
                          uint32_t cap, Nanos* cpu) {
    TxKeyReq request;
    std::memcpy(&request, req, sizeof(request));
    TxValueResp response;
    response.ok =
        PrimaryFor(request.key).TryLock(request.key, response.value, &response.version)
            ? 1
            : 0;
    if (!response.ok) {
      ++lock_failures_;
    }
    *cpu = kv::KvStore::kAccessCost + 20;
    std::memcpy(resp, &response, sizeof(response));
    return sizeof(response);
  }

  uint32_t HandleCommit(const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
                        Nanos* cpu) {
    TxCommitReq request;
    std::memcpy(&request, req, sizeof(request));
    TxAckResp response;
    response.ok = PrimaryFor(request.key).UpdateAndUnlock(request.key, request.value)
                      ? 1
                      : 0;
    commits_applied_ += response.ok;
    *cpu = kv::KvStore::kAccessCost + 40;
    std::memcpy(resp, &response, sizeof(response));
    return sizeof(response);
  }

  uint32_t HandleUnlock(const uint8_t* req, uint32_t len, uint8_t* resp, uint32_t cap,
                        Nanos* cpu) {
    TxKeyReq request;
    std::memcpy(&request, req, sizeof(request));
    TxAckResp response;
    response.ok = PrimaryFor(request.key).Unlock(request.key) ? 1 : 0;
    *cpu = kv::KvStore::kAccessCost;
    std::memcpy(resp, &response, sizeof(response));
    return sizeof(response);
  }

  uint32_t HandleReplicate(const uint8_t* req, uint32_t len, uint8_t* resp,
                           uint32_t cap, Nanos* cpu) {
    TxReplicateReq request;
    std::memcpy(&request, req, sizeof(request));
    const int partition = PartitionOf(request.key, num_servers_);
    kv::KvStore* replica = store(partition);
    FLOCK_CHECK(replica != nullptr) << "replicate routed to non-replica";
    TxAckResp response;
    response.ok =
        replica->ReplicaApply(request.key, request.version, request.value) ? 1 : 0;
    *cpu = kv::KvStore::kAccessCost + 40;
    std::memcpy(resp, &response, sizeof(response));
    return sizeof(response);
  }

  uint32_t HandleGetVersion(const uint8_t* req, uint32_t len, uint8_t* resp,
                            uint32_t cap, Nanos* cpu) {
    TxKeyReq request;
    std::memcpy(&request, req, sizeof(request));
    TxVersionResp response;
    response.ok = PrimaryFor(request.key).PeekVersion(request.key, &response.version)
                      ? 1
                      : 0;
    *cpu = kv::KvStore::kAccessCost;
    std::memcpy(resp, &response, sizeof(response));
    return sizeof(response);
  }

  const int server_index_;
  const int num_servers_;
  std::unordered_map<int, std::unique_ptr<kv::KvStore>> stores_;
  uint64_t commits_applied_ = 0;
  uint64_t lock_failures_ = 0;
};

// Inserts `key` into its primary's store and every replica's copy of that
// partition. `servers` is indexed by server_index.
inline void PopulateKey(const std::vector<TxServer*>& servers, uint64_t key,
                        const void* value) {
  const int num_servers = static_cast<int>(servers.size());
  const int partition = PartitionOf(key, num_servers);
  for (TxServer* server : servers) {
    kv::KvStore* store = server->store(partition);
    if (store != nullptr) {
      FLOCK_CHECK(store->Insert(key, value));
    }
  }
}

}  // namespace flock::txn

#endif  // FLOCK_TXN_SERVER_H_
