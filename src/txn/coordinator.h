// The transaction coordinator: OCC + 2PC + primary-backup replication
// (§8.5.1, Fig. 13), transport-agnostic.
//
// Phases for a transaction with read set R and write set W:
//   1. Execution  — RPC reads for R, RPC lock+read for W at the primaries;
//                   a failed lock aborts (unlocking what was acquired).
//   2. Validation — re-check the version of every R item (one-sided read in
//                   FlockTX; an RPC in the FaSST-like baseline); a changed or
//                   locked version aborts.
//   3. Logging    — send the new values to every replica of each W item's
//                   partition; replicas ACK to the coordinator.
//   4. Commit     — primaries install new values, bump versions, unlock.
//
// The "application update" is a deterministic read-modify-write (first 8
// bytes incremented), which lets tests verify end-to-end serializability by
// counting.
#ifndef FLOCK_TXN_COORDINATOR_H_
#define FLOCK_TXN_COORDINATOR_H_

#include <cstring>
#include <vector>

#include "src/txn/protocol.h"
#include "src/txn/transport.h"

namespace flock::txn {

struct TxRequest {
  std::vector<uint64_t> reads;
  std::vector<uint64_t> writes;  // read-modify-write keys
};

struct TxnStats {
  uint64_t committed = 0;
  uint64_t aborted_locks = 0;
  uint64_t aborted_validation = 0;
  uint64_t aborted_other = 0;

  uint64_t attempts() const {
    return committed + aborted_locks + aborted_validation + aborted_other;
  }
};

// How the coordinator reaches remote records:
//   kOcc            — the RPC protocol above, unchanged (default).
//   kOccOneSidedRead— same protocol, but read-set items whose record address
//                     is already cached are fetched with one fl_read pair
//                     (seqlock) instead of a kTxGet RPC; unknown or contended
//                     records fall back to the RPC, whose response teaches
//                     the address for next time.
//   kLockOneSided   — the write path goes one-sided too: write locks are
//                     CAS'd directly onto the version word (ALock-style
//                     try-lock; success doubles as validation, since the CAS
//                     only lands if the version is still what we read), new
//                     values are installed with fl_write, and the version
//                     bump+unlock is a second fl_write. Replication stays an
//                     RPC — replicas apply log records with their CPU.
// Both one-sided modes require transport_.SupportsOneSided(); otherwise they
// degrade to plain OCC.
enum class TxMode {
  kOcc,
  kOccOneSidedRead,
  kLockOneSided,
};

class TxCoordinator {
 public:
  TxCoordinator(TxTransport& transport, int num_servers, int replication,
                TxMode mode = TxMode::kOcc)
      : transport_(transport),
        num_servers_(num_servers),
        replication_(replication),
        mode_(mode) {}

  TxnStats& stats() { return stats_; }

  // True if the last ExecuteOnce failure was a *transport* failure (an RPC
  // timed out). After a timeout the outcome of in-flight operations is
  // unknown — locks or commits may still land — so the transaction must NOT
  // be retried as if it had aborted cleanly. FaSST treats such loss as a
  // machine failure; callers should abandon the transaction (§8.5.2's
  // "coroutines do not make progress" under loss).
  bool last_failure_was_transport() const { return transport_failure_; }

  // One attempt: true on commit.
  sim::Co<bool> ExecuteOnce(const TxRequest& request) {
    if (mode_ == TxMode::kLockOneSided && transport_.SupportsOneSided()) {
      co_return co_await ExecuteLockOnce(request);
    }
    transport_failure_ = false;
    // ---- Phase 1: execution ----
    const size_t nr = request.reads.size();
    const size_t nw = request.writes.size();
    std::vector<TxValueResp> read_values(nr);
    std::vector<bool> read_done(nr, false);

    // One-sided pre-pass: read-set records with a cached address are fetched
    // by fl_read; anything unknown or contended drops to the RPC below.
    const bool onesided_reads =
        mode_ == TxMode::kOccOneSidedRead && transport_.SupportsOneSided();
    if (onesided_reads) {
      for (size_t i = 0; i < nr; ++i) {
        const uint64_t key = request.reads[i];
        const int server = PartitionOf(key, num_servers_);
        if (!transport_.KnowsAddr(server, key)) {
          continue;
        }
        uint64_t version = 0;
        uint64_t version_addr = 0;
        const TxTransport::OsRead r = co_await transport_.ReadRecord(
            server, key, &version, &version_addr, read_values[i].value);
        if (r == TxTransport::OsRead::kError) {
          transport_failure_ = true;
          stats_.aborted_other += 1;
          co_return false;
        }
        if (r == TxTransport::OsRead::kOk) {
          read_values[i].ok = true;
          read_values[i].version = version;
          read_values[i].version_addr = version_addr;
          read_done[i] = true;
        }
      }
    }

    std::vector<TxCall> calls;
    std::vector<size_t> read_call_idx;  // read index served by calls[c]
    calls.reserve(nr + nw);
    for (size_t i = 0; i < nr; ++i) {
      if (read_done[i]) {
        continue;
      }
      TxCall call;
      call.server = PartitionOf(request.reads[i], num_servers_);
      call.rpc = kTxGet;
      call.SetReq(TxKeyReq{request.reads[i]});
      calls.push_back(call);
      read_call_idx.push_back(i);
    }
    const size_t n_read_calls = calls.size();
    for (size_t i = 0; i < nw; ++i) {
      TxCall call;
      call.server = PartitionOf(request.writes[i], num_servers_);
      call.rpc = kTxLockRead;
      call.SetReq(TxKeyReq{request.writes[i]});
      calls.push_back(call);
    }
    co_await transport_.CallAll(calls.data(), calls.size());

    std::vector<TxValueResp> write_values(nw);
    std::vector<size_t> locked;
    bool failed = false;
    for (size_t i = 0; i < calls.size(); ++i) {
      transport_failure_ |= !calls[i].ok;  // RPC itself timed out
    }
    for (size_t c = 0; c < n_read_calls; ++c) {
      const size_t i = read_call_idx[c];
      if (!calls[c].GetResp(&read_values[i]) || !read_values[i].ok) {
        failed = true;
      } else if (onesided_reads) {
        // The RPC response carries the record address: teach the cache.
        transport_.LearnAddr(PartitionOf(request.reads[i], num_servers_),
                             request.reads[i], read_values[i].version_addr);
      }
    }
    for (size_t i = 0; i < nw; ++i) {
      if (calls[n_read_calls + i].GetResp(&write_values[i]) &&
          write_values[i].ok) {
        locked.push_back(i);
      } else {
        failed = true;
      }
    }
    if (failed || transport_failure_) {
      if (!transport_failure_) {
        // Clean abort: release what we hold and let the caller retry.
        co_await Unlock(request, locked);
        stats_.aborted_locks += 1;
      } else {
        // A lock/read RPC timed out: in-flight state is unknown, so we can
        // neither unlock safely nor retry. Abandon (FaSST kills here).
        stats_.aborted_other += 1;
      }
      co_return false;
    }

    // ---- Phase 2: validation (skippable for single-read transactions) ----
    if (nr > 0 && (nw > 0 || nr > 1)) {
      bool all_valid = true;
      for (size_t i = 0; i < nr && all_valid; ++i) {
        bool valid = false;
        const bool ok = co_await transport_.Validate(
            PartitionOf(request.reads[i], num_servers_), request.reads[i],
            read_values[i].version_addr, read_values[i].version, &valid);
        transport_failure_ |= !ok;
        all_valid = ok && valid;
      }
      if (!all_valid) {
        if (!transport_failure_) {
          co_await Unlock(request, locked);
          stats_.aborted_validation += 1;
        } else {
          stats_.aborted_other += 1;
        }
        co_return false;
      }
    }

    if (nw == 0) {
      stats_.committed += 1;
      co_return true;  // read-only
    }

    // The application's deterministic update: increment the leading counter.
    std::vector<TxValueResp> new_values = write_values;
    for (size_t i = 0; i < nw; ++i) {
      uint64_t counter = 0;
      std::memcpy(&counter, new_values[i].value, 8);
      counter += 1;
      std::memcpy(new_values[i].value, &counter, 8);
    }

    // ---- Phase 3: logging to replicas ----
    if (replication_ > 1) {
      std::vector<TxCall> log_calls;
      for (size_t i = 0; i < nw; ++i) {
        const int partition = PartitionOf(request.writes[i], num_servers_);
        for (int r = 1; r < replication_; ++r) {
          TxCall call;
          call.server = (partition + r) % num_servers_;
          call.rpc = kTxReplicate;
          TxReplicateReq req;
          req.key = request.writes[i];
          req.version = (write_values[i].version & ~kv::kLockBit) + 2;
          std::memcpy(req.value, new_values[i].value, kTxMaxValue);
          call.SetReq(req);
          log_calls.push_back(call);
        }
      }
      co_await transport_.CallAll(log_calls.data(), log_calls.size());
      for (const TxCall& call : log_calls) {
        TxAckResp ack;
        if (!call.GetResp(&ack) || !ack.ok) {
          transport_failure_ |= !call.ok;
          if (!transport_failure_) {
            co_await Unlock(request, locked);  // clean replica refusal
          }
          stats_.aborted_other += 1;
          co_return false;
        }
      }
    }

    // ---- Phase 4: commit at the primaries ----
    std::vector<TxCall> commit_calls(nw);
    for (size_t i = 0; i < nw; ++i) {
      commit_calls[i].server = PartitionOf(request.writes[i], num_servers_);
      commit_calls[i].rpc = kTxCommit;
      TxCommitReq req;
      req.key = request.writes[i];
      std::memcpy(req.value, new_values[i].value, kTxMaxValue);
      commit_calls[i].SetReq(req);
    }
    co_await transport_.CallAll(commit_calls.data(), commit_calls.size());
    stats_.committed += 1;
    co_return true;
  }

  // Retries until commit; returns the number of attempts.
  sim::Co<int> ExecuteWithRetry(const TxRequest& request, int max_attempts = 100) {
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      if (co_await ExecuteOnce(request)) {
        co_return attempt;
      }
    }
    co_return -1;
  }

 private:
  // ---- TxMode::kLockOneSided: locks, installs and unlocks by one-sided ops.
  //
  // Phase 1a fetches every item (one-sided fast path with RPC fallback);
  // phase 1b CAS-locks each write's version word at its *fetched* version, so
  // acquisition doubles as write-set validation; phase 2 validates the read
  // set as usual; phase 3 logs to replicas over RPC; phase 4 installs the new
  // value with fl_write and releases the lock by fl_writing version+2. The
  // same-lane FIFO guarantees the value lands before the version word flips.
  sim::Co<bool> ExecuteLockOnce(const TxRequest& request) {
    transport_failure_ = false;
    const size_t nr = request.reads.size();
    const size_t nw = request.writes.size();

    // ---- Phase 1a: fetch ----
    std::vector<TxValueResp> read_values(nr);
    std::vector<TxValueResp> write_values(nw);
    for (size_t i = 0; i < nr; ++i) {
      if (!co_await FetchItem(request.reads[i], &read_values[i])) {
        stats_.aborted_other += 1;
        co_return false;
      }
    }
    for (size_t i = 0; i < nw; ++i) {
      if (!co_await FetchItem(request.writes[i], &write_values[i])) {
        stats_.aborted_other += 1;
        co_return false;
      }
    }

    // ---- Phase 1b: CAS-lock the write set ----
    std::vector<size_t> held;
    for (size_t i = 0; i < nw; ++i) {
      const int server = PartitionOf(request.writes[i], num_servers_);
      if (write_values[i].version & kv::kLockBit) {
        // The RPC fallback can return a record mid-write by someone else.
        // CASing expected|lock -> expected|lock would "succeed" without
        // owning anything, so treat a locked snapshot as a lock conflict.
        co_await ReleaseLocks(request, write_values, held);
        stats_.aborted_locks += 1;
        co_return false;
      }
      const TxTransport::OsLock r = co_await transport_.LockRecord(
          server, write_values[i].version_addr, write_values[i].version);
      if (r == TxTransport::OsLock::kAcquired) {
        held.push_back(i);
        continue;
      }
      if (r == TxTransport::OsLock::kError) {
        transport_failure_ = true;
        stats_.aborted_other += 1;  // lock state unknown: abandon
      } else {
        co_await ReleaseLocks(request, write_values, held);
        stats_.aborted_locks += 1;
      }
      co_return false;
    }

    // ---- Phase 2: validation (same skip rule as the RPC protocol) ----
    if (nr > 0 && (nw > 0 || nr > 1)) {
      bool all_valid = true;
      for (size_t i = 0; i < nr && all_valid; ++i) {
        bool valid = false;
        const bool ok = co_await transport_.Validate(
            PartitionOf(request.reads[i], num_servers_), request.reads[i],
            read_values[i].version_addr, read_values[i].version, &valid);
        transport_failure_ |= !ok;
        all_valid = ok && valid;
      }
      if (!all_valid) {
        if (!transport_failure_) {
          co_await ReleaseLocks(request, write_values, held);
          stats_.aborted_validation += 1;
        } else {
          stats_.aborted_other += 1;
        }
        co_return false;
      }
    }

    if (nw == 0) {
      stats_.committed += 1;
      co_return true;  // read-only
    }

    // The application's deterministic update: increment the leading counter.
    std::vector<TxValueResp> new_values = write_values;
    for (size_t i = 0; i < nw; ++i) {
      uint64_t counter = 0;
      std::memcpy(&counter, new_values[i].value, 8);
      counter += 1;
      std::memcpy(new_values[i].value, &counter, 8);
    }

    // ---- Phase 3: logging to replicas (RPC: replicas use their CPU) ----
    if (replication_ > 1) {
      std::vector<TxCall> log_calls;
      for (size_t i = 0; i < nw; ++i) {
        const int partition = PartitionOf(request.writes[i], num_servers_);
        for (int r = 1; r < replication_; ++r) {
          TxCall call;
          call.server = (partition + r) % num_servers_;
          call.rpc = kTxReplicate;
          TxReplicateReq req;
          req.key = request.writes[i];
          req.version = write_values[i].version + 2;
          std::memcpy(req.value, new_values[i].value, kTxMaxValue);
          call.SetReq(req);
          log_calls.push_back(call);
        }
      }
      co_await transport_.CallAll(log_calls.data(), log_calls.size());
      for (const TxCall& call : log_calls) {
        TxAckResp ack;
        if (!call.GetResp(&ack) || !ack.ok) {
          transport_failure_ |= !call.ok;
          if (!transport_failure_) {
            co_await ReleaseLocks(request, write_values, held);
          }
          stats_.aborted_other += 1;
          co_return false;
        }
      }
    }

    // ---- Phase 4: one-sided install + unlock ----
    for (size_t i = 0; i < nw; ++i) {
      const int server = PartitionOf(request.writes[i], num_servers_);
      if (!co_await transport_.WriteRecordValue(
              server, write_values[i].version_addr, new_values[i].value,
              kTxMaxValue) ||
          !co_await transport_.WriteRecordVersion(
              server, write_values[i].version_addr,
              write_values[i].version + 2)) {
        // The install may or may not have landed: abandon, as with an RPC
        // timeout mid-commit.
        transport_failure_ = true;
        stats_.aborted_other += 1;
        co_return false;
      }
    }
    stats_.committed += 1;
    co_return true;
  }

  // One item of the lock-mode read phase: fl_read when the address is known,
  // else a kTxGet RPC whose response teaches the address for next time.
  sim::Co<bool> FetchItem(uint64_t key, TxValueResp* out) {
    const int server = PartitionOf(key, num_servers_);
    if (transport_.KnowsAddr(server, key)) {
      uint64_t version = 0;
      uint64_t version_addr = 0;
      const TxTransport::OsRead r = co_await transport_.ReadRecord(
          server, key, &version, &version_addr, out->value);
      if (r == TxTransport::OsRead::kOk) {
        out->ok = true;
        out->version = version;
        out->version_addr = version_addr;
        co_return true;
      }
      if (r == TxTransport::OsRead::kError) {
        transport_failure_ = true;
        co_return false;
      }
      // kNoAddr / kContended: the RPC path serializes against writers.
    }
    TxCall call;
    call.server = server;
    call.rpc = kTxGet;
    call.SetReq(TxKeyReq{key});
    co_await transport_.CallAll(&call, 1);
    transport_failure_ |= !call.ok;
    if (!call.GetResp(out) || !out->ok) {
      co_return false;
    }
    transport_.LearnAddr(server, key, out->version_addr);
    co_return true;
  }

  // Undo for lock-mode aborts: fl_write the *original* (even) version back
  // onto each held lock word, clearing the lock bit without bumping.
  sim::Co<void> ReleaseLocks(const TxRequest& request,
                             const std::vector<TxValueResp>& write_values,
                             const std::vector<size_t>& held) {
    for (const size_t i : held) {
      const int server = PartitionOf(request.writes[i], num_servers_);
      if (!co_await transport_.WriteRecordVersion(
              server, write_values[i].version_addr, write_values[i].version)) {
        transport_failure_ = true;  // lock may be stuck: abandon retries
      }
    }
  }

  sim::Co<void> Unlock(const TxRequest& request, const std::vector<size_t>& locked) {
    if (locked.empty()) {
      co_return;
    }
    std::vector<TxCall> calls(locked.size());
    for (size_t i = 0; i < locked.size(); ++i) {
      const uint64_t key = request.writes[locked[i]];
      calls[i].server = PartitionOf(key, num_servers_);
      calls[i].rpc = kTxUnlock;
      calls[i].SetReq(TxKeyReq{key});
    }
    co_await transport_.CallAll(calls.data(), calls.size());
  }

  TxTransport& transport_;
  const int num_servers_;
  const int replication_;
  const TxMode mode_;
  TxnStats stats_;
  bool transport_failure_ = false;
};

}  // namespace flock::txn

#endif  // FLOCK_TXN_COORDINATOR_H_
