// The transaction coordinator: OCC + 2PC + primary-backup replication
// (§8.5.1, Fig. 13), transport-agnostic.
//
// Phases for a transaction with read set R and write set W:
//   1. Execution  — RPC reads for R, RPC lock+read for W at the primaries;
//                   a failed lock aborts (unlocking what was acquired).
//   2. Validation — re-check the version of every R item (one-sided read in
//                   FlockTX; an RPC in the FaSST-like baseline); a changed or
//                   locked version aborts.
//   3. Logging    — send the new values to every replica of each W item's
//                   partition; replicas ACK to the coordinator.
//   4. Commit     — primaries install new values, bump versions, unlock.
//
// The "application update" is a deterministic read-modify-write (first 8
// bytes incremented), which lets tests verify end-to-end serializability by
// counting.
#ifndef FLOCK_TXN_COORDINATOR_H_
#define FLOCK_TXN_COORDINATOR_H_

#include <cstring>
#include <vector>

#include "src/txn/protocol.h"
#include "src/txn/transport.h"

namespace flock::txn {

struct TxRequest {
  std::vector<uint64_t> reads;
  std::vector<uint64_t> writes;  // read-modify-write keys
};

struct TxnStats {
  uint64_t committed = 0;
  uint64_t aborted_locks = 0;
  uint64_t aborted_validation = 0;
  uint64_t aborted_other = 0;

  uint64_t attempts() const {
    return committed + aborted_locks + aborted_validation + aborted_other;
  }
};

class TxCoordinator {
 public:
  TxCoordinator(TxTransport& transport, int num_servers, int replication)
      : transport_(transport), num_servers_(num_servers), replication_(replication) {}

  TxnStats& stats() { return stats_; }

  // True if the last ExecuteOnce failure was a *transport* failure (an RPC
  // timed out). After a timeout the outcome of in-flight operations is
  // unknown — locks or commits may still land — so the transaction must NOT
  // be retried as if it had aborted cleanly. FaSST treats such loss as a
  // machine failure; callers should abandon the transaction (§8.5.2's
  // "coroutines do not make progress" under loss).
  bool last_failure_was_transport() const { return transport_failure_; }

  // One attempt: true on commit.
  sim::Co<bool> ExecuteOnce(const TxRequest& request) {
    transport_failure_ = false;
    // ---- Phase 1: execution ----
    const size_t nr = request.reads.size();
    const size_t nw = request.writes.size();
    std::vector<TxCall> calls(nr + nw);
    for (size_t i = 0; i < nr; ++i) {
      calls[i].server = PartitionOf(request.reads[i], num_servers_);
      calls[i].rpc = kTxGet;
      calls[i].SetReq(TxKeyReq{request.reads[i]});
    }
    for (size_t i = 0; i < nw; ++i) {
      calls[nr + i].server = PartitionOf(request.writes[i], num_servers_);
      calls[nr + i].rpc = kTxLockRead;
      calls[nr + i].SetReq(TxKeyReq{request.writes[i]});
    }
    co_await transport_.CallAll(calls.data(), calls.size());

    std::vector<TxValueResp> read_values(nr);
    std::vector<TxValueResp> write_values(nw);
    std::vector<size_t> locked;
    bool failed = false;
    for (size_t i = 0; i < nr + nw; ++i) {
      transport_failure_ |= !calls[i].ok;  // RPC itself timed out
    }
    for (size_t i = 0; i < nr; ++i) {
      if (!calls[i].GetResp(&read_values[i]) || !read_values[i].ok) {
        failed = true;
      }
    }
    for (size_t i = 0; i < nw; ++i) {
      if (calls[nr + i].GetResp(&write_values[i]) && write_values[i].ok) {
        locked.push_back(i);
      } else {
        failed = true;
      }
    }
    if (failed || transport_failure_) {
      if (!transport_failure_) {
        // Clean abort: release what we hold and let the caller retry.
        co_await Unlock(request, locked);
        stats_.aborted_locks += 1;
      } else {
        // A lock/read RPC timed out: in-flight state is unknown, so we can
        // neither unlock safely nor retry. Abandon (FaSST kills here).
        stats_.aborted_other += 1;
      }
      co_return false;
    }

    // ---- Phase 2: validation (skippable for single-read transactions) ----
    if (nr > 0 && (nw > 0 || nr > 1)) {
      bool all_valid = true;
      for (size_t i = 0; i < nr && all_valid; ++i) {
        bool valid = false;
        const bool ok = co_await transport_.Validate(
            PartitionOf(request.reads[i], num_servers_), request.reads[i],
            read_values[i].version_addr, read_values[i].version, &valid);
        transport_failure_ |= !ok;
        all_valid = ok && valid;
      }
      if (!all_valid) {
        if (!transport_failure_) {
          co_await Unlock(request, locked);
          stats_.aborted_validation += 1;
        } else {
          stats_.aborted_other += 1;
        }
        co_return false;
      }
    }

    if (nw == 0) {
      stats_.committed += 1;
      co_return true;  // read-only
    }

    // The application's deterministic update: increment the leading counter.
    std::vector<TxValueResp> new_values = write_values;
    for (size_t i = 0; i < nw; ++i) {
      uint64_t counter = 0;
      std::memcpy(&counter, new_values[i].value, 8);
      counter += 1;
      std::memcpy(new_values[i].value, &counter, 8);
    }

    // ---- Phase 3: logging to replicas ----
    if (replication_ > 1) {
      std::vector<TxCall> log_calls;
      for (size_t i = 0; i < nw; ++i) {
        const int partition = PartitionOf(request.writes[i], num_servers_);
        for (int r = 1; r < replication_; ++r) {
          TxCall call;
          call.server = (partition + r) % num_servers_;
          call.rpc = kTxReplicate;
          TxReplicateReq req;
          req.key = request.writes[i];
          req.version = (write_values[i].version & ~kv::kLockBit) + 2;
          std::memcpy(req.value, new_values[i].value, kTxMaxValue);
          call.SetReq(req);
          log_calls.push_back(call);
        }
      }
      co_await transport_.CallAll(log_calls.data(), log_calls.size());
      for (const TxCall& call : log_calls) {
        TxAckResp ack;
        if (!call.GetResp(&ack) || !ack.ok) {
          transport_failure_ |= !call.ok;
          if (!transport_failure_) {
            co_await Unlock(request, locked);  // clean replica refusal
          }
          stats_.aborted_other += 1;
          co_return false;
        }
      }
    }

    // ---- Phase 4: commit at the primaries ----
    std::vector<TxCall> commit_calls(nw);
    for (size_t i = 0; i < nw; ++i) {
      commit_calls[i].server = PartitionOf(request.writes[i], num_servers_);
      commit_calls[i].rpc = kTxCommit;
      TxCommitReq req;
      req.key = request.writes[i];
      std::memcpy(req.value, new_values[i].value, kTxMaxValue);
      commit_calls[i].SetReq(req);
    }
    co_await transport_.CallAll(commit_calls.data(), commit_calls.size());
    stats_.committed += 1;
    co_return true;
  }

  // Retries until commit; returns the number of attempts.
  sim::Co<int> ExecuteWithRetry(const TxRequest& request, int max_attempts = 100) {
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      if (co_await ExecuteOnce(request)) {
        co_return attempt;
      }
    }
    co_return -1;
  }

 private:
  sim::Co<void> Unlock(const TxRequest& request, const std::vector<size_t>& locked) {
    if (locked.empty()) {
      co_return;
    }
    std::vector<TxCall> calls(locked.size());
    for (size_t i = 0; i < locked.size(); ++i) {
      const uint64_t key = request.writes[locked[i]];
      calls[i].server = PartitionOf(key, num_servers_);
      calls[i].rpc = kTxUnlock;
      calls[i].SetReq(TxKeyReq{key});
    }
    co_await transport_.CallAll(calls.data(), calls.size());
  }

  TxTransport& transport_;
  const int num_servers_;
  const int replication_;
  TxnStats stats_;
  bool transport_failure_ = false;
};

}  // namespace flock::txn

#endif  // FLOCK_TXN_COORDINATOR_H_
