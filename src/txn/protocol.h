// Wire protocol between transaction coordinators and KV servers.
//
// Shared by FlockTX (coordinators over Flock connections) and the FaSST-like
// baseline (coordinators over UD RPC): the transaction protocol is identical
// (OCC + 2PC + primary-backup, §8.5.1); only the transport and the validation
// mechanism differ (one-sided reads vs RPCs).
#ifndef FLOCK_TXN_PROTOCOL_H_
#define FLOCK_TXN_PROTOCOL_H_

#include <cstdint>

#include "src/kv/kvstore.h"

namespace flock::txn {

// RPC ids.
inline constexpr uint16_t kTxGet = 10;          // execution: read-set read
inline constexpr uint16_t kTxLockRead = 11;     // execution: write-set lock+read
inline constexpr uint16_t kTxCommit = 12;       // commit: install + unlock
inline constexpr uint16_t kTxUnlock = 13;       // abort: release lock
inline constexpr uint16_t kTxReplicate = 14;    // logging: apply at a replica
inline constexpr uint16_t kTxGetVersion = 15;   // validation by RPC (FaSST path)

inline constexpr uint32_t kTxMaxValue = 40;  // bytes (FaSST-style row payloads)

struct TxKeyReq {
  uint64_t key = 0;
};

struct TxValueResp {
  uint8_t ok = 0;
  uint64_t version = 0;
  uint64_t version_addr = 0;  // for one-sided validation (FlockTX)
  uint8_t value[kTxMaxValue] = {};
};

struct TxCommitReq {
  uint64_t key = 0;
  uint8_t value[kTxMaxValue] = {};
};

struct TxReplicateReq {
  uint64_t key = 0;
  uint64_t version = 0;  // version the primary will install
  uint8_t value[kTxMaxValue] = {};
};

struct TxAckResp {
  uint8_t ok = 0;
};

struct TxVersionResp {
  uint8_t ok = 0;
  uint64_t version = 0;
};

// Key partitioning: primary = hash(key) % num_partitions; replicas follow.
inline int PartitionOf(uint64_t key, int num_partitions) {
  return static_cast<int>(kv::KeyHash(key ^ 0x5bd1e995) % static_cast<uint64_t>(num_partitions));
}

}  // namespace flock::txn

#endif  // FLOCK_TXN_PROTOCOL_H_
