// Application-facing primitives shared by every RPC stack: registered
// threads, RPC handlers, and the awaitable handles for outstanding RPCs and
// one-sided memory operations. This is the bottom of the flock module stack —
// it knows nothing about lanes, scheduling or the runtime.
#ifndef FLOCK_FLOCK_THREAD_H_
#define FLOCK_FLOCK_THREAD_H_

#include <cstdint>
#include <functional>

#include "src/common/pool.h"
#include "src/common/rand.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/sim/cpu.h"
#include "src/sim/sync.h"
#include "src/verbs/types.h"

namespace flock {

// An RPC handler runs on a server dispatcher core: consume `req`, produce a
// response in `resp` (capacity `resp_cap`), return its length, and report the
// application CPU it consumed via `cpu_cost` (simulated time).
using RpcHandler = std::function<uint32_t(const uint8_t* req, uint32_t req_len,
                                          uint8_t* resp, uint32_t resp_cap,
                                          Nanos* cpu_cost)>;

// A registered application thread. Threads are pinned to a simulated core and
// carry the per-thread state the paper's schedulers consume.
class FlockThread {
 public:
  FlockThread(int node, uint16_t id, sim::Core* core, uint64_t seed)
      : node_(node), id_(id), core_(core), rng_(seed) {}

  int node() const { return node_; }
  uint16_t id() const { return id_; }
  sim::Core& core() { return *core_; }
  Rng& rng() { return rng_; }

  uint32_t NextSeq() { return next_seq_++; }

  // Statistics for sender-side thread scheduling (§5.2, Algorithm 1).
  WindowedMedian<uint32_t, 32> req_size_median;
  IntervalCounter reqs_sent;
  IntervalCounter bytes_sent;
  int outstanding = 0;
  // 8-byte landing slot for atomic results (allocated by CreateThread).
  uint64_t atomic_slot = 0;

 private:
  int node_;
  uint16_t id_;
  sim::Core* core_;
  Rng rng_;
  uint32_t next_seq_ = 1;
};

// An outstanding RPC awaiting its response. Allocated from the client
// runtime's object pool (release with Connection::FreeRpc); the response
// payload stays inline for payloads up to SmallBuf's capacity, so a
// steady-state small RPC touches no general-purpose allocator.
struct PendingRpc {
  sim::OneShotEvent done_event;
  bool ok = true;
  uint16_t rpc_id = 0;
  uint32_t seq = 0;
  uint16_t thread_id = 0;
  Nanos submitted_at = 0;
  Nanos completed_at = 0;
  SmallBuf<128> response;

  // Scatter-gather path (DESIGN.md §16): optional caller-owned response
  // destination. When set, the dispatcher writes response bytes straight
  // into it (no SmallBuf heap block for MB responses) and records the final
  // length in response_len. Segmented responses additionally track the
  // accumulation cursor and the lane the current chunk train arrives on, so
  // a duplicate train from a pre-retry incarnation on another lane is
  // ignored rather than interleaved.
  uint8_t* response_dst = nullptr;
  uint32_t response_cap = 0;
  uint32_t response_len = 0;
  uint32_t resp_assembled = 0;
  const void* resp_src = nullptr;

  // Failure handling (populated only when FlockConfig::rpc_timeout > 0):
  // the retained request payload for retransmission, the retry deadline,
  // the lane currently accounting this RPC's in-flight slot, and the number
  // of retries attempted so far.
  SmallBuf<128> request;
  Nanos deadline = 0;  // 0 = no timeout armed
  uint32_t lane_index = 0;
  uint16_t retries = 0;

  bool done() const { return done_event.done(); }
};

// An outstanding one-sided memory/atomic operation. Lives in the submitting
// coroutine's frame; `next` links it into the lane's combining queue.
struct PendingMemOp {
  sim::OneShotEvent done_event;
  verbs::WcStatus status = verbs::WcStatus::kSuccess;
  verbs::SendWr wr;  // staged work request (leader links and posts, §6)
  sim::Core* owner_core = nullptr;
  PendingMemOp* next = nullptr;
};

// Remote memory region attached for one-sided operations (fl_attach_mreg).
struct RemoteMr {
  uint64_t addr = 0;
  uint64_t length = 0;
  uint32_t rkey = 0;
};

}  // namespace flock

#endif  // FLOCK_FLOCK_THREAD_H_
