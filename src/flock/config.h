// Tunables for the Flock runtime. Defaults follow §5–§8 of the paper.
#ifndef FLOCK_FLOCK_CONFIG_H_
#define FLOCK_FLOCK_CONFIG_H_

#include <cstdint>

#include "src/common/units.h"

namespace flock {

struct FlockConfig {
  // ---- receiver-side QP scheduling (§5.1) ----
  // Maximum QPs the server keeps active; 256 avoids RNIC cache thrashing
  // (chosen from Fig. 2(a), §8.1).
  uint32_t max_active_qps = 256;
  // Credits granted per QP at bootstrap and per renewal (§5.1, default 32).
  uint32_t credits = 32;
  // A leader requests renewal once half the credits are consumed.
  uint32_t credit_renew_threshold = 16;
  // How often the server's QP scheduler redistributes active QPs.
  Nanos qp_sched_interval = 200 * kMicrosecond;

  // ---- sender-side thread scheduling (§5.2) ----
  Nanos thread_sched_interval = 500 * kMicrosecond;
  bool sender_thread_scheduling = true;

  // ---- Flock synchronization (§4.2) ----
  // Bound on requests coalesced into one message (leader-progress bound).
  uint32_t max_coalesce = 16;
  // Set false to ablate coalescing (Fig. 10): every request is its own
  // message even when the QP is shared.
  bool coalescing = true;
  // Selective signaling: 1 CQE per this many posted writes (§7).
  uint32_t signal_interval = 16;

  // ---- rings and payload bounds (§4.1) ----
  uint32_t ring_bytes = 256 * 1024;
  // Largest single RPC payload (request or response).
  uint32_t max_payload = 8 * 1024;

  // Number of QPs (lanes) created per connection handle; by convention one
  // per application thread, capped here.
  uint32_t max_lanes_per_connection = 64;

  // Response-dispatcher threads per client node (§4.3: one dispatcher can
  // serve many QPs).
  int response_dispatchers = 1;

  // Server-side execution model (§4.3): 0 = the request dispatchers execute
  // RPC handlers inline; N > 0 = dispatchers only detect messages and hand
  // gathered batches to an application-managed pool of N RPC workers running
  // on the cores above the dispatchers'.
  int server_workers = 0;

  // ---- failure handling (§7) ----
  // Per-RPC timeout before a retry is attempted; exponential backoff doubles
  // it per attempt. 0 disables timeouts/retries entirely: no watchdog proc is
  // spawned, so with fault injection unarmed the simulation trace stays
  // bit-identical to a build without failure handling.
  Nanos rpc_timeout = 0;
  // Retries before an RPC gives up and surfaces ok=false to the caller.
  uint32_t max_retries = 3;

  // ---- connection control plane (DESIGN.md §10) ----
  // Reconnect quarantined lanes through the control plane: a per-connection
  // daemon requests a fresh QP pair, resyncs ring state and un-quarantines.
  // Requires rpc_timeout > 0 (in-flight RPCs on the dead QP recover via the
  // retry watchdog). Off by default so fault-free traces stay bit-identical.
  bool lane_reconnect = false;
  // Delay between reconnect attempts for a quarantined lane; doubles per
  // consecutive failure (capped) while the server keeps rejecting.
  Nanos reconnect_backoff = 50 * kMicrosecond;
  // Simulated round-trip of one out-of-band control-plane exchange (the
  // RDMA-CM/TCP side channel, far slower than the data path).
  Nanos ctrl_rtt = 5 * kMicrosecond;

  // ---- connection-storm control plane (DESIGN.md §13) ----
  // All three default off: fault-free traces stay bit-identical. They only
  // take effect on the asynchronous connect path (ConnectAsync /
  // CloseConnection); the synchronous setup-phase Connect ignores them.
  //
  // Reuse lanes torn down by Leave/retire/close: the QP is ResetQp-recycled
  // and the rings/MRs/slots are harvested into a per-node shell pool that the
  // next Connect draws from (qp_reset instead of qp_create per lane).
  bool qp_recycling = false;
  // Deferred lane bring-up: ConnectAsync materializes only lane 0 eagerly;
  // further lanes appear on first use (when a second thread maps onto the
  // handle), via the AddLane handshake.
  bool lazy_lanes = false;
  // Handshake piggybacking: ConnectAsync returns without the out-of-band
  // exchange; the ConnectRequest rides with the first RPC's credit bootstrap
  // (no ctrl_rtt on the time-to-first-RPC path).
  bool connect_piggyback = false;

  // ---- elastic lane scaling (DESIGN.md §10) ----
  // Grow/shrink the per-handle lane set from the observed median coalescing
  // degree. Off by default (zero new procs, traces untouched).
  bool elastic_lanes = false;
  Nanos elastic_interval = 1 * kMillisecond;
  // Median coalescing degree at or above which a lane is added (the lanes
  // are contended: more of the combining bound is being used than intended).
  uint32_t elastic_grow_degree = 12;
  // Median degree at or below which a lane is retired (requests rarely
  // coalesce: the handle holds more QPs than its offered load needs).
  uint32_t elastic_shrink_degree = 2;
  // Never shrink below this many non-retired lanes.
  uint32_t min_lanes = 1;

  // ---- multi-tenant service layer (DESIGN.md §15) ----
  // Master switch for tenancy enforcement: admission control at handshake,
  // the weighted-fair credit layer in the receiver scheduler, byte quotas at
  // batch-packing time, and the misbehaving-tenant throttle. Off by default:
  // no registry lookups, no new events, traces bit-identical. Tenant
  // policies are registered on the cluster's ControlPlane (RegisterTenant);
  // the identity a client presents is per-connection (fl_connect's tenant
  // argument), not per-config.
  bool tenancy = false;

  // ---- scatter-gather payload path & segmentation (DESIGN.md §16) ----
  // Master switch: payloads above this many bytes travel as a train of
  // segment chunks (wire::SegMark) instead of one inline request, letting
  // max_payload exceed the ring's single-message bound (ring_bytes / 2).
  // 0 = segmentation off — no chunking, no reassembly state, no ctrl-slot
  // head reports; traces stay bit-identical to the pre-segmentation build.
  // When non-zero it must be set identically on both ends of a connection.
  uint32_t segment_threshold = 0;
  // On-wire bytes per chunk. Small RPCs from other threads coalesce between
  // chunks (Alg. 1 packs by size), so this bounds head-of-line blocking the
  // same way the MTU does for a NIC.
  uint32_t segment_chunk_bytes = 8 * 1024;
  // Bounded server-side reassembly pool: concurrent partially-received
  // extents per server beyond this are dropped (the sender's watchdog
  // retransmits). Buffers are lazily grown to max_payload and then reused.
  uint32_t reassembly_entries = 16;
  // Orphaned partials (their lane died mid-extent) are reclaimed after this
  // long without progress; 0 derives 2 * rpc_timeout, or 1 ms without a
  // watchdog.
  Nanos reassembly_timeout = 0;
};

}  // namespace flock

#endif  // FLOCK_FLOCK_CONFIG_H_
