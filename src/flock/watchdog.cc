#include "src/flock/watchdog.h"

#include <algorithm>
#include <limits>

#include "src/flock/combine.h"

namespace flock {
namespace internal {

Nanos WatchdogTick(Nanos rpc_timeout) {
  return std::max<Nanos>(rpc_timeout / 4, kMicrosecond);
}

Nanos RetryBackoff(Nanos rpc_timeout, uint32_t retries) {
  const uint32_t shift = std::min<uint32_t>(retries, 20);
  return rpc_timeout <= (std::numeric_limits<Nanos>::max() >> (shift + 1))
             ? rpc_timeout << shift
             : std::numeric_limits<Nanos>::max() / 2;
}

sim::Proc Watchdog::Run(NodeEnv& env, ClientState& client) {
  const Nanos tick = WatchdogTick(env.config->rpc_timeout);
  for (;;) {
    co_await sim::Delay(env.sim(), tick);
    const Nanos now = env.sim().Now();
    for (ClientConnState* conn : client.conns) {
      // Collect first: Retry/Fail mutate the maps ForEach walks.
      scratch.clear();
      for (auto& map : conn->pending) {
        map.ForEach([&](uint32_t, PendingRpc* rpc) {
          if (rpc->deadline > 0 && now >= rpc->deadline) {
            scratch.push_back(rpc);
          }
        });
      }
      for (PendingRpc* rpc : scratch) {
        if (rpc->retries >= env.config->max_retries) {
          FailPendingRpc(*conn, rpc);
        } else {
          RetryPendingRpc(*conn, rpc);
        }
      }
    }
  }
}

void RetryPendingRpc(ClientConnState& conn, PendingRpc* rpc) {
  rpc->retries += 1;
  const Nanos backoff = RetryBackoff(conn.env->config->rpc_timeout, rpc->retries);
  rpc->deadline = conn.env->sim().Now() + backoff;
  conn.client->stats.retries += 1;

  FlockThread& thread = *conn.client->threads[rpc->thread_id];
  // Restage on the thread's current lane (LaneFor routes around quarantined
  // lanes once the thread drains). The server matches responses globally by
  // (thread, seq), so a retry on a different lane still completes this RPC.
  ClientLane& old_lane = *conn.lanes[rpc->lane_index];
  ClientLane& lane = LaneFor(conn, thread);
  if (&lane != &old_lane) {
    old_lane.inflight -= std::min<uint64_t>(old_lane.inflight, 1);
    lane.inflight += 1;
    rpc->lane_index = lane.index;
  }
  // A timeout hints that an unacked control message may have been lost; let
  // the next pump pass re-request credit renewal (duplicates are harmless).
  lane.renew_in_flight = false;

  // The caller's original buffer is long gone; restage from the retained
  // copy. Each PendingSend owns its bytes (`retained`) so the watchdog never
  // aliases the PendingRpc, which may itself be retried again or freed while
  // chunks are still queued.
  const FlockConfig& config = *conn.env->config;
  const uint32_t len = rpc->request.size();
  const bool segmented =
      config.segment_threshold > 0 && len > config.segment_threshold;
  const uint32_t chunk = segmented ? SegmentChunkBytes(config) : len;
  uint32_t offset = 0;
  do {
    const uint32_t clen = segmented ? std::min(chunk, len - offset) : len;
    PendingSend* ps = conn.client->send_pool.New();
    if (segmented) {
      const wire::SegMark mark =
          offset == 0 ? wire::SegMark::kFirst
                      : (offset + clen == len ? wire::SegMark::kLast
                                              : wire::SegMark::kMiddle);
      ps->meta.data_len = wire::PackSegLen(mark, clen);
    } else {
      ps->meta.data_len = len;
    }
    ps->meta.thread_id = rpc->thread_id;
    ps->meta.rpc_id = rpc->rpc_id;
    ps->meta.seq = rpc->seq;
    ps->owner_core = &thread.core();
    ps->retained.Assign(rpc->request.data() + offset, clen);
    ps->payload = PayloadRef(ps->retained.data(), clen);
    ps->copied = true;  // payload staged right here; no follower copy phase
    if (lane.combine_tail != nullptr) {
      lane.combine_tail->next = ps;
    } else {
      lane.combine_head = ps;
    }
    lane.combine_tail = ps;
    offset += clen;
  } while (offset < len);
  WakePump(conn, lane);
}

void FailPendingRpc(ClientConnState& conn, PendingRpc* rpc) {
  PendingRpc* taken = conn.pending[rpc->thread_id].Take(rpc->seq);
  FLOCK_CHECK(taken == rpc);
  conn.client->stats.failed_rpcs += 1;
  ClientLane& lane = *conn.lanes[rpc->lane_index];
  lane.inflight -= std::min<uint64_t>(lane.inflight, 1);
  FlockThread& thread = *conn.client->threads[rpc->thread_id];
  if (thread.outstanding > 0) {
    thread.outstanding -= 1;
  }
  rpc->ok = false;
  rpc->deadline = 0;
  rpc->completed_at = conn.env->sim().Now();
  rpc->done_event.Fire(conn.env->sim());
}

}  // namespace internal
}  // namespace flock
