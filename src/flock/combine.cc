#include "src/flock/combine.h"

#include <algorithm>
#include <vector>

#include "src/ctrl/control_plane.h"
#include "src/flock/sched/receiver.h"

namespace flock {
namespace internal {
namespace {

// Stages one oversized payload as a SegMark chunk train (DESIGN.md §16).
// Every chunk is an ordinary PendingSend through the TCQ: other threads'
// small requests coalesce between chunks (Alg. 1 packs by the chunk-sized
// medians), and the per-message credit, byte-quota and tenant accounting
// charge each chunk like any message. The caller blocks until the final
// chunk is on the wire — the lane is FIFO, so the earlier chunks are out by
// then too, and the payload slices (caller memory) stay valid throughout.
sim::Co<void> StageSegmented(ClientConnState& conn, FlockThread& thread,
                             ClientLane& lane, PendingRpc* rpc,
                             PayloadRef payload) {
  const FlockConfig& config = *conn.env->config;
  const sim::CostModel& cost = conn.env->cost();
  const uint32_t chunk = SegmentChunkBytes(config);
  const uint32_t len = payload.size();
  bool sent = false;
  uint32_t offset = 0;
  while (offset < len) {
    const uint32_t clen = std::min(chunk, len - offset);
    const bool last = offset + clen == len;
    PendingSend* ps = conn.client->send_pool.New();
    ps->meta.data_len = wire::PackSegLen(
        offset == 0 ? wire::SegMark::kFirst
                    : (last ? wire::SegMark::kLast : wire::SegMark::kMiddle),
        clen);
    ps->meta.thread_id = thread.id();
    ps->meta.rpc_id = rpc->rpc_id;
    ps->meta.seq = rpc->seq;
    ps->owner_core = &thread.core();
    ps->payload = payload.Sub(offset, clen);
    // Chunks are the on-wire unit the sender scheduler sees.
    thread.req_size_median.Record(clen);
    co_await thread.core().Work(cost.cpu_atomic_rmw +
                                cost.cpu_cacheline_transfer);
    if (lane.combine_tail != nullptr) {
      lane.combine_tail->next = ps;
    } else {
      lane.combine_head = ps;
    }
    lane.combine_tail = ps;
    WakePump(conn, lane);
    if (last) {
      ps->sent_flag = &sent;
      ps->sent_cond = lane.sent_cond.get();
    }
    co_await thread.core().Work(cost.MemcpyCost(clen + wire::kMetaBytes));
    if (ps->dropped) {
      // Lane quarantined mid-copy (see StageRpc); the watchdog retransmits
      // the whole extent from rpc->request.
      conn.client->send_pool.Delete(ps);
    } else {
      ps->copied = true;
      lane.copy_done->NotifyAll();
    }
    offset += clen;
  }
  while (!sent) {
    co_await lane.sent_cond->Wait();
  }
}

}  // namespace

sim::Co<PendingRpc*> StageRpc(ClientConnState& conn, FlockThread& thread,
                              uint16_t rpc_id, PayloadRef payload,
                              uint8_t* response_dst, uint32_t response_cap) {
  const FlockConfig& config = *conn.env->config;
  const sim::CostModel& cost = conn.env->cost();
  const uint32_t len = payload.size();
  FLOCK_CHECK_LE(len, config.max_payload);

  // Deferred connection setup (DESIGN.md §13): the condition object exists
  // only when lazy_lanes or connect_piggyback is on, so default builds pay
  // one null check here and nothing else.
  if (conn.setup_cond != nullptr) {
    co_await EnsureLaneSetup(conn, thread);
    if (conn.closed) {
      // The deferred handshake was refused (tenancy admission control) or the
      // handle was closed while we waited: fail the RPC immediately instead
      // of parking it on a lane that will never be granted credits.
      PendingRpc* failed = conn.client->rpc_pool.New();
      failed->rpc_id = rpc_id;
      failed->seq = thread.NextSeq();
      failed->thread_id = thread.id();
      failed->submitted_at = conn.env->sim().Now();
      failed->completed_at = failed->submitted_at;
      failed->ok = false;
      conn.client->stats.failed_rpcs += 1;
      failed->done_event.Fire(conn.env->sim());
      co_return failed;
    }
  }

  ClientLane& lane = LaneFor(conn, thread);

  PendingRpc* rpc = conn.client->rpc_pool.New();
  rpc->rpc_id = rpc_id;
  rpc->seq = thread.NextSeq();
  rpc->thread_id = thread.id();
  rpc->submitted_at = conn.env->sim().Now();
  rpc->lane_index = lane.index;
  rpc->response_dst = response_dst;
  rpc->response_cap = response_cap;
  rpc->response_len = 0;
  rpc->resp_assembled = 0;
  rpc->resp_src = nullptr;
  if (config.rpc_timeout > 0) {
    // Failure handling armed: retain the payload for retransmission and set
    // the first deadline. With timeouts off, neither field is ever read.
    rpc->deadline = rpc->submitted_at + config.rpc_timeout;
    payload.CopyTo(rpc->request.Resize(len));
  }
  if (conn.pending.size() <= thread.id()) {
    conn.pending.resize(size_t{thread.id()} + 1);
  }
  conn.pending[thread.id()].Insert(rpc->seq, rpc);

  thread.outstanding += 1;
  lane.inflight += 1;
  thread.reqs_sent.Add(1);
  thread.bytes_sent.Add(len);

  // Oversized payloads travel as a SegMark chunk train (DESIGN.md §16);
  // everything below the threshold stays on the unchanged inline path.
  if (config.segment_threshold > 0 && len > config.segment_threshold) {
    co_await StageSegmented(conn, thread, lane, rpc, payload);
    co_return rpc;
  }
  thread.req_size_median.Record(len);

  PendingSend* ps = conn.client->send_pool.New();
  ps->meta.data_len = len;
  ps->meta.thread_id = thread.id();
  ps->meta.rpc_id = rpc_id;
  ps->meta.seq = rpc->seq;
  ps->owner_core = &thread.core();
  // Zero-copy: the slices point at caller memory, which outlives the gather
  // because this coroutine blocks on sent_flag below.
  ps->payload = payload;

  // TCQ enqueue: one atomic swap + a cacheline transfer makes the request
  // visible to the (current or future) leader...
  co_await thread.core().Work(cost.cpu_atomic_rmw + cost.cpu_cacheline_transfer);
  PendingSend* handle = ps;
  if (lane.combine_tail != nullptr) {
    lane.combine_tail->next = ps;
  } else {
    lane.combine_head = ps;
  }
  lane.combine_tail = ps;
  WakePump(conn, lane);
  // ...then the thread copies its payload into the combining buffer and
  // raises its copy-completion flag, which the leader polls (§4.2).
  bool sent = false;
  handle->sent_flag = &sent;
  handle->sent_cond = lane.sent_cond.get();
  co_await thread.core().Work(cost.MemcpyCost(len + wire::kMetaBytes));
  if (handle->dropped) {
    // The lane was quarantined mid-copy and the pump unlinked this request,
    // releasing the waiter (`sent` is already true) and handing the handle
    // back to us. The RPC itself stays pending for the retry watchdog.
    conn.client->send_pool.Delete(handle);
  } else {
    handle->copied = true;
    lane.copy_done->NotifyAll();
  }
  // fl_send_rpc completes when the combined message is on the wire: a leader
  // posts it itself; a follower waits for the (transient) leader to do so.
  while (!sent) {
    co_await lane.sent_cond->Wait();
  }
  co_return rpc;
}

void WakePump(ClientConnState& conn, ClientLane& lane) {
  if (lane.pump_running) {
    return;  // the running pump's admit loop picks the new request up
  }
  lane.pump_running = true;
  if (!lane.pump_spawned) {
    lane.pump_spawned = true;
    conn.env->sim().Spawn(Pump(conn, lane), conn.env->node);
  } else {
    lane.pump_wake.Fire(conn.env->sim());
  }
}

sim::Proc Pump(ClientConnState& conn, ClientLane& lane) {
  const FlockConfig& config = *conn.env->config;
  const sim::CostModel& cost = conn.env->cost();
  sim::Simulator& sim = conn.env->sim();
  // Tenancy byte quota (DESIGN.md §15): resolved once — nullptr for the
  // default tenant or with tenancy off, so those pumps never touch the
  // registry and their traces stay bit-identical.
  tenant::TenantRegistry* tenants = nullptr;
  if (config.tenancy && conn.tenant_id != tenant::kDefaultTenant) {
    tenants = &ctrl::ControlPlane::For(*conn.env->cluster).tenants();
  }

  for (;;) {
    if (lane.combine_head == nullptr) {
      // Queue drained: park until the next request (or retry restage) wakes
      // us. pump_running goes false and the wake is re-armed with no
      // suspension in between, so pump_running == false implies parked.
      lane.pump_running = false;
      lane.pump_wake.Reset();
      co_await lane.pump_wake.Wait();
      continue;
    }
    // Collect the leader's batch: bounded combining (§4.2). The batch is an
    // intrusive list spliced off the front of the lane's combining queue.
    const size_t bound = config.coalescing ? config.max_coalesce : 1;
    PendingSend* batch_head = nullptr;
    PendingSend* batch_tail = nullptr;
    size_t batch_n = 0;
    uint32_t data_bytes = 0;
    // Admits queued requests up to the bound; followers that enqueue while
    // the leader waits are admitted too (the leader-progress rule). The
    // encoder-capacity check guards pathological payload mixes.
    auto admit = [&]() {
      while (batch_n < bound && lane.combine_head != nullptr) {
        PendingSend* ps = lane.combine_head;
        // Masked: segment marks in the top bits carry no bytes (a no-op for
        // unsegmented requests).
        const uint32_t next_len = wire::SegLen(ps->meta.data_len);
        if (batch_n > 0 &&
            wire::MessageBytes(static_cast<uint32_t>(batch_n) + 1,
                               data_bytes + next_len) > config.ring_bytes / 2) {
          break;
        }
        lane.combine_head = ps->next;
        if (lane.combine_head == nullptr) {
          lane.combine_tail = nullptr;
        }
        ps->next = nullptr;
        data_bytes += next_len;
        if (batch_tail != nullptr) {
          batch_tail->next = ps;
        } else {
          batch_head = ps;
        }
        batch_tail = ps;
        ++batch_n;
      }
    };
    auto all_copied = [&]() {
      for (const PendingSend* ps = batch_head; ps != nullptr; ps = ps->next) {
        if (!ps->copied) {
          return false;
        }
      }
      return true;
    };
    while (true) {
      admit();
      if (all_copied()) {
        break;
      }
      co_await lane.copy_done->Wait();
    }

    sim::Core& core = *batch_head->owner_core;
    // Leader overhead before finalizing: buffer management and flag polls.
    // Followers arriving during this window are still admitted below.
    co_await core.Work(cost.cpu_msg_fixed);
    while (true) {
      admit();
      if (all_copied()) {
        break;
      }
      co_await lane.copy_done->Wait();
    }

    uint32_t n = static_cast<uint32_t>(batch_n);
    uint32_t msg_len = wire::MessageBytes(n, data_bytes);

    // Wait for a credit and contiguous ring space.
    RingProducer::Reservation resv;
    bool requeued = false;  // batch handed off (migrated or dropped)
    while (true) {
      if (!lane.active && lane.credits == 0) {
        // Deactivated and drained: migrate the queued work to an active lane
        // (sender-side thread scheduling will move the threads themselves).
        ClientLane* target = nullptr;
        for (const auto& other : conn.lanes) {
          if (other->active) {
            target = other.get();
            break;
          }
        }
        if (target != nullptr && target != &lane) {
          // Put the batch back in front of the remaining queue, then splice
          // the whole queue onto the target lane.
          if (batch_tail != nullptr) {
            batch_tail->next = lane.combine_head;
            lane.combine_head = batch_head;
            if (lane.combine_tail == nullptr) {
              lane.combine_tail = batch_tail;
            }
          }
          size_t moved = 0;
          for (PendingSend* ps = lane.combine_head; ps != nullptr; ps = ps->next) {
            ++moved;
          }
          if (target->combine_tail != nullptr) {
            target->combine_tail->next = lane.combine_head;
          } else {
            target->combine_head = lane.combine_head;
          }
          target->combine_tail = lane.combine_tail;
          lane.combine_head = nullptr;
          lane.combine_tail = nullptr;
          target->inflight += moved;
          lane.inflight -= std::min<uint64_t>(lane.inflight, moved);
          WakePump(conn, *target);
          requeued = true;  // queue is empty now: park at the loop top
          break;
        }
        if (lane.failed) {
          // Quarantined with nowhere to migrate: drop the queued sends and
          // release their waiters. The RPCs stay pending — the retry watchdog
          // retransmits them (or fails them) on whatever lane survives.
          FLOCK_CHECK(config.rpc_timeout > 0)
              << "lane quarantined with rpc_timeout == 0: no retry watchdog "
                 "is running, so the dropped RPCs would pend forever; set "
                 "FlockConfig::rpc_timeout when fault injection can kill QPs";
          if (batch_tail != nullptr) {
            batch_tail->next = lane.combine_head;
            lane.combine_head = batch_head;
            if (lane.combine_tail == nullptr) {
              lane.combine_tail = batch_tail;
            }
          }
          for (PendingSend* ps = lane.combine_head; ps != nullptr;) {
            PendingSend* next = ps->next;
            ps->next = nullptr;
            if (ps->sent_flag != nullptr) {
              *ps->sent_flag = true;
            }
            if (ps->sent_cond != nullptr && ps->sent_cond != lane.sent_cond.get()) {
              ps->sent_cond->NotifyAll();
            }
            if (ps->copied) {
              conn.client->send_pool.Delete(ps);
            } else {
              // The submitting coroutine is still mid-copy and will write
              // `copied` through this pointer when it resumes; freeing the
              // slot here would be a use-after-free (a recycled slot would
              // get another RPC's copy flag raised early). Hand ownership
              // back: StageRpc frees a dropped handle after its copy work.
              ps->dropped = true;
            }
            ps = next;
          }
          lane.combine_head = nullptr;
          lane.combine_tail = nullptr;
          lane.sent_cond->NotifyAll();
          requeued = true;  // queue dropped: park at the loop top
          break;
        }
        co_await lane.send_ready.Wait();
        continue;
      }
      if (tenants != nullptr && !tenants->SendAllowed(conn.tenant_id)) {
        // Over the window byte quota: poll-wait for the next scheduler window
        // (no credit event marks a quota refresh, so send_ready cannot wake
        // us). Checked before Reserve so no ring reservation is held while
        // stalled; the batch that eventually goes out may exceed the quota by
        // one message (soft bound).
        tenants->NoteQuotaStall(conn.tenant_id);
        co_await sim::Delay(sim, kMicrosecond);
        continue;
      }
      if (lane.credits > 0 && lane.req_producer.Reserve(msg_len, &resv)) {
        break;
      }
      co_await lane.send_ready.Wait();
      // Backpressure grows the batch: requests that queued while this lane
      // was out of credits or ring space are combined into this message.
      admit();
      while (!all_copied()) {
        co_await lane.copy_done->Wait();
      }
      n = static_cast<uint32_t>(batch_n);
      msg_len = wire::MessageBytes(n, data_bytes);
    }
    if (requeued) {
      continue;
    }
    lane.credits -= 1;

    // Leader work: per-request combining (buffer grants + flag polls),
    // header build, canary generation (§4.2).
    co_await core.Work(static_cast<Nanos>(n) * cost.cpu_msg_per_req);

    const uint64_t canary = SplitMix64(*conn.env->rng_state);
    wire::MessageEncoder encoder(lane.staging + resv.offset, msg_len, canary);
    // The tenant stamp rides in the header flags; tenant 0 stamps zero bits,
    // so single-tenant messages stay byte-identical to pre-tenancy ones.
    // A batch containing any segment chunk additionally raises kFlagSegment.
    uint16_t flags = wire::PackTenantFlags(conn.tenant_id);
    for (const PendingSend* ps = batch_head; ps != nullptr; ps = ps->next) {
      if (wire::SegOf(ps->meta.data_len) != wire::SegMark::kNone) {
        flags |= wire::kFlagSegment;
      }
      // Single copy of the payload path (DESIGN.md §16): gather from the
      // caller's slices straight into the staging ring.
      encoder.AddGather(ps->meta, ps->payload);
    }
    const uint32_t total =
        encoder.Seal(lane.resp_consumer->consumed_report(), /*credit_grant=*/0,
                     flags);
    FLOCK_CHECK_EQ(total, msg_len);
    if (config.segment_threshold == 0) {
      // This message carries a fresh head, so the dispatcher's out-of-band
      // slot write can be suppressed. Only safe without segmentation: a
      // server blocked mid-chunk-train reads nothing but the head slot, and
      // a report sealed into a request message it cannot gather (it holds
      // the lane in_service for the whole train) would be trapped there —
      // client pump wedged on the full request ring, server wedged on a
      // "full" response ring, dispatcher silent. Three-way deadlock.
      lane.resp_bytes_since_send = 0;
    }

    // Post the coalesced message (plus wrap marker / credit renewal if due)
    // with a single doorbell.
    verbs::SendWr wrs[3];
    size_t nwrs = 0;
    if (resv.wrapped) {
      wire::EncodeWrapMarker(lane.staging + resv.marker_offset, canary);
      verbs::SendWr marker;
      marker.wr_id = TagWrId(WrTag::kRpcWrite, &lane);
      marker.opcode = verbs::Opcode::kWrite;
      marker.local_addr = lane.staging_addr + resv.marker_offset;
      marker.length = wire::kWrapMarkerBytes;
      marker.remote_addr = lane.remote_ring_addr + resv.marker_offset;
      marker.rkey = lane.remote_ring_rkey;
      marker.signaled = false;
      wrs[nwrs++] = marker;
    }
    verbs::SendWr msg;
    msg.wr_id = TagWrId(WrTag::kRpcWrite, &lane);
    msg.opcode = verbs::Opcode::kWrite;
    msg.local_addr = lane.staging_addr + resv.offset;
    msg.length = msg_len;
    msg.remote_addr = lane.remote_ring_addr + resv.offset;
    msg.rkey = lane.remote_ring_rkey;
    lane.posts += 1;
    msg.signaled = (lane.posts % config.signal_interval) == 0;  // §7
    wrs[nwrs++] = msg;
    MaybeRenewCredits(config, lane, wrs, &nwrs);

    co_await core.Work(static_cast<Nanos>(nwrs) * cost.cpu_wqe_prep +
                       cost.cpu_mmio_doorbell);
    const verbs::WcStatus status =
        conn.env->transport->PostBatch(*lane.qp, wrs, nwrs);
    if (status != verbs::WcStatus::kSuccess) {
      // The QP is dead (it rejects posts only in the error state). Quarantine
      // the lane and push the batch back in front of the queue: the migration
      // branch above re-routes everything to a surviving lane next iteration.
      QuarantineLane(conn, lane);
      batch_tail->next = lane.combine_head;
      lane.combine_head = batch_head;
      if (lane.combine_tail == nullptr) {
        lane.combine_tail = batch_tail;
      }
      continue;
    }

    lane.messages_sent += 1;
    lane.requests_sent += n;
    if (tenants != nullptr) {
      tenants->ChargeSent(conn.tenant_id, msg_len);
    }
    lane.coalesce_degree.Record(n);
    lane.batch_histogram[n < 33 ? n : 32] += 1;
    for (PendingSend* ps = batch_head; ps != nullptr;) {
      PendingSend* next = ps->next;
      if (ps->sent_flag != nullptr) {
        *ps->sent_flag = true;
      }
      // Requests migrated from a quarantined lane carry that lane's waker.
      if (ps->sent_cond != nullptr && ps->sent_cond != lane.sent_cond.get()) {
        ps->sent_cond->NotifyAll();
      }
      conn.client->send_pool.Delete(ps);
      ps = next;
    }
    lane.sent_cond->NotifyAll();
  }
}

sim::Co<verbs::WcStatus> SubmitMemOp(ClientConnState& conn, FlockThread& thread,
                                     verbs::SendWr wr) {
  const sim::CostModel& cost = conn.env->cost();
  // Deferred connection setup (DESIGN.md §13); see StageRpc.
  if (conn.setup_cond != nullptr) {
    co_await EnsureLaneSetup(conn, thread);
    if (conn.closed) {
      // Handshake refused (tenancy admission) or handle closed: fail fast.
      co_return verbs::WcStatus::kQpError;
    }
  }
  ClientLane& lane = LaneFor(conn, thread);

  PendingMemOp op;
  op.wr = wr;
  op.wr.wr_id = TagWrId(WrTag::kMemOp, &op);
  op.wr.signaled = true;  // each thread waits on its own completion event
  op.owner_core = &thread.core();

  thread.outstanding += 1;
  // Each thread prepares its own work request; posting is delegated to the
  // leader, which links the batch (§6).
  co_await thread.core().Work(cost.cpu_atomic_rmw + cost.cpu_cacheline_transfer +
                              cost.cpu_wqe_prep);
  if (lane.memop_tail != nullptr) {
    lane.memop_tail->next = &op;
  } else {
    lane.memop_head = &op;
  }
  lane.memop_tail = &op;
  if (!lane.mem_pump_running) {
    lane.mem_pump_running = true;
    conn.env->sim().Spawn(MemPump(conn, lane), conn.env->node);
  }
  co_await op.done_event.Wait();
  thread.outstanding -= 1;
  // A fatal completion status means the lane's QP is dead (flushed, errored,
  // or pointing at a vanished peer): quarantine it so later work — RPC or
  // memop — repairs onto a fresh lane, exactly as HandleSendError does for
  // the send path. QuarantineLane is idempotent, so racing with the RPC
  // path's own error handling is fine.
  if (IsFatalWcStatus(op.status)) {
    QuarantineLane(conn, lane);
  }
  co_return op.status;
}

sim::Proc MemPump(ClientConnState& conn, ClientLane& lane) {
  const FlockConfig& config = *conn.env->config;
  const sim::CostModel& cost = conn.env->cost();
  while (lane.memop_head != nullptr) {
    // Splice up to `bound` ops off the queue into an intrusive batch.
    const size_t bound = config.coalescing ? config.max_coalesce : 1;
    PendingMemOp* batch_head = nullptr;
    PendingMemOp* batch_tail = nullptr;
    size_t batch_n = 0;
    while (batch_n < bound && lane.memop_head != nullptr) {
      PendingMemOp* op = lane.memop_head;
      lane.memop_head = op->next;
      if (lane.memop_head == nullptr) {
        lane.memop_tail = nullptr;
      }
      op->next = nullptr;
      if (batch_tail != nullptr) {
        batch_tail->next = op;
      } else {
        batch_head = op;
      }
      batch_tail = op;
      ++batch_n;
    }
    sim::Core& core = *batch_head->owner_core;
    // The leader links the WRs and rings one doorbell for the whole chain.
    co_await core.Work(cost.cpu_mmio_doorbell +
                       static_cast<Nanos>(batch_n) * (cost.cpu_atomic_rmw / 2));
    // Hand the chain to the device as one linked batch: the doorbell charged
    // above covers every WR (PostSendBatch is all-or-nothing, so a rejected
    // batch falls back to per-op posts — each op then learns its own status
    // instead of inheriting whichever WR poisoned the chain).
    std::vector<verbs::SendWr> wrs;
    wrs.reserve(batch_n);
    for (PendingMemOp* op = batch_head; op != nullptr; op = op->next) {
      wrs.push_back(op->wr);
    }
    if (conn.env->transport->PostBatch(*lane.qp, wrs.data(), wrs.size()) !=
        verbs::WcStatus::kSuccess) {
      for (PendingMemOp* op = batch_head; op != nullptr; op = op->next) {
        const verbs::WcStatus status =
            conn.env->transport->Post(*lane.qp, op->wr);
        if (status != verbs::WcStatus::kSuccess) {
          op->status = status;
          op->done_event.Fire(conn.env->sim());
        }
      }
    }
    // QP contention indicator for receiver-side scheduling (§6).
    lane.coalesce_degree.Record(static_cast<uint32_t>(batch_n));
  }
  lane.mem_pump_running = false;
}

}  // namespace internal
}  // namespace flock
