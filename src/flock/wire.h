// Flock's coalesced message layout (§4.1, Fig. 5).
//
// A message is: Header | (Meta | Data)* | padding | trailing canary.
//
//   * Header carries the total (32-byte-aligned) length, the number of
//     coalesced requests, a random 64-bit canary, and two piggyback fields:
//     the sender's consumer-ring head (so the peer can reclaim ring space
//     without RDMA reads) and, server→client, a credit grant.
//   * Each Meta names the payload size, issuing thread, its per-thread
//     sequence id (matching responses to outstanding requests), and the RPC
//     handler id.
//   * The canary appears in the header and again in the last 8 bytes; the
//     receiver accepts the message only when both match, relying on RDMA
//     writes landing in increasing address order.
//
// Messages are padded to 32-byte multiples so a wrap marker (a bare header)
// always fits at the end of the ring.
//
// All encode/decode routines are pure functions over byte buffers — no
// simulation types — so they are directly unit- and property-testable, and
// identical bytes flow through the simulated RDMA writes.
#ifndef FLOCK_FLOCK_WIRE_H_
#define FLOCK_FLOCK_WIRE_H_

#include <cstdint>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/payload.h"

namespace flock::wire {

inline constexpr uint32_t kAlign = 32;

enum HeaderFlags : uint16_t {
  kFlagWrap = 1 << 0,     // wrap marker: consumer resets to ring offset 0
  kFlagSegment = 1 << 1,  // message carries >= 1 segment chunk (DESIGN.md §16)
};

// Tenant identity stamp (DESIGN.md §15): the upper 12 bits of the header
// flags carry the sender's tenant id, so the receiver can cross-check the
// data plane against the identity registered at handshake time. Tenant 0
// (the default) stamps as zero bits — byte-identical to pre-tenancy headers.
inline constexpr int kFlagTenantShift = 4;
inline constexpr uint16_t kMaxTenantStamp = 0x0FFF;

inline uint16_t PackTenantFlags(uint32_t tenant_id) {
  return static_cast<uint16_t>((tenant_id & kMaxTenantStamp)
                               << kFlagTenantShift);
}

inline uint32_t TenantFromFlags(uint16_t flags) {
  return static_cast<uint32_t>(flags >> kFlagTenantShift) & kMaxTenantStamp;
}

struct MsgHeader {
  uint32_t total_len = 0;  // header..trailing canary inclusive, 32B-aligned
  uint16_t num_reqs = 0;
  uint16_t flags = 0;
  uint64_t canary = 0;
  uint32_t piggyback_head = 0;  // sender's consumer-ring head offset
  uint32_t credit_grant = 0;    // server→client: credits added to the lane
};
static_assert(sizeof(MsgHeader) == 24);

struct ReqMeta {
  uint32_t data_len = 0;
  uint16_t thread_id = 0;
  uint16_t rpc_id = 0;
  uint32_t seq = 0;
};
static_assert(sizeof(ReqMeta) == 12);

inline constexpr uint32_t kHeaderBytes = sizeof(MsgHeader);
inline constexpr uint32_t kMetaBytes = sizeof(ReqMeta);
inline constexpr uint32_t kCanaryBytes = 8;
// A wrap marker is a padded header + canary slot: one aligned unit.
inline constexpr uint32_t kWrapMarkerBytes = kAlign;

inline constexpr uint64_t AlignUp64(uint64_t n) {
  return (n + kAlign - 1) & ~uint64_t{kAlign - 1};
}

// Rounds up in 64 bits and rejects results that no longer fit a uint32_t:
// the old 32-bit form wrapped to 0 for n > 0xFFFFFFE0, turning an oversized
// message into a tiny "valid" one.
inline uint32_t AlignUp(uint32_t n) {
  const uint64_t aligned = AlignUp64(n);
  FLOCK_CHECK_LE(aligned, uint64_t{UINT32_MAX});
  return static_cast<uint32_t>(aligned);
}

// Size of a message carrying payloads totalling `data_bytes` over `n`
// requests, computed in 64 bits — with MB-range payloads the 32-bit sum
// `n * kMetaBytes + data_bytes` can wrap.
inline constexpr uint64_t MessageBytes64(uint64_t n, uint64_t data_bytes) {
  return AlignUp64(kHeaderBytes + n * kMetaBytes + data_bytes + kCanaryBytes);
}

// 32-bit convenience form for callers whose sizes are ring-bounded; rejects
// (rather than wraps on) totals that overflow uint32_t.
inline uint32_t MessageBytes(uint32_t n, uint32_t data_bytes) {
  const uint64_t total = MessageBytes64(n, data_bytes);
  FLOCK_CHECK_LE(total, uint64_t{UINT32_MAX});
  return static_cast<uint32_t>(total);
}

// ---------------------------------------------------------------------------
// Large-payload segmentation (DESIGN.md §16).
//
// Payloads above FlockConfig::segment_threshold travel as a train of chunks,
// each an ordinary coalesced request whose ReqMeta carries a 2-bit segment
// mark in the top bits of data_len (payloads are capped far below 1 GiB, so
// the bits are free; unsegmented metas keep mark 00 and the encoding stays
// byte-identical to the pre-segmentation wire format). All chunks of one RPC
// share {thread_id, seq}; a message containing any chunk sets kFlagSegment
// in its header, and DecodeRequests rejects mark bits when the flag is
// absent, so non-segmented consumers can trust data_len as a plain length.
// ---------------------------------------------------------------------------

enum class SegMark : uint32_t {
  kNone = 0,   // unsegmented request: the whole payload is inline
  kFirst = 1,  // first chunk — resets any stale partial for this key
  kMiddle = 2,
  kLast = 3,  // final chunk — completes the payload
};

inline constexpr uint32_t kSegShift = 30;
inline constexpr uint32_t kSegLenMask = (1u << kSegShift) - 1;

inline uint32_t PackSegLen(SegMark mark, uint32_t len) {
  FLOCK_CHECK_LE(len, kSegLenMask);
  return (static_cast<uint32_t>(mark) << kSegShift) | len;
}

inline constexpr SegMark SegOf(uint32_t data_len) {
  return static_cast<SegMark>(data_len >> kSegShift);
}

inline constexpr uint32_t SegLen(uint32_t data_len) {
  return data_len & kSegLenMask;
}

// Incremental encoder. Usage:
//   MessageEncoder enc(buf, cap, canary);
//   enc.Add(meta1, data1); enc.Add(meta2, data2);
//   uint32_t len = enc.Seal(piggyback_head, credit_grant);
class MessageEncoder {
 public:
  MessageEncoder(uint8_t* buf, uint32_t capacity, uint64_t canary)
      : buf_(buf), capacity_(capacity), canary_(canary), offset_(kHeaderBytes) {}

  // Whether another request of `data_len` fits in the remaining capacity.
  // Computed in 64 bits: a corrupt data_len near UINT32_MAX must not wrap
  // back under capacity_ and let Add() memcpy past the staging buffer.
  bool Fits(uint32_t data_len) const {
    const uint64_t end =
        uint64_t{offset_} + kMetaBytes + data_len + kCanaryBytes;
    const uint64_t aligned = (end + kAlign - 1) & ~uint64_t{kAlign - 1};
    return aligned <= capacity_;
  }

  void Add(const ReqMeta& meta, const uint8_t* data) {
    // Segment marks in the top bits of data_len carry no bytes.
    const uint32_t len = SegLen(meta.data_len);
    FLOCK_CHECK(Fits(len));
    std::memcpy(buf_ + offset_, &meta, kMetaBytes);
    offset_ += kMetaBytes;
    if (len > 0) {
      std::memcpy(buf_ + offset_, data, len);
      offset_ += len;
    }
    ++num_reqs_;
  }

  // Gathers the payload directly from caller-owned slices into the staging
  // buffer — the single copy of the scatter-gather path (DESIGN.md §16).
  void AddGather(const ReqMeta& meta, const PayloadRef& payload) {
    const uint32_t len = SegLen(meta.data_len);
    FLOCK_CHECK_EQ(len, payload.size());
    FLOCK_CHECK(Fits(len));
    std::memcpy(buf_ + offset_, &meta, kMetaBytes);
    offset_ += kMetaBytes;
    for (uint32_t i = 0; i < payload.num_slices(); ++i) {
      const PayloadRef::Slice& s = payload.slice(i);
      std::memcpy(buf_ + offset_, s.data, s.len);
      offset_ += s.len;
    }
    ++num_reqs_;
  }

  // Writes header and trailing canary; returns the total message length.
  // `flags` carries the tenant stamp on client→server messages (0 otherwise).
  uint32_t Seal(uint32_t piggyback_head, uint32_t credit_grant,
                uint16_t flags = 0) {
    FLOCK_CHECK_GT(num_reqs_, 0u);
    const uint32_t total = AlignUp(offset_ + kCanaryBytes);
    MsgHeader header;
    header.total_len = total;
    header.num_reqs = num_reqs_;
    header.flags = flags;
    header.canary = canary_;
    header.piggyback_head = piggyback_head;
    header.credit_grant = credit_grant;
    std::memcpy(buf_, &header, kHeaderBytes);
    std::memset(buf_ + offset_, 0, total - offset_ - kCanaryBytes);
    std::memcpy(buf_ + total - kCanaryBytes, &canary_, kCanaryBytes);
    return total;
  }

  uint16_t num_reqs() const { return num_reqs_; }
  uint32_t bytes_so_far() const { return offset_; }

 private:
  uint8_t* buf_;
  uint32_t capacity_;
  uint64_t canary_;
  uint32_t offset_;
  uint16_t num_reqs_ = 0;
};

// Writes a wrap marker at `buf`.
inline void EncodeWrapMarker(uint8_t* buf, uint64_t canary) {
  MsgHeader header;
  header.total_len = kWrapMarkerBytes;
  header.num_reqs = 0;
  header.flags = kFlagWrap;
  header.canary = canary;
  std::memcpy(buf, &header, kHeaderBytes);
  std::memcpy(buf + kWrapMarkerBytes - kCanaryBytes, &canary, kCanaryBytes);
}

// Decoded view of one request within a message (points into the buffer).
struct ReqView {
  ReqMeta meta;
  const uint8_t* data = nullptr;
};

// Result of probing a consumer ring position.
enum class ProbeResult {
  kEmpty,       // no message (header length is zero)
  kIncomplete,  // header present but trailing canary not yet written
  kMessage,     // complete message
  kWrap,        // wrap marker: consumer resets to offset 0
};

// `capacity` bounds the readable bytes at `buf`; a (torn or corrupt)
// total_len outside [header+canary, capacity] is reported as kIncomplete
// before the trailing canary is ever dereferenced.
inline ProbeResult ProbeMessage(const uint8_t* buf, uint32_t capacity,
                                MsgHeader* header_out) {
  FLOCK_CHECK_GE(capacity, kHeaderBytes);
  MsgHeader header;
  std::memcpy(&header, buf, kHeaderBytes);
  if (header.total_len == 0) {
    return ProbeResult::kEmpty;
  }
  if (header.total_len < kHeaderBytes + kCanaryBytes ||
      header.total_len > capacity) {
    return ProbeResult::kIncomplete;
  }
  uint64_t trailing = 0;
  std::memcpy(&trailing, buf + header.total_len - kCanaryBytes, kCanaryBytes);
  if (trailing != header.canary) {
    return ProbeResult::kIncomplete;
  }
  *header_out = header;
  return (header.flags & kFlagWrap) ? ProbeResult::kWrap : ProbeResult::kMessage;
}

// Iterates the requests of a complete message. `out` must have room for
// header.num_reqs entries. Returns false on a malformed message.
inline bool DecodeRequests(const uint8_t* buf, const MsgHeader& header, ReqView* out) {
  if (header.total_len < kHeaderBytes + kCanaryBytes) {
    return false;
  }
  // All bounds checks in subtraction form (offset <= data_end is an
  // invariant), so a corrupt data_len near UINT32_MAX cannot wrap an
  // `offset + len` sum back inside the message and escape the check.
  const uint32_t data_end = header.total_len - kCanaryBytes;
  const bool segmented = (header.flags & kFlagSegment) != 0;
  uint32_t offset = kHeaderBytes;
  for (uint16_t i = 0; i < header.num_reqs; ++i) {
    if (kMetaBytes > data_end - offset) {
      return false;
    }
    std::memcpy(&out[i].meta, buf + offset, kMetaBytes);
    offset += kMetaBytes;
    // On-wire bytes per request are the masked length; mark bits without the
    // header flag are corruption, so non-segmented consumers can keep
    // trusting data_len as a plain length.
    const uint32_t len = SegLen(out[i].meta.data_len);
    if (!segmented && len != out[i].meta.data_len) {
      return false;
    }
    if (len > data_end - offset) {
      return false;
    }
    out[i].data = buf + offset;
    offset += len;
  }
  return true;
}

}  // namespace flock::wire

#endif  // FLOCK_FLOCK_WIRE_H_
