// Client-side failure handling: per-RPC timeouts, exponential-backoff
// retransmission, and terminal failure (spawned only when
// FlockConfig::rpc_timeout > 0).
//
// The schedule arithmetic (tick granularity, backoff growth and saturation)
// is pure so tests/watchdog_test.cc verifies it without building a cluster.
#ifndef FLOCK_FLOCK_WATCHDOG_H_
#define FLOCK_FLOCK_WATCHDOG_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"
#include "src/flock/lane.h"
#include "src/sim/task.h"

namespace flock {
namespace internal {

// Scan granularity bounds how late a deadline can fire; a quarter of the
// timeout keeps the added latency small relative to the timeout itself.
Nanos WatchdogTick(Nanos rpc_timeout);

// Exponential backoff for attempt number `retries` (the post-increment retry
// count: the first retransmit passes 1). Each attempt waits twice as long as
// the last; the shift saturates so a large max_retries (or timeout) cannot
// overflow the signed Nanos into UB and a garbage deadline.
Nanos RetryBackoff(Nanos rpc_timeout, uint32_t retries);

// Retransmits a timed-out RPC: bumps its retry count and deadline, restages
// the retained payload on the thread's current lane, and wakes that lane's
// pump. The server matches responses globally by (thread, seq), so a retry
// on a different lane still completes this RPC.
void RetryPendingRpc(ClientConnState& conn, PendingRpc* rpc);

// Terminal failure after max_retries: removes the RPC from the pending map
// and completes it with ok == false.
void FailPendingRpc(ClientConnState& conn, PendingRpc* rpc);

// The periodic deadline scanner. Scratch persists across ticks so the scan
// allocates nothing in steady state.
struct Watchdog {
  std::vector<PendingRpc*> scratch;

  // Every WatchdogTick, sweep each connection's pending maps and retry or
  // fail every RPC whose deadline passed.
  sim::Proc Run(NodeEnv& env, ClientState& client);
};

}  // namespace internal
}  // namespace flock

#endif  // FLOCK_FLOCK_WATCHDOG_H_
