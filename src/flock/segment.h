// Bounded reassembly of segmented payloads (DESIGN.md §16).
//
// Payloads above FlockConfig::segment_threshold arrive as SegMark chunk
// trains (see wire.h). The receiver accumulates them here, keyed by
// {arrival lane, thread_id, seq}: one lane delivers chunks in submission
// order (its ring is FIFO), so in-order accumulation plus "kFirst resets the
// entry" makes whole-extent retransmits safe. Chunks whose train migrated to
// another lane mid-extent become orphans on the old key and are reclaimed by
// timeout.
//
// The pool is bounded (FlockConfig::reassembly_entries): a server never
// holds more than entries × max_bytes of partial payloads, no matter how
// many clients stream at it. Overflow drops the chunk — the sender's
// watchdog retransmits the extent — and every buffer is reused once grown,
// so steady-state transfers allocate nothing.
//
// Pure host-side bookkeeping over byte buffers — no simulation types — so
// the property fuzz can drive it with torn/reordered/duplicate chunk trains
// directly.
#ifndef FLOCK_FLOCK_SEGMENT_H_
#define FLOCK_FLOCK_SEGMENT_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/common/logging.h"
#include "src/common/units.h"
#include "src/flock/config.h"
#include "src/flock/wire.h"

namespace flock {
namespace internal {

// Reclamation deadline for partials that stopped making progress.
inline Nanos ReassemblyTimeout(const FlockConfig& config) {
  if (config.reassembly_timeout > 0) {
    return config.reassembly_timeout;
  }
  if (config.rpc_timeout > 0) {
    return 2 * config.rpc_timeout;  // give the watchdog one retry first
  }
  return 1 * kMillisecond;
}

// Effective on-wire chunk size. Capped at segment_threshold so a segmented
// payload (> threshold) always spans at least two chunks, and floored so a
// corrupt config cannot degenerate into per-byte messages.
inline uint32_t SegmentChunkBytes(const FlockConfig& config) {
  const uint32_t cap = config.segment_chunk_bytes < config.segment_threshold
                           ? config.segment_chunk_bytes
                           : config.segment_threshold;
  return cap < 64 ? 64 : cap;
}

struct ReassemblyKey {
  const void* lane = nullptr;  // arrival lane: per-lane delivery is FIFO
  uint16_t thread_id = 0;
  uint32_t seq = 0;

  bool operator==(const ReassemblyKey& o) const {
    return lane == o.lane && thread_id == o.thread_id && seq == o.seq;
  }
};

class ReassemblyPool {
 public:
  // Idempotent; called at server start. Entry buffers grow lazily on first
  // use and are then reused, so an idle pool costs only the entry table.
  void Init(uint32_t entries, uint32_t max_bytes) {
    entries_.resize(entries);
    max_bytes_ = max_bytes;
  }

  // Feeds one chunk observed at simulated time `now`. Returns the complete
  // payload (valid until the next Feed/Reclaim) with its length in
  // `*complete_len` when `mark` == kLast finishes a train; nullptr
  // otherwise. Malformed trains (orphan continuation, oversize total,
  // kNone) are counted and ignored — never fatal, the fuzz feeds garbage.
  const uint8_t* Feed(const ReassemblyKey& key, wire::SegMark mark,
                      const uint8_t* data, uint32_t len, Nanos now,
                      uint32_t* complete_len) {
    ++chunks_;
    if (mark == wire::SegMark::kNone) {
      ++orphans_;  // not a chunk; callers handle inline payloads themselves
      return nullptr;
    }
    Entry* entry = FindLive(key);
    if (mark == wire::SegMark::kFirst) {
      if (entry != nullptr) {
        ++resets_;  // retransmit of a train whose partial is still here
        entry->len = 0;
      } else {
        entry = ClaimFree(key);
        if (entry == nullptr) {
          ++dropped_no_entry_;
          return nullptr;
        }
      }
    } else if (entry == nullptr) {
      ++orphans_;  // continuation without a first chunk (lost or reclaimed)
      return nullptr;
    }
    if (uint64_t{entry->len} + len > max_bytes_) {
      ReleaseEntry(entry);
      ++dropped_oversize_;
      return nullptr;
    }
    if (len > 0) {
      if (entry->buf.size() < entry->len + len) {
        const size_t doubled = entry->buf.size() * 2;
        const size_t need = entry->len + len;
        entry->buf.resize(doubled > need ? doubled : need);
      }
      std::memcpy(entry->buf.data() + entry->len, data, len);
      entry->len += len;
    }
    entry->last_progress = now;
    if (mark != wire::SegMark::kLast) {
      return nullptr;
    }
    *complete_len = entry->len;
    ReleaseEntry(entry);  // buffer capacity is kept; bytes stay readable
    ++completed_;
    return entry->buf.data();
  }

  // Drops every partial idle since before `now - timeout`; returns how many.
  uint32_t Reclaim(Nanos now, Nanos timeout) {
    uint32_t dropped = 0;
    for (Entry& entry : entries_) {
      if (entry.live && entry.last_progress + timeout <= now) {
        ReleaseEntry(&entry);
        ++dropped;
      }
    }
    reclaimed_ += dropped;
    return dropped;
  }

  uint32_t in_use() const {
    uint32_t n = 0;
    for (const Entry& entry : entries_) {
      n += entry.live ? 1 : 0;
    }
    return n;
  }

  uint64_t chunks() const { return chunks_; }
  uint64_t completed() const { return completed_; }
  uint64_t orphans() const { return orphans_; }
  uint64_t resets() const { return resets_; }
  uint64_t dropped_no_entry() const { return dropped_no_entry_; }
  uint64_t dropped_oversize() const { return dropped_oversize_; }
  uint64_t reclaimed() const { return reclaimed_; }

 private:
  struct Entry {
    ReassemblyKey key;
    std::vector<uint8_t> buf;  // grown once, then reused across trains
    uint32_t len = 0;
    Nanos last_progress = 0;
    bool live = false;
  };

  Entry* FindLive(const ReassemblyKey& key) {
    for (Entry& entry : entries_) {
      if (entry.live && entry.key == key) {
        return &entry;
      }
    }
    return nullptr;
  }

  Entry* ClaimFree(const ReassemblyKey& key) {
    for (Entry& entry : entries_) {
      if (!entry.live) {
        entry.live = true;
        entry.key = key;
        entry.len = 0;
        return &entry;
      }
    }
    return nullptr;
  }

  void ReleaseEntry(Entry* entry) {
    entry->live = false;
    entry->key = ReassemblyKey{};
  }

  std::vector<Entry> entries_;
  uint32_t max_bytes_ = 0;

  uint64_t chunks_ = 0;
  uint64_t completed_ = 0;
  uint64_t orphans_ = 0;
  uint64_t resets_ = 0;
  uint64_t dropped_no_entry_ = 0;
  uint64_t dropped_oversize_ = 0;
  uint64_t reclaimed_ = 0;
};

}  // namespace internal
}  // namespace flock

#endif  // FLOCK_FLOCK_SEGMENT_H_
