// The request/response ring protocol (§4.1).
//
// The *producer* (a Flock sender) reserves space in the remote ring, encodes
// a coalesced message into a local staging mirror at the same offset, and
// RDMA-writes it across. It learns the consumer's progress ("Head") from the
// piggybacked head field in messages flowing the other way, so it almost
// never needs an RDMA read to find free space.
//
// The *consumer* (a Flock dispatcher) polls the header slot at its head
// offset; a message is accepted when the trailing canary matches the header
// canary. Consumed regions are zeroed so stale canaries can never
// false-positive, and zeroing doubles as the "Free/Processed" state of Fig. 5.
//
// Messages never straddle the ring end: the producer writes a wrap marker
// and continues at offset 0. All sizes are 32-byte aligned, so a marker
// always fits.
#ifndef FLOCK_FLOCK_RING_H_
#define FLOCK_FLOCK_RING_H_

#include <cstdint>
#include <cstring>

#include "src/common/logging.h"
#include "src/flock/wire.h"

namespace flock {

// Producer-side space accounting. Pure bookkeeping: the caller encodes into
// its staging mirror at the returned offset and issues the RDMA write(s).
class RingProducer {
 public:
  explicit RingProducer(uint32_t size) : size_(size) {
    FLOCK_CHECK_EQ(size % wire::kAlign, 0u);
    FLOCK_CHECK_GE(size, 4 * wire::kAlign);
  }

  struct Reservation {
    uint32_t offset = 0;         // where the message goes
    bool wrapped = false;        // a wrap marker must be written first
    uint32_t marker_offset = 0;  // where the marker goes if wrapped
  };

  // Tries to reserve `len` (32B-aligned) contiguous bytes. Returns false when
  // the ring lacks space (caller waits for a head update).
  bool Reserve(uint32_t len, Reservation* out) {
    FLOCK_CHECK_EQ(len % wire::kAlign, 0u);
    FLOCK_CHECK_LE(len, size_ / 2) << "message too large for ring";
    const uint32_t remaining_at_end = size_ - tail_;
    if (len <= remaining_at_end) {
      if (used_ + len > Budget()) {
        return false;
      }
      out->offset = tail_;
      out->wrapped = false;
      used_ += len;
      tail_ = (tail_ + len) % size_;
      return true;
    }
    // Wrap: the dead space at the end (marker included) is consumed too.
    if (used_ + remaining_at_end + len > Budget()) {
      return false;
    }
    out->offset = 0;
    out->wrapped = true;
    out->marker_offset = tail_;
    used_ += remaining_at_end + len;
    tail_ = len;
    return true;
  }

  // A (cumulative) consumed-bytes report arrived — piggybacked in a message
  // header or RDMA-written into the head slot. Cumulative counters make the
  // update idempotent and safe against reordering between the two channels:
  // an older snapshot yields a wrapped-negative delta (> ring size) and is
  // ignored.
  void OnHeadUpdate(uint32_t consumed_cumulative) {
    const uint32_t freed = consumed_cumulative - last_consumed_;
    if (freed == 0 || freed > size_) {
      return;  // no news, or a stale out-of-order report
    }
    FLOCK_CHECK_LE(freed, used_);
    used_ -= freed;
    last_consumed_ = consumed_cumulative;
  }

  uint32_t tail() const { return tail_; }
  uint32_t used() const { return used_; }
  uint32_t size() const { return size_; }

 private:
  // Never fill completely: head == tail must always mean "empty".
  uint32_t Budget() const { return size_ - wire::kAlign; }

  uint32_t size_;
  uint32_t tail_ = 0;
  uint32_t used_ = 0;
  uint32_t last_consumed_ = 0;  // cumulative bytes the consumer has released
};

// Consumer-side view over the actual ring bytes.
class RingConsumer {
 public:
  RingConsumer(uint8_t* base, uint32_t size) : base_(base), size_(size) {
    FLOCK_CHECK_EQ(size % wire::kAlign, 0u);
  }

  // Checks for a complete message at the head, transparently consuming wrap
  // markers. kIncomplete is also returned for malformed lengths (torn or
  // stale bytes) — the consumer just polls again later.
  wire::ProbeResult Probe(wire::MsgHeader* header) {
    while (true) {
      const uint8_t* at = base_ + head_;
      // Fast path: the poll loops hit an empty head slot almost every pass,
      // so peek at the length word before copying the whole header.
      uint32_t total_len;
      std::memcpy(&total_len, at, sizeof(total_len));
      if (total_len == 0) {
        return wire::ProbeResult::kEmpty;
      }
      if (total_len % wire::kAlign != 0 || total_len > size_ - head_) {
        return wire::ProbeResult::kIncomplete;
      }
      wire::MsgHeader h;
      const wire::ProbeResult result = wire::ProbeMessage(at, size_ - head_, &h);
      if (result == wire::ProbeResult::kWrap) {
        std::memset(base_ + head_, 0, wire::kWrapMarkerBytes);
        // The marker and the dead space behind it count as consumed, matching
        // the producer's accounting of the wrap.
        consumed_bytes_ += size_ - head_;
        head_ = 0;
        continue;  // the real message is at offset 0 (or not yet there)
      }
      if (result == wire::ProbeResult::kMessage) {
        *header = h;
      }
      return result;
    }
  }

  const uint8_t* MessagePtr() const { return base_ + head_; }
  uint32_t head() const { return head_; }
  // Cumulative bytes released; reported back to the producer (truncated to
  // 32 bits, which OnHeadUpdate's modular arithmetic expects).
  uint64_t consumed_bytes() const { return consumed_bytes_; }
  uint32_t consumed_report() const { return static_cast<uint32_t>(consumed_bytes_); }

  // Releases the message at the head (zeroing its bytes) and advances.
  void Consume(const wire::MsgHeader& header) {
    std::memset(base_ + head_, 0, header.total_len);
    head_ = (head_ + header.total_len) % size_;
    consumed_bytes_ += header.total_len;
  }

 private:
  uint8_t* base_;
  uint32_t size_;
  uint32_t head_ = 0;
  uint64_t consumed_bytes_ = 0;
};

}  // namespace flock

#endif  // FLOCK_FLOCK_RING_H_
