// Orchestration only: construction, role startup (proc spawning), the
// connect handshake's client half, and thin Connection forwarders into the
// mechanism modules (combine, sched, watchdog, dispatch, lane).
#include "src/flock/runtime.h"

#include <algorithm>
#include <utility>

#include "src/flock/combine.h"
#include "src/flock/dispatch.h"
#include "src/flock/segment.h"

namespace flock {

using internal::ClientLane;
using internal::WrTag;

// ---------------------------------------------------------------------------
// FlockRuntime: construction and roles
// ---------------------------------------------------------------------------

FlockRuntime::FlockRuntime(verbs::Cluster& cluster, int node, const FlockConfig& config)
    : cluster_(cluster), node_(node), config_(config) {
  if (config_.segment_threshold > 0) {
    // Segmentation constraints (DESIGN.md §16): the 24-bit ctrl-slot head
    // report must disambiguate ring positions, and one full chunk message
    // must satisfy the ring's len <= size/2 reservation bound.
    FLOCK_CHECK_LT(config_.ring_bytes, 1u << 24)
        << "segment_threshold requires ring_bytes < 2^24 (ctrl-slot head "
           "reports are 24-bit truncated cumulatives)";
    FLOCK_CHECK_LE(
        wire::MessageBytes64(1, internal::SegmentChunkBytes(config_)),
        uint64_t{config_.ring_bytes} / 2)
        << "segment_chunk_bytes too large for ring_bytes";
    // Payloads at or below the threshold still travel inline as one message.
    FLOCK_CHECK_LE(wire::MessageBytes64(1, config_.segment_threshold),
                   uint64_t{config_.ring_bytes} / 2)
        << "segment_threshold too large for ring_bytes";
  } else {
    // Without chunking, every payload must fit a single ring reservation.
    FLOCK_CHECK_LE(wire::MessageBytes64(1, config_.max_payload),
                   uint64_t{config_.ring_bytes} / 2)
        << "max_payload needs segmentation (set segment_threshold) or a "
           "bigger ring";
  }
  send_cq_ = cluster_.device(node_).CreateCq();
  recv_cq_ = cluster_.device(node_).CreateCq();
  rng_state_ ^= 0x1234567ull * static_cast<uint64_t>(node + 1);
  env_.cluster = &cluster_;
  env_.node = node_;
  env_.config = &config_;
  env_.transport = &SimTransportInstance();
  env_.send_cq = send_cq_;
  env_.recv_cq = recv_cq_;
  env_.rng_state = &rng_state_;
  // Every runtime answers on the cluster's control plane (DESIGN.md §10):
  // servers accept connect/reconnect handshakes there, and registration makes
  // the node addressable before StartServer decides its role. Co-located
  // runtimes (bench "processes" sharing a node) all register: the first
  // answers the node's control traffic, and when it is destroyed the control
  // plane promotes the next survivor. The old "register only if vacant"
  // scheme left the node dark after its first runtime died even though
  // others were still serving on it (the endpoint hand-off bug).
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(cluster_);
  cp.RegisterEndpoint(node_, this);
}

FlockRuntime::~FlockRuntime() {
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(cluster_);
  cp.DeregisterEndpoint(node_, this);
  if (membership_listener_id_ != 0) {
    cp.RemoveMembershipListener(membership_listener_id_);
  }
  if (batch_end_listener_id_ != 0) {
    cp.RemoveBatchEndListener(batch_end_listener_id_);
  }
}

void FlockRuntime::RegisterHandler(uint16_t rpc_id, RpcHandler handler) {
  FLOCK_CHECK(server_.FindHandler(rpc_id) == nullptr)
      << "duplicate handler for rpc " << rpc_id;
  server_.handlers.emplace_back(rpc_id, std::move(handler));
}

void FlockRuntime::StartServer(int dispatcher_cores) {
  FLOCK_CHECK(!server_.started);
  FLOCK_CHECK_GT(dispatcher_cores, 0);
  server_.started = true;
  if (config_.segment_threshold > 0) {
    server_.reassembly.Init(config_.reassembly_entries, config_.max_payload);
  }
  server_.dispatcher_count = dispatcher_cores;
  server_.dispatcher_lanes.resize(static_cast<size_t>(dispatcher_cores));
  server_.work_ready = std::make_unique<sim::Condition>(cluster_.sim());
  for (int i = 0; i < dispatcher_cores; ++i) {
    cluster_.sim().Spawn(internal::RequestDispatcher(env_, server_, i), node_);
  }
  // §4.3: optionally, an application-managed pool of RPC workers executes the
  // handlers; the dispatchers then only detect and route messages.
  for (int i = 0; i < config_.server_workers; ++i) {
    cluster_.sim().Spawn(internal::RpcWorker(env_, server_, i), node_);
  }
  cluster_.sim().Spawn(receiver_.Run(env_, server_), node_);
  // Membership feed (§5.1 meets §10): a client node leaving tears its senders
  // down and repartitions the AQP budget right away instead of waiting for
  // dead-sender reclamation to notice. Registration is a plain callback —
  // no proc, no events — so fault-free traces are unchanged.
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(cluster_);
  membership_listener_id_ = cp.AddMembershipListener(
      [this](int changed_node, bool joined) {
        if (!joined && changed_node != node_ &&
            internal::TearDownSenders(env_, server_, changed_node)) {
          // Inside a batched epoch window (DESIGN.md §13) the repartition is
          // deferred: N coalesced leaves cost one Redistribute, not N.
          if (ctrl::ControlPlane::For(cluster_).InEpochBatch()) {
            redistribute_pending_ = true;
          } else {
            receiver_.Redistribute(env_, server_);
          }
        }
      });
  batch_end_listener_id_ = cp.AddBatchEndListener([this]() {
    if (redistribute_pending_) {
      redistribute_pending_ = false;
      receiver_.Redistribute(env_, server_);
    }
  });
}

void FlockRuntime::StartClient() {
  FLOCK_CHECK(!client_.started);
  client_.started = true;
  for (int i = 0; i < config_.response_dispatchers; ++i) {
    cluster_.sim().Spawn(
        internal::ResponseDispatcher(env_, client_, server_.stats, i), node_);
  }
  cluster_.sim().Spawn(sender_sched_.Run(env_, client_), node_);
  // The retry watchdog exists only when timeouts are enabled, so the default
  // configuration spawns no extra proc and the event trace stays untouched.
  if (config_.rpc_timeout > 0) {
    cluster_.sim().Spawn(watchdog_.Run(env_, client_), node_);
  }
}

FlockThread* FlockRuntime::CreateThread(int core) {
  const uint16_t id = static_cast<uint16_t>(client_.threads.size());
  client_.threads.push_back(std::make_unique<FlockThread>(
      node_, id, &cluster_.cpu(node_).core(core), SplitMix64(rng_state_)));
  client_.threads.back()->atomic_slot = cluster_.mem(node_).Alloc(8, 8);
  return client_.threads.back().get();
}

uint32_t FlockRuntime::ActiveServerLanes() const {
  uint32_t n = 0;
  for (const auto& lane : server_.lanes) {
    n += lane->active ? 1 : 0;
  }
  return n;
}

double FlockRuntime::MeanServerCoalescing() const {
  uint64_t msgs = 0, reqs = 0;
  for (const auto& lane : server_.lanes) {
    msgs += lane->messages_handled;
    reqs += lane->requests_handled;
  }
  return msgs == 0 ? 0.0 : static_cast<double>(reqs) / static_cast<double>(msgs);
}

// ---------------------------------------------------------------------------
// fl_connect: client half of the handshake (the server half is in lane.cc)
// ---------------------------------------------------------------------------

Connection* FlockRuntime::Connect(FlockRuntime& server, uint32_t lanes,
                                  tenant::TenantId tenant) {
  FLOCK_CHECK(server.server_.started)
      << "call StartServer() on the remote node before fl_connect";
  return Connect(server.node_, lanes, tenant);
}

Connection* FlockRuntime::Connect(int server_node, uint32_t lanes,
                                  tenant::TenantId tenant) {
  lanes = std::min(lanes, config_.max_lanes_per_connection);
  // The handshake advertises every lane in one message.
  lanes = std::min(lanes, ctrl::wire::kMaxLanesPerMsg);
  FLOCK_CHECK_GT(lanes, 0u);

  auto conn = std::make_unique<Connection>();
  conn->state_.env = &env_;
  conn->state_.client = &client_;
  conn->state_.server_node = server_node;
  conn->state_.target_lanes = lanes;
  conn->state_.tenant_id = tenant;

  // Client halves first: QPs, rings, MRs — their coordinates travel in the
  // connect request. ControlPlane::Call is the out-of-band side channel
  // (RDMA-CM style): synchronous and event-free, so the data-path trace of a
  // fault-free run is byte-identical to the old statically-wired setup.
  ctrl::wire::ClientLaneInfo scratch;
  for (uint32_t i = 0; i < lanes; ++i) {
    conn->state_.lanes.push_back(
        internal::BuildClientLane(env_, conn->state_, i, &scratch));
  }
  if (!internal::ConnectHandshake(conn->state_, nullptr, nullptr)) {
    // With tenancy on, admission control refusing a handle is a legitimate
    // outcome surfaced as nullptr; otherwise a reject stays the legacy hard
    // failure. The unwired lanes have posted nothing, so closing (which
    // harvests their shells under qp_recycling) and destroying them is safe.
    FLOCK_CHECK(config_.tenancy)
        << "fl_connect: node " << server_node
        << " rejected the handshake (is StartServer running there?)";
    conn->state_.admission_rejected = true;
    internal::CloseClientConn(conn->state_);
    return nullptr;
  }

  FinishConnect(conn.get());
  connections_.push_back(std::move(conn));
  client_.conns.push_back(&connections_.back()->state_);
  return connections_.back().get();
}

sim::Co<Connection*> FlockRuntime::ConnectAsync(int server_node,
                                                uint32_t lanes,
                                                tenant::TenantId tenant) {
  lanes = std::min(lanes, config_.max_lanes_per_connection);
  lanes = std::min(lanes, ctrl::wire::kMaxLanesPerMsg);
  FLOCK_CHECK_GT(lanes, 0u);
  const sim::CostModel& cost = cluster_.cost();

  auto conn = std::make_unique<Connection>();
  internal::ClientConnState& st = conn->state_;
  st.env = &env_;
  st.client = &client_;
  st.server_node = server_node;
  st.target_lanes = lanes;
  st.tenant_id = tenant;
  if (config_.lazy_lanes || config_.connect_piggyback) {
    st.setup_cond = std::make_unique<sim::Condition>(cluster_.sim());
  }

  // Eager lane set: the full request (classic) or just lane 0 (lazy_lanes) —
  // the rest materialize on first use via EnsureLaneSetup. Unlike the
  // setup-phase Connect, the bring-up costs simulated time, charged by
  // provenance: a pooled shell is a cheap ResetQp transition, a fresh QP is
  // the full create.
  const uint32_t eager = config_.lazy_lanes ? 1 : lanes;
  ctrl::wire::ClientLaneInfo scratch;
  const uint64_t created_before = client_.stats.qps_created;
  const uint64_t recycled_before = client_.stats.qps_recycled;
  for (uint32_t i = 0; i < eager; ++i) {
    st.lanes.push_back(internal::BuildClientLane(env_, st, i, &scratch));
  }
  co_await sim::Delay(
      cluster_.sim(),
      (client_.stats.qps_created - created_before) * cost.qp_create +
          (client_.stats.qps_recycled - recycled_before) * cost.qp_reset);

  if (config_.connect_piggyback) {
    // No out-of-band exchange now: the ConnectRequest rides with the first
    // RPC (EnsureLaneSetup flushes it), so connect returns immediately.
    st.handshake_pending = true;
  } else {
    co_await sim::Delay(cluster_.sim(), config_.ctrl_rtt);
    uint32_t fresh = 0;
    uint32_t recycled = 0;
    if (!internal::ConnectHandshake(st, &fresh, &recycled)) {
      FLOCK_CHECK(config_.tenancy)
          << "fl_connect_async: node " << server_node
          << " rejected the handshake (is StartServer running there?)";
      st.admission_rejected = true;
      internal::CloseClientConn(st);
      co_return nullptr;
    }
    co_await sim::Delay(cluster_.sim(),
                        fresh * cost.qp_create + recycled * cost.qp_reset);
  }

  FinishConnect(conn.get());
  connections_.push_back(std::move(conn));
  client_.conns.push_back(&connections_.back()->state_);
  co_return connections_.back().get();
}

void FlockRuntime::CloseConnection(Connection* conn) {
  internal::ClientConnState& st = conn->state_;
  if (st.closed) {
    return;
  }
  // Orderly disconnect (DESIGN.md §15): with tenancy on, tell the server so
  // its sender slot and the tenant's admission accounting are reclaimed now,
  // not whenever dead-sender detection happens to notice the departed QPs.
  // Never-handshaken handles (pending piggyback, admission rejects) hold no
  // server-side state to release.
  if (config_.tenancy && !st.handshake_pending && !st.admission_rejected) {
    ctrl::ControlPlane& cp = ctrl::ControlPlane::For(cluster_);
    ctrl::wire::DisconnectRequest req;
    req.client_node = node_;
    req.conn_id = st.conn_id;
    uint8_t msg[ctrl::wire::kMaxMessageBytes];
    uint8_t resp[ctrl::wire::kMaxMessageBytes];
    const uint32_t msg_len = ctrl::wire::EncodeMessage(
        msg, sizeof(msg), ctrl::wire::MsgType::kDisconnectRequest,
        cp.NextNonce(), &req, sizeof(req));
    // Best effort: a reject (server gone, already dead) leaves reclamation
    // to the dead-sender path, which TearDownOneSender guards for.
    cp.Call(st.server_node, msg, msg_len, resp, sizeof(resp));
  }
  internal::CloseClientConn(st);
  // Detach from the client procs' iteration set. The handle itself stays in
  // connections_: stale CQEs and parked coroutines may still hold pointers
  // into its lanes, which are never destroyed (only their shells recycle).
  for (size_t i = 0; i < client_.conns.size(); ++i) {
    if (client_.conns[i] == &st) {
      client_.conns.erase(client_.conns.begin() +
                          static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
}

void FlockRuntime::FinishConnect(Connection* conn) {
  if (config_.lane_reconnect) {
    FLOCK_CHECK(config_.rpc_timeout > 0)
        << "lane_reconnect requires rpc_timeout: in-flight RPCs on a dead QP "
           "recover only through the retry watchdog";
    conn->state_.reconnect_cond = std::make_unique<sim::Condition>(cluster_.sim());
    cluster_.sim().Spawn(internal::ReconnectDaemon(conn->state_), node_);
  }
  if (config_.elastic_lanes) {
    cluster_.sim().Spawn(internal::ElasticScaler(conn->state_), node_);
  }
}

// ---------------------------------------------------------------------------
// Connection: thin facade over the mechanism modules
// ---------------------------------------------------------------------------

uint32_t Connection::num_active_lanes() const {
  uint32_t n = 0;
  for (const auto& lane : state_.lanes) {
    n += lane->active ? 1 : 0;
  }
  return n;
}

uint32_t Connection::num_failed_lanes() const {
  uint32_t n = 0;
  for (const auto& lane : state_.lanes) {
    n += lane->failed ? 1 : 0;
  }
  return n;
}

uint64_t Connection::messages_sent() const {
  uint64_t n = 0;
  for (const auto& lane : state_.lanes) {
    n += lane->messages_sent;
  }
  return n;
}

uint64_t Connection::requests_sent() const {
  uint64_t n = 0;
  for (const auto& lane : state_.lanes) {
    n += lane->requests_sent;
  }
  return n;
}

void Connection::BatchHistogram(uint64_t out[33]) const {
  for (const auto& lane : state_.lanes) {
    for (int i = 0; i < 33; ++i) {
      out[i] += lane->batch_histogram[i];
    }
  }
}

double Connection::MeanCoalescing() const {
  const uint64_t msgs = messages_sent();
  return msgs == 0 ? 0.0
                   : static_cast<double>(requests_sent()) / static_cast<double>(msgs);
}

Connection::LaneStates Connection::CountLaneStates() const {
  LaneStates s;
  for (const auto& lane : state_.lanes) {
    if (lane->retired) {
      s.retired += 1;
    } else if (lane->failed) {
      if (lane->reconnecting) {
        s.reconnecting += 1;
      } else {
        s.quarantined += 1;
      }
    } else {
      s.healthy += 1;
    }
  }
  return s;
}

uint64_t Connection::lane_reconnects() const {
  uint64_t n = 0;
  for (const auto& lane : state_.lanes) {
    n += lane->reconnects;
  }
  return n;
}

sim::Co<PendingRpc*> Connection::SendRpc(FlockThread& thread, uint16_t rpc_id,
                                         const uint8_t* data, uint32_t len) {
  // Plain forwarder: Co is lazily started, so this adds no coroutine frame
  // (and no trace-visible event) over calling StageRpc directly.
  return internal::StageRpc(state_, thread, rpc_id, PayloadRef(data, len));
}

sim::Co<PendingRpc*> Connection::SendRpc(FlockThread& thread, uint16_t rpc_id,
                                         const PayloadRef& payload,
                                         uint8_t* response_dst,
                                         uint32_t response_cap) {
  return internal::StageRpc(state_, thread, rpc_id, payload, response_dst,
                            response_cap);
}

sim::Co<bool> Connection::AwaitResponse(FlockThread& thread, PendingRpc* rpc) {
  co_await rpc->done_event.Wait();
  FLOCK_CHECK(rpc->done());
  co_await thread.core().Work(state_.env->cost().cpu_cqe_handle);
  co_return rpc->ok;
}

void Connection::FreeRpc(PendingRpc* rpc) { state_.client->rpc_pool.Delete(rpc); }

sim::Co<bool> Connection::Call(FlockThread& thread, uint16_t rpc_id,
                               const uint8_t* data, uint32_t len,
                               std::vector<uint8_t>* response) {
  PendingRpc* rpc = co_await SendRpc(thread, rpc_id, data, len);
  const bool ok = co_await AwaitResponse(thread, rpc);
  if (ok && response != nullptr) {
    rpc->response.CopyTo(response);
  }
  FreeRpc(rpc);
  co_return ok;
}

sim::Co<bool> Connection::Call(FlockThread& thread, uint16_t rpc_id,
                               const PayloadRef& request, uint8_t* response_dst,
                               uint32_t response_cap, uint32_t* response_len) {
  PendingRpc* rpc =
      co_await SendRpc(thread, rpc_id, request, response_dst, response_cap);
  const bool ok = co_await AwaitResponse(thread, rpc);
  if (response_len != nullptr) {
    *response_len = ok ? rpc->response_len : 0;
  }
  FreeRpc(rpc);
  co_return ok;
}

// ---------------------------------------------------------------------------
// Connection: one-sided memory and atomic operations (§6)
// ---------------------------------------------------------------------------

RemoteMr Connection::AttachMreg(uint64_t remote_addr, uint64_t length) {
  verbs::Mr mr =
      state_.env->cluster->device(state_.server_node).RegisterMr(remote_addr, length);
  return RemoteMr{remote_addr, length, mr.rkey};
}

sim::Co<verbs::WcStatus> Connection::Read(FlockThread& thread, uint64_t local_addr,
                                          uint64_t remote_addr, uint32_t length,
                                          const RemoteMr& mr) {
  verbs::SendWr wr;
  wr.opcode = verbs::Opcode::kRead;
  wr.local_addr = local_addr;
  wr.length = length;
  wr.remote_addr = remote_addr;
  wr.rkey = mr.rkey;
  return internal::SubmitMemOp(state_, thread, wr);
}

sim::Co<verbs::WcStatus> Connection::Write(FlockThread& thread, uint64_t local_addr,
                                           uint64_t remote_addr, uint32_t length,
                                           const RemoteMr& mr) {
  verbs::SendWr wr;
  wr.opcode = verbs::Opcode::kWrite;
  wr.local_addr = local_addr;
  wr.length = length;
  wr.remote_addr = remote_addr;
  wr.rkey = mr.rkey;
  return internal::SubmitMemOp(state_, thread, wr);
}

sim::Co<verbs::WcStatus> Connection::FetchAndAdd(FlockThread& thread,
                                                 uint64_t remote_addr, uint64_t add,
                                                 uint64_t* old_value,
                                                 const RemoteMr& mr,
                                                 uint64_t result_addr) {
  const uint64_t slot = result_addr != 0 ? result_addr : thread.atomic_slot;
  verbs::SendWr wr;
  wr.opcode = verbs::Opcode::kFetchAdd;
  wr.local_addr = slot;
  wr.length = 8;
  wr.remote_addr = remote_addr;
  wr.rkey = mr.rkey;
  wr.swap_or_add = add;
  const verbs::WcStatus status = co_await internal::SubmitMemOp(state_, thread, wr);
  if (status == verbs::WcStatus::kSuccess && old_value != nullptr) {
    state_.env->mem().Read(slot, old_value, 8);
  }
  co_return status;
}

sim::Co<verbs::WcStatus> Connection::CompareAndSwap(FlockThread& thread,
                                                    uint64_t remote_addr,
                                                    uint64_t expected,
                                                    uint64_t desired,
                                                    uint64_t* old_value,
                                                    const RemoteMr& mr,
                                                    uint64_t result_addr) {
  const uint64_t slot = result_addr != 0 ? result_addr : thread.atomic_slot;
  verbs::SendWr wr;
  wr.opcode = verbs::Opcode::kCmpSwap;
  wr.local_addr = slot;
  wr.length = 8;
  wr.remote_addr = remote_addr;
  wr.rkey = mr.rkey;
  wr.compare = expected;
  wr.swap_or_add = desired;
  const verbs::WcStatus status = co_await internal::SubmitMemOp(state_, thread, wr);
  if (status == verbs::WcStatus::kSuccess && old_value != nullptr) {
    state_.env->mem().Read(slot, old_value, 8);
  }
  co_return status;
}

// ---------------------------------------------------------------------------
// Control plane entry point (handlers live in lane.cc)
// ---------------------------------------------------------------------------

uint32_t FlockRuntime::OnCtrlMessage(const uint8_t* msg, uint32_t len,
                                     uint8_t* resp, uint32_t resp_cap) {
  ctrl::wire::MsgHeader header;
  if (!ctrl::wire::DecodeHeader(msg, len, &header)) {
    return 0;  // ControlPlane::Call validated framing; belt and braces
  }
  switch (static_cast<ctrl::wire::MsgType>(header.type)) {
    case ctrl::wire::MsgType::kConnectRequest:
      return internal::HandleConnectRequest(env_, server_, header, msg, resp,
                                            resp_cap);
    case ctrl::wire::MsgType::kReconnectRequest:
      return internal::HandleReconnectRequest(env_, server_, header, msg, resp,
                                              resp_cap);
    case ctrl::wire::MsgType::kAddLaneRequest:
      return internal::HandleAddLaneRequest(env_, server_, header, msg, resp,
                                            resp_cap);
    case ctrl::wire::MsgType::kRetireLaneRequest:
      return internal::HandleRetireLaneRequest(env_, server_, header, msg, resp,
                                               resp_cap);
    case ctrl::wire::MsgType::kDisconnectRequest:
      return internal::HandleDisconnectRequest(env_, server_, header, msg,
                                               resp, resp_cap);
    default:
      return ctrl::wire::EncodeReject(resp, resp_cap, header.nonce,
                                      ctrl::wire::RejectReason::kUnknown);
  }
}

}  // namespace flock
