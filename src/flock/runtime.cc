#include "src/flock/runtime.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace flock {

using internal::ClientLane;
using internal::CtrlType;
using internal::PendingSend;
using internal::SenderState;
using internal::ServerLane;
using internal::WrTag;

namespace {

// Completions drained per ibv_poll_cq-style call: dispatcher and scheduler
// passes pull CQEs in batches of this size (stack array) instead of one Poll
// per completion. Matches the num_entries real dataplanes pass to poll_cq.
constexpr size_t kCqPollBatch = 32;

}  // namespace

// ---------------------------------------------------------------------------
// FlockRuntime: construction and roles
// ---------------------------------------------------------------------------

FlockRuntime::FlockRuntime(verbs::Cluster& cluster, int node, const FlockConfig& config)
    : cluster_(cluster), node_(node), config_(config) {
  send_cq_ = cluster_.device(node_).CreateCq();
  recv_cq_ = cluster_.device(node_).CreateCq();
  rng_state_ ^= 0x1234567ull * static_cast<uint64_t>(node + 1);
  // Every runtime answers on the cluster's control plane (DESIGN.md §10):
  // servers accept connect/reconnect handshakes there, and registration makes
  // the node addressable before StartServer decides its role.
  ctrl::ControlPlane::For(cluster_).RegisterEndpoint(node_, this);
}

FlockRuntime::~FlockRuntime() {
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(cluster_);
  cp.DeregisterEndpoint(node_, this);
  if (membership_listener_id_ != 0) {
    cp.RemoveMembershipListener(membership_listener_id_);
  }
}

void FlockRuntime::RegisterHandler(uint16_t rpc_id, RpcHandler handler) {
  FLOCK_CHECK(FindHandler(rpc_id) == nullptr)
      << "duplicate handler for rpc " << rpc_id;
  handlers_.emplace_back(rpc_id, std::move(handler));
}

void FlockRuntime::StartServer(int dispatcher_cores) {
  FLOCK_CHECK(!server_started_);
  FLOCK_CHECK_GT(dispatcher_cores, 0);
  server_started_ = true;
  dispatcher_count_ = dispatcher_cores;
  dispatcher_lanes_.resize(static_cast<size_t>(dispatcher_cores));
  work_ready_ = std::make_unique<sim::Condition>(cluster_.sim());
  for (int i = 0; i < dispatcher_cores; ++i) {
    cluster_.sim().Spawn(RequestDispatcher(i));
  }
  // §4.3: optionally, an application-managed pool of RPC workers executes the
  // handlers; the dispatchers then only detect and route messages.
  for (int i = 0; i < config_.server_workers; ++i) {
    cluster_.sim().Spawn(RpcWorker(i));
  }
  cluster_.sim().Spawn(QpScheduler());
  // Membership feed (§5.1 meets §10): a client node leaving tears its senders
  // down and repartitions the AQP budget right away instead of waiting for
  // dead-sender reclamation to notice. Registration is a plain callback —
  // no proc, no events — so fault-free traces are unchanged.
  membership_listener_id_ = ctrl::ControlPlane::For(cluster_).AddMembershipListener(
      [this](int changed_node, bool joined) {
        if (!joined && changed_node != node_) {
          OnMemberLeft(changed_node);
        }
      });
}

void FlockRuntime::StartClient() {
  FLOCK_CHECK(!client_started_);
  client_started_ = true;
  for (int i = 0; i < config_.response_dispatchers; ++i) {
    cluster_.sim().Spawn(ResponseDispatcher(i));
  }
  cluster_.sim().Spawn(ThreadScheduler());
  // The retry watchdog exists only when timeouts are enabled, so the default
  // configuration spawns no extra proc and the event trace stays untouched.
  if (config_.rpc_timeout > 0) {
    cluster_.sim().Spawn(RetryWatchdog());
  }
}

FlockThread* FlockRuntime::CreateThread(int core) {
  const uint16_t id = static_cast<uint16_t>(threads_.size());
  threads_.push_back(std::make_unique<FlockThread>(
      node_, id, &cluster_.cpu(node_).core(core), SplitMix64(rng_state_)));
  threads_.back()->atomic_slot = cluster_.mem(node_).Alloc(8, 8);
  return threads_.back().get();
}

uint32_t FlockRuntime::ActiveServerLanes() const {
  uint32_t n = 0;
  for (const auto& lane : server_lanes_) {
    n += lane->active ? 1 : 0;
  }
  return n;
}

double FlockRuntime::MeanServerCoalescing() const {
  uint64_t msgs = 0, reqs = 0;
  for (const auto& lane : server_lanes_) {
    msgs += lane->messages_handled;
    reqs += lane->requests_handled;
  }
  return msgs == 0 ? 0.0 : static_cast<double>(reqs) / static_cast<double>(msgs);
}

// ---------------------------------------------------------------------------
// fl_connect: building a connection handle
// ---------------------------------------------------------------------------

std::unique_ptr<ClientLane> FlockRuntime::BuildClientLane(
    Connection& conn, uint32_t index, ctrl::wire::ClientLaneInfo* info) {
  fabric::MemorySpace& cmem = cluster_.mem(node_);
  const uint32_t ring_bytes = config_.ring_bytes;

  auto cl = std::make_unique<ClientLane>(cluster_.sim(), ring_bytes);
  cl->copy_done = std::make_unique<sim::Condition>(cluster_.sim());
  cl->sent_cond = std::make_unique<sim::Condition>(cluster_.sim());
  cl->index = index;
  cl->conn = &conn;
  cl->qp = cluster_.device(node_).CreateQp(verbs::QpType::kRc, send_cq_, recv_cq_);

  // Client-local memory: staging mirror for the request ring, head-slot write
  // source, the control slot the server RDMA-writes, and the response ring.
  cl->staging_addr = cmem.Alloc(ring_bytes);
  cl->staging = cmem.At(cl->staging_addr);
  cl->head_src_addr = cmem.Alloc(8, 8);
  cl->head_src_ptr = cmem.At(cl->head_src_addr);
  cl->ctrl_slot_addr = cmem.Alloc(8, 8);
  cl->ctrl_slot_ptr = cmem.At(cl->ctrl_slot_addr);
  verbs::Mr ctrl_mr = cluster_.device(node_).RegisterMr(cl->ctrl_slot_addr, 8);
  cl->resp_ring_addr = cmem.Alloc(ring_bytes);
  verbs::Mr resp_mr =
      cluster_.device(node_).RegisterMr(cl->resp_ring_addr, ring_bytes);
  cl->resp_consumer =
      std::make_unique<RingConsumer>(cmem.At(cl->resp_ring_addr), ring_bytes);

  info->qpn = cl->qp->qpn();
  info->resp_ring_addr = cl->resp_ring_addr;
  info->resp_ring_rkey = resp_mr.rkey;
  info->ctrl_slot_addr = cl->ctrl_slot_addr;
  info->ctrl_slot_rkey = ctrl_mr.rkey;
  return cl;
}

void FlockRuntime::WireClientLane(ClientLane& lane, int server_node,
                                  const ctrl::wire::ServerLaneInfo& info,
                                  uint32_t grant_cumulative) {
  lane.qp->ConnectTo(server_node, info.qpn);
  lane.remote_ring_addr = info.req_ring_addr;
  lane.remote_ring_rkey = info.req_ring_rkey;
  lane.head_slot_remote_addr = info.head_slot_addr;
  lane.head_slot_rkey = info.head_slot_rkey;
  // Receives for control write-with-imm messages.
  for (int r = 0; r < 16; ++r) {
    lane.qp->PostRecv(
        verbs::RecvWr{internal::TagWrId(WrTag::kRecv, &lane), 0, 0});
  }
  lane.active = info.active != 0;
  lane.credits = info.credits;
  lane.grants_seen = grant_cumulative;
  internal::CtrlSlot bootstrap;
  bootstrap.grant_cumulative = grant_cumulative;
  bootstrap.active = info.active;
  cluster_.mem(node_).Write(lane.ctrl_slot_addr, &bootstrap, sizeof(bootstrap));
}

std::unique_ptr<ServerLane> FlockRuntime::BuildServerLane(
    uint32_t index, int client_node, uint32_t sender_key, uint32_t ring_bytes,
    const ctrl::wire::ClientLaneInfo& in, bool active,
    ctrl::wire::ServerLaneInfo* out) {
  fabric::MemorySpace& smem = cluster_.mem(node_);

  auto sl = std::make_unique<ServerLane>(ring_bytes);
  sl->index = index;
  sl->client_node = client_node;
  sl->sender_key = sender_key;
  sl->qp = cluster_.device(node_).CreateQp(verbs::QpType::kRc, send_cq_, recv_cq_);
  sl->qp->ConnectTo(client_node, in.qpn);

  // Request ring lives here; the client advertised its response-side memory.
  sl->req_ring_addr = smem.Alloc(ring_bytes);
  verbs::Mr req_mr = cluster_.device(node_).RegisterMr(sl->req_ring_addr, ring_bytes);
  sl->req_consumer =
      std::make_unique<RingConsumer>(smem.At(sl->req_ring_addr), ring_bytes);
  sl->req_ring_rkey = req_mr.rkey;
  sl->head_slot_addr = smem.Alloc(8, 8);
  sl->head_slot_ptr = smem.At(sl->head_slot_addr);
  verbs::Mr slot_mr = cluster_.device(node_).RegisterMr(sl->head_slot_addr, 8);
  sl->head_slot_rkey = slot_mr.rkey;
  sl->ctrl_slot_remote_addr = in.ctrl_slot_addr;
  sl->ctrl_slot_rkey = in.ctrl_slot_rkey;
  sl->ctrl_src_addr = smem.Alloc(8, 8);
  sl->ctrl_src_ptr = smem.At(sl->ctrl_src_addr);
  sl->remote_ring_addr = in.resp_ring_addr;
  sl->remote_ring_rkey = in.resp_ring_rkey;
  sl->staging_addr = smem.Alloc(ring_bytes);
  sl->staging = smem.At(sl->staging_addr);

  for (int r = 0; r < 16; ++r) {
    sl->qp->PostRecv(
        verbs::RecvWr{internal::TagWrId(WrTag::kServerRecv, sl.get()), 0, 0});
  }

  sl->active = active;
  sl->credits_outstanding = active ? config_.credits : 0;

  out->qpn = sl->qp->qpn();
  out->req_ring_addr = sl->req_ring_addr;
  out->req_ring_rkey = sl->req_ring_rkey;
  out->head_slot_addr = sl->head_slot_addr;
  out->head_slot_rkey = sl->head_slot_rkey;
  out->active = active ? 1 : 0;
  out->credits = active ? config_.credits : 0;
  return sl;
}

Connection* FlockRuntime::Connect(FlockRuntime& server, uint32_t lanes) {
  FLOCK_CHECK(server.server_started_)
      << "call StartServer() on the remote node before fl_connect";
  return Connect(server.node_, lanes);
}

Connection* FlockRuntime::Connect(int server_node, uint32_t lanes) {
  lanes = std::min(lanes, config_.max_lanes_per_connection);
  // The handshake advertises every lane in one message.
  lanes = std::min(lanes, ctrl::wire::kMaxLanesPerMsg);
  FLOCK_CHECK_GT(lanes, 0u);

  auto conn = std::make_unique<Connection>();
  conn->client_ = this;
  conn->server_node_ = server_node;

  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(cluster_);

  // Client halves first: QPs, rings, MRs — their coordinates travel in the
  // connect request. ControlPlane::Call is the out-of-band side channel
  // (RDMA-CM style): synchronous and event-free, so the data-path trace of a
  // fault-free run is byte-identical to the old statically-wired setup.
  ctrl::wire::ConnectRequest req;
  req.client_node = node_;
  req.num_lanes = lanes;
  req.ring_bytes = config_.ring_bytes;
  for (uint32_t i = 0; i < lanes; ++i) {
    conn->lanes_.push_back(BuildClientLane(*conn, i, &req.lanes[i]));
  }

  uint8_t msg[ctrl::wire::kMaxMessageBytes];
  uint8_t resp[ctrl::wire::kMaxMessageBytes];
  const uint32_t msg_len = ctrl::wire::EncodeMessage(
      msg, sizeof(msg), ctrl::wire::MsgType::kConnectRequest, cp.NextNonce(),
      &req, ctrl::wire::ConnectRequestBytes(lanes));
  const uint32_t resp_len = cp.Call(server_node, msg, msg_len, resp, sizeof(resp));

  ctrl::wire::MsgHeader resp_header;
  ctrl::wire::ConnectAccept accept;
  FLOCK_CHECK(resp_len > 0 && ctrl::wire::DecodeHeader(resp, resp_len, &resp_header) &&
              ctrl::wire::DecodeConnectAccept(resp_header, resp, &accept) &&
              accept.num_lanes == lanes)
      << "fl_connect: node " << server_node
      << " rejected the handshake (is StartServer running there?)";
  conn->conn_id_ = accept.conn_id;
  for (uint32_t i = 0; i < lanes; ++i) {
    WireClientLane(*conn->lanes_[i], server_node, accept.lanes[i],
                   /*grant_cumulative=*/0);
  }

  if (config_.lane_reconnect) {
    FLOCK_CHECK(config_.rpc_timeout > 0)
        << "lane_reconnect requires rpc_timeout: in-flight RPCs on a dead QP "
           "recover only through the retry watchdog";
    conn->reconnect_cond_ = std::make_unique<sim::Condition>(cluster_.sim());
    cluster_.sim().Spawn(conn->ReconnectDaemon());
  }
  if (config_.elastic_lanes) {
    cluster_.sim().Spawn(conn->ElasticScaler());
  }

  connections_.push_back(std::move(conn));
  return connections_.back().get();
}

// ---------------------------------------------------------------------------
// Connection: client data path
// ---------------------------------------------------------------------------

uint32_t Connection::num_active_lanes() const {
  uint32_t n = 0;
  for (const auto& lane : lanes_) {
    n += lane->active ? 1 : 0;
  }
  return n;
}

uint32_t Connection::num_failed_lanes() const {
  uint32_t n = 0;
  for (const auto& lane : lanes_) {
    n += lane->failed ? 1 : 0;
  }
  return n;
}

void Connection::QuarantineLane(ClientLane& lane) {
  if (lane.failed) {
    return;
  }
  lane.failed = true;
  lane.active = false;
  lane.credits = 0;
  lane.renew_in_flight = false;
  client_->client_stats_.lane_failures += 1;
  // Remember which threads this lane was serving so a later reconnect can
  // send exactly those threads back. Pulling only the evacuees home keeps
  // every surviving lane's thread set — and with it the phase-aligned
  // coalescing those threads have built up — intact; a wholesale re-sort
  // would scramble the pairs and halve the coalescing degree permanently.
  lane.evacuated_tids.clear();
  for (size_t tid = 0; tid < thread_lane_.size(); ++tid) {
    if (thread_lane_[tid] == lane.index ||
        (tid < desired_lane_.size() && desired_lane_[tid] == lane.index)) {
      lane.evacuated_tids.push_back(static_cast<uint32_t>(tid));
    }
  }
  // Wake the pump so queued work migrates (or drains) off the dead lane.
  lane.send_ready.NotifyAll();
  // Kick the reconnect daemon (constructed only when lane_reconnect is on).
  if (reconnect_cond_ != nullptr) {
    reconnect_cond_->NotifyAll();
  }
}

uint64_t Connection::messages_sent() const {
  uint64_t n = 0;
  for (const auto& lane : lanes_) {
    n += lane->messages_sent;
  }
  return n;
}

uint64_t Connection::requests_sent() const {
  uint64_t n = 0;
  for (const auto& lane : lanes_) {
    n += lane->requests_sent;
  }
  return n;
}

void Connection::BatchHistogram(uint64_t out[33]) const {
  for (const auto& lane : lanes_) {
    for (int i = 0; i < 33; ++i) {
      out[i] += lane->batch_histogram[i];
    }
  }
}

double Connection::MeanCoalescing() const {
  const uint64_t msgs = messages_sent();
  return msgs == 0 ? 0.0
                   : static_cast<double>(requests_sent()) / static_cast<double>(msgs);
}

internal::ClientLane& Connection::LaneFor(FlockThread& thread) {
  const size_t tid = thread.id();
  if (thread_lane_.size() <= tid) {
    thread_lane_.resize(tid + 1, UINT32_MAX);
  }
  uint32_t current = thread_lane_[tid];
  if (desired_lane_.size() <= tid) {
    desired_lane_.resize(tid + 1, UINT32_MAX);
  }
  const uint32_t desired = desired_lane_[tid];
  // Apply a pending migration only once all of the thread's outstanding
  // requests have completed (sequence-id safety, §5.2).
  if (desired != UINT32_MAX && desired != current && thread.outstanding == 0) {
    current = desired;
    thread_lane_[tid] = current;
  }
  if (current == UINT32_MAX || (!lanes_[current]->active && thread.outstanding == 0)) {
    // Initial (or repair) assignment: spread over the active lanes.
    std::vector<uint32_t> active;
    for (uint32_t i = 0; i < lanes_.size(); ++i) {
      if (lanes_[i]->active) {
        active.push_back(i);
      }
    }
    if (active.empty()) {
      // Server guarantees >= 1 active in healthy operation, so this is
      // transient; prefer any surviving lane over a quarantined one.
      for (uint32_t i = 0; i < lanes_.size(); ++i) {
        if (!lanes_[i]->failed && !lanes_[i]->retired) {
          active.push_back(i);
          break;
        }
      }
      if (active.empty()) {
        active.push_back(0);  // every lane dead: nowhere better to stage
      }
    }
    current = active[tid % active.size()];
    thread_lane_[tid] = current;
    desired_lane_[tid] = current;
  }
  return *lanes_[current];
}

sim::Co<PendingRpc*> Connection::SendRpc(FlockThread& thread, uint16_t rpc_id,
                                         const uint8_t* data, uint32_t len) {
  const FlockConfig& config = client_->config();
  const sim::CostModel& cost = client_->cost();
  FLOCK_CHECK_LE(len, config.max_payload);

  ClientLane& lane = LaneFor(thread);

  PendingRpc* rpc = client_->rpc_pool_.New();
  rpc->rpc_id = rpc_id;
  rpc->seq = thread.NextSeq();
  rpc->thread_id = thread.id();
  rpc->submitted_at = client_->sim().Now();
  rpc->lane_index = lane.index;
  if (config.rpc_timeout > 0) {
    // Failure handling armed: retain the payload for retransmission and set
    // the first deadline. With timeouts off, neither field is ever read.
    rpc->deadline = rpc->submitted_at + config.rpc_timeout;
    rpc->request.Assign(data, len);
  }
  if (pending_.size() <= thread.id()) {
    pending_.resize(size_t{thread.id()} + 1);
  }
  pending_[thread.id()].Insert(rpc->seq, rpc);

  PendingSend* ps = client_->send_pool_.New();
  ps->meta.data_len = len;
  ps->meta.thread_id = thread.id();
  ps->meta.rpc_id = rpc_id;
  ps->meta.seq = rpc->seq;
  ps->owner_core = &thread.core();
  ps->data.Assign(data, len);

  thread.outstanding += 1;
  lane.inflight += 1;
  thread.req_size_median.Record(len);
  thread.reqs_sent.Add(1);
  thread.bytes_sent.Add(len);

  // TCQ enqueue: one atomic swap + a cacheline transfer makes the request
  // visible to the (current or future) leader...
  co_await thread.core().Work(cost.cpu_atomic_rmw + cost.cpu_cacheline_transfer);
  PendingSend* handle = ps;
  if (lane.combine_tail != nullptr) {
    lane.combine_tail->next = ps;
  } else {
    lane.combine_head = ps;
  }
  lane.combine_tail = ps;
  WakePump(lane);
  // ...then the thread copies its payload into the combining buffer and
  // raises its copy-completion flag, which the leader polls (§4.2).
  bool sent = false;
  handle->sent_flag = &sent;
  handle->sent_cond = lane.sent_cond.get();
  co_await thread.core().Work(cost.MemcpyCost(len + wire::kMetaBytes));
  if (handle->dropped) {
    // The lane was quarantined mid-copy and the pump unlinked this request,
    // releasing the waiter (`sent` is already true) and handing the handle
    // back to us. The RPC itself stays pending for the retry watchdog.
    client_->send_pool_.Delete(handle);
  } else {
    handle->copied = true;
    lane.copy_done->NotifyAll();
  }
  // fl_send_rpc completes when the combined message is on the wire: a leader
  // posts it itself; a follower waits for the (transient) leader to do so.
  while (!sent) {
    co_await lane.sent_cond->Wait();
  }
  co_return rpc;
}

sim::Co<bool> Connection::AwaitResponse(FlockThread& thread, PendingRpc* rpc) {
  co_await rpc->done_event.Wait();
  FLOCK_CHECK(rpc->done());
  co_await thread.core().Work(client_->cost().cpu_cqe_handle);
  co_return rpc->ok;
}

void Connection::FreeRpc(PendingRpc* rpc) { client_->rpc_pool_.Delete(rpc); }

sim::Co<bool> Connection::Call(FlockThread& thread, uint16_t rpc_id,
                               const uint8_t* data, uint32_t len,
                               std::vector<uint8_t>* response) {
  PendingRpc* rpc = co_await SendRpc(thread, rpc_id, data, len);
  const bool ok = co_await AwaitResponse(thread, rpc);
  if (ok && response != nullptr) {
    rpc->response.CopyTo(response);
  }
  FreeRpc(rpc);
  co_return ok;
}

void Connection::MaybeRenewCredits(ClientLane& lane, verbs::SendWr* wrs,
                                   size_t* nwrs) {
  const FlockConfig& config = client_->config();
  if (!lane.active || lane.renew_in_flight ||
      lane.credits > config.credit_renew_threshold) {
    return;
  }
  // write-with-imm carrying {lane, median coalescing degree since last renew}
  // (§5.1 + §7). Zero-length write: only the immediate travels.
  verbs::SendWr wr;
  wr.wr_id = internal::TagWrId(WrTag::kCtrl, &lane);
  wr.opcode = verbs::Opcode::kWriteImm;
  wr.local_addr = 0;
  wr.length = 0;
  wr.remote_addr = lane.remote_ring_addr;
  wr.rkey = lane.remote_ring_rkey;
  wr.signaled = false;
  const uint32_t degree =
      std::min<uint32_t>(lane.coalesce_degree.Median(1), 0xffff);
  wr.imm = internal::PackCtrl(CtrlType::kRenewRequest, lane.index,
                              std::max<uint32_t>(degree, 1));
  wrs[(*nwrs)++] = wr;
  lane.renew_in_flight = true;
}

void Connection::WakePump(ClientLane& lane) {
  if (lane.pump_running) {
    return;  // the running pump's admit loop picks the new request up
  }
  lane.pump_running = true;
  if (!lane.pump_spawned) {
    lane.pump_spawned = true;
    client_->sim().Spawn(Pump(lane));
  } else {
    lane.pump_wake.Fire(client_->sim());
  }
}

sim::Proc Connection::Pump(ClientLane& lane) {
  const FlockConfig& config = client_->config();
  const sim::CostModel& cost = client_->cost();
  sim::Simulator& sim = client_->sim();
  (void)sim;

  for (;;) {
    if (lane.combine_head == nullptr) {
      // Queue drained: park until the next request (or retry restage) wakes
      // us. pump_running goes false and the wake is re-armed with no
      // suspension in between, so pump_running == false implies parked.
      lane.pump_running = false;
      lane.pump_wake.Reset();
      co_await lane.pump_wake.Wait();
      continue;
    }
    // Collect the leader's batch: bounded combining (§4.2). The batch is an
    // intrusive list spliced off the front of the lane's combining queue.
    const size_t bound = config.coalescing ? config.max_coalesce : 1;
    PendingSend* batch_head = nullptr;
    PendingSend* batch_tail = nullptr;
    size_t batch_n = 0;
    uint32_t data_bytes = 0;
    // Admits queued requests up to the bound; followers that enqueue while
    // the leader waits are admitted too (the leader-progress rule). The
    // encoder-capacity check guards pathological payload mixes.
    auto admit = [&]() {
      while (batch_n < bound && lane.combine_head != nullptr) {
        PendingSend* ps = lane.combine_head;
        const uint32_t next_len = ps->meta.data_len;
        if (batch_n > 0 &&
            wire::MessageBytes(static_cast<uint32_t>(batch_n) + 1,
                               data_bytes + next_len) > config.ring_bytes / 2) {
          break;
        }
        lane.combine_head = ps->next;
        if (lane.combine_head == nullptr) {
          lane.combine_tail = nullptr;
        }
        ps->next = nullptr;
        data_bytes += next_len;
        if (batch_tail != nullptr) {
          batch_tail->next = ps;
        } else {
          batch_head = ps;
        }
        batch_tail = ps;
        ++batch_n;
      }
    };
    auto all_copied = [&]() {
      for (const PendingSend* ps = batch_head; ps != nullptr; ps = ps->next) {
        if (!ps->copied) {
          return false;
        }
      }
      return true;
    };
    while (true) {
      admit();
      if (all_copied()) {
        break;
      }
      co_await lane.copy_done->Wait();
    }

    sim::Core& core = *batch_head->owner_core;
    // Leader overhead before finalizing: buffer management and flag polls.
    // Followers arriving during this window are still admitted below.
    co_await core.Work(cost.cpu_msg_fixed);
    while (true) {
      admit();
      if (all_copied()) {
        break;
      }
      co_await lane.copy_done->Wait();
    }

    uint32_t n = static_cast<uint32_t>(batch_n);
    uint32_t msg_len = wire::MessageBytes(n, data_bytes);

    // Wait for a credit and contiguous ring space.
    RingProducer::Reservation resv;
    bool requeued = false;  // batch handed off (migrated or dropped)
    while (true) {
      if (!lane.active && lane.credits == 0) {
        // Deactivated and drained: migrate the queued work to an active lane
        // (sender-side thread scheduling will move the threads themselves).
        ClientLane* target = nullptr;
        for (const auto& other : lanes_) {
          if (other->active) {
            target = other.get();
            break;
          }
        }
        if (target != nullptr && target != &lane) {
          // Put the batch back in front of the remaining queue, then splice
          // the whole queue onto the target lane.
          if (batch_tail != nullptr) {
            batch_tail->next = lane.combine_head;
            lane.combine_head = batch_head;
            if (lane.combine_tail == nullptr) {
              lane.combine_tail = batch_tail;
            }
          }
          size_t moved = 0;
          for (PendingSend* ps = lane.combine_head; ps != nullptr; ps = ps->next) {
            ++moved;
          }
          if (target->combine_tail != nullptr) {
            target->combine_tail->next = lane.combine_head;
          } else {
            target->combine_head = lane.combine_head;
          }
          target->combine_tail = lane.combine_tail;
          lane.combine_head = nullptr;
          lane.combine_tail = nullptr;
          target->inflight += moved;
          lane.inflight -= std::min<uint64_t>(lane.inflight, moved);
          WakePump(*target);
          requeued = true;  // queue is empty now: park at the loop top
          break;
        }
        if (lane.failed) {
          // Quarantined with nowhere to migrate: drop the queued sends and
          // release their waiters. The RPCs stay pending — the retry watchdog
          // retransmits them (or fails them) on whatever lane survives.
          FLOCK_CHECK(config.rpc_timeout > 0)
              << "lane quarantined with rpc_timeout == 0: no retry watchdog "
                 "is running, so the dropped RPCs would pend forever; set "
                 "FlockConfig::rpc_timeout when fault injection can kill QPs";
          if (batch_tail != nullptr) {
            batch_tail->next = lane.combine_head;
            lane.combine_head = batch_head;
            if (lane.combine_tail == nullptr) {
              lane.combine_tail = batch_tail;
            }
          }
          for (PendingSend* ps = lane.combine_head; ps != nullptr;) {
            PendingSend* next = ps->next;
            ps->next = nullptr;
            if (ps->sent_flag != nullptr) {
              *ps->sent_flag = true;
            }
            if (ps->sent_cond != nullptr && ps->sent_cond != lane.sent_cond.get()) {
              ps->sent_cond->NotifyAll();
            }
            if (ps->copied) {
              client_->send_pool_.Delete(ps);
            } else {
              // The submitting coroutine is still mid-copy and will write
              // `copied` through this pointer when it resumes; freeing the
              // slot here would be a use-after-free (a recycled slot would
              // get another RPC's copy flag raised early). Hand ownership
              // back: SendRpc frees a dropped handle after its copy work.
              ps->dropped = true;
            }
            ps = next;
          }
          lane.combine_head = nullptr;
          lane.combine_tail = nullptr;
          lane.sent_cond->NotifyAll();
          requeued = true;  // queue dropped: park at the loop top
          break;
        }
        co_await lane.send_ready.Wait();
        continue;
      }
      if (lane.credits > 0 && lane.req_producer.Reserve(msg_len, &resv)) {
        break;
      }
      co_await lane.send_ready.Wait();
      // Backpressure grows the batch: requests that queued while this lane
      // was out of credits or ring space are combined into this message.
      admit();
      while (!all_copied()) {
        co_await lane.copy_done->Wait();
      }
      n = static_cast<uint32_t>(batch_n);
      msg_len = wire::MessageBytes(n, data_bytes);
    }
    if (requeued) {
      continue;
    }
    lane.credits -= 1;

    // Leader work: per-request combining (buffer grants + flag polls),
    // header build, canary generation (§4.2).
    co_await core.Work(static_cast<Nanos>(n) * cost.cpu_msg_per_req);

    const uint64_t canary = SplitMix64(client_->rng_state_);
    wire::MessageEncoder encoder(lane.staging + resv.offset, msg_len, canary);
    for (const PendingSend* ps = batch_head; ps != nullptr; ps = ps->next) {
      encoder.Add(ps->meta, ps->data.data());
    }
    const uint32_t total =
        encoder.Seal(lane.resp_consumer->consumed_report(), /*credit_grant=*/0);
    FLOCK_CHECK_EQ(total, msg_len);
    lane.resp_bytes_since_send = 0;  // this message carries a fresh head

    // Post the coalesced message (plus wrap marker / credit renewal if due)
    // with a single doorbell.
    verbs::SendWr wrs[3];
    size_t nwrs = 0;
    if (resv.wrapped) {
      wire::EncodeWrapMarker(lane.staging + resv.marker_offset, canary);
      verbs::SendWr marker;
      marker.wr_id = internal::TagWrId(WrTag::kRpcWrite, &lane);
      marker.opcode = verbs::Opcode::kWrite;
      marker.local_addr = lane.staging_addr + resv.marker_offset;
      marker.length = wire::kWrapMarkerBytes;
      marker.remote_addr = lane.remote_ring_addr + resv.marker_offset;
      marker.rkey = lane.remote_ring_rkey;
      marker.signaled = false;
      wrs[nwrs++] = marker;
    }
    verbs::SendWr msg;
    msg.wr_id = internal::TagWrId(WrTag::kRpcWrite, &lane);
    msg.opcode = verbs::Opcode::kWrite;
    msg.local_addr = lane.staging_addr + resv.offset;
    msg.length = msg_len;
    msg.remote_addr = lane.remote_ring_addr + resv.offset;
    msg.rkey = lane.remote_ring_rkey;
    lane.posts += 1;
    msg.signaled = (lane.posts % config.signal_interval) == 0;  // §7
    wrs[nwrs++] = msg;
    MaybeRenewCredits(lane, wrs, &nwrs);

    co_await core.Work(static_cast<Nanos>(nwrs) * cost.cpu_wqe_prep +
                       cost.cpu_mmio_doorbell);
    const verbs::WcStatus status = lane.qp->PostSendBatch(wrs, nwrs);
    if (status != verbs::WcStatus::kSuccess) {
      // The QP is dead (it rejects posts only in the error state). Quarantine
      // the lane and push the batch back in front of the queue: the migration
      // branch above re-routes everything to a surviving lane next iteration.
      QuarantineLane(lane);
      batch_tail->next = lane.combine_head;
      lane.combine_head = batch_head;
      if (lane.combine_tail == nullptr) {
        lane.combine_tail = batch_tail;
      }
      continue;
    }

    lane.messages_sent += 1;
    lane.requests_sent += n;
    lane.coalesce_degree.Record(n);
    lane.batch_histogram[n < 33 ? n : 32] += 1;
    for (PendingSend* ps = batch_head; ps != nullptr;) {
      PendingSend* next = ps->next;
      if (ps->sent_flag != nullptr) {
        *ps->sent_flag = true;
      }
      // Requests migrated from a quarantined lane carry that lane's waker.
      if (ps->sent_cond != nullptr && ps->sent_cond != lane.sent_cond.get()) {
        ps->sent_cond->NotifyAll();
      }
      client_->send_pool_.Delete(ps);
      ps = next;
    }
    lane.sent_cond->NotifyAll();
  }
}

// ---------------------------------------------------------------------------
// Connection: one-sided memory and atomic operations (§6)
// ---------------------------------------------------------------------------

RemoteMr Connection::AttachMreg(uint64_t remote_addr, uint64_t length) {
  verbs::Mr mr =
      client_->cluster().device(server_node_).RegisterMr(remote_addr, length);
  return RemoteMr{remote_addr, length, mr.rkey};
}

sim::Co<verbs::WcStatus> Connection::SubmitMemOp(FlockThread& thread,
                                                 verbs::SendWr wr) {
  const sim::CostModel& cost = client_->cost();
  ClientLane& lane = LaneFor(thread);

  PendingMemOp op;
  op.wr = wr;
  op.wr.wr_id = internal::TagWrId(WrTag::kMemOp, &op);
  op.wr.signaled = true;  // each thread waits on its own completion event
  op.owner_core = &thread.core();

  thread.outstanding += 1;
  // Each thread prepares its own work request; posting is delegated to the
  // leader, which links the batch (§6).
  co_await thread.core().Work(cost.cpu_atomic_rmw + cost.cpu_cacheline_transfer +
                              cost.cpu_wqe_prep);
  if (lane.memop_tail != nullptr) {
    lane.memop_tail->next = &op;
  } else {
    lane.memop_head = &op;
  }
  lane.memop_tail = &op;
  if (!lane.mem_pump_running) {
    lane.mem_pump_running = true;
    client_->sim().Spawn(MemPump(lane));
  }
  co_await op.done_event.Wait();
  thread.outstanding -= 1;
  co_return op.status;
}

sim::Proc Connection::MemPump(ClientLane& lane) {
  const FlockConfig& config = client_->config();
  const sim::CostModel& cost = client_->cost();
  while (lane.memop_head != nullptr) {
    // Splice up to `bound` ops off the queue into an intrusive batch.
    const size_t bound = config.coalescing ? config.max_coalesce : 1;
    PendingMemOp* batch_head = nullptr;
    PendingMemOp* batch_tail = nullptr;
    size_t batch_n = 0;
    while (batch_n < bound && lane.memop_head != nullptr) {
      PendingMemOp* op = lane.memop_head;
      lane.memop_head = op->next;
      if (lane.memop_head == nullptr) {
        lane.memop_tail = nullptr;
      }
      op->next = nullptr;
      if (batch_tail != nullptr) {
        batch_tail->next = op;
      } else {
        batch_head = op;
      }
      batch_tail = op;
      ++batch_n;
    }
    sim::Core& core = *batch_head->owner_core;
    // The leader links the WRs and rings one doorbell for the whole chain.
    co_await core.Work(cost.cpu_mmio_doorbell +
                       static_cast<Nanos>(batch_n) * (cost.cpu_atomic_rmw / 2));
    for (PendingMemOp* op = batch_head; op != nullptr; op = op->next) {
      const verbs::WcStatus status = lane.qp->PostSend(op->wr);
      if (status != verbs::WcStatus::kSuccess) {
        op->status = status;
        op->done_event.Fire(client_->sim());
      }
    }
    // QP contention indicator for receiver-side scheduling (§6).
    lane.coalesce_degree.Record(static_cast<uint32_t>(batch_n));
  }
  lane.mem_pump_running = false;
}

sim::Co<verbs::WcStatus> Connection::Read(FlockThread& thread, uint64_t local_addr,
                                          uint64_t remote_addr, uint32_t length,
                                          const RemoteMr& mr) {
  verbs::SendWr wr;
  wr.opcode = verbs::Opcode::kRead;
  wr.local_addr = local_addr;
  wr.length = length;
  wr.remote_addr = remote_addr;
  wr.rkey = mr.rkey;
  co_return co_await SubmitMemOp(thread, wr);
}

sim::Co<verbs::WcStatus> Connection::Write(FlockThread& thread, uint64_t local_addr,
                                           uint64_t remote_addr, uint32_t length,
                                           const RemoteMr& mr) {
  verbs::SendWr wr;
  wr.opcode = verbs::Opcode::kWrite;
  wr.local_addr = local_addr;
  wr.length = length;
  wr.remote_addr = remote_addr;
  wr.rkey = mr.rkey;
  co_return co_await SubmitMemOp(thread, wr);
}

sim::Co<verbs::WcStatus> Connection::FetchAndAdd(FlockThread& thread,
                                                 uint64_t remote_addr, uint64_t add,
                                                 uint64_t* old_value,
                                                 const RemoteMr& mr) {
  verbs::SendWr wr;
  wr.opcode = verbs::Opcode::kFetchAdd;
  wr.local_addr = thread.atomic_slot;
  wr.length = 8;
  wr.remote_addr = remote_addr;
  wr.rkey = mr.rkey;
  wr.swap_or_add = add;
  const verbs::WcStatus status = co_await SubmitMemOp(thread, wr);
  if (status == verbs::WcStatus::kSuccess && old_value != nullptr) {
    client_->cluster().mem(client_->node()).Read(thread.atomic_slot, old_value, 8);
  }
  co_return status;
}

sim::Co<verbs::WcStatus> Connection::CompareAndSwap(FlockThread& thread,
                                                    uint64_t remote_addr,
                                                    uint64_t expected,
                                                    uint64_t desired,
                                                    uint64_t* old_value,
                                                    const RemoteMr& mr) {
  verbs::SendWr wr;
  wr.opcode = verbs::Opcode::kCmpSwap;
  wr.local_addr = thread.atomic_slot;
  wr.length = 8;
  wr.remote_addr = remote_addr;
  wr.rkey = mr.rkey;
  wr.compare = expected;
  wr.swap_or_add = desired;
  const verbs::WcStatus status = co_await SubmitMemOp(thread, wr);
  if (status == verbs::WcStatus::kSuccess && old_value != nullptr) {
    client_->cluster().mem(client_->node()).Read(thread.atomic_slot, old_value, 8);
  }
  co_return status;
}

// ---------------------------------------------------------------------------
// Server: request dispatching (§4.3)
// ---------------------------------------------------------------------------

sim::Proc FlockRuntime::RequestDispatcher(int index) {
  // Core 0 runs the QP scheduler; dispatchers use the rest.
  sim::Core& core = cluster_.cpu(node_).core(1 + index);
  const sim::CostModel& cost = cluster_.cost();
  internal::DispatchScratch scratch;
  // The gather phase can batch up to 2 * max_coalesce - 1 requests.
  scratch.data.resize(size_t{2} * config_.max_coalesce * (config_.max_payload + 64) +
                      wire::kHeaderBytes + wire::kCanaryBytes);

  for (;;) {
    Nanos pass_cost = 0;
    for (size_t li = 0; li < dispatcher_lanes_[static_cast<size_t>(index)].size();
         ++li) {
      ServerLane& lane = *dispatcher_lanes_[static_cast<size_t>(index)][li];
      pass_cost += cost.cpu_ring_poll_empty;
      if (lane.in_service || lane.failed) {
        continue;  // owned by an RPC worker right now, or quarantined
      }
      wire::MsgHeader header;
      const wire::ProbeResult probe = lane.req_consumer->Probe(&header);
      if (probe == wire::ProbeResult::kMessage) {
        if (config_.server_workers > 0) {
          // Worker-pool mode: route the lane to the pool (small routing cost)
          // and let a worker gather + execute + respond.
          lane.in_service = true;
          work_queue_.push_back(&lane);
          work_ready_->NotifyOne();
          pass_cost += cost.cpu_cacheline_transfer;
          continue;
        }
        // in_service also fences the control plane: a reconnect handshake
        // must not re-base this lane's rings while the dispatcher is between
        // its probe and the matching consume.
        lane.in_service = true;
        co_await core.Work(pass_cost);
        pass_cost = 0;
        co_await HandleRequestMessage(lane, core, header, scratch);
        lane.in_service = false;
      }
    }
    co_await core.Work(pass_cost > 0 ? pass_cost : cost.cpu_ring_poll_empty);
  }
}

sim::Proc FlockRuntime::RpcWorker(int index) {
  // Workers run on the cores above the dispatchers'.
  sim::Core& core = cluster_.cpu(node_).core(1 + dispatcher_count_ + index);
  const sim::CostModel& cost = cluster_.cost();
  internal::DispatchScratch scratch;
  scratch.data.resize(size_t{2} * config_.max_coalesce * (config_.max_payload + 64) +
                      wire::kHeaderBytes + wire::kCanaryBytes);
  for (;;) {
    while (work_queue_.empty()) {
      co_await work_ready_->Wait();
    }
    ServerLane& lane = *work_queue_.front();
    work_queue_.pop_front();
    wire::MsgHeader header;
    if (!lane.failed &&
        lane.req_consumer->Probe(&header) == wire::ProbeResult::kMessage) {
      co_await core.Work(cost.cpu_cacheline_transfer);  // take over the lane
      co_await HandleRequestMessage(lane, core, header, scratch);
    }
    lane.in_service = false;
  }
}

sim::Co<void> FlockRuntime::HandleRequestMessage(ServerLane& lane, sim::Core& core,
                                                 const wire::MsgHeader& first,
                                                 internal::DispatchScratch& scratch) {
  const sim::CostModel& cost = cluster_.cost();

  // Freshen the response-ring view from the client's out-of-band head slot.
  uint32_t slot_value = 0;
  std::memcpy(&slot_value, lane.head_slot_ptr, 4);
  lane.resp_producer.OnHeadUpdate(slot_value);

  // Gather phase: drain consecutive complete messages from this lane's ring
  // (bounded) so responses coalesce *across* request messages too (§4.3).
  scratch.resp.clear();
  uint32_t total_reqs = 0;
  uint32_t resp_bytes = 0;
  uint32_t offset = 0;
  Nanos work = 0;
  wire::MsgHeader header = first;
  while (true) {
    lane.resp_producer.OnHeadUpdate(header.piggyback_head);
    const uint32_t n = header.num_reqs;
    scratch.views.resize(n);
    FLOCK_CHECK(wire::DecodeRequests(lane.req_consumer->MessagePtr(), header,
                                     scratch.views.data()))
        << "malformed coalesced message";
    work += cost.cpu_msg_fixed + static_cast<Nanos>(n) * cost.cpu_msg_per_req;
    for (uint32_t i = 0; i < n; ++i) {
      const wire::ReqView& req = scratch.views[i];
      const RpcHandler* handler = FindHandler(req.meta.rpc_id);
      FLOCK_CHECK(handler != nullptr) << "no handler for rpc " << req.meta.rpc_id;
      Nanos handler_cpu = 0;
      const uint32_t resp_len =
          (*handler)(req.data, req.meta.data_len, scratch.data.data() + offset,
                     config_.max_payload, &handler_cpu);
      FLOCK_CHECK_LE(resp_len, config_.max_payload);
      work += handler_cpu + cost.cpu_msg_per_req;
      internal::DispatchScratch::RespEntry entry;
      entry.meta = req.meta;  // echo thread id, seq, rpc id
      entry.meta.data_len = resp_len;
      entry.offset = offset;
      scratch.resp.push_back(entry);
      offset += resp_len;
      resp_bytes += resp_len;
    }
    // Retire the request message (zeroing = Free/Processed state of Fig. 5).
    work += cost.MemcpyCost(header.total_len);
    lane.req_consumer->Consume(header);
    lane.messages_handled += 1;
    lane.requests_handled += n;
    server_stats_.messages += 1;
    server_stats_.requests += n;
    total_reqs += n;
    if (!config_.coalescing || total_reqs >= config_.max_coalesce) {
      break;  // coalescing disabled: one response message per request message
    }
    if (lane.req_consumer->Probe(&header) != wire::ProbeResult::kMessage) {
      break;
    }
    // Stop if the next message's responses could overflow the encoding
    // (worst case: every one of its requests yields a max_payload response).
    if (wire::MessageBytes(total_reqs + header.num_reqs,
                           resp_bytes + header.num_reqs * config_.max_payload) >
        config_.ring_bytes / 2) {
      break;
    }
  }
  co_await core.Work(work);

  // Reserve response-ring space; while stalled, re-read the head slot the
  // client's dispatcher keeps fresh (the §4.1 fallback for a stale Head).
  const uint32_t msg_len = wire::MessageBytes(total_reqs, resp_bytes);
  RingProducer::Reservation resv;
  uint64_t stalls = 0;
  while (!lane.resp_producer.Reserve(msg_len, &resv)) {
    if (lane.failed) {
      // The client stopped consuming because it is gone, not slow. Drop the
      // responses; its RPCs recover (or fail) through their own timeouts.
      server_stats_.responses_dropped += 1;
      co_return;
    }
    // A stuck ring with faults armed may mean the client silently died.
    // Periodically re-post the control slot *signaled*: a dead QP answers
    // with an error completion, which quarantines the lane and ends this
    // stall. (Gated on armed() so fault-free traces see no extra posts.)
    if (cluster_.fault().armed() && (++stalls & 63) == 0) {
      WriteCtrlSlot(lane, /*signaled=*/true);
      if (lane.failed) {
        server_stats_.responses_dropped += 1;
        co_return;
      }
    }
    co_await sim::Delay(cluster_.sim(), kMicrosecond);
    std::memcpy(&slot_value, lane.head_slot_ptr, 4);
    lane.resp_producer.OnHeadUpdate(slot_value);
  }

  // Encode the coalesced response; piggyback the request-ring head and any
  // pending credit grant (§4.3, §5.1).
  const uint64_t canary = SplitMix64(rng_state_);
  wire::MessageEncoder encoder(lane.staging + resv.offset, msg_len, canary);
  for (uint32_t i = 0; i < total_reqs; ++i) {
    encoder.Add(scratch.resp[i].meta, scratch.data.data() + scratch.resp[i].offset);
  }
  const uint32_t total =
      encoder.Seal(lane.req_consumer->consumed_report(), /*credit_grant=*/0);
  FLOCK_CHECK_EQ(total, msg_len);
  co_await core.Work(cost.cpu_msg_fixed +
                     static_cast<Nanos>(total_reqs) * cost.cpu_msg_per_req +
                     cost.MemcpyCost(resp_bytes));

  verbs::SendWr wrs[2];
  size_t nwrs = 0;
  if (resv.wrapped) {
    wire::EncodeWrapMarker(lane.staging + resv.marker_offset, canary);
    verbs::SendWr marker;
    marker.wr_id = internal::TagWrId(WrTag::kServerWrite, &lane);
    marker.opcode = verbs::Opcode::kWrite;
    marker.local_addr = lane.staging_addr + resv.marker_offset;
    marker.length = wire::kWrapMarkerBytes;
    marker.remote_addr = lane.remote_ring_addr + resv.marker_offset;
    marker.rkey = lane.remote_ring_rkey;
    marker.signaled = false;
    wrs[nwrs++] = marker;
  }
  verbs::SendWr msg;
  msg.wr_id = internal::TagWrId(WrTag::kServerWrite, &lane);
  msg.opcode = verbs::Opcode::kWrite;
  msg.local_addr = lane.staging_addr + resv.offset;
  msg.length = msg_len;
  msg.remote_addr = lane.remote_ring_addr + resv.offset;
  msg.rkey = lane.remote_ring_rkey;
  lane.posts += 1;
  msg.signaled = (lane.posts % config_.signal_interval) == 0;
  wrs[nwrs++] = msg;

  co_await core.Work(static_cast<Nanos>(nwrs) * cost.cpu_wqe_prep +
                     cost.cpu_mmio_doorbell);
  const verbs::WcStatus status = lane.qp->PostSendBatch(wrs, nwrs);
  if (status != verbs::WcStatus::kSuccess) {
    QuarantineServerLane(lane);
    server_stats_.responses_dropped += 1;
    co_return;
  }
  server_stats_.responses_sent += 1;
}

// ---------------------------------------------------------------------------
// Server: receiver-side QP scheduling (§5.1)
// ---------------------------------------------------------------------------

sim::Proc FlockRuntime::QpScheduler() {
  sim::Core& core = cluster_.cpu(node_).core(0);
  const sim::CostModel& cost = cluster_.cost();
  Nanos next_redistribution = cluster_.sim().Now() + config_.qp_sched_interval;

  verbs::Completion wcs[kCqPollBatch];
  for (;;) {
    Nanos work = 2 * cost.cpu_cq_poll_empty;
    // Credit-renew requests arrive as write-with-imm completions on the RCQ
    // (§7: polling the RCQ avoids synchronizing with the request dispatchers).
    // Vectorized drain: one poll call pulls a whole batch of CQEs.
    for (size_t nc; (nc = recv_cq_->PollBatch(wcs, kCqPollBatch)) > 0;) {
      for (size_t ci = 0; ci < nc; ++ci) {
        const verbs::Completion& wc = wcs[ci];
        work += cost.cpu_cqe_handle + cost.cpu_post_recv;
        if (internal::WrIdTag(wc.wr_id) != WrTag::kServerRecv) {
          // A dual-role node's client-side receives land here too; only a QP
          // flush ever completes them (the server never sends imms clientward).
          continue;
        }
        auto* lane = internal::WrIdPtr<ServerLane>(wc.wr_id);
        if (wc.status != verbs::WcStatus::kSuccess) {
          // Flushed. A flush of the lane's *current* QP condemns it; a stale
          // flush from a QP that a reconnect already replaced does not.
          if (wc.qpn == 0 || lane->qp == nullptr || wc.qpn == lane->qp->qpn()) {
            QuarantineServerLane(*lane);
          }
          continue;
        }
        CtrlType type;
        uint32_t lane_index, value;
        internal::UnpackCtrl(wc.imm, &type, &lane_index, &value);
        FLOCK_CHECK(type == CtrlType::kRenewRequest);
        lane->qp->PostRecv(verbs::RecvWr{wc.wr_id, 0, 0});
        server_stats_.credit_renewals += 1;
        lane->utilization += value;  // U_ij += reported median degree
        if (lane->active) {
          // Grant C more credits through the lane's control slot (§5.1).
          lane->grant_cumulative += config_.credits;
          WriteCtrlSlot(*lane);
          lane->credits_outstanding += config_.credits;
          work += cost.cpu_wqe_prep + cost.cpu_mmio_doorbell;
        }
        // Inactive lanes get no credits from the next interval on (§5.1).
      }
      if (nc < kCqPollBatch) {
        break;
      }
    }
    // Our own posted writes (signaled responses, control messages).
    for (size_t nc; (nc = send_cq_->PollBatch(wcs, kCqPollBatch)) > 0;) {
      for (size_t ci = 0; ci < nc; ++ci) {
        const verbs::Completion& wc = wcs[ci];
        work += cost.cpu_cqe_handle;
        if (internal::WrIdTag(wc.wr_id) == WrTag::kMemOp) {
          auto* op = internal::WrIdPtr<PendingMemOp>(wc.wr_id);
          op->status = wc.status;
          op->done_event.Fire(cluster_.sim());
        } else if (wc.status != verbs::WcStatus::kSuccess) {
          HandleSendError(wc);
        }
      }
      if (nc < kCqPollBatch) {
        break;
      }
    }

    if (cluster_.sim().Now() >= next_redistribution) {
      Redistribute();
      next_redistribution = cluster_.sim().Now() + config_.qp_sched_interval;
      work += static_cast<Nanos>(server_lanes_.size()) * 20;
    }
    co_await core.Work(work);
  }
}

void FlockRuntime::WriteCtrlSlot(ServerLane& lane, bool signaled) {
  internal::CtrlSlot slot;
  slot.grant_cumulative = lane.grant_cumulative;
  slot.active = lane.active ? 1 : 0;
  std::memcpy(lane.ctrl_src_ptr, &slot, sizeof(slot));
  verbs::SendWr wr;
  wr.wr_id = internal::TagWrId(WrTag::kServerCtrl, &lane);
  wr.opcode = verbs::Opcode::kWrite;
  wr.local_addr = lane.ctrl_src_addr;
  wr.length = sizeof(slot);
  wr.remote_addr = lane.ctrl_slot_remote_addr;
  wr.rkey = lane.ctrl_slot_rkey;
  wr.signaled = signaled;
  if (lane.qp->PostSend(wr) != verbs::WcStatus::kSuccess) {
    QuarantineServerLane(lane);
  }
}

void FlockRuntime::QuarantineServerLane(ServerLane& lane) {
  if (lane.failed) {
    return;
  }
  lane.failed = true;
  if (lane.active) {
    lane.active = false;
    server_stats_.deactivations += 1;
  }
  server_stats_.lane_failures += 1;
}

void FlockRuntime::HandleSendError(const verbs::Completion& wc) {
  switch (internal::WrIdTag(wc.wr_id)) {
    case WrTag::kRpcWrite:
    case WrTag::kCtrl: {
      auto* lane = internal::WrIdPtr<ClientLane>(wc.wr_id);
      // Ignore stale flushes from a QP that a reconnect already replaced.
      if (wc.qpn != 0 && lane->qp != nullptr && wc.qpn != lane->qp->qpn()) {
        break;
      }
      if (internal::IsFatalWcStatus(wc.status)) {
        lane->conn->QuarantineLane(*lane);
      }
      // Transient statuses (RNR, remote access): the write was lost on the
      // wire; per-RPC timeouts retransmit whatever it carried.
      break;
    }
    case WrTag::kServerWrite:
    case WrTag::kServerCtrl: {
      auto* lane = internal::WrIdPtr<ServerLane>(wc.wr_id);
      const bool stale =
          wc.qpn != 0 && lane->qp != nullptr && wc.qpn != lane->qp->qpn();
      if (!stale && internal::IsFatalWcStatus(wc.status)) {
        QuarantineServerLane(*lane);
      }
      if (internal::WrIdTag(wc.wr_id) == WrTag::kServerWrite) {
        server_stats_.responses_dropped += 1;  // that response is gone either way
      }
      break;
    }
    default:
      break;  // kMemOp handled by its own completion event; recvs never here
  }
}

void FlockRuntime::Redistribute() {
  server_stats_.redistributions += 1;
  // Effective per-lane utilization: the reported coalescing degrees (the
  // paper's U_ij contention signal) plus the messages received this interval.
  // The message term keeps low-rate senders "functioning" even when no credit
  // renewal happened to land inside this scheduling window — with C=32 and
  // renewal at half, a lane renews only once per 16 messages, which can
  // starve the pure-renewal metric at modest rates and deactivate senders
  // that are in fact active.
  uint64_t total_utilization = 0;
  uint32_t dormant = 0;
  for (SenderState& sender : senders_) {
    sender.utilization = 0;
    bool any_failed = false;
    uint32_t live = 0;
    for (ServerLane* lane : sender.lanes) {
      if (lane->failed) {
        any_failed = true;
        continue;
      }
      if (lane->retired) {
        continue;  // holds no slot and is no evidence either way
      }
      ++live;
      lane->utilization += lane->messages_handled - lane->messages_at_last_sweep;
      sender.utilization += lane->utilization;
    }
    // Dead-sender reclamation: transport evidence (>= 1 failed lane) plus a
    // fully idle interval condemns the rest — the sender's QPs terminate at
    // one client node, and a node that stopped driving every one of its lanes
    // is gone, not slow. Releases the sender's share of MAX_AQP. A revive
    // grace window (set by the reconnect handler) exempts just-revived lanes:
    // they have zero utilization by construction and would otherwise be
    // re-condemned on the spot (the double-reclaim bug).
    if (sender.revive_grace > 0) {
      --sender.revive_grace;
    } else if (any_failed && live > 0 && sender.utilization == 0) {
      for (ServerLane* lane : sender.lanes) {
        if (!lane->failed && !lane->retired) {
          QuarantineServerLane(*lane);
        }
      }
      live = 0;
    }
    const bool was_dead = sender.dead;
    sender.dead = live == 0 && !sender.lanes.empty();
    if (sender.dead) {
      sender.functioning = false;
      if (!was_dead) {
        server_stats_.dead_senders += 1;
      }
      continue;  // no budget participation at all
    }
    total_utilization += sender.utilization;
    dormant += sender.utilization == 0 ? 1 : 0;
  }
  // Dormant senders keep one QP each; the functioning senders share what is
  // left of MAX_AQP so the cap holds strictly.
  const uint32_t budget =
      config_.max_active_qps > dormant ? config_.max_active_qps - dormant : 1;

  for (SenderState& sender : senders_) {
    if (sender.dead) {
      // Sweep bookkeeping only: no activation, no grants, nothing to decide.
      for (ServerLane* lane : sender.lanes) {
        lane->messages_at_last_sweep = lane->messages_handled;
        lane->utilization = 0;
      }
      sender.utilization = 0;
      continue;
    }
    uint32_t lane_count = 0;  // live (non-quarantined, non-retired) lanes only
    for (ServerLane* lane : sender.lanes) {
      lane_count += (lane->failed || lane->retired) ? 0 : 1;
    }
    if (lane_count == 0) {
      continue;
    }
    uint32_t target;
    if (sender.utilization == 0 || total_utilization == 0) {
      sender.functioning = false;  // dormant: keep one QP for the future
      target = 1;
    } else {
      sender.functioning = true;
      target = static_cast<uint32_t>(
          (static_cast<uint64_t>(budget) * sender.utilization) / total_utilization);
      target = std::max<uint32_t>(target, 1);
    }
    target = std::min(target, lane_count);

    // One-sided hysteresis: a -1 target wobble (utilization noise between
    // otherwise equal senders) is not worth churning the active set — every
    // flip forces the sender's threads to re-shuffle across lanes, breaking
    // the combining lockstep among them. Growth is always allowed (an
    // under-provisioned sender benefits immediately).
    uint32_t currently_active = 0;
    for (ServerLane* lane : sender.lanes) {
      currently_active += lane->active ? 1 : 0;
    }
    if (sender.functioning && currently_active >= 1 &&
        target + 1 == currently_active) {
      target = currently_active;
    }

    // Keep the most utilized lanes active; prefer the currently-active ones
    // on near-ties so the set membership is stable interval to interval.
    std::vector<ServerLane*>& order = redistribute_order_;
    order.assign(sender.lanes.begin(), sender.lanes.end());
    // Plain sort with an index tie-break (sender.lanes is in index order), so
    // the result matches a stable sort without stable_sort's temp-buffer
    // allocation on every scheduling interval.
    std::sort(order.begin(), order.end(),
              [](const ServerLane* a, const ServerLane* b) {
                if (a->active != b->active) {
                  return a->active > b->active;
                }
                if (a->utilization != b->utilization) {
                  return a->utilization > b->utilization;
                }
                return a->index < b->index;
              });
    uint32_t rank = 0;  // rank among live lanes: failed/retired hold no slot
    for (uint32_t i = 0; i < order.size(); ++i) {
      ServerLane& lane = *order[i];
      if (lane.failed || lane.retired) {
        lane.messages_at_last_sweep = lane.messages_handled;
        lane.utilization = 0;
        continue;
      }
      const bool want_active = rank < target;
      ++rank;
      if (want_active && !lane.active) {
        lane.active = true;
        server_stats_.activations += 1;
        lane.grant_cumulative += config_.credits;  // re-arm with C credits
        lane.credits_outstanding += config_.credits;
        WriteCtrlSlot(lane);
      } else if (!want_active && lane.active) {
        lane.active = false;
        server_stats_.deactivations += 1;
        WriteCtrlSlot(lane);
      } else if (cluster_.fault().armed() && lane.active &&
                 lane.utilization == 0) {
        // Liveness probe (armed runs only — plain bool, zero events in
        // fault-free traces): an active lane that moved nothing all interval
        // may terminate at a dead client QP that the server would otherwise
        // never touch again. The signaled slot rewrite is idempotent against
        // a healthy peer and completes in error against a dead one, which
        // quarantines the lane via the scheduler's send-CQ poll.
        WriteCtrlSlot(lane, /*signaled=*/true);
      }
      lane.messages_at_last_sweep = lane.messages_handled;
      lane.utilization = 0;
    }
    sender.utilization = 0;
  }
}

// ---------------------------------------------------------------------------
// Client: response dispatching (§4.3) and sender-side scheduling (§5.2)
// ---------------------------------------------------------------------------

void FlockRuntime::ApplyCtrlSlot(ClientLane& lane) {
  if (lane.failed || lane.retired) {
    return;  // quarantined/retired: stale grants must not resurrect it
  }
  // Polled every dispatcher pass: read through the cached pointer rather than
  // the bounds-checked chunked MemorySpace path.
  internal::CtrlSlot slot;
  std::memcpy(&slot, lane.ctrl_slot_ptr, sizeof(slot));
  bool changed = false;
  const uint32_t delta = slot.grant_cumulative - lane.grants_seen;
  if (delta != 0 && delta < (1u << 24)) {  // ignore torn/stale nonsense
    lane.credits += delta;
    lane.grants_seen = slot.grant_cumulative;
    lane.renew_in_flight = false;
    changed = true;
  }
  const bool active = slot.active != 0;
  if (active != lane.active) {
    lane.active = active;
    lane.renew_in_flight = false;
    changed = true;
  }
  if (changed) {
    lane.send_ready.NotifyAll();  // wake the pump (or let it migrate work)
  }
  // Lost-control-message recovery (armed runs only — plain bool check, no
  // events otherwise): renewal imms and grant-slot writes are unacked, so an
  // injected drop of either starves the lane with renew_in_flight latched.
  // A lane stuck with queued work and no credits for many passes re-requests
  // renewal; cumulative grants make duplicates harmless.
  if (cluster_.fault().armed()) {
    if (lane.active && lane.credits == 0 && lane.combine_head != nullptr) {
      if (++lane.starved_passes >= 256) {
        lane.starved_passes = 0;
        verbs::SendWr wr;
        wr.wr_id = internal::TagWrId(WrTag::kCtrl, &lane);
        wr.opcode = verbs::Opcode::kWriteImm;
        wr.local_addr = 0;
        wr.length = 0;
        wr.remote_addr = lane.remote_ring_addr;
        wr.rkey = lane.remote_ring_rkey;
        wr.signaled = false;
        wr.imm = internal::PackCtrl(CtrlType::kRenewRequest, lane.index, 1);
        lane.renew_in_flight = true;
        if (lane.qp->PostSend(wr) != verbs::WcStatus::kSuccess) {
          lane.conn->QuarantineLane(lane);
        }
      }
    } else {
      lane.starved_passes = 0;
    }
  }
}

sim::Proc FlockRuntime::ResponseDispatcher(int index) {
  // Dispatchers occupy the top cores of the node (the paper dedicates a
  // lightweight dispatcher thread that serves many QPs).
  sim::Core& core =
      cluster_.cpu(node_).core(cluster_.cpu(node_).num_cores() - 1 - index);
  const sim::CostModel& cost = cluster_.cost();
  // Per-proc decode scratch: capacity persists across messages.
  std::vector<wire::ReqView> views;

  verbs::Completion wcs[kCqPollBatch];
  for (;;) {
    Nanos pass_cost = cost.cpu_cq_poll_empty;
    // Vectorized send-CQ drain (selective signaling keeps this sparse, but
    // error bursts — a flushed QP — arrive as whole batches).
    for (size_t nc; (nc = send_cq_->PollBatch(wcs, kCqPollBatch)) > 0;) {
      for (size_t ci = 0; ci < nc; ++ci) {
        const verbs::Completion& wc = wcs[ci];
        pass_cost += cost.cpu_cqe_handle;
        if (internal::WrIdTag(wc.wr_id) == WrTag::kMemOp) {
          auto* op = internal::WrIdPtr<PendingMemOp>(wc.wr_id);
          op->status = wc.status;
          op->done_event.Fire(cluster_.sim());
        } else if (wc.status != verbs::WcStatus::kSuccess) {
          HandleSendError(wc);
        }
      }
      if (nc < kCqPollBatch) {
        break;
      }
    }

    for (auto& conn : connections_) {
      for (size_t li = index; li < conn->lanes_.size();
           li += static_cast<size_t>(config_.response_dispatchers)) {
        ClientLane& lane = *conn->lanes_[li];
        pass_cost += cost.cpu_ring_poll_empty;
        ApplyCtrlSlot(lane);  // grants / activation written by the server
        wire::MsgHeader header;
        if (lane.resp_consumer->Probe(&header) != wire::ProbeResult::kMessage) {
          continue;
        }
        // Fence the control plane: the reconnect daemon must not resync this
        // lane's rings between the probe above and the consume below.
        lane.in_dispatch = true;
        co_await core.Work(pass_cost);
        pass_cost = 0;

        // Piggybacked request-ring head.
        lane.req_producer.OnHeadUpdate(header.piggyback_head);
        lane.send_ready.NotifyAll();

        const uint32_t n = header.num_reqs;
        views.resize(n);
        FLOCK_CHECK(
            wire::DecodeRequests(lane.resp_consumer->MessagePtr(), header, views.data()));
        Nanos work = cost.cpu_msg_fixed + static_cast<Nanos>(n) * cost.cpu_msg_per_req;
        uint32_t matched = 0;
        for (uint32_t i = 0; i < n; ++i) {
          const wire::ReqView& resp = views[i];
          PendingRpc* rpc = resp.meta.thread_id < conn->pending_.size()
                                ? conn->pending_[resp.meta.thread_id].Take(
                                      resp.meta.seq)
                                : nullptr;
          if (rpc == nullptr) {
            // A retransmitted request can yield two responses (at-least-once
            // under retry); the second finds nothing outstanding.
            client_stats_.spurious_responses += 1;
            continue;
          }
          rpc->response.Assign(resp.data, resp.meta.data_len);
          work += cost.MemcpyCost(resp.meta.data_len);
          rpc->ok = true;
          rpc->deadline = 0;
          rpc->completed_at = cluster_.sim().Now();
          rpc->done_event.Fire(cluster_.sim());
          FlockThread& thread = *threads_[resp.meta.thread_id];
          thread.outstanding -= 1;
          ++matched;
        }
        // Clamped: watchdog retries move in-flight accounting between lanes,
        // so under failures the per-lane counter is advisory, not exact.
        lane.inflight -= std::min<uint64_t>(lane.inflight, matched);
        work += cost.MemcpyCost(header.total_len);  // zero the consumed region
        lane.resp_consumer->Consume(header);

        // Keep the server's view of this response ring fresh even when no
        // request traffic carries a piggyback: RDMA-write the cumulative
        // consumed count into the server-side head slot.
        lane.resp_bytes_since_send += header.total_len;
        if (lane.resp_bytes_since_send >= config_.ring_bytes / 4) {
          const uint32_t report = lane.resp_consumer->consumed_report();
          std::memcpy(lane.head_src_ptr, &report, 4);
          verbs::SendWr slot_wr;
          slot_wr.wr_id = internal::TagWrId(WrTag::kCtrl, &lane);
          slot_wr.opcode = verbs::Opcode::kWrite;
          slot_wr.local_addr = lane.head_src_addr;
          slot_wr.length = 4;
          slot_wr.remote_addr = lane.head_slot_remote_addr;
          slot_wr.rkey = lane.head_slot_rkey;
          slot_wr.signaled = false;
          if (lane.qp->PostSend(slot_wr) != verbs::WcStatus::kSuccess) {
            conn->QuarantineLane(lane);
          }
          work += cost.cpu_wqe_prep + cost.cpu_mmio_doorbell;
          lane.resp_bytes_since_send = 0;
        }
        co_await core.Work(work);
        lane.in_dispatch = false;
      }
    }
    co_await core.Work(pass_cost > 0 ? pass_cost : cost.cpu_cq_poll_empty);
  }
}

sim::Proc FlockRuntime::ThreadScheduler() {
  for (;;) {
    co_await sim::Delay(cluster_.sim(), config_.thread_sched_interval);
    for (auto& conn : connections_) {
      RescheduleThreads(*conn);
    }
  }
}

void FlockRuntime::RescheduleThreads(Connection& conn) {
  // Active lane set.
  std::vector<uint32_t>& active = sched_active_scratch_;
  active.clear();
  for (uint32_t i = 0; i < conn.lanes_.size(); ++i) {
    if (conn.lanes_[i]->active) {
      active.push_back(i);
    }
  }
  if (active.empty() || threads_.empty()) {
    return;
  }
  conn.desired_lane_.resize(threads_.size(), UINT32_MAX);

  if (!config_.sender_thread_scheduling) {
    // Ablation baseline: spread threads round-robin over active lanes.
    for (size_t t = 0; t < threads_.size(); ++t) {
      conn.desired_lane_[t] = active[t % active.size()];
    }
    return;
  }

  // Algorithm 1: sort threads by median request size then by request count;
  // pack onto lanes by byte quota to mitigate head-of-line blocking.
  using ThreadStat = ThreadSchedStat;
  std::vector<ThreadStat>& stats = sched_stats_scratch_;
  stats.clear();
  uint64_t total_bytes = 0;
  for (size_t t = 0; t < threads_.size(); ++t) {
    FlockThread& thread = *threads_[t];
    ThreadStat s;
    s.tid = t;
    s.median_size = thread.req_size_median.Median(0);
    s.reqs = thread.reqs_sent.Delta();
    s.bytes = thread.bytes_sent.Delta();
    total_bytes += s.bytes;
    stats.push_back(s);
  }

  // Stability check: if the current assignment already satisfies the
  // scheduling goals — every thread on an active lane, per-lane byte loads
  // within 2x of the mean, and no lane mixing small- and large-payload
  // threads — keep it. Gratuitous migration would break the request/response
  // lockstep among the threads sharing a QP, and with it the coalescing the
  // whole design is after.
  if (conn.desired_lane_.size() >= threads_.size() && !active.empty()) {
    bool healthy = true;
    // Lane indices are small and dense, so the per-lane aggregates live in
    // flat scratch vectors (min == UINT32_MAX marks "no sized thread here").
    std::vector<uint64_t>& lane_bytes = sched_lane_bytes_;
    std::vector<uint32_t>& lane_min_size = sched_lane_min_;
    std::vector<uint32_t>& lane_max_size = sched_lane_max_;
    lane_bytes.assign(conn.lanes_.size(), 0);
    lane_min_size.assign(conn.lanes_.size(), UINT32_MAX);
    lane_max_size.assign(conn.lanes_.size(), 0);
    for (const ThreadStat& s : stats) {
      const uint32_t lane = conn.desired_lane_[s.tid];
      if (lane == UINT32_MAX || !conn.lanes_[lane]->active) {
        healthy = false;
        break;
      }
      lane_bytes[lane] += s.bytes;
      if (s.bytes > 0) {
        lane_min_size[lane] = std::min(lane_min_size[lane], s.median_size);
        lane_max_size[lane] = std::max(lane_max_size[lane], s.median_size);
      }
    }
    if (healthy && total_bytes > 0) {
      const uint64_t mean = total_bytes / active.size();
      for (size_t lane = 0; lane < conn.lanes_.size(); ++lane) {
        if (lane_bytes[lane] > 2 * mean + 1) {
          healthy = false;  // load imbalance
        }
        // Head-of-line risk: a lane serving both small and large payloads.
        if (lane_min_size[lane] != UINT32_MAX &&
            lane_max_size[lane] > 4 * std::max(lane_min_size[lane], 64u)) {
          healthy = false;
        }
      }
    }
    if (healthy) {
      return;
    }
  }
  // Sort per Algorithm 1 (median request size, then request count) — with the
  // count quantized so run-to-run noise cannot flip the order. A stable
  // ordering keeps thread→QP assignments (and therefore the sets of threads
  // that coalesce together) intact across scheduling intervals; reshuffling
  // them would break the request/response lockstep that drives coalescing.
  // The tid tie-break makes the order strict, so plain sort is equivalent to
  // a stable sort here and skips the temp-buffer allocation.
  std::sort(stats.begin(), stats.end(),
            [](const ThreadStat& a, const ThreadStat& b) {
              if (a.median_size != b.median_size) {
                return a.median_size < b.median_size;
              }
              if ((a.reqs >> 6) != (b.reqs >> 6)) {
                return (a.reqs >> 6) < (b.reqs >> 6);
              }
              return a.tid < b.tid;
            });

  const uint64_t quota =
      std::max<uint64_t>(1, total_bytes / active.size());  // Algorithm 1 line 1
  size_t qp_index = 0;
  uint64_t qp_load = 0;
  for (const ThreadStat& s : stats) {
    conn.desired_lane_[s.tid] = active[std::min(qp_index, active.size() - 1)];
    qp_load += s.bytes;
    if (qp_load >= quota) {
      qp_index += 1;
      qp_load = 0;
    }
  }
}

// ---------------------------------------------------------------------------
// Client: per-RPC timeouts, retransmission and failure (spawned only when
// FlockConfig::rpc_timeout > 0)
// ---------------------------------------------------------------------------

sim::Proc FlockRuntime::RetryWatchdog() {
  // Scan granularity bounds how late a deadline can fire; a quarter of the
  // timeout keeps the added latency small relative to the timeout itself.
  const Nanos tick = std::max<Nanos>(config_.rpc_timeout / 4, kMicrosecond);
  for (;;) {
    co_await sim::Delay(cluster_.sim(), tick);
    const Nanos now = cluster_.sim().Now();
    for (auto& conn : connections_) {
      // Collect first: Retry/Fail mutate the maps ForEach walks.
      watchdog_scratch_.clear();
      for (auto& map : conn->pending_) {
        map.ForEach([&](uint32_t, PendingRpc* rpc) {
          if (rpc->deadline > 0 && now >= rpc->deadline) {
            watchdog_scratch_.push_back(rpc);
          }
        });
      }
      for (PendingRpc* rpc : watchdog_scratch_) {
        if (rpc->retries >= config_.max_retries) {
          FailPendingRpc(*conn, rpc);
        } else {
          RetryPendingRpc(*conn, rpc);
        }
      }
    }
  }
}

void FlockRuntime::RetryPendingRpc(Connection& conn, PendingRpc* rpc) {
  rpc->retries += 1;
  // Exponential backoff: each attempt waits twice as long as the last. The
  // shift saturates — a large max_retries (or timeout) must not overflow the
  // signed Nanos into UB and a garbage deadline.
  const uint32_t shift = std::min<uint32_t>(rpc->retries, 20);
  const Nanos backoff =
      config_.rpc_timeout <= (std::numeric_limits<Nanos>::max() >> (shift + 1))
          ? config_.rpc_timeout << shift
          : std::numeric_limits<Nanos>::max() / 2;
  rpc->deadline = cluster_.sim().Now() + backoff;
  client_stats_.retries += 1;

  FlockThread& thread = *threads_[rpc->thread_id];
  // Restage on the thread's current lane (LaneFor routes around quarantined
  // lanes once the thread drains). The server matches responses globally by
  // (thread, seq), so a retry on a different lane still completes this RPC.
  ClientLane& old_lane = *conn.lanes_[rpc->lane_index];
  ClientLane& lane = conn.LaneFor(thread);
  if (&lane != &old_lane) {
    old_lane.inflight -= std::min<uint64_t>(old_lane.inflight, 1);
    lane.inflight += 1;
    rpc->lane_index = lane.index;
  }
  // A timeout hints that an unacked control message may have been lost; let
  // the next pump pass re-request credit renewal (duplicates are harmless).
  lane.renew_in_flight = false;

  PendingSend* ps = send_pool_.New();
  ps->meta.data_len = rpc->request.size();
  ps->meta.thread_id = rpc->thread_id;
  ps->meta.rpc_id = rpc->rpc_id;
  ps->meta.seq = rpc->seq;
  ps->owner_core = &thread.core();
  ps->data.Assign(rpc->request.data(), rpc->request.size());
  ps->copied = true;  // payload staged right here; no follower copy phase
  if (lane.combine_tail != nullptr) {
    lane.combine_tail->next = ps;
  } else {
    lane.combine_head = ps;
  }
  lane.combine_tail = ps;
  conn.WakePump(lane);
}

void FlockRuntime::FailPendingRpc(Connection& conn, PendingRpc* rpc) {
  PendingRpc* taken = conn.pending_[rpc->thread_id].Take(rpc->seq);
  FLOCK_CHECK(taken == rpc);
  client_stats_.failed_rpcs += 1;
  ClientLane& lane = *conn.lanes_[rpc->lane_index];
  lane.inflight -= std::min<uint64_t>(lane.inflight, 1);
  FlockThread& thread = *threads_[rpc->thread_id];
  if (thread.outstanding > 0) {
    thread.outstanding -= 1;
  }
  rpc->ok = false;
  rpc->deadline = 0;
  rpc->completed_at = cluster_.sim().Now();
  rpc->done_event.Fire(cluster_.sim());
}

// ---------------------------------------------------------------------------
// Connection control plane (DESIGN.md §10): handshake dispatch, lane
// reconnection, membership teardown and elastic lane scaling
// ---------------------------------------------------------------------------

Connection::LaneStates Connection::CountLaneStates() const {
  LaneStates s;
  for (const auto& lane : lanes_) {
    if (lane->retired) {
      s.retired += 1;
    } else if (lane->failed) {
      if (lane->reconnecting) {
        s.reconnecting += 1;
      } else {
        s.quarantined += 1;
      }
    } else {
      s.healthy += 1;
    }
  }
  return s;
}

uint64_t Connection::lane_reconnects() const {
  uint64_t n = 0;
  for (const auto& lane : lanes_) {
    n += lane->reconnects;
  }
  return n;
}

uint32_t FlockRuntime::OnCtrlMessage(const uint8_t* msg, uint32_t len,
                                     uint8_t* resp, uint32_t resp_cap) {
  ctrl::wire::MsgHeader header;
  if (!ctrl::wire::DecodeHeader(msg, len, &header)) {
    return 0;  // ControlPlane::Call validated framing; belt and braces
  }
  switch (static_cast<ctrl::wire::MsgType>(header.type)) {
    case ctrl::wire::MsgType::kConnectRequest:
      return HandleConnectRequest(header, msg, resp, resp_cap);
    case ctrl::wire::MsgType::kReconnectRequest:
      return HandleReconnectRequest(header, msg, resp, resp_cap);
    case ctrl::wire::MsgType::kAddLaneRequest:
      return HandleAddLaneRequest(header, msg, resp, resp_cap);
    case ctrl::wire::MsgType::kRetireLaneRequest:
      return HandleRetireLaneRequest(header, msg, resp, resp_cap);
    default:
      return ctrl::wire::EncodeReject(resp, resp_cap, header.nonce,
                                      ctrl::wire::RejectReason::kUnknown);
  }
}

uint32_t FlockRuntime::HandleConnectRequest(const ctrl::wire::MsgHeader& header,
                                            const uint8_t* msg, uint8_t* resp,
                                            uint32_t resp_cap) {
  namespace cw = ctrl::wire;
  cw::ConnectRequest req;
  if (!cw::DecodeConnectRequest(header, msg, &req)) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kUnknown);
  }
  if (!server_started_) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kServerNotStarted);
  }

  const uint32_t sender_key = static_cast<uint32_t>(senders_.size());
  senders_.push_back(SenderState{});
  senders_.back().client_node = req.client_node;

  // Receiver-side initial allocation: a new client gets the average active-QP
  // share per *live* sender (§5.1), refined at the next redistribution.
  // Counting only live senders fixes the stale-quota bug: a reclaimed (dead)
  // sender used to dilute the share every later connection bootstrapped with.
  uint32_t live_senders = 0;
  for (const SenderState& sender : senders_) {
    live_senders += sender.dead ? 0 : 1;
  }
  const uint32_t fair_share =
      std::max<uint32_t>(1, config_.max_active_qps / live_senders);
  const uint32_t initially_active = std::min(req.num_lanes, fair_share);

  cw::ConnectAccept accept;
  accept.conn_id = sender_key;
  accept.num_lanes = req.num_lanes;
  for (uint32_t i = 0; i < req.num_lanes; ++i) {
    auto sl = BuildServerLane(i, req.client_node, sender_key, req.ring_bytes,
                              req.lanes[i], i < initially_active,
                              &accept.lanes[i]);
    senders_.back().lanes.push_back(sl.get());
    dispatcher_lanes_[server_lanes_.size() %
                      static_cast<size_t>(dispatcher_count_)]
        .push_back(sl.get());
    server_lanes_.push_back(std::move(sl));
  }
  return cw::EncodeMessage(resp, resp_cap, cw::MsgType::kConnectAccept,
                           header.nonce, &accept,
                           cw::ConnectAcceptBytes(req.num_lanes));
}

uint32_t FlockRuntime::HandleReconnectRequest(const ctrl::wire::MsgHeader& header,
                                              const uint8_t* msg, uint8_t* resp,
                                              uint32_t resp_cap) {
  namespace cw = ctrl::wire;
  cw::ReconnectRequest req;
  if (!cw::DecodeReconnectRequest(header, msg, &req)) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kUnknown);
  }
  if (!server_started_ || req.conn_id >= senders_.size()) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kBadConnId);
  }
  SenderState& sender = senders_[req.conn_id];
  if (sender.client_node != req.client_node ||
      req.lane_index >= sender.lanes.size()) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kBadLane);
  }
  ServerLane& lane = *sender.lanes[req.lane_index];
  if (lane.retired) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kBadLane);
  }
  if (lane.in_service) {
    // Mid-dispatch: the client retries after backoff rather than having its
    // rings re-based under the dispatcher.
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kLaneBusy);
  }
  // The client is authoritative about its half being dead. If this side has
  // not noticed yet (no send completed in error), condemn it now so the
  // revival below starts from the quarantined state either way.
  if (!lane.failed) {
    QuarantineServerLane(lane);
  }

  fabric::MemorySpace& smem = cluster_.mem(node_);
  const uint32_t ring_bytes = lane.resp_producer.size();

  // Fresh server QP wired to the client's fresh QP. The dead QP is abandoned
  // in place — qpns are never reused, so its late flushes are recognizably
  // stale (Completion::qpn) and ignored by the CQ pollers.
  verbs::Qp* fresh =
      cluster_.device(node_).CreateQp(verbs::QpType::kRc, send_cq_, recv_cq_);
  fresh->ConnectTo(req.client_node, req.lane.qpn);

  // Ring resync: both directions restart from sequence zero. The request ring
  // is zeroed (its canary-framed contents died with the old QP) and re-based;
  // the response producer restarts; the head slot is cleared to match the
  // client's fresh consumer. The client mirrors this before any sim event
  // runs (ControlPlane::Call is synchronous), so neither side can observe the
  // other half-resynced.
  std::memset(smem.At(lane.req_ring_addr), 0, ring_bytes);
  lane.req_consumer =
      std::make_unique<RingConsumer>(smem.At(lane.req_ring_addr), ring_bytes);
  lane.resp_producer = RingProducer(ring_bytes);
  const uint64_t zero = 0;
  smem.Write(lane.head_slot_addr, &zero, sizeof(zero));
  lane.qp = fresh;
  for (int r = 0; r < 16; ++r) {
    fresh->PostRecv(
        verbs::RecvWr{internal::TagWrId(WrTag::kServerRecv, &lane), 0, 0});
  }

  lane.failed = false;
  lane.active = true;
  server_stats_.activations += 1;
  lane.credits_outstanding = config_.credits;
  lane.utilization = 0;
  lane.messages_at_last_sweep = lane.messages_handled;
  server_stats_.lane_reconnects += 1;
  sender.dead = false;
  sender.functioning = true;
  // Shield the revived lane from dead-sender reclamation for two sweeps; it
  // has zero utilization by construction (the double-reclaim bug).
  sender.revive_grace = 2;

  cw::ReconnectAccept accept;
  accept.lane_index = req.lane_index;
  accept.credits = config_.credits;
  // The grant counter is cumulative and survives the reconnect; the client
  // resyncs grants_seen to it so the delta stream stays consistent.
  accept.grant_cumulative = lane.grant_cumulative;
  accept.lane.qpn = fresh->qpn();
  accept.lane.req_ring_addr = lane.req_ring_addr;
  accept.lane.req_ring_rkey = lane.req_ring_rkey;
  accept.lane.head_slot_addr = lane.head_slot_addr;
  accept.lane.head_slot_rkey = lane.head_slot_rkey;
  accept.lane.active = 1;
  accept.lane.credits = config_.credits;
  return cw::EncodeMessage(resp, resp_cap, cw::MsgType::kReconnectAccept,
                           header.nonce, &accept, sizeof(accept));
}

uint32_t FlockRuntime::HandleAddLaneRequest(const ctrl::wire::MsgHeader& header,
                                            const uint8_t* msg, uint8_t* resp,
                                            uint32_t resp_cap) {
  namespace cw = ctrl::wire;
  cw::AddLaneRequest req;
  if (!cw::DecodeAddLaneRequest(header, msg, &req)) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kUnknown);
  }
  if (!server_started_ || req.conn_id >= senders_.size()) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kBadConnId);
  }
  SenderState& sender = senders_[req.conn_id];
  if (sender.client_node != req.client_node ||
      req.lane_index != sender.lanes.size() ||
      req.lane_index >= cw::kMaxLanesPerMsg) {
    // Lane indexes must stay aligned across both sides; out-of-sequence adds
    // (e.g. a replayed or reordered request) are refused.
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kBadLane);
  }

  cw::AddLaneAccept accept;
  accept.lane_index = req.lane_index;
  auto sl = BuildServerLane(req.lane_index, req.client_node, req.conn_id,
                            req.ring_bytes, req.lane, /*active=*/true,
                            &accept.lane);
  sender.lanes.push_back(sl.get());
  dispatcher_lanes_[server_lanes_.size() % static_cast<size_t>(dispatcher_count_)]
      .push_back(sl.get());
  server_lanes_.push_back(std::move(sl));
  server_stats_.lanes_added += 1;
  return cw::EncodeMessage(resp, resp_cap, cw::MsgType::kAddLaneAccept,
                           header.nonce, &accept, sizeof(accept));
}

uint32_t FlockRuntime::HandleRetireLaneRequest(const ctrl::wire::MsgHeader& header,
                                               const uint8_t* msg, uint8_t* resp,
                                               uint32_t resp_cap) {
  namespace cw = ctrl::wire;
  cw::RetireLaneRequest req;
  if (!cw::DecodeRetireLaneRequest(header, msg, &req)) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kUnknown);
  }
  if (!server_started_ || req.conn_id >= senders_.size()) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kBadConnId);
  }
  SenderState& sender = senders_[req.conn_id];
  if (sender.client_node != req.client_node ||
      req.lane_index >= sender.lanes.size()) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kBadLane);
  }
  ServerLane& lane = *sender.lanes[req.lane_index];
  if (lane.failed) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kBadLane);
  }
  cw::RetireLaneAccept accept;
  accept.lane_index = req.lane_index;
  if (lane.retired) {  // idempotent: a duplicate retire re-acks
    return cw::EncodeMessage(resp, resp_cap, cw::MsgType::kRetireLaneAccept,
                             header.nonce, &accept, sizeof(accept));
  }
  uint32_t live_active = 0;
  for (ServerLane* l : sender.lanes) {
    live_active += (!l->failed && !l->retired && l->active) ? 1 : 0;
  }
  if (lane.active && live_active <= 1) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kLastActiveLane);
  }
  lane.retired = true;
  if (lane.active) {
    lane.active = false;
    server_stats_.deactivations += 1;
  }
  lane.credits_outstanding = 0;
  server_stats_.lanes_retired += 1;
  // The dispatcher keeps draining the retired lane's request ring (its skip
  // condition is in_service/failed, not retired) so in-flight RPCs complete.
  return cw::EncodeMessage(resp, resp_cap, cw::MsgType::kRetireLaneAccept,
                           header.nonce, &accept, sizeof(accept));
}

void FlockRuntime::OnMemberLeft(int node) {
  if (!server_started_) {
    return;
  }
  bool touched = false;
  for (SenderState& sender : senders_) {
    if (sender.client_node != node || sender.dead) {
      continue;
    }
    for (ServerLane* lane : sender.lanes) {
      if (!lane->failed && !lane->retired) {
        // Destroy the transport the way a real server tears down a departed
        // client's QPs: error it (flushing our posts) so the peer — should
        // the node come back before rejoining — sees kRemoteInvalidQp.
        cluster_.device(node_).ErrorQp(*lane->qp);
        QuarantineServerLane(*lane);
      }
    }
    sender.dead = true;
    sender.functioning = false;
    sender.revive_grace = 0;
    server_stats_.dead_senders += 1;
    touched = true;
  }
  if (touched) {
    // Repartition MAX_AQP across the surviving senders immediately instead of
    // waiting for the next scheduled sweep to notice.
    Redistribute();
  }
}

void FlockRuntime::ExpireLaneDeadlines(Connection& conn, uint32_t lane_index) {
  const Nanos now = cluster_.sim().Now();
  for (auto& map : conn.pending_) {
    map.ForEach([&](uint32_t, PendingRpc* rpc) {
      if (rpc->deadline > 0 && rpc->lane_index == lane_index) {
        rpc->deadline = std::min(rpc->deadline, now);
      }
    });
  }
}

sim::Proc Connection::ReconnectDaemon() {
  const FlockConfig& config = client_->config();
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(client_->cluster());
  sim::Simulator& sim = client_->sim();
  const Nanos base_backoff = std::max<Nanos>(config.reconnect_backoff, 1);
  Nanos backoff = base_backoff;
  for (;;) {
    ClientLane* victim = nullptr;
    for (const auto& lane : lanes_) {
      if (lane->failed && !lane->retired) {
        victim = lane.get();
        break;
      }
    }
    if (victim == nullptr) {
      backoff = base_backoff;
      co_await reconnect_cond_->Wait();
      continue;
    }

    victim->reconnecting = true;
    co_await sim::Delay(sim, backoff);
    // The out-of-band channel is slow (RDMA-CM over TCP): one RTT of latency
    // charged up front, so everything from the gate below through the resync
    // runs without suspension — no pump or dispatcher can interleave.
    co_await sim::Delay(sim, config.ctrl_rtt);
    // Quiesce and membership gates: never resync rings under a pump or
    // dispatcher mid-pass, and never handshake while either end is outside
    // the membership view (a rejoining node passes once Join() lands).
    if (!cp.IsMember(client_->node()) || !cp.IsMember(server_node_) ||
        victim->pump_running || victim->mem_pump_running ||
        victim->in_dispatch) {
      victim->reconnecting = false;
      backoff = std::min<Nanos>(backoff * 2, base_backoff * 256);
      continue;
    }

    // Fresh client QP on the shared CQs; the dead one is abandoned in place
    // (its qpn is never reused, so stale flushes are filtered by qpn).
    verbs::Qp* fresh = client_->cluster().device(client_->node()).CreateQp(
        verbs::QpType::kRc, client_->send_cq_, client_->recv_cq_);
    ctrl::wire::ReconnectRequest req;
    req.client_node = client_->node();
    req.conn_id = conn_id_;
    req.lane_index = victim->index;
    req.lane.qpn = fresh->qpn();
    // Rings and rkeys are unchanged — the server kept its copies from the
    // connect handshake; re-advertised here for the fuzzers' benefit only.
    req.lane.resp_ring_addr = victim->resp_ring_addr;
    req.lane.ctrl_slot_addr = victim->ctrl_slot_addr;

    uint8_t msg[ctrl::wire::kMaxMessageBytes];
    uint8_t resp[ctrl::wire::kMaxMessageBytes];
    const uint32_t msg_len = ctrl::wire::EncodeMessage(
        msg, sizeof(msg), ctrl::wire::MsgType::kReconnectRequest,
        cp.NextNonce(), &req, sizeof(req));
    const uint32_t resp_len =
        cp.Call(server_node_, msg, msg_len, resp, sizeof(resp));

    ctrl::wire::MsgHeader resp_header;
    ctrl::wire::ReconnectAccept accept;
    if (resp_len == 0 ||
        !ctrl::wire::DecodeHeader(resp, resp_len, &resp_header) ||
        !ctrl::wire::DecodeReconnectAccept(resp_header, resp, &accept)) {
      // Rejected (busy, membership, malformed): retry after backoff. The
      // orphaned QP is abandoned; QPs are simulation-cheap and never reused.
      victim->reconnecting = false;
      backoff = std::min<Nanos>(backoff * 2, base_backoff * 256);
      continue;
    }

    // Client-side resync, mirroring the server's handler before any sim
    // event can run: fresh response ring/consumer, request sequence state
    // from zero, credits and cumulative-grant resync from the accept.
    fabric::MemorySpace& cmem = client_->cluster().mem(client_->node());
    const uint32_t ring_bytes = victim->req_producer.size();
    std::memset(cmem.At(victim->resp_ring_addr), 0, ring_bytes);
    victim->resp_consumer = std::make_unique<RingConsumer>(
        cmem.At(victim->resp_ring_addr), ring_bytes);
    victim->req_producer = RingProducer(ring_bytes);
    victim->qp = fresh;
    victim->failed = false;
    victim->renew_in_flight = false;
    victim->starved_passes = 0;
    victim->resp_bytes_since_send = 0;
    client_->WireClientLane(*victim, server_node_, accept.lane,
                            accept.grant_cumulative);
    victim->reconnecting = false;
    victim->reconnects += 1;
    client_->client_stats_.lane_reconnects += 1;
    victim->send_ready.NotifyAll();
    // Un-acked RPCs accounted to this lane retransmit at the watchdog's next
    // tick instead of waiting out their full deadlines: this is how batches
    // lost with the dead QP are replayed onto the revived lane.
    client_->ExpireLaneDeadlines(*this, victim->index);
    // Send the evacuated threads home. Without this the scheduler's
    // stability check keeps the migrated threads where the quarantine pushed
    // them (loads stay within its 2x tolerance) and the revived lane idles
    // forever, pinning steady-state throughput at the one-lane-short level.
    // Only the evacuees move: the surviving lanes' thread sets — and the
    // phase-aligned coalescing they carry — stay untouched.
    for (uint32_t tid : victim->evacuated_tids) {
      if (tid < desired_lane_.size()) {
        desired_lane_[tid] = victim->index;
      }
    }
    victim->evacuated_tids.clear();
    backoff = base_backoff;
  }
}

sim::Proc Connection::ElasticScaler() {
  const FlockConfig& config = client_->config();
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(client_->cluster());
  sim::Simulator& sim = client_->sim();
  std::vector<uint32_t> degrees;
  for (;;) {
    co_await sim::Delay(sim, config.elastic_interval);
    if (!cp.IsMember(client_->node()) || !cp.IsMember(server_node_)) {
      continue;
    }
    degrees.clear();
    uint32_t usable = 0;
    uint32_t active_count = 0;
    for (const auto& lane : lanes_) {
      if (lane->failed || lane->retired) {
        continue;
      }
      ++usable;
      if (lane->active) {
        ++active_count;
        degrees.push_back(lane->coalesce_degree.Median(0));
      }
    }
    if (degrees.empty()) {
      continue;
    }
    std::sort(degrees.begin(), degrees.end());
    const uint32_t median = degrees[degrees.size() / 2];

    if (median >= config.elastic_grow_degree &&
        lanes_.size() < config.max_lanes_per_connection &&
        lanes_.size() < ctrl::wire::kMaxLanesPerMsg) {
      // Sustained high coalescing: threads queue more deeply than the
      // combining bound intends — add a lane (§5.2 signal, §10 mechanism).
      const uint32_t index = static_cast<uint32_t>(lanes_.size());
      ctrl::wire::AddLaneRequest req;
      req.client_node = client_->node();
      req.conn_id = conn_id_;
      req.lane_index = index;
      req.ring_bytes = config.ring_bytes;
      auto lane = client_->BuildClientLane(*this, index, &req.lane);

      uint8_t msg[ctrl::wire::kMaxMessageBytes];
      uint8_t resp[ctrl::wire::kMaxMessageBytes];
      const uint32_t msg_len = ctrl::wire::EncodeMessage(
          msg, sizeof(msg), ctrl::wire::MsgType::kAddLaneRequest,
          cp.NextNonce(), &req, sizeof(req));
      co_await sim::Delay(sim, config.ctrl_rtt);
      const uint32_t resp_len =
          cp.Call(server_node_, msg, msg_len, resp, sizeof(resp));
      ctrl::wire::MsgHeader resp_header;
      ctrl::wire::AddLaneAccept accept;
      if (resp_len == 0 ||
          !ctrl::wire::DecodeHeader(resp, resp_len, &resp_header) ||
          !ctrl::wire::DecodeAddLaneAccept(resp_header, resp, &accept)) {
        continue;  // rejected: the orphaned client half is abandoned
      }
      client_->WireClientLane(*lane, server_node_, accept.lane,
                              /*grant_cumulative=*/0);
      lanes_.push_back(std::move(lane));
      client_->client_stats_.lanes_added += 1;
    } else if (median <= config.elastic_shrink_degree && active_count > 1 &&
               usable > config.min_lanes) {
      // Requests rarely coalesce: the handle holds more QPs than its load
      // needs — retire the highest-index active lane.
      ClientLane* target = nullptr;
      for (auto it = lanes_.rbegin(); it != lanes_.rend(); ++it) {
        ClientLane& l = **it;
        if (!l.failed && !l.retired && l.active) {
          target = &l;
          break;
        }
      }
      if (target == nullptr) {
        continue;
      }
      ctrl::wire::RetireLaneRequest req;
      req.client_node = client_->node();
      req.conn_id = conn_id_;
      req.lane_index = target->index;

      uint8_t msg[ctrl::wire::kMaxMessageBytes];
      uint8_t resp[ctrl::wire::kMaxMessageBytes];
      const uint32_t msg_len = ctrl::wire::EncodeMessage(
          msg, sizeof(msg), ctrl::wire::MsgType::kRetireLaneRequest,
          cp.NextNonce(), &req, sizeof(req));
      co_await sim::Delay(sim, config.ctrl_rtt);
      const uint32_t resp_len =
          cp.Call(server_node_, msg, msg_len, resp, sizeof(resp));
      ctrl::wire::MsgHeader resp_header;
      ctrl::wire::RetireLaneAccept accept;
      if (resp_len == 0 ||
          !ctrl::wire::DecodeHeader(resp, resp_len, &resp_header) ||
          !ctrl::wire::DecodeRetireLaneAccept(resp_header, resp, &accept)) {
        continue;  // rejected (e.g. it is the last active lane)
      }
      // The server acked: the lane is retired on its side no matter what
      // happened to ours while the RTT elapsed, so retire here too — retired
      // wins over failed (the reconnect daemon skips retired lanes).
      target->retired = true;
      target->active = false;
      target->credits = 0;
      // Wake the pump so anything queued migrates to a surviving lane; the
      // thread scheduler moves the threads themselves next interval.
      target->send_ready.NotifyAll();
      client_->client_stats_.lanes_retired += 1;
    }
  }
}

}  // namespace flock
