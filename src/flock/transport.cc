#include "src/flock/transport.h"

namespace flock {

TransportOps& SimTransportInstance() {
  static SimTransport instance;
  return instance;
}

}  // namespace flock
