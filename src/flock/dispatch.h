// Request and response dispatching (§4.3): the server-side dispatcher procs
// that poll lane rings, gather coalesced requests, run handlers and post
// coalesced responses (inline or via the RPC worker pool), and the
// client-side response dispatcher that drains the send CQ, matches responses
// to pending RPCs and keeps the server's ring view fresh.
#ifndef FLOCK_FLOCK_DISPATCH_H_
#define FLOCK_FLOCK_DISPATCH_H_

#include <cstdint>
#include <vector>

#include "src/flock/lane.h"
#include "src/flock/wire.h"
#include "src/sim/cpu.h"
#include "src/sim/task.h"

namespace flock {
namespace internal {

// Per-dispatcher scratch reused across messages (no per-message allocation).
struct DispatchScratch {
  struct RespEntry {
    wire::ReqMeta meta;
    uint32_t offset = 0;
  };
  std::vector<uint8_t> data;
  std::vector<wire::ReqView> views;
  std::vector<RespEntry> resp;
};

// Gather-phase response buffer size, shared by the inline dispatcher and the
// worker pool. Without segmentation the gather can accumulate up to
// 2 * max_coalesce - 1 responses of max_payload each. With segmentation,
// responses above segment_threshold stream out as chunk trains the moment
// the handler returns, so the buffer holds at most the accumulated
// sub-threshold responses plus one large response in flight.
inline size_t DispatchScratchBytes(const FlockConfig& config) {
  if (config.segment_threshold == 0) {
    return size_t{2} * config.max_coalesce * (config.max_payload + 64) +
           wire::kHeaderBytes + wire::kCanaryBytes;
  }
  return size_t{2} * config.max_coalesce * (config.segment_threshold + 64) +
         config.max_payload + wire::kHeaderBytes + wire::kCanaryBytes;
}

// Server dispatcher `index`: round-robins over its assigned lanes, probing
// each request ring. Inline mode handles the message itself; worker-pool
// mode routes the lane to the RpcWorker queue.
sim::Proc RequestDispatcher(NodeEnv& env, ServerState& server, int index);

// Worker-pool executor: takes lanes off the work queue and runs the same
// gather/execute/respond path as the inline dispatcher.
sim::Proc RpcWorker(NodeEnv& env, ServerState& server, int index);

// One coalesced request message (and, coalescing permitting, its successors
// on the same ring): decode, run handlers, retire the request message(s),
// and post one coalesced response message.
sim::Co<void> HandleRequestMessage(NodeEnv& env, ServerState& server,
                                   ServerLane& lane, sim::Core& core,
                                   const wire::MsgHeader& first,
                                   DispatchScratch& scratch);

// Client dispatcher `index`: drains the shared send CQ (memop completions
// and send errors — the CQ is shared with any server role on this node,
// hence the ServerStats), then polls its share of every connection's
// response rings, completing pending RPCs.
sim::Proc ResponseDispatcher(NodeEnv& env, ClientState& client,
                             ServerStats& server_stats, int index);

}  // namespace internal
}  // namespace flock

#endif  // FLOCK_FLOCK_DISPATCH_H_
