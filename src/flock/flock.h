// Flock: a scalable RDMA communication framework (SOSP '21).
//
// Umbrella public header. See README.md for a quickstart and
// src/flock/runtime.h for the full API surface (Table 2 mapping).
#ifndef FLOCK_FLOCK_FLOCK_H_
#define FLOCK_FLOCK_FLOCK_H_

#include "src/flock/combine.h"
#include "src/flock/config.h"
#include "src/flock/ring.h"
#include "src/flock/runtime.h"
#include "src/flock/transport.h"
#include "src/flock/wire.h"

#endif  // FLOCK_FLOCK_FLOCK_H_
