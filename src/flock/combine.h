// Flock synchronization: thread combining (§4.2).
//
// Two layers live here. CombiningQueue is the MCS-style lock-free queue in
// which the thread at the head becomes the *leader* and combines the requests
// of the *followers* queued behind it (bounded, to guarantee leader
// progress), then hands leadership to the first follower it did not include.
// It is written with real std::atomic operations and is exercised by
// genuinely multithreaded stress tests (tests/combining_threads_test.cc).
//
// Inside the discrete-event simulation the same protocol is driven by
// coroutines (a single OS thread), with its synchronization *costs* charged
// from the CostModel: StageRpc enqueues onto a lane's intrusive combining
// queue, and the per-lane Pump plays the transient leader — copy-completion
// polling, message sealing, posting, and leadership handoff. The memop pump
// is the §6 equivalent for one-sided operations.
#ifndef FLOCK_FLOCK_COMBINE_H_
#define FLOCK_FLOCK_COMBINE_H_

#include <atomic>
#include <cstdint>

#include "src/common/logging.h"
#include "src/flock/lane.h"
#include "src/flock/thread.h"
#include "src/sim/task.h"

namespace flock {

class CombiningQueue {
 public:
  enum Status : uint32_t {
    kWaiting = 0,  // enqueued; leader has not processed it yet
    kLeader = 1,   // promoted: this thread must run the leader protocol
    kDone = 2,     // a leader combined and submitted this request
  };

  // One node per (thread, queue); reusable after completion.
  struct Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<uint32_t> status{kWaiting};
    // Opaque request descriptor the leader combines (payload pointer, length,
    // sequence id... — whatever the embedding protocol needs).
    uint64_t payload = 0;

    void Reset() {
      next.store(nullptr, std::memory_order_relaxed);
      status.store(kWaiting, std::memory_order_relaxed);
    }
  };

  CombiningQueue() = default;
  CombiningQueue(const CombiningQueue&) = delete;
  CombiningQueue& operator=(const CombiningQueue&) = delete;

  // Enqueues `node` with a single atomic swap (the MCS step). Returns true if
  // the caller is the leader; false if it must WaitTurn().
  bool Enqueue(Node* node) {
    node->Reset();
    Node* prev = tail_.exchange(node, std::memory_order_acq_rel);
    if (prev == nullptr) {
      return true;
    }
    prev->next.store(node, std::memory_order_release);
    return false;
  }

  // Follower: spins until a leader processed this node (kDone) or promoted it
  // to leader (kLeader). Returns the terminal status.
  uint32_t WaitTurn(const Node* node) const {
    uint32_t status;
    while ((status = node->status.load(std::memory_order_acquire)) == kWaiting) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
    }
    return status;
  }

  // Leader: gathers itself plus up to bound-1 queued followers, in order.
  // Returns the batch size (>= 1). `out[0]` is always `leader`.
  size_t Collect(Node* leader, Node** out, size_t bound) {
    FLOCK_CHECK_GE(bound, 1u);
    out[0] = leader;
    size_t n = 1;
    Node* current = leader;
    while (n < bound) {
      Node* next = current->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        if (tail_.load(std::memory_order_acquire) == current) {
          break;  // genuinely the last node
        }
        // A successor swapped the tail but has not linked yet; it will.
        do {
          next = current->next.load(std::memory_order_acquire);
        } while (next == nullptr);
      }
      out[n++] = next;
      current = next;
    }
    return n;
  }

  // Leader: after submitting the combined batch, retires the batch nodes and
  // hands leadership to the first non-included follower (if any).
  void Finish(Node** batch, size_t n) {
    Node* last = batch[n - 1];
    Node* next = last->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      Node* expected = last;
      if (tail_.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel)) {
        // Queue emptied.
        for (size_t i = 1; i < n; ++i) {
          batch[i]->status.store(kDone, std::memory_order_release);
        }
        return;
      }
      // Lost the race with an enqueuer: wait for its link.
      do {
        next = last->next.load(std::memory_order_acquire);
      } while (next == nullptr);
    }
    next->status.store(kLeader, std::memory_order_release);
    for (size_t i = 1; i < n; ++i) {
      batch[i]->status.store(kDone, std::memory_order_release);
    }
  }

  bool Empty() const { return tail_.load(std::memory_order_acquire) == nullptr; }

 private:
  std::atomic<Node*> tail_{nullptr};
};

namespace internal {

// fl_send_rpc staging: allocates the RPC handle, enqueues a PendingSend onto
// the thread's lane (one atomic swap, §4.2) and returns once the message
// carrying it is on the wire — the leader gathers the payload straight from
// the caller's slices into the staging ring (DESIGN.md §16). Payloads above
// FlockConfig::segment_threshold are staged as a SegMark chunk train
// instead. `response_dst`/`response_cap`, when non-null, give the dispatcher
// a caller-owned buffer to land the response in (mandatory for responses too
// large for reassembly into the inline SmallBuf to stay allocation-free).
// Lazily-started Co: the public Connection::SendRpc forwards here without
// adding a coroutine frame.
sim::Co<PendingRpc*> StageRpc(ClientConnState& conn, FlockThread& thread,
                              uint16_t rpc_id, PayloadRef payload,
                              uint8_t* response_dst = nullptr,
                              uint32_t response_cap = 0);

// Starts pumping `lane` if it is not already being pumped: first use spawns
// the persistent pump proc, later uses wake it from its parked state.
void WakePump(ClientConnState& conn, ClientLane& lane);

// The per-lane transient leader (§4.2): admits queued requests up to the
// combining bound, polls copy-completion flags, seals and posts the combined
// message, then releases the followers.
sim::Proc Pump(ClientConnState& conn, ClientLane& lane);

// One-sided operation staging (§6): links the WR into the lane's memop queue
// and awaits its completion event; the memop pump posts the chain.
sim::Co<verbs::WcStatus> SubmitMemOp(ClientConnState& conn, FlockThread& thread,
                                     verbs::SendWr wr);

// Leader for one-sided batches: links queued WRs and rings one doorbell.
sim::Proc MemPump(ClientConnState& conn, ClientLane& lane);

}  // namespace internal
}  // namespace flock

#endif  // FLOCK_FLOCK_COMBINE_H_
