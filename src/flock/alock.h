// ALock-style reader/writer locking built purely on one-sided atomics
// (fl_fetch_and_add / fl_cmp_and_swap, Table 2). Clients acquire and release
// a lock word in the server's memory without ever involving the server CPU —
// the other half of the design space next to RPC-mediated locking (PAPERS.md:
// ALock; "RDMA vs. RPC for Implementing Distributed Data Structures").
//
// Lock word layout (64 bits, must live at an 8-byte-aligned address):
//
//     [ 15 spare | writer bit (1 << 48) | 48-bit reader count ]
//
// Readers FetchAndAdd(+1); if the returned snapshot has the writer bit set
// they undo with FetchAndAdd(-1) and retry. A writer CompareAndSwaps
// 0 -> kWriterBit, i.e. it acquires only when there is no writer *and* no
// reader. Releases are unconditional FetchAndAdds of the negated stake, so a
// release never needs a retry loop and never loses concurrent arrivals.
//
// The KV store's version words (src/kv/kvstore.h: bit 0 = lock bit, commits
// bump by 2) are themselves single-writer locks; VersionTryLock/VersionUnlock
// below are the ALock writer path specialized to that encoding, used by the
// lock-based FlockTX variant (txn/coordinator.h TxMode::kLockOneSided).
#ifndef FLOCK_FLOCK_ALOCK_H_
#define FLOCK_FLOCK_ALOCK_H_

#include <cstdint>

#include "src/flock/runtime.h"

namespace flock {

class RemoteRwLock {
 public:
  static constexpr uint64_t kWriterBit = uint64_t{1} << 48;
  static constexpr uint64_t kReaderMask = kWriterBit - 1;

  // `word_addr` must be 8-byte aligned inside the region covered by `mr`
  // (the verbs layer rejects misaligned atomics at post time with kQpError).
  RemoteRwLock(Connection& conn, uint64_t word_addr, const RemoteMr& mr)
      : conn_(&conn), addr_(word_addr), mr_(mr) {}

  // Shared acquisition: one FetchAndAdd round trip in the uncontended case.
  // Returns true once the read stake is planted with no writer present;
  // false after `max_attempts` collisions with a writer, or on a transport
  // error (the caller should fall back to the RPC path either way).
  sim::Co<bool> ReaderAcquire(FlockThread& thread, int max_attempts = 64) {
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      uint64_t snapshot = 0;
      if (co_await conn_->FetchAndAdd(thread, addr_, 1, &snapshot, mr_) !=
          verbs::WcStatus::kSuccess) {
        co_return false;
      }
      if ((snapshot & kWriterBit) == 0) {
        co_return true;
      }
      // A writer holds the lock: withdraw the optimistic stake and retry.
      // Our own +1 is still in the count, so the decrement cannot borrow
      // into the writer bit.
      if (co_await conn_->FetchAndAdd(thread, addr_, Negate(1), nullptr,
                                      mr_) != verbs::WcStatus::kSuccess) {
        co_return false;
      }
      co_await Backoff(thread, attempt);
    }
    co_return false;
  }

  sim::Co<bool> ReaderRelease(FlockThread& thread) {
    co_return co_await conn_->FetchAndAdd(thread, addr_, Negate(1), nullptr,
                                          mr_) == verbs::WcStatus::kSuccess;
  }

  // Exclusive acquisition: CompareAndSwap(0 -> writer bit) succeeds only
  // against a word with no readers and no writer.
  sim::Co<bool> WriterAcquire(FlockThread& thread, int max_attempts = 64) {
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      uint64_t observed = 0;
      if (co_await conn_->CompareAndSwap(thread, addr_, 0, kWriterBit,
                                         &observed, mr_) !=
          verbs::WcStatus::kSuccess) {
        co_return false;
      }
      if (observed == 0) {
        co_return true;
      }
      co_await Backoff(thread, attempt);
    }
    co_return false;
  }

  sim::Co<bool> WriterRelease(FlockThread& thread) {
    co_return co_await conn_->FetchAndAdd(thread, addr_, Negate(kWriterBit),
                                          nullptr, mr_) ==
        verbs::WcStatus::kSuccess;
  }

  uint64_t word_addr() const { return addr_; }

 private:
  // FetchAndAdd takes an unsigned addend; subtraction is addition of the
  // two's complement (exactly what the hardware does).
  static constexpr uint64_t Negate(uint64_t stake) { return ~stake + 1; }

  // Capped exponential backoff between collisions (ALock's remote spin is
  // paced the same way): hammering the word with back-to-back atomics only
  // serializes the NIC and starves the holder's release.
  sim::Co<void> Backoff(FlockThread& thread, int attempt) {
    const int shift = attempt < 6 ? attempt : 6;
    co_await thread.core().Work(Nanos{200} << shift);
  }

  Connection* conn_;
  uint64_t addr_;
  RemoteMr mr_;
};

// ---------------------------------------------------------------------------
// Version-word write locks (the ALock writer path specialized to KV records)
// ---------------------------------------------------------------------------

// Bit 0 of a KV record's version word; matches src/kv/kvstore.h's encoding
// (kv sits above flock, so the constant is mirrored here, not included).
inline constexpr uint64_t kVersionLockBit = 1;

inline constexpr bool VersionLocked(uint64_t version) {
  return (version & kVersionLockBit) != 0;
}

// Try-locks the record whose version word is at `version_addr` by CAS'ing
// `expected_version` (which the caller read unlocked, i.e. even) to its
// locked form. Success proves the record has not been committed since the
// caller read `expected_version`: every commit bumps the version by 2, and a
// concurrent holder keeps the lock bit set, so any intervening writer makes
// the CAS miss. Returns false on contention or version change; `status`
// (optional) distinguishes transport failure from a clean miss.
// `result_addr` (optional) is a caller-owned 8-byte landing slot for the CAS
// result; required whenever several coroutines share one FlockThread, since
// the thread's built-in slot would be overwritten by a racing atomic.
inline sim::Co<bool> VersionTryLock(Connection& conn, FlockThread& thread,
                                    uint64_t version_addr,
                                    uint64_t expected_version,
                                    const RemoteMr& mr,
                                    verbs::WcStatus* status = nullptr,
                                    uint64_t result_addr = 0) {
  uint64_t observed = 0;
  const verbs::WcStatus wc = co_await conn.CompareAndSwap(
      thread, version_addr, expected_version,
      expected_version | kVersionLockBit, &observed, mr, result_addr);
  if (status != nullptr) {
    *status = wc;
  }
  co_return wc == verbs::WcStatus::kSuccess && observed == expected_version;
}

// Releases a version lock by writing `new_version` (even: the pre-lock value
// to abort, pre-lock + 2 to publish a commit). The 8-byte source lives at
// `scratch_addr` in this node's memory — callers reuse a per-thread slot.
inline sim::Co<verbs::WcStatus> VersionUnlock(Connection& conn,
                                              FlockThread& thread,
                                              fabric::MemorySpace& local_mem,
                                              uint64_t scratch_addr,
                                              uint64_t version_addr,
                                              uint64_t new_version,
                                              const RemoteMr& mr) {
  local_mem.Write(scratch_addr, &new_version, 8);
  co_return co_await conn.Write(thread, scratch_addr, version_addr, 8, mr);
}

}  // namespace flock

#endif  // FLOCK_FLOCK_ALOCK_H_
