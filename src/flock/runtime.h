// The Flock runtime: connection handles, zero-copy coalesced RPC, symbiotic
// send-recv scheduling, and one-sided memory/atomic operations (§3–§7).
//
// One FlockRuntime exists per simulated node and can play the client role
// (Connect + SendRpc/Read/Write/atomics), the server role (RegisterHandler +
// StartServer), or both.
//
// Table 2 mapping:
//   fl_connect        → FlockRuntime::Connect
//   fl_attach_mreg    → Connection::AttachMreg
//   fl_send_rpc       → Connection::SendRpc (async) / Call (send + await)
//   fl_recv_res       → Connection::AwaitResponse
//   fl_reg_handler    → FlockRuntime::RegisterHandler
//   fl_recv_rpc       → server request dispatchers (StartServer)
//   fl_send_res       → server request dispatchers (automatic response)
//   fl_read           → Connection::Read
//   fl_write          → Connection::Write
//   fl_fetch_and_add  → Connection::FetchAndAdd
//   fl_cmp_and_swap   → Connection::CompareAndSwap
#ifndef FLOCK_FLOCK_RUNTIME_H_
#define FLOCK_FLOCK_RUNTIME_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/pool.h"
#include "src/common/rand.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/ctrl/control_plane.h"
#include "src/flock/config.h"
#include "src/flock/ring.h"
#include "src/flock/wire.h"
#include "src/sim/cpu.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/verbs/device.h"

namespace flock {

class FlockRuntime;
class Connection;

// An RPC handler runs on a server dispatcher core: consume `req`, produce a
// response in `resp` (capacity `resp_cap`), return its length, and report the
// application CPU it consumed via `cpu_cost` (simulated time).
using RpcHandler = std::function<uint32_t(const uint8_t* req, uint32_t req_len,
                                          uint8_t* resp, uint32_t resp_cap,
                                          Nanos* cpu_cost)>;

// A registered application thread. Threads are pinned to a simulated core and
// carry the per-thread state the paper's schedulers consume.
class FlockThread {
 public:
  FlockThread(int node, uint16_t id, sim::Core* core, uint64_t seed)
      : node_(node), id_(id), core_(core), rng_(seed) {}

  int node() const { return node_; }
  uint16_t id() const { return id_; }
  sim::Core& core() { return *core_; }
  Rng& rng() { return rng_; }

  uint32_t NextSeq() { return next_seq_++; }

  // Statistics for sender-side thread scheduling (§5.2, Algorithm 1).
  WindowedMedian<uint32_t, 32> req_size_median;
  IntervalCounter reqs_sent;
  IntervalCounter bytes_sent;
  int outstanding = 0;
  // 8-byte landing slot for atomic results (allocated by CreateThread).
  uint64_t atomic_slot = 0;

 private:
  int node_;
  uint16_t id_;
  sim::Core* core_;
  Rng rng_;
  uint32_t next_seq_ = 1;
};

// An outstanding RPC awaiting its response. Allocated from the client
// runtime's object pool (release with Connection::FreeRpc); the response
// payload stays inline for payloads up to SmallBuf's capacity, so a
// steady-state small RPC touches no general-purpose allocator.
struct PendingRpc {
  sim::OneShotEvent done_event;
  bool ok = true;
  uint16_t rpc_id = 0;
  uint32_t seq = 0;
  uint16_t thread_id = 0;
  Nanos submitted_at = 0;
  Nanos completed_at = 0;
  SmallBuf<128> response;

  // Failure handling (populated only when FlockConfig::rpc_timeout > 0):
  // the retained request payload for retransmission, the retry deadline,
  // the lane currently accounting this RPC's in-flight slot, and the number
  // of retries attempted so far.
  SmallBuf<128> request;
  Nanos deadline = 0;  // 0 = no timeout armed
  uint32_t lane_index = 0;
  uint16_t retries = 0;

  bool done() const { return done_event.done(); }
};

// An outstanding one-sided memory/atomic operation. Lives in the submitting
// coroutine's frame; `next` links it into the lane's combining queue.
struct PendingMemOp {
  sim::OneShotEvent done_event;
  verbs::WcStatus status = verbs::WcStatus::kSuccess;
  verbs::SendWr wr;  // staged work request (leader links and posts, §6)
  sim::Core* owner_core = nullptr;
  PendingMemOp* next = nullptr;
};

// Remote memory region attached for one-sided operations (fl_attach_mreg).
struct RemoteMr {
  uint64_t addr = 0;
  uint64_t length = 0;
  uint32_t rkey = 0;
};

namespace internal {

// A request staged in a lane's combining queue. Mirrors the TCQ protocol:
// a thread first *enqueues* (one atomic swap), then copies its payload into
// the combining buffer and raises `copied`; the leader polls these
// copy-completion flags before sealing the message (§4.2). Pool-allocated by
// SendRpc, released by the posting leader; `next` threads it into the lane's
// combining queue and the leader's batch.
struct PendingSend {
  wire::ReqMeta meta;
  SmallBuf<128> data;
  sim::Core* owner_core = nullptr;  // leader work is charged here
  bool copied = false;
  // Set by the quarantine drop in Pump when it unlinks a request whose
  // submitting coroutine is still mid-copy (`copied == false`). Ownership
  // transfers back to that coroutine, which frees the handle after its copy
  // completes; the pump must not Delete it (the coroutine still writes
  // through the pointer).
  bool dropped = false;
  // Raised (and signalled through the lane's sent_cond) once the message
  // containing this request has been posted. fl_send_rpc returns only then:
  // a lone thread is always its own leader and posts synchronously, so its
  // back-to-back requests never coalesce with each other (§8.5.2:
  // "coroutines of a single thread do not coalesce").
  bool* sent_flag = nullptr;
  // Condition to notify alongside sent_flag. Normally the staging lane's
  // sent_cond, but after a failed-lane migration the posting lane differs
  // from the one the submitting coroutine is parked on, so the waker travels
  // with the request. nullptr for watchdog retransmissions (no waiter).
  sim::Condition* sent_cond = nullptr;
  PendingSend* next = nullptr;
};

// Control message types carried in write-with-imm immediates (client→server;
// server→client control flows through RDMA-written per-lane control slots,
// which unlike datagram-style imms cannot be dropped by receive exhaustion).
enum class CtrlType : uint32_t {
  kRenewRequest = 0,  // client → server: {lane, median coalescing degree}
};

// Server→client per-lane control slot, RDMA-written by the QP scheduler and
// polled by the client's response dispatcher. The grant counter is
// cumulative, so a re-written slot never loses a grant.
struct CtrlSlot {
  uint32_t grant_cumulative = 0;
  uint8_t active = 0;
  uint8_t pad[3] = {};
};
static_assert(sizeof(CtrlSlot) == 8);

inline uint32_t PackCtrl(CtrlType type, uint32_t lane, uint32_t value) {
  FLOCK_CHECK_LT(lane, 1u << 13);
  FLOCK_CHECK_LT(value, 1u << 16);
  return (static_cast<uint32_t>(type) << 29) | (lane << 16) | value;
}

inline void UnpackCtrl(uint32_t imm, CtrlType* type, uint32_t* lane, uint32_t* value) {
  *type = static_cast<CtrlType>(imm >> 29);
  *lane = (imm >> 16) & 0x1fff;
  *value = imm & 0xffff;
}

// wr_id tagging so shared CQs can route completions. Client- and server-role
// posts carry distinct tags: a node can play both roles on the same shared
// CQs, and error completions must resolve to the right lane type
// (ClientLane* vs ServerLane*) to quarantine the right object.
enum class WrTag : uint64_t {
  kRpcWrite = 0,     // client: coalesced message / wrap marker writes
  kMemOp = 1,        // PendingMemOp*
  kCtrl = 2,         // client: control write-with-imm / head-slot writes
  kRecv = 3,         // client: ClientLane* on posted receives
  kServerWrite = 4,  // server: response message / wrap marker writes
  kServerCtrl = 5,   // server: control-slot writes
  kServerRecv = 6,   // server: ServerLane* on posted receives
};

// Statuses that condemn the QP (and with it the lane): flushes and vanished
// peers never heal on their own. RNR/remote-access errors are treated as
// transient — the payload may be lost, but per-RPC timeouts recover it.
inline bool IsFatalWcStatus(verbs::WcStatus status) {
  return status == verbs::WcStatus::kFlushError ||
         status == verbs::WcStatus::kQpError ||
         status == verbs::WcStatus::kRemoteInvalidQp;
}

inline uint64_t TagWrId(WrTag tag, const void* ptr) {
  const uint64_t p = reinterpret_cast<uint64_t>(ptr);
  FLOCK_CHECK_EQ(p & 0x7u, 0u);
  return p | static_cast<uint64_t>(tag);
}

inline WrTag WrIdTag(uint64_t wr_id) { return static_cast<WrTag>(wr_id & 0x7u); }

template <typename T>
T* WrIdPtr(uint64_t wr_id) {
  return reinterpret_cast<T*>(wr_id & ~0x7ull);
}

// ---- client side of one QP lane ----
struct ClientLane {
  ClientLane(sim::Simulator& sim, uint32_t ring_bytes)
      : req_producer(ring_bytes), send_ready(sim) {}

  uint32_t index = 0;
  Connection* conn = nullptr;
  verbs::Qp* qp = nullptr;

  // Request path: local staging mirror → RDMA write → server request ring.
  RingProducer req_producer;
  uint8_t* staging = nullptr;
  uint64_t staging_addr = 0;
  uint64_t remote_ring_addr = 0;
  uint32_t remote_ring_rkey = 0;

  // Out-of-band head reporting: the dispatcher RDMA-writes the cumulative
  // consumed count of the response ring into this server-side slot.
  uint64_t head_slot_remote_addr = 0;
  uint32_t head_slot_rkey = 0;
  uint64_t head_src_addr = 0;   // client-local 8B staging for the slot write
  uint8_t* head_src_ptr = nullptr;  // cached At(head_src_addr)

  // Response path: server writes into this client-local ring.
  std::unique_ptr<RingConsumer> resp_consumer;
  uint64_t resp_ring_addr = 0;

  // Credits and activation (receiver-side QP scheduling, §5.1).
  uint64_t credits = 0;
  bool active = true;
  // Quarantined: the lane's QP errored. Queued work and threads migrate to
  // surviving lanes, in-flight RPCs recover via retry. With
  // FlockConfig::lane_reconnect the connection's reconnect daemon revives the
  // lane through the control plane; otherwise it stays quarantined forever.
  bool failed = false;
  // The reconnect daemon is mid-handshake for this lane (introspection only;
  // the lane still counts as failed until the handshake lands).
  bool reconnecting = false;
  // Retired by elastic shrink: deactivated for good, excluded from failure
  // accounting and never reconnected or reactivated.
  bool retired = false;
  // A response dispatcher is between its probe of this lane's rings and the
  // matching consume; the reconnect daemon must not resync state under it.
  bool in_dispatch = false;
  // Times this lane was revived through the control plane.
  uint64_t reconnects = 0;
  // Thread ids this lane was serving when it was quarantined; the reconnect
  // daemon steers exactly these threads back on revival so the surviving
  // lanes' phase-aligned coalescing groups stay intact.
  std::vector<uint32_t> evacuated_tids;
  bool renew_in_flight = false;
  // Dispatcher passes spent with queued work but zero credits. Only counted
  // while fault injection is armed: a lost renewal imm or a lost grant-slot
  // write (both unacked RDMA) would otherwise starve the lane forever, so
  // after enough starved passes the dispatcher re-sends the renewal.
  uint32_t starved_passes = 0;
  sim::Condition send_ready;  // credits or ring space became available
  // Client-local control slot the server RDMA-writes (grants + activation).
  uint64_t ctrl_slot_addr = 0;
  const uint8_t* ctrl_slot_ptr = nullptr;  // cached At(ctrl_slot_addr): the
                                           // dispatcher polls this every pass
  uint32_t grants_seen = 0;  // cumulative grants already applied

  // Flock synchronization state (§4.2). The combining queue is an intrusive
  // FIFO threaded through the pool-allocated PendingSends.
  PendingSend* combine_head = nullptr;
  PendingSend* combine_tail = nullptr;
  // The pump (transient leader) is a persistent per-lane process: spawned on
  // the lane's first request, it parks on pump_wake when the combining queue
  // drains instead of exiting, so enqueuing a request never rebuilds the
  // (large) pump coroutine frame. pump_running means "actively pumping".
  bool pump_running = false;
  bool pump_spawned = false;
  sim::OneShotEvent pump_wake;
  std::unique_ptr<sim::Condition> copy_done;  // follower copy-completion flags
  std::unique_ptr<sim::Condition> sent_cond;  // "your message was posted"

  // Metrics reported to the receiver.
  WindowedMedian<uint32_t, 64> coalesce_degree;
  uint64_t batch_histogram[33] = {};  // distribution of combined batch sizes
  uint64_t posts = 0;  // for selective signaling
  uint64_t messages_sent = 0;
  uint64_t requests_sent = 0;

  // One-sided operations (§6): intrusive FIFO through the PendingMemOps.
  PendingMemOp* memop_head = nullptr;
  PendingMemOp* memop_tail = nullptr;
  bool mem_pump_running = false;

  // Bytes of responses consumed since we last sent anything on this lane;
  // beyond a threshold the dispatcher pushes a head update out of band so the
  // server's view of the response ring never goes permanently stale (§4.1's
  // "the sender rarely reads" fallback, push- instead of pull-based).
  uint64_t resp_bytes_since_send = 0;

  // Outstanding requests per lane (migration safety, §5.2).
  uint64_t inflight = 0;
};

// ---- server side of one QP lane ----
struct ServerLane {
  explicit ServerLane(uint32_t ring_bytes) : resp_producer(ring_bytes) {}

  uint32_t index = 0;       // lane index within its connection
  int client_node = -1;
  uint32_t sender_key = 0;  // index into FlockRuntime::senders_
  verbs::Qp* qp = nullptr;

  // Request ring (server-local memory, written by the client).
  std::unique_ptr<RingConsumer> req_consumer;
  uint64_t req_ring_addr = 0;

  // Response path: server staging mirror → RDMA write → client response ring.
  RingProducer resp_producer;
  uint8_t* staging = nullptr;
  uint64_t staging_addr = 0;
  uint64_t remote_ring_addr = 0;
  uint32_t remote_ring_rkey = 0;

  // Server-side head slot the client's dispatcher writes into.
  uint64_t head_slot_addr = 0;
  const uint8_t* head_slot_ptr = nullptr;  // cached At(head_slot_addr)
  // rkeys advertised to the client at connect, kept for re-advertisement in
  // the reconnect accept (the MRs themselves survive a QP replacement).
  uint32_t req_ring_rkey = 0;
  uint32_t head_slot_rkey = 0;

  // Control slot on the client that this server lane writes.
  uint64_t ctrl_slot_remote_addr = 0;
  uint32_t ctrl_slot_rkey = 0;
  uint64_t ctrl_src_addr = 0;     // server-local staging for the slot write
  uint8_t* ctrl_src_ptr = nullptr;  // cached At(ctrl_src_addr)
  uint32_t grant_cumulative = 0;  // total credits ever granted on this lane

  // Receiver-side scheduling state (§5.1).
  bool active = true;
  // Quarantined: the QP errored (flush on our posts, or the client side
  // vanished). Excluded from dispatch, credit grants and redistribution
  // until a control-plane reconnect revives it.
  bool failed = false;
  // Retired by elastic shrink: never reactivated or granted credits again.
  // Still dispatched until its request ring drains.
  bool retired = false;
  uint64_t credits_outstanding = 0;  // granted minus (estimated) consumed
  uint64_t utilization = 0;          // U_ij: Σ reported degrees this interval
  uint64_t posts = 0;
  uint64_t messages_handled = 0;
  uint64_t requests_handled = 0;
  uint64_t messages_at_last_sweep = 0;  // stall-safety for pending grants
  bool in_service = false;  // handed to an RPC worker (worker-pool mode)
};

// Per-dispatcher scratch reused across messages (no per-message allocation).
struct DispatchScratch {
  struct RespEntry {
    wire::ReqMeta meta;
    uint32_t offset = 0;
  };
  std::vector<uint8_t> data;
  std::vector<wire::ReqView> views;
  std::vector<RespEntry> resp;
};

// Per-client-node aggregation at the server (sender i in §5.1).
struct SenderState {
  int client_node = -1;
  std::vector<ServerLane*> lanes;
  uint64_t utilization = 0;  // U_i
  bool functioning = true;
  // All lanes failed (directly, or by dead-sender reclamation): the sender
  // no longer participates in the QP-scheduling budget at all.
  bool dead = false;
  // Redistribute passes to skip dead-sender reclamation after a lane of this
  // sender was revived through the control plane. A just-reconnected lane has
  // zero utilization by construction; without the grace, the reclamation's
  // "failed sibling + idle interval" test would re-condemn it immediately
  // (the double-reclaim bug) and a rejoining node could never come back.
  uint32_t revive_grace = 0;
};

}  // namespace internal

// A connection handle: one per (client node, server node) pair, multiplexing
// this node's threads over an internally managed set of RC QPs.
class Connection {
 public:
  // fl_send_rpc: stages the request into the assigned lane's combining queue
  // (copy + one atomic swap on the calling thread's core) and returns an
  // awaitable handle. Does not wait for the network.
  sim::Co<PendingRpc*> SendRpc(FlockThread& thread, uint16_t rpc_id,
                               const uint8_t* data, uint32_t len);

  // fl_recv_res: awaits and consumes the response for `rpc`. Returns false if
  // the RPC failed. The response payload is in rpc->response; the caller must
  // release `rpc` with FreeRpc (the Call convenience below does both steps).
  sim::Co<bool> AwaitResponse(FlockThread& thread, PendingRpc* rpc);

  // Returns an RPC handle obtained from SendRpc to the runtime's pool.
  void FreeRpc(PendingRpc* rpc);

  // fl_send_rpc + fl_recv_res in one step.
  sim::Co<bool> Call(FlockThread& thread, uint16_t rpc_id, const uint8_t* data,
                     uint32_t len, std::vector<uint8_t>* response);

  // fl_attach_mreg: registers [addr, addr+len) of the *server's* memory for
  // one-sided access through this connection.
  RemoteMr AttachMreg(uint64_t remote_addr, uint64_t length);

  // One-sided operations (§6). All complete when the hardware acknowledges.
  sim::Co<verbs::WcStatus> Read(FlockThread& thread, uint64_t local_addr,
                                uint64_t remote_addr, uint32_t length,
                                const RemoteMr& mr);
  sim::Co<verbs::WcStatus> Write(FlockThread& thread, uint64_t local_addr,
                                 uint64_t remote_addr, uint32_t length,
                                 const RemoteMr& mr);
  sim::Co<verbs::WcStatus> FetchAndAdd(FlockThread& thread, uint64_t remote_addr,
                                       uint64_t add, uint64_t* old_value,
                                       const RemoteMr& mr);
  sim::Co<verbs::WcStatus> CompareAndSwap(FlockThread& thread, uint64_t remote_addr,
                                          uint64_t expected, uint64_t desired,
                                          uint64_t* old_value, const RemoteMr& mr);

  int server_node() const { return server_node_; }
  uint32_t num_lanes() const { return static_cast<uint32_t>(lanes_.size()); }
  uint32_t num_active_lanes() const;
  uint32_t num_failed_lanes() const;
  const internal::ClientLane& lane(uint32_t i) const { return *lanes_[i]; }
  // The sender key the server filed this handle under (control-plane id).
  uint32_t conn_id() const { return conn_id_; }

  // Per-lane state rollup for introspection/bench output. A lane is healthy
  // when neither failed nor retired; `reconnecting` counts the failed lanes
  // the reconnect daemon is actively mid-handshake on.
  struct LaneStates {
    uint32_t healthy = 0;
    uint32_t quarantined = 0;
    uint32_t reconnecting = 0;
    uint32_t retired = 0;
  };
  LaneStates CountLaneStates() const;
  // Total successful lane revivals on this handle.
  uint64_t lane_reconnects() const;

  // Aggregate client-side stats.
  uint64_t messages_sent() const;
  uint64_t requests_sent() const;
  double MeanCoalescing() const;
  // Aggregated distribution of leader batch sizes across lanes (index = size).
  void BatchHistogram(uint64_t out[33]) const;

 private:
  friend class FlockRuntime;

  internal::ClientLane& LaneFor(FlockThread& thread);
  // Marks a lane's QP as dead: deactivates it, zeroes its credits and wakes
  // the pump so queued work migrates to a surviving lane. Idempotent. With
  // lane_reconnect enabled it also kicks the reconnect daemon.
  void QuarantineLane(internal::ClientLane& lane);
  // Control-plane client daemons (spawned by Connect only when the matching
  // FlockConfig flag is set, so default traces gain no procs or events).
  sim::Proc ReconnectDaemon();
  sim::Proc ElasticScaler();
  sim::Proc Pump(internal::ClientLane& lane);
  // Starts pumping `lane` if it is not already being pumped: first use spawns
  // the persistent pump proc, later uses wake it from its parked state.
  void WakePump(internal::ClientLane& lane);
  sim::Proc MemPump(internal::ClientLane& lane);
  sim::Co<verbs::WcStatus> SubmitMemOp(FlockThread& thread, verbs::SendWr wr);
  // Appends a credit-renew WR to wrs[*nwrs] (and bumps *nwrs) when due.
  void MaybeRenewCredits(internal::ClientLane& lane, verbs::SendWr* wrs,
                         size_t* nwrs);

  FlockRuntime* client_ = nullptr;
  int server_node_ = -1;
  uint32_t conn_id_ = 0;
  // Kicked by QuarantineLane; only constructed when lane_reconnect is on.
  std::unique_ptr<sim::Condition> reconnect_cond_;
  std::vector<std::unique_ptr<internal::ClientLane>> lanes_;
  // thread id → lane index; `desired_` is written by the thread scheduler and
  // applied by LaneFor once the thread has drained its outstanding requests.
  std::vector<uint32_t> thread_lane_;
  std::vector<uint32_t> desired_lane_;
  // Outstanding RPCs, seq → rpc, one open-addressed map per thread id.
  std::vector<SeqSlotMap<PendingRpc>> pending_;
};

class FlockRuntime : public ctrl::Endpoint {
 public:
  struct ServerStats {
    uint64_t requests = 0;
    uint64_t messages = 0;
    uint64_t responses_sent = 0;
    uint64_t credit_renewals = 0;
    uint64_t redistributions = 0;
    uint64_t activations = 0;
    uint64_t deactivations = 0;
    uint64_t lane_failures = 0;  // server lanes quarantined
    uint64_t dead_senders = 0;   // senders fully reclaimed by Redistribute
    uint64_t responses_dropped = 0;  // responses lost to a dead lane
    uint64_t lane_reconnects = 0;    // server lanes revived via control plane
    uint64_t lanes_added = 0;        // elastic grow handshakes accepted
    uint64_t lanes_retired = 0;      // elastic shrink handshakes accepted
  };

  // Client-side failure-handling counters.
  struct ClientStats {
    uint64_t lane_failures = 0;       // client lanes quarantined
    uint64_t retries = 0;             // RPC retransmissions staged
    uint64_t failed_rpcs = 0;         // RPCs surfaced with ok=false
    uint64_t spurious_responses = 0;  // responses with no outstanding request
    uint64_t lane_reconnects = 0;     // client lanes revived via control plane
    uint64_t lanes_added = 0;         // elastic grow
    uint64_t lanes_retired = 0;       // elastic shrink
  };

  FlockRuntime(verbs::Cluster& cluster, int node, const FlockConfig& config);
  ~FlockRuntime();

  FlockRuntime(const FlockRuntime&) = delete;
  FlockRuntime& operator=(const FlockRuntime&) = delete;

  // ---- server role ----
  // fl_reg_handler.
  void RegisterHandler(uint16_t rpc_id, RpcHandler handler);
  // Starts `dispatcher_cores` request dispatchers (cores 1..n; core 0 runs
  // the QP scheduler) and the receiver-side QP scheduler (§5.1).
  void StartServer(int dispatcher_cores);

  // ---- client role ----
  // fl_connect: builds the connection handle through the control-plane
  // connect/accept handshake (QPs, rings, MR rkey exchange, credit
  // bootstrap). The overload taking a runtime is the common case; the
  // node-id form is what the handshake actually needs and exists for callers
  // that only know the server's node.
  Connection* Connect(FlockRuntime& server, uint32_t lanes);
  Connection* Connect(int server_node, uint32_t lanes);
  // Registers an application thread pinned to `core`.
  FlockThread* CreateThread(int core);
  // Starts the response dispatcher(s) and the sender-side thread scheduler.
  void StartClient();

  // ---- introspection ----
  verbs::Cluster& cluster() { return cluster_; }
  int node() const { return node_; }
  const FlockConfig& config() const { return config_; }
  const ServerStats& server_stats() const { return server_stats_; }
  const ClientStats& client_stats() const { return client_stats_; }
  sim::Simulator& sim() { return cluster_.sim(); }
  const sim::CostModel& cost() const { return cluster_.cost(); }
  uint32_t ActiveServerLanes() const;
  double MeanServerCoalescing() const;
  // Hot-path object pools (observability for allocation-free-path tests).
  const Pool<PendingRpc>& rpc_pool() const { return rpc_pool_; }
  const Pool<internal::PendingSend>& send_pool() const { return send_pool_; }

  // ---- control plane (DESIGN.md §10) ----
  // Dispatches a validated control-plane message to the matching handler.
  // Called synchronously by ControlPlane::Call on the destination node.
  uint32_t OnCtrlMessage(const uint8_t* msg, uint32_t len, uint8_t* resp,
                         uint32_t resp_cap) override;

 private:
  friend class Connection;

  // Server procs.
  sim::Proc RequestDispatcher(int index);
  sim::Proc RpcWorker(int index);
  sim::Proc QpScheduler();
  sim::Co<void> HandleRequestMessage(internal::ServerLane& lane, sim::Core& core,
                                     const wire::MsgHeader& header,
                                     internal::DispatchScratch& scratch);
  void Redistribute();
  // Updates the lane's client-side control slot (grants + activation flag).
  // Signaled writes double as liveness probes: their error completions are
  // how the QP scheduler learns a client died (see HandleRequestMessage).
  void WriteCtrlSlot(internal::ServerLane& lane, bool signaled = false);
  // Marks a server lane's QP dead: no more dispatch, grants or reactivation.
  void QuarantineServerLane(internal::ServerLane& lane);
  // Routes an errored send completion to the owning lane (either role: the
  // node-shared CQs are drained by whichever poller gets there first).
  void HandleSendError(const verbs::Completion& wc);

  // Client procs.
  sim::Proc ResponseDispatcher(int index);
  sim::Proc ThreadScheduler();
  // Periodic scan of outstanding RPCs (spawned only when rpc_timeout > 0):
  // expired RPCs are retransmitted with exponential backoff; after
  // max_retries they complete with ok=false.
  sim::Proc RetryWatchdog();
  void RetryPendingRpc(Connection& conn, PendingRpc* rpc);
  void FailPendingRpc(Connection& conn, PendingRpc* rpc);
  // Reads a lane's control slot and applies new grants / activation changes.
  void ApplyCtrlSlot(internal::ClientLane& lane);
  void RescheduleThreads(Connection& conn);

  // ---- control-plane handshake internals ----
  // Client half of one lane: QP + client-local memory + MRs, advertised in
  // `info`. The accept completes it via WireClientLane. Shared by the
  // connect handshake and elastic add-lane.
  std::unique_ptr<internal::ClientLane> BuildClientLane(
      Connection& conn, uint32_t index, ctrl::wire::ClientLaneInfo* info);
  // Applies a (connect/reconnect/add-lane) accept to the client lane: peer
  // QP wiring, remote addresses, posted receives, bootstrap control slot.
  void WireClientLane(internal::ClientLane& lane, int server_node,
                      const ctrl::wire::ServerLaneInfo& info,
                      uint32_t grant_cumulative);
  // Server half of one lane, wired to the advertised client QP.
  std::unique_ptr<internal::ServerLane> BuildServerLane(
      uint32_t index, int client_node, uint32_t sender_key, uint32_t ring_bytes,
      const ctrl::wire::ClientLaneInfo& in, bool active,
      ctrl::wire::ServerLaneInfo* out);
  // Message handlers behind OnCtrlMessage (server side of the handshakes).
  uint32_t HandleConnectRequest(const ctrl::wire::MsgHeader& header,
                                const uint8_t* msg, uint8_t* resp,
                                uint32_t resp_cap);
  uint32_t HandleReconnectRequest(const ctrl::wire::MsgHeader& header,
                                  const uint8_t* msg, uint8_t* resp,
                                  uint32_t resp_cap);
  uint32_t HandleAddLaneRequest(const ctrl::wire::MsgHeader& header,
                                const uint8_t* msg, uint8_t* resp,
                                uint32_t resp_cap);
  uint32_t HandleRetireLaneRequest(const ctrl::wire::MsgHeader& header,
                                   const uint8_t* msg, uint8_t* resp,
                                   uint32_t resp_cap);
  // Membership change (server side): a departed client's senders are torn
  // down and the AQP budget repartitioned immediately.
  void OnMemberLeft(int node);
  // Accelerates watchdog recovery of the RPCs accounted to a just-revived
  // lane: their deadlines collapse to "now" so the next tick retransmits.
  void ExpireLaneDeadlines(Connection& conn, uint32_t lane_index);

  verbs::Cluster& cluster_;
  const int node_;
  FlockConfig config_;

  // Shared CQs (one set per node; dispatchers and schedulers drain them).
  verbs::Cq* send_cq_ = nullptr;
  verbs::Cq* recv_cq_ = nullptr;

  // Server state. Handler lookup is a linear scan: applications register a
  // handful of RPC ids, and a short scan beats a hash on the per-request path.
  std::vector<std::pair<uint16_t, RpcHandler>> handlers_;
  const RpcHandler* FindHandler(uint16_t rpc_id) const {
    for (const auto& [id, handler] : handlers_) {
      if (id == rpc_id) {
        return &handler;
      }
    }
    return nullptr;
  }
  std::vector<std::unique_ptr<internal::ServerLane>> server_lanes_;
  std::vector<internal::SenderState> senders_;
  std::vector<std::vector<internal::ServerLane*>> dispatcher_lanes_;
  int dispatcher_count_ = 0;
  // Worker-pool mode: lanes with detected work, drained by RpcWorker procs.
  std::deque<internal::ServerLane*> work_queue_;
  std::unique_ptr<sim::Condition> work_ready_;
  bool server_started_ = false;
  ServerStats server_stats_;
  std::vector<uint8_t> handler_scratch_;
  // Membership listener handle (registered by StartServer, removed by the
  // destructor — the control plane outlives this runtime).
  uint64_t membership_listener_id_ = 0;

  // Client state.
  std::vector<std::unique_ptr<Connection>> connections_;
  std::vector<std::unique_ptr<FlockThread>> threads_;
  bool client_started_ = false;
  ClientStats client_stats_;
  // Watchdog scratch: expired RPCs collected per scan (SeqSlotMap::ForEach
  // must not observe concurrent mutation).
  std::vector<PendingRpc*> watchdog_scratch_;
  uint64_t rng_state_ = 0x9E3779B97F4A7C15ull;
  // Hot-path object pools (per node; the simulation is single-threaded).
  Pool<PendingRpc> rpc_pool_;
  Pool<internal::PendingSend> send_pool_;

  // Interval-scheduler scratch, reused across ticks so the steady state stays
  // allocation-free (see tests/alloc_test.cc).
  struct ThreadSchedStat {
    size_t tid;
    uint32_t median_size;
    uint64_t reqs;
    uint64_t bytes;
  };
  std::vector<uint32_t> sched_active_scratch_;
  std::vector<ThreadSchedStat> sched_stats_scratch_;
  std::vector<uint64_t> sched_lane_bytes_;
  std::vector<uint32_t> sched_lane_min_;
  std::vector<uint32_t> sched_lane_max_;
  std::vector<internal::ServerLane*> redistribute_order_;
};

}  // namespace flock

#endif  // FLOCK_FLOCK_RUNTIME_H_
