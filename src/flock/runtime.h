// The Flock runtime: connection handles, zero-copy coalesced RPC, symbiotic
// send-recv scheduling, and one-sided memory/atomic operations (§3–§7).
//
// One FlockRuntime exists per simulated node and can play the client role
// (Connect + SendRpc/Read/Write/atomics), the server role (RegisterHandler +
// StartServer), or both.
//
// This header is the public API and orchestration layer only. The mechanisms
// live in per-module headers beneath it (DESIGN.md §11): lane lifecycle in
// lane.h, thread combining in combine.h, credit/thread scheduling in sched/,
// retransmission in watchdog.h, request/response dispatch in dispatch.h, all
// over the transport seam in transport.h.
//
// Table 2 mapping:
//   fl_connect        → FlockRuntime::Connect
//   fl_attach_mreg    → Connection::AttachMreg
//   fl_send_rpc       → Connection::SendRpc (async) / Call (send + await)
//   fl_recv_res       → Connection::AwaitResponse
//   fl_reg_handler    → FlockRuntime::RegisterHandler
//   fl_recv_rpc       → server request dispatchers (StartServer)
//   fl_send_res       → server request dispatchers (automatic response)
//   fl_read           → Connection::Read
//   fl_write          → Connection::Write
//   fl_fetch_and_add  → Connection::FetchAndAdd
//   fl_cmp_and_swap   → Connection::CompareAndSwap
#ifndef FLOCK_FLOCK_RUNTIME_H_
#define FLOCK_FLOCK_RUNTIME_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/pool.h"
#include "src/common/units.h"
#include "src/ctrl/control_plane.h"
#include "src/flock/config.h"
#include "src/flock/lane.h"
#include "src/flock/sched/receiver.h"
#include "src/flock/sched/sender.h"
#include "src/flock/thread.h"
#include "src/flock/transport.h"
#include "src/flock/watchdog.h"
#include "src/verbs/device.h"

namespace flock {

class FlockRuntime;

// A connection handle: one per (client node, server node) pair, multiplexing
// this node's threads over an internally managed set of RC QPs. The handle is
// a thin facade over internal::ClientConnState; the mechanism modules
// (combine, sched, watchdog, dispatch, lane) do the actual work.
class Connection {
 public:
  // fl_send_rpc: stages the request into the assigned lane's combining queue
  // (one atomic swap on the calling thread's core; the payload is gathered
  // zero-copy from the caller's memory when the message is sealed) and
  // returns an awaitable handle. Does not wait for the network.
  sim::Co<PendingRpc*> SendRpc(FlockThread& thread, uint16_t rpc_id,
                               const uint8_t* data, uint32_t len);

  // Scatter-gather form (DESIGN.md §16): the request is a PayloadRef over
  // caller-owned slices (valid until SendRpc's Co completes). When
  // `response_dst` is non-null the response lands directly in it (up to
  // `response_cap` bytes; final length in rpc->response_len) instead of the
  // handle's inline buffer — required for MB-range responses to stay
  // allocation-free.
  sim::Co<PendingRpc*> SendRpc(FlockThread& thread, uint16_t rpc_id,
                               const PayloadRef& payload,
                               uint8_t* response_dst = nullptr,
                               uint32_t response_cap = 0);

  // fl_recv_res: awaits and consumes the response for `rpc`. Returns false if
  // the RPC failed. The response payload is in rpc->response (or the
  // response_dst passed to SendRpc); the caller must release `rpc` with
  // FreeRpc (the Call conveniences below do both steps).
  sim::Co<bool> AwaitResponse(FlockThread& thread, PendingRpc* rpc);

  // Returns an RPC handle obtained from SendRpc to the runtime's pool.
  void FreeRpc(PendingRpc* rpc);

  // fl_send_rpc + fl_recv_res in one step.
  sim::Co<bool> Call(FlockThread& thread, uint16_t rpc_id, const uint8_t* data,
                     uint32_t len, std::vector<uint8_t>* response);

  // Scatter-gather Call (DESIGN.md §16): request slices from caller memory,
  // response into a caller buffer. `*response_len` (if non-null) receives
  // the response size; bytes beyond `response_cap` would fail the transfer.
  sim::Co<bool> Call(FlockThread& thread, uint16_t rpc_id,
                     const PayloadRef& request, uint8_t* response_dst,
                     uint32_t response_cap, uint32_t* response_len);

  // fl_attach_mreg: registers [addr, addr+len) of the *server's* memory for
  // one-sided access through this connection.
  RemoteMr AttachMreg(uint64_t remote_addr, uint64_t length);

  // One-sided operations (§6). All complete when the hardware acknowledges.
  sim::Co<verbs::WcStatus> Read(FlockThread& thread, uint64_t local_addr,
                                uint64_t remote_addr, uint32_t length,
                                const RemoteMr& mr);
  sim::Co<verbs::WcStatus> Write(FlockThread& thread, uint64_t local_addr,
                                 uint64_t remote_addr, uint32_t length,
                                 const RemoteMr& mr);
  // For the atomics, `result_addr` is the local landing slot for the old
  // value; 0 means the thread's built-in atomic_slot. A coroutine that can
  // have an atomic in flight while OTHER coroutines on the same FlockThread
  // issue atomics must bring its own slot, or a racing completion overwrites
  // the shared slot before the old value is read back.
  sim::Co<verbs::WcStatus> FetchAndAdd(FlockThread& thread, uint64_t remote_addr,
                                       uint64_t add, uint64_t* old_value,
                                       const RemoteMr& mr,
                                       uint64_t result_addr = 0);
  sim::Co<verbs::WcStatus> CompareAndSwap(FlockThread& thread, uint64_t remote_addr,
                                          uint64_t expected, uint64_t desired,
                                          uint64_t* old_value, const RemoteMr& mr,
                                          uint64_t result_addr = 0);

  int server_node() const { return state_.server_node; }
  // Tenant identity this handle presented at fl_connect (DESIGN.md §15).
  tenant::TenantId tenant_id() const { return state_.tenant_id; }
  // The deferred (piggybacked) handshake was refused by tenancy admission
  // control: the handle is closed and every RPC on it fails fast.
  bool admission_rejected() const { return state_.admission_rejected; }
  // True once CloseConnection ran; a closed handle must not be used again.
  bool closed() const { return state_.closed; }
  uint32_t num_lanes() const { return static_cast<uint32_t>(state_.lanes.size()); }
  uint32_t num_active_lanes() const;
  uint32_t num_failed_lanes() const;
  const internal::ClientLane& lane(uint32_t i) const { return *state_.lanes[i]; }
  // The sender key the server filed this handle under (control-plane id).
  uint32_t conn_id() const { return state_.conn_id; }

  // Per-lane state rollup for introspection/bench output. A lane is healthy
  // when neither failed nor retired; `reconnecting` counts the failed lanes
  // the reconnect daemon is actively mid-handshake on.
  struct LaneStates {
    uint32_t healthy = 0;
    uint32_t quarantined = 0;
    uint32_t reconnecting = 0;
    uint32_t retired = 0;
  };
  LaneStates CountLaneStates() const;
  // Total successful lane revivals on this handle.
  uint64_t lane_reconnects() const;

  // Aggregate client-side stats.
  uint64_t messages_sent() const;
  uint64_t requests_sent() const;
  double MeanCoalescing() const;
  // Aggregated distribution of leader batch sizes across lanes (index = size).
  void BatchHistogram(uint64_t out[33]) const;

 private:
  friend class FlockRuntime;

  // The mechanism-facing state. The handle is heap-allocated and never
  // destroyed before the runtime, so &state_ (and the lane back-pointers into
  // it) stay stable for the simulation's lifetime.
  internal::ClientConnState state_;
};

class FlockRuntime : public ctrl::Endpoint {
 public:
  // Compatibility aliases: the stats structs moved to lane.h with the state
  // containers; existing call sites name them through the runtime.
  using ServerStats = flock::ServerStats;
  using ClientStats = flock::ClientStats;

  FlockRuntime(verbs::Cluster& cluster, int node, const FlockConfig& config);
  ~FlockRuntime();

  FlockRuntime(const FlockRuntime&) = delete;
  FlockRuntime& operator=(const FlockRuntime&) = delete;

  // ---- server role ----
  // fl_reg_handler.
  void RegisterHandler(uint16_t rpc_id, RpcHandler handler);
  // Starts `dispatcher_cores` request dispatchers (cores 1..n; core 0 runs
  // the QP scheduler) and the receiver-side QP scheduler (§5.1).
  void StartServer(int dispatcher_cores);

  // ---- client role ----
  // fl_connect: builds the connection handle through the control-plane
  // connect/accept handshake (QPs, rings, MR rkey exchange, credit
  // bootstrap). The overload taking a runtime is the common case; the
  // node-id form is what the handshake actually needs and exists for callers
  // that only know the server's node. `tenant` is the identity the handle
  // presents (DESIGN.md §15): the default tenant is always admitted; with
  // FlockConfig::tenancy on, admission control may refuse the handshake, in
  // which case Connect returns nullptr (with tenancy off a reject stays the
  // legacy hard failure).
  Connection* Connect(FlockRuntime& server, uint32_t lanes,
                      tenant::TenantId tenant = tenant::kDefaultTenant);
  Connection* Connect(int server_node, uint32_t lanes,
                      tenant::TenantId tenant = tenant::kDefaultTenant);
  // Runtime-phase connect (DESIGN.md §13): unlike the setup-phase Connect,
  // this charges simulated time for the QP bring-up (CostModel::qp_create /
  // qp_reset by provenance) and one ctrl_rtt for the handshake, and it honors
  // the connection-storm flags — qp_recycling (reuse pooled lane shells),
  // lazy_lanes (build only lane 0 now, the rest on first use) and
  // connect_piggyback (defer the handshake to the first RPC, saving the RTT
  // on the time-to-first-RPC path). With tenancy on, an admission reject
  // co_returns nullptr — except under connect_piggyback, where the handle is
  // returned immediately and a later reject closes it (admission_rejected),
  // failing its RPCs instead.
  sim::Co<Connection*> ConnectAsync(
      int server_node, uint32_t lanes,
      tenant::TenantId tenant = tenant::kDefaultTenant);
  // Closes a handle: retires every lane, harvests the quiescent ones into
  // the recycling pool (under qp_recycling), and detaches the connection
  // from the client procs. The handle object itself stays alive (stale CQEs
  // may still reference its lanes) but must not be used again.
  void CloseConnection(Connection* conn);
  // Registers an application thread pinned to `core`.
  FlockThread* CreateThread(int core);
  // Starts the response dispatcher(s) and the sender-side thread scheduler.
  void StartClient();

  // ---- introspection ----
  verbs::Cluster& cluster() { return cluster_; }
  int node() const { return node_; }
  const FlockConfig& config() const { return config_; }
  const ServerStats& server_stats() const { return server_.stats; }
  const ClientStats& client_stats() const { return client_.stats; }
  sim::Simulator& sim() { return cluster_.sim(); }
  const sim::CostModel& cost() const { return cluster_.cost(); }
  uint32_t ActiveServerLanes() const;
  double MeanServerCoalescing() const;
  // Hot-path object pools (observability for allocation-free-path tests).
  const Pool<PendingRpc>& rpc_pool() const { return client_.rpc_pool; }
  // Server-side segment reassembly counters (observability for tests).
  const internal::ReassemblyPool& reassembly_pool() const {
    return server_.reassembly;
  }
  const Pool<internal::PendingSend>& send_pool() const { return client_.send_pool; }
  // Connection-storm census (DESIGN.md §13): live server lanes, harvested
  // lane objects parked in the graveyard, pooled shells on each side, and
  // sender slots — the churn tests assert all of these stay bounded.
  size_t ServerLiveLanes() const { return server_.lanes.size(); }
  size_t ServerGraveyardLanes() const { return server_.graveyard.size(); }
  size_t ServerLanePool() const { return server_.lane_pool.size(); }
  size_t ClientLanePool() const { return client_.lane_pool.size(); }
  size_t ServerSenderSlots() const { return server_.senders.size(); }

  // ---- control plane (DESIGN.md §10) ----
  // Dispatches a validated control-plane message to the matching handler
  // (lane.h). Called synchronously by ControlPlane::Call on the destination.
  uint32_t OnCtrlMessage(const uint8_t* msg, uint32_t len, uint8_t* resp,
                         uint32_t resp_cap) override;

 private:
  friend class Connection;

  // Spawns the per-connection daemons (reconnect, elastic) and registers the
  // handle; shared tail of Connect and ConnectAsync.
  void FinishConnect(Connection* conn);

  verbs::Cluster& cluster_;
  const int node_;
  FlockConfig config_;

  // Shared CQs (one set per node; dispatchers and schedulers drain them).
  verbs::Cq* send_cq_ = nullptr;
  verbs::Cq* recv_cq_ = nullptr;

  // Per-node RNG stream (canaries, thread seeds); env_.rng_state aliases it.
  uint64_t rng_state_ = 0x9E3779B97F4A7C15ull;

  // The environment and role states the mechanism modules operate on.
  internal::NodeEnv env_;
  internal::ServerState server_;
  internal::ClientState client_;

  // Scheduler/watchdog engines (scratch-carrying; procs spawned by Start*).
  internal::ReceiverSched receiver_;
  internal::SenderSched sender_sched_;
  internal::Watchdog watchdog_;

  // Membership listener handle (registered by StartServer, removed by the
  // destructor — the control plane outlives this runtime).
  uint64_t membership_listener_id_ = 0;
  // Batched membership epochs (DESIGN.md §13): teardowns inside a batch set
  // the pending flag instead of repartitioning per event; the batch-end
  // listener runs the one deferred Redistribute.
  uint64_t batch_end_listener_id_ = 0;
  bool redistribute_pending_ = false;

  // Client connection handles, in connect order (client_.conns aliases them).
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace flock

#endif  // FLOCK_FLOCK_RUNTIME_H_
