#include "src/flock/lane.h"

#include <algorithm>
#include <cstring>

#include "src/ctrl/control_plane.h"

namespace flock {
namespace internal {

// ---------------------------------------------------------------------------
// Quarantine and lane selection
// ---------------------------------------------------------------------------

void QuarantineLane(ClientConnState& conn, ClientLane& lane) {
  if (lane.failed) {
    return;
  }
  lane.failed = true;
  lane.active = false;
  lane.credits = 0;
  lane.renew_in_flight = false;
  conn.client->stats.lane_failures += 1;
  // Remember which threads this lane was serving so a later reconnect can
  // send exactly those threads back. Pulling only the evacuees home keeps
  // every surviving lane's thread set — and with it the phase-aligned
  // coalescing those threads have built up — intact; a wholesale re-sort
  // would scramble the pairs and halve the coalescing degree permanently.
  lane.evacuated_tids.clear();
  for (size_t tid = 0; tid < conn.thread_lane.size(); ++tid) {
    if (conn.thread_lane[tid] == lane.index ||
        (tid < conn.desired_lane.size() && conn.desired_lane[tid] == lane.index)) {
      lane.evacuated_tids.push_back(static_cast<uint32_t>(tid));
    }
  }
  // Wake the pump so queued work migrates (or drains) off the dead lane.
  lane.send_ready.NotifyAll();
  // Kick the reconnect daemon (constructed only when lane_reconnect is on).
  if (conn.reconnect_cond != nullptr) {
    conn.reconnect_cond->NotifyAll();
  }
}

ClientLane& LaneFor(ClientConnState& conn, FlockThread& thread) {
  const size_t tid = thread.id();
  if (conn.thread_lane.size() <= tid) {
    conn.thread_lane.resize(tid + 1, UINT32_MAX);
  }
  uint32_t current = conn.thread_lane[tid];
  if (conn.desired_lane.size() <= tid) {
    conn.desired_lane.resize(tid + 1, UINT32_MAX);
  }
  const uint32_t desired = conn.desired_lane[tid];
  // Apply a pending migration only once all of the thread's outstanding
  // requests have completed (sequence-id safety, §5.2).
  if (desired != UINT32_MAX && desired != current && thread.outstanding == 0) {
    current = desired;
    conn.thread_lane[tid] = current;
  }
  if (current == UINT32_MAX ||
      (!conn.lanes[current]->active && thread.outstanding == 0)) {
    // Initial (or repair) assignment: spread over the active lanes.
    std::vector<uint32_t> active;
    for (uint32_t i = 0; i < conn.lanes.size(); ++i) {
      if (conn.lanes[i]->active) {
        active.push_back(i);
      }
    }
    if (active.empty()) {
      // Server guarantees >= 1 active in healthy operation, so this is
      // transient; prefer any surviving lane over a quarantined one.
      for (uint32_t i = 0; i < conn.lanes.size(); ++i) {
        if (!conn.lanes[i]->failed && !conn.lanes[i]->retired) {
          active.push_back(i);
          break;
        }
      }
      if (active.empty()) {
        active.push_back(0);  // every lane dead: nowhere better to stage
      }
    }
    current = active[tid % active.size()];
    conn.thread_lane[tid] = current;
    conn.desired_lane[tid] = current;
  }
  return *conn.lanes[current];
}

void QuarantineServerLane(ServerLane& lane, ServerStats& stats) {
  if (lane.failed) {
    return;
  }
  lane.failed = true;
  if (lane.active) {
    lane.active = false;
    stats.deactivations += 1;
  }
  stats.lane_failures += 1;
}

void HandleSendError(const verbs::Completion& wc, ServerStats& stats) {
  switch (WrIdTag(wc.wr_id)) {
    case WrTag::kRpcWrite:
    case WrTag::kCtrl: {
      auto* lane = WrIdPtr<ClientLane>(wc.wr_id);
      // Ignore stale flushes from a QP that a reconnect already replaced, or
      // from a lane whose QP was harvested into the recycling pool (qp is
      // nullptr then — the lane is closed and must not be "re-quarantined",
      // which would bump failure counters for a teardown that already ran).
      if (lane->qp == nullptr ||
          (wc.qpn != 0 && wc.qpn != lane->qp->qpn())) {
        break;
      }
      if (IsFatalWcStatus(wc.status)) {
        QuarantineLane(*lane->conn, *lane);
      }
      // Transient statuses (RNR, remote access): the write was lost on the
      // wire; per-RPC timeouts retransmit whatever it carried.
      break;
    }
    case WrTag::kServerWrite:
    case WrTag::kServerCtrl: {
      auto* lane = WrIdPtr<ServerLane>(wc.wr_id);
      // A graveyard lane (qp harvested into the pool) is always stale here.
      const bool stale =
          lane->qp == nullptr || (wc.qpn != 0 && wc.qpn != lane->qp->qpn());
      if (!stale && IsFatalWcStatus(wc.status)) {
        QuarantineServerLane(*lane, stats);
      }
      if (WrIdTag(wc.wr_id) == WrTag::kServerWrite) {
        stats.responses_dropped += 1;  // that response is gone either way
      }
      break;
    }
    default:
      break;  // kMemOp handled by its own completion event; recvs never here
  }
}

void ExpireLaneDeadlines(ClientConnState& conn, uint32_t lane_index) {
  const Nanos now = conn.env->sim().Now();
  for (auto& map : conn.pending) {
    map.ForEach([&](uint32_t, PendingRpc* rpc) {
      if (rpc->deadline > 0 && rpc->lane_index == lane_index) {
        rpc->deadline = std::min(rpc->deadline, now);
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Building and wiring lane halves (fl_connect, reconnect, elastic add)
// ---------------------------------------------------------------------------

std::unique_ptr<ClientLane> BuildClientLane(NodeEnv& env, ClientConnState& conn,
                                            uint32_t index,
                                            ctrl::wire::ClientLaneInfo* info) {
  fabric::MemorySpace& cmem = env.mem();
  const uint32_t ring_bytes = env.config->ring_bytes;
  ClientState& client = *conn.client;

  auto cl = std::make_unique<ClientLane>(env.sim(), ring_bytes);
  cl->copy_done = std::make_unique<sim::Condition>(env.sim());
  cl->sent_cond = std::make_unique<sim::Condition>(env.sim());
  cl->index = index;
  cl->conn = &conn;

  // Recycling (DESIGN.md §13): draw the most recently harvested shell of
  // matching geometry — LIFO keeps the hot shell hot. The reset QP and the
  // existing MRs come back as-is; the rings are zeroed so the fresh
  // RingConsumer sees no ghost canaries from the previous incarnation, and
  // the control slot is zeroed so a dispatcher polling the still-unwired lane
  // reads grant_cumulative == grants_seen == 0 (a no-op).
  bool recycled = false;
  if (env.config->qp_recycling) {
    for (size_t i = client.lane_pool.size(); i-- > 0;) {
      if (client.lane_pool[i].ring_bytes != ring_bytes) {
        continue;
      }
      const ClientLaneShell shell = client.lane_pool[i];
      client.lane_pool.erase(client.lane_pool.begin() +
                             static_cast<std::ptrdiff_t>(i));
      cl->qp = shell.qp;
      cl->staging_addr = shell.staging_addr;
      cl->staging = cmem.At(shell.staging_addr);
      cl->head_src_addr = shell.head_src_addr;
      cl->head_src_ptr = cmem.At(shell.head_src_addr);
      cl->ctrl_slot_addr = shell.ctrl_slot_addr;
      cl->ctrl_slot_ptr = cmem.At(shell.ctrl_slot_addr);
      cl->resp_ring_addr = shell.resp_ring_addr;
      cl->resp_ring_rkey = shell.resp_ring_rkey;
      cl->ctrl_slot_rkey = shell.ctrl_slot_rkey;
      std::memset(cmem.At(cl->resp_ring_addr), 0, ring_bytes);
      std::memset(cmem.At(cl->ctrl_slot_addr), 0, 8);
      cl->resp_consumer = std::make_unique<RingConsumer>(
          cmem.At(cl->resp_ring_addr), ring_bytes);
      client.stats.qps_recycled += 1;
      recycled = true;
      break;
    }
  }
  if (!recycled) {
    cl->qp =
        env.device().CreateQp(verbs::QpType::kRc, env.send_cq, env.recv_cq);

    // Client-local memory: staging mirror for the request ring, head-slot
    // write source, the control slot the server RDMA-writes, and the
    // response ring.
    cl->staging_addr = cmem.Alloc(ring_bytes);
    cl->staging = cmem.At(cl->staging_addr);
    cl->head_src_addr = cmem.Alloc(8, 8);
    cl->head_src_ptr = cmem.At(cl->head_src_addr);
    cl->ctrl_slot_addr = cmem.Alloc(8, 8);
    cl->ctrl_slot_ptr = cmem.At(cl->ctrl_slot_addr);
    verbs::Mr ctrl_mr = env.device().RegisterMr(cl->ctrl_slot_addr, 8);
    cl->resp_ring_addr = cmem.Alloc(ring_bytes);
    verbs::Mr resp_mr = env.device().RegisterMr(cl->resp_ring_addr, ring_bytes);
    cl->resp_consumer = std::make_unique<RingConsumer>(
        cmem.At(cl->resp_ring_addr), ring_bytes);
    cl->resp_ring_rkey = resp_mr.rkey;
    cl->ctrl_slot_rkey = ctrl_mr.rkey;
    client.stats.qps_created += 1;
  }

  info->qpn = cl->qp->qpn();
  info->resp_ring_addr = cl->resp_ring_addr;
  info->resp_ring_rkey = cl->resp_ring_rkey;
  info->ctrl_slot_addr = cl->ctrl_slot_addr;
  info->ctrl_slot_rkey = cl->ctrl_slot_rkey;
  return cl;
}

void WireClientLane(NodeEnv& env, ClientLane& lane, int server_node,
                    const ctrl::wire::ServerLaneInfo& info,
                    uint32_t grant_cumulative) {
  lane.qp->ConnectTo(server_node, info.qpn);
  lane.remote_ring_addr = info.req_ring_addr;
  lane.remote_ring_rkey = info.req_ring_rkey;
  lane.head_slot_remote_addr = info.head_slot_addr;
  lane.head_slot_rkey = info.head_slot_rkey;
  // Receives for control write-with-imm messages.
  for (int r = 0; r < 16; ++r) {
    env.transport->PostRecv(*lane.qp,
                            verbs::RecvWr{TagWrId(WrTag::kRecv, &lane), 0, 0});
  }
  lane.active = info.active != 0;
  lane.credits = info.credits;
  lane.grants_seen = grant_cumulative;
  CtrlSlot bootstrap;
  bootstrap.grant_cumulative = grant_cumulative;
  bootstrap.active = info.active;
  env.mem().Write(lane.ctrl_slot_addr, &bootstrap, sizeof(bootstrap));
}

std::unique_ptr<ServerLane> BuildServerLane(NodeEnv& env, ServerState& server,
                                            uint32_t index,
                                            int client_node, uint32_t sender_key,
                                            uint32_t ring_bytes,
                                            const ctrl::wire::ClientLaneInfo& in,
                                            bool active,
                                            ctrl::wire::ServerLaneInfo* out) {
  fabric::MemorySpace& smem = env.mem();

  auto sl = std::make_unique<ServerLane>(ring_bytes);
  sl->index = index;
  sl->client_node = client_node;
  sl->sender_key = sender_key;

  // Recycling (DESIGN.md §13): reuse the most recently harvested shell of
  // matching geometry. The request ring is zeroed (no ghost canaries for the
  // fresh RingConsumer) and the head slot cleared to match the new client's
  // zero-based response consumer; the QP was reset at harvest, so anything
  // still in flight from its previous incarnation epoch-drops in the fabric.
  // Tenancy (§15): the ServerLane object itself is always freshly
  // constructed — shells carry no tenant state, so tenant_id and
  // deferred_grant start zeroed and no quota debt crosses a recycle (see
  // tests/tenant_test.cc RecyclingNoDebt).
  bool recycled = false;
  if (env.config->qp_recycling) {
    for (size_t i = server.lane_pool.size(); i-- > 0;) {
      if (server.lane_pool[i].ring_bytes != ring_bytes) {
        continue;
      }
      const ServerLaneShell shell = server.lane_pool[i];
      server.lane_pool.erase(server.lane_pool.begin() +
                             static_cast<std::ptrdiff_t>(i));
      sl->qp = shell.qp;
      sl->req_ring_addr = shell.req_ring_addr;
      sl->req_ring_rkey = shell.req_ring_rkey;
      sl->head_slot_addr = shell.head_slot_addr;
      sl->head_slot_ptr = smem.At(shell.head_slot_addr);
      sl->head_slot_rkey = shell.head_slot_rkey;
      sl->ctrl_src_addr = shell.ctrl_src_addr;
      sl->ctrl_src_ptr = smem.At(shell.ctrl_src_addr);
      sl->staging_addr = shell.staging_addr;
      sl->staging = smem.At(shell.staging_addr);
      std::memset(smem.At(sl->req_ring_addr), 0, ring_bytes);
      std::memset(smem.At(sl->head_slot_addr), 0, 8);
      sl->req_consumer = std::make_unique<RingConsumer>(
          smem.At(sl->req_ring_addr), ring_bytes);
      server.stats.qps_recycled += 1;
      recycled = true;
      break;
    }
  }
  if (!recycled) {
    sl->qp =
        env.device().CreateQp(verbs::QpType::kRc, env.send_cq, env.recv_cq);

    // Request ring lives here; the client advertised its response-side
    // memory.
    sl->req_ring_addr = smem.Alloc(ring_bytes);
    verbs::Mr req_mr = env.device().RegisterMr(sl->req_ring_addr, ring_bytes);
    sl->req_consumer =
        std::make_unique<RingConsumer>(smem.At(sl->req_ring_addr), ring_bytes);
    sl->req_ring_rkey = req_mr.rkey;
    sl->head_slot_addr = smem.Alloc(8, 8);
    sl->head_slot_ptr = smem.At(sl->head_slot_addr);
    verbs::Mr slot_mr = env.device().RegisterMr(sl->head_slot_addr, 8);
    sl->head_slot_rkey = slot_mr.rkey;
    sl->ctrl_src_addr = smem.Alloc(8, 8);
    sl->ctrl_src_ptr = smem.At(sl->ctrl_src_addr);
    sl->staging_addr = smem.Alloc(ring_bytes);
    sl->staging = smem.At(sl->staging_addr);
    server.stats.qps_created += 1;
  }
  sl->qp->ConnectTo(client_node, in.qpn);
  sl->ctrl_slot_remote_addr = in.ctrl_slot_addr;
  sl->ctrl_slot_rkey = in.ctrl_slot_rkey;
  sl->remote_ring_addr = in.resp_ring_addr;
  sl->remote_ring_rkey = in.resp_ring_rkey;

  for (int r = 0; r < 16; ++r) {
    env.transport->PostRecv(
        *sl->qp, verbs::RecvWr{TagWrId(WrTag::kServerRecv, sl.get()), 0, 0});
  }

  sl->active = active;
  sl->credits_outstanding = active ? env.config->credits : 0;

  out->qpn = sl->qp->qpn();
  out->req_ring_addr = sl->req_ring_addr;
  out->req_ring_rkey = sl->req_ring_rkey;
  out->head_slot_addr = sl->head_slot_addr;
  out->head_slot_rkey = sl->head_slot_rkey;
  out->active = active ? 1 : 0;
  out->credits = active ? env.config->credits : 0;
  return sl;
}

// ---------------------------------------------------------------------------
// Control-plane message handlers (server side, DESIGN.md §10)
// ---------------------------------------------------------------------------

uint32_t HandleConnectRequest(NodeEnv& env, ServerState& server,
                              const ctrl::wire::MsgHeader& header,
                              const uint8_t* msg, uint8_t* resp,
                              uint32_t resp_cap) {
  namespace cw = ctrl::wire;
  cw::ConnectRequest req;
  if (!cw::DecodeConnectRequest(header, msg, &req)) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kUnknown);
  }
  if (!server.started) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kServerNotStarted);
  }

  // Tenancy admission (DESIGN.md §15), before any server state is touched:
  // an unknown identity or a tenant at its connection ceiling rejects
  // outright; a tenant near its lane ceiling gets a degraded accept with
  // fewer lanes than requested. The registry lives on the control plane.
  uint32_t granted_lanes = req.num_lanes;
  if (env.config->tenancy) {
    tenant::TenantRegistry& reg =
        ctrl::ControlPlane::For(*env.cluster).tenants();
    if (req.tenant_id != tenant::kDefaultTenant &&
        !reg.Registered(req.tenant_id)) {
      reg.NoteUnknownTenant();
      return cw::EncodeReject(resp, resp_cap, header.nonce,
                              cw::RejectReason::kUnknownTenant);
    }
    const tenant::Admission verdict =
        reg.AdmitConnect(req.tenant_id, req.num_lanes);
    if (verdict.verdict == tenant::Admission::Verdict::kOverConnections) {
      return cw::EncodeReject(resp, resp_cap, header.nonce,
                              cw::RejectReason::kTenantOverConnections);
    }
    if (verdict.verdict == tenant::Admission::Verdict::kOverLanes) {
      return cw::EncodeReject(resp, resp_cap, header.nonce,
                              cw::RejectReason::kTenantOverLanes);
    }
    granted_lanes = verdict.lanes;
  }

  // Prefer a dead, fully-harvested sender slot over growing the array: under
  // churn every Leave strands one, and conn_ids (== slot indexes) would
  // otherwise grow without bound. A slot still holding lanes (quarantined
  // mid-service at teardown) is not reusable — its lane indexes are taken.
  // Without qp_recycling lanes are never harvested, so this scan finds
  // nothing and the behavior is byte-identical to the append-only scheme.
  uint32_t sender_key = static_cast<uint32_t>(server.senders.size());
  for (uint32_t i = 0; i < server.senders.size(); ++i) {
    if (server.senders[i].dead && server.senders[i].lanes.empty()) {
      sender_key = i;
      break;
    }
  }
  if (sender_key == server.senders.size()) {
    server.senders.push_back(SenderState{});
  } else {
    server.senders[sender_key] = SenderState{};
  }
  SenderState& sender = server.senders[sender_key];
  sender.client_node = req.client_node;
  sender.tenant_id = req.tenant_id;
  if (env.config->tenancy) {
    // AdmitConnect charged one connection and `granted_lanes` lanes above;
    // record exactly what teardown (or dead-sender reclamation) must release.
    sender.tenant_lanes_charged = granted_lanes;
    sender.tenant_charged = true;
  }

  // Receiver-side initial allocation: a new client gets the average active-QP
  // share per *live* sender (§5.1), refined at the next redistribution.
  // Counting only live senders fixes the stale-quota bug: a reclaimed (dead)
  // sender used to dilute the share every later connection bootstrapped with.
  uint32_t live_senders = 0;
  for (const SenderState& s : server.senders) {
    live_senders += s.dead ? 0 : 1;
  }
  const uint32_t fair_share =
      std::max<uint32_t>(1, env.config->max_active_qps / live_senders);
  const uint32_t initially_active = std::min(granted_lanes, fair_share);

  const uint64_t created_before = server.stats.qps_created;
  const uint64_t recycled_before = server.stats.qps_recycled;
  cw::ConnectAccept accept;
  accept.conn_id = sender_key;
  accept.num_lanes = granted_lanes;
  for (uint32_t i = 0; i < granted_lanes; ++i) {
    auto sl = BuildServerLane(env, server, i, req.client_node, sender_key,
                              req.ring_bytes, req.lanes[i],
                              i < initially_active, &accept.lanes[i]);
    sl->tenant_id = req.tenant_id;
    sender.lanes.push_back(sl.get());
    server
        .dispatcher_lanes[server.lanes.size() %
                          static_cast<size_t>(server.dispatcher_count)]
        .push_back(sl.get());
    server.lanes.push_back(std::move(sl));
  }
  // Provenance so the async client charges the right setup cost (qp_create
  // vs qp_reset) for the server-side bring-up it just caused.
  accept.fresh_qps =
      static_cast<uint32_t>(server.stats.qps_created - created_before);
  accept.recycled_qps =
      static_cast<uint32_t>(server.stats.qps_recycled - recycled_before);
  return cw::EncodeMessage(resp, resp_cap, cw::MsgType::kConnectAccept,
                           header.nonce, &accept,
                           cw::ConnectAcceptBytes(granted_lanes));
}

uint32_t HandleReconnectRequest(NodeEnv& env, ServerState& server,
                                const ctrl::wire::MsgHeader& header,
                                const uint8_t* msg, uint8_t* resp,
                                uint32_t resp_cap) {
  namespace cw = ctrl::wire;
  cw::ReconnectRequest req;
  if (!cw::DecodeReconnectRequest(header, msg, &req)) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kUnknown);
  }
  if (!server.started || req.conn_id >= server.senders.size()) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kBadConnId);
  }
  SenderState& sender = server.senders[req.conn_id];
  if (sender.client_node != req.client_node ||
      req.lane_index >= sender.lanes.size()) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kBadLane);
  }
  ServerLane& lane = *sender.lanes[req.lane_index];
  if (lane.retired) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kBadLane);
  }
  if (lane.in_service) {
    // Mid-dispatch: the client retries after backoff rather than having its
    // rings re-based under the dispatcher.
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kLaneBusy);
  }
  // The client is authoritative about its half being dead. If this side has
  // not noticed yet (no send completed in error), condemn it now so the
  // revival below starts from the quarantined state either way.
  if (!lane.failed) {
    QuarantineServerLane(lane, server.stats);
  }

  fabric::MemorySpace& smem = env.mem();
  const uint32_t ring_bytes = lane.resp_producer.size();

  // Fresh server QP wired to the client's fresh QP. The dead QP is abandoned
  // in place — qpns are never reused, so its late flushes are recognizably
  // stale (Completion::qpn) and ignored by the CQ pollers.
  verbs::Qp* fresh =
      env.device().CreateQp(verbs::QpType::kRc, env.send_cq, env.recv_cq);
  fresh->ConnectTo(req.client_node, req.lane.qpn);

  // Ring resync: both directions restart from sequence zero. The request ring
  // is zeroed (its canary-framed contents died with the old QP) and re-based;
  // the response producer restarts; the head slot is cleared to match the
  // client's fresh consumer. The client mirrors this before any sim event
  // runs (ControlPlane::Call is synchronous), so neither side can observe the
  // other half-resynced.
  std::memset(smem.At(lane.req_ring_addr), 0, ring_bytes);
  lane.req_consumer =
      std::make_unique<RingConsumer>(smem.At(lane.req_ring_addr), ring_bytes);
  lane.resp_producer = RingProducer(ring_bytes);
  const uint64_t zero = 0;
  smem.Write(lane.head_slot_addr, &zero, sizeof(zero));
  lane.qp = fresh;
  for (int r = 0; r < 16; ++r) {
    env.transport->PostRecv(
        *fresh, verbs::RecvWr{TagWrId(WrTag::kServerRecv, &lane), 0, 0});
  }

  lane.failed = false;
  lane.active = true;
  server.stats.activations += 1;
  lane.credits_outstanding = env.config->credits;
  lane.utilization = 0;
  lane.messages_at_last_sweep = lane.messages_handled;
  server.stats.lane_reconnects += 1;
  sender.dead = false;
  sender.functioning = true;
  // Shield the revived lane from dead-sender reclamation for two sweeps; it
  // has zero utilization by construction (the double-reclaim bug).
  sender.revive_grace = 2;

  cw::ReconnectAccept accept;
  accept.lane_index = req.lane_index;
  accept.credits = env.config->credits;
  // The grant counter is cumulative and survives the reconnect; the client
  // resyncs grants_seen to it so the delta stream stays consistent.
  accept.grant_cumulative = lane.grant_cumulative;
  accept.lane.qpn = fresh->qpn();
  accept.lane.req_ring_addr = lane.req_ring_addr;
  accept.lane.req_ring_rkey = lane.req_ring_rkey;
  accept.lane.head_slot_addr = lane.head_slot_addr;
  accept.lane.head_slot_rkey = lane.head_slot_rkey;
  accept.lane.active = 1;
  accept.lane.credits = env.config->credits;
  return cw::EncodeMessage(resp, resp_cap, cw::MsgType::kReconnectAccept,
                           header.nonce, &accept, sizeof(accept));
}

uint32_t HandleAddLaneRequest(NodeEnv& env, ServerState& server,
                              const ctrl::wire::MsgHeader& header,
                              const uint8_t* msg, uint8_t* resp,
                              uint32_t resp_cap) {
  namespace cw = ctrl::wire;
  cw::AddLaneRequest req;
  if (!cw::DecodeAddLaneRequest(header, msg, &req)) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kUnknown);
  }
  if (!server.started || req.conn_id >= server.senders.size()) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kBadConnId);
  }
  SenderState& sender = server.senders[req.conn_id];
  if (sender.client_node != req.client_node ||
      req.lane_index != sender.lanes.size() ||
      req.lane_index >= cw::kMaxLanesPerMsg) {
    // Lane indexes must stay aligned across both sides; out-of-sequence adds
    // (e.g. a replayed or reordered request) are refused.
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kBadLane);
  }

  // Tenancy: lane growth is charged against the same ceiling as the connect
  // handshake, so a tenant cannot route around admission via AddLane.
  if (env.config->tenancy) {
    tenant::TenantRegistry& reg =
        ctrl::ControlPlane::For(*env.cluster).tenants();
    if (!reg.AdmitLane(sender.tenant_id)) {
      return cw::EncodeReject(resp, resp_cap, header.nonce,
                              cw::RejectReason::kTenantOverLanes);
    }
    sender.tenant_lanes_charged += 1;
  }

  cw::AddLaneAccept accept;
  accept.lane_index = req.lane_index;
  const uint64_t recycled_before = server.stats.qps_recycled;
  auto sl = BuildServerLane(env, server, req.lane_index, req.client_node,
                            req.conn_id, req.ring_bytes, req.lane,
                            /*active=*/true, &accept.lane);
  sl->tenant_id = sender.tenant_id;
  accept.recycled = server.stats.qps_recycled != recycled_before ? 1 : 0;
  sender.lanes.push_back(sl.get());
  server
      .dispatcher_lanes[server.lanes.size() %
                        static_cast<size_t>(server.dispatcher_count)]
      .push_back(sl.get());
  server.lanes.push_back(std::move(sl));
  server.stats.lanes_added += 1;
  return cw::EncodeMessage(resp, resp_cap, cw::MsgType::kAddLaneAccept,
                           header.nonce, &accept, sizeof(accept));
}

uint32_t HandleRetireLaneRequest(NodeEnv& env, ServerState& server,
                                 const ctrl::wire::MsgHeader& header,
                                 const uint8_t* msg, uint8_t* resp,
                                 uint32_t resp_cap) {
  namespace cw = ctrl::wire;
  cw::RetireLaneRequest req;
  if (!cw::DecodeRetireLaneRequest(header, msg, &req)) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kUnknown);
  }
  if (!server.started || req.conn_id >= server.senders.size()) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kBadConnId);
  }
  SenderState& sender = server.senders[req.conn_id];
  if (sender.client_node != req.client_node ||
      req.lane_index >= sender.lanes.size()) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kBadLane);
  }
  ServerLane& lane = *sender.lanes[req.lane_index];
  if (lane.failed) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kBadLane);
  }
  cw::RetireLaneAccept accept;
  accept.lane_index = req.lane_index;
  if (lane.retired) {  // idempotent: a duplicate retire re-acks
    return cw::EncodeMessage(resp, resp_cap, cw::MsgType::kRetireLaneAccept,
                             header.nonce, &accept, sizeof(accept));
  }
  uint32_t live_active = 0;
  for (ServerLane* l : sender.lanes) {
    live_active += (!l->failed && !l->retired && l->active) ? 1 : 0;
  }
  if (lane.active && live_active <= 1) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kLastActiveLane);
  }
  lane.retired = true;
  if (lane.active) {
    lane.active = false;
    server.stats.deactivations += 1;
  }
  lane.credits_outstanding = 0;
  server.stats.lanes_retired += 1;
  // Tenancy: a retired lane frees its slice of the tenant's lane ceiling.
  if (env.config->tenancy && sender.tenant_charged &&
      sender.tenant_lanes_charged > 0) {
    ctrl::ControlPlane::For(*env.cluster)
        .tenants()
        .ReleaseLanes(sender.tenant_id, 1);
    sender.tenant_lanes_charged -= 1;
  }
  // The dispatcher keeps draining the retired lane's request ring (its skip
  // condition is in_service/failed, not retired) so in-flight RPCs complete.
  return cw::EncodeMessage(resp, resp_cap, cw::MsgType::kRetireLaneAccept,
                           header.nonce, &accept, sizeof(accept));
}

void TearDownOneSender(NodeEnv& env, ServerState& server,
                       SenderState& sender) {
  for (ServerLane* lane : sender.lanes) {
    if (!lane->failed && !lane->retired) {
      // Destroy the transport the way a real server tears down a departed
      // client's QPs: error it (flushing our posts) so the peer — should
      // the node come back before rejoining — sees kRemoteInvalidQp.
      env.device().ErrorQp(*lane->qp);
      QuarantineServerLane(*lane, server.stats);
    }
  }
  sender.dead = true;
  sender.functioning = false;
  sender.revive_grace = 0;
  server.stats.dead_senders += 1;
  // Tenancy: the departed client's admission accounting is released here
  // exactly once — tenant_charged also guards the Redistribute dead-sender
  // reclamation path, so a sender reclaimed both ways releases once.
  if (env.config->tenancy && sender.tenant_charged) {
    ctrl::ControlPlane::For(*env.cluster)
        .tenants()
        .ReleaseConnection(sender.tenant_id, sender.tenant_lanes_charged);
    sender.tenant_charged = false;
    sender.tenant_lanes_charged = 0;
  }

  // Harvest (DESIGN.md §13): strip each lane that is not mid-dispatch down
  // to its shell — reset QP, ring/slot addresses, rkeys — for the next
  // connect to reuse, and park the lane object in the graveyard. Graveyard
  // objects are never destroyed or reused: the CQEs just flushed (sends
  // plus ~16 posted receives per lane) still carry wr_id pointers to them,
  // and their qp == nullptr is what marks those completions stale. A lane
  // handed to an RPC worker (in_service) stays quarantined in place; its
  // slot-blocking is why the dead-sender scan above requires lanes.empty().
  if (env.config->qp_recycling) {
    std::vector<ServerLane*> kept;
    for (ServerLane* lane : sender.lanes) {
      if (lane->in_service) {
        kept.push_back(lane);
        continue;
      }
      env.device().ResetQp(*lane->qp);
      ServerLaneShell shell;
      shell.qp = lane->qp;
      shell.ring_bytes = lane->resp_producer.size();
      shell.req_ring_addr = lane->req_ring_addr;
      shell.head_slot_addr = lane->head_slot_addr;
      shell.ctrl_src_addr = lane->ctrl_src_addr;
      shell.staging_addr = lane->staging_addr;
      shell.req_ring_rkey = lane->req_ring_rkey;
      shell.head_slot_rkey = lane->head_slot_rkey;
      server.lane_pool.push_back(shell);
      lane->qp = nullptr;
      for (auto& dlanes : server.dispatcher_lanes) {
        for (size_t i = 0; i < dlanes.size(); ++i) {
          if (dlanes[i] == lane) {
            dlanes.erase(dlanes.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
      }
      for (size_t i = 0; i < server.lanes.size(); ++i) {
        if (server.lanes[i].get() == lane) {
          server.graveyard.push_back(std::move(server.lanes[i]));
          server.lanes.erase(server.lanes.begin() +
                             static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
    sender.lanes = std::move(kept);
  }
}

bool TearDownSenders(NodeEnv& env, ServerState& server, int node) {
  if (!server.started) {
    return false;
  }
  bool touched = false;
  for (SenderState& sender : server.senders) {
    if (sender.client_node != node || sender.dead) {
      continue;
    }
    TearDownOneSender(env, server, sender);
    touched = true;
  }
  return touched;
}

uint32_t HandleDisconnectRequest(NodeEnv& env, ServerState& server,
                                 const ctrl::wire::MsgHeader& header,
                                 const uint8_t* msg, uint8_t* resp,
                                 uint32_t resp_cap) {
  namespace cw = ctrl::wire;
  cw::DisconnectRequest req;
  if (!cw::DecodeDisconnectRequest(header, msg, &req)) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kUnknown);
  }
  if (!server.started || req.conn_id >= server.senders.size()) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kBadConnId);
  }
  SenderState& sender = server.senders[req.conn_id];
  if (sender.client_node != req.client_node) {
    return cw::EncodeReject(resp, resp_cap, header.nonce,
                            cw::RejectReason::kBadConnId);
  }
  cw::DisconnectAccept accept;
  accept.lanes_torn = static_cast<uint32_t>(sender.lanes.size());
  if (!sender.dead) {  // idempotent: a duplicate disconnect just re-acks
    TearDownOneSender(env, server, sender);
  }
  return cw::EncodeMessage(resp, resp_cap, cw::MsgType::kDisconnectAccept,
                           header.nonce, &accept, sizeof(accept));
}

// ---------------------------------------------------------------------------
// Client control-plane daemons: lane reconnection and elastic scaling
// ---------------------------------------------------------------------------

sim::Proc ReconnectDaemon(ClientConnState& conn) {
  const FlockConfig& config = *conn.env->config;
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(*conn.env->cluster);
  sim::Simulator& sim = conn.env->sim();
  const Nanos base_backoff = std::max<Nanos>(config.reconnect_backoff, 1);
  Nanos backoff = base_backoff;
  for (;;) {
    if (conn.closed) {
      co_return;  // CloseConnection: the handle never comes back
    }
    ClientLane* victim = nullptr;
    for (const auto& lane : conn.lanes) {
      if (lane->failed && !lane->retired) {
        victim = lane.get();
        break;
      }
    }
    if (victim == nullptr) {
      backoff = base_backoff;
      co_await conn.reconnect_cond->Wait();
      continue;
    }

    victim->reconnecting = true;
    co_await sim::Delay(sim, backoff);
    // The out-of-band channel is slow (RDMA-CM over TCP): one RTT of latency
    // charged up front, so everything from the gate below through the resync
    // runs without suspension — no pump or dispatcher can interleave.
    co_await sim::Delay(sim, config.ctrl_rtt);
    // Quiesce and membership gates: never resync rings under a pump or
    // dispatcher mid-pass, and never handshake while either end is outside
    // the membership view (a rejoining node passes once Join() lands).
    if (!cp.IsMember(conn.env->node) || !cp.IsMember(conn.server_node) ||
        victim->pump_running || victim->mem_pump_running ||
        victim->in_dispatch) {
      victim->reconnecting = false;
      backoff = std::min<Nanos>(backoff * 2, base_backoff * 256);
      continue;
    }

    // Fresh client QP on the shared CQs; the dead one is abandoned in place
    // (its qpn is never reused, so stale flushes are filtered by qpn).
    verbs::Qp* fresh = conn.env->device().CreateQp(
        verbs::QpType::kRc, conn.env->send_cq, conn.env->recv_cq);
    ctrl::wire::ReconnectRequest req;
    req.client_node = conn.env->node;
    req.conn_id = conn.conn_id;
    req.lane_index = victim->index;
    req.lane.qpn = fresh->qpn();
    // Rings and rkeys are unchanged — the server kept its copies from the
    // connect handshake; re-advertised here for the fuzzers' benefit only.
    req.lane.resp_ring_addr = victim->resp_ring_addr;
    req.lane.ctrl_slot_addr = victim->ctrl_slot_addr;

    uint8_t msg[ctrl::wire::kMaxMessageBytes];
    uint8_t resp[ctrl::wire::kMaxMessageBytes];
    const uint32_t msg_len = ctrl::wire::EncodeMessage(
        msg, sizeof(msg), ctrl::wire::MsgType::kReconnectRequest,
        cp.NextNonce(), &req, sizeof(req));
    const uint32_t resp_len =
        cp.Call(conn.server_node, msg, msg_len, resp, sizeof(resp));

    ctrl::wire::MsgHeader resp_header;
    ctrl::wire::ReconnectAccept accept;
    if (resp_len == 0 ||
        !ctrl::wire::DecodeHeader(resp, resp_len, &resp_header) ||
        !ctrl::wire::DecodeReconnectAccept(resp_header, resp, &accept)) {
      // Rejected (busy, membership, malformed): retry after backoff. The
      // orphaned QP is abandoned; QPs are simulation-cheap and never reused.
      victim->reconnecting = false;
      backoff = std::min<Nanos>(backoff * 2, base_backoff * 256);
      continue;
    }

    // Client-side resync, mirroring the server's handler before any sim
    // event can run: fresh response ring/consumer, request sequence state
    // from zero, credits and cumulative-grant resync from the accept.
    fabric::MemorySpace& cmem = conn.env->mem();
    const uint32_t ring_bytes = victim->req_producer.size();
    std::memset(cmem.At(victim->resp_ring_addr), 0, ring_bytes);
    victim->resp_consumer = std::make_unique<RingConsumer>(
        cmem.At(victim->resp_ring_addr), ring_bytes);
    victim->req_producer = RingProducer(ring_bytes);
    victim->qp = fresh;
    victim->failed = false;
    victim->renew_in_flight = false;
    victim->starved_passes = 0;
    victim->resp_bytes_since_send = 0;
    WireClientLane(*conn.env, *victim, conn.server_node, accept.lane,
                   accept.grant_cumulative);
    victim->reconnecting = false;
    victim->reconnects += 1;
    conn.client->stats.lane_reconnects += 1;
    victim->send_ready.NotifyAll();
    // Un-acked RPCs accounted to this lane retransmit at the watchdog's next
    // tick instead of waiting out their full deadlines: this is how batches
    // lost with the dead QP are replayed onto the revived lane.
    ExpireLaneDeadlines(conn, victim->index);
    // Send the evacuated threads home. Without this the scheduler's
    // stability check keeps the migrated threads where the quarantine pushed
    // them (loads stay within its 2x tolerance) and the revived lane idles
    // forever, pinning steady-state throughput at the one-lane-short level.
    // Only the evacuees move: the surviving lanes' thread sets — and the
    // phase-aligned coalescing they carry — stay untouched.
    for (uint32_t tid : victim->evacuated_tids) {
      if (tid < conn.desired_lane.size()) {
        conn.desired_lane[tid] = victim->index;
      }
    }
    victim->evacuated_tids.clear();
    backoff = base_backoff;
  }
}

sim::Proc ElasticScaler(ClientConnState& conn) {
  const FlockConfig& config = *conn.env->config;
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(*conn.env->cluster);
  sim::Simulator& sim = conn.env->sim();
  std::vector<uint32_t> degrees;
  for (;;) {
    co_await sim::Delay(sim, config.elastic_interval);
    if (conn.closed) {
      co_return;  // CloseConnection: stop ticking for a dead handle
    }
    if (!cp.IsMember(conn.env->node) || !cp.IsMember(conn.server_node)) {
      continue;
    }
    degrees.clear();
    uint32_t usable = 0;
    uint32_t active_count = 0;
    for (const auto& lane : conn.lanes) {
      if (lane->failed || lane->retired) {
        continue;
      }
      ++usable;
      if (lane->active) {
        ++active_count;
        degrees.push_back(lane->coalesce_degree.Median(0));
      }
    }
    if (degrees.empty()) {
      continue;
    }
    std::sort(degrees.begin(), degrees.end());
    const uint32_t median = degrees[degrees.size() / 2];

    if (median >= config.elastic_grow_degree &&
        conn.lanes.size() < config.max_lanes_per_connection &&
        conn.lanes.size() < ctrl::wire::kMaxLanesPerMsg) {
      // Sustained high coalescing: threads queue more deeply than the
      // combining bound intends — add a lane (§5.2 signal, §10 mechanism).
      const uint32_t index = static_cast<uint32_t>(conn.lanes.size());
      ctrl::wire::AddLaneRequest req;
      req.client_node = conn.env->node;
      req.conn_id = conn.conn_id;
      req.lane_index = index;
      req.ring_bytes = config.ring_bytes;
      auto lane = BuildClientLane(*conn.env, conn, index, &req.lane);

      uint8_t msg[ctrl::wire::kMaxMessageBytes];
      uint8_t resp[ctrl::wire::kMaxMessageBytes];
      const uint32_t msg_len = ctrl::wire::EncodeMessage(
          msg, sizeof(msg), ctrl::wire::MsgType::kAddLaneRequest,
          cp.NextNonce(), &req, sizeof(req));
      co_await sim::Delay(sim, config.ctrl_rtt);
      const uint32_t resp_len =
          cp.Call(conn.server_node, msg, msg_len, resp, sizeof(resp));
      ctrl::wire::MsgHeader resp_header;
      ctrl::wire::AddLaneAccept accept;
      if (resp_len == 0 ||
          !ctrl::wire::DecodeHeader(resp, resp_len, &resp_header) ||
          !ctrl::wire::DecodeAddLaneAccept(resp_header, resp, &accept)) {
        continue;  // rejected: the orphaned client half is abandoned
      }
      WireClientLane(*conn.env, *lane, conn.server_node, accept.lane,
                     /*grant_cumulative=*/0);
      conn.lanes.push_back(std::move(lane));
      conn.client->stats.lanes_added += 1;
    } else if (median <= config.elastic_shrink_degree && active_count > 1 &&
               usable > config.min_lanes) {
      // Requests rarely coalesce: the handle holds more QPs than its load
      // needs — retire the highest-index active lane.
      ClientLane* target = nullptr;
      for (auto it = conn.lanes.rbegin(); it != conn.lanes.rend(); ++it) {
        ClientLane& l = **it;
        if (!l.failed && !l.retired && l.active) {
          target = &l;
          break;
        }
      }
      if (target == nullptr) {
        continue;
      }
      ctrl::wire::RetireLaneRequest req;
      req.client_node = conn.env->node;
      req.conn_id = conn.conn_id;
      req.lane_index = target->index;

      uint8_t msg[ctrl::wire::kMaxMessageBytes];
      uint8_t resp[ctrl::wire::kMaxMessageBytes];
      const uint32_t msg_len = ctrl::wire::EncodeMessage(
          msg, sizeof(msg), ctrl::wire::MsgType::kRetireLaneRequest,
          cp.NextNonce(), &req, sizeof(req));
      co_await sim::Delay(sim, config.ctrl_rtt);
      const uint32_t resp_len =
          cp.Call(conn.server_node, msg, msg_len, resp, sizeof(resp));
      ctrl::wire::MsgHeader resp_header;
      ctrl::wire::RetireLaneAccept accept;
      if (resp_len == 0 ||
          !ctrl::wire::DecodeHeader(resp, resp_len, &resp_header) ||
          !ctrl::wire::DecodeRetireLaneAccept(resp_header, resp, &accept)) {
        continue;  // rejected (e.g. it is the last active lane)
      }
      // The server acked: the lane is retired on its side no matter what
      // happened to ours while the RTT elapsed, so retire here too — retired
      // wins over failed (the reconnect daemon skips retired lanes).
      target->retired = true;
      target->active = false;
      target->credits = 0;
      // Wake the pump so anything queued migrates to a surviving lane; the
      // thread scheduler moves the threads themselves next interval.
      target->send_ready.NotifyAll();
      conn.client->stats.lanes_retired += 1;
    }
  }
}

// ---------------------------------------------------------------------------
// Connection-storm path: deferred handshake, lazy lanes, close (DESIGN.md §13)
// ---------------------------------------------------------------------------

bool ConnectHandshake(ClientConnState& conn, uint32_t* server_fresh,
                      uint32_t* server_recycled,
                      ctrl::wire::RejectReason* reject_reason) {
  NodeEnv& env = *conn.env;
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(*env.cluster);
  const uint32_t num_lanes = static_cast<uint32_t>(conn.lanes.size());

  ctrl::wire::ConnectRequest req;
  req.client_node = env.node;
  req.num_lanes = num_lanes;
  req.ring_bytes = env.config->ring_bytes;
  req.tenant_id = conn.tenant_id;
  for (uint32_t i = 0; i < num_lanes; ++i) {
    const ClientLane& lane = *conn.lanes[i];
    req.lanes[i].qpn = lane.qp->qpn();
    req.lanes[i].resp_ring_addr = lane.resp_ring_addr;
    req.lanes[i].resp_ring_rkey = lane.resp_ring_rkey;
    req.lanes[i].ctrl_slot_addr = lane.ctrl_slot_addr;
    req.lanes[i].ctrl_slot_rkey = lane.ctrl_slot_rkey;
  }

  uint8_t msg[ctrl::wire::kMaxMessageBytes];
  uint8_t resp[ctrl::wire::kMaxMessageBytes];
  const uint32_t msg_len = ctrl::wire::EncodeMessage(
      msg, sizeof(msg), ctrl::wire::MsgType::kConnectRequest, cp.NextNonce(),
      &req, ctrl::wire::ConnectRequestBytes(num_lanes));
  const uint32_t resp_len =
      cp.Call(conn.server_node, msg, msg_len, resp, sizeof(resp));

  ctrl::wire::MsgHeader resp_header;
  ctrl::wire::ConnectAccept accept;
  if (resp_len == 0 ||
      !ctrl::wire::DecodeHeader(resp, resp_len, &resp_header) ||
      !ctrl::wire::DecodeConnectAccept(resp_header, resp, &accept) ||
      accept.num_lanes == 0 || accept.num_lanes > num_lanes) {
    // Surface the server's reject reason (if the response decodes as one) so
    // callers can tell a tenancy admission reject from a hard failure.
    if (reject_reason != nullptr) {
      *reject_reason = ctrl::wire::RejectReason::kUnknown;
      ctrl::wire::Reject rej;
      if (resp_len != 0 &&
          ctrl::wire::DecodeHeader(resp, resp_len, &resp_header) &&
          ctrl::wire::DecodeReject(resp_header, resp, &rej)) {
        *reject_reason = static_cast<ctrl::wire::RejectReason>(rej.reason);
      }
    }
    return false;
  }
  conn.conn_id = accept.conn_id;
  if (accept.num_lanes < num_lanes) {
    // Degraded accept (tenant near its lane ceiling): drop the surplus client
    // halves. They were never wired — no peer, no posted receives, nothing in
    // flight — so under qp_recycling their shells go straight back to the
    // pool; otherwise the fresh QPs are abandoned in place.
    for (uint32_t i = accept.num_lanes; i < num_lanes; ++i) {
      ClientLane& extra = *conn.lanes[i];
      if (env.config->qp_recycling) {
        env.device().ResetQp(*extra.qp);
        ClientLaneShell shell;
        shell.qp = extra.qp;
        shell.ring_bytes = extra.req_producer.size();
        shell.staging_addr = extra.staging_addr;
        shell.head_src_addr = extra.head_src_addr;
        shell.ctrl_slot_addr = extra.ctrl_slot_addr;
        shell.resp_ring_addr = extra.resp_ring_addr;
        shell.resp_ring_rkey = extra.resp_ring_rkey;
        shell.ctrl_slot_rkey = extra.ctrl_slot_rkey;
        conn.client->lane_pool.push_back(shell);
        extra.qp = nullptr;
      }
    }
    conn.lanes.resize(accept.num_lanes);
    conn.target_lanes = accept.num_lanes;
  }
  for (uint32_t i = 0; i < accept.num_lanes; ++i) {
    WireClientLane(env, *conn.lanes[i], conn.server_node, accept.lanes[i],
                   /*grant_cumulative=*/0);
  }
  if (server_fresh != nullptr) {
    *server_fresh = accept.fresh_qps;
  }
  if (server_recycled != nullptr) {
    *server_recycled = accept.recycled_qps;
  }
  return true;
}

sim::Co<void> EnsureLaneSetup(ClientConnState& conn, FlockThread& thread) {
  NodeEnv& env = *conn.env;
  const FlockConfig& config = *env.config;
  const sim::CostModel& cost = env.cost();
  sim::Simulator& sim = env.sim();
  ctrl::ControlPlane& cp = ctrl::ControlPlane::For(*env.cluster);

  // Count distinct threads touching this handle: the lazy-growth target is
  // min(target_lanes, threads seen so far) — one lane per thread until the
  // handle reaches the lane count an eager connect would have built.
  const size_t tid = thread.id();
  if (conn.thread_seen.size() <= tid) {
    conn.thread_seen.resize(tid + 1, 0);
  }
  if (conn.thread_seen[tid] == 0) {
    conn.thread_seen[tid] = 1;
    conn.threads_seen += 1;
  }

  // One setup exchange at a time per connection; later arrivals park here and
  // re-check (the active setup may already have covered their thread).
  while (conn.setup_in_progress) {
    co_await conn.setup_cond->Wait();
  }
  if (conn.closed) {
    co_return;
  }
  const uint32_t want =
      std::min(conn.target_lanes, std::max<uint32_t>(1, conn.threads_seen));
  if (!conn.handshake_pending && conn.lanes.size() >= want) {
    co_return;
  }
  conn.setup_in_progress = true;

  if (conn.handshake_pending) {
    // The piggybacked ConnectRequest rides now, ahead of the first staged
    // RPC: one out-of-band RTT plus the server-side QP bring-up, charged by
    // provenance (a recycled lane costs qp_reset, not qp_create).
    co_await sim::Delay(sim, config.ctrl_rtt);
    uint32_t fresh = 0;
    uint32_t recycled = 0;
    ctrl::wire::RejectReason reason = ctrl::wire::RejectReason::kUnknown;
    const bool ok = ConnectHandshake(conn, &fresh, &recycled, &reason);
    if (!ok) {
      // With tenancy on, admission control may legitimately refuse the
      // deferred handshake; fail the handle gracefully — close it so StageRpc
      // fails queued RPCs instead of parking them on lanes that will never be
      // granted credits. Any other rejection is still a caller bug.
      FLOCK_CHECK(config.tenancy)
          << "piggybacked connect: node " << conn.server_node
          << " rejected the deferred handshake (is StartServer running "
             "there?)";
      conn.handshake_pending = false;
      conn.admission_rejected = true;
      conn.setup_in_progress = false;
      CloseClientConn(conn);
      co_return;
    }
    co_await sim::Delay(
        sim, fresh * cost.qp_create + recycled * cost.qp_reset);
    conn.handshake_pending = false;
  }

  // Lazy growth: materialize one deferred lane per additional distinct
  // thread via the AddLane handshake, up to the connect-time target.
  while (!conn.closed) {
    const uint32_t goal =
        std::min(conn.target_lanes, std::max<uint32_t>(1, conn.threads_seen));
    if (conn.lanes.size() >= goal) {
      break;
    }
    const uint32_t index = static_cast<uint32_t>(conn.lanes.size());
    ctrl::wire::AddLaneRequest req;
    req.client_node = env.node;
    req.conn_id = conn.conn_id;
    req.lane_index = index;
    req.ring_bytes = config.ring_bytes;
    const uint64_t created_before = conn.client->stats.qps_created;
    auto lane = BuildClientLane(env, conn, index, &req.lane);
    co_await sim::Delay(sim, conn.client->stats.qps_created != created_before
                                 ? cost.qp_create
                                 : cost.qp_reset);

    uint8_t msg[ctrl::wire::kMaxMessageBytes];
    uint8_t resp[ctrl::wire::kMaxMessageBytes];
    const uint32_t msg_len = ctrl::wire::EncodeMessage(
        msg, sizeof(msg), ctrl::wire::MsgType::kAddLaneRequest, cp.NextNonce(),
        &req, sizeof(req));
    co_await sim::Delay(sim, config.ctrl_rtt);
    const uint32_t resp_len =
        cp.Call(conn.server_node, msg, msg_len, resp, sizeof(resp));
    ctrl::wire::MsgHeader resp_header;
    ctrl::wire::AddLaneAccept accept;
    if (resp_len == 0 ||
        !ctrl::wire::DecodeHeader(resp, resp_len, &resp_header) ||
        !ctrl::wire::DecodeAddLaneAccept(resp_header, resp, &accept)) {
      break;  // rejected: the orphaned client half is abandoned; stop growing
    }
    co_await sim::Delay(sim,
                        accept.recycled != 0 ? cost.qp_reset : cost.qp_create);
    if (conn.closed) {
      break;  // closed under the handshake: the wired lane is abandoned
    }
    WireClientLane(env, *lane, conn.server_node, accept.lane,
                   /*grant_cumulative=*/0);
    conn.lanes.push_back(std::move(lane));
    conn.client->stats.lanes_added += 1;
  }

  conn.setup_in_progress = false;
  conn.setup_cond->NotifyAll();
}

void CloseClientConn(ClientConnState& conn) {
  NodeEnv& env = *conn.env;
  const bool recycle = env.config->qp_recycling;
  conn.closed = true;

  for (auto& lane_ptr : conn.lanes) {
    ClientLane& lane = *lane_ptr;
    lane.retired = true;
    lane.active = false;
    lane.credits = 0;
    // Harvestable only when nothing still references the transport half: no
    // pump mid-batch, no dispatcher mid-probe, nothing combined or in flight.
    // (Callers quiesce their threads before closing; a non-quiescent lane is
    // abandoned in place exactly like a quarantined one.)
    const bool quiescent = !lane.pump_running && !lane.mem_pump_running &&
                           !lane.in_dispatch && lane.inflight == 0 &&
                           lane.combine_head == nullptr &&
                           lane.memop_head == nullptr && !lane.failed &&
                           lane.qp != nullptr;
    if (recycle && quiescent) {
      env.device().ResetQp(*lane.qp);
      ClientLaneShell shell;
      shell.qp = lane.qp;
      shell.ring_bytes = lane.req_producer.size();
      shell.staging_addr = lane.staging_addr;
      shell.head_src_addr = lane.head_src_addr;
      shell.ctrl_slot_addr = lane.ctrl_slot_addr;
      shell.resp_ring_addr = lane.resp_ring_addr;
      shell.resp_ring_rkey = lane.resp_ring_rkey;
      shell.ctrl_slot_rkey = lane.ctrl_slot_rkey;
      conn.client->lane_pool.push_back(shell);
      lane.qp = nullptr;
    } else if (lane.qp != nullptr && !lane.failed) {
      // Not recyclable: error the QP so the server side sees the departure
      // (kRemoteInvalidQp on its next write) instead of a silent ghost.
      env.device().ErrorQp(*lane.qp);
    }
    lane.send_ready.NotifyAll();
  }

  // The client role never polls the recv CQ (client receives only ever
  // complete as teardown flushes), so each close would otherwise leak its
  // ~16 flushed receives per lane into the CQ ring forever. Drop this node's
  // client-recv flushes; anything else (a dual-role node's server-side
  // completions) is re-pushed in its original order.
  verbs::Cq& rcq = *env.recv_cq;
  const size_t depth = rcq.depth();
  verbs::Completion wc;
  for (size_t i = 0; i < depth; ++i) {
    if (!rcq.Poll(&wc)) {
      break;
    }
    if (WrIdTag(wc.wr_id) != WrTag::kRecv) {
      rcq.Push(wc);
    }
  }

  if (conn.setup_cond != nullptr) {
    conn.setup_cond->NotifyAll();
  }
  if (conn.reconnect_cond != nullptr) {
    conn.reconnect_cond->NotifyAll();
  }
}

}  // namespace internal
}  // namespace flock
