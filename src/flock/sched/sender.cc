#include "src/flock/sched/sender.h"

#include <algorithm>

#include "src/ctrl/control_plane.h"
#include "src/flock/segment.h"

namespace flock {
namespace internal {

void SortByAlgorithm1(std::vector<ThreadSchedStat>& stats) {
  std::sort(stats.begin(), stats.end(),
            [](const ThreadSchedStat& a, const ThreadSchedStat& b) {
              if (a.median_size != b.median_size) {
                return a.median_size < b.median_size;
              }
              if ((a.reqs >> 6) != (b.reqs >> 6)) {
                return (a.reqs >> 6) < (b.reqs >> 6);
              }
              return a.tid < b.tid;
            });
}

void PackByByteQuota(const std::vector<ThreadSchedStat>& sorted,
                     const std::vector<uint32_t>& active, uint64_t total_bytes,
                     std::vector<uint32_t>* desired_lane, bool segregate) {
  const uint64_t quota =
      std::max<uint64_t>(1, total_bytes / active.size());  // Algorithm 1 line 1
  size_t qp_index = 0;
  uint64_t qp_load = 0;
  for (const ThreadSchedStat& s : sorted) {
    if (segregate && qp_load > 0 && qp_load + s.bytes > quota &&
        qp_index + 1 < active.size()) {
      qp_index += 1;
      qp_load = 0;
    }
    (*desired_lane)[s.tid] = active[std::min(qp_index, active.size() - 1)];
    qp_load += s.bytes;
    if (qp_load >= quota) {
      qp_index += 1;
      qp_load = 0;
    }
  }
  if (!segregate || sorted.empty() || active.size() < 2) {
    return;
  }
  // Bimodal loads strand lanes: each segmented thread overflows the byte
  // quota and takes a lane of its own, while the entire small class fits
  // inside one quota and collapses onto a single lane. A lane is the unit of
  // client pumping and server dispatch, so the stranded lanes are exactly
  // the parallelism the latency-sensitive class just lost. Hand them back:
  // split the most populous contiguous run in half onto each unused lane
  // (halving in sorted order keeps size classes together). Alloc-free —
  // this can run on every scheduler tick.
  size_t used = 1;
  for (size_t i = 1; i < sorted.size(); ++i) {
    if ((*desired_lane)[sorted[i].tid] != (*desired_lane)[sorted[i - 1].tid]) {
      used += 1;
    }
  }
  while (used < active.size()) {
    size_t best_begin = 0;
    size_t best_len = 0;
    size_t begin = 0;
    for (size_t i = 1; i <= sorted.size(); ++i) {
      if (i == sorted.size() || (*desired_lane)[sorted[i].tid] !=
                                    (*desired_lane)[sorted[begin].tid]) {
        if (i - begin > best_len) {
          best_len = i - begin;
          best_begin = begin;
        }
        begin = i;
      }
    }
    if (best_len < 2) {
      break;  // every run is a single thread; nothing left to spread
    }
    const uint32_t spare = active[used];
    for (size_t i = best_begin + best_len / 2; i < best_begin + best_len; ++i) {
      (*desired_lane)[sorted[i].tid] = spare;
    }
    used += 1;
  }
}

bool AssignmentHealthy(const std::vector<ThreadSchedStat>& stats,
                       const std::vector<uint32_t>& desired_lane,
                       const std::vector<uint8_t>& lane_active,
                       size_t num_active, uint64_t total_bytes,
                       LaneLoadScratch* scratch) {
  bool healthy = true;
  // Lane indices are small and dense, so the per-lane aggregates live in
  // flat scratch vectors (min == UINT32_MAX marks "no sized thread here").
  std::vector<uint64_t>& lane_bytes = scratch->bytes;
  std::vector<uint32_t>& lane_min_size = scratch->min_size;
  std::vector<uint32_t>& lane_max_size = scratch->max_size;
  lane_bytes.assign(lane_active.size(), 0);
  lane_min_size.assign(lane_active.size(), UINT32_MAX);
  lane_max_size.assign(lane_active.size(), 0);
  for (const ThreadSchedStat& s : stats) {
    const uint32_t lane = desired_lane[s.tid];
    if (lane == UINT32_MAX || !lane_active[lane]) {
      healthy = false;
      break;
    }
    lane_bytes[lane] += s.bytes;
    if (s.bytes > 0) {
      lane_min_size[lane] = std::min(lane_min_size[lane], s.median_size);
      lane_max_size[lane] = std::max(lane_max_size[lane], s.median_size);
    }
  }
  if (healthy && total_bytes > 0) {
    const uint64_t mean = total_bytes / num_active;
    for (size_t lane = 0; lane < lane_active.size(); ++lane) {
      if (lane_bytes[lane] > 2 * mean + 1) {
        healthy = false;  // load imbalance
      }
      // Head-of-line risk: a lane serving both small and large payloads.
      if (lane_min_size[lane] != UINT32_MAX &&
          lane_max_size[lane] > 4 * std::max(lane_min_size[lane], 64u)) {
        healthy = false;
      }
    }
  }
  return healthy;
}

void SenderSched::Reschedule(ClientConnState& conn,
                             std::vector<std::unique_ptr<FlockThread>>& threads,
                             const FlockConfig& config,
                             uint64_t tenant_bytes_cap) {
  // Active lane set.
  std::vector<uint32_t>& active = active_scratch;
  active.clear();
  for (uint32_t i = 0; i < conn.lanes.size(); ++i) {
    if (conn.lanes[i]->active) {
      active.push_back(i);
    }
  }
  if (active.empty() || threads.empty()) {
    return;
  }
  conn.desired_lane.resize(threads.size(), UINT32_MAX);

  if (!config.sender_thread_scheduling) {
    // Ablation baseline: spread threads round-robin over active lanes.
    for (size_t t = 0; t < threads.size(); ++t) {
      conn.desired_lane[t] = active[t % active.size()];
    }
    return;
  }

  // Algorithm 1 inputs: one stat row per thread. Delta() consumes the
  // interval counters, so this runs exactly once per tick.
  std::vector<ThreadSchedStat>& stats = stats_scratch;
  stats.clear();
  uint64_t total_bytes = 0;
  for (size_t t = 0; t < threads.size(); ++t) {
    FlockThread& thread = *threads[t];
    ThreadSchedStat s;
    s.tid = t;
    s.median_size = thread.req_size_median.Median(0);
    if (config.segment_threshold > 0) {
      // Segmented extents hit the wire as chunk-sized messages, so Algorithm
      // 1's size classes (and the head-of-line heuristic) compare the unit
      // that actually occupies a lane, not the logical payload.
      s.median_size = std::min(s.median_size, SegmentChunkBytes(config));
    }
    s.reqs = thread.reqs_sent.Delta();
    s.bytes = thread.bytes_sent.Delta();
    total_bytes += s.bytes;
    stats.push_back(s);
  }
  // Quota-bound tenants pack by their remaining window allowance, so the
  // per-lane byte quota mirrors admissible load, not offered load.
  total_bytes = std::min(total_bytes, tenant_bytes_cap);

  lane_active_scratch.assign(conn.lanes.size(), 0);
  for (uint32_t i : active) {
    lane_active_scratch[i] = 1;
  }
  if (conn.desired_lane.size() >= threads.size() &&
      AssignmentHealthy(stats, conn.desired_lane, lane_active_scratch,
                        active.size(), total_bytes, &load_scratch)) {
    return;
  }

  SortByAlgorithm1(stats);
  PackByByteQuota(stats, active, total_bytes, &conn.desired_lane,
                  /*segregate=*/config.segment_threshold > 0);
}

sim::Proc SenderSched::Run(NodeEnv& env, ClientState& client) {
  // Tenancy (DESIGN.md §15): resolved once; nullptr with tenancy off.
  tenant::TenantRegistry* tenants =
      env.config->tenancy ? &ctrl::ControlPlane::For(*env.cluster).tenants()
                          : nullptr;
  for (;;) {
    co_await sim::Delay(env.sim(), env.config->thread_sched_interval);
    for (ClientConnState* conn : client.conns) {
      uint64_t cap = UINT64_MAX;
      if (tenants != nullptr && conn->tenant_id != tenant::kDefaultTenant) {
        cap = tenants->SendBudgetRemaining(conn->tenant_id);
      }
      Reschedule(*conn, client.threads, *env.config, cap);
    }
  }
}

}  // namespace internal
}  // namespace flock
