#include "src/flock/sched/receiver.h"

#include <algorithm>
#include <cstring>

#include "src/ctrl/control_plane.h"

namespace flock {
namespace internal {

void WriteCtrlSlot(NodeEnv& env, ServerLane& lane, ServerStats& stats,
                   bool signaled) {
  CtrlSlot slot;
  slot.grant_cumulative = lane.grant_cumulative;
  slot.active = lane.active ? 1 : 0;
  if (env.config->segment_threshold > 0 && lane.req_consumer != nullptr) {
    // Segmentation (DESIGN.md §16): ride the request-ring head report in the
    // pad bytes so a pure-chunk upload (no response messages to piggyback
    // on) still frees the client's producer.
    PackCtrlSlotHead(&slot, lane.req_consumer->consumed_report());
    lane.seg_bytes_since_report = 0;
  }
  std::memcpy(lane.ctrl_src_ptr, &slot, sizeof(slot));
  verbs::SendWr wr;
  wr.wr_id = TagWrId(WrTag::kServerCtrl, &lane);
  wr.opcode = verbs::Opcode::kWrite;
  wr.local_addr = lane.ctrl_src_addr;
  wr.length = sizeof(slot);
  wr.remote_addr = lane.ctrl_slot_remote_addr;
  wr.rkey = lane.ctrl_slot_rkey;
  wr.signaled = signaled;
  if (env.transport->Post(*lane.qp, wr) != verbs::WcStatus::kSuccess) {
    QuarantineServerLane(lane, stats);
  }
}

void MaybeRenewCredits(const FlockConfig& config, ClientLane& lane,
                       verbs::SendWr* wrs, size_t* nwrs) {
  if (!lane.active || lane.renew_in_flight ||
      lane.credits > config.credit_renew_threshold) {
    return;
  }
  // write-with-imm carrying {lane, median coalescing degree since last renew}
  // (§5.1 + §7). Zero-length write: only the immediate travels.
  verbs::SendWr wr;
  wr.wr_id = TagWrId(WrTag::kCtrl, &lane);
  wr.opcode = verbs::Opcode::kWriteImm;
  wr.local_addr = 0;
  wr.length = 0;
  wr.remote_addr = lane.remote_ring_addr;
  wr.rkey = lane.remote_ring_rkey;
  wr.signaled = false;
  const uint32_t degree =
      std::min<uint32_t>(lane.coalesce_degree.Median(1), 0xffff);
  wr.imm = PackCtrl(CtrlType::kRenewRequest, lane.index,
                    std::max<uint32_t>(degree, 1));
  wrs[(*nwrs)++] = wr;
  lane.renew_in_flight = true;
}

void ApplyCtrlSlot(NodeEnv& env, ClientLane& lane) {
  if (lane.failed || lane.retired) {
    return;  // quarantined/retired: stale grants must not resurrect it
  }
  // Polled every dispatcher pass: read through the cached pointer rather than
  // the bounds-checked chunked MemorySpace path.
  CtrlSlot slot;
  std::memcpy(&slot, lane.ctrl_slot_ptr, sizeof(slot));
  bool changed = false;
  const uint32_t delta = slot.grant_cumulative - lane.grants_seen;
  if (delta != 0 && delta < (1u << 24)) {  // ignore torn/stale nonsense
    lane.credits += delta;
    lane.grants_seen = slot.grant_cumulative;
    lane.renew_in_flight = false;
    changed = true;
  }
  const bool active = slot.active != 0;
  if (active != lane.active) {
    lane.active = active;
    lane.renew_in_flight = false;
    changed = true;
  }
  if (env.config->segment_threshold > 0) {
    // Expand the 24-bit request-ring head report (PackCtrlSlotHead) against
    // the last full cumulative this lane saw. ring_bytes < 2^24 is enforced
    // at construction, so a plausible forward delta is unambiguous; anything
    // larger is a stale or torn report and is ignored.
    const uint32_t head24 = CtrlSlotHead24(slot);
    const uint32_t delta =
        (head24 - (lane.seg_req_consumed & 0xFFFFFFu)) & 0xFFFFFFu;
    if (delta != 0 && delta <= env.config->ring_bytes) {
      lane.seg_req_consumed += delta;
      lane.req_producer.OnHeadUpdate(lane.seg_req_consumed);
      changed = true;
    }
  }
  if (changed) {
    lane.send_ready.NotifyAll();  // wake the pump (or let it migrate work)
  }
  // Lost-control-message recovery (armed runs only — plain bool check, no
  // events otherwise): renewal imms and grant-slot writes are unacked, so an
  // injected drop of either starves the lane with renew_in_flight latched.
  // A lane stuck with queued work and no credits for many passes re-requests
  // renewal; cumulative grants make duplicates harmless.
  if (env.cluster->fault().armed()) {
    if (lane.active && lane.credits == 0 && lane.combine_head != nullptr) {
      if (++lane.starved_passes >= 256) {
        lane.starved_passes = 0;
        verbs::SendWr wr;
        wr.wr_id = TagWrId(WrTag::kCtrl, &lane);
        wr.opcode = verbs::Opcode::kWriteImm;
        wr.local_addr = 0;
        wr.length = 0;
        wr.remote_addr = lane.remote_ring_addr;
        wr.rkey = lane.remote_ring_rkey;
        wr.signaled = false;
        wr.imm = PackCtrl(CtrlType::kRenewRequest, lane.index, 1);
        lane.renew_in_flight = true;
        if (env.transport->Post(*lane.qp, wr) != verbs::WcStatus::kSuccess) {
          QuarantineLane(*lane.conn, lane);
        }
      }
    } else {
      lane.starved_passes = 0;
    }
  }
}

sim::Proc ReceiverSched::Run(NodeEnv& env, ServerState& server) {
  sim::Core& core = env.cpu().core(0);
  const sim::CostModel& cost = env.cost();
  const FlockConfig& config = *env.config;
  // Tenancy (DESIGN.md §15): resolved once; nullptr with tenancy off, so the
  // default scheduler never touches the registry.
  tenant::TenantRegistry* tenants =
      config.tenancy ? &ctrl::ControlPlane::For(*env.cluster).tenants()
                     : nullptr;
  Nanos next_redistribution = env.sim().Now() + config.qp_sched_interval;

  verbs::Completion wcs[kCqPollBatch];
  for (;;) {
    Nanos work = 2 * cost.cpu_cq_poll_empty;
    // Credit-renew requests arrive as write-with-imm completions on the RCQ
    // (§7: polling the RCQ avoids synchronizing with the request dispatchers).
    // Vectorized drain: one poll call pulls a whole batch of CQEs.
    for (size_t nc;
         (nc = env.transport->PollBatch(*env.recv_cq, wcs, kCqPollBatch)) > 0;) {
      for (size_t ci = 0; ci < nc; ++ci) {
        const verbs::Completion& wc = wcs[ci];
        work += cost.cpu_cqe_handle + cost.cpu_post_recv;
        if (WrIdTag(wc.wr_id) != WrTag::kServerRecv) {
          // A dual-role node's client-side receives land here too; only a QP
          // flush ever completes them (the server never sends imms clientward).
          continue;
        }
        auto* lane = WrIdPtr<ServerLane>(wc.wr_id);
        if (wc.status != verbs::WcStatus::kSuccess) {
          // Flushed. A flush of the lane's *current* QP condemns it; a stale
          // flush from a QP that a reconnect already replaced does not. A
          // graveyard lane (qp harvested into the recycling pool) is past
          // caring either way — quarantining it would book a spurious lane
          // failure for a teardown that already completed.
          if (lane->qp == nullptr) {
            continue;
          }
          if (wc.qpn == 0 || wc.qpn == lane->qp->qpn()) {
            QuarantineServerLane(*lane, server.stats);
          }
          continue;
        }
        CtrlType type;
        uint32_t lane_index, value;
        UnpackCtrl(wc.imm, &type, &lane_index, &value);
        FLOCK_CHECK(type == CtrlType::kRenewRequest);
        env.transport->PostRecv(*lane->qp, verbs::RecvWr{wc.wr_id, 0, 0});
        server.stats.credit_renewals += 1;
        lane->utilization += value;  // U_ij += reported median degree
        if (lane->active) {
          // Grant C more credits through the lane's control slot (§5.1).
          // Under tenancy the grant is clipped against the tenant's window
          // budget; the shortfall is remembered on the lane and paid out of
          // the next window by Redistribute, so cumulative grants never leak.
          uint32_t grant = config.credits;
          if (tenants != nullptr) {
            grant = tenants->ClipGrant(lane->tenant_id, grant);
            if (grant < config.credits) {
              lane->deferred_grant += config.credits - grant;
            }
          }
          if (grant > 0) {
            lane->grant_cumulative += grant;
            WriteCtrlSlot(env, *lane, server.stats);
            lane->credits_outstanding += grant;
            work += cost.cpu_wqe_prep + cost.cpu_mmio_doorbell;
          }
        }
        // Inactive lanes get no credits from the next interval on (§5.1).
      }
      if (nc < kCqPollBatch) {
        break;
      }
    }
    // Our own posted writes (signaled responses, control messages).
    for (size_t nc;
         (nc = env.transport->PollBatch(*env.send_cq, wcs, kCqPollBatch)) > 0;) {
      for (size_t ci = 0; ci < nc; ++ci) {
        const verbs::Completion& wc = wcs[ci];
        work += cost.cpu_cqe_handle;
        if (WrIdTag(wc.wr_id) == WrTag::kMemOp) {
          auto* op = WrIdPtr<PendingMemOp>(wc.wr_id);
          op->status = wc.status;
          op->done_event.Fire(env.sim());
        } else if (wc.status != verbs::WcStatus::kSuccess) {
          HandleSendError(wc, server.stats);
        }
      }
      if (nc < kCqPollBatch) {
        break;
      }
    }

    if (env.sim().Now() >= next_redistribution) {
      Redistribute(env, server);
      if (config.segment_threshold > 0) {
        // Reclaim orphaned partial extents (their lane died, or the train
        // migrated) so the bounded reassembly pool cannot fill with stuck
        // entries. Host-side bookkeeping only: no events, no posts.
        server.reassembly.Reclaim(env.sim().Now(), ReassemblyTimeout(config));
      }
      next_redistribution = env.sim().Now() + config.qp_sched_interval;
      work += static_cast<Nanos>(server.lanes.size()) * 20;
    }
    co_await core.Work(work);
  }
}

void ReceiverSched::Redistribute(NodeEnv& env, ServerState& server) {
  const FlockConfig& config = *env.config;
  server.stats.redistributions += 1;
  tenant::TenantRegistry* tenants =
      config.tenancy ? &ctrl::ControlPlane::For(*env.cluster).tenants()
                     : nullptr;
  if (tenants != nullptr) {
    // Roll the scheduling window: refill per-tenant credit budgets (scaled by
    // the throttle level) and step the throttle state machine. Idempotent per
    // instant, so several server runtimes ticking together roll it once.
    tenants->EndWindow(env.sim().Now());
    // Pay deferred grants out of the fresh window, walking senders and lanes
    // in index order so the payout is deterministic at any shard count.
    for (SenderState& sender : server.senders) {
      for (ServerLane* lane : sender.lanes) {
        if (lane->deferred_grant == 0 || lane->failed || lane->retired ||
            !lane->active) {
          continue;
        }
        const uint32_t pay =
            tenants->ClipGrant(lane->tenant_id, lane->deferred_grant);
        if (pay > 0) {
          lane->deferred_grant -= pay;
          lane->grant_cumulative += pay;
          lane->credits_outstanding += pay;
          WriteCtrlSlot(env, *lane, server.stats);
        }
      }
    }
  }
  // Weighted-fair AQP partition: a tenant's policy weight scales its senders'
  // utilization, so a weight-2 tenant gets twice the active-QP share of an
  // equally-busy weight-1 tenant. Weight 1 everywhere with tenancy off.
  auto sender_weight = [tenants](const SenderState& s) -> uint64_t {
    if (tenants == nullptr) {
      return 1;
    }
    const tenant::TenantPolicy* p = tenants->PolicyFor(s.tenant_id);
    return p != nullptr ? std::max<uint32_t>(p->weight, 1) : 1;
  };
  // Effective per-lane utilization: the reported coalescing degrees (the
  // paper's U_ij contention signal) plus the messages received this interval.
  // The message term keeps low-rate senders "functioning" even when no credit
  // renewal happened to land inside this scheduling window — with C=32 and
  // renewal at half, a lane renews only once per 16 messages, which can
  // starve the pure-renewal metric at modest rates and deactivate senders
  // that are in fact active.
  uint64_t total_utilization = 0;
  uint32_t dormant = 0;
  for (SenderState& sender : server.senders) {
    if (sender.lanes.empty()) {
      // Fully harvested by TearDownSenders (qp_recycling): the slot is only
      // a conn_id placeholder awaiting reuse. Without the skip, the
      // dead-recomputation below ("live == 0 && !lanes.empty()") would flip
      // it back to not-dead and re-admit it to the budget.
      continue;
    }
    sender.utilization = 0;
    bool any_failed = false;
    uint32_t live = 0;
    for (ServerLane* lane : sender.lanes) {
      if (lane->failed) {
        any_failed = true;
        continue;
      }
      if (lane->retired) {
        continue;  // holds no slot and is no evidence either way
      }
      ++live;
      lane->utilization += lane->messages_handled - lane->messages_at_last_sweep;
      sender.utilization += lane->utilization;
    }
    // Dead-sender reclamation: transport evidence (>= 1 failed lane) plus a
    // fully idle interval condemns the rest — the sender's QPs terminate at
    // one client node, and a node that stopped driving every one of its lanes
    // is gone, not slow. Releases the sender's share of MAX_AQP. A revive
    // grace window (set by the reconnect handler) exempts just-revived lanes:
    // they have zero utilization by construction and would otherwise be
    // re-condemned on the spot (the double-reclaim bug).
    if (sender.revive_grace > 0) {
      --sender.revive_grace;
    } else if (any_failed && live > 0 && sender.utilization == 0) {
      for (ServerLane* lane : sender.lanes) {
        if (!lane->failed && !lane->retired) {
          QuarantineServerLane(*lane, server.stats);
        }
      }
      live = 0;
    }
    const bool was_dead = sender.dead;
    sender.dead = live == 0 && !sender.lanes.empty();
    if (sender.dead) {
      sender.functioning = false;
      if (!was_dead) {
        server.stats.dead_senders += 1;
        // Release the tenant's admission accounting exactly once; the
        // tenant_charged latch also guards the TearDownSenders path, so a
        // later explicit teardown of this conn_id cannot double-release.
        if (tenants != nullptr && sender.tenant_charged) {
          tenants->ReleaseConnection(sender.tenant_id,
                                     sender.tenant_lanes_charged);
          sender.tenant_charged = false;
          sender.tenant_lanes_charged = 0;
        }
      }
      continue;  // no budget participation at all
    }
    total_utilization += sender.utilization * sender_weight(sender);
    dormant += sender.utilization == 0 ? 1 : 0;
  }
  // Dormant senders keep one QP each; the functioning senders share what is
  // left of MAX_AQP so the cap holds strictly.
  const uint32_t budget =
      config.max_active_qps > dormant ? config.max_active_qps - dormant : 1;

  for (SenderState& sender : server.senders) {
    if (sender.dead) {
      // Sweep bookkeeping only: no activation, no grants, nothing to decide.
      for (ServerLane* lane : sender.lanes) {
        lane->messages_at_last_sweep = lane->messages_handled;
        lane->utilization = 0;
      }
      sender.utilization = 0;
      continue;
    }
    uint32_t lane_count = 0;  // live (non-quarantined, non-retired) lanes only
    for (ServerLane* lane : sender.lanes) {
      lane_count += (lane->failed || lane->retired) ? 0 : 1;
    }
    if (lane_count == 0) {
      continue;
    }
    uint32_t target;
    if (sender.utilization == 0 || total_utilization == 0) {
      sender.functioning = false;  // dormant: keep one QP for the future
      target = 1;
    } else {
      sender.functioning = true;
      target = static_cast<uint32_t>(
          (static_cast<uint64_t>(budget) * sender.utilization *
           sender_weight(sender)) /
          total_utilization);
      target = std::max<uint32_t>(target, 1);
    }
    target = std::min(target, lane_count);

    // One-sided hysteresis: a -1 target wobble (utilization noise between
    // otherwise equal senders) is not worth churning the active set — every
    // flip forces the sender's threads to re-shuffle across lanes, breaking
    // the combining lockstep among them. Growth is always allowed (an
    // under-provisioned sender benefits immediately).
    uint32_t currently_active = 0;
    for (ServerLane* lane : sender.lanes) {
      currently_active += lane->active ? 1 : 0;
    }
    if (sender.functioning && currently_active >= 1 &&
        target + 1 == currently_active) {
      target = currently_active;
    }

    // Keep the most utilized lanes active; prefer the currently-active ones
    // on near-ties so the set membership is stable interval to interval.
    std::vector<ServerLane*>& order = order_scratch;
    order.assign(sender.lanes.begin(), sender.lanes.end());
    // Plain sort with an index tie-break (sender.lanes is in index order), so
    // the result matches a stable sort without stable_sort's temp-buffer
    // allocation on every scheduling interval.
    std::sort(order.begin(), order.end(),
              [](const ServerLane* a, const ServerLane* b) {
                if (a->active != b->active) {
                  return a->active > b->active;
                }
                if (a->utilization != b->utilization) {
                  return a->utilization > b->utilization;
                }
                return a->index < b->index;
              });
    uint32_t rank = 0;  // rank among live lanes: failed/retired hold no slot
    for (uint32_t i = 0; i < order.size(); ++i) {
      ServerLane& lane = *order[i];
      if (lane.failed || lane.retired) {
        lane.messages_at_last_sweep = lane.messages_handled;
        lane.utilization = 0;
        continue;
      }
      const bool want_active = rank < target;
      ++rank;
      if (want_active && !lane.active) {
        lane.active = true;
        server.stats.activations += 1;
        lane.grant_cumulative += config.credits;  // re-arm with C credits
        lane.credits_outstanding += config.credits;
        WriteCtrlSlot(env, lane, server.stats);
      } else if (!want_active && lane.active) {
        lane.active = false;
        server.stats.deactivations += 1;
        WriteCtrlSlot(env, lane, server.stats);
      } else if (env.cluster->fault().armed() && lane.active &&
                 lane.utilization == 0) {
        // Liveness probe (armed runs only — plain bool, zero events in
        // fault-free traces): an active lane that moved nothing all interval
        // may terminate at a dead client QP that the server would otherwise
        // never touch again. The signaled slot rewrite is idempotent against
        // a healthy peer and completes in error against a dead one, which
        // quarantines the lane via the scheduler's send-CQ poll.
        WriteCtrlSlot(env, lane, server.stats, /*signaled=*/true);
      }
      lane.messages_at_last_sweep = lane.messages_handled;
      lane.utilization = 0;
    }
    sender.utilization = 0;
  }
}

}  // namespace internal
}  // namespace flock
